//go:build slider_invariants

package slider

import "fmt"

// invariantsEnabled mirrors the internal packages' convention (see
// internal/store/invariants_on.go): checking implementations compile
// only under the slider_invariants build tag. Run with:
//
//	go test -race -tags slider_invariants .
const invariantsEnabled = true

// assertHealthTransition panics on an illegal health-state transition.
// The machine is ok ⇄ degraded, with failed terminal: once a reasoner
// is failed nothing may move it back (INVARIANTS: failed is sticky).
// Callers hold health.mu and pass the pre-transition status ("" is the
// zero value meaning ok).
func assertHealthTransition(from, to HealthStatus) {
	if from == HealthFailed && to != HealthFailed {
		panic(fmt.Sprintf("slider invariant: illegal health transition failed → %s", to))
	}
}
