// Package slider is a from-scratch Go implementation of Slider, the
// efficient incremental RDF reasoner of Chevalier, Subercaze, Gravier and
// Laforest (SIGMOD 2015). It performs parallel, incremental
// forward-chaining materialisation over streams of RDF triples: each
// inference rule runs as an independent module with its own buffer and
// distributor over a shared, vertically partitioned in-memory triple
// store, wired together at initialisation time by a rules dependency
// graph. The ρdf and RDFS fragments are built in, and custom rules or
// whole custom fragments plug in through the same Rule interface.
//
// Quick start:
//
//	r := slider.New(slider.RhoDF)
//	defer r.Close(context.Background())
//	r.Add(slider.NewStatement(
//		slider.IRI("http://example.org/Cat"),
//		slider.IRI(slider.SubClassOf),
//		slider.IRI("http://example.org/Animal")))
//	r.Add(slider.NewStatement(
//		slider.IRI("http://example.org/felix"),
//		slider.IRI(slider.Type),
//		slider.IRI("http://example.org/Cat")))
//	r.Wait(context.Background())
//	// felix is now an Animal:
//	r.Contains(slider.NewStatement(
//		slider.IRI("http://example.org/felix"),
//		slider.IRI(slider.Type),
//		slider.IRI("http://example.org/Animal"))) // true
package slider

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/maintenance"
	"repro/internal/ntriples"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/rules"
	"repro/internal/snapshot"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/turtle"
	"repro/internal/wal"
)

// Re-exported data-model types. Term and Statement are the parsed
// representation of RDF; ID and Triple are the dictionary-encoded form
// used by rules and the store.
type (
	// Term is one RDF term: an IRI, a blank node or a literal.
	Term = rdf.Term
	// Statement is a triple of Terms.
	Statement = rdf.Statement
	// ID is a dictionary-encoded term identifier.
	ID = rdf.ID
	// Triple is a dictionary-encoded statement.
	Triple = rdf.Triple
	// Dictionary maps Terms to IDs and back.
	Dictionary = rdf.Dictionary
	// Store is the vertically partitioned triple store.
	Store = store.Store
	// Rule is one inference rule; see CustomRule for assembling your own.
	Rule = rules.Rule
	// Source is the read face a rule joins against — satisfied by the
	// live store and by frozen copy-on-write views alike.
	Source = rules.Source
	// CustomRule adapts a function into a Rule.
	CustomRule = rules.CustomRule
	// DependencyGraph is the rules dependency graph (paper Figure 2).
	DependencyGraph = rules.DependencyGraph
	// Stats is a snapshot of the engine's counters.
	Stats = reasoner.Stats
	// StoreStats is a snapshot of the store's size and compaction
	// counters (runs, overlay pairs, tombstones, merges).
	StoreStats = store.Stats
	// ModuleStats is one rule module's counters.
	ModuleStats = reasoner.ModuleStats
	// Observer receives fine-grained engine events.
	Observer = reasoner.Observer
	// FlushReason says why a buffer flushed.
	FlushReason = reasoner.FlushReason
)

// Term constructors, re-exported.
var (
	// IRI builds an IRI term.
	IRI = rdf.NewIRI
	// Blank builds a blank-node term.
	Blank = rdf.NewBlank
	// Literal builds a plain literal term.
	Literal = rdf.NewLiteral
	// LangLiteral builds a language-tagged literal term.
	LangLiteral = rdf.NewLangLiteral
	// TypedLiteral builds a datatyped literal term.
	TypedLiteral = rdf.NewTypedLiteral
	// NewStatement builds a Statement from three terms.
	NewStatement = rdf.NewStatement
)

// Well-known vocabulary IRIs.
const (
	// Type is rdf:type.
	Type = rdf.IRIType
	// SubClassOf is rdfs:subClassOf.
	SubClassOf = rdf.IRISubClassOf
	// SubPropertyOf is rdfs:subPropertyOf.
	SubPropertyOf = rdf.IRISubPropertyOf
	// Domain is rdfs:domain.
	Domain = rdf.IRIDomain
	// Range is rdfs:range.
	Range = rdf.IRIRange
	// Resource is rdfs:Resource.
	Resource = rdf.IRIResource
	// Class is rdfs:Class.
	Class = rdf.IRIClass
	// Label is rdfs:label.
	Label = rdf.IRILabel
)

// Fragment selects the ruleset a Reasoner applies.
type Fragment struct {
	name  string
	rules []rules.Rule
}

// Name returns the fragment's name.
func (f Fragment) Name() string { return f.name }

// Rules returns a copy of the fragment's ruleset.
func (f Fragment) Rules() []Rule { return append([]Rule(nil), f.rules...) }

// Built-in fragments.
var (
	// RhoDF is the ρdf fragment: the eight rules of the paper's Figure 2.
	RhoDF = Fragment{name: "rhodf", rules: rules.RhoDF()}
	// RDFS is the RDFS fragment (ρdf plus the RDFS schema rules and
	// resource typing).
	RDFS = Fragment{name: "rdfs", rules: rules.RDFS()}
	// RDFSNoResourceTyping is RDFS without the rdfs4a/rdfs4b rules, for
	// applications that do not want (x type Resource) materialised.
	RDFSNoResourceTyping = Fragment{
		name:  "rdfs-no-resource-typing",
		rules: rules.RDFSWith(rules.RDFSOptions{ResourceTyping: false}),
	}
	// OWLHorst is the OWL-Horst-style extension fragment: RDFS plus
	// symmetric/transitive/inverse property rules, class and property
	// equivalence, and owl:sameAs equality reasoning (the paper's
	// future-work "more complex fragments").
	OWLHorst = Fragment{name: "owl-horst", rules: rules.OWLHorst()}
)

// CustomFragment assembles a fragment from arbitrary rules.
func CustomFragment(name string, ruleset ...Rule) Fragment {
	return Fragment{name: name, rules: ruleset}
}

// Reasoner is the public face of the Slider engine: it owns a dictionary,
// a triple store and the incremental engine, and accepts statements at
// the Term level.
type Reasoner struct {
	dict   *rdf.Dictionary
	store  *store.Store
	engine *reasoner.Engine
	frag   Fragment

	// explicit tracks every asserted triple (the retraction axioms) when
	// retraction support is enabled (WithRetraction or durability); nil
	// otherwise. It is a second triple store rather than a plain set so
	// durable reasoners can freeze a consistent view of it for the
	// checkpoint's explicit sidecar while asserts keep landing.
	// explicitMu serializes its mutators — in particular it holds
	// delete-and-rederive (Retract) exclusive against concurrent asserts.
	explicitMu sync.Mutex
	explicit   *store.Store

	// markMu gates mutation against snapshot capture for read sessions:
	// every assert/retract path holds the read side while it hands data
	// to the engine (or runs DRed), and View's refresh takes the write
	// side — with the engine quiesced — so a freeze never splits a batch
	// and every read session sees a closed, consistent prefix. It is
	// taken after d.mu and before explicitMu wherever several are held
	// (the full order is catalogued in INVARIANTS.md and enforced by
	// cmd/slidervet).
	markMu sync.RWMutex

	// Shared read-session state (see view.go). viewMu guards the cached
	// current view and the refreshing flag; refreshMu single-flights the
	// quiesce-and-freeze.
	viewMu     sync.Mutex
	viewCur    *sharedView
	refreshing bool
	refreshMu  sync.Mutex
	viewMaxAge time.Duration

	// retractMu serializes whole retraction passes: a pass's prepared
	// suspect analysis is keyed to its own frozen view, and DRed passes
	// do not compose concurrently. Taken before every other lock the
	// pass uses.
	retractMu sync.Mutex
	// fullRetract forces the classic full-store rederive path
	// (WithFullRetract) instead of the suspect-local two-phase one.
	fullRetract bool
	// lastRetract holds the statistics of the most recent completed
	// retraction pass, for LastRetract and the serving layer's /stats.
	lastRetractMu  sync.Mutex
	lastRetract    RetractStats
	hasLastRetract bool

	// dur is the write-ahead-log state of a durable reasoner (Open or
	// WithDurability); nil for in-memory reasoners. See durable.go.
	dur *durability

	// obs holds the reasoner's metrics registry and hot-path
	// instruments. Always non-nil; see metrics.go.
	obs *rmetrics

	// lc attributes the asynchronous tail of a traced batch — inference
	// quiescence and view visibility — back to the batch's flight trace.
	// See lifecycle.go; inert while tracing is disabled.
	lc lifecycle
}

// New builds a Reasoner for the fragment with the given options. If the
// options include WithDurability, New panics when the directory cannot
// be opened or replayed — use Open for the error-returning form.
func New(frag Fragment, opts ...Option) *Reasoner {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.durableDir != "" {
		r, err := openDurable(frag, cfg)
		if err != nil {
			panic(fmt.Sprintf("slider: WithDurability(%q): %v", cfg.durableDir, err))
		}
		return r
	}
	return newReasoner(frag, rdf.NewDictionary(), store.New(), cfg)
}

// LoadSnapshot builds a Reasoner whose dictionary and store are restored
// from a snapshot previously written by Reasoner.Snapshot. The restored
// triples act as background knowledge: they join with new streamed data
// but are not re-inferred from (a snapshot of a materialised store is
// already closed).
func LoadSnapshot(frag Fragment, rd io.Reader, opts ...Option) (*Reasoner, error) {
	dict, st, err := snapshot.Load(rd)
	if err != nil {
		return nil, err
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.durableDir != "" {
		return nil, fmt.Errorf("slider: LoadSnapshot does not take WithDurability; use Open (durable reasoners checkpoint themselves)")
	}
	return newReasoner(frag, dict, st, cfg), nil
}

// Snapshot persists the reasoner's dictionary and store (explicit plus
// inferred triples) to w in the binary snapshot format. Call Wait first
// to capture a fully materialised state.
func (r *Reasoner) Snapshot(w io.Writer) error {
	return snapshot.Save(w, r.dict, r.store)
}

func newReasoner(frag Fragment, dict *rdf.Dictionary, st *store.Store, cfg config) *Reasoner {
	var explicit *store.Store
	if cfg.retraction {
		explicit = store.New()
	}
	maxAge := cfg.viewMaxAge
	if maxAge == 0 {
		maxAge = DefaultViewMaxAge
	}
	reg := cfg.reg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	st.SetMetrics(store.NewMetrics(reg))
	r := &Reasoner{
		dict:        dict,
		explicit:    explicit,
		store:       st,
		viewMaxAge:  maxAge,
		fullRetract: cfg.fullRetract,
		engine: reasoner.New(st, frag.rules, reasoner.Config{
			BufferSize:      cfg.bufferSize,
			Timeout:         cfg.timeout,
			Workers:         cfg.workers,
			Observer:        cfg.observer,
			Adaptive:        cfg.adaptive,
			TrackProvenance: cfg.provenance,
		}),
		frag: frag,
		obs:  newRMetrics(reg),
	}
	r.lc.r = r
	r.registerBridges()
	return r
}

// Fragment returns the fragment the reasoner runs.
func (r *Reasoner) Fragment() Fragment { return r.frag }

// Dictionary returns the reasoner's term dictionary.
func (r *Reasoner) Dictionary() *Dictionary { return r.dict }

// Store returns the underlying triple store (explicit plus inferred
// triples, dictionary-encoded).
func (r *Reasoner) Store() *Store { return r.store }

// Graph returns the rules dependency graph built at initialisation.
func (r *Reasoner) Graph() *DependencyGraph { return r.engine.Graph() }

// Add streams one statement into the reasoner. It returns true if the
// statement was new, and an error if it is not valid RDF (or, on a
// durable reasoner, if the write-ahead log rejected it). Add is safe for
// concurrent use.
func (r *Reasoner) Add(st Statement) (bool, error) {
	if !st.Valid() {
		return false, fmt.Errorf("slider: invalid statement %v", st)
	}
	t := r.dict.EncodeStatement(st)
	if r.dur != nil {
		n, err := r.addTriples(context.Background(), []rdf.Triple{t})
		return n > 0, err
	}
	return r.AddTriple(t), nil
}

// AddTriple streams one already-encoded triple (IDs must come from this
// reasoner's Dictionary).
func (r *Reasoner) AddTriple(t Triple) bool {
	if r.dur != nil {
		n, _ := r.addTriples(context.Background(), []rdf.Triple{t})
		return n > 0
	}
	r.markMu.RLock()
	defer r.markMu.RUnlock()
	fresh := r.engine.Add(t)
	if r.explicit != nil {
		r.explicitMu.Lock()
		r.explicit.Add(t)
		r.explicitMu.Unlock()
	}
	return fresh
}

// AddBatch streams a batch of statements into the reasoner and returns
// how many were new. The whole batch takes the engine's batch-first
// ingest path: one grouped store insertion and one routing pass, instead
// of per-statement lock traffic — markedly faster for bulk loads, and the
// path LoadNTriples and LoadTurtle use. If any statement is invalid RDF
// an error is returned and nothing is added.
func (r *Reasoner) AddBatch(sts []Statement) (int, error) {
	return r.AddBatchCtx(context.Background(), sts)
}

// AddBatchCtx is AddBatch carrying trace context: when ctx holds a
// span (the serving layer's coalesced-flight root, say), the batch's
// whole flight — WAL append and fsync, store insertion, rule routing,
// then asynchronously inference quiescence and view visibility — is
// recorded as child spans of it.
func (r *Reasoner) AddBatchCtx(ctx context.Context, sts []Statement) (int, error) {
	for _, st := range sts {
		if !st.Valid() {
			return 0, fmt.Errorf("slider: invalid statement %v", st)
		}
	}
	ts := make([]rdf.Triple, len(sts))
	for i, st := range sts {
		ts[i] = r.dict.EncodeStatement(st)
	}
	return r.addTriples(ctx, ts)
}

// AddTriples streams a batch of already-encoded triples (IDs must come
// from this reasoner's Dictionary) and returns how many were new. On a
// durable reasoner a logging failure makes the whole batch a no-op; the
// error is available through AddBatch or Wait.
func (r *Reasoner) AddTriples(ts []Triple) int {
	n, _ := r.addTriples(context.Background(), ts)
	return n
}

// addTriples is the single ingest funnel: on durable reasoners it
// appends the batch (and the dictionary delta naming it) to the
// write-ahead log before the engine sees it, so an acknowledged batch is
// recoverable. The log append and engine handoff happen under one lock —
// replay order is exactly application order.
func (r *Reasoner) addTriples(ctx context.Context, ts []rdf.Triple) (int, error) {
	ctx, sp := trace.Start(ctx, "ingest.batch")
	sp.SetInt("triples", int64(len(ts)))
	defer sp.End()
	if r.dur == nil || len(ts) == 0 {
		return r.applyAssert(ctx, ts), nil
	}
	r.dur.mu.Lock()
	defer r.dur.mu.Unlock()
	if err := r.dur.getErr(); err != nil {
		sp.Error(err.Error())
		return 0, err
	}
	hwI, hwB, hwL := r.dur.termMarks()
	rec := wal.Record{Op: wal.OpAssert, Terms: r.dur.termDelta(r.dict), Triples: ts}
	if err := r.dur.log.AppendCtx(ctx, rec); err != nil {
		r.dur.rewindTerms(hwI, hwB, hwL)
		err = r.dur.writeFault(err)
		sp.Error(err.Error())
		return 0, err
	}
	n := r.applyAssert(ctx, ts)
	r.maybeCheckpointLocked()
	return n, nil
}

// applyAssert hands a batch to the engine and tracks explicit triples.
// Every asserted triple becomes an axiom — even one the engine already
// derived: whether a statement was inferred first is a race against
// asynchronous inference, and axiom-hood must not depend on timing
// (replay after a crash would reproduce a different interleaving and
// hence a different explicit set).
func (r *Reasoner) applyAssert(ctx context.Context, ts []rdf.Triple) int {
	t0 := obs.NowIfEnabled()
	r.markMu.RLock()
	defer r.markMu.RUnlock()
	fresh := r.engine.AddBatchCtx(ctx, ts)
	if r.explicit != nil && len(ts) > 0 {
		r.explicitMu.Lock()
		r.explicit.AddBatch(ts)
		r.explicitMu.Unlock()
	}
	m := r.obs
	m.ingestSeconds.ObserveSince(t0)
	m.ingestBatch.Observe(float64(len(ts)))
	m.ingestBatches.Inc()
	m.ingestTriples.Add(int64(len(ts)))
	// Hand the asynchronous tail — inference rounds still running, the
	// view refresh that will make this batch visible — to the lifecycle
	// watcher, as children of the batch's span.
	if sp := trace.FromContext(ctx); sp != nil {
		r.lc.track(sp, r.store.Version())
	}
	return len(fresh)
}

// RetractStats reports what a Retract call did.
type RetractStats = maintenance.Stats

// Retract removes explicit statements and incrementally maintains the
// materialisation using delete-and-rederive (DRed): consequences that
// lose their last derivation disappear; consequences with alternative
// derivations survive. Requires WithRetraction (durable reasoners always
// track explicit triples). On a durable reasoner the deletion batch is
// logged before it is applied, so the retraction survives a restart.
//
// The pass is two-phase, and its cost to concurrent writers is bounded
// by the suspect set, not the store. Phase A freezes a copy-on-write
// view of the materialised closure (a brief quiescence drain, as for a
// checkpoint mark or a read-session refresh) and analyses it while
// ingest continues: overdeletion from the retracted triples, then a
// targeted backward support check per suspect ("does any rule derive
// you from premises outside the suspect set?") with forward propagation
// seeded only by restored suspects. Phase B re-takes the mark gate for
// a short exclusive validate-and-apply window: suspects are re-checked
// against whatever landed mid-pass, the final dead set is removed, and
// writers resume. Cancelling ctx during phase A (or before phase B's
// log append) leaves the knowledge base untouched and healthy; once the
// retraction is logged the apply step is uninterruptible, so the live
// state can never diverge from what replay would reconstruct.
//
// Rulesets containing a CustomRule without a SupportsFn (and reasoners
// built WithFullRetract) fall back to classic DRed: the whole
// delete-and-rederive runs inside the exclusive window and rederives
// from the full surviving store.
func (r *Reasoner) Retract(ctx context.Context, sts ...Statement) (RetractStats, error) {
	if r.explicit == nil {
		return RetractStats{}, fmt.Errorf("slider: retraction not enabled (use WithRetraction)")
	}
	var toDelete []rdf.Triple
	for _, st := range sts {
		t, ok := r.lookup(st)
		if ok {
			toDelete = append(toDelete, t)
		}
	}
	// One retraction at a time: a pass's prepared analysis is keyed to
	// its own frozen view, and DRed passes do not compose concurrently.
	// Taken before every other lock the pass uses.
	r.retractMu.Lock()
	defer r.retractMu.Unlock()
	if len(toDelete) == 0 {
		// Nothing can be explicit; keep the quiescence contract and the
		// write-refusal behaviour of a failed reasoner.
		if err := r.engine.Wait(ctx); err != nil {
			return RetractStats{}, err
		}
		return RetractStats{}, r.durErr()
	}

	var pass *maintenance.Pass
	var prepareMicros int64
	if !r.fullRetract && rules.AllSupport(r.frag.rules) {
		// Phase A: freeze a consistent closure, then run the read-only
		// suspect analysis against it while ingest continues.
		prepStart := time.Now()
		sv, storeV, explicitV, err := r.freezeClosure(ctx)
		if err != nil {
			return RetractStats{}, err
		}
		defer sv.Release()
		pass, err = maintenance.Prepare(ctx, sv, storeV, explicitV, r.frag.rules, r.explicit, toDelete)
		if err != nil {
			return RetractStats{}, err
		}
		prepareMicros = time.Since(prepStart).Microseconds()
		r.obs.retractPrepare.ObserveDuration(time.Since(prepStart))
	}

	// Phase B: the exclusive validate-and-apply window. Writers are
	// excluded (d.mu keeps durable appends out of the log, the mark
	// gate's write side keeps engine handoffs out of the store), the
	// engine drains, and — durable only — the retraction is logged.
	// From the log append on, the pass is uninterruptible: Pass.Apply
	// takes no context, performs no I/O and cannot fail, so the live
	// state never diverges from what replay would reconstruct. Lock
	// order matches addTriples/applyAssert: d.mu, then markMu, then
	// explicitMu.
	if r.dur != nil {
		r.dur.mu.Lock()
		defer r.dur.mu.Unlock()
		if err := r.dur.getErr(); err != nil {
			return RetractStats{}, err
		}
	}
	r.markMu.Lock()
	defer r.markMu.Unlock()
	exStart := time.Now()
	if err := r.engine.Wait(ctx); err != nil {
		return RetractStats{}, err
	}
	if pass == nil {
		// Fallback: classic DRed. The read-only overdelete runs here,
		// inside the exclusive window, so cancellation still leaves the
		// store intact; the O(store) rederive follows in Apply.
		var err error
		pass, err = maintenance.PrepareFull(ctx, r.store, r.frag.rules, r.explicit, toDelete)
		if err != nil {
			return RetractStats{}, err
		}
	}
	if err := ctx.Err(); err != nil { // last cancellation point
		return RetractStats{}, err
	}
	if r.dur != nil {
		hwI, hwB, hwL := r.dur.termMarks()
		rec := wal.Record{Op: wal.OpRetract, Terms: r.dur.termDelta(r.dict), Triples: toDelete}
		if err := r.dur.log.Append(rec); err != nil {
			r.dur.rewindTerms(hwI, hwB, hwL)
			return RetractStats{}, r.dur.writeFault(err)
		}
	}
	r.explicitMu.Lock()
	defer r.explicitMu.Unlock()
	stats := pass.Apply(r.store, r.explicit)
	exclusive := time.Since(exStart)
	stats.ExclusiveMicros = exclusive.Microseconds()
	stats.PrepareMicros = prepareMicros
	r.obs.retractApply.ObserveDuration(exclusive)
	r.obs.retractTotal.Inc()
	r.lastRetractMu.Lock()
	r.lastRetract, r.hasLastRetract = stats, true
	r.lastRetractMu.Unlock()
	return stats, nil
}

// LastRetract returns the statistics of the most recent completed
// retraction pass, and whether any has completed — the numbers behind
// the serving layer's /stats retraction block.
func (r *Reasoner) LastRetract() (RetractStats, bool) {
	r.lastRetractMu.Lock()
	defer r.lastRetractMu.Unlock()
	return r.lastRetract, r.hasLastRetract
}

// loadChunkSize is how many parsed statements the loaders accumulate
// before handing them to the batch ingest path. Large enough to amortise
// per-batch routing, small enough to keep parsing and inference
// overlapped.
const loadChunkSize = 512

// loadStream drains a statement source in loadChunkSize batches through
// AddBatch, returning the number of statements streamed.
func (r *Reasoner) loadStream(read func() (Statement, error)) (int, error) {
	n := 0
	chunk := make([]Statement, 0, loadChunkSize)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		_, err := r.AddBatch(chunk)
		chunk = chunk[:0]
		return err
	}
	for {
		st, err := read()
		if err == io.EOF {
			return n, flush()
		}
		if err != nil {
			if ferr := flush(); ferr != nil {
				return n, ferr
			}
			return n, err
		}
		chunk = append(chunk, st)
		n++
		if len(chunk) == loadChunkSize {
			if err := flush(); err != nil {
				return n, err
			}
		}
	}
}

// LoadNTriples parses an N-Triples document from rd and streams every
// statement into the reasoner in batches, returning the number of
// statements read. Parsing and inference overlap, as with Slider's
// streaming input manager: each chunk of parsed statements enters the
// engine's batch ingest path while the next chunk is being parsed.
func (r *Reasoner) LoadNTriples(rd io.Reader) (int, error) {
	return r.loadStream(ntriples.NewReader(rd).Read)
}

// LoadTurtle parses a Turtle document from rd and streams every statement
// into the reasoner in batches, returning the number of statements read.
func (r *Reasoner) LoadTurtle(rd io.Reader) (int, error) {
	return r.loadStream(turtle.NewReader(rd).Read)
}

// Wait blocks until inference over everything added so far has
// completed. On a durable reasoner it also surfaces any write-ahead-log
// failure: once the log errors, the reasoner stops accepting writes.
func (r *Reasoner) Wait(ctx context.Context) error {
	if err := r.engine.Wait(ctx); err != nil {
		return err
	}
	if err := r.engine.Err(); err != nil {
		return err
	}
	return r.durErr()
}

// Err reports, without blocking on inference or I/O, the first failure
// the reasoner has recorded: a rule panic, or — on durable reasoners —
// a write-ahead-log or background-checkpoint failure. Background
// checkpoints run off the caller's goroutines, so their failures would
// otherwise surface only as a confusing sticky error on the *next*
// write; poll Err (or check it after Wait) to see them as they happen.
// Once non-nil the reasoner refuses further writes with the same error.
func (r *Reasoner) Err() error {
	if err := r.engine.Err(); err != nil {
		return err
	}
	return r.durErr()
}

// Close drains outstanding inference and releases the engine's
// goroutines. A durable reasoner additionally takes a final checkpoint
// (unless disabled with a negative WithCheckpointEvery) and closes the
// log, so a clean shutdown recovers without replaying any tail. The
// reasoner must not be used afterwards.
func (r *Reasoner) Close(ctx context.Context) error {
	// Settle pending batch-lifecycle spans first so their traces
	// complete (and the watcher goroutine exits) before teardown.
	r.lc.close()
	// Drop the cached read-session view: open sessions keep their own
	// references and stay readable (a frozen view is pure data), but the
	// cache slot must not pin the store's journals past shutdown.
	r.dropCachedView()
	if r.dur == nil {
		if err := r.engine.Close(ctx); err != nil {
			return err
		}
		return r.engine.Err()
	}
	return r.closeDurable(ctx)
}

// Contains reports whether the statement is present (explicit or
// inferred). Unknown terms make the answer trivially false.
func (r *Reasoner) Contains(st Statement) bool {
	t, ok := r.lookup(st)
	if !ok {
		return false
	}
	return r.store.Contains(t)
}

func (r *Reasoner) lookup(st Statement) (Triple, bool) {
	s, ok1 := r.dict.Lookup(st.S)
	p, ok2 := r.dict.Lookup(st.P)
	o, ok3 := r.dict.Lookup(st.O)
	return rdf.T(s, p, o), ok1 && ok2 && ok3
}

// Len returns the number of distinct triples in the store (explicit plus
// inferred).
func (r *Reasoner) Len() int { return r.store.Len() }

// Stats returns a snapshot of the engine's counters.
func (r *Reasoner) Stats() Stats { return r.engine.Stats() }

// StoreStats returns a snapshot of the store's size and compaction
// counters: triples per home (runs vs delta overlay), tombstones, and
// cumulative flush/merge/purge work.
func (r *Reasoner) StoreStats() StoreStats { return r.store.Stats() }

// Statements calls f for every triple in the store, decoded to Terms,
// until f returns false. The order is unspecified.
func (r *Reasoner) Statements(f func(Statement) bool) {
	// Snapshot first: decoding takes the dictionary lock, and holding
	// the store's read lock across user code would be hostile.
	for _, t := range r.store.Snapshot() {
		st, ok := r.dict.DecodeTriple(t)
		if !ok {
			continue
		}
		if !f(st) {
			return
		}
	}
}

// Query returns all statements matching a pattern where zero-value Terms
// act as wildcards. E.g. Query(Statement{P: IRI(Type)}) returns every
// typing statement.
func (r *Reasoner) Query(pattern Statement) []Statement {
	enc := func(t Term) (ID, bool) {
		if t.IsZero() {
			return rdf.Any, true
		}
		return r.dict.Lookup(t)
	}
	s, ok1 := enc(pattern.S)
	p, ok2 := enc(pattern.P)
	o, ok3 := enc(pattern.O)
	if !ok1 || !ok2 || !ok3 {
		return nil
	}
	matches := r.store.Match(rdf.T(s, p, o))
	out := make([]Statement, 0, len(matches))
	for _, m := range matches {
		if st, ok := r.dict.DecodeTriple(m); ok {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ProvenanceExplicit is the origin Why reports for asserted statements.
const ProvenanceExplicit = reasoner.ProvenanceExplicit

// Why reports how a statement entered the knowledge base:
// ProvenanceExplicit for asserted statements, or the name of the rule
// that first derived it. Requires WithProvenance; ok is false for
// unknown statements or when tracking is off.
func (r *Reasoner) Why(st Statement) (origin string, ok bool) {
	t, found := r.lookup(st)
	if !found {
		return "", false
	}
	return r.engine.Provenance(t)
}

// Binding is one solution of a Select query: variable name → term.
type Binding = query.Binding

// Select runs a SPARQL-like SELECT query (basic graph patterns only)
// against the materialised store. Example:
//
//	rows, err := r.Select(`
//	    SELECT ?name WHERE {
//	        ?p a <http://example.org/Product> .
//	        ?p rdfs:label ?name .
//	    }`)
//
// Inference runs ahead of querying: call Wait first if you need answers
// over everything added so far.
func (r *Reasoner) Select(text string) ([]Binding, error) {
	q, err := query.ParseSelect(text)
	if err != nil {
		return nil, err
	}
	return query.ExecuteM(r.store, r.dict, q, r.obs.query)
}

// SelectQuery runs an already-built query (see internal/query for the
// pattern API re-exported below).
func (r *Reasoner) SelectQuery(q query.Query) ([]Binding, error) {
	return query.ExecuteM(r.store, r.dict, q, r.obs.query)
}

// Explain is a query's execution profile: the join order the planner
// chose (vs the written order), per-pattern estimated vs actual rows,
// whether the sorted-extent galloping path ran, and per-stage timings.
type Explain = query.Explain

// SelectExplain is Select returning, alongside the solutions, the
// execution profile — `slider -query ... -explain` and the serving
// layer's ?explain=1 are built on it.
func (r *Reasoner) SelectExplain(text string) ([]Binding, *Explain, error) {
	q, err := query.ParseSelect(text)
	if err != nil {
		return nil, nil, err
	}
	ex := &query.Explain{}
	rows, err := query.ExecuteExplain(context.Background(), r.store, r.dict, q, r.obs.query, ex)
	if err != nil {
		return nil, nil, err
	}
	return rows, ex, nil
}

// Export writes every triple in the store (explicit plus inferred) to w
// as N-Triples, in unspecified order.
func (r *Reasoner) Export(w io.Writer) error {
	nw := ntriples.NewWriter(w)
	var err error
	r.Statements(func(st Statement) bool {
		err = nw.Write(st)
		return err == nil
	})
	if err != nil {
		return err
	}
	return nw.Flush()
}

// ExportTurtle writes every triple in the store to w as Turtle, with the
// standard prefixes plus any extra ("prefix", "namespace") pairs, grouped
// by subject.
func (r *Reasoner) ExportTurtle(w io.Writer, prefixes map[string]string) error {
	tw := turtle.NewWriter(w)
	for name, ns := range prefixes {
		tw.Prefix(name, ns)
	}
	var err error
	r.Statements(func(st Statement) bool {
		err = tw.Write(st)
		return err == nil
	})
	if err != nil {
		return err
	}
	return tw.Flush()
}
