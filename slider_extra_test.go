package slider

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestSelectOverInferredKnowledge(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	mustAdd(t, r, NewStatement(ex("Cat"), IRI(SubClassOf), ex("Animal")))
	mustAdd(t, r, NewStatement(ex("Dog"), IRI(SubClassOf), ex("Animal")))
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Cat")))
	mustAdd(t, r, NewStatement(ex("rex"), IRI(Type), ex("Dog")))
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Label), Literal("Felix")))
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// All animals — only answerable through the inferred type triples.
	rows, err := r.Select(`SELECT ?x WHERE { ?x a <http://example.org/Animal> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("animals = %v", rows)
	}

	// Join across inferred typing and explicit label.
	rows, err = r.Select(`
		SELECT ?name WHERE {
			?x a <http://example.org/Animal> .
			?x rdfs:label ?name .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["name"].Value != "Felix" {
		t.Fatalf("rows = %v", rows)
	}

	// Parse errors surface.
	if _, err := r.Select(`SELECT bogus`); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestSnapshotRoundTripThroughFacade(t *testing.T) {
	r := New(RhoDF)
	mustAdd(t, r, NewStatement(ex("Cat"), IRI(SubClassOf), ex("Animal")))
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Cat")))
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	wantLen := r.Len()
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Reload: everything (including inferred triples) is back.
	r2, err := LoadSnapshot(RhoDF, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(context.Background())
	if r2.Len() != wantLen {
		t.Fatalf("reloaded %d triples, want %d", r2.Len(), wantLen)
	}
	if !r2.Contains(NewStatement(ex("felix"), IRI(Type), ex("Animal"))) {
		t.Fatal("inferred triple lost across snapshot")
	}

	// The reloaded store is live background knowledge: new data joins
	// against it.
	mustAdd(t, r2, NewStatement(ex("Animal"), IRI(SubClassOf), ex("Being")))
	if err := r2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !r2.Contains(NewStatement(ex("felix"), IRI(Type), ex("Being"))) {
		t.Fatal("background knowledge did not join with new stream")
	}
}

func TestExportTurtleRoundTrip(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	mustAdd(t, r, NewStatement(ex("Cat"), IRI(SubClassOf), ex("Animal")))
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Cat")))
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.ExportTurtle(&buf, map[string]string{"ex": "http://example.org/"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ex:felix a ex:Cat") && !strings.Contains(out, "ex:felix a ex:Animal") {
		t.Fatalf("turtle export missing grouped subject:\n%s", out)
	}
	// Reload through the Turtle reader: same knowledge base.
	r2 := New(RhoDF)
	defer r2.Close(context.Background())
	if _, err := r2.LoadTurtle(strings.NewReader(out)); err != nil {
		t.Fatalf("reparsing own turtle export: %v\n%s", err, out)
	}
	if err := r2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != r.Len() {
		t.Fatalf("turtle round trip: %d vs %d triples", r2.Len(), r.Len())
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := LoadSnapshot(RhoDF, strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestOWLHorstFragmentThroughFacade(t *testing.T) {
	r := New(OWLHorst, WithBufferSize(1))
	defer r.Close(context.Background())
	owlNS := "http://www.w3.org/2002/07/owl#"
	mustAdd(t, r, NewStatement(ex("partOf"), IRI(Type), IRI(owlNS+"TransitiveProperty")))
	mustAdd(t, r, NewStatement(ex("a"), ex("partOf"), ex("b")))
	mustAdd(t, r, NewStatement(ex("b"), ex("partOf"), ex("c")))
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !r.Contains(NewStatement(ex("a"), ex("partOf"), ex("c"))) {
		t.Fatal("transitive property not materialised via OWLHorst fragment")
	}
	if r.Fragment().Name() != "owl-horst" {
		t.Fatalf("fragment name = %s", r.Fragment().Name())
	}
}

func TestWhyThroughFacade(t *testing.T) {
	r := New(RhoDF, WithProvenance())
	defer r.Close(context.Background())
	mustAdd(t, r, NewStatement(ex("Cat"), IRI(SubClassOf), ex("Animal")))
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Cat")))
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Why(NewStatement(ex("felix"), IRI(Type), ex("Cat"))); !ok || got != ProvenanceExplicit {
		t.Fatalf("Why(explicit) = (%q, %v)", got, ok)
	}
	if got, ok := r.Why(NewStatement(ex("felix"), IRI(Type), ex("Animal"))); !ok || got != "cax-sco" {
		t.Fatalf("Why(inferred) = (%q, %v), want cax-sco", got, ok)
	}
	if _, ok := r.Why(NewStatement(ex("never"), IRI(Type), ex("seen"))); ok {
		t.Fatal("Why reported unknown statement")
	}
	// Without the option, Why is unavailable.
	r2 := New(RhoDF)
	defer r2.Close(context.Background())
	mustAdd(t, r2, NewStatement(ex("a"), IRI(Type), ex("b")))
	if _, ok := r2.Why(NewStatement(ex("a"), IRI(Type), ex("b"))); ok {
		t.Fatal("Why available without WithProvenance")
	}
}

func TestAdaptiveSchedulingOptionThroughFacade(t *testing.T) {
	r := New(RhoDF, WithAdaptiveScheduling(), WithBufferSize(2))
	defer r.Close(context.Background())
	for i := 0; i < 100; i++ {
		mustAdd(t, r, NewStatement(
			ex("s"+string(rune('a'+i%26))+string(rune('a'+i/26))),
			ex("plain"),
			ex("o")))
	}
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	grew := false
	for _, m := range r.Stats().Modules {
		if m.CapacityGrows > 0 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("adaptive option not applied")
	}
}
