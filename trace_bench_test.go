// Guard benchmark for flight-path tracing: the same AddBatch ingest
// with tracing enabled (the default) and with trace.Disabled(). The
// enabled run pays for real spans — ingest.batch roots, store/route
// children and the lifecycle watcher — so the budget is looser than
// the obs guard's, but the pair must stay within a few percent (<3%):
// span creation is a handful of small allocations per *batch*, never
// per triple, and the disabled path is one atomic flag load. Compare
// with:
//
//	go test -run=NONE -bench=BenchmarkIngestTrace -count=5
package slider_test

import (
	"testing"

	"repro/internal/trace"
)

func BenchmarkIngestTraceEnabled(b *testing.B) {
	defer trace.Default.Reset()
	const total, batch = 20000, 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ingestOnce(b, total, batch)
	}
	b.ReportMetric(float64(total), "stmts/op")
}

func BenchmarkIngestTraceDisabled(b *testing.B) {
	restore := trace.Disabled()
	defer restore()
	const total, batch = 20000, 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ingestOnce(b, total, batch)
	}
	b.ReportMetric(float64(total), "stmts/op")
}
