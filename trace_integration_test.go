package slider

import (
	"context"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestDurableIngestTraceTree drives a durable AddBatch through the
// public traced entry point and asserts the retained flight carries
// the full write-path span tree — WAL append with its fsync, store
// insertion, rule routing and the asynchronous lifecycle tails — all
// under one trace id.
func TestDurableIngestTraceTree(t *testing.T) {
	old := trace.Default
	trace.Default = trace.New()
	trace.Default.SetSlowThreshold(0) // retain everything
	t.Cleanup(func() { trace.Default = old })

	dir := t.TempDir()
	ctx := context.Background()
	r, err := Open(dir, RhoDF, WithWorkers(2), WithFsync())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(ctx)

	sts := []Statement{
		NewStatement(ex("Cat"), IRI(SubClassOf), ex("Animal")),
		NewStatement(ex("felix"), IRI(Type), ex("Cat")),
	}
	sp := trace.StartRoot("ingest.flight")
	if _, err := r.AddBatchCtx(trace.ContextWith(ctx, sp), sts); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// Take a read session so the view refresh settles view.visible.
	v, err := r.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v.Close()
	sp.End()

	var got map[string]bool
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap := trace.Default.Snapshot(false)
		for _, tr := range snap.Traces {
			if tr.Name != "ingest.flight" {
				continue
			}
			got = map[string]bool{}
			var walk func(s trace.SpanJSON)
			walk = func(s trace.SpanJSON) {
				got[s.Name] = true
				for _, c := range s.Children {
					walk(c)
				}
			}
			walk(tr.Root)
		}
		if got != nil && got["view.visible"] && got["infer.rounds"] {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got == nil {
		t.Fatal("no ingest.flight trace retained")
	}
	for _, want := range []string{
		"ingest.batch", "wal.append", "wal.fsync",
		"store.addbatch", "engine.route", "infer.rounds", "view.visible",
	} {
		if !got[want] {
			t.Fatalf("trace lacks span %q; saw %v", want, got)
		}
	}
}
