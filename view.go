// Read sessions: snapshot-isolated query handles over copy-on-write
// store views.
//
// A View pins a consistent, fully-materialised state of the knowledge
// base — the closure of every batch acknowledged before the snapshot was
// taken — and answers queries against it no matter how far the live
// store has moved on. Writers never wait on a running query: the store's
// multi-view journaling (internal/store) compensates post-freeze
// mutations, so the only writer-visible cost of an open session is one
// journal entry per mutated pair.
//
// Capturing a fresh snapshot does require a safe point: the engine is
// drained and the mark gate (Reasoner.markMu) briefly excludes writers,
// exactly like a checkpoint's mark phase. To keep that cost off the
// query path, sessions share snapshots: View() reuses the current one
// when the store has not changed — or changed less than ViewMaxAge ago —
// and only quiesces when the snapshot is both stale and old. Under a
// steady mixed workload the refresh rate is bounded by ViewMaxAge, not
// by query rate.
package slider

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/trace"
)

// DefaultViewMaxAge is how stale a shared read-session snapshot may get
// before View() quiesces the engine and captures a fresh one.
const DefaultViewMaxAge = 100 * time.Millisecond

// sharedView is one reference-counted store snapshot handed out to (and
// shared by) read sessions. The cache slot (Reasoner.viewCur) holds one
// reference; every open View holds another.
type sharedView struct {
	sv      *store.View
	version uint64 // store version at freeze
	born    time.Time
	refs    atomic.Int64
}

func (s *sharedView) unref() {
	if s.refs.Add(-1) == 0 {
		s.sv.Release()
	}
}

// View is a read session: a consistent snapshot of the materialised
// store at some acknowledged point, plus the dictionary to speak Terms.
// All methods answer from the snapshot — concurrent writes are invisible
// — and never block writers. Close the session when done; holding it
// open keeps its snapshot's compensation journals alive.
type View struct {
	r      *Reasoner
	shared *sharedView
	closed atomic.Bool
}

// View returns a read session pinned to a consistent snapshot of the
// knowledge base: the closure of every batch whose Add/AddBatch returned
// before the snapshot was taken (batches acknowledged later are
// invisible). Sessions are cheap — concurrent callers share one
// underlying snapshot, refreshed at most every ViewMaxAge while the
// store is changing — and a session never blocks writers. ctx bounds the
// quiescence wait a refresh may need; the returned session must be
// Closed.
func (r *Reasoner) View(ctx context.Context) (*View, error) {
	r.viewMu.Lock()
	cur := r.viewCur
	if cur != nil {
		// Reuse when the snapshot is current (store unchanged), young
		// enough, or a refresh is already in flight — only the claiming
		// caller pays for a refresh; everyone else keeps being served
		// from the previous snapshot, so writers see at most one drain
		// per ViewMaxAge no matter the query rate.
		if cur.version == r.store.Version() || time.Since(cur.born) < r.viewMaxAge || r.refreshing {
			cur.refs.Add(1)
			r.viewMu.Unlock()
			return &View{r: r, shared: cur}, nil
		}
		r.refreshing = true
		r.viewMu.Unlock()
		v, err := r.refreshView(ctx)
		r.viewMu.Lock()
		r.refreshing = false
		r.viewMu.Unlock()
		return v, err
	}
	r.viewMu.Unlock()
	// No snapshot yet: everyone has to wait for the first capture
	// (refreshView single-flights via refreshMu and re-checks).
	return r.refreshView(ctx)
}

// refreshView quiesces the engine, freezes a fresh snapshot and installs
// it as the shared current one, returning a session on it. refreshMu
// serializes captures; a caller that queued behind one reuses its result
// when it is still current.
func (r *Reasoner) refreshView(ctx context.Context) (*View, error) {
	r.refreshMu.Lock()
	defer r.refreshMu.Unlock()
	r.viewMu.Lock()
	if cur := r.viewCur; cur != nil && cur.version == r.store.Version() {
		cur.refs.Add(1)
		r.viewMu.Unlock()
		return &View{r: r, shared: cur}, nil
	}
	r.viewMu.Unlock()
	t0 := obs.NowIfEnabled()
	// The refresh span lands in the trace of whichever flight paid for
	// the capture (typically a query request's) — the quiesce-and-freeze
	// is the serving layer's main tail-latency source.
	_, sp := trace.Start(ctx, "view.refresh")
	sv, version, _, err := r.freezeClosure(ctx)
	if err != nil {
		sp.Error(err.Error())
		sp.End()
		return nil, err
	}
	sp.SetInt("version", int64(version))
	sp.End()
	r.obs.viewRefresh.ObserveSince(t0)
	ns := &sharedView{sv: sv, version: version, born: time.Now()}
	ns.refs.Store(2) // the cache slot + the returned session
	r.viewMu.Lock()
	old := r.viewCur
	r.viewCur = ns
	r.viewMu.Unlock()
	if old != nil {
		old.unref()
	}
	// Batches at or before this version are now visible to read
	// sessions: settle their pending view-visibility spans.
	r.lc.notifyView(version)
	return &View{r: r, shared: ns}, nil
}

// currentViewVersion reports the store version of the cached shared
// view (0 when none is installed). Used by the lifecycle watcher to
// decide whether a batch's triples have become visible to readers.
func (r *Reasoner) currentViewVersion() uint64 {
	r.viewMu.Lock()
	defer r.viewMu.Unlock()
	if r.viewCur == nil {
		return 0
	}
	return r.viewCur.version
}

// freezeClosure quiesces inference and captures a copy-on-write view of
// the materialised store — the closure of every batch acknowledged
// before the freeze — along with the version stamps of the store and
// the explicit set at that instant. The exclusive window is O(1) beyond
// the quiescence drain; a pre-drain without the lock bounds what the
// locked drain still has to absorb (under sustained ingest the engine
// is never spontaneously quiescent, and only the locked drain, with
// writers excluded, is guaranteed to terminate). Shared lock
// choreography for read-session refresh and the retraction pass's
// frozen phase A.
func (r *Reasoner) freezeClosure(ctx context.Context) (*store.View, uint64, uint64, error) {
	predrain, cancel := context.WithTimeout(ctx, time.Second)
	r.engine.Wait(predrain)
	cancel()
	r.markMu.Lock()
	defer r.markMu.Unlock()
	if err := r.engine.Wait(ctx); err != nil {
		return nil, 0, 0, err
	}
	sv := r.store.Freeze()
	storeVersion := r.store.Version()
	var explicitVersion uint64
	if r.explicit != nil {
		explicitVersion = r.explicit.Version()
	}
	return sv, storeVersion, explicitVersion, nil
}

// dropCachedView releases the cache slot's reference (Reasoner.Close).
func (r *Reasoner) dropCachedView() {
	r.viewMu.Lock()
	cur := r.viewCur
	r.viewCur = nil
	r.viewMu.Unlock()
	if cur != nil {
		cur.unref()
	}
}

// Close releases the session. Idempotent; the underlying snapshot is
// released once the last session sharing it closes and it is no longer
// the cached current one.
func (v *View) Close() {
	if v.closed.CompareAndSwap(false, true) {
		v.shared.unref()
	}
}

// Len returns the number of triples (explicit plus inferred) in the
// snapshot.
func (v *View) Len() int { return v.shared.sv.Len() }

// Contains reports whether the statement was present in the snapshot.
func (v *View) Contains(st Statement) bool {
	t, ok := v.r.lookup(st)
	if !ok {
		return false
	}
	return v.shared.sv.Contains(t)
}

// Select runs a SPARQL-like SELECT query (see Reasoner.Select) against
// the snapshot, in deterministic sorted order.
func (v *View) Select(text string) ([]Binding, error) {
	q, err := query.ParseSelect(text)
	if err != nil {
		return nil, err
	}
	return query.ExecuteM(v.shared.sv, v.r.dict, q, v.r.obs.query)
}

// SelectQuery runs an already-built query against the snapshot.
func (v *View) SelectQuery(q query.Query) ([]Binding, error) {
	return query.ExecuteM(v.shared.sv, v.r.dict, q, v.r.obs.query)
}

// SelectFunc parses and runs a SELECT query against the snapshot,
// streaming each distinct solution to emit as it is found (unspecified
// order) and stopping early when emit returns false or the query's
// LIMIT is reached — the result set is never materialised. This is the
// executor behind the HTTP API's streamed bindings.
func (v *View) SelectFunc(text string, emit func(Binding) bool) error {
	q, err := query.ParseSelect(text)
	if err != nil {
		return err
	}
	return query.ExecuteFuncM(v.shared.sv, v.r.dict, q, v.r.obs.query, emit)
}

// SelectQueryFunc is SelectFunc for an already-built query.
func (v *View) SelectQueryFunc(q query.Query, emit func(Binding) bool) error {
	return query.ExecuteFuncM(v.shared.sv, v.r.dict, q, v.r.obs.query, emit)
}

// SelectQueryFuncExplain is SelectQueryFunc carrying trace context
// (the planner and executor record spans into it) and, when ex is
// non-nil, filling it with the execution profile. The serving layer's
// ?explain=1 is built on it.
func (v *View) SelectQueryFuncExplain(ctx context.Context, q query.Query, ex *query.Explain, emit func(Binding) bool) error {
	return query.ExecuteFuncExplain(ctx, v.shared.sv, v.r.dict, q, v.r.obs.query, ex, emit)
}
