package slider

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestRetractUnderConcurrentIngest is the suspect-local retraction
// stress test (run under -race): writer goroutines stream their own
// typed members while a retractor repeatedly retracts a preloaded,
// disjoint set of type assertions, so every pass's phase A overlaps
// live ingest and phase B's validate step sees mid-pass batches. At the
// end the closure must equal exactly what a per-writer-prefix argument
// predicts: every writer triple (none were retracted) with its full
// derivation chain, every retracted member gone along with its chain,
// and the schema intact.
func TestRetractUnderConcurrentIngest(t *testing.T) {
	r := New(RhoDF, WithRetraction(), WithBufferSize(32))
	defer r.Close(context.Background())
	ctx := context.Background()

	// Schema: a three-deep subclass chain. Retracting (x type C0)
	// suspects exactly x's chain types.
	cls := func(i int) Term { return ex(fmt.Sprintf("C%d", i)) }
	for i := 0; i < 3; i++ {
		mustAdd(t, r, NewStatement(cls(i), IRI(SubClassOf), cls(i+1)))
	}

	// Preload the retractor's victims.
	const victims = 40
	pre := make([]Statement, victims)
	for i := range pre {
		pre[i] = NewStatement(ex(fmt.Sprintf("victim%d", i)), IRI(Type), cls(0))
	}
	if _, err := r.AddBatch(pre); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	const (
		writers = 3
		batches = 30
		batch   = 32
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				sts := make([]Statement, batch)
				for i := range sts {
					sts[i] = NewStatement(
						ex(fmt.Sprintf("w%d_m%d_%d", w, b, i)), IRI(Type), cls(0))
				}
				if _, err := r.AddBatch(sts); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Retractor: retract each victim in small batches, concurrently with
	// the writers. Victims are never re-asserted, so the expected final
	// state is exact.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < victims; i += 4 {
			if _, err := r.Retract(ctx, pre[i:i+4]...); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// Per-writer-prefix closure consistency: every writer member carries
	// its full chain; every victim and its chain is gone; the schema
	// closure survives.
	for w := 0; w < writers; w++ {
		for b := 0; b < batches; b++ {
			for i := 0; i < batch; i++ {
				m := ex(fmt.Sprintf("w%d_m%d_%d", w, b, i))
				for c := 0; c <= 3; c++ {
					if !r.Contains(NewStatement(m, IRI(Type), cls(c))) {
						t.Fatalf("writer member w%d_m%d_%d lost (type C%d)", w, b, i, c)
					}
				}
			}
		}
	}
	for i := 0; i < victims; i++ {
		for c := 0; c <= 3; c++ {
			if r.Contains(NewStatement(ex(fmt.Sprintf("victim%d", i)), IRI(Type), cls(c))) {
				t.Fatalf("victim%d still typed C%d after retraction", i, c)
			}
		}
	}
	if !r.Contains(NewStatement(cls(0), IRI(SubClassOf), cls(3))) {
		t.Fatal("schema closure lost")
	}
	// Exactly the expected store size: schema closure (3 asserted + 3
	// derived) plus 4 types per surviving member.
	want := 6 + writers*batches*batch*4
	if r.Len() != want {
		t.Fatalf("store has %d triples, want %d", r.Len(), want)
	}
	if last, ok := r.LastRetract(); !ok || !last.TwoPhase {
		t.Fatalf("expected two-phase retraction stats, got %+v ok=%v", last, ok)
	}
}

// TestDurableRetractCancelStaysHealthy pins the shrunk poison window: a
// cancellation during the read-only phases of a durable retraction
// leaves the knowledge base healthy — no sticky error, writes still
// accepted, nothing half-applied, and the state survives a reopen.
func TestDurableRetractCancelStaysHealthy(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	r, err := Open(dir, RhoDF)
	if err != nil {
		t.Fatal(err)
	}
	// A chain long enough that overdeletion has rounds to get cancelled
	// in.
	const n = 120
	sts := make([]Statement, n)
	for i := range sts {
		sts[i] = NewStatement(ex(fmt.Sprintf("k%d", i)), IRI(SubClassOf), ex(fmt.Sprintf("k%d", i+1)))
	}
	if _, err := r.AddBatch(sts); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	before := r.Len()

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := r.Retract(cancelled, sts[0]); err == nil {
		t.Fatal("cancelled retraction succeeded")
	}
	if err := r.Err(); err != nil {
		t.Fatalf("cancelled retraction poisoned the reasoner: %v", err)
	}
	if r.Len() != before {
		t.Fatalf("cancelled retraction mutated the store: %d → %d", before, r.Len())
	}
	// Writes still work, and so does the same retraction, uncancelled.
	mustAdd(t, r, NewStatement(ex("extra"), IRI(SubClassOf), ex("k0")))
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	stats, err := r.Retract(ctx, sts[0])
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retracted != 1 || !stats.TwoPhase {
		t.Fatalf("stats = %+v", stats)
	}
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// The reopened KB reflects the successful retraction only.
	r2, err := Open(dir, RhoDF)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(ctx)
	if r2.Contains(NewStatement(ex("k0"), IRI(SubClassOf), ex("k1"))) {
		t.Fatal("retracted edge survived the reopen")
	}
	if !r2.Contains(NewStatement(ex("k1"), IRI(SubClassOf), ex("k2"))) {
		t.Fatal("unretracted edge lost across the reopen")
	}
}
