package slider

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// crashOp is one acknowledged operation: an assert batch or a retraction
// batch. Each op is exactly one write-ahead-log record.
type crashOp struct {
	retract bool
	sts     []Statement
}

func (op crashOp) apply(t *testing.T, r *Reasoner) {
	t.Helper()
	ctx := context.Background()
	if op.retract {
		if _, err := r.Retract(ctx, op.sts...); err != nil {
			t.Fatal(err)
		}
		return
	}
	if _, err := r.AddBatch(op.sts); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryTruncatedSegment is the crash-recovery integration
// test: ingest a mix of assert and retract batches, cut the live WAL
// segment at arbitrary byte offsets (every record boundary and a stride
// of mid-record offsets), reopen, and check the recovered closure equals
// the closure of the acknowledged prefix — the records wholly on disk
// before the cut. A torn record must cost exactly the unacknowledged
// batch, never an error, a panic, or a stale consequence of a replayed
// retraction.
func TestCrashRecoveryTruncatedSegment(t *testing.T) {
	ctx := context.Background()
	st := func(s, p, o string) Statement {
		pred := IRI("http://example.org/" + p)
		switch p {
		case "type":
			pred = IRI(Type)
		case "sub":
			pred = IRI(SubClassOf)
		case "subprop":
			pred = IRI(SubPropertyOf)
		case "domain":
			pred = IRI(Domain)
		case "range":
			pred = IRI(Range)
		}
		return NewStatement(ex(s), pred, ex(o))
	}
	ops := []crashOp{
		{sts: []Statement{st("A", "sub", "B"), st("B", "sub", "C")}},
		{sts: []Statement{st("x", "type", "A"), st("y", "type", "B")}},
		{sts: []Statement{st("C", "sub", "D"), st("knows", "domain", "Person")}},
		{retract: true, sts: []Statement{st("x", "type", "A")}},
		{sts: []Statement{st("z", "type", "C"), st("a", "knows", "b")}},
		{sts: []Statement{st("likes", "subprop", "knows"), st("c", "likes", "d")}},
		{retract: true, sts: []Statement{st("B", "sub", "C")}},
		{sts: []Statement{st("w", "type", "B"), st("knows", "range", "Known")}},
	}

	// Write the master log, recording the segment size after each
	// acknowledged op: appends are synchronous, so the size when op k
	// returns is the boundary of record k+1.
	master := t.TempDir()
	r, err := Open(master, RhoDF, WithWorkers(2), WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(master, "segment-00000001.wal")
	boundaries := make([]int64, 0, len(ops)+1)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	boundaries = append(boundaries, fi.Size())
	for _, op := range ops {
		op.apply(t, r)
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, fi.Size())
	}
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(master, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}

	// expected[k] is the closure of the first k acknowledged ops,
	// computed by an in-memory reasoner that never crashed.
	expected := make([][]string, len(ops)+1)
	for k := 0; k <= len(ops); k++ {
		mem := New(RhoDF, WithWorkers(2), WithRetraction())
		for _, op := range ops[:k] {
			op.apply(t, mem)
		}
		if err := mem.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		expected[k] = closureSet(mem)
		if err := mem.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}

	acknowledged := func(cut int64) int {
		k := 0
		for k+1 < len(boundaries) && boundaries[k+1] <= cut {
			k++
		}
		return k
	}

	// Cut points: every record boundary and its neighbours (the
	// interesting cliff edges), plus a stride through every record body.
	// internal/wal's TestTornTailTruncation covers every byte offset at
	// the log level; here each cut spins a full engine, so the stride is
	// sparser to keep the race-enabled run quick.
	cuts := map[int64]bool{0: true, int64(len(raw)): true}
	for _, b := range boundaries {
		for d := int64(-2); d <= 2; d++ {
			if b+d >= 0 && b+d <= int64(len(raw)) {
				cuts[b+d] = true
			}
		}
	}
	for off := int64(0); off <= int64(len(raw)); off += 13 {
		cuts[off] = true
	}

	for cut := range cuts {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), manifest, 0o666); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "segment-00000001.wal"), raw[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		rec, err := Open(dir, RhoDF, WithWorkers(2), WithCheckpointEvery(-1))
		if err != nil {
			t.Fatalf("cut=%d: Open after simulated crash: %v", cut, err)
		}
		if err := rec.Wait(ctx); err != nil {
			t.Fatalf("cut=%d: Wait: %v", cut, err)
		}
		k := acknowledged(cut)
		sameClosure(t, closureSet(rec), expected[k],
			"cut="+strconv.FormatInt(cut, 10)+" (acknowledged prefix "+strconv.Itoa(k)+" ops)")
		// The repaired KB must keep working: one more fact, one more
		// inference round.
		if _, err := rec.AddBatch([]Statement{st("q", "type", "A")}); err != nil {
			t.Fatalf("cut=%d: ingest after recovery: %v", cut, err)
		}
		if err := rec.Close(ctx); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
	}
}
