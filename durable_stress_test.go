package slider

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stressSchema builds the subclass chain C0 ⊂ C1 ⊂ … ⊂ C9 used by the
// checkpoint stress tests.
func stressSchema() []Statement {
	var out []Statement
	for i := 0; i < 9; i++ {
		out = append(out, NewStatement(ex(fmt.Sprintf("C%d", i)), IRI(SubClassOf), ex(fmt.Sprintf("C%d", i+1))))
	}
	return out
}

func stressFact(prefix string, i int) Statement {
	return NewStatement(ex(fmt.Sprintf("%s%d", prefix, i)), IRI(Type), ex(fmt.Sprintf("C%d", i%8)))
}

// ckptInFlight reports whether a checkpoint is marking or streaming.
func ckptInFlight(r *Reasoner) bool {
	r.dur.mu.Lock()
	defer r.dur.mu.Unlock()
	return r.dur.ckptDone != nil
}

// TestCheckpointStreamingStress hammers a durable reasoner with
// concurrent AddBatch, Retract and query traffic while background
// checkpoints capture and stream the store, then proves (a) writers
// complete inside the streaming window — the old implementation held the
// ingest lock for the whole O(store) write, so nothing could — and
// (b) the checkpoints are consistent: the recovered closure equals the
// closure of exactly the acknowledged operations.
func TestCheckpointStreamingStress(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	r, err := Open(dir, RhoDF, WithWorkers(4),
		WithCheckpointEvery(128<<10), WithSegmentSize(256<<10))
	if err != nil {
		t.Fatal(err)
	}

	const (
		seedN      = 20000
		retractN   = 12
		writers    = 3
		perWriter  = 30
		batchSize  = 128
		retractPre = "retractme"
	)
	// Seed: schema, a pool of facts the retractor will delete (their
	// subjects are never reused, so the final closure is independent of
	// how retractions interleave with the concurrent adds), and bulk
	// facts to make the streamed snapshot big enough to overlap with.
	var acked []Statement
	addBatch := func(sts []Statement) {
		if _, err := r.AddBatch(sts); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, sts...)
	}
	addBatch(stressSchema())
	var pool []Statement
	for i := 0; i < retractN; i++ {
		pool = append(pool, stressFact(retractPre, i))
	}
	addBatch(pool)
	var batch []Statement
	for i := 0; i < seedN; i++ {
		batch = append(batch, stressFact("seed", i))
		if len(batch) == batchSize {
			addBatch(batch)
			batch = nil
		}
	}
	addBatch(batch)
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// Hammer phase: writers, a retractor and a querier run against the
	// store while background checkpoints trigger and stream.
	var (
		wg             sync.WaitGroup
		ackedMu        sync.Mutex
		hammered       []Statement
		retracted      []Statement
		insideStream   atomic.Int64
		maxWriterPause atomic.Int64 // nanoseconds
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < perWriter; b++ {
				sts := make([]Statement, batchSize)
				for i := range sts {
					sts[i] = stressFact(fmt.Sprintf("w%d_%d_", w, b), i)
				}
				before := ckptInFlight(r)
				start := time.Now()
				if _, err := r.AddBatch(sts); err != nil {
					t.Error(err)
					return
				}
				pause := time.Since(start)
				for {
					old := maxWriterPause.Load()
					if int64(pause) <= old || maxWriterPause.CompareAndSwap(old, int64(pause)) {
						break
					}
				}
				if before && ckptInFlight(r) {
					insideStream.Add(1)
				}
				ackedMu.Lock()
				hammered = append(hammered, sts...)
				ackedMu.Unlock()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, st := range pool {
			if _, err := r.Retract(ctx, st); err != nil {
				t.Error(err)
				return
			}
			ackedMu.Lock()
			retracted = append(retracted, st)
			ackedMu.Unlock()
		}
	}()
	stopQueries := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopQueries:
				return
			default:
			}
			// Top of the chain: every typed subject reaches C9.
			r.Contains(NewStatement(ex(fmt.Sprintf("seed%d", i%seedN)), IRI(Type), ex("C9")))
			if i%64 == 0 {
				r.Query(Statement{S: ex(fmt.Sprintf("seed%d", i%seedN))})
			}
		}
	}()
	wg.Wait()
	close(stopQueries)
	qwg.Wait()

	// Deterministic overlap probe: one explicit checkpoint of the now
	// ~100k-triple closure, with writers running only while it streams.
	// Under the old lock-holding capture, at most a handful of blocked
	// writers could complete in the instant the lock was released; the
	// non-blocking path lets them flow throughout.
	var (
		ckptRunning atomic.Bool
		duringCkpt  atomic.Int64
		ckptErr     error
		ckptWG      sync.WaitGroup
	)
	ckptWG.Add(1)
	ckptRunning.Store(true)
	go func() {
		defer ckptWG.Done()
		ckptErr = r.Checkpoint(ctx)
		ckptRunning.Store(false)
	}()
	for b := 0; ckptRunning.Load(); b++ {
		sts := make([]Statement, 32)
		for i := range sts {
			sts[i] = stressFact(fmt.Sprintf("probe%d_", b), i)
		}
		if _, err := r.AddBatch(sts); err != nil {
			t.Fatal(err)
		}
		if ckptRunning.Load() {
			duringCkpt.Add(1)
		}
		// Acknowledged either way, in or out of the capture window.
		ackedMu.Lock()
		hammered = append(hammered, sts...)
		ackedMu.Unlock()
	}
	ckptWG.Wait()
	if ckptErr != nil {
		t.Fatal(ckptErr)
	}
	if got := duringCkpt.Load(); got <= writers {
		t.Fatalf("only %d writes completed while the explicit checkpoint streamed — writers are stalling for the capture", got)
	}
	t.Logf("writes completed inside background streams: %d, inside explicit checkpoint: %d, max writer pause: %s",
		insideStream.Load(), duringCkpt.Load(), time.Duration(maxWriterPause.Load()))

	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := closureSet(r)
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// The reference: an in-memory reasoner fed the acknowledged closure —
	// all asserted statements minus the retracted pool entries. Retracted
	// subjects are never re-asserted, so the result is interleaving-free.
	mem := New(RhoDF, WithWorkers(4), WithRetraction())
	all := append(append([]Statement{}, acked...), hammered...)
	for i := 0; i < len(all); i += 512 {
		if _, err := mem.AddBatch(all[i:min(i+512, len(all))]); err != nil {
			t.Fatal(err)
		}
	}
	if err := mem.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Retract(ctx, retracted...); err != nil {
		t.Fatal(err)
	}
	if err := mem.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	ref := closureSet(mem)
	if err := mem.Close(ctx); err != nil {
		t.Fatal(err)
	}
	sameClosure(t, want, ref, "live closure vs acknowledged-operations reference")

	// Recovery from the checkpoints + tail reproduces the same state.
	r2, err := Open(dir, RhoDF, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(ctx)
	if err := r2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sameClosure(t, closureSet(r2), ref, "recovered closure vs acknowledged-operations reference")
}

// TestCloseAbandonedCheckpointClosesLog pins the shutdown-deadline leak:
// when Close gives up waiting for an in-flight checkpoint, the
// checkpoint goroutine must close the write-ahead log — releasing the
// segment descriptor and the directory lock — once it finishes, so a
// same-process reopen of the directory is not wedged forever.
func TestCloseAbandonedCheckpointClosesLog(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	r, err := Open(dir, RhoDF, WithWorkers(2), WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, r, NewStatement(ex("a"), IRI(SubClassOf), ex("b")))
	mustAdd(t, r, NewStatement(ex("x"), IRI(Type), ex("a")))
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	// Arm an in-flight checkpoint by hand, exactly as maybeCheckpoint
	// does, but don't run it yet — the Close below must find it pending.
	d := r.dur
	done := make(chan struct{})
	d.mu.Lock()
	d.ckptDone = done
	d.mu.Unlock()

	expired, cancel := context.WithCancel(ctx)
	cancel()
	if err := r.Close(expired); err != context.Canceled {
		t.Fatalf("Close with expired deadline = %v, want context.Canceled", err)
	}

	// The directory lock is still held by the abandoned reasoner: a
	// same-process reopen must fail until the checkpoint finishes.
	if _, err := Open(dir, RhoDF); err == nil {
		t.Fatal("reopen succeeded while the abandoned checkpoint still owned the log")
	}

	// Now let the "checkpoint" run to completion; it must observe the
	// abandoned Close and shut the log down itself.
	if err := r.runCheckpoint(ctx, done); err != nil {
		t.Fatalf("abandoned checkpoint failed: %v", err)
	}
	r2, err := Open(dir, RhoDF, WithWorkers(2))
	if err != nil {
		t.Fatalf("reopen after abandoned checkpoint finished: %v", err)
	}
	if err := r2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if !r2.Contains(NewStatement(ex("x"), IRI(Type), ex("b"))) {
		t.Fatal("closure lost across abandoned close")
	}
	if err := r2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Retrying Close on the abandoned reasoner — the natural way to
	// release its engine goroutines — must succeed cleanly: the log is
	// already closed, so the close-time checkpoint is skipped rather
	// than failing with (and poisoning the reasoner with) ErrClosed.
	if err := r.Close(ctx); err != nil {
		t.Fatalf("retried Close after abandonment: %v", err)
	}
}

// TestBackgroundCheckpointErrorSurfaces pins the silent-failure fix: a
// background checkpoint that cannot write its files must show up through
// Reasoner.Err immediately, and poison later writes with the same error.
func TestBackgroundCheckpointErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	r, err := Open(dir, RhoDF, WithWorkers(2), WithCheckpointEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.engine.Close(ctx)
	if err := r.Err(); err != nil {
		t.Fatalf("fresh reasoner reports %v", err)
	}
	// Pull the directory out from under the log: segment appends keep
	// working (the fd is open) but the next checkpoint's segment roll or
	// payload write must fail.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	// Writes trigger background checkpoints (threshold 1 byte). Some may
	// be acknowledged before the failure lands; eventually Err must
	// report it without any Wait/Close in between.
	deadline := time.Now().Add(10 * time.Second)
	for r.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background checkpoint failure never surfaced through Err")
		}
		r.AddBatch([]Statement{NewStatement(ex("s"), IRI(Type), ex("C"))})
		time.Sleep(time.Millisecond)
	}
	bgErr := r.Err()
	// The poison is sticky: the next write is refused with the same error.
	if _, err := r.AddBatch([]Statement{NewStatement(ex("t"), IRI(Type), ex("C"))}); err == nil {
		t.Fatal("write accepted after durability failure")
	} else if err.Error() != bgErr.Error() {
		t.Fatalf("write refused with %v, Err reports %v", err, bgErr)
	}
}

// TestCheckpointInFlightBookkeeping pins the stale-channel fix: between
// checkpoints ckptDone must be nil (not the previous, closed channel),
// so a trigger during the stream phase can never start a second
// concurrent capture.
func TestCheckpointInFlightBookkeeping(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	r, err := Open(dir, RhoDF, WithWorkers(2), WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, r, NewStatement(ex("a"), IRI(SubClassOf), ex("b")))
	for i := 0; i < 3; i++ {
		if err := r.Checkpoint(ctx); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		r.dur.mu.Lock()
		stale := r.dur.ckptDone
		r.dur.mu.Unlock()
		if stale != nil {
			t.Fatalf("ckptDone still set after checkpoint %d completed", i)
		}
		mustAdd(t, r, NewStatement(ex(fmt.Sprintf("s%d", i)), IRI(Type), ex("a")))
	}
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestMidStreamCrashRecovery simulates kills at every stage of the
// two-phase checkpoint that leave debris on disk — half-written temp
// payloads, complete-but-uncommitted generation files, stale segments
// below the manifest's first — and checks recovery ignores and sweeps
// all of it, reproducing exactly the closure of the acknowledged
// operations.
func TestMidStreamCrashRecovery(t *testing.T) {
	ctx := context.Background()
	build := func(dir string, checkpoint bool) []string {
		r, err := Open(dir, RhoDF, WithWorkers(2), WithCheckpointEvery(-1))
		if err != nil {
			t.Fatal(err)
		}
		mustAdd(t, r, NewStatement(ex("Cat"), IRI(SubClassOf), ex("Mammal")))
		mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Cat")))
		if checkpoint {
			if err := r.Checkpoint(ctx); err != nil {
				t.Fatal(err)
			}
		}
		mustAdd(t, r, NewStatement(ex("Mammal"), IRI(SubClassOf), ex("Animal")))
		if err := r.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		want := closureSet(r)
		if err := r.Close(ctx); err != nil {
			t.Fatal(err)
		}
		return want
	}

	shapes := []struct {
		name       string
		checkpoint bool // build with a committed generation-1 checkpoint
		debris     map[string]string
	}{
		{
			// Killed while the payload streamed to its temp file.
			name: "mid-payload-write",
			debris: map[string]string{
				"checkpoint-00000001.slkb.tmp": "torn snapshot bytes",
			},
		},
		{
			// Killed after both payloads were renamed into place but
			// before the manifest committed the generation.
			name: "payloads-uncommitted",
			debris: map[string]string{
				"checkpoint-00000001.slkb":     "complete but never committed",
				"checkpoint-00000001.explicit": "ditto",
			},
		},
		{
			// Killed after the manifest committed generation 1 but before
			// the covered segments and the next (aborted) generation's
			// debris were pruned.
			name:       "committed-unpruned",
			checkpoint: true,
			debris: map[string]string{
				"checkpoint-00000002.slkb.tmp": "next generation, never committed",
				"checkpoint-00000002.explicit": "ditto",
			},
		},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			dir := t.TempDir()
			want := build(dir, shape.checkpoint)
			for name, content := range shape.debris {
				if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
					t.Fatal(err)
				}
			}
			r, err := Open(dir, RhoDF, WithWorkers(2))
			if err != nil {
				t.Fatalf("recovery with %s debris: %v", shape.name, err)
			}
			// The debris is swept at Open: everything the manifest does
			// not reference is gone. (Close may later legitimately write
			// files under the same names — check before it does.)
			for name := range shape.debris {
				if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
					t.Fatalf("debris %s survived recovery", name)
				}
			}
			if err := r.Wait(ctx); err != nil {
				t.Fatal(err)
			}
			sameClosure(t, closureSet(r), want, "recovered closure with "+shape.name+" debris")
			if err := r.Close(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}
