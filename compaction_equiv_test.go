package slider

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/query"
)

// materialisedClosure collects the reasoner's materialised closure as a set of
// rendered statements.
func materialisedClosure(r *Reasoner) map[string]bool {
	out := map[string]bool{}
	r.Statements(func(st Statement) bool {
		out[st.S.String()+" "+st.P.String()+" "+st.O.String()] = true
		return true
	})
	return out
}

// TestClosureInvariantUnderCompaction cross-checks the full pipeline —
// inference, retraction and queries — between a reasoner whose store
// compacts into sorted runs and one pinned to the pre-run map-only
// layout. The same ingest/retract schedule must yield identical
// closures and identical query answers regardless of the physical
// layout, including after forcing full compaction mid-stream.
func TestClosureInvariantUnderCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	newPair := func() (*Reasoner, *Reasoner) {
		lsm := New(RhoDF, WithRetraction())
		flat := New(RhoDF, WithRetraction())
		flat.Store().SetAutoCompact(false)
		return lsm, flat
	}
	lsm, flat := newPair()
	defer lsm.Close(context.Background())
	defer flat.Close(context.Background())

	cls := func(i int) Term { return IRI(fmt.Sprintf("http://ex.test/C%d", i)) }
	ind := func(i int) Term { return IRI(fmt.Sprintf("http://ex.test/i%d", i)) }
	schema := []Statement{
		NewStatement(cls(0), IRI(SubClassOf), cls(1)),
		NewStatement(cls(1), IRI(SubClassOf), cls(2)),
		NewStatement(cls(2), IRI(SubClassOf), cls(3)),
		NewStatement(IRI("http://ex.test/knows"), IRI(Domain), cls(0)),
		NewStatement(IRI("http://ex.test/knows"), IRI(Range), cls(1)),
	}
	both := func(sts ...Statement) {
		if _, err := lsm.AddBatch(sts); err != nil {
			t.Fatal(err)
		}
		if _, err := flat.AddBatch(sts); err != nil {
			t.Fatal(err)
		}
	}
	both(schema...)

	var typed []Statement
	for round := 0; round < 5; round++ {
		var batch []Statement
		for i := 0; i < 200; i++ {
			n := rng.Intn(500)
			if rng.Intn(3) == 0 {
				batch = append(batch, NewStatement(ind(n), IRI(Type), cls(rng.Intn(3))))
			} else {
				batch = append(batch, NewStatement(ind(n), IRI("http://ex.test/knows"), ind(rng.Intn(500))))
			}
		}
		typed = append(typed, batch...)
		both(batch...)
		if round == 2 {
			// Mid-stream full compaction on one side only: physically
			// divergent, logically invisible.
			lsm.Store().Compact()
		}
		// Retract a few of the statements asserted so far, same on both.
		victims := []Statement{typed[rng.Intn(len(typed))], typed[rng.Intn(len(typed))]}
		if _, err := lsm.Retract(context.Background(), victims...); err != nil {
			t.Fatal(err)
		}
		if _, err := flat.Retract(context.Background(), victims...); err != nil {
			t.Fatal(err)
		}
	}
	if err := lsm.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := flat.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	a, b := materialisedClosure(lsm), materialisedClosure(flat)
	if len(a) != len(b) {
		t.Fatalf("closure sizes diverge: runs=%d map=%d", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("closure diverges on %s", k)
		}
	}

	// Query answers agree too — planned+galloping over runs vs the same
	// planner over the map layout, and both against the naive order.
	q := `SELECT ?x ?y WHERE { ?x <http://ex.test/knows> ?y . ?x <` + Type + `> <http://ex.test/C0> . ?y <` + Type + `> <http://ex.test/C1> . }`
	ra, err := lsm.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := flat.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("query answers diverge: runs=%d rows, map=%d rows", len(ra), len(rb))
	}
	if pq, err := query.ParseSelect(q); err == nil {
		pq.NaiveOrder = true
		rn, err := lsm.SelectQuery(pq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rn) {
			t.Fatalf("naive order diverges from planned: %d vs %d rows", len(rn), len(ra))
		}
	} else {
		t.Fatal(err)
	}

	// The compacting side really did compact.
	if ss := lsm.StoreStats(); ss.Compaction.Flushes == 0 && ss.Compaction.Purges == 0 {
		t.Fatalf("compaction never ran on the run-backed side: %+v", ss)
	}
}
