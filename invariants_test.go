//go:build slider_invariants

package slider

import "testing"

// TestHealthTransitionInvariantIsLive proves the tagged assertion is
// compiled in and firing, not a silent no-op: failed is terminal, so
// failed → ok must panic.
func TestHealthTransitionInvariantIsLive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("assertHealthTransition(failed, ok) did not panic")
		}
	}()
	assertHealthTransition(HealthFailed, HealthOK)
}
