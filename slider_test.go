package slider

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rdf"
)

func ex(name string) Term { return IRI("http://example.org/" + name) }

func mustAdd(t *testing.T, r *Reasoner, st Statement) {
	t.Helper()
	if _, err := r.Add(st); err != nil {
		t.Fatal(err)
	}
}

func TestQuickstartFlow(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	mustAdd(t, r, NewStatement(ex("Cat"), IRI(SubClassOf), ex("Animal")))
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Cat")))
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !r.Contains(NewStatement(ex("felix"), IRI(Type), ex("Animal"))) {
		t.Fatal("inferred statement missing")
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	if _, err := r.Add(NewStatement(Literal("s"), IRI(Type), ex("C"))); err == nil {
		t.Fatal("literal subject accepted")
	}
	if _, err := r.Add(Statement{}); err == nil {
		t.Fatal("zero statement accepted")
	}
}

func TestAddReportsFreshness(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	st := NewStatement(ex("a"), IRI(SubClassOf), ex("b"))
	fresh, err := r.Add(st)
	if err != nil || !fresh {
		t.Fatalf("first Add = (%v, %v)", fresh, err)
	}
	fresh, err = r.Add(st)
	if err != nil || fresh {
		t.Fatalf("second Add = (%v, %v), want duplicate", fresh, err)
	}
}

func TestLoadNTriplesAndExportRoundTrip(t *testing.T) {
	doc := `<http://example.org/Cat> <` + SubClassOf + `> <http://example.org/Animal> .
<http://example.org/felix> <` + Type + `> <http://example.org/Cat> .
`
	r := New(RhoDF)
	defer r.Close(context.Background())
	n, err := r.LoadNTriples(strings.NewReader(doc))
	if err != nil || n != 2 {
		t.Fatalf("LoadNTriples = (%d, %v)", n, err)
	}
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Export(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "felix") || !strings.Contains(out, "Animal") {
		t.Fatalf("export missing content:\n%s", out)
	}
	// Export includes the inferred triple: 3 lines.
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Fatalf("export has %d lines, want 3", lines)
	}
	// Re-import into a second reasoner: same store size.
	r2 := New(RhoDF)
	defer r2.Close(context.Background())
	if _, err := r2.LoadNTriples(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	if err := r2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != r.Len() {
		t.Fatalf("round-tripped store has %d triples, original %d", r2.Len(), r.Len())
	}
}

func TestLoadNTriplesSyntaxError(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	_, err := r.LoadNTriples(strings.NewReader("garbage\n"))
	if err == nil {
		t.Fatal("malformed document accepted")
	}
}

func TestQueryPatterns(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	mustAdd(t, r, NewStatement(ex("Cat"), IRI(SubClassOf), ex("Animal")))
	mustAdd(t, r, NewStatement(ex("Dog"), IRI(SubClassOf), ex("Animal")))
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Cat")))
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// All subclasses of Animal.
	got := r.Query(Statement{P: IRI(SubClassOf), O: ex("Animal")})
	if len(got) != 2 {
		t.Fatalf("Query subclasses = %v", got)
	}
	// Everything about felix (explicit + inferred).
	got = r.Query(Statement{S: ex("felix")})
	if len(got) != 2 { // type Cat, type Animal
		t.Fatalf("Query felix = %v", got)
	}
	// Unknown term: empty, not panic.
	if got := r.Query(Statement{S: ex("unknown-thing")}); len(got) != 0 {
		t.Fatalf("Query unknown = %v", got)
	}
	// Full wildcard returns the whole store.
	if got := r.Query(Statement{}); len(got) != r.Len() {
		t.Fatalf("wildcard query returned %d of %d", len(got), r.Len())
	}
}

func TestStatementsEarlyStop(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	mustAdd(t, r, NewStatement(ex("a"), IRI(SubClassOf), ex("b")))
	mustAdd(t, r, NewStatement(ex("b"), IRI(SubClassOf), ex("c")))
	r.Wait(context.Background())
	n := 0
	r.Statements(func(Statement) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestFragments(t *testing.T) {
	if RhoDF.Name() != "rhodf" || len(RhoDF.Rules()) != 8 {
		t.Fatalf("RhoDF fragment wrong: %s/%d", RhoDF.Name(), len(RhoDF.Rules()))
	}
	if len(RDFS.Rules()) != 14 || len(RDFSNoResourceTyping.Rules()) != 13 {
		t.Fatal("RDFS fragment sizes wrong")
	}
	// Rules() returns a copy: mutating it must not affect the fragment.
	rs := RhoDF.Rules()
	rs[0] = nil
	if RhoDF.Rules()[0] == nil {
		t.Fatal("Rules() exposes internal slice")
	}
}

func TestRDFSFragmentBehaviour(t *testing.T) {
	r := New(RDFS)
	defer r.Close(context.Background())
	mustAdd(t, r, NewStatement(ex("Cat"), IRI(Type), IRI(Class)))
	r.Wait(context.Background())
	if !r.Contains(NewStatement(ex("Cat"), IRI(SubClassOf), IRI(Resource))) {
		t.Fatal("rdfs8 missing through public API")
	}
	if !r.Contains(NewStatement(ex("Cat"), IRI(SubClassOf), ex("Cat"))) {
		t.Fatal("rdfs10 missing through public API")
	}
}

func TestCustomFragment(t *testing.T) {
	// A symmetric-property rule: (a knows b) → (b knows a).
	knowsIRI := "http://example.org/knows"
	var knowsID ID
	sym := &CustomRule{
		RuleName: "sym-knows",
		Fn: func(_ Source, delta []Triple, emit func(Triple)) {
			for _, t := range delta {
				if t.P == knowsID {
					emit(Triple{S: t.O, P: t.P, O: t.S})
				}
			}
		},
	}
	frag := CustomFragment("sym", sym)
	if frag.Name() != "sym" || len(frag.Rules()) != 1 {
		t.Fatal("CustomFragment metadata wrong")
	}
	r := New(frag, WithBufferSize(1))
	defer r.Close(context.Background())
	knowsID = r.Dictionary().Encode(IRI(knowsIRI))
	mustAdd(t, r, NewStatement(ex("ann"), IRI(knowsIRI), ex("bob")))
	r.Wait(context.Background())
	if !r.Contains(NewStatement(ex("bob"), IRI(knowsIRI), ex("ann"))) {
		t.Fatal("custom rule did not fire")
	}
}

func TestOptionsApplied(t *testing.T) {
	obs := &recordingObserver{}
	r := New(RhoDF,
		WithBufferSize(1),
		WithTimeout(5*time.Millisecond),
		WithWorkers(2),
		WithObserver(obs))
	defer r.Close(context.Background())
	mustAdd(t, r, NewStatement(ex("a"), IRI(SubClassOf), ex("b")))
	r.Wait(context.Background())
	if obs.flushes.Load() == 0 {
		t.Fatal("observer saw no flushes; options not applied?")
	}
}

type recordingObserver struct {
	flushes atomic.Int64
}

func (o *recordingObserver) OnInput(Triple)                   {}
func (o *recordingObserver) OnRoute(string, Triple)           {}
func (o *recordingObserver) OnFlush(string, FlushReason, int) { o.flushes.Add(1) }
func (o *recordingObserver) OnExecute(string, int, int, int)  {}

func TestGraphThroughFacade(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	if !r.Graph().HasEdge("scm-sco", "cax-sco") {
		t.Fatal("dependency graph not exposed")
	}
}

func TestStatsThroughFacade(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	mustAdd(t, r, NewStatement(ex("a"), IRI(SubClassOf), ex("b")))
	mustAdd(t, r, NewStatement(ex("b"), IRI(SubClassOf), ex("c")))
	r.Wait(context.Background())
	s := r.Stats()
	if s.Input != 2 || s.Inferred != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ModuleByName("scm-sco").Fresh != 1 {
		t.Fatalf("scm-sco stats = %+v", s.ModuleByName("scm-sco"))
	}
}

func TestDictionaryExposed(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	id := r.Dictionary().Encode(ex("thing"))
	if id == rdf.Any {
		t.Fatal("dictionary returned wildcard ID")
	}
	term, ok := r.Dictionary().Term(id)
	if !ok || term != ex("thing") {
		t.Fatal("dictionary round trip failed via facade")
	}
}
