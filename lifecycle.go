// Batch lifecycle attribution: the part of a batch's flight that
// happens *after* AddBatch returns. Acknowledgement only means the
// batch is logged and routed — inference rounds are still running, and
// readers will not see the triples until a view at or past the batch's
// store version is installed. The lifecycle watcher pins both tails to
// the batch's trace as asynchronous child spans:
//
//	infer.rounds — batch acknowledgement to the next engine quiescence
//	view.visible — batch acknowledgement to the first read-session view
//	               that includes the batch's explicit triples
//
// Quiescence is global (the engine drains as a whole), so infer.rounds
// measures "by when had this batch's consequences certainly landed",
// not the batch's private inference cost — under concurrent ingest the
// drain the batch joins covers later batches too. That is the number
// view staleness is made of, which is what the trace is for.
//
// The watcher is a single lazily-started goroutine polling at
// millisecond grain while flights are pending; view visibility is also
// settled event-style by refreshView. Inert unless tracing produced
// spans to track.
package slider

import (
	"sync"
	"time"

	"repro/internal/trace"
)

// lifecycleGrain is the watcher's polling period: fine enough that
// span ends attribute sub-ViewMaxAge latencies, coarse enough that a
// pending flight costs two atomic loads per tick.
const lifecycleGrain = 2 * time.Millisecond

// lifecycleSlack bounds how long a flight's tail spans stay open when
// quiescence or visibility is never observed (no queries arrive, so no
// view is ever refreshed): the spans end with an "outcome" attribute
// instead of dangling and holding their trace open forever.
const lifecycleSlack = 2 * time.Second

// flightTail is one tracked batch: its two open tail spans and the
// store version whose visibility settles the second.
type flightTail struct {
	infer    *trace.Span
	vis      *trace.Span
	version  uint64
	deadline time.Time
}

// lifecycle owns the pending flight tails and the watcher goroutine.
type lifecycle struct {
	r *Reasoner

	mu      sync.Mutex
	pending []*flightTail
	running bool
	closed  bool
}

// track registers a just-acknowledged batch's asynchronous tail under
// its span. Called from the ingest path only when the batch is traced.
func (lc *lifecycle) track(parent *trace.Span, version uint64) {
	deadline := time.Now().Add(lifecycleSlack + lc.r.viewMaxAge)
	ft := &flightTail{
		infer:    parent.Child("infer.rounds"),
		vis:      parent.Child("view.visible"),
		version:  version,
		deadline: deadline,
	}
	ft.vis.SetInt("version", int64(version))
	lc.mu.Lock()
	if lc.closed {
		lc.mu.Unlock()
		ft.settle(true, true, "shutdown")
		return
	}
	lc.pending = append(lc.pending, ft)
	if !lc.running {
		lc.running = true
		go lc.watch()
	}
	lc.mu.Unlock()
}

// notifyView settles view-visibility spans for batches at or before
// the just-installed view's version. Called by refreshView after the
// install, with no reasoner locks held, so the precise install moment
// is what the spans record (the watcher would add up to a grain of
// skew).
func (lc *lifecycle) notifyView(version uint64) {
	if !trace.Enabled() {
		return
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	keep := lc.pending[:0]
	for _, ft := range lc.pending {
		if ft.vis != nil && version >= ft.version {
			ft.vis.End()
			ft.vis = nil
		}
		if ft.infer != nil || ft.vis != nil {
			keep = append(keep, ft)
		}
	}
	clearTail(lc.pending, len(keep))
	lc.pending = keep
}

// watch polls pending tails until none remain, then exits; track
// restarts it for the next traced batch. Engine quiescence and the
// installed view version are each one atomic-ish read, so an idle
// pending list costs nothing measurable per grain.
func (lc *lifecycle) watch() {
	ticker := time.NewTicker(lifecycleGrain)
	defer ticker.Stop()
	for range ticker.C {
		lc.mu.Lock()
		if lc.closed || len(lc.pending) == 0 {
			lc.running = false
			lc.mu.Unlock()
			return
		}
		quiescent := lc.r.engine.Quiescent()
		viewV := lc.r.currentViewVersion()
		now := time.Now()
		keep := lc.pending[:0]
		for _, ft := range lc.pending {
			if ft.infer != nil && quiescent {
				ft.infer.End()
				ft.infer = nil
			}
			if ft.vis != nil && viewV >= ft.version {
				ft.vis.End()
				ft.vis = nil
			}
			if now.After(ft.deadline) {
				ft.settle(ft.infer != nil, ft.vis != nil, "timeout")
				ft.infer, ft.vis = nil, nil
			}
			if ft.infer != nil || ft.vis != nil {
				keep = append(keep, ft)
			}
		}
		clearTail(lc.pending, len(keep))
		lc.pending = keep
		lc.mu.Unlock()
	}
}

// close force-settles every pending tail (outcome "shutdown") so
// traces complete and the watcher exits. Reasoner.Close calls it
// before tearing the engine down.
func (lc *lifecycle) close() {
	lc.mu.Lock()
	lc.closed = true
	pending := lc.pending
	lc.pending = nil
	lc.mu.Unlock()
	for _, ft := range pending {
		ft.settle(ft.infer != nil, ft.vis != nil, "shutdown")
	}
}

// settle ends the selected tail spans with an outcome attribute — used
// when the watcher gives up rather than observes the real event.
func (ft *flightTail) settle(infer, vis bool, outcome string) {
	if infer && ft.infer != nil {
		ft.infer.SetStr("outcome", outcome)
		ft.infer.End()
	}
	if vis && ft.vis != nil {
		ft.vis.SetStr("outcome", outcome)
		ft.vis.End()
	}
}

// clearTail nils the dropped suffix after an in-place filter so the
// backing array does not pin settled tails.
func clearTail(s []*flightTail, from int) {
	for i := from; i < len(s); i++ {
		s[i] = nil
	}
}
