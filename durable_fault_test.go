package slider

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"testing"
	"time"

	"repro/internal/vfs"
)

// fst builds a statement for the fault tests, mapping the shorthand
// predicates ("type", "sub", "subprop", "domain", "range") to their
// schema IRIs so retraction exercises real rederivation.
func fst(s, p, o string) Statement {
	pred := IRI("http://example.org/" + p)
	switch p {
	case "type":
		pred = IRI(Type)
	case "sub":
		pred = IRI(SubClassOf)
	case "subprop":
		pred = IRI(SubPropertyOf)
	case "domain":
		pred = IRI(Domain)
	case "range":
		pred = IRI(Range)
	}
	return NewStatement(ex(s), pred, ex(o))
}

func applyOp(ctx context.Context, r *Reasoner, op crashOp) error {
	if op.retract {
		_, err := r.Retract(ctx, op.sts...)
		return err
	}
	_, err := r.AddBatch(op.sts)
	return err
}

// waitHealthy polls Health until the reasoner's recovery loop brings it
// back to ok.
func waitHealthy(t *testing.T, r *Reasoner) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if h := r.Health(); h.Status == HealthOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("did not recover to ok; health: %+v", r.Health())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func discardLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// TestDegradedSurvivesEnospcMidIngest is the acceptance scenario at the
// library layer: the disk fills mid-ingest, the reasoner degrades to
// read-only instead of poisoning itself, queries keep serving the
// acknowledged state, and once space frees the recovery loop restores
// full service — same process, no restart, no lost acknowledged batch.
func TestDegradedSurvivesEnospcMidIngest(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.OS)
	r, err := Open(dir, RhoDF,
		WithVFS(ffs), WithFsync(), WithViewMaxAge(-1), WithLogger(discardLogger()))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := r.AddBatch([]Statement{
		fst("Cat", "sub", "Mammal"),
		fst("felix", "type", "Cat"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	acked := closureSet(r)

	// The disk fills: the next frame tears a few bytes in, ENOSPC.
	ffs.SetWriteBudget(4)
	failed := []Statement{fst("Mammal", "sub", "Animal")}
	if _, err := r.AddBatch(failed); err == nil {
		t.Fatal("ingest on a full disk did not surface")
	} else if !errors.Is(err, ErrDegraded) {
		t.Fatalf("ingest on a full disk: %v, want errors.Is ErrDegraded", err)
	}
	h := r.Health()
	if h.Status != HealthDegraded || !h.ReadOnly {
		t.Fatalf("health after ENOSPC = %+v, want degraded read-only", h)
	}
	if h.RetryAfter <= 0 || h.Since.IsZero() || h.Cause == "" {
		t.Fatalf("degraded health missing operator context: %+v", h)
	}

	// Writes are refused up front; reads keep serving the acknowledged
	// closure — the rejected batch must have left no trace.
	if _, err := r.AddBatch(failed); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write while degraded: %v, want ErrDegraded", err)
	}
	if _, err := r.Retract(ctx, fst("felix", "type", "Cat")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("retract while degraded: %v, want ErrDegraded", err)
	}
	sameClosure(t, closureSet(r), acked, "closure while degraded")
	rows, err := r.Select("SELECT ?t WHERE { <http://example.org/felix> <" + Type + "> ?t . }")
	if err != nil || len(rows) != 2 {
		t.Fatalf("query while degraded: rows=%v err=%v, want the 2 acknowledged types", rows, err)
	}

	// Space frees: the recovery loop's next probe succeeds, the retried
	// batch lands, and inference picks it up — no restart.
	ffs.Clear()
	waitHealthy(t, r)
	if _, err := r.AddBatch(failed); err != nil {
		t.Fatalf("ingest after recovery: %v", err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	rows, err = r.Select("SELECT ?t WHERE { <http://example.org/felix> <" + Type + "> ?t . }")
	if err != nil || len(rows) != 3 {
		t.Fatalf("query after recovery: rows=%v err=%v, want 3 types", rows, err)
	}
	want := closureSet(r)
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if n := ffs.RefsyncViolations(); n != 0 {
		t.Fatalf("recovery re-fsynced a failed descriptor %d times", n)
	}

	// Everything acknowledged — including the post-recovery batch —
	// survives a reopen.
	r2, err := Open(dir, RhoDF)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(ctx)
	if err := r2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sameClosure(t, closureSet(r2), want, "closure after reopen")
}

// scheduleOps is the fixed operation mix the seeded schedules run: a
// blend of schema, instance, and retraction batches so recovery is
// tested against real rederivation, not just appends.
func scheduleOps() []crashOp {
	return []crashOp{
		{sts: []Statement{fst("A", "sub", "B"), fst("B", "sub", "C")}},
		{sts: []Statement{fst("x", "type", "A"), fst("y", "type", "B")}},
		{retract: true, sts: []Statement{fst("x", "type", "A")}},
		{sts: []Statement{fst("z", "type", "C"), fst("a", "knows", "b")}},
		{sts: []Statement{fst("likes", "subprop", "knows"), fst("c", "likes", "d")}},
		{retract: true, sts: []Statement{fst("B", "sub", "C")}},
		{sts: []Statement{fst("w", "type", "B"), fst("knows", "range", "Known")}},
		{sts: []Statement{fst("knows", "domain", "Person"), fst("q", "type", "A")}},
	}
}

// prefixClosures computes, with an in-memory reasoner that never sees a
// fault, the closure of every acknowledged prefix of ops.
func prefixClosures(t *testing.T, ops []crashOp) [][]string {
	t.Helper()
	ctx := context.Background()
	expected := make([][]string, len(ops)+1)
	for k := 0; k <= len(ops); k++ {
		mem := New(RhoDF, WithWorkers(2), WithRetraction())
		for _, op := range ops[:k] {
			if err := applyOp(ctx, mem, op); err != nil {
				t.Fatal(err)
			}
		}
		if err := mem.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		expected[k] = closureSet(mem)
		if err := mem.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
	return expected
}

// runFaultSchedule drives the fixed op mix against a durable reasoner
// while a seed-derived schedule injects disk faults (one-shot fsync
// failure, ENOSPC write budget, torn write) at nFaults positions. At
// every fault it asserts the full degradation contract: the op fails
// with ErrDegraded, health flips to degraded read-only, reads serve
// exactly the closure of the acknowledged prefix, recovery restores ok,
// and the retried op lands. The survivors must replay on reopen.
func runFaultSchedule(t *testing.T, seed int64, nFaults int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	armed := make(map[int]int)
	for len(armed) < nFaults {
		armed[rng.Intn(len(scheduleOps()))] = rng.Intn(3)
	}
	// Budget stays below the smallest record frame (~10 bytes) so the
	// ENOSPC fault always tears the armed op's write.
	runFaultScheduleArmed(t, armed, int64(rng.Intn(5)))
}

// runFaultScheduleAt arms a single fault of the given kind at the given
// op position — the exhaustive-matrix entry point (torture_full_test.go).
func runFaultScheduleAt(t *testing.T, pos, kind int) {
	t.Helper()
	runFaultScheduleArmed(t, map[int]int{pos: kind}, 4)
}

func runFaultScheduleArmed(t *testing.T, armed map[int]int, budget int64) {
	t.Helper()
	ctx := context.Background()
	ops := scheduleOps()
	expected := prefixClosures(t, ops)

	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.OS)
	r, err := Open(dir, RhoDF,
		WithVFS(ffs), WithFsync(), WithCheckpointEvery(-1), WithViewMaxAge(-1),
		WithLogger(discardLogger()))
	if err != nil {
		t.Fatal(err)
	}

	for i, op := range ops {
		kind, faulty := armed[i]
		if faulty {
			// Settle inference first so the mid-degradation closure
			// check below compares a stable state.
			if err := r.Wait(ctx); err != nil {
				t.Fatal(err)
			}
			switch kind {
			case 0:
				ffs.FailFsync(1, nil)
			case 1:
				ffs.SetWriteBudget(budget)
			case 2:
				ffs.TornWrite(1)
			}
		}
		err := applyOp(ctx, r, op)
		if !faulty {
			if err != nil {
				t.Fatalf("op %d (no fault armed): %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("op %d: armed fault (kind %d) did not surface", i, kind)
		}
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("op %d: fault classified wrong: %v, want ErrDegraded", i, err)
		}
		if h := r.Health(); h.Status != HealthDegraded || !h.ReadOnly {
			t.Fatalf("op %d: health = %+v, want degraded read-only", i, h)
		}
		sameClosure(t, closureSet(r), expected[i],
			fmt.Sprintf("op %d: closure while degraded (acknowledged prefix)", i))
		if err := applyOp(ctx, r, op); !errors.Is(err, ErrDegraded) {
			t.Fatalf("op %d: write while degraded: %v, want ErrDegraded", i, err)
		}
		ffs.Clear()
		waitHealthy(t, r)
		if err := applyOp(ctx, r, op); err != nil {
			t.Fatalf("op %d: retry after recovery: %v", i, err)
		}
	}

	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sameClosure(t, closureSet(r), expected[len(ops)], "closure after the full schedule")
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if n := ffs.RefsyncViolations(); n != 0 {
		t.Fatalf("recovery re-fsynced a failed descriptor %d times", n)
	}

	r2, err := Open(dir, RhoDF)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close(ctx)
	if err := r2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sameClosure(t, closureSet(r2), expected[len(ops)], "closure after reopen")
}

// TestSeededFaultSchedules runs a handful of seeded torture schedules in
// the ordinary test suite; the full matrix lives behind the
// slider_torture build tag (see torture_full_test.go).
func TestSeededFaultSchedules(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runFaultSchedule(t, seed, 2)
		})
	}
}

// TestCheckpointFaultDegradesThenRecovers: checkpoint rename faults are
// retried with backoff; a persistent fault exhausts the budget and
// degrades to read-only, and clearing the fault lets the recovery loop
// restore full service — checkpoints included.
func TestCheckpointFaultDegradesThenRecovers(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.OS)
	r, err := Open(dir, RhoDF,
		WithVFS(ffs), WithCheckpointEvery(-1), WithViewMaxAge(-1),
		WithLogger(discardLogger()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ffs.Clear()
		r.Close(ctx)
	}()
	if _, err := r.AddBatch([]Statement{fst("Cat", "sub", "Mammal")}); err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	ffs.FailEveryRename(nil)
	// The first failures only mark the reasoner degraded-but-writable
	// (background trouble, writes still land); each explicit checkpoint
	// burns one retry, and with the capped budget spent the reasoner
	// goes read-only instead of retrying forever.
	deadline := time.Now().Add(15 * time.Second)
	for !r.Health().ReadOnly {
		if time.Now().After(deadline) {
			t.Fatalf("checkpoint faults never went read-only; health: %+v", r.Health())
		}
		if err := r.Checkpoint(ctx); err == nil {
			t.Fatal("checkpoint with a rename fault unexpectedly committed")
		}
		if h := r.Health(); h.Status != HealthDegraded {
			t.Fatalf("health after a checkpoint fault = %+v, want degraded", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := r.AddBatch([]Statement{fst("x", "type", "Cat")}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write while degraded: %v, want ErrDegraded", err)
	}

	ffs.Clear()
	waitHealthy(t, r)
	if err := r.Checkpoint(ctx); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
	if _, err := r.AddBatch([]Statement{fst("x", "type", "Cat")}); err != nil {
		t.Fatalf("ingest after recovery: %v", err)
	}
	if n := ffs.RefsyncViolations(); n != 0 {
		t.Fatalf("recovery re-fsynced a failed descriptor %d times", n)
	}
}

// TestDiskWatermarkProactiveReadOnly: with a -disk-min-free floor set,
// the monitor degrades to read-only *before* ENOSPC can tear a frame,
// and recovers once free space climbs back above the floor.
func TestDiskWatermarkProactiveReadOnly(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.OS)
	r, err := Open(dir, RhoDF,
		WithVFS(ffs), WithDiskMinFree(1<<20), WithViewMaxAge(-1),
		WithLogger(discardLogger()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ffs.Clear()
		r.Close(ctx)
	}()
	if _, err := r.AddBatch([]Statement{fst("Cat", "sub", "Mammal")}); err != nil {
		t.Fatal(err)
	}

	// Free space sinks below the floor: the monitor's next sample (the
	// poll period is 2s) must flip the reasoner read-only proactively —
	// no write ever failed.
	ffs.SetFreeSpace(512)
	deadline := time.Now().Add(15 * time.Second)
	for r.Health().Status != HealthDegraded {
		if time.Now().After(deadline) {
			t.Fatalf("low watermark never degraded; health: %+v", r.Health())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := r.AddBatch([]Statement{fst("x", "type", "Cat")}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write below the floor: %v, want ErrDegraded", err)
	}

	// Space freed: the recovery probe checks the floor itself, so
	// recovery does not wait for the next monitor sample.
	ffs.SetFreeSpace(-1)
	waitHealthy(t, r)
	if _, err := r.AddBatch([]Statement{fst("x", "type", "Cat")}); err != nil {
		t.Fatalf("ingest after space freed: %v", err)
	}
}
