//go:build !slider_invariants

package slider

// invariantsEnabled is false in normal builds; see invariants_on.go and
// INVARIANTS.md. The empty body below inlines to nothing.
const invariantsEnabled = false

func assertHealthTransition(from, to HealthStatus) {}
