package slider

import (
	"time"

	"repro/internal/reasoner"
)

// config collects option values for New.
type config struct {
	bufferSize int
	timeout    time.Duration
	workers    int
	observer   reasoner.Observer
	adaptive   bool
	retraction bool
	provenance bool
}

// Option tunes a Reasoner at construction time. The three tunables mirror
// the paper's demo Setup panel: buffer size, buffer timeout and fragment
// (the fragment is New's first argument).
type Option func(*config)

// WithBufferSize sets how many triples a rule buffer accumulates before
// it fires a rule execution. Small buffers minimise latency; large
// buffers amortise per-execution overhead. Default 128.
func WithBufferSize(n int) Option {
	return func(c *config) { c.bufferSize = n }
}

// WithTimeout sets how long an inactive non-empty buffer waits before it
// is forced to flush. Default 20ms.
func WithTimeout(d time.Duration) Option {
	return func(c *config) { c.timeout = d }
}

// WithWorkers sets the thread-pool size. Default GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithObserver attaches an Observer receiving engine events (used by the
// demo's recorder). Callbacks must be fast and thread-safe.
func WithObserver(o Observer) Option {
	return func(c *config) { c.observer = o }
}

// WithRetraction enables incremental deletion (Reasoner.Retract). The
// reasoner then tracks which triples were explicitly asserted, costing
// one set entry per explicit triple.
func WithRetraction() Option {
	return func(c *config) { c.retraction = true }
}

// WithProvenance enables per-triple provenance: Reasoner.Why reports
// whether a triple was asserted or which rule first derived it. Costs
// one map entry per triple.
func WithProvenance() Option {
	return func(c *config) { c.provenance = true }
}

// WithAdaptiveScheduling enables run-time buffer-capacity adaptation:
// rule modules that keep inferring nothing batch more triples per
// execution, productive modules stay reactive. The materialised closure
// is unaffected.
func WithAdaptiveScheduling() Option {
	return func(c *config) { c.adaptive = true }
}
