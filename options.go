package slider

import (
	"log/slog"
	"time"

	"repro/internal/obs"
	"repro/internal/reasoner"
	"repro/internal/vfs"
)

// config collects option values for New.
type config struct {
	bufferSize  int
	timeout     time.Duration
	workers     int
	observer    reasoner.Observer
	adaptive    bool
	retraction  bool
	provenance  bool
	viewMaxAge  time.Duration
	fullRetract bool

	// reg is the metrics registry the reasoner records into. Not an
	// Option: openDurable pre-creates it so the write-ahead log can
	// register its instruments before the Reasoner exists; newReasoner
	// creates one when unset.
	reg *obs.Registry

	// Durability (see durable.go).
	durableDir      string
	walSegmentSize  int64
	checkpointEvery int64
	walFsync        bool
	fs              vfs.FS
	diskMinFree     int64
	logger          *slog.Logger
}

// Option tunes a Reasoner at construction time. The three tunables mirror
// the paper's demo Setup panel: buffer size, buffer timeout and fragment
// (the fragment is New's first argument).
type Option func(*config)

// WithBufferSize sets how many triples a rule buffer accumulates before
// it fires a rule execution. Small buffers minimise latency; large
// buffers amortise per-execution overhead. Default 128.
func WithBufferSize(n int) Option {
	return func(c *config) { c.bufferSize = n }
}

// WithTimeout sets how long an inactive non-empty buffer waits before it
// is forced to flush. Default 20ms.
func WithTimeout(d time.Duration) Option {
	return func(c *config) { c.timeout = d }
}

// WithWorkers sets the thread-pool size. Default GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithObserver attaches an Observer receiving engine events (used by the
// demo's recorder). Callbacks must be fast and thread-safe.
func WithObserver(o Observer) Option {
	return func(c *config) { c.observer = o }
}

// WithRetraction enables incremental deletion (Reasoner.Retract). The
// reasoner then tracks which triples were explicitly asserted, costing
// one set entry per explicit triple.
func WithRetraction() Option {
	return func(c *config) { c.retraction = true }
}

// WithFullRetract forces Retract onto the classic delete-and-rederive
// path: the whole pass runs inside the exclusive writer window and
// rederivation restarts from the full surviving store, instead of the
// default two-phase suspect-local pass over a frozen view. Writers then
// stall for O(store) per retraction — this exists as a compatibility
// escape hatch and as the baseline the retraction benchmark compares
// against; production deployments should not use it.
func WithFullRetract() Option {
	return func(c *config) { c.fullRetract = true }
}

// WithProvenance enables per-triple provenance: Reasoner.Why reports
// whether a triple was asserted or which rule first derived it. Costs
// one map entry per triple.
func WithProvenance() Option {
	return func(c *config) { c.provenance = true }
}

// WithViewMaxAge bounds how stale the shared read-session snapshot may
// get before Reasoner.View quiesces the engine and captures a fresh one
// (default DefaultViewMaxAge). Smaller values mean fresher query answers
// but more frequent brief writer pauses; a negative value refreshes on
// every change.
func WithViewMaxAge(d time.Duration) Option {
	return func(c *config) { c.viewMaxAge = d }
}

// WithDurability makes the reasoner durable, rooted at dir: every
// acknowledged assert/retract batch is written to a segmented write-ahead
// log before it reaches the engine, the materialised store is
// checkpointed in the background, and reopening the same directory
// (Open, or New with this option) replays snapshot plus log tail.
// Durability implies WithRetraction: the explicit triple set is tracked
// and checkpointed so delete-and-rederive survives restarts.
//
// Open is the error-returning constructor; New panics if the directory
// cannot be opened or replayed.
func WithDurability(dir string) Option {
	return func(c *config) { c.durableDir = dir }
}

// WithSegmentSize sets the write-ahead log's segment roll threshold in
// bytes. Default wal.DefaultSegmentSize (4 MiB).
func WithSegmentSize(bytes int64) Option {
	return func(c *config) { c.walSegmentSize = bytes }
}

// WithCheckpointEvery sets how much live (uncheckpointed) log volume, in
// bytes, triggers a background checkpoint. 0 means the default
// (DefaultCheckpointEvery); a negative value disables automatic
// checkpointing entirely, including the checkpoint Close normally takes —
// the knowledge base then recovers by replaying the full log (plus
// whatever explicit Checkpoint calls were made). The value is a floor:
// once a checkpoint outgrows it, the next one waits for the live log to
// reach half the previous checkpoint's size, keeping checkpoint I/O
// proportional to data ingested rather than quadratic in store size.
func WithCheckpointEvery(bytes int64) Option {
	return func(c *config) { c.checkpointEvery = bytes }
}

// WithFsync syncs the write-ahead log file after every append. Off by
// default: a completed batch always survives a process crash, but only
// fsynced batches survive a power failure.
func WithFsync() Option {
	return func(c *config) { c.walFsync = true }
}

// WithVFS routes every file operation of the durability stack (log
// segments, manifest commits, checkpoints) through fs instead of the
// real disk. Production code never needs it; the disk-fault torture
// harness passes a vfs.FaultFS to script ENOSPC, fsync and rename
// failures deterministically.
func WithVFS(fs vfs.FS) Option {
	return func(c *config) { c.fs = fs }
}

// WithDiskMinFree sets a free-space floor in bytes for the knowledge
// base's filesystem: a background monitor samples free space, warns
// below twice the floor, and proactively enters read-only degraded mode
// below it — refusing writes before ENOSPC can tear a segment. 0 (the
// default) disables the monitor. Recovery is automatic once space is
// freed.
func WithDiskMinFree(bytes int64) Option {
	return func(c *config) { c.diskMinFree = bytes }
}

// WithLogger sets the structured logger the reasoner's background
// machinery (degradation transitions, recovery probes, disk watermarks)
// reports to. Defaults to slog.Default().
func WithLogger(l *slog.Logger) Option {
	return func(c *config) { c.logger = l }
}

// WithAdaptiveScheduling enables run-time buffer-capacity adaptation:
// rule modules that keep inferring nothing batch more triples per
// execution, productive modules stay reactive. The materialised closure
// is unaffected.
func WithAdaptiveScheduling() Option {
	return func(c *config) { c.adaptive = true }
}
