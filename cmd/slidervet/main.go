// Command slidervet runs the repo-invariant analyzer suite over this
// module: lock ordering, the uninterruptible exclusive retraction
// window, run immutability, hot-path discipline and metric naming (see
// INVARIANTS.md for the catalogue). It loads and type-checks the whole
// module with the standard library's go/* packages — no external
// dependencies — and exits nonzero when any checker reports a
// diagnostic.
//
// Usage:
//
//	go run ./cmd/slidervet ./...
//
// Package patterns are accepted for familiarity but the whole module
// is always analyzed: the invariants are cross-package properties (a
// lock-order violation pairs a facade lock with a store lock), so
// partial loads would silently weaken them.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "slidervet:", err)
		os.Exit(2)
	}
	prog, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slidervet:", err)
		os.Exit(2)
	}
	modPath := prog.Pkgs[0].Path // the root package's path is the module path
	for _, p := range prog.Pkgs {
		if len(p.Path) < len(modPath) {
			modPath = p.Path
		}
	}
	diags := analysis.Run(prog, analysis.DefaultCheckers(modPath))
	for _, d := range diags {
		fmt.Println(d.Rel(root))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "slidervet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
