// Command genont generates the evaluation datasets (paper §3) as
// N-Triples documents: BSBM-like e-commerce data, subClassOf_n chains,
// and the Wikipedia/WordNet stand-ins.
//
// Usage:
//
//	genont -kind bsbm -size 100000 -out bsbm_100k.nt
//	genont -kind subclass -size 500 -out subClassOf500.nt
//	genont -kind wikipedia -size 458369 | head
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bsbm"
	"repro/internal/ntriples"
	"repro/internal/ontogen"
	"repro/internal/rdf"
)

func main() {
	var (
		kind = flag.String("kind", "bsbm", "dataset kind: bsbm | subclass | wikipedia | wordnet | sensor")
		size = flag.Int("size", 100000, "approximate triple count (exact chain length for subclass)")
		seed = flag.Int64("seed", 42, "generator seed")
		out  = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var sts []rdf.Statement
	switch *kind {
	case "bsbm":
		sts = bsbm.Generate(bsbm.Config{Triples: *size, Seed: *seed})
	case "subclass":
		sts = ontogen.SubClassChain(*size)
	case "wikipedia":
		sts = ontogen.Wikipedia(ontogen.Config{Triples: *size, Seed: *seed})
	case "wordnet":
		sts = ontogen.WordNet(ontogen.Config{Triples: *size, Seed: *seed})
	case "sensor":
		sts = ontogen.Sensor(ontogen.Config{Triples: *size, Seed: *seed})
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if err := ntriples.WriteAll(dst, sts); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "genont: wrote %d statements (%s, seed %d)\n", len(sts), *kind, *seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genont:", err)
	os.Exit(1)
}
