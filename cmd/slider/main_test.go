package main

import (
	"context"
	"testing"

	"repro"
)

func TestFragmentByName(t *testing.T) {
	for _, name := range []string{"rhodf", "rho-df", "rho", "rdfs", "rdfs-lite"} {
		frag, err := fragmentByName(name)
		if err != nil {
			t.Errorf("fragmentByName(%q): %v", name, err)
		}
		if len(frag.Rules()) == 0 {
			t.Errorf("fragmentByName(%q) returned empty fragment", name)
		}
	}
	if _, err := fragmentByName("owl-full"); err == nil {
		t.Error("unknown fragment accepted")
	}
}

func TestBuildReasonerDataDir(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	if _, _, err := buildReasoner(slider.RhoDF, "snap.bin", dir, nil); err == nil {
		t.Fatal("-data with -load accepted")
	}

	r, recovered, err := buildReasoner(slider.RhoDF, "", dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 {
		t.Fatalf("fresh durable KB claims %d recovered triples", recovered)
	}
	stmt := slider.NewStatement(
		slider.IRI("http://example.org/Cat"),
		slider.IRI(slider.SubClassOf),
		slider.IRI("http://example.org/Animal"))
	if _, err := r.Add(stmt); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Second start: the statement must come back, counted as recovered.
	r2, recovered, err := buildReasoner(slider.RhoDF, "", dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(ctx)
	if recovered != 1 {
		t.Fatalf("recovered %d triples, want 1", recovered)
	}
	if !r2.Contains(stmt) {
		t.Fatal("durable KB lost the statement across runs")
	}
}

func TestFragmentRuleCounts(t *testing.T) {
	rho, _ := fragmentByName("rhodf")
	rdfs, _ := fragmentByName("rdfs")
	lite, _ := fragmentByName("rdfs-lite")
	if len(rho.Rules()) != 8 || len(rdfs.Rules()) != 14 || len(lite.Rules()) != 13 {
		t.Fatalf("rule counts: %d %d %d", len(rho.Rules()), len(rdfs.Rules()), len(lite.Rules()))
	}
}
