package main

import (
	"context"
	"testing"

	"repro"
	"repro/internal/cmdutil"
)

func TestBuildReasonerDataDir(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	if _, _, err := buildReasoner(slider.RhoDF, "snap.bin", dir, nil); err == nil {
		t.Fatal("-data with -load accepted")
	}

	r, recovered, err := buildReasoner(slider.RhoDF, "", dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 {
		t.Fatalf("fresh durable KB claims %d recovered triples", recovered)
	}
	stmt := slider.NewStatement(
		slider.IRI("http://example.org/Cat"),
		slider.IRI(slider.SubClassOf),
		slider.IRI("http://example.org/Animal"))
	if _, err := r.Add(stmt); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Second start: the statement must come back, counted as recovered.
	r2, recovered, err := buildReasoner(slider.RhoDF, "", dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(ctx)
	if recovered != 1 {
		t.Fatalf("recovered %d triples, want 1", recovered)
	}
	if !r2.Contains(stmt) {
		t.Fatal("durable KB lost the statement across runs")
	}
}

func TestFragmentRuleCounts(t *testing.T) {
	rho, _ := cmdutil.FragmentByName("rhodf")
	rdfs, _ := cmdutil.FragmentByName("rdfs")
	lite, _ := cmdutil.FragmentByName("rdfs-lite")
	if len(rho.Rules()) != 8 || len(rdfs.Rules()) != 14 || len(lite.Rules()) != 13 {
		t.Fatalf("rule counts: %d %d %d", len(rho.Rules()), len(rdfs.Rules()), len(lite.Rules()))
	}
}
