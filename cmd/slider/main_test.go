package main

import "testing"

func TestFragmentByName(t *testing.T) {
	for _, name := range []string{"rhodf", "rho-df", "rho", "rdfs", "rdfs-lite"} {
		frag, err := fragmentByName(name)
		if err != nil {
			t.Errorf("fragmentByName(%q): %v", name, err)
		}
		if len(frag.Rules()) == 0 {
			t.Errorf("fragmentByName(%q) returned empty fragment", name)
		}
	}
	if _, err := fragmentByName("owl-full"); err == nil {
		t.Error("unknown fragment accepted")
	}
}

func TestFragmentRuleCounts(t *testing.T) {
	rho, _ := fragmentByName("rhodf")
	rdfs, _ := fragmentByName("rdfs")
	lite, _ := fragmentByName("rdfs-lite")
	if len(rho.Rules()) != 8 || len(rdfs.Rules()) != 14 || len(lite.Rules()) != 13 {
		t.Fatalf("rule counts: %d %d %d", len(rho.Rules()), len(rdfs.Rules()), len(lite.Rules()))
	}
}
