// Command slider runs the Slider incremental reasoner over N-Triples
// input: it streams the document through the engine, waits for the
// inference to complete, and writes the materialised store (explicit plus
// inferred triples) as N-Triples.
//
// Usage:
//
//	slider -fragment rdfs -in data.nt -out closure.nt -stats
//	cat data.nt | slider > closure.nt
//
// With -data DIR the knowledge base is durable: DIR holds a write-ahead
// log plus checkpoints, previous state is replayed on start, ingested
// statements are logged before they are acknowledged, and a checkpoint
// is taken on clean exit — so the next start recovers instantly and a
// crash loses at most the batch being ingested:
//
//	slider -data kb/ -in monday.nt -out none
//	slider -data kb/ -in tuesday.nt -query 'SELECT ?s WHERE { ?s a <http://example.org/T> . }'
//
// SIGINT/SIGTERM abort the run but still close the knowledge base
// gracefully (bounded at 30s), so everything acknowledged before the
// signal is checkpointed; a second signal force-exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro"
	"repro/internal/cmdutil"
)

// ctxReader aborts a streaming load when the context is cancelled, so a
// SIGINT during a long ingest is noticed at the next read instead of
// after the whole document.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (cr ctxReader) Read(p []byte) (int, error) {
	if err := cr.ctx.Err(); err != nil {
		return 0, err
	}
	return cr.r.Read(p)
}

func main() {
	var (
		fragName = flag.String("fragment", "rhodf", "fragment to reason with: rhodf | rdfs | rdfs-lite (no resource typing) | owl-horst")
		in       = flag.String("in", "", "input file (default stdin)")
		format   = flag.String("format", "auto", "input format: nt | ttl | auto (by file extension)")
		out      = flag.String("out", "", "output N-Triples file for the closure (default stdout; use 'none' to skip)")
		bufSize  = flag.Int("buffer", 0, "rule buffer size (0 = default)")
		timeout  = flag.Duration("timeout", 0, "buffer inactivity timeout (0 = default)")
		workers  = flag.Int("workers", 0, "thread pool size (0 = GOMAXPROCS)")
		stats    = flag.Bool("stats", false, "print per-rule statistics to stderr")
		quiet    = flag.Bool("q", false, "suppress the summary line")
		queryStr = flag.String("query", "", "run a SELECT query over the closure instead of exporting it")
		explain  = flag.Bool("explain", false, "with -query: print the execution profile (join order, estimated vs actual rows) to stderr")
		save     = flag.String("save", "", "write a binary snapshot of the materialised store to this file")
		load     = flag.String("load", "", "restore a binary snapshot as background knowledge before reading input")
		data     = flag.String("data", "", "durable knowledge base directory: replay previous state on start, write-ahead-log new statements, checkpoint on clean exit")
		adaptive = flag.Bool("adaptive", false, "enable adaptive buffer scheduling")
		logJSON  = flag.Bool("log-json", false, "emit diagnostics as JSON log lines instead of text")
	)
	flag.Parse()

	var logger *slog.Logger
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	frag, err := cmdutil.FragmentByName(*fragName)
	if err != nil {
		fatal(err)
	}
	var opts []slider.Option
	if *bufSize > 0 {
		opts = append(opts, slider.WithBufferSize(*bufSize))
	}
	if *timeout > 0 {
		opts = append(opts, slider.WithTimeout(*timeout))
	}
	if *workers > 0 {
		opts = append(opts, slider.WithWorkers(*workers))
	}
	if *adaptive {
		opts = append(opts, slider.WithAdaptiveScheduling())
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}

	r, recovered, err := buildReasoner(frag, *load, *data, opts)
	if err != nil {
		fatal(err)
	}
	if *data != "" && !*quiet {
		logger.Info("durable KB opened", "dir", *data, "recovered_triples", recovered)
	}
	// SIGINT/SIGTERM interrupt the run but still close the knowledge
	// base gracefully (bounded below), so a durable KB's close-time
	// checkpoint is not skipped by a Ctrl-C. A second signal force-kills
	// the process the default way (stop() restores default handling).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	interrupted := func(err error) {
		stop()
		logger.Warn("interrupted; closing knowledge base", "err", err)
		if cerr := cmdutil.CloseBounded(r, 30*time.Second); cerr != nil {
			fatal(cerr)
		}
		os.Exit(130)
	}
	start := time.Now()
	n := 0
	// Input is read unless this is a snapshot-restore-only run: -data is
	// a live KB, so piped stdin is new input to ingest, same as with no
	// flags at all — silently discarding it would look like durable
	// storage that never happened.
	if *in != "" || *load == "" {
		src = ctxReader{ctx: ctx, r: src}
		useTurtle := *format == "ttl" ||
			(*format == "auto" && (strings.HasSuffix(*in, ".ttl") || strings.HasSuffix(*in, ".turtle")))
		if useTurtle {
			n, err = r.LoadTurtle(src)
		} else {
			n, err = r.LoadNTriples(src)
		}
		if err != nil {
			if ctx.Err() != nil {
				interrupted(err)
			}
			fatal(err)
		}
	}
	if err := r.Wait(ctx); err != nil {
		if ctx.Err() != nil {
			interrupted(err)
		}
		fatal(err)
	}
	elapsed := time.Since(start)
	s := r.Stats()

	if !*quiet {
		logger.Info("run complete",
			"statements_in", n, "inferred", s.Inferred, "total", r.Len(),
			"elapsed", elapsed.Round(time.Millisecond).String(),
			"triples_per_sec", int64(float64(n)/elapsed.Seconds()),
			"fragment", frag.Name())
	}
	if *stats {
		printStats(s)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := r.Snapshot(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if !*quiet {
			logger.Info("snapshot written", "path", *save)
		}
	}

	switch {
	case *queryStr != "":
		var rows []slider.Binding
		var err error
		if *explain {
			var ex *slider.Explain
			rows, ex, err = r.SelectExplain(*queryStr)
			if err == nil {
				printExplain(os.Stderr, ex)
			}
		} else {
			rows, err = r.Select(*queryStr)
		}
		if err != nil {
			fatal(err)
		}
		for _, row := range rows {
			parts := make([]string, 0, len(row))
			for v, term := range row {
				parts = append(parts, "?"+v+"="+term.String())
			}
			sortStrings(parts)
			fmt.Println(strings.Join(parts, "\t"))
		}
	case *out != "none":
		var dst io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			dst = f
		}
		if err := r.Export(dst); err != nil {
			fatal(err)
		}
	}
	// Background checkpoints run off this goroutine; a failure there
	// would otherwise only surface as a sticky error on the next write.
	// Report it now, before the close-time checkpoint can mask it.
	if err := r.Err(); err != nil {
		fatal(fmt.Errorf("background failure: %w", err))
	}
	if err := r.Close(context.Background()); err != nil {
		fatal(err)
	}
}

func sortStrings(s []string) {
	sort.Strings(s)
}

// printExplain renders the query's execution profile: one line per
// pattern in evaluation order, then the plan totals.
func printExplain(w io.Writer, ex *slider.Explain) {
	order := "planned"
	if ex.NaiveOrder {
		order = "as written"
	}
	fmt.Fprintf(w, "explain: order %v (%s), plan cost %.1f, plan %dus, exec %dus, %d rows\n",
		ex.Order, order, ex.PlanCost, ex.PlanMicros, ex.ExecMicros, ex.Rows)
	for _, idx := range ex.Order {
		p := ex.Patterns[idx]
		path := "scan"
		if p.Galloped {
			path = "gallop"
		}
		fmt.Fprintf(w, "  step %d: %s  est %.1f rows/probe, actual %d rows over %d probes (%s)\n",
			p.Step, p.Pattern, p.EstRows, p.ActualRows, p.Probes, path)
	}
}

// buildReasoner constructs the reasoner from the -load / -data flags:
// a durable knowledge base (replayed from its directory), a restored
// snapshot, or a fresh in-memory reasoner. recovered is the triple count
// restored before any new input, for the -data banner.
func buildReasoner(frag slider.Fragment, load, data string, opts []slider.Option) (r *slider.Reasoner, recovered int, err error) {
	switch {
	case data != "" && load != "":
		return nil, 0, fmt.Errorf("slider: -data and -load are mutually exclusive (a durable KB checkpoints itself)")
	case data != "":
		r, err = slider.Open(data, frag, opts...)
		if err != nil {
			return nil, 0, err
		}
		// Quiesce before counting: replayed tail batches may still be
		// inferring, and the banner should print the same number on
		// every start of the same KB.
		if err := r.Wait(context.Background()); err != nil {
			r.Close(context.Background())
			return nil, 0, err
		}
		return r, r.Len(), nil
	case load != "":
		f, err := os.Open(load)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		r, err = slider.LoadSnapshot(frag, f, opts...)
		if err != nil {
			return nil, 0, err
		}
		return r, r.Len(), nil
	}
	return slider.New(frag, opts...), 0, nil
}

func printStats(s slider.Stats) {
	tw := tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "RULE\tROUTED\tEXECUTIONS\tFULL\tTIMEOUT\tEXPLICIT\tDERIVED\tFRESH")
	for _, m := range s.Modules {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			m.Rule, m.Routed, m.Executions, m.BufferFullFlushes,
			m.TimeoutFlushes, m.ExplicitFlushes, m.Derived, m.Fresh)
	}
	tw.Flush()
	fmt.Fprintf(os.Stderr, "duplicates dropped: %d\n", s.Duplicates)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slider:", err)
	os.Exit(1)
}
