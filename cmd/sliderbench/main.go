// Command sliderbench regenerates the paper's evaluation (§3): Table 1,
// Figure 2 (the ρdf rules dependency graph), Figure 3 and the demo's
// parameter sweep.
//
// Usage:
//
//	sliderbench -table1                 # Table 1 at laptop scale
//	sliderbench -table1 -scale paper    # the paper's dataset sizes
//	sliderbench -fig3                   # Figure 3 series
//	sliderbench -fig2 | dot -Tpng       # Figure 2 as DOT
//	sliderbench -sweep -dataset BSBM_100k
//	sliderbench -ingest                 # batch-ingest scaling, BENCH_ingest.json
//	sliderbench -wal                    # durability tax + cold recovery, BENCH_wal.json
//	sliderbench -checkpoint             # writer pause during capture, BENCH_checkpoint.json
//	sliderbench -serve                  # HTTP QPS/latency under ingest, BENCH_serve.json
//	sliderbench -retract                # retraction stall vs store size, BENCH_retract.json
//	sliderbench -join                   # multi-pattern join latency, BENCH_join.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/trace"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "reproduce Table 1 (both fragments, both engines)")
		fig2    = flag.Bool("fig2", false, "print the ρdf rules dependency graph (Figure 2) as DOT")
		fig3    = flag.Bool("fig3", false, "reproduce Figure 3 (runs the Table 1 matrix)")
		sweep   = flag.Bool("sweep", false, "run the demo's buffer-size × timeout parameter sweep")
		dataset = flag.String("dataset", "BSBM_100k", "dataset for -sweep")
		scale   = flag.String("scale", "small", "dataset scale: small | medium | paper")
		buffer  = flag.Int("buffer", 0, "Slider buffer size (0 = default)")
		timeout = flag.Duration("timeout", 0, "Slider buffer timeout (0 = default)")
		repeat  = flag.Int("repeat", 3, "runs per cell; the fastest is reported")
		limit   = flag.Duration("limit", 30*time.Minute, "overall time limit")

		ingest     = flag.Bool("ingest", false, "measure batch-ingest throughput scaling over worker counts")
		ingestOut  = flag.String("ingestout", "BENCH_ingest.json", "output path for the -ingest JSON report")
		batchSize  = flag.Int("batchsize", 512, "triples per AddBatch call for -ingest and -wal")
		workerList = flag.String("workerlist", "1,2,4,8", "comma-separated worker counts for -ingest and -wal")

		walBench = flag.Bool("wal", false, "measure write-ahead-logged ingest vs in-memory, and cold-recovery time")
		walOut   = flag.String("walout", "BENCH_wal.json", "output path for the -wal JSON report")

		ckptBench = flag.Bool("checkpoint", false, "measure writer pause during checkpoint capture (old blocking path vs two-phase streaming)")
		ckptFacts = flag.Int("ckptfacts", 400_000, "explicit facts for -checkpoint (closure is ~2.5x)")
		ckptOut   = flag.String("ckptout", "BENCH_checkpoint.json", "output path for the -checkpoint JSON report")

		retractBench = flag.Bool("retract", false, "measure retraction latency and concurrent-writer stall vs store size: classic full rederive vs two-phase suspect-local DRed")
		retractOut   = flag.String("retractout", "BENCH_retract.json", "output path for the -retract JSON report")
		retractSizes = flag.String("retractsizes", "10000,100000,500000", "comma-separated explicit-fact counts for -retract")
		retractBatch = flag.Int("retractbatch", 8, "explicit triples retracted per -retract pass (the fixed suspect-set knob)")
		retractCell  = flag.Duration("retractcell", 3*time.Second, "measurement duration per -retract mode window")

		joinBench = flag.Bool("join", false, "measure multi-pattern join latency: cost-based order + galloping intersection vs as-written order, run-backed vs map-only store layout")
		joinOut   = flag.String("joinout", "BENCH_join.json", "output path for the -join JSON report")
		joinSizes = flag.String("joinsizes", "100000,1000000", "comma-separated dataset sizes (triples) for -join")

		serve        = flag.Bool("serve", false, "measure the HTTP serving layer: QPS and query latency under concurrent ingest, and the writer-throughput cost of querying")
		serveOut     = flag.String("serveout", "BENCH_serve.json", "output path for the -serve JSON report")
		serveClients = flag.String("serveclients", "1,4,16", "comma-separated query-client counts for -serve")
		serveWriters = flag.Int("servewriters", 4, "concurrent ingest writers for -serve")
		serveCell    = flag.Duration("servecell", 3*time.Second, "measurement duration per -serve cell")

		torture      = flag.Bool("torture", false, "run the disk-fault torture harness: seeded fault schedules under concurrent ingest/retract/checkpoint load, asserting the degraded-mode contract (exits nonzero on any violation)")
		tortureOut   = flag.String("tortureout", "BENCH_torture.json", "output path for the -torture JSON report")
		tortureN     = flag.Int("tortureschedules", 4, "seeded schedules for -torture")
		tortureSeed  = flag.Int64("tortureseed", 1, "base seed for -torture (schedule i uses seed+i)")
		tortureFlts  = flag.Int("torturefaults", 4, "fault rounds per -torture schedule")
		tortureWrtrs = flag.Int("torturewriters", 4, "concurrent ingest writers per -torture schedule")

		traceOn = flag.Bool("trace", false, "leave flight-path tracing on while benchmarking (default off for clean baselines)")
	)
	flag.Parse()

	if !*traceOn {
		trace.SetEnabled(false)
	}

	sc, err := bench.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	cfg := bench.SliderConfig{BufferSize: *buffer, Timeout: *timeout, Repeats: *repeat}
	ctx, cancel := context.WithTimeout(context.Background(), *limit)
	defer cancel()

	if !*table1 && !*fig2 && !*fig3 && !*sweep && !*ingest && !*walBench && !*ckptBench && !*serve && !*retractBench && !*joinBench && !*torture {
		*table1 = true
	}

	if *fig2 {
		bench.Figure2(os.Stdout)
	}
	if *table1 || *fig3 {
		rows, err := bench.Table1(ctx, os.Stdout, sc, cfg)
		if err != nil {
			fatal(err)
		}
		if *fig3 {
			fmt.Println()
			bench.Figure3(os.Stdout, rows)
		}
	}
	if *sweep {
		ds, err := bench.DatasetByName(*dataset, sc)
		if err != nil {
			fatal(err)
		}
		if _, err := bench.Sweep(ctx, os.Stdout, ds, nil, nil); err != nil {
			fatal(err)
		}
	}
	if *ingest {
		ds, err := bench.DatasetByName(*dataset, sc)
		if err != nil {
			fatal(err)
		}
		workers, err := parseWorkerList(*workerList)
		if err != nil {
			fatal(err)
		}
		rep, err := bench.IngestScaling(ctx, ds, workers, *batchSize, cfg)
		if err != nil {
			fatal(err)
		}
		bench.WriteIngestTable(os.Stdout, rep)
		f, err := os.Create(*ingestOut)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteIngestJSON(f, rep); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *ingestOut)
	}
	if *walBench {
		ds, err := bench.DatasetByName(*dataset, sc)
		if err != nil {
			fatal(err)
		}
		workers, err := parseWorkerList(*workerList)
		if err != nil {
			fatal(err)
		}
		rep, err := bench.WALScaling(ctx, ds, workers, *batchSize, cfg)
		if err != nil {
			fatal(err)
		}
		bench.WriteWALTable(os.Stdout, rep)
		f, err := os.Create(*walOut)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteWALJSON(f, rep); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *walOut)
	}
	if *serve {
		clients, err := parseWorkerList(*serveClients)
		if err != nil {
			fatal(err)
		}
		rep, err := bench.ServeScaling(ctx, clients, *serveWriters, *batchSize, *serveCell, cfg)
		if err != nil {
			fatal(err)
		}
		bench.WriteServeTable(os.Stdout, rep)
		f, err := os.Create(*serveOut)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteServeJSON(f, rep); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *serveOut)
	}
	if *retractBench {
		sizes, err := parseWorkerList(*retractSizes)
		if err != nil {
			fatal(err)
		}
		rep, err := bench.RetractPause(ctx, sizes, *retractBatch, *retractCell, cfg)
		if err != nil {
			fatal(err)
		}
		bench.WriteRetractTable(os.Stdout, rep)
		f, err := os.Create(*retractOut)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteRetractJSON(f, rep); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *retractOut)
	}
	if *joinBench {
		sizes, err := parseWorkerList(*joinSizes)
		if err != nil {
			fatal(err)
		}
		rep, err := bench.JoinBench(ctx, sizes, *repeat)
		if err != nil {
			fatal(err)
		}
		bench.WriteJoinTable(os.Stdout, rep)
		f, err := os.Create(*joinOut)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteJoinJSON(f, rep); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *joinOut)
	}
	if *ckptBench {
		rep, err := bench.CheckpointPause(ctx, *ckptFacts, cfg)
		if err != nil {
			fatal(err)
		}
		bench.WriteCheckpointTable(os.Stdout, rep)
		f, err := os.Create(*ckptOut)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteCheckpointJSON(f, rep); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *ckptOut)
	}
	if *torture {
		rep, err := bench.Torture(ctx, bench.TortureConfig{
			Schedules: *tortureN,
			Writers:   *tortureWrtrs,
			Faults:    *tortureFlts,
			Seed:      *tortureSeed,
		})
		if err != nil {
			fatal(err)
		}
		bench.WriteTortureTable(os.Stdout, rep)
		f, err := os.Create(*tortureOut)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteTortureJSON(f, rep); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *tortureOut)
		if rep.Violations > 0 {
			fatal(fmt.Errorf("torture: %d contract violations", rep.Violations))
		}
	}
}

// parseWorkerList parses a comma-separated list of worker counts.
func parseWorkerList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sliderbench:", err)
	os.Exit(1)
}
