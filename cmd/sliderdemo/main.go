// Command sliderdemo serves the paper's demonstration web interface
// (§4): pick an ontology, tune the fragment / buffer size / timeout, run
// the inference, and replay it step by step through the inference player.
//
// Usage:
//
//	sliderdemo -addr :8080 -scale small
//	# then open http://localhost:8080/
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/bench"
	"repro/internal/demo"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		scale = flag.String("scale", "small", "ontology scale: small | medium | paper")
	)
	flag.Parse()

	sc, err := bench.ParseScale(*scale)
	if err != nil {
		log.Fatalf("sliderdemo: %v", err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           demo.NewServer(sc),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("sliderdemo: serving the Slider demonstration on http://localhost%s/ (scale %s)\n", *addr, sc)
	log.Fatal(srv.ListenAndServe())
}
