// Command sliderd is the Slider serving daemon: it opens (or creates) a
// durable knowledge base and serves it over HTTP — batch ingest with
// write coalescing, snapshot-isolated streamed queries, retraction,
// health and stats (see internal/server for the API).
//
// Usage:
//
//	sliderd -data kb/ -addr :8080
//	sliderd -addr :8080 -fragment rdfs          # in-memory (no durability)
//
//	curl -X POST --data-binary @facts.nt localhost:8080/v1/insert
//	curl -X POST -d 'SELECT ?s WHERE { ?s a <http://example.org/T> . } LIMIT 10' \
//	     localhost:8080/v1/query
//	curl -X POST --data-binary @gone.nt localhost:8080/v1/retract
//	curl localhost:8080/healthz
//
// On SIGINT/SIGTERM the daemon drains: new requests get 503, admitted
// requests finish (bounded by -drain-timeout), and the knowledge base is
// closed cleanly — taking its close-time checkpoint — before exit. A
// second signal forces immediate exit.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	slider "repro"
	"repro/internal/cmdutil"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		data         = flag.String("data", "", "durable knowledge base directory (empty: in-memory, retraction still enabled)")
		fragName     = flag.String("fragment", "rhodf", "fragment to reason with: rhodf | rdfs | rdfs-lite | owl-horst")
		bufSize      = flag.Int("buffer", 0, "rule buffer size (0 = default)")
		timeout      = flag.Duration("timeout", 0, "buffer inactivity timeout (0 = default)")
		workers      = flag.Int("workers", 0, "thread pool size (0 = GOMAXPROCS)")
		adaptive     = flag.Bool("adaptive", false, "enable adaptive buffer scheduling")
		viewMaxAge   = flag.Duration("view-max-age", slider.DefaultViewMaxAge, "max staleness of the shared query snapshot")
		maxInflight  = flag.Int("max-inflight", 64, "max concurrently admitted requests (admission control)")
		maxBody      = flag.Int64("max-body", 8<<20, "max request body bytes")
		maxResults   = flag.Int("max-results", 10000, "max rows streamed per query")
		queryConc    = flag.Int("query-concurrency", 0, "max queries executing at once; excess queue (0 = GOMAXPROCS/2, negative = unlimited)")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "per-query wall-clock budget")
		retractTO    = flag.Duration("retract-timeout", 5*time.Minute, "per-retraction delete-and-rederive budget (server-scoped: client disconnects cannot abort a running pass; a timeout mid-analysis leaves the KB untouched)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget (drain + close)")
		debugAddr    = flag.String("debug-addr", "", "listen address for the debug server (pprof + expvar); empty = disabled")
		logRequests  = flag.Bool("log-requests", false, "log one structured line per HTTP request to stderr")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		quiet        = flag.Bool("q", false, "suppress startup/shutdown banners")
		traceSlow    = flag.Duration("trace-slow", 25*time.Millisecond, "floor for the flight recorder's slow-trace threshold (adaptive per span family above it)")
		traceRing    = flag.Int("trace-ring", 128, "retained slow/error traces at GET /debug/traces")
		noTrace      = flag.Bool("no-trace", false, "disable request/flight tracing entirely")
		diskMinFree  = flag.Int64("disk-min-free", 0, "free-space floor in bytes for the KB filesystem: warn below 2x, enter read-only degraded mode below it (0 = disabled; durable KBs only)")
	)
	flag.Parse()

	logger := newLogger(*logJSON)

	trace.Default.SetSlowThreshold(*traceSlow)
	trace.Default.SetRingCapacity(*traceRing)
	trace.Default.SetLogger(logger)
	trace.SetEnabled(!*noTrace)

	frag, err := cmdutil.FragmentByName(*fragName)
	if err != nil {
		fatal(err)
	}
	opts := []slider.Option{
		slider.WithRetraction(),
		slider.WithViewMaxAge(*viewMaxAge),
		slider.WithLogger(logger),
	}
	if *diskMinFree > 0 {
		opts = append(opts, slider.WithDiskMinFree(*diskMinFree))
	}
	if *bufSize > 0 {
		opts = append(opts, slider.WithBufferSize(*bufSize))
	}
	if *timeout > 0 {
		opts = append(opts, slider.WithTimeout(*timeout))
	}
	if *workers > 0 {
		opts = append(opts, slider.WithWorkers(*workers))
	}
	if *adaptive {
		opts = append(opts, slider.WithAdaptiveScheduling())
	}

	var r *slider.Reasoner
	if *data != "" {
		r, err = slider.Open(*data, frag, opts...)
		if err != nil {
			fatal(err)
		}
		if err := r.Wait(context.Background()); err != nil {
			fatal(err)
		}
		if !*quiet {
			logger.Info("durable KB opened", "dir", *data, "triples", r.Len(), "fragment", frag.Name())
		}
	} else {
		r = slider.New(frag, opts...)
		if !*quiet {
			logger.Info("in-memory KB (data is lost on exit)", "fragment", frag.Name())
		}
	}

	reqLogger := slog.New(slog.DiscardHandler)
	if *logRequests {
		reqLogger = logger
	}
	srv := server.New(r, server.Config{
		MaxInflight:      *maxInflight,
		MaxBodyBytes:     *maxBody,
		MaxResults:       *maxResults,
		QueryTimeout:     *queryTimeout,
		QueryConcurrency: *queryConc,
		RetractTimeout:   *retractTO,
		Logger:           reqLogger,
	})
	// Header and idle timeouts bound how long a connection may sit
	// half-open (slowloris defense); request bodies and long-running
	// queries are bounded separately by the server's own budgets, so no
	// blanket ReadTimeout/WriteTimeout that would cut streamed NDJSON off.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Opt-in debug listener, separate from the serving address so
	// profiling endpoints are never reachable through the public port:
	// net/http/pprof handlers plus expvar (Go runtime memstats).
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		dbgSrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			if !*quiet {
				logger.Info("debug server listening", "addr", *debugAddr)
			}
			if derr := dbgSrv.ListenAndServe(); derr != nil {
				logger.Error("debug server failed", "err", derr)
			}
		}()
	}

	// First SIGINT/SIGTERM starts the graceful drain; a second one (the
	// context is restored by stop()) kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if !*quiet {
			logger.Info("listening", "addr", *addr)
		}
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		r.Close(context.Background())
		fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C force-exits
	if !*quiet {
		logger.Info("draining (send the signal again to force exit)")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop admitting (server-level 503s) and let the tail finish, then
	// stop the listener, then close the KB so the close-time checkpoint
	// covers everything acknowledged.
	if err := srv.Drain(shutdownCtx); err != nil {
		logger.Error("drain failed", "err", err)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("http shutdown failed", "err", err)
	}
	if err := cmdutil.CloseBounded(r, *drainTimeout); err != nil {
		fatal(fmt.Errorf("close: %w", err))
	}
	if !*quiet {
		logger.Info("clean shutdown")
	}
}

// newLogger builds the daemon's stderr logger: human-readable text by
// default, JSON when asked (for log shippers).
func newLogger(jsonOut bool) *slog.Logger {
	if jsonOut {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sliderd:", err)
	os.Exit(1)
}
