// Durable knowledge bases. A durable Reasoner pairs the in-memory
// engine with a write-ahead log (internal/wal): every acknowledged
// assert/retract batch is logged — together with the dictionary entries
// that name it — before the engine applies it, and the materialised
// store is checkpointed (internal/snapshot format) in the background.
//
// Reopening the directory restores the checkpointed closure instantly
// and re-runs inference only over the logged tail, so a crash loses at
// most the batch whose Add never returned. Retractions are logged too:
// replay re-runs delete-and-rederive, so the recovered closure is the
// closure of the surviving explicit triples — exactly the state a
// process that never crashed would hold.
package slider

import (
	"context"
	"fmt"
	"io"
	"maps"
	"sync"

	"repro/internal/maintenance"
	"repro/internal/rdf"
	"repro/internal/snapshot"
	"repro/internal/store"
	"repro/internal/wal"
)

// DefaultCheckpointEvery is how much live (uncheckpointed) write-ahead
// log a durable reasoner accumulates before a background checkpoint.
const DefaultCheckpointEvery = 4 << 20

// Open opens (creating if necessary) a durable knowledge base rooted at
// dir and returns a Reasoner for the fragment. If the directory holds a
// previous run's state, the checkpoint is loaded as background knowledge
// and the log tail is replayed — inference re-runs only for the
// uncheckpointed suffix. A torn final record (crash mid-append) is
// truncated away. The fragment should match the one the directory was
// written with: the checkpoint stores the materialised closure, which a
// weaker fragment would not re-derive.
func Open(dir string, frag Fragment, opts ...Option) (*Reasoner, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	cfg.durableDir = dir
	return openDurable(frag, cfg)
}

// durability is the write-ahead-log state of a durable Reasoner.
type durability struct {
	log             *wal.Log
	checkpointEvery int64 // <0: never checkpoint automatically

	// mu serializes log appends with their engine handoff, and excludes
	// both while a checkpoint captures the store. It is taken before
	// explicitMu wherever both are held.
	mu sync.Mutex

	// errMu guards err on its own so read-only paths (Wait) never block
	// behind a checkpoint holding mu.
	errMu sync.Mutex
	err   error // first log/checkpoint failure; poisons further writes

	// Dictionary high-water marks: how many terms per kind have been
	// written to the log (or were present in the loaded checkpoint).
	hwIRIs, hwBlanks, hwLiterals int

	ckptInFlight bool
	ckptDone     chan struct{} // closed when the in-flight checkpoint ends
}

// openDurable builds a durable Reasoner from an option-parsed config.
func openDurable(frag Fragment, cfg config) (*Reasoner, error) {
	cfg.retraction = true // replayed retract records need the explicit set
	l, err := wal.Open(cfg.durableDir, wal.Options{
		SegmentSize: cfg.walSegmentSize,
		Fsync:       cfg.walFsync,
	})
	if err != nil {
		return nil, err
	}
	// A checkpoint stores a materialised closure: reopening under
	// different rules would silently mix fragments and re-persist the
	// hybrid. Record the fragment on first open, refuse mismatches.
	switch recorded := l.Meta(); recorded {
	case "":
		if err := l.SetMeta(frag.Name()); err != nil {
			l.Close()
			return nil, err
		}
	case frag.Name():
	default:
		l.Close()
		return nil, fmt.Errorf("slider: knowledge base at %s was built with fragment %q, not %q",
			cfg.durableDir, recorded, frag.Name())
	}
	dict := rdf.NewDictionary()
	st := store.New()
	var explicitSeed []rdf.Triple
	snapRC, expRC, hasCkpt, err := l.OpenCheckpoint()
	if err != nil {
		l.Close()
		return nil, err
	}
	if hasCkpt {
		dict, st, err = snapshot.Load(snapRC)
		snapRC.Close()
		if err == nil {
			explicitSeed, err = wal.ReadExplicit(expRC)
		}
		expRC.Close()
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("slider: loading checkpoint: %w", err)
		}
	}
	r := newReasoner(frag, dict, st, cfg)
	for _, t := range explicitSeed {
		r.explicit[t] = struct{}{}
	}
	if err := r.replayLog(l); err != nil {
		r.engine.Close(context.Background())
		l.Close()
		return nil, err
	}
	every := cfg.checkpointEvery
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	d := &durability{log: l, checkpointEvery: every}
	d.hwIRIs, d.hwBlanks, d.hwLiterals = dict.KindCounts()
	r.dur = d
	return r, nil
}

// replayLog re-applies the live log tail: dictionary deltas are
// re-encoded (and verified against the IDs the log recorded), assert
// batches re-enter the engine so their consequences are re-inferred
// against the checkpointed background, and retract batches re-run
// delete-and-rederive. Runs before r.dur is armed, so nothing is
// re-logged.
func (r *Reasoner) replayLog(l *wal.Log) error {
	ctx := context.Background()
	_, err := l.Replay(func(rec wal.Record) error {
		for _, te := range rec.Terms {
			if got := r.dict.Encode(te.Term); got != te.ID {
				return fmt.Errorf("slider: wal replay: term %v resolved to ID %d, log recorded %d",
					te.Term, uint64(got), uint64(te.ID))
			}
		}
		switch rec.Op {
		case wal.OpAssert:
			r.applyAssert(rec.Triples)
		case wal.OpRetract:
			// DRed needs a quiescent store, as in Retract.
			if err := r.engine.Wait(ctx); err != nil {
				return err
			}
			r.explicitMu.Lock()
			_, err := maintenance.Retract(ctx, r.store, r.frag.rules, r.explicit, rec.Triples)
			r.explicitMu.Unlock()
			if err != nil {
				return err
			}
		}
		return nil
	})
	return err
}

// termDelta collects the dictionary terms registered since the previous
// call, advancing the high-water marks. Called with d.mu held, so deltas
// land in the log in registration order and replay reproduces identical
// IDs. A term encoded by a not-yet-logged concurrent batch may ride
// along with an earlier record — harmless, replay just registers it
// sooner.
func (d *durability) termDelta(dict *rdf.Dictionary) []wal.TermEntry {
	iris, blanks, literals := dict.KindCounts()
	if iris == d.hwIRIs && blanks == d.hwBlanks && literals == d.hwLiterals {
		return nil
	}
	delta := make([]wal.TermEntry, 0,
		(iris-d.hwIRIs)+(blanks-d.hwBlanks)+(literals-d.hwLiterals))
	dict.ForEachNew(d.hwIRIs, d.hwBlanks, d.hwLiterals, func(id rdf.ID, t rdf.Term) bool {
		delta = append(delta, wal.TermEntry{ID: id, Term: t})
		switch t.Kind {
		case rdf.TermIRI:
			d.hwIRIs++
		case rdf.TermBlank:
			d.hwBlanks++
		case rdf.TermLiteral:
			d.hwLiterals++
		}
		return true
	})
	return delta
}

// Checkpoint waits for quiescence and atomically writes the materialised
// store, the dictionary and the explicit triple set to the knowledge
// base's directory, then prunes the log segments the checkpoint covers.
// Recovery after a checkpoint loads it instantly instead of replaying
// the log. Errors only on durable reasoners' I/O failures; calling it on
// an in-memory reasoner errors.
func (r *Reasoner) Checkpoint(ctx context.Context) error {
	if r.dur == nil {
		return fmt.Errorf("slider: Checkpoint on a non-durable reasoner (use Open or WithDurability)")
	}
	r.dur.mu.Lock()
	defer r.dur.mu.Unlock()
	return r.checkpointLocked(ctx)
}

// checkpointLocked writes a checkpoint with d.mu held: appends are
// excluded, so once the engine drains, the store is exactly the closure
// of every logged record.
func (r *Reasoner) checkpointLocked(ctx context.Context) error {
	d := r.dur
	if err := d.getErr(); err != nil {
		return err
	}
	if err := r.engine.Wait(ctx); err != nil {
		return err
	}
	if err := r.engine.Err(); err != nil {
		return err
	}
	err := d.log.WriteCheckpoint(
		func(w io.Writer) error { return snapshot.Save(w, r.dict, r.store) },
		func(w io.Writer) error {
			// Stream straight out of the map — no whole-set slice.
			// Holding explicitMu across the write is fine: every mutator
			// takes d.mu (held here) first.
			r.explicitMu.Lock()
			defer r.explicitMu.Unlock()
			return wal.WriteExplicitSeq(w, len(r.explicit), maps.Keys(r.explicit))
		},
	)
	if err != nil {
		d.setErr(err)
	}
	return err
}

// maybeCheckpointLocked starts a background checkpoint when the live log
// volume passes the threshold. Called with d.mu held; the checkpoint
// itself re-acquires d.mu on its own goroutine so the triggering Add
// returns first.
func (r *Reasoner) maybeCheckpointLocked() {
	d := r.dur
	if d.checkpointEvery <= 0 || d.ckptInFlight || d.getErr() != nil {
		return
	}
	// The threshold is a floor: once the store outgrows it, wait for the
	// live log to reach half the last checkpoint's size before paying
	// for the next full rewrite. This keeps total checkpoint I/O linear
	// in the data ingested instead of quadratic in store size.
	threshold := d.checkpointEvery
	if half := d.log.CheckpointBytes() / 2; half > threshold {
		threshold = half
	}
	if d.log.LiveBytes() < threshold {
		return
	}
	d.ckptInFlight = true
	done := make(chan struct{})
	d.ckptDone = done
	go func() {
		defer close(done)
		d.mu.Lock()
		defer d.mu.Unlock()
		r.checkpointLocked(context.Background())
		d.ckptInFlight = false
	}()
}

// getErr returns the sticky durability error, if any.
func (d *durability) getErr() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.err
}

// setErr records the first durability failure; later writes are refused.
func (d *durability) setErr(err error) {
	d.errMu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.errMu.Unlock()
}

// durErr returns the sticky durability error, if any.
func (r *Reasoner) durErr() error {
	if r.dur == nil {
		return nil
	}
	return r.dur.getErr()
}

// closeDurable shuts a durable reasoner down cleanly: drain inference,
// take a final checkpoint (so the next Open skips replay), close the
// log.
func (r *Reasoner) closeDurable(ctx context.Context) error {
	d := r.dur
	// Let an in-flight background checkpoint finish first, but respect
	// the caller's shutdown deadline: the checkpoint write is O(store)
	// and not cancellable. On timeout the KB is left un-closed (the
	// checkpoint goroutine still owns it); the log on disk stays
	// consistent and the next Open recovers normally.
	d.mu.Lock()
	done := d.ckptDone
	d.mu.Unlock()
	if done != nil {
		select {
		case <-done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	err := r.engine.Close(ctx)
	if err == nil {
		err = r.engine.Err()
	}
	// Checkpoint only if the log holds records the current checkpoint
	// does not cover: a read-only session (or one whose background
	// checkpoint just ran) would otherwise rewrite the whole store on
	// every exit. engine.Wait inside is now a no-op: Close has drained.
	if err == nil && d.getErr() == nil && d.checkpointEvery >= 0 && d.log.Dirty() {
		err = r.checkpointLocked(ctx)
	}
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = d.getErr()
	}
	return err
}
