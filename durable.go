// Durable knowledge bases. A durable Reasoner pairs the in-memory
// engine with a write-ahead log (internal/wal): every acknowledged
// assert/retract batch is logged — together with the dictionary entries
// that name it — before the engine applies it, and the materialised
// store is checkpointed (internal/snapshot format) in the background.
//
// Reopening the directory restores the checkpointed closure instantly
// and re-runs inference only over the logged tail, so a crash loses at
// most the batch whose Add never returned. Retractions are logged too:
// replay re-runs delete-and-rederive, so the recovered closure is the
// closure of the surviving explicit triples — exactly the state a
// process that never crashed would hold.
package slider

import (
	"context"
	"fmt"
	"io"
	"iter"
	"log/slog"
	"sync"
	"time"

	"repro/internal/maintenance"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/snapshot"
	"repro/internal/store"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// DefaultCheckpointEvery is how much live (uncheckpointed) write-ahead
// log a durable reasoner accumulates before a background checkpoint.
const DefaultCheckpointEvery = 4 << 20

// Open opens (creating if necessary) a durable knowledge base rooted at
// dir and returns a Reasoner for the fragment. If the directory holds a
// previous run's state, the checkpoint is loaded as background knowledge
// and the log tail is replayed — inference re-runs only for the
// uncheckpointed suffix. A torn final record (crash mid-append) is
// truncated away. The fragment should match the one the directory was
// written with: the checkpoint stores the materialised closure, which a
// weaker fragment would not re-derive.
func Open(dir string, frag Fragment, opts ...Option) (*Reasoner, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	cfg.durableDir = dir
	return openDurable(frag, cfg)
}

// durability is the write-ahead-log state of a durable Reasoner.
type durability struct {
	log             *wal.Log
	checkpointEvery int64 // <0: never checkpoint automatically
	fs              vfs.FS
	dir             string
	logger          *slog.Logger
	diskMinFree     int64 // read-only floor in free bytes; 0 disables

	// mu serializes log appends with their engine handoff, and excludes
	// both while a checkpoint *marks* its cut of the store — the brief
	// first phase of the two-phase checkpoint. The O(store) stream phase
	// runs without it, so writers never wait on checkpoint I/O. It is
	// taken before explicitMu wherever both are held.
	mu sync.Mutex

	// health is the degradation state machine (see degraded.go): which
	// faults refuse writes, and the recovery loop's progress.
	health healthState
	// stopMon, closed by closeDurable, stops the recovery loop and the
	// disk-watermark monitor.
	stopMon chan struct{}

	// errMu guards the fields below on their own so read-only paths
	// (Wait, Err) never block behind ingest holding mu.
	errMu sync.Mutex
	err   error // terminal close-path failure; poisons further writes
	// bgErr is the latest background-checkpoint failure — the serving
	// layer reports it as "degraded" while writes still work; cleared
	// when a checkpoint succeeds or recovery completes.
	bgErr error
	// ckptFailures counts consecutive background-checkpoint failures;
	// ckptNextTry is when the next attempt may run (capped exponential
	// backoff, see ckptFault). Past ckptMaxRetries the reasoner degrades.
	ckptFailures int
	ckptNextTry  time.Time

	// Dictionary high-water marks: how many terms per kind have been
	// written to the log (or were present in the loaded checkpoint).
	hwIRIs, hwBlanks, hwLiterals int

	// ckptDone is non-nil exactly while a checkpoint is in flight
	// (marking or streaming) and is closed when it ends; it is THE
	// in-flight indicator, reset to nil on completion so stale channels
	// never leak into later bookkeeping. Guarded by mu.
	ckptDone chan struct{}
	// closeAbandoned is set when Close gave up waiting for an in-flight
	// checkpoint: ownership of the log (and the directory lock) passes
	// to the checkpoint goroutine, which closes it when it finishes.
	// Guarded by mu.
	closeAbandoned bool
}

// openDurable builds a durable Reasoner from an option-parsed config.
func openDurable(frag Fragment, cfg config) (*Reasoner, error) {
	cfg.retraction = true // replayed retract records need the explicit set
	// The registry outlives any single subsystem, so create it first:
	// the log registers its instruments here, newReasoner threads the
	// same registry through the store, engine bridges and facade.
	reg := obs.NewRegistry()
	cfg.reg = reg
	fs := cfg.fs
	if fs == nil {
		fs = vfs.OS
	}
	l, err := wal.Open(cfg.durableDir, wal.Options{
		SegmentSize: cfg.walSegmentSize,
		Fsync:       cfg.walFsync,
		Metrics:     wal.NewMetrics(reg),
		FS:          fs,
	})
	if err != nil {
		return nil, err
	}
	reg.GaugeFunc("slider_wal_live_bytes",
		"Write-ahead-log bytes not yet covered by a checkpoint.",
		func() float64 { return float64(l.LiveBytes()) })
	reg.GaugeFunc("slider_wal_checkpoint_bytes",
		"Size of the current checkpoint's payload files.",
		func() float64 { return float64(l.CheckpointBytes()) })
	reg.GaugeFunc("slider_disk_free_bytes",
		"Free bytes on the filesystem holding the knowledge base (-1 when unknown).",
		func() float64 {
			free, err := fs.FreeSpace(cfg.durableDir)
			if err != nil {
				return -1
			}
			return float64(free)
		})
	// A checkpoint stores a materialised closure: reopening under
	// different rules would silently mix fragments and re-persist the
	// hybrid. Record the fragment on first open, refuse mismatches.
	switch recorded := l.Meta(); recorded {
	case "":
		if err := l.SetMeta(frag.Name()); err != nil {
			l.Close()
			return nil, err
		}
	case frag.Name():
	default:
		l.Close()
		return nil, fmt.Errorf("slider: knowledge base at %s was built with fragment %q, not %q",
			cfg.durableDir, recorded, frag.Name())
	}
	dict := rdf.NewDictionary()
	st := store.New()
	var explicitSeed []rdf.Triple
	snapRC, expRC, hasCkpt, err := l.OpenCheckpoint()
	if err != nil {
		l.Close()
		return nil, err
	}
	if hasCkpt {
		dict, st, err = snapshot.Load(snapRC)
		snapRC.Close()
		if err == nil {
			explicitSeed, err = wal.ReadExplicit(expRC)
		}
		expRC.Close()
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("slider: loading checkpoint: %w", err)
		}
	}
	r := newReasoner(frag, dict, st, cfg)
	r.explicit.AddBatch(explicitSeed)
	if err := r.replayLog(l); err != nil {
		r.engine.Close(context.Background())
		l.Close()
		return nil, err
	}
	every := cfg.checkpointEvery
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	logger := cfg.logger
	if logger == nil {
		logger = slog.Default()
	}
	d := &durability{
		log:             l,
		checkpointEvery: every,
		fs:              fs,
		dir:             cfg.durableDir,
		logger:          logger,
		diskMinFree:     cfg.diskMinFree,
		stopMon:         make(chan struct{}),
	}
	d.hwIRIs, d.hwBlanks, d.hwLiterals = dict.KindCounts()
	if d.diskMinFree > 0 {
		go d.monitorDisk()
	}
	r.dur = d
	return r, nil
}

// replayLog re-applies the live log tail: dictionary deltas are
// re-encoded (and verified against the IDs the log recorded), assert
// batches re-enter the engine so their consequences are re-inferred
// against the checkpointed background, and retract batches re-run
// delete-and-rederive. Runs before r.dur is armed, so nothing is
// re-logged.
func (r *Reasoner) replayLog(l *wal.Log) error {
	ctx := context.Background()
	_, err := l.Replay(func(rec wal.Record) error {
		for _, te := range rec.Terms {
			if got := r.dict.Encode(te.Term); got != te.ID {
				return fmt.Errorf("slider: wal replay: term %v resolved to ID %d, log recorded %d",
					te.Term, uint64(got), uint64(te.ID))
			}
		}
		switch rec.Op {
		case wal.OpAssert:
			r.applyAssert(ctx, rec.Triples)
		case wal.OpRetract:
			// DRed needs a quiescent store, as in Retract.
			if err := r.engine.Wait(ctx); err != nil {
				return err
			}
			r.explicitMu.Lock()
			_, err := maintenance.Retract(ctx, r.store, r.frag.rules, r.explicit, rec.Triples)
			r.explicitMu.Unlock()
			if err != nil {
				return err
			}
		}
		return nil
	})
	return err
}

// termDelta collects the dictionary terms registered since the previous
// call, advancing the high-water marks. Called with d.mu held, so deltas
// land in the log in registration order and replay reproduces identical
// IDs. A term encoded by a not-yet-logged concurrent batch may ride
// along with an earlier record — harmless, replay just registers it
// sooner.
func (d *durability) termDelta(dict *rdf.Dictionary) []wal.TermEntry {
	iris, blanks, literals := dict.KindCounts()
	if iris == d.hwIRIs && blanks == d.hwBlanks && literals == d.hwLiterals {
		return nil
	}
	delta := make([]wal.TermEntry, 0,
		(iris-d.hwIRIs)+(blanks-d.hwBlanks)+(literals-d.hwLiterals))
	dict.ForEachNew(d.hwIRIs, d.hwBlanks, d.hwLiterals, func(id rdf.ID, t rdf.Term) bool {
		delta = append(delta, wal.TermEntry{ID: id, Term: t})
		switch t.Kind {
		case rdf.TermIRI:
			d.hwIRIs++
		case rdf.TermBlank:
			d.hwBlanks++
		case rdf.TermLiteral:
			d.hwLiterals++
		}
		return true
	})
	return delta
}

// termMarks snapshots the term high-water marks before an append;
// rewindTerms restores them when that append is rejected. The rejected
// record's term delta was never logged (the log backs the frame out),
// so those definitions must ride along with the next successful record
// — leaving the marks advanced would make replay meet triple IDs whose
// terms are in no record. Both called with d.mu held.
func (d *durability) termMarks() (iris, blanks, literals int) {
	return d.hwIRIs, d.hwBlanks, d.hwLiterals
}

func (d *durability) rewindTerms(iris, blanks, literals int) {
	d.hwIRIs, d.hwBlanks, d.hwLiterals = iris, blanks, literals
}

// ckptCapture is the output of a checkpoint's mark phase: a consistent
// copy-on-write cut of the knowledge base at a write-ahead-log position.
// The views stay valid — and keep answering with the freeze-time state —
// while ingest continues; the stream phase serialises them to disk with
// no lock held.
type ckptCapture struct {
	mark     wal.CheckpointMark
	store    *store.View
	explicit *store.View
	dict     *rdf.DictView
}

// Checkpoint writes the materialised store, the dictionary and the
// explicit triple set to the knowledge base's directory, then prunes the
// log segments the checkpoint covers. Recovery after a checkpoint loads
// it instantly instead of replaying the log.
//
// The capture is two-phase: a brief mark (drain inference, seal the log
// segment, freeze copy-on-write views — writers pause O(1), not
// O(store)) followed by a lock-free stream of the frozen views to disk
// while ingest continues. If a background checkpoint is already in
// flight, Checkpoint waits for it (bounded by ctx) and then takes its
// own. Errors only on durable reasoners' I/O failures; calling it on an
// in-memory reasoner errors.
func (r *Reasoner) Checkpoint(ctx context.Context) error {
	if r.dur == nil {
		return fmt.Errorf("slider: Checkpoint on a non-durable reasoner (use Open or WithDurability)")
	}
	d := r.dur
	for {
		d.mu.Lock()
		done := d.ckptDone
		if done == nil {
			break
		}
		d.mu.Unlock()
		select {
		case <-done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// d.mu held, no checkpoint in flight: arm one and run it here.
	done := make(chan struct{})
	d.ckptDone = done
	d.mu.Unlock()
	return r.runCheckpoint(ctx, done)
}

// markCheckpointLocked is the mark phase, with d.mu held: drain
// inference (the store is then exactly the closure of every logged
// record), seal the live log segment, and freeze copy-on-write views of
// the store, the explicit set and the logged dictionary prefix. O(1)
// work beyond the quiescence wait — the pause writers can observe.
func (r *Reasoner) markCheckpointLocked(ctx context.Context) (*ckptCapture, error) {
	d := r.dur
	t0 := obs.NowIfEnabled()
	if err := d.getErr(); err != nil {
		return nil, err
	}
	if err := r.engine.Wait(ctx); err != nil {
		return nil, err
	}
	if err := r.engine.Err(); err != nil {
		return nil, err
	}
	mark, err := d.log.BeginCheckpoint()
	if err != nil {
		d.ckptFault(err)
		return nil, err
	}
	defer r.obs.ckptMark.ObserveSince(t0)
	// The dictionary view ends at the logged high-water marks: exactly
	// the terms the covered records (and hence the frozen store, whose
	// triples are their closure) can reference. Terms registered later
	// ride along with the post-mark record that first logs them.
	return &ckptCapture{
		mark:     mark,
		store:    r.store.Freeze(),
		explicit: r.explicit.Freeze(),
		dict:     r.dict.ViewAt(d.hwIRIs, d.hwBlanks, d.hwLiterals),
	}, nil
}

// streamCheckpoint is the stream phase: serialise the capture's frozen
// views to the checkpoint files and commit the manifest, all without
// d.mu — ingest, retraction and queries proceed concurrently, their
// mutations compensated by the views' journals. The views are always
// released, and failures poison the reasoner (surfaced via Err).
func (r *Reasoner) streamCheckpoint(cap *ckptCapture) error {
	d := r.dur
	t0 := obs.NowIfEnabled()
	err := d.log.WriteCheckpointPayloads(cap.mark,
		func(w io.Writer) error { return snapshot.SaveFrom(w, cap.dict, cap.store) },
		func(w io.Writer) error {
			return wal.WriteExplicitSeq(w, cap.explicit.Len(), iter.Seq[rdf.Triple](cap.explicit.ForEach))
		},
	)
	if err == nil {
		r.obs.ckptStream.ObserveSince(t0)
		c0 := obs.NowIfEnabled()
		err = d.log.CommitCheckpoint(cap.mark)
		if err == nil {
			r.obs.ckptCommit.ObserveSince(c0)
			r.obs.ckptTotal.Inc()
		}
	} else {
		d.log.AbortCheckpoint(cap.mark)
	}
	cap.store.Release()
	cap.explicit.Release()
	if err != nil {
		d.ckptFault(err)
	} else {
		d.ckptSucceeded()
	}
	return err
}

// runCheckpoint executes one armed checkpoint end to end: mark under
// d.mu, stream lock-free, then clear the in-flight marker — and, if a
// Close abandoned the reasoner mid-checkpoint, close the log on its
// behalf so the segment descriptor and directory lock are not leaked.
// done must be the channel installed as d.ckptDone.
func (r *Reasoner) runCheckpoint(ctx context.Context, done chan struct{}) error {
	d := r.dur
	// Pre-drain outside the lock, bounded so sustained ingest cannot
	// stall the checkpoint forever: the quiescence wait inside the mark
	// (which *does* block writers) then covers only the inference that
	// arrived during the gap, not the whole backlog.
	predrain, cancel := context.WithTimeout(ctx, 10*time.Second)
	r.engine.Wait(predrain)
	cancel()
	// Seal overlays before marking: a partition left clean (no overlay,
	// no tombstones, no post-freeze journal) streams its runs verbatim
	// during the capture — no per-pair checks. Overlays are capped at
	// flushMax pairs by the background compactor, so this is a small
	// bounded pass, not an O(store) stall; partitions that keep taking
	// writes lose the fast path to their journals regardless, which is
	// why nothing heavier (a full merge, say) is worth doing here.
	r.store.FlushOverlays()
	d.mu.Lock()
	cap, err := r.markCheckpointLocked(ctx)
	d.mu.Unlock()
	if err == nil {
		err = r.streamCheckpoint(cap)
	}
	d.mu.Lock()
	d.ckptDone = nil
	abandoned := d.closeAbandoned
	d.mu.Unlock()
	if abandoned {
		if cerr := d.log.Close(); cerr != nil {
			d.setErr(cerr)
		}
	}
	close(done)
	return err
}

// maybeCheckpointLocked starts a background checkpoint when the live log
// volume passes the threshold. Called with d.mu held; the checkpoint
// goroutine re-acquires d.mu only for its brief mark phase, so the
// triggering Add returns first and subsequent writers pause for O(1),
// not for the O(store) snapshot write.
func (r *Reasoner) maybeCheckpointLocked() {
	d := r.dur
	if d.checkpointEvery <= 0 || d.ckptDone != nil || d.getErr() != nil {
		return
	}
	// Back off after failures: retrying every append would hammer a
	// faulting disk; past the retry budget ckptFault degraded us and the
	// getErr gate above already refused.
	d.errMu.Lock()
	retrying := d.ckptFailures > 0
	next := d.ckptNextTry
	d.errMu.Unlock()
	if retrying && time.Now().Before(next) {
		return
	}
	// The threshold is a floor: once the store outgrows it, wait for the
	// live log to reach half the last checkpoint's size before paying
	// for the next full rewrite. This keeps total checkpoint I/O linear
	// in the data ingested instead of quadratic in store size.
	threshold := d.checkpointEvery
	if half := d.log.CheckpointBytes() / 2; half > threshold {
		threshold = half
	}
	if d.log.LiveBytes() < threshold {
		return
	}
	done := make(chan struct{})
	d.ckptDone = done
	go r.runCheckpoint(context.Background(), done)
}

// getErr returns the error writes are currently refused with, if any:
// a terminal close-path error, or the degradation state machine's cause
// while the reasoner is degraded or failed (see degraded.go). Callers
// that were refused see the exact instance Err() reports.
func (d *durability) getErr() error {
	d.errMu.Lock()
	err := d.err
	d.errMu.Unlock()
	if err != nil {
		return err
	}
	return d.refusal()
}

// setErr records a terminal durability failure (close-path only; the
// write path classifies faults through writeFault instead).
func (d *durability) setErr(err error) {
	d.errMu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.errMu.Unlock()
}

// getBgErr returns the pending checkpoint failure, if any (cleared when
// a later checkpoint succeeds or recovery completes).
func (d *durability) getBgErr() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.bgErr
}

// durErr returns the sticky durability error, if any.
func (r *Reasoner) durErr() error {
	if r.dur == nil {
		return nil
	}
	return r.dur.getErr()
}

// closeDurable shuts a durable reasoner down cleanly: drain inference,
// take a final checkpoint (so the next Open skips replay), close the
// log.
func (r *Reasoner) closeDurable(ctx context.Context) error {
	d := r.dur
	// Stop the recovery loop and the disk monitor first: a probe racing
	// the close-time checkpoint below would fight over the live segment.
	d.health.mu.Lock()
	select {
	case <-d.stopMon:
	default:
		close(d.stopMon)
	}
	d.health.mu.Unlock()
	// Let an in-flight background checkpoint finish first, but respect
	// the caller's shutdown deadline: the checkpoint write is O(store)
	// and not cancellable. On timeout the KB is left un-closed and
	// ownership of the log passes to the checkpoint goroutine, which
	// closes it — releasing the segment descriptor and the directory
	// lock — as soon as it finishes, so a same-process reopen is not
	// wedged forever. The log on disk stays consistent either way and
	// the next Open recovers normally.
	for {
		d.mu.Lock()
		done := d.ckptDone
		if done == nil {
			break
		}
		d.mu.Unlock()
		select {
		case <-done:
		case <-ctx.Done():
			d.mu.Lock()
			if d.ckptDone != nil {
				d.closeAbandoned = true
				d.mu.Unlock()
				return ctx.Err()
			}
			// The checkpoint ended between the deadline firing and the
			// re-lock: fall through and close normally (the expired ctx
			// will surface from engine.Close below).
			d.mu.Unlock()
		}
	}
	// d.mu held; no checkpoint in flight, and none can start (arming
	// happens under d.mu).
	defer d.mu.Unlock()
	err := r.engine.Close(ctx)
	if err == nil {
		err = r.engine.Err()
	}
	// Checkpoint only if the log holds records the current checkpoint
	// does not cover: a read-only session (or one whose background
	// checkpoint just ran) would otherwise rewrite the whole store on
	// every exit. The two-phase capture runs inline here — d.mu stays
	// held, which is fine: the engine is closed, nothing writes. A
	// retried Close after an abandoned one skips it: the checkpoint
	// goroutine already closed the log on our behalf, and attempting a
	// capture against it would poison the reasoner with a spurious
	// ErrClosed — any post-mark tail simply replays on the next Open.
	if err == nil && d.getErr() == nil && !d.closeAbandoned && d.checkpointEvery >= 0 && d.log.Dirty() {
		cap, cerr := r.markCheckpointLocked(ctx)
		if cerr == nil {
			cerr = r.streamCheckpoint(cap)
		}
		err = cerr
	}
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = d.getErr()
	}
	return err
}
