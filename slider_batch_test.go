package slider

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func TestAddBatchFacade(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	n, err := r.AddBatch([]Statement{
		NewStatement(ex("Cat"), IRI(SubClassOf), ex("Mammal")),
		NewStatement(ex("Mammal"), IRI(SubClassOf), ex("Animal")),
		NewStatement(ex("felix"), IRI(Type), ex("Cat")),
		NewStatement(ex("felix"), IRI(Type), ex("Cat")), // duplicate
	})
	if err != nil || n != 3 {
		t.Fatalf("AddBatch = (%d, %v), want (3, nil)", n, err)
	}
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !r.Contains(NewStatement(ex("felix"), IRI(Type), ex("Animal"))) {
		t.Fatal("batch-ingested triples did not reach inference")
	}
}

func TestAddBatchRejectsInvalid(t *testing.T) {
	r := New(RhoDF)
	defer r.Close(context.Background())
	_, err := r.AddBatch([]Statement{
		NewStatement(ex("ok"), IRI(Type), ex("Thing")),
		{S: Literal("bad subject"), P: IRI(Type), O: ex("Thing")},
	})
	if err == nil {
		t.Fatal("AddBatch accepted an invalid statement")
	}
	if r.Len() != 0 {
		t.Fatalf("invalid batch partially applied: %d triples", r.Len())
	}
}

// TestAddBatchWithRetraction checks batch-ingested statements are tracked
// as explicit assertions, so they can be retracted like Add'ed ones.
func TestAddBatchWithRetraction(t *testing.T) {
	r := New(RhoDF, WithRetraction())
	defer r.Close(context.Background())
	if _, err := r.AddBatch([]Statement{
		NewStatement(ex("Cat"), IRI(SubClassOf), ex("Mammal")),
		NewStatement(ex("felix"), IRI(Type), ex("Cat")),
	}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if !r.Contains(NewStatement(ex("felix"), IRI(Type), ex("Mammal"))) {
		t.Fatal("precondition: inference incomplete")
	}
	if _, err := r.Retract(ctx, NewStatement(ex("felix"), IRI(Type), ex("Cat"))); err != nil {
		t.Fatal(err)
	}
	if r.Contains(NewStatement(ex("felix"), IRI(Type), ex("Mammal"))) {
		t.Fatal("retraction of batch-asserted statement left its consequence")
	}
}

// TestLoadNTriplesChunking streams more statements than one loader chunk
// and checks the count and the closure.
func TestLoadNTriplesChunking(t *testing.T) {
	var doc strings.Builder
	const classes = 700 // > loadChunkSize so multiple batches flush
	for i := 0; i < classes; i++ {
		fmt.Fprintf(&doc, "<http://e/c%d> <%s> <http://e/c%d> .\n", i, SubClassOf, i+1)
	}
	r := New(RhoDF)
	defer r.Close(context.Background())
	n, err := r.LoadNTriples(strings.NewReader(doc.String()))
	if err != nil || n != classes {
		t.Fatalf("LoadNTriples = (%d, %v), want (%d, nil)", n, err, classes)
	}
	if err := r.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Transitive chain: c0 ⊑ c2 must have been inferred across chunk
	// boundaries.
	if !r.Contains(NewStatement(
		IRI("http://e/c0"), IRI(SubClassOf), IRI("http://e/c2"))) {
		t.Fatal("inference missing across loader chunks")
	}
}
