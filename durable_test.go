package slider

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// closureSet renders the materialised store as a sorted set of decoded
// statements, for comparing closures across reasoner instances whose
// dictionaries may differ.
func closureSet(r *Reasoner) []string {
	var out []string
	r.Statements(func(st Statement) bool {
		out = append(out, st.String())
		return true
	})
	sort.Strings(out)
	return out
}

func sameClosure(t *testing.T, got, want []string, msg string) {
	t.Helper()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("%s:\n got %d triples:\n  %s\nwant %d triples:\n  %s",
			msg, len(got), strings.Join(got, "\n  "), len(want), strings.Join(want, "\n  "))
	}
}

func TestDurableReopenRestoresClosure(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	r, err := Open(dir, RhoDF, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, r, NewStatement(ex("Cat"), IRI(SubClassOf), ex("Mammal")))
	mustAdd(t, r, NewStatement(ex("Mammal"), IRI(SubClassOf), ex("Animal")))
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Cat")))
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := closureSet(r)
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir, RhoDF, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(ctx)
	if err := r2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sameClosure(t, closureSet(r2), want, "closure after clean reopen")
	if !r2.Contains(NewStatement(ex("felix"), IRI(Type), ex("Animal"))) {
		t.Fatal("inferred triple lost across restart")
	}

	// The reopened store keeps reasoning: new facts join the recovered
	// background knowledge.
	mustAdd(t, r2, NewStatement(ex("tom"), IRI(Type), ex("Cat")))
	if err := r2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if !r2.Contains(NewStatement(ex("tom"), IRI(Type), ex("Animal"))) {
		t.Fatal("inference over recovered background knowledge failed")
	}
}

func TestDurableRetractSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// Checkpointing disabled: recovery must come purely from replaying
	// the log, including the retract record.
	r, err := Open(dir, RhoDF, WithWorkers(2), WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, r, NewStatement(ex("Cat"), IRI(SubClassOf), ex("Mammal")))
	mustAdd(t, r, NewStatement(ex("Mammal"), IRI(SubClassOf), ex("Animal")))
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Cat")))
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Pet")))
	mustAdd(t, r, NewStatement(ex("Pet"), IRI(SubClassOf), ex("Animal")))
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retract(ctx, NewStatement(ex("felix"), IRI(Type), ex("Cat"))); err != nil {
		t.Fatal(err)
	}
	if r.Contains(NewStatement(ex("felix"), IRI(Type), ex("Mammal"))) {
		t.Fatal("retraction did not remove sole-derivation consequence")
	}
	if !r.Contains(NewStatement(ex("felix"), IRI(Type), ex("Animal"))) {
		t.Fatal("retraction removed an alternatively-derived consequence")
	}
	want := closureSet(r)
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir, RhoDF, WithWorkers(2), WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(ctx)
	if err := r2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sameClosure(t, closureSet(r2), want, "closure after replaying a retraction")
	if r2.Contains(NewStatement(ex("felix"), IRI(Type), ex("Cat"))) {
		t.Fatal("retracted explicit triple came back")
	}
	// The recovered explicit set still supports further retraction.
	if _, err := r2.Retract(ctx, NewStatement(ex("Pet"), IRI(SubClassOf), ex("Animal"))); err != nil {
		t.Fatal(err)
	}
	if r2.Contains(NewStatement(ex("felix"), IRI(Type), ex("Animal"))) {
		t.Fatal("post-restart retraction did not propagate")
	}
}

func TestDurableCheckpointPlusTailRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	r, err := Open(dir, RhoDF, WithWorkers(2), WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, r, NewStatement(ex("Cat"), IRI(SubClassOf), ex("Mammal")))
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Cat")))
	if err := r.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// Tail: logged after the checkpoint, never checkpointed (close-time
	// checkpoint is disabled by the negative WithCheckpointEvery).
	mustAdd(t, r, NewStatement(ex("Mammal"), IRI(SubClassOf), ex("Animal")))
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := closureSet(r)
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir, RhoDF, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(ctx)
	if err := r2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sameClosure(t, closureSet(r2), want, "snapshot+tail recovery")
	if !r2.Contains(NewStatement(ex("felix"), IRI(Type), ex("Animal"))) {
		t.Fatal("tail fact did not join checkpointed background knowledge")
	}
}

func TestDurableBackgroundCheckpointing(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// A 1-byte threshold makes every batch trip the background
	// checkpointer; the test just exercises the trigger path end to end.
	r, err := Open(dir, RhoDF, WithWorkers(2), WithCheckpointEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustAdd(t, r, NewStatement(ex("n"+string(rune('a'+i))), IRI(SubClassOf), ex("n"+string(rune('b'+i)))))
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := closureSet(r)
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, RhoDF, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(ctx)
	if err := r2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	sameClosure(t, closureSet(r2), want, "closure after background checkpoints")
}

func TestDurableReadOnlySessionSkipsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	r, err := Open(dir, RhoDF, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, r, NewStatement(ex("a"), IRI(SubClassOf), ex("b")))
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	manifest := func() string {
		b, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	before := manifest()

	// A session that only reads must not rewrite the checkpoint on exit.
	r2, err := Open(dir, RhoDF, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Contains(NewStatement(ex("a"), IRI(SubClassOf), ex("b"))) {
		t.Fatal("recovered triple missing")
	}
	if err := r2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if after := manifest(); after != before {
		t.Fatalf("read-only session advanced the checkpoint: %s -> %s", before, after)
	}

	// A session that writes must.
	r3, err := Open(dir, RhoDF, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, r3, NewStatement(ex("b"), IRI(SubClassOf), ex("c")))
	if err := r3.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if after := manifest(); after == before {
		t.Fatal("writing session did not advance the checkpoint")
	}
}

func TestDurableFragmentMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	r, err := Open(dir, RDFS, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, r, NewStatement(ex("a"), IRI(SubClassOf), ex("b")))
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, RhoDF, WithWorkers(2)); err == nil {
		t.Fatal("reopening an RDFS-built KB under rhodf was accepted")
	} else if !strings.Contains(err.Error(), "rdfs") {
		t.Fatalf("mismatch error does not name the recorded fragment: %v", err)
	}
	// The matching fragment still opens.
	r2, err := Open(dir, RDFS, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestNewWithDurability(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	r := New(RhoDF, WithWorkers(2), WithDurability(dir))
	mustAdd(t, r, NewStatement(ex("a"), IRI(SubClassOf), ex("b")))
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, RhoDF, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(ctx)
	if !r2.Contains(NewStatement(ex("a"), IRI(SubClassOf), ex("b"))) {
		t.Fatal("New(WithDurability) state not recovered by Open")
	}

	// A directory that cannot be created must panic (Open is the
	// error-returning form).
	defer func() {
		if recover() == nil {
			t.Fatal("New(WithDurability) on an unusable path did not panic")
		}
	}()
	bad := dir + "/MANIFEST.json/nope" // parent is a file, MkdirAll must fail
	New(RhoDF, WithDurability(bad))
}
