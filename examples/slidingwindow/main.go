// Slidingwindow: stream reasoning over a bounded window. The paper's
// conclusion notes that most stream reasoners "limit the amount of data
// in the knowledge base by eliminating former triples"; this example
// combines Slider's incremental additions with DRed-based retraction
// (Reasoner.Retract) to maintain a sliding window of observations whose
// inferred consequences appear and expire with their premises — no batch
// re-inference at any point.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

const ns = "http://example.org/traffic/"

func iri(n string) slider.Term { return slider.IRI(ns + n) }

func main() {
	r := slider.New(slider.RhoDF, slider.WithRetraction(), slider.WithBufferSize(4))
	defer r.Close(context.Background())
	ctx := context.Background()

	// Static background knowledge: an incident-type hierarchy. It never
	// expires.
	schema := []slider.Statement{
		slider.NewStatement(iri("Accident"), slider.IRI(slider.SubClassOf), iri("Incident")),
		slider.NewStatement(iri("Congestion"), slider.IRI(slider.SubClassOf), iri("Incident")),
		slider.NewStatement(iri("MajorAccident"), slider.IRI(slider.SubClassOf), iri("Accident")),
	}
	for _, st := range schema {
		if _, err := r.Add(st); err != nil {
			log.Fatal(err)
		}
	}

	// The stream: one typed observation per tick; the window keeps the
	// last 3 ticks.
	const windowSize = 3
	kinds := []string{"MajorAccident", "Congestion", "Accident", "MajorAccident", "Congestion", "Accident"}
	var window [][]slider.Statement

	for tick, kind := range kinds {
		obs := []slider.Statement{
			slider.NewStatement(iri(fmt.Sprintf("event-%d", tick)), slider.IRI(slider.Type), iri(kind)),
		}
		for _, st := range obs {
			if _, err := r.Add(st); err != nil {
				log.Fatal(err)
			}
		}
		window = append(window, obs)

		// Expire the oldest tick once the window is full.
		if len(window) > windowSize {
			expired := window[0]
			window = window[1:]
			if _, err := r.Retract(ctx, expired...); err != nil {
				log.Fatal(err)
			}
		}
		if err := r.Wait(ctx); err != nil {
			log.Fatal(err)
		}

		incidents := r.Query(slider.Statement{P: slider.IRI(slider.Type), O: iri("Incident")})
		fmt.Printf("tick %d (+%-13s): %d incidents in window:", tick, kind, len(incidents))
		for _, st := range incidents {
			fmt.Printf(" %s", st.S.Value[len(ns):])
		}
		fmt.Println()
	}

	s := r.Stats()
	fmt.Printf("\nfinal store: %d triples; %d inferred over the whole run\n", r.Len(), s.Inferred)
	fmt.Println("note: inferred incident typings expired together with their premises —")
	fmt.Println("inference never restarted from scratch (DRed retraction + incremental addition).")
}
