// Subclasschain: the paper's worst-case workload (§3, Equation 1) — a
// chain of n subClassOf relations whose closure is O(n²) unique triples
// while naive iterative schemes derive O(n³). The example streams the
// chain through Slider and runs the same input through the batch
// (OWLIM-SE stand-in) engine, showing the duplicate-derivation gap that
// drives Table 1's results.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/baseline"
	"repro/internal/ontogen"
	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

func main() {
	const n = 200
	statements := ontogen.SubClassChain(n)
	fmt.Printf("subClassOf%d: %d input triples, closure adds C(%d,2) = %d\n\n",
		n, len(statements), n-1, ontogen.ChainClosureSize(n))

	// Slider, incremental.
	r := slider.New(slider.RhoDF)
	start := time.Now()
	for _, st := range statements {
		if _, err := r.Add(st); err != nil {
			log.Fatal(err)
		}
	}
	if err := r.Wait(context.Background()); err != nil {
		log.Fatal(err)
	}
	sliderTime := time.Since(start)
	s := r.Stats()
	fmt.Printf("Slider (incremental): %8s  inferred=%d  duplicate derivations=%d\n",
		sliderTime.Round(time.Microsecond), s.Inferred, s.Duplicates)
	if err := r.Close(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Batch naive fixpoint (the OWLIM-SE stand-in).
	dict := rdf.NewDictionary()
	triples := make([]rdf.Triple, len(statements))
	for i, st := range statements {
		triples[i] = dict.EncodeStatement(st)
	}
	batch := baseline.New(store.New(), rules.RhoDF(), baseline.Naive)
	start = time.Now()
	bstats, err := batch.Materialize(context.Background(), triples)
	if err != nil {
		log.Fatal(err)
	}
	batchTime := time.Since(start)
	fmt.Printf("Batch  (naive):       %8s  inferred=%d  duplicate derivations=%d  rounds=%d\n",
		batchTime.Round(time.Microsecond), bstats.Inferred, bstats.Duplicates, bstats.Rounds)

	gain := (batchTime.Seconds() - sliderTime.Seconds()) / sliderTime.Seconds() * 100
	fmt.Printf("\nGain: %.1f%% (the paper reports 124.56%% on subClassOf200 under ρdf)\n", gain)
	fmt.Printf("Duplicate-derivation ratio batch/slider: %.1fx\n",
		float64(bstats.Duplicates)/float64(maxInt64(s.Duplicates, 1)))
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
