// Customrule: the paper's "Fragment's Customization" feature — Slider is
// fragment agnostic, and new rules plug in through the same interface the
// built-in rules use. This example extends ρdf with two OWL-flavoured
// rules (symmetric property and inverse-of) and reasons over a social
// graph.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

const (
	ns  = "http://example.org/social/"
	owl = "http://www.w3.org/2002/07/owl#"
)

func iri(name string) slider.Term { return slider.IRI(ns + name) }

func main() {
	dict := make(map[string]slider.ID)

	// prp-symp: (p type SymmetricProperty), (x p y) → (y p x).
	symmetric := &slider.CustomRule{
		RuleName: "prp-symp",
		Out:      nil, // output predicate is data-dependent
		Fn: func(st slider.Source, delta []slider.Triple, emit func(slider.Triple)) {
			symProp := dict["SymmetricProperty"]
			typeID := dict["type"]
			for _, t := range delta {
				if t.P == typeID && t.O == symProp {
					// New symmetric property: mirror its whole extent.
					st.ForEachWithPredicate(t.S, func(x, y slider.ID) bool {
						emit(slider.Triple{S: y, P: t.S, O: x})
						return true
					})
					continue
				}
				if st.Contains(slider.Triple{S: t.P, P: typeID, O: symProp}) {
					emit(slider.Triple{S: t.O, P: t.P, O: t.S})
				}
			}
		},
	}

	// prp-inv: (p inverseOf q), (x p y) → (y q x) and symmetrically.
	inverse := &slider.CustomRule{
		RuleName: "prp-inv",
		Fn: func(st slider.Source, delta []slider.Triple, emit func(slider.Triple)) {
			invID := dict["inverseOf"]
			for _, t := range delta {
				if t.P == invID {
					st.ForEachWithPredicate(t.S, func(x, y slider.ID) bool {
						emit(slider.Triple{S: y, P: t.O, O: x})
						return true
					})
					st.ForEachWithPredicate(t.O, func(x, y slider.ID) bool {
						emit(slider.Triple{S: y, P: t.S, O: x})
						return true
					})
					continue
				}
				for _, q := range st.Objects(invID, t.P) {
					emit(slider.Triple{S: t.O, P: q, O: t.S})
				}
				for _, q := range st.Subjects(invID, t.P) {
					emit(slider.Triple{S: t.O, P: q, O: t.S})
				}
			}
		},
	}

	frag := slider.CustomFragment("rhodf+owl-lite",
		append(slider.RhoDF.Rules(), symmetric, inverse)...)
	r := slider.New(frag, slider.WithBufferSize(1))
	defer r.Close(context.Background())

	// Pre-register the IDs the custom rules need.
	dict["type"], _ = r.Dictionary().Lookup(slider.IRI(slider.Type))
	dict["SymmetricProperty"] = r.Dictionary().Encode(slider.IRI(owl + "SymmetricProperty"))
	dict["inverseOf"] = r.Dictionary().Encode(slider.IRI(owl + "inverseOf"))

	statements := []slider.Statement{
		// Schema: knows is symmetric; hasParent inverse hasChild; and a
		// ρdf rule interleaves: closeFriend sp knows.
		slider.NewStatement(iri("knows"), slider.IRI(slider.Type), slider.IRI(owl+"SymmetricProperty")),
		slider.NewStatement(iri("hasParent"), slider.IRI(owl+"inverseOf"), iri("hasChild")),
		slider.NewStatement(iri("closeFriend"), slider.IRI(slider.SubPropertyOf), iri("knows")),
		// Data.
		slider.NewStatement(iri("ann"), iri("closeFriend"), iri("bob")),
		slider.NewStatement(iri("carol"), iri("hasParent"), iri("ann")),
	}
	for _, st := range statements {
		if _, err := r.Add(st); err != nil {
			log.Fatal(err)
		}
	}
	if err := r.Wait(context.Background()); err != nil {
		log.Fatal(err)
	}

	checks := []slider.Statement{
		slider.NewStatement(iri("ann"), iri("knows"), iri("bob")),      // prp-spo1
		slider.NewStatement(iri("bob"), iri("knows"), iri("ann")),      // prp-symp on inferred triple
		slider.NewStatement(iri("ann"), iri("hasChild"), iri("carol")), // prp-inv
	}
	for _, st := range checks {
		fmt.Printf("%-70v %v\n", st, r.Contains(st))
	}

	fmt.Println("\nDependency graph includes the custom rules:")
	for _, e := range r.Graph().Edges() {
		if e[0] == "prp-symp" || e[1] == "prp-symp" || e[0] == "prp-inv" || e[1] == "prp-inv" {
			fmt.Printf("  %s -> %s\n", e[0], e[1])
		}
	}
}
