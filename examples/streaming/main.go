// Streaming: the scenario the paper's introduction motivates — semantic
// data arriving continuously from multiple sources, with knowledge
// queryable while the stream is still flowing. Two concurrent producers
// (a "sensor feed" publishing observations and a "catalogue feed"
// publishing schema) stream into one reasoner; a consumer queries the
// growing knowledge base mid-stream, without ever restarting inference.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
)

const ns = "http://example.org/stream/"

func iri(name string) slider.Term { return slider.IRI(ns + name) }

func main() {
	// Small buffers and a short timeout keep inference latency low on a
	// trickling stream (the trade-off the demo's Setup panel exposes).
	r := slider.New(slider.RhoDF,
		slider.WithBufferSize(8),
		slider.WithTimeout(2*time.Millisecond))
	defer r.Close(context.Background())

	var wg sync.WaitGroup

	// Source 1: the catalogue feed publishes the sensor-type hierarchy,
	// one statement at a time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		schema := []slider.Statement{
			slider.NewStatement(iri("TempSensor"), slider.IRI(slider.SubClassOf), iri("Sensor")),
			slider.NewStatement(iri("OutdoorTempSensor"), slider.IRI(slider.SubClassOf), iri("TempSensor")),
			slider.NewStatement(iri("Sensor"), slider.IRI(slider.SubClassOf), iri("Device")),
			slider.NewStatement(iri("observes"), slider.IRI(slider.Domain), iri("Sensor")),
		}
		for _, st := range schema {
			if _, err := r.Add(st); err != nil {
				log.Fatal(err)
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// Source 2: the sensor feed publishes typed observations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			sensor := iri(fmt.Sprintf("sensor-%d", i))
			if _, err := r.Add(slider.NewStatement(sensor, slider.IRI(slider.Type), iri("OutdoorTempSensor"))); err != nil {
				log.Fatal(err)
			}
			if _, err := r.Add(slider.NewStatement(sensor, iri("observes"), iri(fmt.Sprintf("reading-%d", i)))); err != nil {
				log.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Consumer: query mid-stream. Knowledge grows monotonically; no
	// batch re-inference ever happens.
	for i := 0; i < 5; i++ {
		time.Sleep(15 * time.Millisecond)
		devices := r.Query(slider.Statement{P: slider.IRI(slider.Type), O: iri("Device")})
		fmt.Printf("t+%2dms: %d devices known so far (store: %d triples)\n",
			(i+1)*15, len(devices), r.Len())
	}

	wg.Wait()
	if err := r.Wait(context.Background()); err != nil {
		log.Fatal(err)
	}

	devices := r.Query(slider.Statement{P: slider.IRI(slider.Type), O: iri("Device")})
	fmt.Printf("\nfinal: %d devices (every sensor was inferred to be a Device)\n", len(devices))
	s := r.Stats()
	fmt.Printf("%d explicit, %d inferred, %d duplicate derivations suppressed\n",
		s.Input, s.Inferred, s.Duplicates)
	for _, m := range s.Modules {
		if m.Executions > 0 {
			fmt.Printf("  %-9s ran %2d times (%d full flushes, %d timeout flushes) and inferred %d\n",
				m.Rule, m.Executions, m.BufferFullFlushes, m.TimeoutFlushes, m.Fresh)
		}
	}
}
