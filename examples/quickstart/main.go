// Quickstart: build a tiny zoo ontology, stream it into Slider, and query
// the materialised knowledge. Demonstrates the core public API: New, Add,
// Wait, Contains, Query and Export.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

const ns = "http://example.org/zoo/"

func iri(name string) slider.Term { return slider.IRI(ns + name) }

func main() {
	r := slider.New(slider.RhoDF)
	defer r.Close(context.Background())

	// Schema: a small class hierarchy plus a property with domain/range.
	schema := []slider.Statement{
		slider.NewStatement(iri("Cat"), slider.IRI(slider.SubClassOf), iri("Feline")),
		slider.NewStatement(iri("Feline"), slider.IRI(slider.SubClassOf), iri("Mammal")),
		slider.NewStatement(iri("Mammal"), slider.IRI(slider.SubClassOf), iri("Animal")),
		slider.NewStatement(iri("eats"), slider.IRI(slider.Domain), iri("Animal")),
		slider.NewStatement(iri("eats"), slider.IRI(slider.Range), iri("Food")),
	}
	// Instance data.
	data := []slider.Statement{
		slider.NewStatement(iri("felix"), slider.IRI(slider.Type), iri("Cat")),
		slider.NewStatement(iri("felix"), iri("eats"), iri("fish")),
	}
	for _, st := range append(schema, data...) {
		if _, err := r.Add(st); err != nil {
			log.Fatal(err)
		}
	}
	if err := r.Wait(context.Background()); err != nil {
		log.Fatal(err)
	}

	// cax-sco materialised the whole superclass chain for felix, and
	// prp-dom/prp-rng typed both ends of the eats assertion.
	fmt.Println("felix is an Animal:",
		r.Contains(slider.NewStatement(iri("felix"), slider.IRI(slider.Type), iri("Animal"))))
	fmt.Println("fish is Food:",
		r.Contains(slider.NewStatement(iri("fish"), slider.IRI(slider.Type), iri("Food"))))

	fmt.Println("\nEverything known about felix:")
	for _, st := range r.Query(slider.Statement{S: iri("felix")}) {
		fmt.Println(" ", st)
	}

	s := r.Stats()
	fmt.Printf("\n%d explicit + %d inferred = %d triples total\n", s.Input, s.Inferred, r.Len())

	fmt.Println("\nFull closure as N-Triples:")
	if err := r.Export(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
