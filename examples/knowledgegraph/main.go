// Knowledgegraph: materialise a small organisational knowledge graph
// under the OWL-Horst extension fragment (transitive, inverse and
// symmetric properties, owl:sameAs) and answer SPARQL-like SELECT queries
// over the closure — forward chaining makes query answering pure pattern
// matching.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

const (
	ns  = "http://example.org/org/"
	owl = "http://www.w3.org/2002/07/owl#"
)

func iri(n string) slider.Term { return slider.IRI(ns + n) }

func main() {
	r := slider.New(slider.OWLHorst)
	defer r.Close(context.Background())

	statements := []slider.Statement{
		// partOf is transitive; manages inverse managedBy; collaboratesWith symmetric.
		slider.NewStatement(iri("partOf"), slider.IRI(slider.Type), slider.IRI(owl+"TransitiveProperty")),
		slider.NewStatement(iri("manages"), slider.IRI(owl+"inverseOf"), iri("managedBy")),
		slider.NewStatement(iri("collaboratesWith"), slider.IRI(slider.Type), slider.IRI(owl+"SymmetricProperty")),
		// Org structure.
		slider.NewStatement(iri("search-team"), iri("partOf"), iri("engineering")),
		slider.NewStatement(iri("engineering"), iri("partOf"), iri("acme")),
		slider.NewStatement(iri("infra-team"), iri("partOf"), iri("engineering")),
		// People.
		slider.NewStatement(iri("ada"), iri("manages"), iri("search-team")),
		slider.NewStatement(iri("ada"), iri("collaboratesWith"), iri("grace")),
		slider.NewStatement(iri("grace"), slider.IRI(slider.Type), iri("Engineer")),
		slider.NewStatement(iri("Engineer"), slider.IRI(slider.SubClassOf), iri("Employee")),
		// The same person under two identifiers.
		slider.NewStatement(iri("ada"), slider.IRI(owl+"sameAs"), iri("a.lovelace")),
		slider.NewStatement(iri("a.lovelace"), slider.IRI(slider.Type), iri("Director")),
	}
	for _, st := range statements {
		if _, err := r.Add(st); err != nil {
			log.Fatal(err)
		}
	}
	if err := r.Wait(context.Background()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Q1: what is search-team transitively part of?")
	rows, err := r.Select(`SELECT ?org WHERE { <` + ns + `search-team> <` + ns + `partOf> ?org . }`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range rows {
		fmt.Println("  ", row["org"].Value)
	}

	fmt.Println("\nQ2: who manages what (including via inverseOf)?")
	rows, err = r.Select(`SELECT ?who ?what WHERE { ?what <` + ns + `managedBy> ?who . }`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range rows {
		fmt.Printf("   %s managedBy %s\n", row["what"].Value, row["who"].Value)
	}

	fmt.Println("\nQ3: grace's collaborators (symmetric closure):")
	rows, err = r.Select(`SELECT ?c WHERE { <` + ns + `grace> <` + ns + `collaboratesWith> ?c . }`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range rows {
		fmt.Println("  ", row["c"].Value)
	}

	fmt.Println("\nQ4: everything ada is (including via sameAs):")
	rows, err = r.Select(`SELECT ?t WHERE { <` + ns + `ada> a ?t . }`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range rows {
		fmt.Println("  ", row["t"].Value)
	}

	s := r.Stats()
	fmt.Printf("\n%d explicit, %d inferred under %s\n", s.Input, s.Inferred, r.Fragment().Name())
}
