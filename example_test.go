package slider_test

import (
	"context"
	"fmt"
	"strings"

	slider "repro"
)

// The canonical three-line flow: stream statements in, wait for
// quiescence, check entailment.
func Example() {
	r := slider.New(slider.RhoDF)
	defer r.Close(context.Background())

	r.Add(slider.NewStatement(
		slider.IRI("http://example.org/Cat"),
		slider.IRI(slider.SubClassOf),
		slider.IRI("http://example.org/Animal")))
	r.Add(slider.NewStatement(
		slider.IRI("http://example.org/felix"),
		slider.IRI(slider.Type),
		slider.IRI("http://example.org/Cat")))
	r.Wait(context.Background())

	fmt.Println(r.Contains(slider.NewStatement(
		slider.IRI("http://example.org/felix"),
		slider.IRI(slider.Type),
		slider.IRI("http://example.org/Animal"))))
	// Output: true
}

// Parsing and inference overlap: LoadNTriples streams each parsed
// statement straight into the rule buffers.
func ExampleReasoner_LoadNTriples() {
	doc := `<http://e/a> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://e/b> .
<http://e/b> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://e/c> .
`
	r := slider.New(slider.RhoDF)
	defer r.Close(context.Background())
	n, _ := r.LoadNTriples(strings.NewReader(doc))
	r.Wait(context.Background())
	fmt.Println(n, r.Len())
	// Output: 2 3
}

// Turtle input with prefixes and predicate lists.
func ExampleReasoner_LoadTurtle() {
	doc := `
@prefix ex: <http://e/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:Cat rdfs:subClassOf ex:Animal .
ex:felix a ex:Cat ; rdfs:label "Felix" .
`
	r := slider.New(slider.RhoDF)
	defer r.Close(context.Background())
	n, _ := r.LoadTurtle(strings.NewReader(doc))
	r.Wait(context.Background())
	fmt.Println(n, r.Contains(slider.NewStatement(
		slider.IRI("http://e/felix"), slider.IRI(slider.Type), slider.IRI("http://e/Animal"))))
	// Output: 3 true
}

// SELECT queries run over the materialised closure, so inferred
// knowledge answers them just like explicit knowledge.
func ExampleReasoner_Select() {
	r := slider.New(slider.RhoDF)
	defer r.Close(context.Background())
	r.Add(slider.NewStatement(slider.IRI("http://e/Cat"), slider.IRI(slider.SubClassOf), slider.IRI("http://e/Animal")))
	r.Add(slider.NewStatement(slider.IRI("http://e/felix"), slider.IRI(slider.Type), slider.IRI("http://e/Cat")))
	r.Wait(context.Background())

	rows, _ := r.Select(`SELECT ?x WHERE { ?x a <http://e/Animal> . }`)
	for _, row := range rows {
		fmt.Println(row["x"].Value)
	}
	// Output: http://e/felix
}

// Retraction maintains the materialisation incrementally: consequences
// disappear with their last supporting premise.
func ExampleReasoner_Retract() {
	ctx := context.Background()
	r := slider.New(slider.RhoDF, slider.WithRetraction())
	defer r.Close(ctx)
	cat := slider.NewStatement(slider.IRI("http://e/felix"), slider.IRI(slider.Type), slider.IRI("http://e/Cat"))
	r.Add(slider.NewStatement(slider.IRI("http://e/Cat"), slider.IRI(slider.SubClassOf), slider.IRI("http://e/Animal")))
	r.Add(cat)
	r.Wait(ctx)

	animal := slider.NewStatement(slider.IRI("http://e/felix"), slider.IRI(slider.Type), slider.IRI("http://e/Animal"))
	fmt.Println("before:", r.Contains(animal))
	r.Retract(ctx, cat)
	fmt.Println("after:", r.Contains(animal))
	// Output:
	// before: true
	// after: false
}

// A custom fragment plugs user rules into the same machinery the
// built-in fragments use.
func ExampleCustomFragment() {
	var knows slider.ID
	mirror := &slider.CustomRule{
		RuleName: "mirror-knows",
		Fn: func(_ slider.Source, delta []slider.Triple, emit func(slider.Triple)) {
			for _, t := range delta {
				if t.P == knows {
					emit(slider.Triple{S: t.O, P: t.P, O: t.S})
				}
			}
		},
	}
	r := slider.New(slider.CustomFragment("social", mirror), slider.WithBufferSize(1))
	defer r.Close(context.Background())
	knows = r.Dictionary().Encode(slider.IRI("http://e/knows"))

	r.Add(slider.NewStatement(slider.IRI("http://e/ann"), slider.IRI("http://e/knows"), slider.IRI("http://e/bob")))
	r.Wait(context.Background())
	fmt.Println(r.Contains(slider.NewStatement(
		slider.IRI("http://e/bob"), slider.IRI("http://e/knows"), slider.IRI("http://e/ann"))))
	// Output: true
}
