// Ablation and subsystem benchmarks beyond the paper's tables: the
// future-work features (adaptive scheduling, OWL-Horst), the maintenance
// layer, and the supporting substrates (Turtle, snapshots, queries).
package slider_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	slider "repro"
	"repro/internal/bench"
	"repro/internal/maintenance"
	"repro/internal/ntriples"
	"repro/internal/ontogen"
	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/snapshot"
	"repro/internal/store"
	"repro/internal/turtle"
)

// BenchmarkAblationAdaptive compares fixed vs adaptive buffer scheduling
// on a workload where most rule modules are unproductive (wordnet: no
// ρdf inferences at all).
func BenchmarkAblationAdaptive(b *testing.B) {
	ds := datasetNamed(b, "wordnet")
	for _, adaptive := range []bool{false, true} {
		name := "fixed"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run := func() {
					frag := slider.RhoDF
					opts := []slider.Option{slider.WithBufferSize(16)}
					if adaptive {
						opts = append(opts, slider.WithAdaptiveScheduling())
					}
					r := slider.New(frag, opts...)
					defer r.Close(context.Background())
					// Feed via statements (includes encoding, as always).
					for _, s := range ds.Statements {
						if _, err := r.Add(s); err != nil {
							b.Fatal(err)
						}
					}
					if err := r.Wait(context.Background()); err != nil {
						b.Fatal(err)
					}
				}
				run()
			}
		})
	}
}

// BenchmarkOWLHorst measures the extension fragment end to end on a
// property-characteristics-heavy workload.
func BenchmarkOWLHorst(b *testing.B) {
	owlNS := "http://www.w3.org/2002/07/owl#"
	var sts []slider.Statement
	iri := func(n string) slider.Term { return slider.IRI("http://e/" + n) }
	sts = append(sts,
		slider.NewStatement(iri("partOf"), slider.IRI(slider.Type), slider.IRI(owlNS+"TransitiveProperty")),
		slider.NewStatement(iri("near"), slider.IRI(slider.Type), slider.IRI(owlNS+"SymmetricProperty")),
		slider.NewStatement(iri("contains"), slider.IRI(owlNS+"inverseOf"), iri("partOf")),
	)
	for i := 0; i < 500; i++ {
		sts = append(sts,
			slider.NewStatement(iri(fmt.Sprintf("n%d", i)), iri("partOf"), iri(fmt.Sprintf("n%d", i/2))),
			slider.NewStatement(iri(fmt.Sprintf("n%d", i)), iri("near"), iri(fmt.Sprintf("n%d", (i+7)%500))),
		)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := slider.New(slider.OWLHorst)
		for _, s := range sts {
			if _, err := r.Add(s); err != nil {
				b.Fatal(err)
			}
		}
		if err := r.Close(context.Background()); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.Stats().Inferred), "inferred")
		}
	}
}

// BenchmarkRetract measures DRed maintenance: cutting one edge out of a
// materialised chain.
func BenchmarkRetract(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		n := n
		b.Run(fmt.Sprintf("chain%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				var input []rdf.Triple
				for j := 0; j < n; j++ {
					input = append(input, rdf.T(rdf.FirstCustomID+rdf.ID(j), rdf.IDSubClassOf, rdf.FirstCustomID+rdf.ID(j+1)))
				}
				st := store.New()
				explicit := store.New()
				explicit.AddBatch(input)
				// Materialise via semi-naive fixpoint.
				delta := st.AddAll(input)
				for len(delta) > 0 {
					var out []rdf.Triple
					for _, r := range rules.RhoDF() {
						r.Apply(st, delta, func(t rdf.Triple) { out = append(out, t) })
					}
					delta = st.AddAll(out)
				}
				b.StartTimer()
				if _, err := maintenance.Retract(context.Background(), st, rules.RhoDF(), explicit,
					[]rdf.Triple{input[n/2]}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTurtleParser measures Turtle parsing throughput on a
// predicate-list-heavy document.
func BenchmarkTurtleParser(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://e/> .\n@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n")
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "ex:r%d a ex:Thing ; rdfs:label \"thing %d\" ; ex:next ex:r%d .\n", i, i, i+1)
	}
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sts, err := turtle.ParseString(doc)
		if err != nil {
			b.Fatal(err)
		}
		if len(sts) != 15000 {
			b.Fatalf("parsed %d", len(sts))
		}
	}
}

// BenchmarkSnapshot measures knowledge-base save/load round trips.
func BenchmarkSnapshot(b *testing.B) {
	ds := ontogen.Wikipedia(ontogen.Config{Triples: 20_000, Seed: 1})
	dict := rdf.NewDictionary()
	st := store.New()
	for _, s := range ds {
		st.Add(dict.EncodeStatement(s))
	}
	var buf bytes.Buffer
	b.Run("Save", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := snapshot.Save(&buf, dict, st); err != nil {
				b.Fatal(err)
			}
		}
	})
	if buf.Len() == 0 {
		if err := snapshot.Save(&buf, dict, st); err != nil {
			b.Fatal(err)
		}
	}
	data := buf.Bytes()
	b.Run("Load", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := snapshot.Load(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQuery measures SELECT evaluation over a materialised store.
func BenchmarkQuery(b *testing.B) {
	r := slider.New(slider.RhoDF)
	defer r.Close(context.Background())
	for _, s := range ontogen.Wikipedia(ontogen.Config{Triples: 20_000, Seed: 1}) {
		if _, err := r.Add(s); err != nil {
			b.Fatal(err)
		}
	}
	if err := r.Wait(context.Background()); err != nil {
		b.Fatal(err)
	}
	q := `SELECT ?a ?c WHERE {
		?a a <http://example.org/wikipedia/Article> .
		?a <http://example.org/terms/subject> ?c .
		?c rdfs:subClassOf ?super .
	}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := r.Select(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no solutions")
		}
	}
}

// BenchmarkDomainRange drives the prp-dom / prp-rng modules at scale —
// the rule family Table 1's workloads never fire (their schemas carry no
// domain/range declarations).
func BenchmarkDomainRange(b *testing.B) {
	sts := ontogen.Sensor(ontogen.Config{Triples: 20_000, Seed: 1})
	for _, frag := range []slider.Fragment{slider.RhoDF, slider.RDFS} {
		frag := frag
		b.Run(frag.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := slider.New(frag)
				for _, s := range sts {
					if _, err := r.Add(s); err != nil {
						b.Fatal(err)
					}
				}
				if err := r.Close(context.Background()); err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(r.Stats().Inferred), "inferred")
				}
			}
		})
	}
}

// BenchmarkNTriplesWriter measures serialisation throughput.
func BenchmarkNTriplesWriter(b *testing.B) {
	sts := ontogen.WordNet(ontogen.Config{Triples: 10_000, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := ntriples.WriteAll(&buf, sts); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// BenchmarkSweep is the §4 parameter grid as a benchmark (one point).
func BenchmarkSweep(b *testing.B) {
	ds := datasetNamed(b, "BSBM_200k")
	for _, bs := range []int{16, 256} {
		bs := bs
		b.Run(fmt.Sprintf("buffer%d", bs), func(b *testing.B) {
			runSlider(b, ds, bench.RhoDF, bench.SliderConfig{BufferSize: bs})
		})
	}
}
