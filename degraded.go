// Degraded operation. A durable Reasoner that hits a disk fault does
// not die and does not poison itself forever: it classifies the fault
// and, for the transient kinds (ENOSPC, EIO on an fsync, a failed
// rename or segment roll), enters a read-only degraded mode — queries,
// stats and metrics keep serving, writes are refused with ErrDegraded —
// while a background loop probes the log directory with bounded
// exponential backoff and returns the reasoner to ok once writes
// durably succeed again. Only corruption (wal.ErrCorrupt) is permanent:
// it moves the reasoner to failed, from which there is no way back.
//
// State machine (see README "Failure modes & degraded operation"):
//
//	ok ──transient fault──▶ degraded ──probe succeeds──▶ ok
//	ok/degraded ──corruption──▶ failed          (terminal)
//
// Record rejections (wal.ErrRejected: oversized or wildcard-carrying
// batches) are the caller's problem, say nothing about the disk, and
// cause no transition.
package slider

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/wal"
)

// HealthStatus is the coarse health of a Reasoner.
type HealthStatus string

const (
	// HealthOK: fully serving, writes accepted.
	HealthOK HealthStatus = "ok"
	// HealthDegraded: serving reads; writes may be refused (ReadOnly)
	// or background maintenance may be behind. Recovery is possible.
	HealthDegraded HealthStatus = "degraded"
	// HealthFailed: a permanent fault (corruption, engine failure).
	HealthFailed HealthStatus = "failed"
)

// Health is a point-in-time health snapshot (see Reasoner.Health).
type Health struct {
	Status HealthStatus
	// Cause is the human-readable reason when Status != ok.
	Cause string
	// Since is when the current status was entered (zero for ok since
	// startup, or when the origin subsystem does not track it).
	Since time.Time
	// RetryAfter is the recovery loop's current backoff — the hint a
	// serving layer should hand to clients as a Retry-After. Zero when
	// writes are not being refused.
	RetryAfter time.Duration
	// ReadOnly reports whether mutations are currently refused. A
	// degraded reasoner with ReadOnly false (e.g. a compaction panic)
	// still accepts writes.
	ReadOnly bool
}

// ErrDegraded marks writes refused while the reasoner is in read-only
// degraded mode. Errors returned by AddBatch/Retract during degradation
// match errors.Is(err, ErrDegraded); the serving layer maps them to 503
// with a Retry-After.
var ErrDegraded = errors.New("slider: knowledge base degraded (read-only)")

const (
	// recoverBackoffMin/Max bound the recovery loop's exponential
	// backoff between probes of the log directory.
	recoverBackoffMin = 50 * time.Millisecond
	recoverBackoffMax = 5 * time.Second
	// ckptMaxRetries is how many consecutive background-checkpoint
	// failures are retried (with backoff, see ckptRetryBase) before the
	// reasoner degrades to read-only.
	ckptMaxRetries = 6
	ckptRetryBase  = 10 * time.Millisecond
	ckptRetryMax   = 500 * time.Millisecond
	// diskPollEvery is the disk-watermark monitor's sampling period.
	diskPollEvery = 2 * time.Second
)

// healthState is the durability layer's half of the state machine,
// guarded by its own mutex so health reads never wait on ingest.
type healthState struct {
	mu         sync.Mutex
	status     HealthStatus
	cause      error // the stored instance writes are refused with
	since      time.Time
	backoff    time.Duration // current recovery backoff (degraded only)
	attempts   int           // probes since entering degraded
	recovering bool          // a recoverLoop goroutine is live
}

// healthSnapshot reports the durability layer's own health. The facade
// (Reasoner.Health) merges it with engine and compaction state.
func (d *durability) healthSnapshot() Health {
	h := &d.health
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.status
	if st == "" {
		st = HealthOK
	}
	out := Health{Status: st, Since: h.since}
	if h.cause != nil {
		out.Cause = h.cause.Error()
	}
	if st == HealthDegraded {
		out.ReadOnly = true
		out.RetryAfter = h.backoff
		if out.RetryAfter < recoverBackoffMin {
			out.RetryAfter = recoverBackoffMin
		}
	}
	if st == HealthFailed {
		out.ReadOnly = true
	}
	return out
}

// refusal returns the error writes are currently refused with, nil when
// the durability layer is healthy.
func (d *durability) refusal() error {
	h := &d.health
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.status == HealthDegraded || h.status == HealthFailed {
		return h.cause
	}
	return nil
}

// writeFault classifies a write-path failure and returns the error the
// caller should surface. Rejections (invalid records) and ErrClosed
// pass through untouched — they say nothing about the disk. Corruption
// is terminal. Everything else (ENOSPC, EIO, rename/roll failures) is
// transient: the reasoner degrades to read-only and a recovery loop
// starts probing. The returned error is the stored cause instance, so
// the refusal a concurrent writer sees is identical to Err()'s.
func (d *durability) writeFault(err error) error {
	switch {
	case errors.Is(err, wal.ErrRejected), errors.Is(err, wal.ErrClosed):
		return err
	case errors.Is(err, wal.ErrCorrupt):
		return d.enterFailed(err)
	default:
		return d.enterDegraded(err)
	}
}

// enterDegraded moves ok → degraded (idempotent while degraded; a no-op
// once failed) and starts the recovery loop. Returns the stored cause.
func (d *durability) enterDegraded(err error) error {
	h := &d.health
	h.mu.Lock()
	if h.status == HealthFailed {
		defer h.mu.Unlock()
		return h.cause
	}
	if h.status != HealthDegraded {
		assertHealthTransition(h.status, HealthDegraded)
		h.status = HealthDegraded
		h.cause = fmt.Errorf("%w: %v", ErrDegraded, err)
		h.since = time.Now()
		h.backoff = recoverBackoffMin
		h.attempts = 0
		d.logger.Warn("entering degraded read-only mode", "cause", err)
	}
	cause := h.cause
	spawn := !h.recovering
	if spawn {
		h.recovering = true
	}
	h.mu.Unlock()
	if spawn {
		go d.recoverLoop()
	}
	return cause
}

// enterFailed moves the durability layer to its terminal state.
func (d *durability) enterFailed(err error) error {
	h := &d.health
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.status == HealthFailed {
		return h.cause
	}
	h.status = HealthFailed
	h.cause = err
	h.since = time.Now()
	d.logger.Error("knowledge base failed permanently", "cause", err)
	return h.cause
}

// recovered moves degraded → ok: clear the cause, reset the checkpoint
// retry budget, and drop the sticky background error so health reports
// clean. Never called from failed.
func (d *durability) recovered() {
	h := &d.health
	h.mu.Lock()
	if h.status != HealthDegraded {
		h.mu.Unlock()
		return
	}
	assertHealthTransition(h.status, HealthOK)
	h.status = HealthOK
	h.cause = nil
	h.since = time.Now()
	h.backoff = 0
	h.recovering = false
	attempts := h.attempts
	h.mu.Unlock()
	d.errMu.Lock()
	d.bgErr = nil
	d.ckptFailures = 0
	d.errMu.Unlock()
	d.logger.Info("recovered from degraded mode, accepting writes again", "probes", attempts)
}

// recoverLoop probes the log directory with bounded exponential backoff
// plus jitter until a probe succeeds (→ ok) or the reasoner closes. It
// never re-fsyncs the failed descriptor: wal.Recover reopens the live
// segment by path (INVARIANTS: recovery never re-fsyncs a failed fd).
func (d *durability) recoverLoop() {
	backoff := recoverBackoffMin
	for {
		// Full jitter on the upper half keeps a fleet of recovering
		// processes from thundering against a shared disk.
		wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		t := time.NewTimer(wait)
		select {
		case <-d.stopMon:
			t.Stop()
			d.health.mu.Lock()
			d.health.recovering = false
			d.health.mu.Unlock()
			return
		case <-t.C:
		}
		if err := d.probe(); err == nil {
			d.recovered()
			return
		} else {
			d.logger.Warn("recovery probe failed", "err", err, "next_backoff", backoff)
		}
		d.health.mu.Lock()
		d.health.attempts++
		if backoff *= 2; backoff > recoverBackoffMax {
			backoff = recoverBackoffMax
		}
		d.health.backoff = backoff
		d.health.mu.Unlock()
	}
}

// probe checks that the log directory is writable again: free space is
// back above the configured floor (when one is set), and the log can
// reopen its live segment and complete a write+fsync+remove round trip.
func (d *durability) probe() error {
	if d.diskMinFree > 0 {
		free, err := d.fs.FreeSpace(d.dir)
		if err == nil && free < uint64(d.diskMinFree) {
			return fmt.Errorf("slider: disk free %d bytes still below the %d-byte floor", free, d.diskMinFree)
		}
	}
	return d.log.Recover()
}

// ckptFault records a background-checkpoint failure: retried with
// capped exponential backoff (maybeCheckpointLocked skips attempts
// inside the window), degrading to read-only once the budget is spent.
// wal.ErrClosed is shutdown noise, not a fault.
func (d *durability) ckptFault(err error) {
	if errors.Is(err, wal.ErrClosed) {
		return
	}
	d.errMu.Lock()
	if d.bgErr == nil {
		d.bgErr = err
	}
	d.ckptFailures++
	n := d.ckptFailures
	backoff := ckptRetryBase << (n - 1)
	if backoff > ckptRetryMax || backoff <= 0 {
		backoff = ckptRetryMax
	}
	d.ckptNextTry = time.Now().Add(backoff)
	d.errMu.Unlock()
	if n > ckptMaxRetries {
		d.enterDegraded(fmt.Errorf("checkpoint failed %d times, last: %v", n, err))
		return
	}
	d.logger.Warn("background checkpoint failed, will retry", "attempt", n, "backoff", backoff, "err", err)
}

// ckptSucceeded clears the checkpoint retry budget and the sticky
// background error: the disk proved writable end to end.
func (d *durability) ckptSucceeded() {
	d.errMu.Lock()
	d.bgErr = nil
	d.ckptFailures = 0
	d.errMu.Unlock()
}

// monitorDisk samples free space under the log directory every
// diskPollEvery: WARN once when it sinks below twice the floor,
// proactively degrade to read-only below the floor itself — refusing
// writes before ENOSPC corrupts a half-written segment is the point of
// the watermark. The gauge slider_disk_free_bytes is registered in
// openDurable and reads the same source.
func (d *durability) monitorDisk() {
	tick := time.NewTicker(diskPollEvery)
	defer tick.Stop()
	warned := false
	for {
		select {
		case <-d.stopMon:
			return
		case <-tick.C:
		}
		free, err := d.fs.FreeSpace(d.dir)
		if err != nil {
			continue // unknown is not low; see vfs.FreeSpace
		}
		switch {
		case free < uint64(d.diskMinFree):
			d.enterDegraded(fmt.Errorf("disk free %d bytes below the %d-byte floor", free, d.diskMinFree))
		case free < 2*uint64(d.diskMinFree):
			if !warned {
				warned = true
				d.logger.Warn("disk space low", "free_bytes", free, "floor_bytes", d.diskMinFree)
			}
		default:
			warned = false
		}
	}
}

// Health reports the reasoner's health without blocking on inference or
// I/O: engine failures and log corruption are failed; a read-only
// durability fault or a background maintenance error is degraded (the
// former refuses writes, the latter does not); otherwise ok.
func (r *Reasoner) Health() Health {
	if err := r.engine.Err(); err != nil {
		return Health{Status: HealthFailed, Cause: err.Error(), ReadOnly: true}
	}
	if r.dur != nil {
		if h := r.dur.healthSnapshot(); h.Status != HealthOK {
			return h
		}
		if err := r.dur.getErr(); err != nil {
			// A terminal close-path error outside the state machine.
			return Health{Status: HealthFailed, Cause: err.Error(), ReadOnly: true}
		}
	}
	if err := r.BackgroundErr(); err != nil {
		h := Health{Status: HealthDegraded, Cause: err.Error()}
		if since := r.store.CompactionErrSince(); !since.IsZero() {
			h.Since = since
		} else if r.explicit != nil {
			h.Since = r.explicit.CompactionErrSince()
		}
		return h
	}
	return Health{Status: HealthOK}
}
