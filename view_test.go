package slider

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestViewSnapshotIsolation pins the read-session guarantee: a session
// answers from its freeze-time closure no matter what lands afterwards.
func TestViewSnapshotIsolation(t *testing.T) {
	ctx := context.Background()
	r := New(RhoDF, WithViewMaxAge(-1)) // refresh on every change
	defer r.Close(ctx)

	mustAdd(t, r, NewStatement(ex("Cat"), IRI(SubClassOf), ex("Animal")))
	mustAdd(t, r, NewStatement(ex("felix"), IRI(Type), ex("Cat")))
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := r.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// The snapshot holds the closure: felix is an Animal.
	if !v.Contains(NewStatement(ex("felix"), IRI(Type), ex("Animal"))) {
		t.Fatal("inferred statement missing from view")
	}
	// New data is invisible to the open session but visible to a new one.
	mustAdd(t, r, NewStatement(ex("tom"), IRI(Type), ex("Cat")))
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if v.Contains(NewStatement(ex("tom"), IRI(Type), ex("Cat"))) {
		t.Fatal("post-snapshot statement leaked into open session")
	}
	v2, err := r.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if !v2.Contains(NewStatement(ex("tom"), IRI(Type), ex("Animal"))) {
		t.Fatal("fresh session missing new closure")
	}
	if v.Len() >= v2.Len() {
		t.Fatalf("session lengths not monotone: %d vs %d", v.Len(), v2.Len())
	}
}

// TestViewSelectStreamsWithLimit exercises the streamed query path on a
// session, including the parser's LIMIT clause.
func TestViewSelectStreamsWithLimit(t *testing.T) {
	ctx := context.Background()
	r := New(RhoDF)
	defer r.Close(ctx)
	for i := 0; i < 20; i++ {
		mustAdd(t, r, NewStatement(ex(fmt.Sprintf("p%02d", i)), IRI(Type), ex("Product")))
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := r.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	var rows []Binding
	err = v.SelectFunc(
		`SELECT ?x WHERE { ?x a <http://example.org/Product> . } LIMIT 5`,
		func(b Binding) bool { rows = append(rows, b); return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("streamed %d rows, want 5", len(rows))
	}
	all, err := v.Select(`SELECT ?x WHERE { ?x a <http://example.org/Product> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 20 {
		t.Fatalf("Select returned %d rows, want 20", len(all))
	}
}

// TestViewSharing pins the snapshot-sharing contract: with an unchanged
// store, concurrent sessions share one underlying snapshot; a mutation
// plus an expired max-age forces a refresh.
func TestViewSharing(t *testing.T) {
	ctx := context.Background()
	r := New(RhoDF, WithViewMaxAge(time.Hour))
	defer r.Close(ctx)
	mustAdd(t, r, NewStatement(ex("a"), IRI(Type), ex("T")))
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	v1, err := r.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := r.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v1.shared != v2.shared {
		t.Fatal("unchanged store: sessions should share one snapshot")
	}
	v1.Close()
	v1.Close() // idempotent
	v2.Close()

	// A store change with an unexpired max-age still reuses (bounded
	// staleness is allowed)…
	mustAdd(t, r, NewStatement(ex("b"), IRI(Type), ex("T")))
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	v3, err := r.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v3.shared != v1.shared {
		t.Fatal("young snapshot should be reused despite the change")
	}
	// …but an aged-out one refreshes.
	r.viewMu.Lock()
	r.viewCur.born = time.Now().Add(-2 * time.Hour)
	r.viewMu.Unlock()
	v4, err := r.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v4.shared == v3.shared {
		t.Fatal("aged, stale snapshot was not refreshed")
	}
	if !v4.Contains(NewStatement(ex("b"), IRI(Type), ex("T"))) {
		t.Fatal("refreshed snapshot missing the new statement")
	}
	v3.Close()
	v4.Close()
}

// TestViewConcurrentWithIngest hammers ingest while read sessions open,
// query and close, checking under -race that every session sees a
// closed, consistent prefix: if a member's typing is visible, the whole
// subclass chain's consequences for it are too.
func TestViewConcurrentWithIngest(t *testing.T) {
	ctx := context.Background()
	r := New(RhoDF, WithViewMaxAge(time.Millisecond))
	defer r.Close(ctx)
	// Schema: C0 ⊂ C1 ⊂ … ⊂ C5.
	for i := 0; i < 5; i++ {
		mustAdd(t, r, NewStatement(ex(fmt.Sprintf("C%d", i)), IRI(SubClassOf), ex(fmt.Sprintf("C%d", i+1))))
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 4, 120
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				st := NewStatement(ex(fmt.Sprintf("m%d_%d", w, i)), IRI(Type), ex("C0"))
				if _, err := r.AddBatch([]Statement{st}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	querierDone := make(chan struct{})
	go func() {
		defer close(querierDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, err := r.View(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			// Consistency: any member typed C0 in the snapshot must have
			// its full inferred chain in the same snapshot.
			rows, err := v.Select(`SELECT ?m WHERE { ?m a <http://example.org/C0> . }`)
			if err != nil {
				t.Error(err)
				v.Close()
				return
			}
			for _, b := range rows {
				if !v.Contains(NewStatement(b["m"], IRI(Type), ex("C5"))) {
					t.Errorf("snapshot holds %v type C0 but not type C5: not a closure", b["m"])
					v.Close()
					return
				}
			}
			v.Close()
		}
	}()
	wg.Wait()
	close(stop)
	<-querierDone

	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := r.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	rows, err := v.Select(`SELECT ?m WHERE { ?m a <http://example.org/C5> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != writers*perWriter {
		t.Fatalf("final snapshot has %d members, want %d", len(rows), writers*perWriter)
	}
}
