package query

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// limitFixture builds a store with n typed subjects for paging tests.
func limitFixture(t *testing.T, n int) (*store.Store, *rdf.Dictionary) {
	t.Helper()
	dict := rdf.NewDictionary()
	st := store.New()
	typeT := rdf.NewIRI(rdf.IRIType)
	for i := 0; i < n; i++ {
		st.Add(dict.EncodeStatement(rdf.NewStatement(
			rdf.NewIRI(fmt.Sprintf("http://e/s%02d", i)), typeT, ex("Thing"))))
	}
	return st, dict
}

func thingQuery() Query {
	return Query{Patterns: []Pattern{{V("x"), T(rdf.NewIRI(rdf.IRIType)), T(ex("Thing"))}}}
}

func TestParseSelectLimitOffset(t *testing.T) {
	cases := []struct {
		src           string
		limit, offset int
		hasLimit      bool
	}{
		{"SELECT ?x WHERE { ?x a <http://e/T> . }", 0, 0, false},
		{"SELECT ?x WHERE { ?x a <http://e/T> . } LIMIT 5", 5, 0, true},
		{"SELECT ?x WHERE { ?x a <http://e/T> . } OFFSET 3", 0, 3, false},
		{"SELECT ?x WHERE { ?x a <http://e/T> . } LIMIT 5 OFFSET 3", 5, 3, true},
		{"SELECT ?x WHERE { ?x a <http://e/T> . } OFFSET 3 LIMIT 5", 5, 3, true},
		{"SELECT ?x WHERE { ?x a <http://e/T> . } limit 0", 0, 0, true},
		{"SELECT ?x WHERE { ?x a <http://e/T> . }\n\tLIMIT 12 # trailing comment", 12, 0, true},
	}
	for _, c := range cases {
		q, err := ParseSelect(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if q.Limit != c.limit || q.HasLimit != c.hasLimit || q.Offset != c.offset {
			t.Fatalf("%q: got limit=%d hasLimit=%v offset=%d, want %d %v %d",
				c.src, q.Limit, q.HasLimit, q.Offset, c.limit, c.hasLimit, c.offset)
		}
	}
}

func TestParseSelectLimitOffsetErrors(t *testing.T) {
	bad := []string{
		"SELECT ?x WHERE { ?x a <http://e/T> . } LIMIT",
		"SELECT ?x WHERE { ?x a <http://e/T> . } LIMIT -1",
		"SELECT ?x WHERE { ?x a <http://e/T> . } LIMIT five",
		"SELECT ?x WHERE { ?x a <http://e/T> . } LIMIT 5 LIMIT 6",
		"SELECT ?x WHERE { ?x a <http://e/T> . } OFFSET 1 OFFSET 2",
		"SELECT ?x WHERE { ?x a <http://e/T> . } LIMIT 99999999999999999999",
		"SELECT ?x WHERE { ?x a <http://e/T> . } LIMIT 5 garbage",
		"SELECT ?x WHERE { ?x a <http://e/T> . } OFFSET 5 trailing",
	}
	for _, src := range bad {
		if _, err := ParseSelect(src); err == nil {
			t.Fatalf("%q: parse succeeded, want error", src)
		}
	}
}

func TestExecuteHonoursLimitOffset(t *testing.T) {
	st, dict := limitFixture(t, 10)
	q := thingQuery()
	q.HasLimit, q.Limit, q.Offset = true, 3, 2
	got, err := Execute(st, dict, q)
	if err != nil {
		t.Fatal(err)
	}
	// Execute pages the sorted result: s02, s03, s04.
	if len(got) != 3 {
		t.Fatalf("got %d rows, want 3: %v", len(got), got)
	}
	for i, want := range []string{"s02", "s03", "s04"} {
		if !strings.HasSuffix(got[i]["x"].Value, want) {
			t.Fatalf("row %d = %v, want suffix %s", i, got[i]["x"], want)
		}
	}

	// Offset past the end yields nothing; LIMIT 0 yields nothing.
	q.Offset = 50
	if got, _ := Execute(st, dict, q); len(got) != 0 {
		t.Fatalf("offset past end: got %v", got)
	}
	q.Offset, q.Limit = 0, 0
	if got, _ := Execute(st, dict, q); len(got) != 0 {
		t.Fatalf("LIMIT 0: got %v", got)
	}
}

func TestExecuteFuncStreamsAndStopsEarly(t *testing.T) {
	st, dict := limitFixture(t, 100)
	q := thingQuery()
	q.HasLimit, q.Limit, q.Offset = true, 7, 5
	var rows []Binding
	if err := ExecuteFunc(st, dict, q, func(b Binding) bool {
		rows = append(rows, b)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("streamed %d rows, want 7", len(rows))
	}
	seen := map[string]bool{}
	for _, b := range rows {
		if seen[b["x"].Value] {
			t.Fatalf("duplicate row %v", b)
		}
		seen[b["x"].Value] = true
	}

	// emit returning false stops evaluation.
	n := 0
	q = thingQuery()
	if err := ExecuteFunc(st, dict, q, func(Binding) bool {
		n++
		return n < 4
	}); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("emit called %d times after early stop, want 4", n)
	}

	// LIMIT 0 emits nothing but still validates.
	q.HasLimit, q.Limit = true, 0
	called := false
	if err := ExecuteFunc(st, dict, q, func(Binding) bool { called = true; return true }); err != nil || called {
		t.Fatalf("LIMIT 0: err=%v called=%v", err, called)
	}
	if err := ExecuteFunc(st, dict, Query{}, func(Binding) bool { return true }); err == nil {
		t.Fatal("empty BGP accepted")
	}
}

// TestExecuteOverView pins the serving-layer path: the same query over a
// frozen view answers with freeze-time data while the live store moves on.
func TestExecuteOverView(t *testing.T) {
	st, dict := limitFixture(t, 5)
	view := st.Freeze()
	defer view.Release()
	// Mutate after the freeze: two new subjects, one removal.
	typeT := rdf.NewIRI(rdf.IRIType)
	st.Add(dict.EncodeStatement(rdf.NewStatement(rdf.NewIRI("http://e/new1"), typeT, ex("Thing"))))
	st.Add(dict.EncodeStatement(rdf.NewStatement(rdf.NewIRI("http://e/new2"), typeT, ex("Thing"))))
	st.Remove(dict.EncodeStatement(rdf.NewStatement(rdf.NewIRI("http://e/s00"), typeT, ex("Thing"))))

	got, err := Execute(view, dict, thingQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("view query: %d rows, want 5 (frozen): %v", len(got), got)
	}
	for _, b := range got {
		if strings.Contains(b["x"].Value, "new") {
			t.Fatalf("post-freeze subject leaked into view query: %v", b)
		}
	}
	live, err := Execute(st, dict, thingQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 6 {
		t.Fatalf("live query: %d rows, want 6", len(live))
	}
}
