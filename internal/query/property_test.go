package query

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
	"repro/internal/store"
)

// bruteForce evaluates a query by enumerating every assignment of store
// terms to variables and checking all patterns — the trivially-correct
// oracle for the backtracking join.
func bruteForce(st *store.Store, dict *rdf.Dictionary, q Query) map[string]bool {
	vars := q.Vars()
	proj := q.Select
	if len(proj) == 0 {
		proj = vars
	}
	// Candidate IDs: every ID appearing anywhere in the store.
	idSet := map[rdf.ID]bool{}
	st.ForEach(func(t rdf.Triple) bool {
		idSet[t.S] = true
		idSet[t.P] = true
		idSet[t.O] = true
		return true
	})
	var ids []rdf.ID
	for id := range idSet {
		ids = append(ids, id)
	}
	results := map[string]bool{}
	assignment := map[string]rdf.ID{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			for _, p := range q.Patterns {
				resolve := func(n Node) rdf.ID {
					if n.IsVar {
						return assignment[n.Var]
					}
					id, _ := dict.Lookup(n.Term)
					return id
				}
				if !st.Contains(rdf.T(resolve(p.S), resolve(p.P), resolve(p.O))) {
					return
				}
			}
			key := ""
			for _, v := range proj {
				term, _ := dict.Term(assignment[v])
				key += term.String() + "|"
			}
			results[key] = true
			return
		}
		for _, id := range ids {
			assignment[vars[i]] = id
			rec(i + 1)
		}
	}
	rec(0)
	return results
}

// Property: the backtracking join returns exactly the brute-force
// solution set for random tiny stores and random 1-3 pattern queries.
func TestExecuteMatchesBruteForceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dict := rdf.NewDictionary()
		st := store.New()
		term := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://e/t%d", i)) }
		nTerms := rng.Intn(5) + 3
		for i := 0; i < rng.Intn(12)+4; i++ {
			st.Add(dict.EncodeStatement(rdf.NewStatement(
				term(rng.Intn(nTerms)), term(rng.Intn(3)), term(rng.Intn(nTerms)))))
		}
		varNames := []string{"x", "y", "z"}
		randNode := func() Node {
			if rng.Intn(2) == 0 {
				return V(varNames[rng.Intn(len(varNames))])
			}
			return T(term(rng.Intn(nTerms)))
		}
		var q Query
		for i := 0; i < rng.Intn(3)+1; i++ {
			q.Patterns = append(q.Patterns, Pattern{randNode(), randNode(), randNode()})
		}
		got, err := Execute(st, dict, q)
		if err != nil {
			return false
		}
		want := bruteForce(st, dict, q)
		if len(got) != len(want) {
			t.Logf("seed %d: got %d solutions, brute force %d\nquery: %v",
				seed, len(got), len(want), q.Patterns)
			return false
		}
		proj := q.Select
		if len(proj) == 0 {
			proj = q.Vars()
		}
		for _, b := range got {
			key := ""
			for _, v := range proj {
				key += b[v].String() + "|"
			}
			if !want[key] {
				t.Logf("seed %d: spurious solution %v", seed, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
