package query

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// seedChain builds a chain-join fixture: n subjects typed Product, a
// tenth of them madeBy acme, each of those with one label.
func seedChain(t *testing.T) (*store.Store, *rdf.Dictionary) {
	t.Helper()
	dict := rdf.NewDictionary()
	st := store.New()
	add := func(s, p, o rdf.Term) {
		st.Add(dict.EncodeStatement(rdf.NewStatement(s, p, o)))
	}
	typeT := rdf.NewIRI(rdf.IRIType)
	label := rdf.NewIRI(rdf.IRILabel)
	for i := 0; i < 200; i++ {
		s := ex(fmt.Sprintf("p%d", i))
		add(s, typeT, ex("Product"))
		if i%10 == 0 {
			add(s, ex("madeBy"), ex("acme"))
			add(s, label, rdf.NewLiteral(fmt.Sprintf("L%d", i)))
		}
	}
	return st, dict
}

func TestExplainChainJoin(t *testing.T) {
	st, dict := seedChain(t)
	q := Query{
		Select: []string{"name"},
		Patterns: []Pattern{
			{V("p"), T(rdf.NewIRI(rdf.IRIType)), T(ex("Product"))},
			{V("p"), T(ex("madeBy")), T(ex("acme"))},
			{V("p"), T(rdf.NewIRI(rdf.IRILabel)), V("name")},
		},
	}
	var ex Explain
	rows, err := ExecuteExplain(t.Context(), st, dict, q, nil, &ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 || ex.Rows != 20 {
		t.Fatalf("rows = %d, ex.Rows = %d, want 20", len(rows), ex.Rows)
	}
	if ex.NaiveOrder {
		t.Fatal("NaiveOrder set on a planned query")
	}
	if len(ex.Order) != 3 || len(ex.Patterns) != 3 {
		t.Fatalf("order %v, patterns %v", ex.Order, ex.Patterns)
	}
	// The planner must not open with the 200-row type scan: madeBy (20
	// triples) or the label pattern is cheaper.
	if ex.Order[0] == 0 {
		t.Fatalf("planner opened with the type scan: order %v, ests %+v", ex.Order, ex.Patterns)
	}
	for i, p := range ex.Patterns {
		if p.Step < 0 || p.Step > 2 {
			t.Fatalf("pattern %d has step %d", i, p.Step)
		}
		if p.Probes == 0 {
			t.Fatalf("pattern %d was never probed: %+v", i, p)
		}
		if p.EstRows <= 0 {
			t.Fatalf("pattern %d has no estimate: %+v", i, p)
		}
	}
	if ex.PlanCost <= 0 {
		t.Fatalf("plan cost %v", ex.PlanCost)
	}
}

func TestExplainStarJoin(t *testing.T) {
	st, dict := seedChain(t)
	// Star around ?p: three predicates sharing the subject.
	q := Query{
		Patterns: []Pattern{
			{V("p"), T(rdf.NewIRI(rdf.IRIType)), T(ex("Product"))},
			{V("p"), T(ex("madeBy")), V("who")},
			{V("p"), T(rdf.NewIRI(rdf.IRILabel)), V("name")},
		},
	}
	var ex Explain
	rows, err := ExecuteExplain(t.Context(), st, dict, q, nil, &ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	// Actual rows must be recorded for every pattern, and the type
	// pattern — evaluated with ?p bound — must report its existence
	// probes rather than a full scan.
	var total int64
	for _, p := range ex.Patterns {
		total += p.ActualRows
	}
	if total == 0 {
		t.Fatalf("no actual rows recorded: %+v", ex.Patterns)
	}
}

// TestExplainNaiveCanBeatPlanner pins an honest case: a skewed dataset
// where the cost model's per-probe averages mislead it into a worse
// total row count than the as-written order. The explain output must
// record the regression, not hide it.
func TestExplainNaiveCanBeatPlanner(t *testing.T) {
	dict := rdf.NewDictionary()
	st := store.New()
	add := func(s, p, o rdf.Term) {
		st.Add(dict.EncodeStatement(rdf.NewStatement(s, p, o)))
	}
	// Predicate p: 1000 triples over 101 distinct subjects, but the
	// subject "big" holds 900 of them — the per-probe average (~10)
	// wildly underestimates a probe on big.
	for i := 0; i < 900; i++ {
		add(ex("big"), ex("p"), ex(fmt.Sprintf("v%d", i)))
	}
	for i := 0; i < 100; i++ {
		add(ex(fmt.Sprintf("s%d", i)), ex("p"), ex(fmt.Sprintf("w%d", i)))
	}
	// Predicate q: 50 triples whose subjects are p-objects of big.
	for i := 0; i < 50; i++ {
		add(ex(fmt.Sprintf("v%d", i)), ex("q"), ex(fmt.Sprintf("w%d", i)))
	}
	// ?x q ?y . big p ?x — as written, q runs first (50 rows) and each
	// row existence-probes big's extent. The planner estimates the
	// ground-subject pattern at extent/distinct-subjects ≈ 10 rows,
	// places it first, and enumerates big's actual 900.
	q := Query{
		Patterns: []Pattern{
			{V("x"), T(ex("q")), V("y")},
			{T(ex("big")), T(ex("p")), V("x")},
		},
	}
	var planned Explain
	if _, err := ExecuteExplain(t.Context(), st, dict, q, nil, &planned); err != nil {
		t.Fatal(err)
	}
	qn := q
	qn.NaiveOrder = true
	var naive Explain
	if _, err := ExecuteExplain(t.Context(), st, dict, qn, nil, &naive); err != nil {
		t.Fatal(err)
	}
	if !naive.NaiveOrder || naive.Order[0] != 0 {
		t.Fatalf("naive explain misreported: %+v", naive)
	}
	if planned.Order[0] != 1 {
		t.Fatalf("skew did not mislead the planner (order %v) — the fixture no longer exercises the case", planned.Order)
	}
	// The planner's estimate for the pattern it placed first must be
	// far below what that pattern actually produced: that gap is the
	// diagnostic ?explain=1 exists to surface.
	first := planned.Patterns[1]
	if first.EstRows > 50 || first.ActualRows < 800 {
		t.Fatalf("expected est≪actual on the skewed pattern, got est %.1f actual %d", first.EstRows, first.ActualRows)
	}
	sum := func(e Explain) (n int64) {
		for _, p := range e.Patterns {
			n += p.ActualRows
		}
		return
	}
	t.Logf("planned order %v: %d pattern rows (est %.1f on skewed pattern); naive order %v: %d pattern rows",
		planned.Order, sum(planned), first.EstRows, naive.Order, sum(naive))
	// Both orders must agree on the answer, and on this skew the
	// as-written order does strictly less row work — recorded, not
	// hidden.
	if planned.Rows != naive.Rows {
		t.Fatalf("planned %d rows, naive %d rows", planned.Rows, naive.Rows)
	}
	if sum(naive) >= sum(planned) {
		t.Fatalf("naive (%d rows) should have beaten the planner (%d rows) here", sum(naive), sum(planned))
	}
	for _, e := range []Explain{planned, naive} {
		for i, p := range e.Patterns {
			if p.Probes == 0 {
				t.Fatalf("pattern %d unprobed in %+v", i, e)
			}
		}
	}
}

// TestExplainGallopedPathRecorded pins the Galloped flag: two patterns
// whose only unbound variable coincides are answered by one sorted
// intersection and both must say so.
func TestExplainGallopedPathRecorded(t *testing.T) {
	dict := rdf.NewDictionary()
	st := store.New()
	add := func(s, p, o rdf.Term) {
		st.Add(dict.EncodeStatement(rdf.NewStatement(s, p, o)))
	}
	for i := 0; i < 64; i++ {
		add(ex(fmt.Sprintf("m%d", i)), ex("likes"), ex("pizza"))
	}
	for i := 32; i < 96; i++ {
		add(ex(fmt.Sprintf("m%d", i)), ex("likes"), ex("pasta"))
	}
	q := Query{
		Patterns: []Pattern{
			{V("x"), T(ex("likes")), T(ex("pizza"))},
			{V("x"), T(ex("likes")), T(ex("pasta"))},
		},
	}
	var ex1 Explain
	rows, err := ExecuteExplain(t.Context(), st, dict, q, nil, &ex1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 32 {
		t.Fatalf("rows = %d, want 32", len(rows))
	}
	if !ex1.Patterns[0].Galloped || !ex1.Patterns[1].Galloped {
		t.Fatalf("galloping not recorded: %+v", ex1.Patterns)
	}
	if ex1.Patterns[0].ActualRows != 32 || ex1.Patterns[1].ActualRows != 32 {
		t.Fatalf("intersection rows not credited to both: %+v", ex1.Patterns)
	}
	// The same query in naive order must not gallop.
	qn := q
	qn.NaiveOrder = true
	var ex2 Explain
	if _, err := ExecuteExplain(t.Context(), st, dict, qn, nil, &ex2); err != nil {
		t.Fatal(err)
	}
	if ex2.Patterns[0].Galloped || ex2.Patterns[1].Galloped {
		t.Fatalf("naive order galloped: %+v", ex2.Patterns)
	}
}

// TestExplainJSONShape locks the wire field names the serving layer and
// CLI rely on.
func TestExplainJSONShape(t *testing.T) {
	st, dict := seedChain(t)
	q := Query{Patterns: []Pattern{{V("p"), T(ex("madeBy")), T(ex("acme"))}}}
	var ex Explain
	if _, err := ExecuteExplain(t.Context(), st, dict, q, nil, &ex); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"order", "naive_order", "plan_cost", "plan_us", "exec_us", "rows", "patterns"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("explain JSON lacks %q: %s", key, raw)
		}
	}
	pats := m["patterns"].([]any)
	p0 := pats[0].(map[string]any)
	for _, key := range []string{"pattern", "step", "est_rows", "actual_rows", "probes", "galloped"} {
		if _, ok := p0[key]; !ok {
			t.Fatalf("pattern JSON lacks %q: %s", key, raw)
		}
	}
}

// TestExplainStreamingRowsSemantics pins ExecuteFuncExplain's Rows:
// emitted rows after dedup/offset/limit, not raw enumerations.
func TestExplainStreamingRowsSemantics(t *testing.T) {
	st, dict := seedChain(t)
	q := Query{
		Patterns: []Pattern{{V("p"), T(ex("madeBy")), T(ex("acme"))}},
		Limit:    5, HasLimit: true, Offset: 2,
	}
	var ex Explain
	n := 0
	err := ExecuteFuncExplain(t.Context(), st, dict, q, nil, &ex, func(Binding) bool {
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || ex.Rows != 5 {
		t.Fatalf("emitted %d, ex.Rows %d, want 5", n, ex.Rows)
	}
	if ex.Patterns[0].ActualRows < 7 {
		t.Fatalf("pattern actual %d should count enumerated matches (≥ offset+limit)", ex.Patterns[0].ActualRows)
	}
}
