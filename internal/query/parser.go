package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/rdf"
)

// ParseSelect parses a small SPARQL-like SELECT query:
//
//	SELECT ?x ?label
//	WHERE {
//	  ?x a <http://example.org/Product> .
//	  ?x rdfs:label ?label .
//	}
//
// Supported syntax: `SELECT ?v … | SELECT *`, a WHERE block of triple
// patterns terminated by `.`, variables (?name), IRIs in angle brackets,
// the `a` keyword for rdf:type, plain/lang/typed literals, the built-in
// prefixes rdf:, rdfs:, owl: and xsd:, and trailing `LIMIT n` / `OFFSET
// n` solution modifiers (each at most once, in either order).
func ParseSelect(text string) (Query, error) {
	p := &qparser{src: text}
	return p.parse()
}

// builtinPrefixes are resolvable without PREFIX declarations.
var builtinPrefixes = map[string]string{
	"rdf":  rdf.RDFNS,
	"rdfs": rdf.RDFSNS,
	"owl":  rdf.OWLNS,
	"xsd":  rdf.XSDNS,
}

type qparser struct {
	src string
	pos int
}

func (p *qparser) parse() (Query, error) {
	var q Query
	if !p.keyword("SELECT") {
		return q, p.errf("expected SELECT")
	}
	p.skipWS()
	if p.peek() == '*' {
		p.pos++
	} else {
		for {
			p.skipWS()
			if p.peek() != '?' {
				break
			}
			v, err := p.variable()
			if err != nil {
				return q, err
			}
			q.Select = append(q.Select, v)
		}
		if len(q.Select) == 0 {
			return q, p.errf("SELECT needs variables or *")
		}
	}
	if !p.keyword("WHERE") {
		return q, p.errf("expected WHERE")
	}
	p.skipWS()
	if p.peek() != '{' {
		return q, p.errf("expected '{'")
	}
	p.pos++
	for {
		p.skipWS()
		if p.peek() == '}' {
			p.pos++
			break
		}
		if p.pos >= len(p.src) {
			return q, p.errf("unterminated WHERE block")
		}
		pat, err := p.pattern()
		if err != nil {
			return q, err
		}
		q.Patterns = append(q.Patterns, pat)
	}
	// Solution modifiers: LIMIT n / OFFSET n, each at most once, in
	// either order (as in SPARQL 1.1's LimitOffsetClauses).
	seenLimit, seenOffset := false, false
	for {
		switch {
		case p.keyword("LIMIT"):
			if seenLimit {
				return q, p.errf("duplicate LIMIT")
			}
			seenLimit = true
			n, err := p.integer("LIMIT")
			if err != nil {
				return q, err
			}
			q.Limit, q.HasLimit = n, true
			continue
		case p.keyword("OFFSET"):
			if seenOffset {
				return q, p.errf("duplicate OFFSET")
			}
			seenOffset = true
			n, err := p.integer("OFFSET")
			if err != nil {
				return q, err
			}
			q.Offset = n
			continue
		}
		break
	}
	p.skipWS()
	if p.pos < len(p.src) {
		return q, p.errf("trailing content after query")
	}
	if len(q.Patterns) == 0 {
		return q, p.errf("empty WHERE block")
	}
	return q, nil
}

// integer parses a non-negative decimal integer operand of clause.
func (p *qparser) integer(clause string) (int, error) {
	p.skipWS()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, p.errf("%s needs a non-negative integer", clause)
	}
	n, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil {
		return 0, p.errf("%s value out of range", clause)
	}
	return n, nil
}

func (p *qparser) pattern() (Pattern, error) {
	s, err := p.node(false)
	if err != nil {
		return Pattern{}, err
	}
	pr, err := p.node(false)
	if err != nil {
		return Pattern{}, err
	}
	o, err := p.node(true)
	if err != nil {
		return Pattern{}, err
	}
	p.skipWS()
	if p.peek() != '.' {
		return Pattern{}, p.errf("expected '.' after pattern")
	}
	p.pos++
	if !s.IsVar && s.Term.IsLiteral() {
		return Pattern{}, p.errf("literal subject in pattern")
	}
	if !pr.IsVar && !pr.Term.IsIRI() {
		return Pattern{}, p.errf("predicate must be an IRI or variable")
	}
	return Pattern{S: s, P: pr, O: o}, nil
}

func (p *qparser) node(allowLiteral bool) (Node, error) {
	p.skipWS()
	switch c := p.peek(); {
	case c == '?':
		v, err := p.variable()
		if err != nil {
			return Node{}, err
		}
		return V(v), nil
	case c == '<':
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			return Node{}, p.errf("unterminated IRI")
		}
		iri := p.src[p.pos+1 : p.pos+end]
		p.pos += end + 1
		if iri == "" {
			return Node{}, p.errf("empty IRI")
		}
		return T(rdf.NewIRI(iri)), nil
	case c == '"':
		if !allowLiteral {
			return Node{}, p.errf("literal not allowed here")
		}
		return p.literal()
	case c == 'a' && p.wordBoundaryAfter(1):
		p.pos++
		return T(rdf.NewIRI(rdf.IRIType)), nil
	case c == '_' && p.pos+1 < len(p.src) && p.src[p.pos+1] == ':':
		p.pos += 2
		start := p.pos
		for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return Node{}, p.errf("empty blank node label")
		}
		return T(rdf.NewBlank(p.src[start:p.pos])), nil
	default:
		// prefixed name: prefix:local
		start := p.pos
		for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
			p.pos++
		}
		if p.pos < len(p.src) && p.src[p.pos] == ':' {
			prefix := p.src[start:p.pos]
			ns, ok := builtinPrefixes[prefix]
			if !ok {
				return Node{}, p.errf("unknown prefix %q", prefix)
			}
			p.pos++
			lstart := p.pos
			for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
				p.pos++
			}
			return T(rdf.NewIRI(ns + p.src[lstart:p.pos])), nil
		}
		return Node{}, p.errf("unexpected character %q", c)
	}
}

func (p *qparser) literal() (Node, error) {
	p.pos++ // consume opening quote
	var b strings.Builder
	for {
		if p.pos >= len(p.src) {
			return Node{}, p.errf("unterminated literal")
		}
		c := p.src[p.pos]
		if c == '\\' && p.pos+1 < len(p.src) {
			switch p.src[p.pos+1] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return Node{}, p.errf("bad escape in literal")
			}
			p.pos += 2
			continue
		}
		if c == '"' {
			p.pos++
			break
		}
		b.WriteByte(c)
		p.pos++
	}
	lex := b.String()
	if p.peek() == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && (isNameChar(p.src[p.pos]) || p.src[p.pos] == '-') {
			p.pos++
		}
		if p.pos == start {
			return Node{}, p.errf("empty language tag")
		}
		return T(rdf.NewLangLiteral(lex, p.src[start:p.pos])), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		dt, err := p.node(false)
		if err != nil {
			return Node{}, err
		}
		if dt.IsVar || !dt.Term.IsIRI() {
			return Node{}, p.errf("datatype must be an IRI")
		}
		return T(rdf.NewTypedLiteral(lex, dt.Term.Value)), nil
	}
	return T(rdf.NewLiteral(lex)), nil
}

func (p *qparser) variable() (string, error) {
	p.pos++ // consume '?'
	start := p.pos
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("empty variable name")
	}
	return p.src[start:p.pos], nil
}

func (p *qparser) keyword(kw string) bool {
	p.skipWS()
	if len(p.src)-p.pos < len(kw) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	p.pos += len(kw)
	return true
}

func (p *qparser) wordBoundaryAfter(n int) bool {
	if p.pos+n >= len(p.src) {
		return true
	}
	return unicode.IsSpace(rune(p.src[p.pos+n]))
}

func (p *qparser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *qparser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '#' {
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return
		}
		p.pos++
	}
}

func (p *qparser) errf(format string, args ...any) error {
	return fmt.Errorf("query: at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}
