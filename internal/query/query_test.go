package query

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// fixture builds a small store: a product catalogue with types and labels.
func fixture(t *testing.T) (*store.Store, *rdf.Dictionary) {
	t.Helper()
	dict := rdf.NewDictionary()
	st := store.New()
	add := func(s, p, o rdf.Term) {
		st.Add(dict.EncodeStatement(rdf.NewStatement(s, p, o)))
	}
	ex := func(n string) rdf.Term { return rdf.NewIRI("http://e/" + n) }
	typeT := rdf.NewIRI(rdf.IRIType)
	label := rdf.NewIRI(rdf.IRILabel)
	add(ex("p1"), typeT, ex("Product"))
	add(ex("p2"), typeT, ex("Product"))
	add(ex("p3"), typeT, ex("Offer"))
	add(ex("p1"), label, rdf.NewLiteral("Widget"))
	add(ex("p2"), label, rdf.NewLiteral("Gadget"))
	add(ex("p1"), ex("madeBy"), ex("acme"))
	add(ex("p2"), ex("madeBy"), ex("acme"))
	add(ex("acme"), label, rdf.NewLiteral("ACME Corp"))
	return st, dict
}

func ex(n string) rdf.Term { return rdf.NewIRI("http://e/" + n) }

func TestExecuteSinglePattern(t *testing.T) {
	st, dict := fixture(t)
	q := Query{Patterns: []Pattern{{V("x"), T(rdf.NewIRI(rdf.IRIType)), T(ex("Product"))}}}
	got, err := Execute(st, dict, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d solutions: %v", len(got), got)
	}
	for _, b := range got {
		if b["x"].Value != "http://e/p1" && b["x"].Value != "http://e/p2" {
			t.Fatalf("unexpected binding %v", b)
		}
	}
}

func TestExecuteJoin(t *testing.T) {
	st, dict := fixture(t)
	// Products made by acme with their labels.
	q := Query{
		Select: []string{"name"},
		Patterns: []Pattern{
			{V("p"), T(rdf.NewIRI(rdf.IRIType)), T(ex("Product"))},
			{V("p"), T(ex("madeBy")), T(ex("acme"))},
			{V("p"), T(rdf.NewIRI(rdf.IRILabel)), V("name")},
		},
	}
	got, err := Execute(st, dict, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	names := map[string]bool{}
	for _, b := range got {
		names[b["name"].Value] = true
		if len(b) != 1 {
			t.Fatalf("projection leaked: %v", b)
		}
	}
	if !names["Widget"] || !names["Gadget"] {
		t.Fatalf("names = %v", names)
	}
}

func TestExecuteVariablePredicate(t *testing.T) {
	st, dict := fixture(t)
	q := Query{Patterns: []Pattern{{T(ex("p1")), V("p"), V("o")}}}
	got, err := Execute(st, dict, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 { // type, label, madeBy
		t.Fatalf("got %d solutions: %v", len(got), got)
	}
}

func TestExecuteSharedVariableWithinPattern(t *testing.T) {
	dict := rdf.NewDictionary()
	st := store.New()
	st.Add(dict.EncodeStatement(rdf.NewStatement(ex("a"), ex("p"), ex("a"))))
	st.Add(dict.EncodeStatement(rdf.NewStatement(ex("a"), ex("p"), ex("b"))))
	// ?x ?p ?x matches only the reflexive triple.
	got, err := Execute(st, dict, Query{Patterns: []Pattern{{V("x"), V("p"), V("x")}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["x"].Value != "http://e/a" {
		t.Fatalf("got %v", got)
	}
}

func TestExecuteUnknownTermGivesEmpty(t *testing.T) {
	st, dict := fixture(t)
	got, err := Execute(st, dict, Query{Patterns: []Pattern{
		{V("x"), T(rdf.NewIRI(rdf.IRIType)), T(ex("NoSuchClass"))}}})
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestExecuteDeduplicatesSolutions(t *testing.T) {
	st, dict := fixture(t)
	// ?p projected alone, but two patterns create two paths to the same
	// solution set.
	q := Query{
		Select: []string{"m"},
		Patterns: []Pattern{
			{V("p"), T(ex("madeBy")), V("m")},
		},
	}
	got, err := Execute(st, dict, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["m"].Value != "http://e/acme" {
		t.Fatalf("got %v", got)
	}
}

func TestExecuteErrors(t *testing.T) {
	st, dict := fixture(t)
	if _, err := Execute(st, dict, Query{}); err == nil {
		t.Fatal("empty BGP accepted")
	}
	q := Query{
		Select:   []string{"nope"},
		Patterns: []Pattern{{V("x"), V("p"), V("o")}},
	}
	if _, err := Execute(st, dict, q); err == nil {
		t.Fatal("unknown projected variable accepted")
	}
}

func TestExecuteDeterministicOrder(t *testing.T) {
	st, dict := fixture(t)
	q := Query{Patterns: []Pattern{{V("x"), T(rdf.NewIRI(rdf.IRIType)), V("c")}}}
	a, _ := Execute(st, dict, q)
	b, _ := Execute(st, dict, q)
	if len(a) != len(b) {
		t.Fatal("nondeterministic result size")
	}
	for i := range a {
		if a[i]["x"] != b[i]["x"] || a[i]["c"] != b[i]["c"] {
			t.Fatal("nondeterministic order")
		}
	}
}

func TestParseSelectBasic(t *testing.T) {
	q, err := ParseSelect(`SELECT ?x WHERE { ?x a <http://e/Product> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || q.Select[0] != "x" || len(q.Patterns) != 1 {
		t.Fatalf("parsed %+v", q)
	}
	if q.Patterns[0].P.Term.Value != rdf.IRIType {
		t.Fatalf("'a' keyword not expanded: %v", q.Patterns[0].P)
	}
}

func TestParseSelectStarAndPrefixes(t *testing.T) {
	q, err := ParseSelect(`
		SELECT * WHERE {
			?x rdfs:label ?name .    # comment
			?x rdf:type owl:Thing .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 0 || len(q.Patterns) != 2 {
		t.Fatalf("parsed %+v", q)
	}
	if q.Patterns[0].P.Term.Value != rdf.IRILabel {
		t.Fatalf("rdfs: prefix wrong: %v", q.Patterns[0].P)
	}
	if q.Patterns[1].O.Term.Value != rdf.OWLNS+"Thing" {
		t.Fatalf("owl: prefix wrong: %v", q.Patterns[1].O)
	}
}

func TestParseSelectLiterals(t *testing.T) {
	q, err := ParseSelect(`SELECT ?x WHERE { ?x rdfs:label "Widget" . ?x ?p "hé\"llo"@fr . ?x ?q "5"^^xsd:integer . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].O.Term != rdf.NewLiteral("Widget") {
		t.Fatalf("plain literal: %v", q.Patterns[0].O)
	}
	if q.Patterns[1].O.Term != rdf.NewLangLiteral(`hé"llo`, "fr") {
		t.Fatalf("lang literal: %v", q.Patterns[1].O)
	}
	if q.Patterns[2].O.Term != rdf.NewTypedLiteral("5", rdf.IRIXSDInteger) {
		t.Fatalf("typed literal: %v", q.Patterns[2].O)
	}
}

func TestParseSelectErrors(t *testing.T) {
	for _, bad := range []string{
		``,
		`WHERE { ?x ?p ?o . }`,
		`SELECT WHERE { ?x ?p ?o . }`,
		`SELECT ?x { ?x ?p ?o . }`,
		`SELECT ?x WHERE { ?x ?p ?o }`,        // missing dot
		`SELECT ?x WHERE { }`,                 // empty BGP
		`SELECT ?x WHERE { "lit" ?p ?o . }`,   // literal subject
		`SELECT ?x WHERE { ?x "p" ?o . }`,     // literal predicate
		`SELECT ?x WHERE { ?x foo:bar ?o . }`, // unknown prefix
		`SELECT ?x WHERE { ?x ?p ?o . } extra`,
		`SELECT ?x WHERE { ?x <unclosed ?o . }`,
	} {
		if _, err := ParseSelect(bad); err == nil {
			t.Errorf("ParseSelect(%q) accepted", bad)
		}
	}
}

func TestParseAndExecuteEndToEnd(t *testing.T) {
	st, dict := fixture(t)
	q, err := ParseSelect(`
		SELECT ?name WHERE {
			?p a <http://e/Product> .
			?p <http://e/madeBy> ?m .
			?m rdfs:label ?name .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Execute(st, dict, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["name"].Value != "ACME Corp" {
		t.Fatalf("got %v", got)
	}
}

func TestPatternStringRendering(t *testing.T) {
	p := Pattern{V("x"), T(rdf.NewIRI(rdf.IRIType)), T(rdf.NewLiteral("v"))}
	s := p.String()
	if !strings.Contains(s, "?x") || !strings.Contains(s, `"v"`) || !strings.HasSuffix(s, ".") {
		t.Fatalf("Pattern.String = %q", s)
	}
	if len(p.Vars()) != 1 {
		t.Fatalf("Vars = %v", p.Vars())
	}
}

func TestQueryVarsOrder(t *testing.T) {
	q := Query{Patterns: []Pattern{
		{V("b"), V("a"), V("b")},
		{V("c"), T(rdf.NewIRI("http://e/p")), V("a")},
	}}
	vars := q.Vars()
	want := []string{"b", "a", "c"}
	if len(vars) != 3 {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
}
