package query

import "repro/internal/obs"

// Metrics is the query engine's optional instrumentation, threaded
// through the *M entry points (ExecuteM, ExecuteFuncM). The plain
// Execute/ExecuteFunc stay uninstrumented so library callers pay
// nothing.
type Metrics struct {
	// PlanSeconds times the cost-based join-order planning pass.
	PlanSeconds *obs.Histogram
	// PlanCost records the planner's summed cardinality estimate for
	// the chosen order — the "how expensive did the planner think this
	// was" distribution, comparable against ExecSeconds to spot
	// mis-estimates.
	PlanCost *obs.Histogram
	// ExecSeconds times full query evaluation (planning included).
	ExecSeconds *obs.Histogram
	// Queries counts evaluations; Rows counts distinct solutions
	// produced across them.
	Queries *obs.Counter
	Rows    *obs.Counter
}

// NewMetrics registers the engine's instruments in reg under the
// slider_query_* names.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		PlanSeconds: reg.Histogram("slider_query_plan_seconds",
			"Join-order planning latency.", nil),
		PlanCost: reg.Histogram("slider_query_plan_cost",
			"Planner's summed cardinality estimate for the chosen join order.", obs.CostBuckets),
		ExecSeconds: reg.Histogram("slider_query_exec_seconds",
			"End-to-end query evaluation latency (planning included).", nil),
		Queries: reg.Counter("slider_query_total",
			"Query evaluations."),
		Rows: reg.Counter("slider_query_rows_total",
			"Distinct solutions produced by query evaluations."),
	}
}
