// Package query implements basic graph pattern (BGP) matching over the
// triple store: conjunctive queries with variables, evaluated by
// backtracking joins with a cost-based join order.
//
// Slider is a materialisation reasoner — after inference, answering a
// conjunctive query is pure pattern matching against the store, which is
// exactly the query-time cheapness the paper chooses forward chaining
// for. The planner orders patterns cheapest-first by estimated
// cardinality (predicate extent divided by the distinct-subject/object
// counts of positions already bound), propagating bound variables as it
// goes; the executor additionally detects pattern pairs whose only
// unbound variable coincides and answers them with a galloping
// intersection of the store's sorted extents instead of
// enumerate-then-filter. The package also ships a small SPARQL-like
// SELECT parser (ParseSelect) so applications and the CLI can express
// queries as text.
package query

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/trace"
)

// Node is one position of a triple pattern: either a variable or a ground
// term.
type Node struct {
	// Var is the variable name (without '?') when IsVar.
	Var   string
	IsVar bool
	// Term is the ground term when !IsVar.
	Term rdf.Term
}

// V returns a variable node.
func V(name string) Node { return Node{Var: name, IsVar: true} }

// T returns a ground-term node.
func T(t rdf.Term) Node { return Node{Term: t} }

// String renders the node in query syntax.
func (n Node) String() string {
	if n.IsVar {
		return "?" + n.Var
	}
	return n.Term.String()
}

// Pattern is one triple pattern.
type Pattern struct {
	S, P, O Node
}

// String renders the pattern in query syntax.
func (p Pattern) String() string {
	return p.S.String() + " " + p.P.String() + " " + p.O.String() + " ."
}

// Vars returns the distinct variable names in the pattern.
func (p Pattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, n := range []Node{p.S, p.P, p.O} {
		if n.IsVar && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	return out
}

// Query is a basic graph pattern with a projection. An empty Select
// projects all variables.
type Query struct {
	Select   []string
	Patterns []Pattern
	// Limit caps the number of solutions when HasLimit is set (the
	// SPARQL LIMIT clause; zero is legal and yields no solutions).
	Limit    int
	HasLimit bool
	// Offset skips that many solutions before any are returned.
	Offset int
	// NaiveOrder evaluates patterns exactly as written and disables the
	// galloping join intersection — the pre-optimisation baseline the
	// join benchmark measures the planner and executor against.
	NaiveOrder bool
}

// Source is the triple access a query evaluation needs. Both the live
// *store.Store and a frozen *store.View implement it, so the same
// executor serves ad-hoc queries and snapshot-isolated read sessions.
// Sources may additionally implement statsProber (finer planner
// estimates) and sortedProber (galloping join intersection); both store
// types do.
type Source interface {
	// PredicateLen reports how many triples carry the predicate; the
	// planner uses it to order patterns by selectivity.
	PredicateLen(p rdf.ID) int
	// MatchEach streams every triple matching the pattern (rdf.Any
	// wildcards) to f until f returns false.
	MatchEach(pattern rdf.Triple, f func(rdf.Triple) bool)
}

// statsProber is the optional Source extension the planner's cost model
// prefers: per-predicate pair and distinct subject/object counts, as
// maintained by the store's partitions. Sources without it fall back to
// a square-root-of-extent distinctness guess.
type statsProber interface {
	PredicateStats(p rdf.ID) (triples, subjects, objects int)
}

// sortedProber is the optional Source extension behind the galloping
// join: (predicate, subject) and (predicate, object) extents as
// ascending, duplicate-free ID slices appended to dst. The store's
// sorted runs provide exactly this.
type sortedProber interface {
	ObjectsAppend(dst []rdf.ID, p, s rdf.ID) []rdf.ID
	SubjectsAppend(dst []rdf.ID, p, o rdf.ID) []rdf.ID
}

// Vars returns the distinct variable names across all patterns, in first
// appearance order.
func (q Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range q.Patterns {
		for _, v := range p.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Binding maps variable names to terms.
type Binding map[string]rdf.Term

// Execute evaluates the query against the source, resolving ground
// terms through dict. Results are one Binding per solution, restricted
// to the projection, in deterministic (sorted) order with duplicates
// removed. LIMIT/OFFSET are applied after sorting, so the answer is the
// deterministic k-th page; use ExecuteFunc when early termination
// matters more than ordering.
func Execute(src Source, dict *rdf.Dictionary, q Query) ([]Binding, error) {
	return ExecuteM(src, dict, q, nil)
}

// ExecuteM is Execute with optional instrumentation: a non-nil m
// records planning/evaluation latency, the planner's cost estimate and
// result counts.
func ExecuteM(src Source, dict *rdf.Dictionary, q Query, m *Metrics) ([]Binding, error) {
	return ExecuteExplain(context.Background(), src, dict, q, m, nil)
}

// ExecuteExplain is ExecuteM carrying trace context (when ctx holds a
// span, planning and evaluation record child spans into it) and, when
// ex is non-nil, filling it with the execution profile: chosen join
// order vs the written one, per-pattern estimated vs actual rows,
// whether the galloping path ran, per-stage micros.
func ExecuteExplain(ctx context.Context, src Source, dict *rdf.Dictionary, q Query, m *Metrics, ex *Explain) ([]Binding, error) {
	var t0 time.Time
	if m != nil {
		t0 = obs.NowIfEnabled()
		m.Queries.Inc()
	}
	results := map[string]Binding{}
	err := enumerate(ctx, src, dict, q, m, ex, func(key string, b Binding) bool {
		results[key] = b
		return true
	})
	if m != nil {
		m.ExecSeconds.ObserveSince(t0)
		m.Rows.Add(int64(len(results)))
	}
	if ex != nil {
		ex.Rows = int64(len(results))
	}
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if q.Offset > 0 {
		if q.Offset >= len(keys) {
			keys = nil
		} else {
			keys = keys[q.Offset:]
		}
	}
	if q.HasLimit {
		limit := q.Limit
		if limit < 0 {
			limit = 0
		}
		if limit < len(keys) {
			keys = keys[:limit]
		}
	}
	if len(keys) == 0 {
		return nil, nil
	}
	out := make([]Binding, 0, len(keys))
	for _, k := range keys {
		out = append(out, results[k])
	}
	return out, nil
}

// ExecuteFunc evaluates the query and streams each distinct solution to
// emit as it is found, in discovery (unspecified) order. Evaluation
// stops as soon as emit returns false, OFFSET solutions have been
// skipped and LIMIT solutions emitted, so bounded queries never
// enumerate — let alone materialise — the full result set. Only the
// deduplication set (one key per distinct solution seen, capped by
// OFFSET+LIMIT when set) is held in memory. This is the executor behind
// the serving layer's streamed bindings.
func ExecuteFunc(src Source, dict *rdf.Dictionary, q Query, emit func(Binding) bool) error {
	return ExecuteFuncM(src, dict, q, nil, emit)
}

// ExecuteFuncM is ExecuteFunc with optional instrumentation: a non-nil
// m records planning/evaluation latency, the planner's cost estimate
// and the streamed row count.
func ExecuteFuncM(src Source, dict *rdf.Dictionary, q Query, m *Metrics, emit func(Binding) bool) error {
	return ExecuteFuncExplain(context.Background(), src, dict, q, m, nil, emit)
}

// ExecuteFuncExplain is ExecuteFuncM carrying trace context and, when
// ex is non-nil, filling it with the execution profile (see
// ExecuteExplain). ex.Rows counts the solutions actually emitted —
// after deduplication, OFFSET and LIMIT — matching what the caller
// streamed.
func ExecuteFuncExplain(ctx context.Context, src Source, dict *rdf.Dictionary, q Query, m *Metrics, ex *Explain, emit func(Binding) bool) error {
	var t0 time.Time
	if m != nil {
		t0 = obs.NowIfEnabled()
		m.Queries.Inc()
		defer func() { m.ExecSeconds.ObserveSince(t0) }()
	}
	if q.HasLimit && q.Limit <= 0 {
		// Nothing can be emitted; skip evaluation entirely.
		return validate(q)
	}
	seen := map[string]struct{}{}
	skipped, emitted := 0, 0
	err := enumerate(ctx, src, dict, q, m, ex, func(key string, b Binding) bool {
		if _, dup := seen[key]; dup {
			return true
		}
		seen[key] = struct{}{}
		if skipped < q.Offset {
			skipped++
			return true
		}
		if m != nil {
			m.Rows.Inc()
		}
		if !emit(b) {
			return false
		}
		emitted++
		return !q.HasLimit || emitted < q.Limit
	})
	if ex != nil {
		ex.Rows = int64(emitted)
	}
	return err
}

// validate checks the query's static shape: a non-empty BGP and a
// projection restricted to variables the patterns use.
func validate(q Query) error {
	if len(q.Patterns) == 0 {
		return fmt.Errorf("query: empty basic graph pattern")
	}
	allVars := q.Vars()
	for _, v := range q.Select {
		found := false
		for _, av := range allVars {
			if v == av {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("query: projected variable ?%s not used in any pattern", v)
		}
	}
	return nil
}

// enumerate runs the backtracking join and hands every complete
// (possibly duplicate) solution to yield as (dedup key, binding), until
// yield returns false. A span in ctx gets query.plan / query.exec
// children; a non-nil ex is filled with the execution profile (the
// caller sets ex.Rows — emitted-row semantics differ per entry point).
func enumerate(ctx context.Context, src Source, dict *rdf.Dictionary, q Query, m *Metrics, ex *Explain, yield func(key string, b Binding) bool) error {
	if err := validate(q); err != nil {
		return err
	}
	tsp := trace.FromContext(ctx)
	if ex != nil {
		ex.NaiveOrder = q.NaiveOrder
		ex.Patterns = make([]PatternExplain, len(q.Patterns))
		for i, pat := range q.Patterns {
			ex.Patterns[i] = PatternExplain{Pattern: pat.String(), Step: -1}
		}
	}
	proj := q.Select
	if len(proj) == 0 {
		proj = q.Vars()
	}

	// Encode ground terms once. An unknown ground term means an empty
	// result, not an error.
	enc := make([]idPattern, len(q.Patterns))
	for i, pat := range q.Patterns {
		var ip idPattern
		var ok bool
		if ip.s, ip.sv, ok = encodeNode(dict, pat.S); !ok {
			return nil
		}
		if ip.p, ip.pv, ok = encodeNode(dict, pat.P); !ok {
			return nil
		}
		if ip.o, ip.ov, ok = encodeNode(dict, pat.O); !ok {
			return nil
		}
		enc[i] = ip
	}

	// Backtracking join over ID bindings.
	binding := map[string]rdf.ID{}
	var order []int
	var planT0 time.Time
	if ex != nil {
		planT0 = time.Now()
	}
	if q.NaiveOrder {
		order = make([]int, len(enc))
		for i := range order {
			order[i] = i
		}
		if ex != nil {
			var ests []float64
			ests, ex.PlanCost = estimateFixed(src, enc, order)
			for k, idx := range order {
				ex.Patterns[idx].Step = k
				ex.Patterns[idx].EstRows = ests[k]
			}
		}
	} else {
		var p0 time.Time
		if m != nil {
			p0 = obs.NowIfEnabled()
		}
		psp := tsp.Child("query.plan")
		var planCost float64
		var ests []float64
		order, planCost, ests = planOrder(src, enc)
		psp.End()
		if m != nil {
			m.PlanSeconds.ObserveSince(p0)
			m.PlanCost.Observe(planCost)
		}
		if ex != nil {
			ex.PlanCost = planCost
			for k, idx := range order {
				ex.Patterns[idx].Step = k
				ex.Patterns[idx].EstRows = ests[k]
			}
		}
	}
	if ex != nil {
		ex.Order = append([]int(nil), order...)
		ex.PlanMicros = time.Since(planT0).Microseconds()
	}
	var sp sortedProber
	if !q.NaiveOrder {
		sp, _ = src.(sortedProber)
	}
	// done marks patterns already satisfied ahead of their turn by a
	// galloping intersection (indexed by pattern, not step).
	done := make([]bool, len(enc))
	// Per-pattern execution profile (indexed like enc), collected only
	// when an explain was requested — the plain path never touches it.
	var actual, probes []int64
	var galloped []bool
	if ex != nil {
		actual = make([]int64, len(enc))
		probes = make([]int64, len(enc))
		galloped = make([]bool, len(enc))
	}
	// bufA/bufB are scratch for the two probed extents; they are fully
	// consumed before the recursion below re-enters, so sharing them
	// across levels is safe. The intersection itself is iterated during
	// recursion and must be fresh per level.
	var bufA, bufB []rdf.ID

	var walk func(step int) bool
	walk = func(step int) bool {
		if step == len(order) {
			b := Binding{}
			var key strings.Builder
			for _, v := range proj {
				term, _ := dict.Term(binding[v])
				b[v] = term
				key.WriteString(term.String())
				key.WriteByte('|')
			}
			return yield(key.String(), b)
		}
		idx := order[step]
		if done[idx] {
			return walk(step + 1)
		}
		ip := enc[idx]
		if sp != nil {
			if jp, ok := probeFor(ip, binding); ok {
				// This pattern's solutions are one sorted extent. If a
				// later pattern's only unbound variable is the same one,
				// solve both at once: gallop-intersect the two extents
				// and bind the variable from the (typically far smaller)
				// intersection, skipping the partner when its turn comes.
				for s2 := step + 1; s2 < len(order); s2++ {
					j := order[s2]
					if done[j] {
						continue
					}
					jp2, ok2 := probeFor(enc[j], binding)
					if !ok2 || jp2.v != jp.v {
						continue
					}
					bufA = jp.extent(sp, bufA[:0])
					bufB = jp2.extent(sp, bufB[:0])
					inter := rdf.IntersectSortedAppend(nil, bufA, bufB)
					if ex != nil {
						// The intersection answers both patterns at once;
						// each is credited the joint row count.
						probes[idx]++
						probes[j]++
						actual[idx] += int64(len(inter))
						actual[j] += int64(len(inter))
						galloped[idx] = true
						galloped[j] = true
					}
					done[j] = true
					cont := true
					for _, id := range inter {
						binding[jp.v] = id
						cont = walk(step + 1)
						delete(binding, jp.v)
						if !cont {
							break
						}
					}
					done[j] = false
					return cont
				}
			}
		}
		resolve := func(id rdf.ID, v string) rdf.ID {
			if v == "" {
				return id
			}
			if bound, ok := binding[v]; ok {
				return bound
			}
			return rdf.Any
		}
		s := resolve(ip.s, ip.sv)
		p := resolve(ip.p, ip.pv)
		o := resolve(ip.o, ip.ov)
		cont := true
		if ex != nil {
			probes[idx]++
		}
		src.MatchEach(rdf.T(s, p, o), func(m rdf.Triple) bool {
			if ex != nil {
				actual[idx]++
			}
			var assigned []string
			bind := func(v string, id rdf.ID) bool {
				if v == "" {
					return true
				}
				if bound, ok := binding[v]; ok {
					return bound == id
				}
				binding[v] = id
				assigned = append(assigned, v)
				return true
			}
			// Same variable twice in one pattern must agree.
			if bind(ip.sv, m.S) && bind(ip.pv, m.P) && bind(ip.ov, m.O) {
				cont = walk(step + 1)
			}
			for _, v := range assigned {
				delete(binding, v)
			}
			return cont
		})
		return cont
	}
	esp := tsp.Child("query.exec")
	var execT0 time.Time
	if ex != nil {
		execT0 = time.Now()
	}
	walk(0)
	esp.End()
	if ex != nil {
		ex.ExecMicros = time.Since(execT0).Microseconds()
		for i := range ex.Patterns {
			ex.Patterns[i].ActualRows = actual[i]
			ex.Patterns[i].Probes = probes[i]
			ex.Patterns[i].Galloped = galloped[i]
		}
	}
	return nil
}

// joinProbe describes a pattern that, under the current binding, has
// exactly one unbound variable in the subject or object position with
// everything else concrete — the shape whose solution set is a single
// sorted extent the store can hand over directly.
type joinProbe struct {
	v      string // the single unbound variable
	p      rdf.ID // concrete predicate
	other  rdf.ID // concrete value of the opposite position
	varIsS bool   // variable in subject position → probe SubjectsAppend
}

// probeFor classifies ip under binding, reporting whether it has the
// single-extent shape.
func probeFor(ip idPattern, binding map[string]rdf.ID) (joinProbe, bool) {
	var jp joinProbe
	conc := func(id rdf.ID, v string) (rdf.ID, bool) {
		if v == "" {
			return id, true
		}
		b, ok := binding[v]
		return b, ok
	}
	p, ok := conc(ip.p, ip.pv)
	if !ok {
		return jp, false
	}
	_, sBound := binding[ip.sv]
	_, oBound := binding[ip.ov]
	sVar := ip.sv != "" && !sBound
	oVar := ip.ov != "" && !oBound
	if sVar == oVar {
		// Zero or two unbound positions — including ?x p ?x, whose
		// diagonal constraint a plain extent cannot express.
		return jp, false
	}
	jp.p = p
	if sVar {
		jp.v = ip.sv
		jp.varIsS = true
		jp.other, _ = conc(ip.o, ip.ov)
	} else {
		jp.v = ip.ov
		jp.other, _ = conc(ip.s, ip.sv)
	}
	return jp, true
}

// extent appends the probe's sorted solution extent to dst.
func (jp joinProbe) extent(sp sortedProber, dst []rdf.ID) []rdf.ID {
	if jp.varIsS {
		return sp.SubjectsAppend(dst, jp.p, jp.other)
	}
	return sp.ObjectsAppend(dst, jp.p, jp.other)
}

// encodeNode resolves a ground node through the dictionary. ok=false
// means the term is unknown (query has no solutions).
func encodeNode(dict *rdf.Dictionary, n Node) (rdf.ID, string, bool) {
	if n.IsVar {
		return rdf.Any, n.Var, true
	}
	id, ok := dict.Lookup(n.Term)
	if !ok {
		return rdf.Any, "", false
	}
	return id, "", true
}

// idPattern is a triple pattern with ground terms resolved to IDs (Any
// for variables) and variable names kept alongside ("" when ground).
type idPattern struct {
	s, p, o    rdf.ID
	sv, pv, ov string
}

// costEstimator is the planner's per-placement cardinality model,
// factored out so the same estimates back both the greedy planner
// (planOrder) and the explain profile of an as-written order
// (estimateFixed). The estimate for a pattern is its predicate's
// extent divided by the partition's distinct-subject count when the
// subject is ground or already bound, and by the distinct-object count
// likewise — i.e. the expected number of matching triples per probe,
// from the per-partition stats the store maintains (statsProber), with
// a √extent distinctness guess for sources that lack them.
type costEstimator struct {
	src   Source
	st    statsProber
	bound map[string]bool
}

func newCostEstimator(src Source) *costEstimator {
	ce := &costEstimator{src: src, bound: map[string]bool{}}
	ce.st, _ = src.(statsProber)
	return ce
}

// cost estimates a pattern's cardinality under the currently bound
// variables.
func (ce *costEstimator) cost(ip idPattern) float64 {
	if ip.pv != "" && !ce.bound[ip.pv] {
		// Unknown predicate: a scan of every partition.
		return 1e18
	}
	if ip.pv != "" {
		// Predicate bound to a runtime value: extent unknowable at
		// plan time; assume expensive but better than a full scan.
		return 1e12
	}
	n := float64(ce.src.PredicateLen(ip.p))
	if n == 0 {
		return 0 // empty extent cuts the whole join immediately
	}
	sKnown := ip.sv == "" || ce.bound[ip.sv]
	oKnown := ip.ov == "" || ce.bound[ip.ov]
	if sKnown && oKnown {
		return 0.5 // existence probe
	}
	var ns, no int
	if ce.st != nil {
		_, ns, no = ce.st.PredicateStats(ip.p)
	}
	if ns <= 0 {
		ns = int(math.Sqrt(n)) + 1
	}
	if no <= 0 {
		no = int(math.Sqrt(n)) + 1
	}
	c := n
	if sKnown {
		c /= float64(ns)
	}
	if oKnown {
		c /= float64(no)
	}
	if c < 1 {
		c = 1
	}
	return c
}

// connected reports whether the pattern shares a variable with the
// already bound set.
func (ce *costEstimator) connected(ip idPattern) bool {
	for _, v := range []string{ip.sv, ip.pv, ip.ov} {
		if v != "" && ce.bound[v] {
			return true
		}
	}
	return false
}

// bind marks the pattern's variables bound for subsequent estimates.
func (ce *costEstimator) bind(ip idPattern) {
	for _, v := range []string{ip.sv, ip.pv, ip.ov} {
		if v != "" {
			ce.bound[v] = true
		}
	}
}

// planOrder orders patterns greedily by estimated cardinality,
// cheapest first, propagating bound variables: after a pattern is
// placed, its variables count as bound when estimating the remaining
// patterns, so a selective early pattern makes its join partners cheap.
// Patterns connected to the already bound variables are preferred over
// disconnected ones regardless of cost: a Cartesian product is always
// worse than its estimate looks. Ties break on input position, so
// plans are deterministic. The second return is the plan's total
// estimated cost — the sum of the chosen patterns' per-placement
// cardinality estimates — surfaced as a metric so plan-time
// expectations can be compared against observed latency; the third is
// those per-placement estimates, indexed like order, which the explain
// profile reports against actual rows.
func planOrder(src Source, pats []idPattern) ([]int, float64, []float64) {
	ce := newCostEstimator(src)
	remaining := make([]bool, len(pats))
	for i := range remaining {
		remaining[i] = true
	}
	order := make([]int, 0, len(pats))
	ests := make([]float64, 0, len(pats))
	total := 0.0
	for len(order) < len(pats) {
		best, bestCost, bestConn := -1, 0.0, false
		for i := range pats {
			if !remaining[i] {
				continue
			}
			c := ce.cost(pats[i])
			conn := ce.connected(pats[i]) || len(order) == 0
			better := best == -1 ||
				(conn && !bestConn) ||
				(conn == bestConn && c < bestCost)
			if better {
				best, bestCost, bestConn = i, c, conn
			}
		}
		order = append(order, best)
		ests = append(ests, bestCost)
		remaining[best] = false
		total += bestCost
		ce.bind(pats[best])
	}
	return order, total, ests
}

// estimateFixed runs the cost model over a caller-fixed order (the
// NaiveOrder path) so its explain profile carries the same estimated-
// vs-actual comparison a planned query gets. Returns per-placement
// estimates indexed like order, plus their total.
func estimateFixed(src Source, pats []idPattern, order []int) ([]float64, float64) {
	ce := newCostEstimator(src)
	ests := make([]float64, len(order))
	total := 0.0
	for k, idx := range order {
		ests[k] = ce.cost(pats[idx])
		total += ests[k]
		ce.bind(pats[idx])
	}
	return ests, total
}
