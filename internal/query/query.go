// Package query implements basic graph pattern (BGP) matching over the
// triple store: conjunctive queries with variables, evaluated by
// backtracking joins with a greedy selectivity-based pattern order.
//
// Slider is a materialisation reasoner — after inference, answering a
// conjunctive query is pure pattern matching against the store, which is
// exactly the query-time cheapness the paper chooses forward chaining
// for. The package also ships a small SPARQL-like SELECT parser
// (ParseSelect) so applications and the CLI can express queries as text.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Node is one position of a triple pattern: either a variable or a ground
// term.
type Node struct {
	// Var is the variable name (without '?') when IsVar.
	Var   string
	IsVar bool
	// Term is the ground term when !IsVar.
	Term rdf.Term
}

// V returns a variable node.
func V(name string) Node { return Node{Var: name, IsVar: true} }

// T returns a ground-term node.
func T(t rdf.Term) Node { return Node{Term: t} }

// String renders the node in query syntax.
func (n Node) String() string {
	if n.IsVar {
		return "?" + n.Var
	}
	return n.Term.String()
}

// Pattern is one triple pattern.
type Pattern struct {
	S, P, O Node
}

// String renders the pattern in query syntax.
func (p Pattern) String() string {
	return p.S.String() + " " + p.P.String() + " " + p.O.String() + " ."
}

// Vars returns the distinct variable names in the pattern.
func (p Pattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, n := range []Node{p.S, p.P, p.O} {
		if n.IsVar && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	return out
}

// Query is a basic graph pattern with a projection. An empty Select
// projects all variables.
type Query struct {
	Select   []string
	Patterns []Pattern
}

// Vars returns the distinct variable names across all patterns, in first
// appearance order.
func (q Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range q.Patterns {
		for _, v := range p.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Binding maps variable names to terms.
type Binding map[string]rdf.Term

// Execute evaluates the query against the store, resolving ground terms
// through dict. Results are one Binding per solution, restricted to the
// projection, in deterministic (sorted) order with duplicates removed.
func Execute(st *store.Store, dict *rdf.Dictionary, q Query) ([]Binding, error) {
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("query: empty basic graph pattern")
	}
	allVars := q.Vars()
	proj := q.Select
	if len(proj) == 0 {
		proj = allVars
	}
	for _, v := range proj {
		found := false
		for _, av := range allVars {
			if v == av {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("query: projected variable ?%s not used in any pattern", v)
		}
	}

	// Encode ground terms once. An unknown ground term means an empty
	// result, not an error.
	enc := make([]idPattern, len(q.Patterns))
	for i, pat := range q.Patterns {
		var ip idPattern
		var ok bool
		if ip.s, ip.sv, ok = encodeNode(dict, pat.S); !ok {
			return nil, nil
		}
		if ip.p, ip.pv, ok = encodeNode(dict, pat.P); !ok {
			return nil, nil
		}
		if ip.o, ip.ov, ok = encodeNode(dict, pat.O); !ok {
			return nil, nil
		}
		enc[i] = ip
	}

	// Backtracking join over ID bindings.
	results := map[string]Binding{}
	binding := map[string]rdf.ID{}
	order := planOrder(st, enc)

	var walk func(step int)
	walk = func(step int) {
		if step == len(order) {
			b := Binding{}
			var key strings.Builder
			for _, v := range proj {
				term, _ := dict.Term(binding[v])
				b[v] = term
				key.WriteString(term.String())
				key.WriteByte('|')
			}
			results[key.String()] = b
			return
		}
		ip := enc[order[step]]
		resolve := func(id rdf.ID, v string) rdf.ID {
			if v == "" {
				return id
			}
			if bound, ok := binding[v]; ok {
				return bound
			}
			return rdf.Any
		}
		s := resolve(ip.s, ip.sv)
		p := resolve(ip.p, ip.pv)
		o := resolve(ip.o, ip.ov)
		for _, m := range st.Match(rdf.T(s, p, o)) {
			var assigned []string
			bind := func(v string, id rdf.ID) bool {
				if v == "" {
					return true
				}
				if bound, ok := binding[v]; ok {
					return bound == id
				}
				binding[v] = id
				assigned = append(assigned, v)
				return true
			}
			// Same variable twice in one pattern must agree.
			ok := bind(ip.sv, m.S) && bind(ip.pv, m.P) && bind(ip.ov, m.O)
			if ok {
				walk(step + 1)
			}
			for _, v := range assigned {
				delete(binding, v)
			}
		}
	}
	walk(0)

	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Binding, 0, len(results))
	for _, k := range keys {
		out = append(out, results[k])
	}
	return out, nil
}

// encodeNode resolves a ground node through the dictionary. ok=false
// means the term is unknown (query has no solutions).
func encodeNode(dict *rdf.Dictionary, n Node) (rdf.ID, string, bool) {
	if n.IsVar {
		return rdf.Any, n.Var, true
	}
	id, ok := dict.Lookup(n.Term)
	if !ok {
		return rdf.Any, "", false
	}
	return id, "", true
}

// idPattern is a triple pattern with ground terms resolved to IDs (Any
// for variables) and variable names kept alongside ("" when ground).
type idPattern struct {
	s, p, o    rdf.ID
	sv, pv, ov string
}

// planOrder orders patterns greedily: most ground positions first,
// breaking ties by smaller predicate extent; patterns sharing variables
// with already-placed ones are preferred, keeping joins connected.
func planOrder(st *store.Store, pats []idPattern) []int {
	remaining := map[int]bool{}
	for i := range pats {
		remaining[i] = true
	}
	bound := map[string]bool{}
	var order []int
	score := func(i int) (int, int) {
		ip := pats[i]
		ground := 0
		for _, v := range []string{ip.sv, ip.pv, ip.ov} {
			if v == "" || bound[v] {
				ground++
			}
		}
		extent := 1 << 30
		if ip.pv == "" && ip.p != rdf.Any {
			extent = st.PredicateLen(ip.p)
		}
		return ground, extent
	}
	for len(remaining) > 0 {
		best, bestGround, bestExtent := -1, -1, 1<<31-1
		idxs := make([]int, 0, len(remaining))
		for i := range remaining {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs) // determinism
		for _, i := range idxs {
			g, e := score(i)
			if g > bestGround || (g == bestGround && e < bestExtent) {
				best, bestGround, bestExtent = i, g, e
			}
		}
		order = append(order, best)
		delete(remaining, best)
		for _, v := range []string{pats[best].sv, pats[best].pv, pats[best].ov} {
			if v != "" {
				bound[v] = true
			}
		}
	}
	return order
}
