// Package query implements basic graph pattern (BGP) matching over the
// triple store: conjunctive queries with variables, evaluated by
// backtracking joins with a greedy selectivity-based pattern order.
//
// Slider is a materialisation reasoner — after inference, answering a
// conjunctive query is pure pattern matching against the store, which is
// exactly the query-time cheapness the paper chooses forward chaining
// for. The package also ships a small SPARQL-like SELECT parser
// (ParseSelect) so applications and the CLI can express queries as text.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Node is one position of a triple pattern: either a variable or a ground
// term.
type Node struct {
	// Var is the variable name (without '?') when IsVar.
	Var   string
	IsVar bool
	// Term is the ground term when !IsVar.
	Term rdf.Term
}

// V returns a variable node.
func V(name string) Node { return Node{Var: name, IsVar: true} }

// T returns a ground-term node.
func T(t rdf.Term) Node { return Node{Term: t} }

// String renders the node in query syntax.
func (n Node) String() string {
	if n.IsVar {
		return "?" + n.Var
	}
	return n.Term.String()
}

// Pattern is one triple pattern.
type Pattern struct {
	S, P, O Node
}

// String renders the pattern in query syntax.
func (p Pattern) String() string {
	return p.S.String() + " " + p.P.String() + " " + p.O.String() + " ."
}

// Vars returns the distinct variable names in the pattern.
func (p Pattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, n := range []Node{p.S, p.P, p.O} {
		if n.IsVar && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	return out
}

// Query is a basic graph pattern with a projection. An empty Select
// projects all variables.
type Query struct {
	Select   []string
	Patterns []Pattern
	// Limit caps the number of solutions when HasLimit is set (the
	// SPARQL LIMIT clause; zero is legal and yields no solutions).
	Limit    int
	HasLimit bool
	// Offset skips that many solutions before any are returned.
	Offset int
}

// Source is the triple access a query evaluation needs. Both the live
// *store.Store and a frozen *store.View implement it, so the same
// executor serves ad-hoc queries and snapshot-isolated read sessions.
type Source interface {
	// PredicateLen reports how many triples carry the predicate; the
	// planner uses it to order patterns by selectivity.
	PredicateLen(p rdf.ID) int
	// MatchEach streams every triple matching the pattern (rdf.Any
	// wildcards) to f until f returns false.
	MatchEach(pattern rdf.Triple, f func(rdf.Triple) bool)
}

// Vars returns the distinct variable names across all patterns, in first
// appearance order.
func (q Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range q.Patterns {
		for _, v := range p.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Binding maps variable names to terms.
type Binding map[string]rdf.Term

// Execute evaluates the query against the source, resolving ground
// terms through dict. Results are one Binding per solution, restricted
// to the projection, in deterministic (sorted) order with duplicates
// removed. LIMIT/OFFSET are applied after sorting, so the answer is the
// deterministic k-th page; use ExecuteFunc when early termination
// matters more than ordering.
func Execute(src Source, dict *rdf.Dictionary, q Query) ([]Binding, error) {
	results := map[string]Binding{}
	err := enumerate(src, dict, q, func(key string, b Binding) bool {
		results[key] = b
		return true
	})
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if q.Offset > 0 {
		if q.Offset >= len(keys) {
			keys = nil
		} else {
			keys = keys[q.Offset:]
		}
	}
	if q.HasLimit {
		limit := q.Limit
		if limit < 0 {
			limit = 0
		}
		if limit < len(keys) {
			keys = keys[:limit]
		}
	}
	if len(keys) == 0 {
		return nil, nil
	}
	out := make([]Binding, 0, len(keys))
	for _, k := range keys {
		out = append(out, results[k])
	}
	return out, nil
}

// ExecuteFunc evaluates the query and streams each distinct solution to
// emit as it is found, in discovery (unspecified) order. Evaluation
// stops as soon as emit returns false, OFFSET solutions have been
// skipped and LIMIT solutions emitted, so bounded queries never
// enumerate — let alone materialise — the full result set. Only the
// deduplication set (one key per distinct solution seen, capped by
// OFFSET+LIMIT when set) is held in memory. This is the executor behind
// the serving layer's streamed bindings.
func ExecuteFunc(src Source, dict *rdf.Dictionary, q Query, emit func(Binding) bool) error {
	if q.HasLimit && q.Limit <= 0 {
		// Nothing can be emitted; skip evaluation entirely.
		return validate(q)
	}
	seen := map[string]struct{}{}
	skipped, emitted := 0, 0
	return enumerate(src, dict, q, func(key string, b Binding) bool {
		if _, dup := seen[key]; dup {
			return true
		}
		seen[key] = struct{}{}
		if skipped < q.Offset {
			skipped++
			return true
		}
		if !emit(b) {
			return false
		}
		emitted++
		return !q.HasLimit || emitted < q.Limit
	})
}

// validate checks the query's static shape: a non-empty BGP and a
// projection restricted to variables the patterns use.
func validate(q Query) error {
	if len(q.Patterns) == 0 {
		return fmt.Errorf("query: empty basic graph pattern")
	}
	allVars := q.Vars()
	for _, v := range q.Select {
		found := false
		for _, av := range allVars {
			if v == av {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("query: projected variable ?%s not used in any pattern", v)
		}
	}
	return nil
}

// enumerate runs the backtracking join and hands every complete
// (possibly duplicate) solution to yield as (dedup key, binding), until
// yield returns false.
func enumerate(src Source, dict *rdf.Dictionary, q Query, yield func(key string, b Binding) bool) error {
	if err := validate(q); err != nil {
		return err
	}
	proj := q.Select
	if len(proj) == 0 {
		proj = q.Vars()
	}

	// Encode ground terms once. An unknown ground term means an empty
	// result, not an error.
	enc := make([]idPattern, len(q.Patterns))
	for i, pat := range q.Patterns {
		var ip idPattern
		var ok bool
		if ip.s, ip.sv, ok = encodeNode(dict, pat.S); !ok {
			return nil
		}
		if ip.p, ip.pv, ok = encodeNode(dict, pat.P); !ok {
			return nil
		}
		if ip.o, ip.ov, ok = encodeNode(dict, pat.O); !ok {
			return nil
		}
		enc[i] = ip
	}

	// Backtracking join over ID bindings.
	binding := map[string]rdf.ID{}
	order := planOrder(src, enc)

	var walk func(step int) bool
	walk = func(step int) bool {
		if step == len(order) {
			b := Binding{}
			var key strings.Builder
			for _, v := range proj {
				term, _ := dict.Term(binding[v])
				b[v] = term
				key.WriteString(term.String())
				key.WriteByte('|')
			}
			return yield(key.String(), b)
		}
		ip := enc[order[step]]
		resolve := func(id rdf.ID, v string) rdf.ID {
			if v == "" {
				return id
			}
			if bound, ok := binding[v]; ok {
				return bound
			}
			return rdf.Any
		}
		s := resolve(ip.s, ip.sv)
		p := resolve(ip.p, ip.pv)
		o := resolve(ip.o, ip.ov)
		cont := true
		src.MatchEach(rdf.T(s, p, o), func(m rdf.Triple) bool {
			var assigned []string
			bind := func(v string, id rdf.ID) bool {
				if v == "" {
					return true
				}
				if bound, ok := binding[v]; ok {
					return bound == id
				}
				binding[v] = id
				assigned = append(assigned, v)
				return true
			}
			// Same variable twice in one pattern must agree.
			if bind(ip.sv, m.S) && bind(ip.pv, m.P) && bind(ip.ov, m.O) {
				cont = walk(step + 1)
			}
			for _, v := range assigned {
				delete(binding, v)
			}
			return cont
		})
		return cont
	}
	walk(0)
	return nil
}

// encodeNode resolves a ground node through the dictionary. ok=false
// means the term is unknown (query has no solutions).
func encodeNode(dict *rdf.Dictionary, n Node) (rdf.ID, string, bool) {
	if n.IsVar {
		return rdf.Any, n.Var, true
	}
	id, ok := dict.Lookup(n.Term)
	if !ok {
		return rdf.Any, "", false
	}
	return id, "", true
}

// idPattern is a triple pattern with ground terms resolved to IDs (Any
// for variables) and variable names kept alongside ("" when ground).
type idPattern struct {
	s, p, o    rdf.ID
	sv, pv, ov string
}

// planOrder orders patterns greedily: most ground positions first,
// breaking ties by smaller predicate extent; patterns sharing variables
// with already-placed ones are preferred, keeping joins connected.
func planOrder(src Source, pats []idPattern) []int {
	remaining := map[int]bool{}
	for i := range pats {
		remaining[i] = true
	}
	bound := map[string]bool{}
	var order []int
	score := func(i int) (int, int) {
		ip := pats[i]
		ground := 0
		for _, v := range []string{ip.sv, ip.pv, ip.ov} {
			if v == "" || bound[v] {
				ground++
			}
		}
		extent := 1 << 30
		if ip.pv == "" && ip.p != rdf.Any {
			extent = src.PredicateLen(ip.p)
		}
		return ground, extent
	}
	for len(remaining) > 0 {
		best, bestGround, bestExtent := -1, -1, 1<<31-1
		idxs := make([]int, 0, len(remaining))
		for i := range remaining {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs) // determinism
		for _, i := range idxs {
			g, e := score(i)
			if g > bestGround || (g == bestGround && e < bestExtent) {
				best, bestGround, bestExtent = i, g, e
			}
		}
		order = append(order, best)
		delete(remaining, best)
		for _, v := range []string{pats[best].sv, pats[best].pv, pats[best].ov} {
			if v != "" {
				bound[v] = true
			}
		}
	}
	return order
}
