package query

import "testing"

// FuzzParseSelect checks the SELECT parser never panics, and that every
// accepted query has at least one pattern and consistent projections.
func FuzzParseSelect(f *testing.F) {
	seeds := []string{
		"SELECT ?x WHERE { ?x ?p ?o . }",
		"SELECT * WHERE { ?x a <http://e/C> . ?x rdfs:label ?l . }",
		`SELECT ?x WHERE { ?x ?p "lit"@en . }`,
		`SELECT ?x WHERE { ?x ?p "5"^^xsd:integer . }`,
		"select ?x where { _:b ?p ?x . }",
		"SELECT ?x WHERE { ?x ?p ?o }",
		"SELECT WHERE { }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		q, err := ParseSelect(text)
		if err != nil {
			return
		}
		if len(q.Patterns) == 0 {
			t.Fatalf("accepted query with empty BGP: %q", text)
		}
	})
}
