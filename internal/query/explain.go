package query

// Explain is a query's execution profile: what the planner chose, what
// it predicted, and what actually happened. The JSON shape is the
// trailing explain record the serving layer streams after the binding
// rows when ?explain=1 is set.
//
// Per-pattern estimated rows come from the planner's cost model and
// describe the expected matches *per probe* at the pattern's placement;
// ActualRows is the total matches the pattern streamed across every
// probe. Comparing the two shows where the model's distinctness
// assumptions diverge from the data — including honest cases where the
// as-written order beats the planned one.
type Explain struct {
	// Order is the pattern evaluation order as indices into the written
	// pattern list; NaiveOrder reports whether planning was bypassed.
	Order      []int `json:"order"`
	NaiveOrder bool  `json:"naive_order"`
	// PlanCost is the plan's total estimated cardinality (the sum of
	// the per-placement estimates) — the same figure the
	// slider_query_plan_cost metric observes.
	PlanCost   float64          `json:"plan_cost"`
	PlanMicros int64            `json:"plan_us"`
	ExecMicros int64            `json:"exec_us"`
	Rows       int64            `json:"rows"`
	Patterns   []PatternExplain `json:"patterns"`
}

// PatternExplain profiles one triple pattern of the query, in written
// order (Step maps it into the evaluation order).
type PatternExplain struct {
	// Pattern is the pattern in query syntax.
	Pattern string `json:"pattern"`
	// Step is the pattern's position in the evaluation order (-1 when
	// evaluation never reached planning, e.g. an unknown ground term).
	Step int `json:"step"`
	// EstRows is the planner's per-probe cardinality estimate at this
	// placement.
	EstRows float64 `json:"est_rows"`
	// ActualRows is the total matches the pattern streamed; Probes is
	// how many times it was entered with its join prefix bound.
	ActualRows int64 `json:"actual_rows"`
	Probes     int64 `json:"probes"`
	// Galloped reports the pattern was answered by a sorted-extent
	// intersection instead of an enumerate-then-filter scan.
	Galloped bool `json:"galloped"`
}
