package bsbm

import (
	"context"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/rdf"
	"repro/internal/rules"
)

func closure(t *testing.T, ruleset []rules.Rule, sts []rdf.Statement) (input int, inferred int64) {
	t.Helper()
	d := rdf.NewDictionary()
	ts := make([]rdf.Triple, len(sts))
	for i, s := range sts {
		ts[i] = d.EncodeStatement(s)
	}
	_, stats, err := baseline.Closure(context.Background(), ruleset, ts)
	if err != nil {
		t.Fatal(err)
	}
	return len(sts), stats.Inferred
}

func TestGenerateSizeAndValidity(t *testing.T) {
	for _, n := range []int{100, 2000, 20000} {
		sts := Generate(Config{Triples: n, Seed: 1})
		if len(sts) < n || len(sts) > n+16 {
			t.Fatalf("Generate(%d) emitted %d statements", n, len(sts))
		}
		for _, s := range sts {
			if !s.Valid() {
				t.Fatalf("invalid statement %v", s)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Triples: 3000, Seed: 42})
	b := Generate(Config{Triples: 3000, Seed: 42})
	if len(a) != len(b) {
		t.Fatal("lengths differ across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("statement %d differs across runs", i)
		}
	}
}

func TestGenerateDistinctTriples(t *testing.T) {
	sts := Generate(Config{Triples: 5000, Seed: 9})
	seen := make(map[string]bool, len(sts))
	dups := 0
	for _, s := range sts {
		k := s.String()
		if seen[k] {
			dups++
		}
		seen[k] = true
	}
	// BSBM data is essentially duplicate-free.
	if dups > len(sts)/100 {
		t.Fatalf("%d duplicate statements of %d", dups, len(sts))
	}
}

func TestSchemaShape(t *testing.T) {
	sts := Generate(Config{Triples: 10000, Seed: 1})
	var scCount, spCount, domCount int
	for _, s := range sts {
		switch s.P.Value {
		case rdf.IRISubClassOf:
			scCount++
		case rdf.IRISubPropertyOf:
			spCount++
		case rdf.IRIDomain, rdf.IRIRange:
			domCount++
		}
	}
	if scCount == 0 {
		t.Fatal("no subClassOf tree generated")
	}
	if spCount != 2 {
		t.Fatalf("subPropertyOf ladder = %d links, want 2", spCount)
	}
	// Matching the paper's observed closure ratios: no domain/range
	// declarations (see package comment).
	if domCount != 0 {
		t.Fatalf("generator emitted %d domain/range triples, want 0", domCount)
	}
}

func TestRhoDFClosureIsSmall(t *testing.T) {
	// Table 1: BSBM_100k infers 544 of 99,914 under ρdf (≈ 0.5%). Accept
	// anything below 5% at test scale — the point is "tiny ρdf closure".
	input, inferred := closure(t, rules.RhoDF(), Generate(Config{Triples: 20000, Seed: 7}))
	ratio := float64(inferred) / float64(input)
	if inferred == 0 {
		t.Fatal("ρdf closure empty — type tree missing?")
	}
	if ratio > 0.05 {
		t.Fatalf("ρdf closure ratio = %.3f (inferred %d of %d), want < 0.05", ratio, inferred, input)
	}
}

func TestRDFSClosureIsSubstantial(t *testing.T) {
	// Table 1: BSBM RDFS closures run ≈ 30% of input; our synthetic mix
	// lands somewhat lower (see EXPERIMENTS.md). Accept 12–60%.
	input, inferred := closure(t, rules.RDFS(), Generate(Config{Triples: 20000, Seed: 7}))
	ratio := float64(inferred) / float64(input)
	if ratio < 0.12 || ratio > 0.60 {
		t.Fatalf("RDFS closure ratio = %.3f (inferred %d of %d), want 0.12–0.60", ratio, inferred, input)
	}
}

func TestEntityMix(t *testing.T) {
	sts := Generate(Config{Triples: 10000, Seed: 2})
	counts := map[string]int{}
	for _, s := range sts {
		if s.P.Value == rdf.IRIType && strings.HasPrefix(s.O.Value, VocabNS) {
			counts[strings.TrimPrefix(s.O.Value, VocabNS)]++
		}
	}
	for _, kind := range []string{"Product", "Offer", "Review", "Producer", "Vendor", "Person"} {
		if counts[kind] == 0 {
			t.Errorf("no %s instances generated (%v)", kind, counts)
		}
	}
	if counts["Product"] < counts["Offer"] {
		t.Errorf("products (%d) should outnumber offers (%d)", counts["Product"], counts["Offer"])
	}
}

func TestScalesLinearly(t *testing.T) {
	small := Generate(Config{Triples: 5000, Seed: 1})
	large := Generate(Config{Triples: 50000, Seed: 1})
	if len(large) < 9*len(small) {
		t.Fatalf("scaling broken: %d vs %d", len(small), len(large))
	}
}
