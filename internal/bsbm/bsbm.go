// Package bsbm generates ontologies in the style of the Berlin SPARQL
// Benchmark (Bizer & Schultz 2009), the generator behind the paper's
// BSBM_100k … BSBM_5M datasets.
//
// The original BSBM data generator is a Java tool; this package is a
// deterministic from-scratch reimplementation of its dataset shape at the
// level of detail the reproduction needs (DESIGN.md §2): an e-commerce
// universe of product types (a subClassOf tree), producers, products,
// vendors, offers and reviews. Matching the paper's Table 1, the schema
// carries a product-type hierarchy but no rdfs:domain/rdfs:range
// declarations, so the ρdf closure is small (subClassOf/subPropertyOf
// transitivity over the schema only — BSBM_100k infers 544 triples from
// 99,914) while the RDFS closure is large (≈ a third of the input, from
// resource typing over the instance graph).
package bsbm

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// Namespaces mirroring the BSBM vocabulary layout.
const (
	VocabNS    = "http://example.org/bsbm/vocabulary/"
	InstanceNS = "http://example.org/bsbm/instances/"
)

// Config sizes a generated dataset.
type Config struct {
	// Triples is the approximate number of statements to generate
	// (the generator may emit a handful more to finish an entity).
	Triples int
	// Seed drives the deterministic pseudo-random structure.
	Seed int64
}

// generator carries shared state while emitting statements.
type generator struct {
	rng *rand.Rand
	out []rdf.Statement

	typeIRI, classIRI, scIRI, spIRI, labelIRI rdf.Term

	productClass  rdf.Term
	producerClass rdf.Term
	vendorClass   rdf.Term
	offerClass    rdf.Term
	reviewClass   rdf.Term
	personClass   rdf.Term

	productType    rdf.Term
	producerProp   rdf.Term
	numericProps   []rdf.Term
	textualProps   []rdf.Term
	vendorProp     rdf.Term
	productProp    rdf.Term
	priceProp      rdf.Term
	validFromProp  rdf.Term
	reviewerProp   rdf.Term
	ratingProps    []rdf.Term
	reviewTextProp rdf.Term
	reviewForProp  rdf.Term
	countryProp    rdf.Term
	locatedInProp  rdf.Term

	nTypes int
}

func vocab(name string) rdf.Term { return rdf.NewIRI(VocabNS + name) }
func instance(kind string, i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%s%s/%d", InstanceNS, kind, i))
}

// Generate produces a BSBM-like dataset of approximately cfg.Triples
// statements: schema first (the TBox every fragment reasons over), then
// instance data in a fixed product:offer:review mix.
func Generate(cfg Config) []rdf.Statement {
	n := cfg.Triples
	if n < 50 {
		n = 50
	}
	g := &generator{
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		out:      make([]rdf.Statement, 0, n+32),
		typeIRI:  rdf.NewIRI(rdf.IRIType),
		classIRI: rdf.NewIRI(rdf.IRIClass),
		scIRI:    rdf.NewIRI(rdf.IRISubClassOf),
		spIRI:    rdf.NewIRI(rdf.IRISubPropertyOf),
		labelIRI: rdf.NewIRI(rdf.IRILabel),
	}
	g.productClass = vocab("Product")
	g.producerClass = vocab("Producer")
	g.vendorClass = vocab("Vendor")
	g.offerClass = vocab("Offer")
	g.reviewClass = vocab("Review")
	g.personClass = vocab("Person")
	g.productType = vocab("productType")
	g.producerProp = vocab("producer")
	for i := 1; i <= 2; i++ {
		g.numericProps = append(g.numericProps, vocab(fmt.Sprintf("productPropertyNumeric%d", i)))
	}
	for i := 1; i <= 2; i++ {
		g.textualProps = append(g.textualProps, vocab(fmt.Sprintf("productPropertyTextual%d", i)))
	}
	g.vendorProp = vocab("vendor")
	g.productProp = vocab("product")
	g.priceProp = vocab("price")
	g.validFromProp = vocab("validFrom")
	g.reviewerProp = vocab("reviewer")
	g.ratingProps = []rdf.Term{vocab("rating1"), vocab("rating2")}
	g.reviewTextProp = vocab("text")
	g.reviewForProp = vocab("reviewFor")
	g.countryProp = vocab("country")
	g.locatedInProp = vocab("locatedIn")

	g.schema(n)
	g.instances(n)
	return g.out
}

func (g *generator) emit(s, p, o rdf.Term) {
	g.out = append(g.out, rdf.Statement{S: s, P: p, O: o})
}

// schema emits the TBox: the product-type subClassOf tree (the source of
// all ρdf inference in this dataset), the entity classes, and a small
// subPropertyOf ladder.
func (g *generator) schema(n int) {
	// Entity classes.
	for _, c := range []rdf.Term{g.productClass, g.producerClass, g.vendorClass,
		g.offerClass, g.reviewClass, g.personClass} {
		g.emit(c, g.typeIRI, g.classIRI)
	}

	// Product-type tree: size scales with the dataset like BSBM's does.
	// Branching factor 8; node i's parent is (i-1)/8.
	g.nTypes = n / 500
	if g.nTypes < 9 {
		g.nTypes = 9
	}
	ptype := func(i int) rdf.Term { return instance("ProductType", i) }
	for i := 0; i < g.nTypes; i++ {
		g.emit(ptype(i), g.typeIRI, g.classIRI)
		if i > 0 {
			g.emit(ptype(i), g.scIRI, ptype((i-1)/8))
		}
	}

	// A small subPropertyOf ladder over *rare* properties (asserted only
	// on producers and vendors), keeping scm-spo / prp-spo1 exercised
	// without distorting the ρdf closure ratio away from the paper's
	// ≈ 0.5% (frequent properties under sp would dominate the closure).
	g.emit(g.countryProp, g.spIRI, g.locatedInProp)
	g.emit(g.locatedInProp, g.spIRI, vocab("spatialRelation"))
}

// instances fills the remaining budget with producers, products, vendors,
// offers and reviews in a fixed rotation (2 products : 1 offer : 1 review)
// so the ABox mix is stable across sizes.
func (g *generator) instances(n int) {
	nProducers := n/2000 + 2
	for i := 0; i < nProducers; i++ {
		p := instance("Producer", i)
		g.emit(p, g.typeIRI, g.producerClass)
		g.emit(p, g.labelIRI, rdf.NewLiteral(fmt.Sprintf("Producer %d", i)))
		g.emit(p, g.countryProp, instance("Country", g.rng.Intn(30)))
	}
	nVendors := n/2000 + 2
	for i := 0; i < nVendors; i++ {
		v := instance("Vendor", i)
		g.emit(v, g.typeIRI, g.vendorClass)
		g.emit(v, g.labelIRI, rdf.NewLiteral(fmt.Sprintf("Vendor %d", i)))
		g.emit(v, g.countryProp, instance("Country", g.rng.Intn(30)))
	}

	products, offers, reviews, persons := 0, 0, 0, 0
	for len(g.out) < n {
		switch {
		case products <= 2*(offers+reviews):
			g.product(products, nProducers)
			products++
		case offers <= reviews:
			g.offer(offers, products, nVendors)
			offers++
		default:
			if reviews%3 == 0 {
				p := instance("Person", persons)
				g.emit(p, g.typeIRI, g.personClass)
				persons++
			}
			g.review(reviews, products, persons)
			reviews++
		}
	}
}

func (g *generator) product(i, nProducers int) {
	p := instance("Product", i)
	g.emit(p, g.typeIRI, g.productClass)
	g.emit(p, g.labelIRI, rdf.NewLiteral(fmt.Sprintf("Product %d", i)))
	// productType is a plain property pointing into the type tree (as in
	// BSBM); it is not rdf:type, so cax-sco does not fan out over it.
	g.emit(p, g.productType, instance("ProductType", g.rng.Intn(g.nTypes)))
	g.emit(p, g.producerProp, instance("Producer", g.rng.Intn(nProducers)))
	for _, np := range g.numericProps {
		g.emit(p, np, rdf.NewTypedLiteral(fmt.Sprintf("%d", g.rng.Intn(2000)), rdf.IRIXSDInteger))
	}
	g.emit(p, g.textualProps[g.rng.Intn(len(g.textualProps))],
		rdf.NewLiteral(fmt.Sprintf("description of product %d", i)))
}

func (g *generator) offer(i, nProducts, nVendors int) {
	o := instance("Offer", i)
	g.emit(o, g.typeIRI, g.offerClass)
	g.emit(o, g.productProp, instance("Product", g.rng.Intn(maxInt(nProducts, 1))))
	g.emit(o, g.vendorProp, instance("Vendor", g.rng.Intn(nVendors)))
	g.emit(o, g.priceProp, rdf.NewTypedLiteral(fmt.Sprintf("%d", g.rng.Intn(10000)), rdf.IRIXSDInteger))
	g.emit(o, g.validFromProp, rdf.NewLiteral(fmt.Sprintf("2008-%02d-%02d", g.rng.Intn(12)+1, g.rng.Intn(28)+1)))
}

func (g *generator) review(i, nProducts, nPersons int) {
	r := instance("Review", i)
	g.emit(r, g.typeIRI, g.reviewClass)
	g.emit(r, g.reviewForProp, instance("Product", g.rng.Intn(maxInt(nProducts, 1))))
	g.emit(r, g.reviewerProp, instance("Person", g.rng.Intn(maxInt(nPersons, 1))))
	g.emit(r, g.ratingProps[g.rng.Intn(len(g.ratingProps))],
		rdf.NewTypedLiteral(fmt.Sprintf("%d", g.rng.Intn(10)+1), rdf.IRIXSDInteger))
	g.emit(r, g.reviewTextProp, rdf.NewLiteral(fmt.Sprintf("review text %d", i)))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
