//go:build !unix

package vfs

import "errors"

// freeSpace is unsupported off unix: callers treat an error as "free
// space unknown" and skip low-watermark handling rather than degrading
// on bad data.
func freeSpace(string) (uint64, error) {
	return 0, errors.New("vfs: free-space query unsupported on this platform")
}
