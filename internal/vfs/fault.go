package vfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// FaultFS wraps an inner FS (normally OS over a test tempdir — the
// directory stays real, so advisory file locks keep working) and
// injects faults on a deterministic schedule: the k-th fsync or rename
// from now fails, writes run out of a byte budget (ENOSPC), a chosen
// write is torn in half, and Crash drops everything not yet fsynced —
// the power-failure model. Fault arming and the operation counters are
// all under one mutex, so a schedule replayed against the same
// operation sequence injects at exactly the same points.
//
// Injected failures behave like the real thing: a failed fsync does NOT
// sync (the data stays volatile and Crash drops it), a failed rename
// does not rename, a budget-exhausted write lands its partial prefix.
// A handle whose Sync failed remembers it; syncing it again counts a
// refsync violation (see RefsyncViolations) — the recovery invariant
// says failed descriptors are reopened, never retried.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	fsyncs  int64 // Sync calls observed
	renames int64 // Rename calls observed
	writes  int64 // Write calls observed

	fsyncFailAt     int64 // absolute fsync count to fail at; 0 = off
	fsyncFailEvery  bool
	fsyncErr        error
	renameFailAt    int64
	renameFailEvery bool
	renameErr       error
	writeBudget     int64 // bytes writable before ENOSPC; -1 = unlimited
	tornAt          int64 // absolute write count to tear; 0 = off

	freeOverride int64 // FreeSpace override; -1 = passthrough

	files   map[string]*fileState
	refsync int64 // Sync retried on a handle whose Sync already failed
}

// fileState is what FaultFS knows about one path: the logical size the
// writer believes, the fsynced watermark a simulated power failure
// rolls back to, and whether we created the file (a created-never-
// synced file vanishes entirely on Crash).
type fileState struct {
	size    int64
	synced  int64
	created bool
}

// NewFault wraps inner with fault injection. No faults are armed.
func NewFault(inner FS) *FaultFS {
	return &FaultFS{
		inner:        inner,
		writeBudget:  -1,
		freeOverride: -1,
		files:        make(map[string]*fileState),
	}
}

// errInjected tags injected failures so tests can tell them from real
// I/O errors; the wrapped errno is what callers classify on.
func errInjected(op string, errno error) error {
	return fmt.Errorf("vfs: injected %s fault: %w", op, errno)
}

// FailFsync arms the k-th Sync from now (1-based) to fail with err
// (syscall.EIO when nil). The sync does not happen: data covered only
// by it stays volatile.
func (fs *FaultFS) FailFsync(k int, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err == nil {
		err = errInjected("fsync", syscall.EIO)
	}
	fs.fsyncFailAt, fs.fsyncFailEvery, fs.fsyncErr = fs.fsyncs+int64(k), false, err
}

// FailEveryFsync arms every Sync from now to fail with err
// (syscall.EIO when nil) until Clear.
func (fs *FaultFS) FailEveryFsync(err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err == nil {
		err = errInjected("fsync", syscall.EIO)
	}
	fs.fsyncFailAt, fs.fsyncFailEvery, fs.fsyncErr = 0, true, err
}

// FailRename arms the k-th Rename from now (1-based) to fail with err
// (syscall.EIO when nil). The rename does not happen.
func (fs *FaultFS) FailRename(k int, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err == nil {
		err = errInjected("rename", syscall.EIO)
	}
	fs.renameFailAt, fs.renameFailEvery, fs.renameErr = fs.renames+int64(k), false, err
}

// FailEveryRename arms every Rename from now to fail with err
// (syscall.EIO when nil) until Clear.
func (fs *FaultFS) FailEveryRename(err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err == nil {
		err = errInjected("rename", syscall.EIO)
	}
	fs.renameFailAt, fs.renameFailEvery, fs.renameErr = 0, true, err
}

// SetWriteBudget allows n more bytes of writes; the write that would
// exceed the budget lands its in-budget prefix and fails with ENOSPC —
// the torn half-frame a full disk really produces. Negative n removes
// the budget.
func (fs *FaultFS) SetWriteBudget(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.writeBudget = n
}

// TornWrite arms the k-th Write from now (1-based) to land only half
// its bytes and fail with EIO.
func (fs *FaultFS) TornWrite(k int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.tornAt = fs.writes + int64(k)
}

// SetFreeSpace overrides FreeSpace's answer (negative restores the
// passthrough), so low-watermark behaviour is testable without filling
// a disk.
func (fs *FaultFS) SetFreeSpace(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.freeOverride = n
}

// Clear disarms every scheduled fault (counters and crash-tracking
// state are kept) — the "operator fixed the disk" event in a torture
// schedule.
func (fs *FaultFS) Clear() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.fsyncFailAt, fs.fsyncFailEvery, fs.fsyncErr = 0, false, nil
	fs.renameFailAt, fs.renameFailEvery, fs.renameErr = 0, false, nil
	fs.writeBudget = -1
	fs.tornAt = 0
	fs.freeOverride = -1
}

// Fsyncs returns how many Sync calls the FS has observed.
func (fs *FaultFS) Fsyncs() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.fsyncs
}

// Renames returns how many Rename calls the FS has observed.
func (fs *FaultFS) Renames() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.renames
}

// RefsyncViolations counts Sync calls retried on a handle whose Sync
// had already failed — each one is a recovery-invariant violation
// (failed descriptors must be reopened, never re-fsynced). Torture
// tests assert this stays zero.
func (fs *FaultFS) RefsyncViolations() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.refsync
}

// Crash simulates a power failure: every file opened through the FS is
// rolled back to its fsynced watermark, and files created this session
// that were never synced are removed. Call it with no handles in use
// (after the writing process is torn down), then reopen through a
// fresh FS — the crashed process's descriptors are gone either way.
func (fs *FaultFS) Crash() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for path, st := range fs.files {
		if st.created && st.synced == 0 {
			if err := fs.inner.Remove(path); err != nil {
				return err
			}
			delete(fs.files, path)
			continue
		}
		if st.synced < st.size {
			if err := fs.inner.Truncate(path, st.synced); err != nil {
				return err
			}
			st.size = st.synced
		}
	}
	return nil
}

// state returns (creating if needed) the tracked state for path.
// Callers hold fs.mu. existed says whether the file was already on
// disk: pre-existing bytes are presumed durable (the previous session
// synced or checkpointed them), so the watermark starts at the current
// size.
func (fs *FaultFS) state(path string, existed bool, size int64) *fileState {
	if st, ok := fs.files[path]; ok {
		return st
	}
	st := &fileState{size: size, created: !existed}
	if existed {
		st.synced = size
	}
	fs.files[path] = st
	return st
}

// faultFile is a handle dispensed by FaultFS: it forwards to the inner
// file, applies write faults, and maintains the path's size/watermark
// state for Crash.
type faultFile struct {
	File
	fs         *FaultFS
	st         *fileState
	pos        int64
	syncFailed bool
}

func (f *faultFile) Write(p []byte) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	fs.writes++
	n := len(p)
	var ferr error
	if fs.tornAt != 0 && fs.writes == fs.tornAt {
		n /= 2
		fs.tornAt = 0
		ferr = errInjected("torn write", syscall.EIO)
	}
	if fs.writeBudget >= 0 {
		if int64(n) > fs.writeBudget {
			n = int(fs.writeBudget)
			ferr = errInjected("write", syscall.ENOSPC)
		}
		fs.writeBudget -= int64(n)
	}
	fs.mu.Unlock()
	wrote := 0
	var werr error
	if n > 0 {
		wrote, werr = f.File.Write(p[:n])
	}
	fs.mu.Lock()
	f.pos += int64(wrote)
	if f.pos > f.st.size {
		f.st.size = f.pos
	}
	fs.mu.Unlock()
	if werr != nil {
		return wrote, werr
	}
	if ferr != nil {
		return wrote, ferr
	}
	if wrote < len(p) {
		// n was faulted below len(p) but ferr is nil — cannot happen;
		// keep io.Writer's contract anyway.
		return wrote, errInjected("write", syscall.EIO)
	}
	return wrote, nil
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	pos, err := f.File.Seek(offset, whence)
	if err == nil {
		f.fs.mu.Lock()
		f.pos = pos
		f.fs.mu.Unlock()
	}
	return pos, err
}

func (f *faultFile) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	if f.syncFailed {
		fs.refsync++
	}
	fs.fsyncs++
	fail := fs.fsyncFailEvery || (fs.fsyncFailAt != 0 && fs.fsyncs == fs.fsyncFailAt)
	err := fs.fsyncErr
	fs.mu.Unlock()
	if fail {
		// The sync did not happen: the watermark stays put, so a Crash
		// drops everything this sync claimed to cover.
		fs.mu.Lock()
		f.syncFailed = true
		fs.mu.Unlock()
		return err
	}
	if serr := f.File.Sync(); serr != nil {
		fs.mu.Lock()
		f.syncFailed = true
		fs.mu.Unlock()
		return serr
	}
	fs.mu.Lock()
	if f.st.size > f.st.synced {
		f.st.synced = f.st.size
	}
	fs.mu.Unlock()
	return nil
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.File.Truncate(size); err != nil {
		return err
	}
	f.fs.mu.Lock()
	f.st.size = size
	if f.st.synced > size {
		f.st.synced = size
	}
	f.fs.mu.Unlock()
	return nil
}

// --- FS interface ---

// OpenFile opens through the inner FS and wraps the handle for fault
// injection and crash tracking.
func (fs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	name = filepath.Clean(name)
	fi, statErr := fs.inner.Stat(name)
	existed := statErr == nil
	var size int64
	if existed {
		size = fi.Size()
	}
	f, err := fs.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	st := fs.state(name, existed, size)
	if flag&os.O_TRUNC != 0 {
		st.size = 0
		if st.synced > 0 {
			st.synced = 0
		}
	}
	fs.mu.Unlock()
	return &faultFile{File: f, fs: fs, st: st}, nil
}

// Open opens read-only; reads are never faulted, so the inner handle
// is returned directly.
func (fs *FaultFS) Open(name string) (File, error) { return fs.inner.Open(filepath.Clean(name)) }

// ReadFile passes through (reads are never faulted).
func (fs *FaultFS) ReadFile(name string) ([]byte, error) {
	return fs.inner.ReadFile(filepath.Clean(name))
}

// ReadDir passes through.
func (fs *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	return fs.inner.ReadDir(filepath.Clean(name))
}

// Rename injects scheduled rename faults; on success the crash-tracking
// state follows the file to its new name.
func (fs *FaultFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	fs.mu.Lock()
	fs.renames++
	fail := fs.renameFailEvery || (fs.renameFailAt != 0 && fs.renames == fs.renameFailAt)
	err := fs.renameErr
	fs.mu.Unlock()
	if fail {
		return err
	}
	if rerr := fs.inner.Rename(oldpath, newpath); rerr != nil {
		return rerr
	}
	fs.mu.Lock()
	if st, ok := fs.files[oldpath]; ok {
		fs.files[newpath] = st
		delete(fs.files, oldpath)
	}
	fs.mu.Unlock()
	return nil
}

// Remove passes through and drops crash-tracking state.
func (fs *FaultFS) Remove(name string) error {
	name = filepath.Clean(name)
	if err := fs.inner.Remove(name); err != nil {
		return err
	}
	fs.mu.Lock()
	delete(fs.files, name)
	fs.mu.Unlock()
	return nil
}

// Truncate passes through and rolls the watermark back with the data.
func (fs *FaultFS) Truncate(name string, size int64) error {
	name = filepath.Clean(name)
	if err := fs.inner.Truncate(name, size); err != nil {
		return err
	}
	fs.mu.Lock()
	if st, ok := fs.files[name]; ok {
		st.size = size
		if st.synced > size {
			st.synced = size
		}
	}
	fs.mu.Unlock()
	return nil
}

// Stat passes through.
func (fs *FaultFS) Stat(name string) (os.FileInfo, error) {
	return fs.inner.Stat(filepath.Clean(name))
}

// MkdirAll passes through.
func (fs *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return fs.inner.MkdirAll(filepath.Clean(path), perm)
}

// SyncDir passes through; directory syncs are best-effort everywhere.
func (fs *FaultFS) SyncDir(dir string) error { return fs.inner.SyncDir(filepath.Clean(dir)) }

// FreeSpace answers the override when one is set, else passes through.
func (fs *FaultFS) FreeSpace(dir string) (uint64, error) {
	fs.mu.Lock()
	o := fs.freeOverride
	fs.mu.Unlock()
	if o >= 0 {
		return uint64(o), nil
	}
	return fs.inner.FreeSpace(filepath.Clean(dir))
}
