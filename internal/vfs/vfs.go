// Package vfs is the small filesystem seam under the durability stack.
// Every file operation the write-ahead log (and through it the
// checkpoint writer) performs goes through an FS, so the disk can be
// swapped out: OS is the passthrough used in production, FaultFS (see
// fault.go) is a deterministic failpoint implementation the torture
// harness scripts — ENOSPC after a byte budget, EIO on the k-th fsync,
// torn partial writes, rename failures, and crash-point simulation that
// drops unsynced data.
//
// The interface is deliberately narrow: exactly the operations the
// durability stack uses, nothing speculative. Files opened through an
// FS satisfy File; *os.File does so directly, which keeps the
// passthrough allocation-free.
package vfs

import (
	"io"
	"os"
)

// File is an open file handle. *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file's data (and metadata) to stable storage.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Stat returns the file's FileInfo.
	Stat() (os.FileInfo, error)
	// Name returns the name the file was opened with.
	Name() string
}

// FS is the filesystem face of the durability stack. Implementations
// must be safe for concurrent use.
type FS interface {
	// OpenFile is the generalized open call (os.OpenFile semantics).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// ReadFile reads the named file whole.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the named directory, sorted by filename.
	ReadDir(name string) ([]os.DirEntry, error)
	// Rename atomically renames (moves) oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove removes the named file.
	Remove(name string) error
	// Truncate changes the size of the named file.
	Truncate(name string, size int64) error
	// Stat returns a FileInfo describing the named file.
	Stat(name string) (os.FileInfo, error)
	// MkdirAll creates the named directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so renames within it are durable.
	// Best-effort: some filesystems refuse directory syncs, and callers
	// rely on the final file fsync for correctness either way.
	SyncDir(dir string) error
	// FreeSpace reports the bytes available to unprivileged writers on
	// the filesystem holding dir (0, error where unsupported).
	FreeSpace(dir string) (uint64, error)
}

// OS is the passthrough FS: every call maps 1:1 onto the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

func (osFS) FreeSpace(dir string) (uint64, error) { return freeSpace(dir) }
