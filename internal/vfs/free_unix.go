//go:build unix

package vfs

import "syscall"

// freeSpace reports the bytes available to unprivileged writers on the
// filesystem holding dir, via statfs. Bavail (not Bfree) is the right
// field: it excludes the root-reserved blocks an ordinary process
// cannot consume, so ENOSPC arrives when this hits zero.
func freeSpace(dir string) (uint64, error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(dir, &st); err != nil {
		return 0, err
	}
	return st.Bavail * uint64(st.Bsize), nil
}
