package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func write(t *testing.T, f File, data string) {
	t.Helper()
	if _, err := f.Write([]byte(data)); err != nil {
		t.Fatalf("write %q: %v", data, err)
	}
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	f, err := OS.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "hello")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := OS.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if err := OS.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	entries, err := OS.ReadDir(dir)
	if err != nil || len(entries) != 1 || entries[0].Name() != "b.txt" {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
	free, err := OS.FreeSpace(dir)
	if err != nil {
		t.Fatalf("FreeSpace: %v", err)
	}
	if free == 0 {
		t.Fatal("FreeSpace reported an empty disk under a writable tempdir")
	}
}

func TestFaultFsyncKth(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(OS)
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fs.FailFsync(2, nil)
	if err := f.Sync(); err != nil {
		t.Fatalf("fsync 1 should pass: %v", err)
	}
	err = f.Sync()
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("fsync 2 = %v, want injected EIO", err)
	}
	// The failed handle remembers: retrying the same descriptor is the
	// invariant violation the counter exposes.
	if fs.RefsyncViolations() != 0 {
		t.Fatal("violation counted before any retry")
	}
	f.Sync()
	if got := fs.RefsyncViolations(); got != 1 {
		t.Fatalf("RefsyncViolations = %d after a retry, want 1", got)
	}
	// A fresh handle to the same path is the sanctioned recovery path.
	f2, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := f2.Sync(); err != nil {
		t.Fatalf("fresh handle sync: %v", err)
	}
	if got := fs.RefsyncViolations(); got != 1 {
		t.Fatalf("fresh-handle sync counted as violation (%d)", got)
	}
}

func TestFaultRenameAndClear(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(OS)
	path := filepath.Join(dir, "x.tmp")
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "data")
	f.Close()
	fs.FailEveryRename(nil)
	if err := fs.Rename(path, filepath.Join(dir, "x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename = %v, want injected EIO", err)
	}
	if _, err := fs.Stat(path); err != nil {
		t.Fatal("failed rename moved the file anyway")
	}
	fs.Clear()
	if err := fs.Rename(path, filepath.Join(dir, "x")); err != nil {
		t.Fatalf("rename after Clear: %v", err)
	}
	if _, err := fs.Stat(filepath.Join(dir, "x")); err != nil {
		t.Fatal("rename after Clear did not move the file")
	}
}

func TestFaultWriteBudgetENOSPC(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(OS)
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fs.SetWriteBudget(5)
	n, err := f.Write([]byte("12345678"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("over-budget write = %v, want ENOSPC", err)
	}
	if n != 5 {
		t.Fatalf("partial write landed %d bytes, want the 5-byte budget", n)
	}
	fi, _ := fs.Stat(filepath.Join(dir, "f"))
	if fi.Size() != 5 {
		t.Fatalf("on-disk size %d, want 5 (the torn prefix a full disk leaves)", fi.Size())
	}
	fs.SetWriteBudget(-1)
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatalf("write after budget removed: %v", err)
	}
}

func TestFaultTornWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(OS)
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fs.TornWrite(1)
	n, err := f.Write([]byte("abcdefgh"))
	if err == nil || n != 4 {
		t.Fatalf("torn write = (%d, %v), want (4, EIO)", n, err)
	}
	// One-shot: the next write is whole.
	if _, err := f.Write([]byte("rest")); err != nil {
		t.Fatalf("write after torn one: %v", err)
	}
}

func TestFaultCrashDropsUnsynced(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(OS)
	synced := filepath.Join(dir, "synced")
	tail := filepath.Join(dir, "tail")
	never := filepath.Join(dir, "never")

	f, _ := fs.OpenFile(synced, os.O_WRONLY|os.O_CREATE, 0o644)
	write(t, f, "durable")
	f.Sync()
	f.Close()

	f, _ = fs.OpenFile(tail, os.O_WRONLY|os.O_CREATE, 0o644)
	write(t, f, "durable")
	f.Sync()
	write(t, f, "+volatile tail")
	f.Close()

	f, _ = fs.OpenFile(never, os.O_WRONLY|os.O_CREATE, 0o644)
	write(t, f, "all volatile")
	f.Close()

	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(synced); string(b) != "durable" {
		t.Fatalf("synced file = %q after crash", b)
	}
	if b, _ := os.ReadFile(tail); string(b) != "durable" {
		t.Fatalf("file with unsynced tail = %q after crash, want the synced prefix", b)
	}
	if _, err := os.Stat(never); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("created-never-synced file survived the crash")
	}
}

func TestFaultCrashPreservesPreexisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "old")
	if err := os.WriteFile(path, []byte("previous session"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewFault(OS)
	f, err := fs.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		t.Fatal(err)
	}
	write(t, f, " + unsynced")
	f.Close()
	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "previous session" {
		t.Fatalf("pre-existing file = %q after crash, want its open-time contents", b)
	}
}

func TestFaultFreeSpaceOverride(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(OS)
	fs.SetFreeSpace(4096)
	free, err := fs.FreeSpace(dir)
	if err != nil || free != 4096 {
		t.Fatalf("FreeSpace = %d, %v, want the 4096 override", free, err)
	}
	fs.SetFreeSpace(-1)
	free, err = fs.FreeSpace(dir)
	if err != nil || free == 0 || free == 4096 {
		t.Fatalf("FreeSpace after reset = %d, %v, want passthrough", free, err)
	}
}

func TestFaultTruncateRollsWatermarkBack(t *testing.T) {
	dir := t.TempDir()
	fs := NewFault(OS)
	path := filepath.Join(dir, "f")
	f, _ := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	write(t, f, "0123456789")
	f.Sync()
	f.Close()
	if err := fs.Truncate(path, 4); err != nil {
		t.Fatal(err)
	}
	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "0123" {
		t.Fatalf("truncated file = %q after crash, want %q", b, "0123")
	}
}
