// Package baseline implements batch forward-chaining materialisation over
// the same store and rulesets as the Slider engine.
//
// It is the repository's stand-in for OWLIM-SE, the commercial batch
// reasoner the paper benchmarks against (Table 1, Figure 3). OWLIM-SE is
// closed source; what matters for reproducing the paper's comparison is
// the *evaluation strategy*, not the product: a batch engine re-runs full
// fixpoint rounds over the whole knowledge base, repeatedly re-deriving
// duplicates — the "commonly used iterative rules schemes produce O(n³)
// triples" behaviour the paper cites [19] — while Slider processes only
// deltas. Both engines here share internal/store and internal/rules, so
// the comparison isolates exactly that architectural difference.
//
// Two strategies are provided:
//
//   - Naive: every round applies every rule to the entire current triple
//     set. This is the OWLIM-SE stand-in used for Table 1.
//   - SemiNaive: every round applies rules only to the triples derived in
//     the previous round. Used in ablation benchmarks to separate the
//     cost of batch scheduling from the cost of duplicate re-derivation.
package baseline

import (
	"context"
	"fmt"

	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

// Strategy selects the fixpoint evaluation strategy.
type Strategy int

const (
	// Naive re-evaluates all rules against the full triple set each round.
	Naive Strategy = iota
	// SemiNaive evaluates rules against the previous round's fresh
	// triples only.
	SemiNaive
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Naive:
		return "naive"
	case SemiNaive:
		return "semi-naive"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Stats reports what a materialisation run did.
type Stats struct {
	// Rounds is the number of fixpoint iterations until no new triples.
	Rounds int
	// Derivations counts every triple emitted by a rule, including
	// duplicates — the quantity batch evaluation wastes work on.
	Derivations int64
	// Inferred counts distinct new triples added to the store.
	Inferred int64
	// Duplicates = Derivations - Inferred.
	Duplicates int64
}

// Reasoner is a batch materialisation engine.
type Reasoner struct {
	store    *store.Store
	ruleset  []rules.Rule
	strategy Strategy
}

// New returns a batch reasoner over st.
func New(st *store.Store, ruleset []rules.Rule, strategy Strategy) *Reasoner {
	return &Reasoner{store: st, ruleset: ruleset, strategy: strategy}
}

// Store returns the underlying triple store.
func (r *Reasoner) Store() *store.Store { return r.store }

// Materialize loads the given triples into the store and computes the
// full closure, running rule rounds to fixpoint. It is the batch
// counterpart of streaming every triple through the Slider engine and
// waiting for quiescence. ctx bounds the computation.
func (r *Reasoner) Materialize(ctx context.Context, input []rdf.Triple) (Stats, error) {
	for _, t := range input {
		r.store.Add(t)
	}
	return r.Close(ctx)
}

// Close computes the closure of the store's current contents.
func (r *Reasoner) Close(ctx context.Context) (Stats, error) {
	var stats Stats
	delta := r.store.Snapshot()
	for len(delta) > 0 {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		stats.Rounds++
		var emitted []rdf.Triple
		for _, rule := range r.ruleset {
			rule.Apply(r.store, delta, func(t rdf.Triple) {
				emitted = append(emitted, t)
			})
		}
		stats.Derivations += int64(len(emitted))
		fresh := r.store.AddAll(emitted)
		stats.Inferred += int64(len(fresh))
		switch r.strategy {
		case SemiNaive:
			delta = fresh
		default: // Naive: re-walk everything, as batch engines do.
			if len(fresh) == 0 {
				delta = nil
			} else {
				delta = r.store.Snapshot()
			}
		}
	}
	stats.Duplicates = stats.Derivations - stats.Inferred
	return stats, nil
}

// Closure is a convenience that materialises input over a fresh store and
// returns the store, for use as a test oracle.
func Closure(ctx context.Context, ruleset []rules.Rule, input []rdf.Triple) (*store.Store, Stats, error) {
	st := store.New()
	r := New(st, ruleset, SemiNaive)
	stats, err := r.Materialize(ctx, input)
	return st, stats, err
}
