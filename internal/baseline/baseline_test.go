package baseline

import (
	"context"
	"testing"

	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

const (
	a rdf.ID = rdf.FirstCustomID + iota
	b
	c
	d
	e
	p1
	p2
	x
	y
)

func sc(s, o rdf.ID) rdf.Triple { return rdf.T(s, rdf.IDSubClassOf, o) }
func ty(s, o rdf.ID) rdf.Triple { return rdf.T(s, rdf.IDType, o) }

// chain builds the paper's subClassOf_n ontology (Equation 1).
func chain(n int) []rdf.Triple {
	out := []rdf.Triple{ty(rdf.FirstCustomID, rdf.IDClass)}
	for i := 1; i < n; i++ {
		id := rdf.FirstCustomID + rdf.ID(i)
		out = append(out, ty(id, rdf.IDClass), sc(id, id-1))
	}
	return out
}

func TestNaiveComputesTransitiveClosure(t *testing.T) {
	st := store.New()
	r := New(st, rules.RhoDF(), Naive)
	stats, err := r.Materialize(context.Background(), []rdf.Triple{sc(a, b), sc(b, c), sc(c, d)})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []rdf.Triple{sc(a, c), sc(a, d), sc(b, d)} {
		if !st.Contains(want) {
			t.Errorf("closure missing %v", want)
		}
	}
	if stats.Inferred != 3 {
		t.Fatalf("Inferred = %d, want 3", stats.Inferred)
	}
	if stats.Rounds < 2 {
		t.Fatalf("Rounds = %d, want >= 2", stats.Rounds)
	}
}

func TestSemiNaiveMatchesNaive(t *testing.T) {
	input := chain(30)
	stN := store.New()
	_, err := New(stN, rules.RhoDF(), Naive).Materialize(context.Background(), input)
	if err != nil {
		t.Fatal(err)
	}
	stS := store.New()
	_, err = New(stS, rules.RhoDF(), SemiNaive).Materialize(context.Background(), input)
	if err != nil {
		t.Fatal(err)
	}
	if stN.Len() != stS.Len() {
		t.Fatalf("naive closure %d triples, semi-naive %d", stN.Len(), stS.Len())
	}
	stS.ForEach(func(tr rdf.Triple) bool {
		if !stN.Contains(tr) {
			t.Fatalf("naive closure missing %v", tr)
		}
		return true
	})
}

func TestNaiveWastesWorkOnDuplicates(t *testing.T) {
	// The core claim behind the paper's comparison: naive batch rounds
	// re-derive already-known triples, semi-naive does far less of that.
	input := chain(40)
	stN := store.New()
	statsN, _ := New(stN, rules.RhoDF(), Naive).Materialize(context.Background(), input)
	stS := store.New()
	statsS, _ := New(stS, rules.RhoDF(), SemiNaive).Materialize(context.Background(), input)
	if statsN.Inferred != statsS.Inferred {
		t.Fatalf("closures differ: %d vs %d", statsN.Inferred, statsS.Inferred)
	}
	if statsN.Duplicates <= statsS.Duplicates {
		t.Fatalf("naive duplicates (%d) should exceed semi-naive (%d)",
			statsN.Duplicates, statsS.Duplicates)
	}
	if statsN.Duplicates <= 2*statsS.Duplicates {
		t.Fatalf("expected naive to waste much more: naive %d vs semi-naive %d",
			statsN.Duplicates, statsS.Duplicates)
	}
}

func TestChainClosureCountMatchesPaperFormula(t *testing.T) {
	// subClassOf_n infers C(n-1, 2) subClassOf triples under ρdf
	// (the paper's Table 1: subClassOf500 → 124251 = C(499,2)).
	for _, n := range []int{10, 20, 50} {
		st := store.New()
		stats, err := New(st, rules.RhoDF(), SemiNaive).Materialize(context.Background(), chain(n))
		if err != nil {
			t.Fatal(err)
		}
		m := n - 1 // explicit subClassOf edges
		want := int64(m*(m-1)) / 2
		if stats.Inferred != want {
			t.Errorf("chain(%d): inferred %d, want %d", n, stats.Inferred, want)
		}
	}
}

func TestRDFSChainAddsSchemaTriples(t *testing.T) {
	st := store.New()
	_, err := New(st, rules.RDFS(), SemiNaive).Materialize(context.Background(), chain(10))
	if err != nil {
		t.Fatal(err)
	}
	// rdfs10: every class is a subclass of itself.
	if !st.Contains(sc(rdf.FirstCustomID, rdf.FirstCustomID)) {
		t.Error("rdfs10 output missing")
	}
	// rdfs8: every class is a subclass of Resource.
	if !st.Contains(sc(rdf.FirstCustomID, rdf.IDResource)) {
		t.Error("rdfs8 output missing")
	}
	// rdfs4: subjects are typed Resource.
	if !st.Contains(ty(rdf.FirstCustomID, rdf.IDResource)) {
		t.Error("rdfs4 output missing")
	}
}

func TestMaterializeIdempotent(t *testing.T) {
	st := store.New()
	r := New(st, rules.RhoDF(), SemiNaive)
	input := chain(15)
	if _, err := r.Materialize(context.Background(), input); err != nil {
		t.Fatal(err)
	}
	size := st.Len()
	stats, err := r.Materialize(context.Background(), input)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != size {
		t.Fatalf("re-materialisation grew the store: %d -> %d", size, st.Len())
	}
	if stats.Inferred != 0 {
		t.Fatalf("re-materialisation inferred %d new triples", stats.Inferred)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := store.New()
	_, err := New(st, rules.RhoDF(), Naive).Materialize(ctx, chain(100))
	if err == nil {
		t.Fatal("cancelled context did not abort materialisation")
	}
}

func TestEmptyInput(t *testing.T) {
	st := store.New()
	stats, err := New(st, rules.RhoDF(), Naive).Materialize(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 || stats.Inferred != 0 || st.Len() != 0 {
		t.Fatalf("empty input produced %+v with %d triples", stats, st.Len())
	}
}

func TestClosureHelper(t *testing.T) {
	st, stats, err := Closure(context.Background(), rules.RhoDF(), []rdf.Triple{sc(a, b), sc(b, c)})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Contains(sc(a, c)) || stats.Inferred != 1 {
		t.Fatalf("Closure helper wrong: %+v", stats)
	}
}

func TestStrategyString(t *testing.T) {
	if Naive.String() != "naive" || SemiNaive.String() != "semi-naive" {
		t.Fatal("Strategy.String mismatch")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy should still render")
	}
}

func TestDomainRangeInteraction(t *testing.T) {
	// dom/rng + sp propagation end to end through the batch engine.
	dom := func(s, o rdf.ID) rdf.Triple { return rdf.T(s, rdf.IDDomain, o) }
	sp := func(s, o rdf.ID) rdf.Triple { return rdf.T(s, rdf.IDSubPropertyOf, o) }
	input := []rdf.Triple{
		dom(p2, c),      // p2 has domain c
		sp(p1, p2),      // p1 sp p2
		rdf.T(x, p1, y), // assertion via subproperty
	}
	st := store.New()
	if _, err := New(st, rules.RhoDF(), SemiNaive).Materialize(context.Background(), input); err != nil {
		t.Fatal(err)
	}
	for _, want := range []rdf.Triple{
		rdf.T(x, p2, y), // prp-spo1
		dom(p1, c),      // scm-dom2
		ty(x, c),        // prp-dom (via either path)
	} {
		if !st.Contains(want) {
			t.Errorf("closure missing %v", want)
		}
	}
}
