package rdf

// Namespace prefixes for the vocabularies the reasoner knows about.
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"
	OWLNS  = "http://www.w3.org/2002/07/owl#"
)

// Well-known IRI strings used by the ρdf and RDFS rulesets.
const (
	IRIType                    = RDFNS + "type"
	IRIProperty                = RDFNS + "Property"
	IRIXMLLiteral              = RDFNS + "XMLLiteral"
	IRIStatement               = RDFNS + "Statement"
	IRISubClassOf              = RDFSNS + "subClassOf"
	IRISubPropertyOf           = RDFSNS + "subPropertyOf"
	IRIDomain                  = RDFSNS + "domain"
	IRIRange                   = RDFSNS + "range"
	IRIResource                = RDFSNS + "Resource"
	IRIClass                   = RDFSNS + "Class"
	IRILiteral                 = RDFSNS + "Literal"
	IRIDatatype                = RDFSNS + "Datatype"
	IRIContainerMembershipProp = RDFSNS + "ContainerMembershipProperty"
	IRIMember                  = RDFSNS + "member"
	IRILabel                   = RDFSNS + "label"
	IRIComment                 = RDFSNS + "comment"
	IRISeeAlso                 = RDFSNS + "seeAlso"
	IRIIsDefinedBy             = RDFSNS + "isDefinedBy"
	IRIXSDString               = XSDNS + "string"
	IRIXSDInteger              = XSDNS + "integer"

	// OWL vocabulary for the OWL-Horst-style extension fragment.
	IRISameAs             = OWLNS + "sameAs"
	IRIEquivalentClass    = OWLNS + "equivalentClass"
	IRIEquivalentProperty = OWLNS + "equivalentProperty"
	IRIInverseOf          = OWLNS + "inverseOf"
	IRISymmetricProperty  = OWLNS + "SymmetricProperty"
	IRITransitiveProperty = OWLNS + "TransitiveProperty"
)

// Pre-assigned IDs for the well-known vocabulary. Every Dictionary
// registers these terms first, in this exact order, so rule
// implementations can compare predicate IDs against the constants
// directly without a dictionary in hand.
const (
	IDType ID = iota + 1
	IDProperty
	IDXMLLiteral
	IDStatement
	IDSubClassOf
	IDSubPropertyOf
	IDDomain
	IDRange
	IDResource
	IDClass
	IDLiteralClass // rdfs:Literal (the class, not a literal term)
	IDDatatype
	IDContainerMembershipProp
	IDMember
	IDLabel
	IDComment
	IDSeeAlso
	IDIsDefinedBy
	IDXSDString
	IDXSDInteger
	IDSameAs
	IDEquivalentClass
	IDEquivalentProperty
	IDInverseOf
	IDSymmetricProperty
	IDTransitiveProperty

	// FirstCustomID is the first ID handed out to user terms.
	FirstCustomID
)

// wellKnown lists the vocabulary terms in ID order (index i holds the term
// for ID i+1). NewDictionary seeds itself from this table.
var wellKnown = []Term{
	NewIRI(IRIType),
	NewIRI(IRIProperty),
	NewIRI(IRIXMLLiteral),
	NewIRI(IRIStatement),
	NewIRI(IRISubClassOf),
	NewIRI(IRISubPropertyOf),
	NewIRI(IRIDomain),
	NewIRI(IRIRange),
	NewIRI(IRIResource),
	NewIRI(IRIClass),
	NewIRI(IRILiteral),
	NewIRI(IRIDatatype),
	NewIRI(IRIContainerMembershipProp),
	NewIRI(IRIMember),
	NewIRI(IRILabel),
	NewIRI(IRIComment),
	NewIRI(IRISeeAlso),
	NewIRI(IRIIsDefinedBy),
	NewIRI(IRIXSDString),
	NewIRI(IRIXSDInteger),
	NewIRI(IRISameAs),
	NewIRI(IRIEquivalentClass),
	NewIRI(IRIEquivalentProperty),
	NewIRI(IRIInverseOf),
	NewIRI(IRISymmetricProperty),
	NewIRI(IRITransitiveProperty),
}
