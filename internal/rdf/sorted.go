package rdf

// Sorted ID-slice primitives shared by the store's run-based indexes,
// the rules' backward join probes and the query executor's join
// intersection. All functions require their inputs ascending and
// duplicate-free — exactly what the store's sorted-run probes return.

// gallopFrom returns the smallest index i >= lo with b[i] >= x, using
// exponential (galloping) probing from lo followed by a binary search of
// the overshot range. Cost is O(log d) where d is the distance advanced,
// so an intersection of a small list against a huge one pays for the
// small list, not the huge one.
func gallopFrom(b []ID, lo int, x ID) int {
	if lo >= len(b) || b[lo] >= x {
		return lo
	}
	// b[lo] < x: gallop until the step overshoots.
	i, step := lo, 1
	for i+step < len(b) && b[i+step] < x {
		i += step
		step <<= 1
	}
	hi := i + step
	if hi > len(b) {
		hi = len(b)
	}
	// Invariant: b[i] < x, and (hi == len(b) or b[hi] >= x). Binary
	// search (i, hi] for the boundary.
	lo = i + 1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// IntersectSortedAppend appends a ∩ b to dst and returns the extended
// slice. a and b must be ascending and duplicate-free; the appended
// segment is too. The smaller list drives, galloping through the larger,
// so the cost is O(min·log(max/min)) instead of O(min + max).
func IntersectSortedAppend(dst, a, b []ID) []ID {
	if len(a) > len(b) {
		a, b = b, a
	}
	j := 0
	for _, x := range a {
		j = gallopFrom(b, j, x)
		if j >= len(b) {
			break
		}
		if b[j] == x {
			dst = append(dst, x)
			j++
		}
	}
	return dst
}

// HasCommonSorted reports whether ascending, duplicate-free a and b
// share at least one element — the early-exit face of
// IntersectSortedAppend, used by the rules' backward support probes
// (∃-questions never need the full intersection).
func HasCommonSorted(a, b []ID) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	j := 0
	for _, x := range a {
		j = gallopFrom(b, j, x)
		if j >= len(b) {
			return false
		}
		if b[j] == x {
			return true
		}
	}
	return false
}
