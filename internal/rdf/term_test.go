package rdf

import (
	"strings"
	"testing"
)

func TestTermConstructorsAndPredicates(t *testing.T) {
	iri := NewIRI("http://example.org/a")
	if !iri.IsIRI() || iri.IsBlank() || iri.IsLiteral() {
		t.Fatalf("IRI kind predicates wrong: %+v", iri)
	}
	b := NewBlank("b0")
	if !b.IsBlank() || b.IsIRI() || b.IsLiteral() {
		t.Fatalf("blank kind predicates wrong: %+v", b)
	}
	l := NewLiteral("hello")
	if !l.IsLiteral() || l.IsIRI() || l.IsBlank() {
		t.Fatalf("literal kind predicates wrong: %+v", l)
	}
}

func TestTermStringCanonicalForms(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://example.org/a"), "<http://example.org/a>"},
		{NewBlank("b0"), "_:b0"},
		{NewLiteral("hello"), `"hello"`},
		{NewLangLiteral("bonjour", "fr"), `"bonjour"@fr`},
		{NewTypedLiteral("42", IRIXSDInteger), `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewLiteral(`say "hi"`), `"say \"hi\""`},
		{NewLiteral("a\\b"), `"a\\b"`},
		{NewLiteral("line1\nline2"), `"line1\nline2"`},
		{NewLiteral("tab\there"), `"tab\there"`},
		{NewLiteral("cr\rend"), `"cr\rend"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermStringIsInjectiveAcrossKinds(t *testing.T) {
	// The canonical string doubles as the dictionary key, so terms of
	// different kinds with the same Value must render differently.
	terms := []Term{
		NewIRI("x"),
		NewBlank("x"),
		NewLiteral("x"),
		NewLangLiteral("x", "en"),
		NewTypedLiteral("x", "http://example.org/dt"),
	}
	seen := make(map[string]Term)
	for _, term := range terms {
		key := term.String()
		if prev, dup := seen[key]; dup {
			t.Fatalf("terms %+v and %+v share canonical string %q", prev, term, key)
		}
		seen[key] = term
	}
}

func TestTermIsZero(t *testing.T) {
	var zero Term
	if !zero.IsZero() {
		t.Fatal("zero Term not reported as zero")
	}
	if NewIRI("a").IsZero() {
		t.Fatal("non-zero term reported as zero")
	}
}

func TestTermKindString(t *testing.T) {
	if TermIRI.String() != "iri" || TermBlank.String() != "blank" || TermLiteral.String() != "literal" {
		t.Fatal("TermKind.String mismatch")
	}
	if !strings.Contains(TermKind(9).String(), "9") {
		t.Fatal("unknown kind should include numeric value")
	}
}

func TestStatementString(t *testing.T) {
	st := NewStatement(NewIRI("http://e/s"), NewIRI("http://e/p"), NewLiteral("o"))
	want := `<http://e/s> <http://e/p> "o" .`
	if got := st.String(); got != want {
		t.Fatalf("Statement.String() = %q, want %q", got, want)
	}
}

func TestStatementValid(t *testing.T) {
	iri := NewIRI("http://e/x")
	cases := []struct {
		st   Statement
		want bool
	}{
		{NewStatement(iri, iri, iri), true},
		{NewStatement(NewBlank("b"), iri, NewLiteral("v")), true},
		{NewStatement(NewLiteral("bad"), iri, iri), false}, // literal subject
		{NewStatement(iri, NewBlank("b"), iri), false},     // blank predicate
		{NewStatement(iri, NewLiteral("p"), iri), false},   // literal predicate
		{NewStatement(Term{}, iri, iri), false},            // zero subject
		{NewStatement(iri, iri, Term{}), false},            // zero object
		{Statement{}, false},                               // all zero
	}
	for i, c := range cases {
		if got := c.st.Valid(); got != c.want {
			t.Errorf("case %d: Valid() = %v, want %v (%v)", i, got, c.want, c.st)
		}
	}
}

func TestTripleMatches(t *testing.T) {
	tr := T(10, 20, 30)
	cases := []struct {
		pattern Triple
		want    bool
	}{
		{T(Any, Any, Any), true},
		{T(10, Any, Any), true},
		{T(Any, 20, Any), true},
		{T(Any, Any, 30), true},
		{T(10, 20, 30), true},
		{T(11, Any, Any), false},
		{T(Any, 21, Any), false},
		{T(Any, Any, 31), false},
		{T(10, 20, 31), false},
	}
	for i, c := range cases {
		if got := tr.Matches(c.pattern); got != c.want {
			t.Errorf("case %d: Matches(%v) = %v, want %v", i, c.pattern, got, c.want)
		}
	}
}

func TestIDKindBits(t *testing.T) {
	iri := makeID(TermIRI, 5)
	blank := makeID(TermBlank, 5)
	lit := makeID(TermLiteral, 5)
	if iri.Kind() != TermIRI || blank.Kind() != TermBlank || lit.Kind() != TermLiteral {
		t.Fatalf("kind round-trip failed: %v %v %v", iri.Kind(), blank.Kind(), lit.Kind())
	}
	if iri == blank || blank == lit || iri == lit {
		t.Fatal("IDs of different kinds with equal seq must differ")
	}
	if !lit.IsLiteral() || iri.IsLiteral() || blank.IsLiteral() {
		t.Fatal("IsLiteral misreported")
	}
	if iri.seq() != 5 || blank.seq() != 5 || lit.seq() != 5 {
		t.Fatal("seq extraction failed")
	}
	if !Any.IsAny() || iri.IsAny() {
		t.Fatal("IsAny misreported")
	}
}

func TestTripleValid(t *testing.T) {
	s := makeID(TermIRI, 100)
	p := makeID(TermIRI, 101)
	o := makeID(TermLiteral, 1)
	if !T(s, p, o).Valid() {
		t.Fatal("valid triple reported invalid")
	}
	if T(o, p, s).Valid() {
		t.Fatal("literal subject accepted")
	}
	if T(s, o, s).Valid() {
		t.Fatal("literal predicate accepted")
	}
	if T(s, makeID(TermBlank, 1), o).Valid() {
		t.Fatal("blank predicate accepted")
	}
	if T(Any, p, o).Valid() || T(s, Any, o).Valid() || T(s, p, Any).Valid() {
		t.Fatal("wildcard component accepted")
	}
}
