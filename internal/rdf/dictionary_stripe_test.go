package rdf

import (
	"fmt"
	"sync"
	"testing"
)

// TestDictionaryStripedConcurrentStress hammers the striped dictionary
// with parallel Encode/Lookup/Term/ForEach/Len. Run with -race.
func TestDictionaryStripedConcurrentStress(t *testing.T) {
	d := NewDictionary()
	const goroutines = 8
	const terms = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < terms; i++ {
				// Every goroutine encodes the same term set, so stripes
				// see heavy hit-path traffic plus racing first inserts.
				iri := NewIRI(fmt.Sprintf("http://example.org/r%d", i))
				lit := NewLangLiteral(fmt.Sprintf("label %d", i), "en")
				blank := NewBlank(fmt.Sprintf("b%d", i))
				id := d.Encode(iri)
				d.Encode(lit)
				d.Encode(blank)
				if got, ok := d.Lookup(iri); !ok || got != id {
					t.Errorf("Lookup(%v) = (%d,%v), want (%d,true)", iri, got, ok, id)
					return
				}
				if term, ok := d.Term(id); !ok || term != iri {
					t.Errorf("Term(%d) = (%v,%v), want %v", id, term, ok, iri)
					return
				}
				if g == 0 && i%50 == 0 {
					seen := 0
					d.ForEach(func(ID, Term) bool { seen++; return true })
					if seen > d.Len() {
						t.Errorf("ForEach visited %d terms, Len() = %d", seen, d.Len())
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Every goroutine encoded the same terms: exactly terms×3 beyond the
	// well-known vocabulary.
	base := NewDictionary().Len()
	if got := d.Len(); got != base+terms*3 {
		t.Fatalf("Len = %d, want %d (duplicate IDs assigned under contention?)", got, base+terms*3)
	}

	// All IDs must be distinct and resolvable.
	seen := make(map[ID]Term)
	d.ForEach(func(id ID, term Term) bool {
		if prev, dup := seen[id]; dup {
			t.Fatalf("ID %d assigned to both %v and %v", id, prev, term)
		}
		seen[id] = term
		if got, ok := d.Lookup(term); !ok || got != id {
			t.Fatalf("Lookup(%v) = (%d,%v), want (%d,true)", term, got, ok, id)
		}
		return true
	})
	if len(seen) != d.Len() {
		t.Fatalf("ForEach visited %d terms, Len() = %d", len(seen), d.Len())
	}
}

// TestDictionaryForEachOrderReproducesIDs is the determinism property
// snapshot persistence relies on: re-encoding the terms of ForEach, in
// ForEach order, into a fresh dictionary must reproduce every ID exactly
// — even when the source dictionary was populated concurrently.
func TestDictionaryForEachOrderReproducesIDs(t *testing.T) {
	src := NewDictionary()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				src.Encode(NewIRI(fmt.Sprintf("http://example.org/g%d/i%d", g, i)))
				src.Encode(NewTypedLiteral(fmt.Sprintf("%d", i*g), "http://www.w3.org/2001/XMLSchema#integer"))
			}
		}(g)
	}
	wg.Wait()

	reload := NewDictionary()
	src.ForEach(func(want ID, term Term) bool {
		if got := reload.Encode(term); got != want {
			t.Fatalf("re-encoding %v in ForEach order gave ID %d, want %d", term, got, want)
		}
		return true
	})
	if reload.Len() != src.Len() {
		t.Fatalf("reload has %d terms, source %d", reload.Len(), src.Len())
	}
}

// TestDictionaryStringEqualityContract pins the documented contract:
// terms with equal String renderings get the same ID, even for hand-built
// Term structs the constructors would never produce (e.g. a literal with
// both Lang and Datatype set, which String renders with the Lang only).
func TestDictionaryStringEqualityContract(t *testing.T) {
	d := NewDictionary()
	weird := Term{Kind: TermLiteral, Value: "x", Lang: "en", Datatype: "http://www.w3.org/2001/XMLSchema#string"}
	clean := NewLangLiteral("x", "en")
	if weird.String() != clean.String() {
		t.Fatalf("precondition: %q != %q", weird.String(), clean.String())
	}
	id := d.Encode(weird)
	if got := d.Encode(clean); got != id {
		t.Fatalf("String-equal terms got different IDs: %d vs %d", id, got)
	}
	if got, ok := d.Lookup(weird); !ok || got != id {
		t.Fatalf("Lookup(weird) = (%d,%v), want (%d,true)", got, ok, id)
	}
	weirdIRI := Term{Kind: TermIRI, Value: "http://e/a", Lang: "en"}
	idIRI := d.Encode(NewIRI("http://e/a"))
	if got := d.Encode(weirdIRI); got != idIRI {
		t.Fatalf("String-equal IRIs got different IDs: %d vs %d", idIRI, got)
	}
}

// TestDictionaryNoStringKeyOnHitPath pins down that the hit path does
// not build the term's canonical string: an Encode of an already-known
// term must not allocate proportionally to the term's value.
func TestDictionaryNoStringKeyOnHitPath(t *testing.T) {
	d := NewDictionary()
	long := NewIRI("http://example.org/a-very-long-iri-that-would-cost-an-allocation-to-stringify/abcdefghijklmnopqrstuvwxyz")
	d.Encode(long)
	allocs := testing.AllocsPerRun(100, func() {
		d.Encode(long)
	})
	if allocs != 0 {
		t.Fatalf("Encode hit path allocates %.1f times per call, want 0", allocs)
	}
}

func BenchmarkEncodeHit(b *testing.B) {
	d := NewDictionary()
	term := NewIRI("http://example.org/products/widget-0001")
	d.Encode(term)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Encode(term)
	}
}

func BenchmarkEncodeHitParallel(b *testing.B) {
	d := NewDictionary()
	terms := make([]Term, 64)
	for i := range terms {
		terms[i] = NewIRI(fmt.Sprintf("http://example.org/products/widget-%04d", i))
		d.Encode(terms[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			d.Encode(terms[i&63])
			i++
		}
	})
}
