package rdf

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestDictionaryWellKnownIDs(t *testing.T) {
	d := NewDictionary()
	cases := []struct {
		iri  string
		want ID
	}{
		{IRIType, IDType},
		{IRIProperty, IDProperty},
		{IRIXMLLiteral, IDXMLLiteral},
		{IRIStatement, IDStatement},
		{IRISubClassOf, IDSubClassOf},
		{IRISubPropertyOf, IDSubPropertyOf},
		{IRIDomain, IDDomain},
		{IRIRange, IDRange},
		{IRIResource, IDResource},
		{IRIClass, IDClass},
		{IRILiteral, IDLiteralClass},
		{IRIDatatype, IDDatatype},
		{IRIContainerMembershipProp, IDContainerMembershipProp},
		{IRIMember, IDMember},
		{IRILabel, IDLabel},
		{IRIComment, IDComment},
		{IRISeeAlso, IDSeeAlso},
		{IRIIsDefinedBy, IDIsDefinedBy},
		{IRIXSDString, IDXSDString},
		{IRIXSDInteger, IDXSDInteger},
	}
	for _, c := range cases {
		if got := d.EncodeIRI(c.iri); got != c.want {
			t.Errorf("EncodeIRI(%s) = %d, want %d", c.iri, got, c.want)
		}
	}
	if d.Len() != len(wellKnown) {
		t.Fatalf("Len() = %d after only well-known terms, want %d", d.Len(), len(wellKnown))
	}
	if first := d.EncodeIRI("http://example.org/custom"); first != FirstCustomID {
		t.Fatalf("first custom ID = %d, want %d", first, FirstCustomID)
	}
}

func TestDictionaryEncodeIsStable(t *testing.T) {
	d := NewDictionary()
	a := d.Encode(NewIRI("http://e/a"))
	b := d.Encode(NewIRI("http://e/b"))
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if again := d.Encode(NewIRI("http://e/a")); again != a {
		t.Fatalf("re-encoding changed ID: %d vs %d", again, a)
	}
}

func TestDictionaryKindsDoNotCollide(t *testing.T) {
	d := NewDictionary()
	iri := d.Encode(NewIRI("x"))
	blank := d.Encode(NewBlank("x"))
	lit := d.Encode(NewLiteral("x"))
	if iri == blank || blank == lit || iri == lit {
		t.Fatalf("IDs collide across kinds: %d %d %d", iri, blank, lit)
	}
	if iri.Kind() != TermIRI || blank.Kind() != TermBlank || lit.Kind() != TermLiteral {
		t.Fatal("kind bits wrong")
	}
}

func TestDictionaryLookupDoesNotInsert(t *testing.T) {
	d := NewDictionary()
	if _, ok := d.Lookup(NewIRI("http://e/absent")); ok {
		t.Fatal("Lookup found an absent term")
	}
	if d.Len() != len(wellKnown) {
		t.Fatal("Lookup inserted a term")
	}
	id := d.Encode(NewIRI("http://e/present"))
	got, ok := d.Lookup(NewIRI("http://e/present"))
	if !ok || got != id {
		t.Fatalf("Lookup after Encode = (%d,%v), want (%d,true)", got, ok, id)
	}
}

func TestDictionaryTermRoundTrip(t *testing.T) {
	d := NewDictionary()
	terms := []Term{
		NewIRI("http://e/a"),
		NewBlank("node1"),
		NewLiteral("plain"),
		NewLangLiteral("hello", "en"),
		NewTypedLiteral("1", IRIXSDInteger),
	}
	for _, term := range terms {
		id := d.Encode(term)
		back, ok := d.Term(id)
		if !ok {
			t.Fatalf("Term(%d) not found for %v", id, term)
		}
		if back != term {
			t.Fatalf("round trip changed term: %+v -> %+v", term, back)
		}
	}
}

func TestDictionaryTermUnknown(t *testing.T) {
	d := NewDictionary()
	if _, ok := d.Term(Any); ok {
		t.Fatal("Term(Any) should not resolve")
	}
	if _, ok := d.Term(makeID(TermIRI, 1<<40)); ok {
		t.Fatal("out-of-range IRI ID should not resolve")
	}
	if _, ok := d.Term(makeID(TermLiteral, 1)); ok {
		t.Fatal("literal ID with empty pool should not resolve")
	}
}

func TestDictionaryEncodeStatementDecodeTriple(t *testing.T) {
	d := NewDictionary()
	st := NewStatement(NewIRI("http://e/s"), NewIRI(IRIType), NewIRI("http://e/C"))
	tr := d.EncodeStatement(st)
	if tr.P != IDType {
		t.Fatalf("predicate should reuse well-known ID, got %d", tr.P)
	}
	back, ok := d.DecodeTriple(tr)
	if !ok || back != st {
		t.Fatalf("DecodeTriple = (%v,%v), want (%v,true)", back, ok, st)
	}
	if _, ok := d.DecodeTriple(T(tr.S, tr.P, makeID(TermIRI, 1<<40))); ok {
		t.Fatal("DecodeTriple with unknown component should report !ok")
	}
}

func TestDictionaryFormat(t *testing.T) {
	d := NewDictionary()
	tr := d.EncodeStatement(NewStatement(NewIRI("http://e/s"), NewIRI(IRIType), NewLiteral("v")))
	out := d.Format(tr)
	for _, want := range []string{"<http://e/s>", "<" + IRIType + ">", `"v"`} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output %q missing %q", out, want)
		}
	}
	unknown := d.Format(T(makeID(TermIRI, 1<<40), IDType, IDClass))
	if !strings.Contains(unknown, "?") {
		t.Errorf("Format of unknown ID should fall back to ?id, got %q", unknown)
	}
}

// Property: encoding any sequence of terms and decoding the resulting IDs
// reproduces the original terms, and equal terms always map to equal IDs.
func TestDictionaryRoundTripProperty(t *testing.T) {
	gen := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDictionary()
		ids := make(map[string]ID)
		for i := 0; i < int(n)+1; i++ {
			var term Term
			switch rng.Intn(4) {
			case 0:
				term = NewIRI(fmt.Sprintf("http://e/%d", rng.Intn(20)))
			case 1:
				term = NewBlank(fmt.Sprintf("b%d", rng.Intn(20)))
			case 2:
				term = NewLiteral(fmt.Sprintf("lit%d", rng.Intn(20)))
			default:
				term = NewLangLiteral(fmt.Sprintf("lit%d", rng.Intn(20)), "en")
			}
			id := d.Encode(term)
			if prev, seen := ids[term.String()]; seen && prev != id {
				return false
			}
			ids[term.String()] = id
			back, ok := d.Term(id)
			if !ok || back != term {
				return false
			}
		}
		return true
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDictionaryConcurrentEncode(t *testing.T) {
	d := NewDictionary()
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	results := make([][]ID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]ID, perG)
			for i := 0; i < perG; i++ {
				// All goroutines encode the same term set; IDs must agree.
				results[g][i] = d.Encode(NewIRI(fmt.Sprintf("http://e/%d", i)))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d got different ID for term %d", g, i)
			}
		}
	}
	if d.Len() != len(wellKnown)+perG {
		t.Fatalf("Len() = %d, want %d", d.Len(), len(wellKnown)+perG)
	}
}

func TestKindCountsAndForEachNew(t *testing.T) {
	d := NewDictionary()
	iris0, blanks0, lits0 := d.KindCounts()
	if iris0 == 0 {
		t.Fatal("well-known vocabulary missing from KindCounts")
	}
	// Nothing new yet.
	d.ForEachNew(iris0, blanks0, lits0, func(ID, Term) bool {
		t.Fatal("ForEachNew visited a term before anything was added")
		return false
	})

	ids := []ID{
		d.Encode(NewIRI("http://example.org/a")),
		d.Encode(NewBlank("b1")),
		d.Encode(NewLiteral("hello")),
		d.Encode(NewIRI("http://example.org/b")),
	}
	var gotIDs []ID
	d.ForEachNew(iris0, blanks0, lits0, func(id ID, term Term) bool {
		gotIDs = append(gotIDs, id)
		// The reported ID must be the one Encode assigned.
		if again := d.Encode(term); again != id {
			t.Fatalf("ForEachNew reported ID %d for %v, Encode says %d", id, term, again)
		}
		return true
	})
	if len(gotIDs) != len(ids) {
		t.Fatalf("ForEachNew visited %d terms, want %d", len(gotIDs), len(ids))
	}
	// Replaying the delta into a fresh dictionary in visit order must
	// reproduce identical IDs — the property WAL replay relies on.
	fresh := NewDictionary()
	d.ForEachNew(iris0, blanks0, lits0, func(id ID, term Term) bool {
		if got := fresh.Encode(term); got != id {
			t.Fatalf("replaying delta: %v got ID %d, want %d", term, got, id)
		}
		return true
	})
	iris1, blanks1, lits1 := d.KindCounts()
	if iris1 != iris0+2 || blanks1 != blanks0+1 || lits1 != lits0+1 {
		t.Fatalf("KindCounts after adds: %d %d %d (was %d %d %d)",
			iris1, blanks1, lits1, iris0, blanks0, lits0)
	}
	// Marks beyond the current counts are tolerated (concurrent loggers
	// may have raced ahead): no visits, no panic.
	d.ForEachNew(iris1+5, blanks1+5, lits1+5, func(ID, Term) bool {
		t.Fatal("ForEachNew visited with high-water marks beyond the dictionary")
		return false
	})
}
