package rdf

import "testing"

func TestWellKnownTableIsConsistent(t *testing.T) {
	if len(wellKnown) != int(FirstCustomID)-1 {
		t.Fatalf("wellKnown has %d entries, FirstCustomID is %d", len(wellKnown), FirstCustomID)
	}
	// Every well-known term is an IRI (so IDs equal their index + 1).
	for i, term := range wellKnown {
		if !term.IsIRI() {
			t.Fatalf("well-known term %d (%v) is not an IRI", i, term)
		}
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, term := range wellKnown {
		if seen[term.Value] {
			t.Fatalf("duplicate well-known IRI %s", term.Value)
		}
		seen[term.Value] = true
	}
}

func TestOWLVocabularyIDs(t *testing.T) {
	d := NewDictionary()
	cases := []struct {
		iri  string
		want ID
	}{
		{IRISameAs, IDSameAs},
		{IRIEquivalentClass, IDEquivalentClass},
		{IRIEquivalentProperty, IDEquivalentProperty},
		{IRIInverseOf, IDInverseOf},
		{IRISymmetricProperty, IDSymmetricProperty},
		{IRITransitiveProperty, IDTransitiveProperty},
	}
	for _, c := range cases {
		if got := d.EncodeIRI(c.iri); got != c.want {
			t.Errorf("EncodeIRI(%s) = %d, want %d", c.iri, got, c.want)
		}
	}
}

func TestNamespaceConstants(t *testing.T) {
	for _, ns := range []string{RDFNS, RDFSNS, XSDNS, OWLNS} {
		if ns == "" || ns[len(ns)-1] != '#' {
			t.Errorf("namespace %q should end in #", ns)
		}
	}
}

func TestDictionaryForEachOrderSupportsReencoding(t *testing.T) {
	d := NewDictionary()
	d.Encode(NewIRI("http://e/x"))
	d.Encode(NewLiteral("lit"))
	d.Encode(NewBlank("b"))
	d.Encode(NewIRI("http://e/y"))

	fresh := NewDictionary()
	count := 0
	d.ForEach(func(id ID, term Term) bool {
		count++
		if got := fresh.Encode(term); got != id {
			t.Fatalf("re-encoding %v gave %d, want %d", term, got, id)
		}
		return true
	})
	if count != d.Len() {
		t.Fatalf("ForEach visited %d of %d", count, d.Len())
	}
	// Early stop.
	n := 0
	d.ForEach(func(ID, Term) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}
