package rdf

import (
	"fmt"
	"sync"
)

// Dictionary maps RDF terms to dense integer IDs and back. It plays the
// role of Slider's input-manager dictionary: "expensive URIs" are
// registered once and every downstream component works on integers.
//
// A Dictionary is safe for concurrent use by multiple goroutines; lookups
// take a read lock and only the first encounter of a term takes the write
// lock.
type Dictionary struct {
	mu     sync.RWMutex
	byTerm map[string]ID
	// byKind holds the reverse mapping, one slice per term kind, indexed
	// by sequence number minus one.
	iris     []Term
	blanks   []Term
	literals []Term
}

// NewDictionary returns a dictionary pre-seeded with the well-known RDF
// and RDFS vocabulary so that the IDType, IDSubClassOf, … constants are
// valid for every dictionary.
func NewDictionary() *Dictionary {
	d := &Dictionary{
		byTerm: make(map[string]ID, 1024),
		iris:   make([]Term, 0, 1024),
	}
	for _, t := range wellKnown {
		d.Encode(t)
	}
	return d
}

// Encode returns the ID for the term, assigning a fresh one on first
// encounter.
func (d *Dictionary) Encode(t Term) ID {
	key := t.String()
	d.mu.RLock()
	id, ok := d.byTerm[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.byTerm[key]; ok {
		return id
	}
	var seq uint64
	switch t.Kind {
	case TermIRI:
		d.iris = append(d.iris, t)
		seq = uint64(len(d.iris))
	case TermBlank:
		d.blanks = append(d.blanks, t)
		seq = uint64(len(d.blanks))
	case TermLiteral:
		d.literals = append(d.literals, t)
		seq = uint64(len(d.literals))
	}
	id = makeID(t.Kind, seq)
	d.byTerm[key] = id
	return id
}

// EncodeIRI is shorthand for Encode(NewIRI(iri)).
func (d *Dictionary) EncodeIRI(iri string) ID { return d.Encode(NewIRI(iri)) }

// Lookup returns the ID for the term without assigning a new one.
func (d *Dictionary) Lookup(t Term) (ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byTerm[t.String()]
	return id, ok
}

// Term returns the term for an ID.
func (d *Dictionary) Term(id ID) (Term, bool) {
	if id == Any {
		return Term{}, false
	}
	seq := id.seq()
	if seq == 0 {
		return Term{}, false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	var pool []Term
	switch id.Kind() {
	case TermIRI:
		pool = d.iris
	case TermBlank:
		pool = d.blanks
	case TermLiteral:
		pool = d.literals
	}
	if seq > uint64(len(pool)) {
		return Term{}, false
	}
	return pool[seq-1], true
}

// Len returns the number of distinct terms registered (including the
// well-known vocabulary).
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.iris) + len(d.blanks) + len(d.literals)
}

// ForEach calls f for every registered term (including the well-known
// vocabulary) until f returns false. Iteration is in sequence order
// within each kind (IRIs, then blanks, then literals), so re-encoding the
// terms into a fresh dictionary in this order reproduces identical IDs —
// the property snapshot persistence relies on.
func (d *Dictionary) ForEach(f func(ID, Term) bool) {
	d.mu.RLock()
	iris := d.iris
	blanks := d.blanks
	literals := d.literals
	d.mu.RUnlock()
	for i, t := range iris {
		if !f(makeID(TermIRI, uint64(i+1)), t) {
			return
		}
	}
	for i, t := range blanks {
		if !f(makeID(TermBlank, uint64(i+1)), t) {
			return
		}
	}
	for i, t := range literals {
		if !f(makeID(TermLiteral, uint64(i+1)), t) {
			return
		}
	}
}

// EncodeStatement encodes all three terms of a statement.
func (d *Dictionary) EncodeStatement(s Statement) Triple {
	return Triple{S: d.Encode(s.S), P: d.Encode(s.P), O: d.Encode(s.O)}
}

// DecodeTriple resolves all three IDs of a triple. It reports ok=false if
// any component is unknown.
func (d *Dictionary) DecodeTriple(t Triple) (Statement, bool) {
	s, ok1 := d.Term(t.S)
	p, ok2 := d.Term(t.P)
	o, ok3 := d.Term(t.O)
	return Statement{S: s, P: p, O: o}, ok1 && ok2 && ok3
}

// Format renders a triple using the dictionary, falling back to raw IDs
// for unknown components. Intended for logs and error messages.
func (d *Dictionary) Format(t Triple) string {
	part := func(id ID) string {
		if term, ok := d.Term(id); ok {
			return term.String()
		}
		return fmt.Sprintf("?%d", uint64(id))
	}
	return part(t.S) + " " + part(t.P) + " " + part(t.O) + " ."
}
