package rdf

import (
	"fmt"
	"hash/maphash"
	"sync"
)

// dictStripes is the number of lock stripes the term→ID map is sharded
// across. Must be a power of two.
const dictStripes = 32

// dictStripe is one shard of the term→ID map.
type dictStripe struct {
	mu     sync.RWMutex
	byTerm map[Term]ID
}

// Dictionary maps RDF terms to dense integer IDs and back. It plays the
// role of Slider's input-manager dictionary: "expensive URIs" are
// registered once and every downstream component works on integers.
//
// A Dictionary is safe for concurrent use by multiple goroutines. The
// term→ID direction is sharded across dictStripes lock stripes (selected
// by a hash of the term), so concurrent encoders do not serialize on one
// process-wide lock; the stripe maps are keyed by the Term value itself,
// so the hit path never materialises the term's string form. The reverse
// (ID→Term) slices are guarded by a separate lock: sequence numbers are
// handed out under it in strict per-kind insertion order, which keeps
// ForEach iteration — and therefore snapshot round-trips — deterministic.
//
// Terms are keyed by their canonical form (see canonTerm), so two terms
// are assigned the same ID exactly when their String renderings are
// equal — the same contract the string-keyed dictionary had.
type Dictionary struct {
	stripes [dictStripes]dictStripe
	seed    maphash.Seed

	// seqMu guards the reverse mapping: one append-only slice per term
	// kind, indexed by sequence number minus one.
	seqMu    sync.RWMutex
	iris     []Term
	blanks   []Term
	literals []Term
}

// NewDictionary returns a dictionary pre-seeded with the well-known RDF
// and RDFS vocabulary so that the IDType, IDSubClassOf, … constants are
// valid for every dictionary.
func NewDictionary() *Dictionary {
	d := &Dictionary{
		seed: maphash.MakeSeed(),
		iris: make([]Term, 0, 1024),
	}
	for i := range d.stripes {
		d.stripes[i].byTerm = make(map[Term]ID, 64)
	}
	for _, t := range wellKnown {
		d.Encode(t)
	}
	return d
}

// canonTerm maps t to the representative of its String-equality class,
// so struct keying matches the documented contract that two terms are
// equal exactly when their String values are equal: String ignores Lang
// and Datatype on IRIs and blanks, and ignores Datatype on
// language-tagged literals. The constructors never produce the dropped
// combinations, so for constructor-built terms this is the identity.
func canonTerm(t Term) Term {
	switch {
	case t.Kind != TermLiteral:
		t.Lang, t.Datatype = "", ""
	case t.Lang != "":
		t.Datatype = ""
	}
	return t
}

// stripeFor selects the stripe owning t (already canonicalised).
func (d *Dictionary) stripeFor(t Term) *dictStripe {
	h := maphash.String(d.seed, t.Value)
	h = h*31 + uint64(t.Kind)
	if t.Lang != "" {
		h ^= maphash.String(d.seed, t.Lang)
	}
	if t.Datatype != "" {
		h ^= maphash.String(d.seed, t.Datatype)
	}
	return &d.stripes[h&(dictStripes-1)]
}

// Encode returns the ID for the term, assigning a fresh one on first
// encounter.
func (d *Dictionary) Encode(t Term) ID {
	t = canonTerm(t)
	s := d.stripeFor(t)
	s.mu.RLock()
	id, ok := s.byTerm[t]
	s.mu.RUnlock()
	if ok {
		return id
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok = s.byTerm[t]; ok {
		return id
	}
	d.seqMu.Lock()
	var seq uint64
	switch t.Kind {
	case TermIRI:
		d.iris = append(d.iris, t)
		seq = uint64(len(d.iris))
	case TermBlank:
		d.blanks = append(d.blanks, t)
		seq = uint64(len(d.blanks))
	case TermLiteral:
		d.literals = append(d.literals, t)
		seq = uint64(len(d.literals))
	}
	d.seqMu.Unlock()
	id = makeID(t.Kind, seq)
	s.byTerm[t] = id
	return id
}

// EncodeIRI is shorthand for Encode(NewIRI(iri)).
func (d *Dictionary) EncodeIRI(iri string) ID { return d.Encode(NewIRI(iri)) }

// Lookup returns the ID for the term without assigning a new one.
func (d *Dictionary) Lookup(t Term) (ID, bool) {
	t = canonTerm(t)
	s := d.stripeFor(t)
	s.mu.RLock()
	id, ok := s.byTerm[t]
	s.mu.RUnlock()
	return id, ok
}

// Term returns the term for an ID.
func (d *Dictionary) Term(id ID) (Term, bool) {
	if id == Any {
		return Term{}, false
	}
	seq := id.seq()
	if seq == 0 {
		return Term{}, false
	}
	d.seqMu.RLock()
	defer d.seqMu.RUnlock()
	var pool []Term
	switch id.Kind() {
	case TermIRI:
		pool = d.iris
	case TermBlank:
		pool = d.blanks
	case TermLiteral:
		pool = d.literals
	}
	if seq > uint64(len(pool)) {
		return Term{}, false
	}
	return pool[seq-1], true
}

// Len returns the number of distinct terms registered (including the
// well-known vocabulary).
func (d *Dictionary) Len() int {
	d.seqMu.RLock()
	defer d.seqMu.RUnlock()
	return len(d.iris) + len(d.blanks) + len(d.literals)
}

// ForEach calls f for every registered term (including the well-known
// vocabulary) until f returns false. Iteration is in sequence order
// within each kind (IRIs, then blanks, then literals), so re-encoding the
// terms into a fresh dictionary in this order reproduces identical IDs —
// the property snapshot persistence relies on.
func (d *Dictionary) ForEach(f func(ID, Term) bool) {
	d.seqMu.RLock()
	iris := d.iris
	blanks := d.blanks
	literals := d.literals
	d.seqMu.RUnlock()
	for i, t := range iris {
		if !f(makeID(TermIRI, uint64(i+1)), t) {
			return
		}
	}
	for i, t := range blanks {
		if !f(makeID(TermBlank, uint64(i+1)), t) {
			return
		}
	}
	for i, t := range literals {
		if !f(makeID(TermLiteral, uint64(i+1)), t) {
			return
		}
	}
}

// KindCounts returns the number of terms registered per kind (IRIs,
// blank nodes, literals). Together with ForEachNew it lets an observer —
// the write-ahead log — track which terms appeared since a previous
// high-water mark.
func (d *Dictionary) KindCounts() (iris, blanks, literals int) {
	d.seqMu.RLock()
	defer d.seqMu.RUnlock()
	return len(d.iris), len(d.blanks), len(d.literals)
}

// ForEachNew calls f for every term whose per-kind sequence number
// exceeds the given counts (a previous KindCounts result), in sequence
// order within each kind — the same order ForEach uses, so re-encoding
// the visited terms into a dictionary that already holds the first
// (iris, blanks, literals) terms reproduces identical IDs.
func (d *Dictionary) ForEachNew(iris, blanks, literals int, f func(ID, Term) bool) {
	d.seqMu.RLock()
	irisNew := d.iris[min(iris, len(d.iris)):]
	blanksNew := d.blanks[min(blanks, len(d.blanks)):]
	literalsNew := d.literals[min(literals, len(d.literals)):]
	d.seqMu.RUnlock()
	for i, t := range irisNew {
		if !f(makeID(TermIRI, uint64(iris+i+1)), t) {
			return
		}
	}
	for i, t := range blanksNew {
		if !f(makeID(TermBlank, uint64(blanks+i+1)), t) {
			return
		}
	}
	for i, t := range literalsNew {
		if !f(makeID(TermLiteral, uint64(literals+i+1)), t) {
			return
		}
	}
}

// DictView is a prefix-stable read-only view of a Dictionary: the first
// iris/blanks/literals terms of each kind as they stood when ViewAt was
// called. Because the per-kind sequences are append-only, the view stays
// valid — and keeps returning exactly the same terms and IDs — while the
// dictionary continues to grow concurrently. It is the dictionary half
// of a non-blocking checkpoint: the write-ahead log records how many
// terms of each kind it has persisted, and the checkpoint streams
// precisely that prefix.
type DictView struct {
	iris, blanks, literals []Term
}

// ViewAt returns a view of the first (iris, blanks, literals) terms per
// kind, clamped to what is currently registered.
func (d *Dictionary) ViewAt(iris, blanks, literals int) *DictView {
	d.seqMu.RLock()
	defer d.seqMu.RUnlock()
	return &DictView{
		iris:     d.iris[:min(iris, len(d.iris))],
		blanks:   d.blanks[:min(blanks, len(d.blanks))],
		literals: d.literals[:min(literals, len(d.literals))],
	}
}

// Len returns the number of terms in the view.
func (v *DictView) Len() int {
	return len(v.iris) + len(v.blanks) + len(v.literals)
}

// ForEach calls f for every term in the view until f returns false, in
// the same kind-then-sequence order Dictionary.ForEach uses, so a
// snapshot written from the view reloads with identical IDs.
func (v *DictView) ForEach(f func(ID, Term) bool) {
	for i, t := range v.iris {
		if !f(makeID(TermIRI, uint64(i+1)), t) {
			return
		}
	}
	for i, t := range v.blanks {
		if !f(makeID(TermBlank, uint64(i+1)), t) {
			return
		}
	}
	for i, t := range v.literals {
		if !f(makeID(TermLiteral, uint64(i+1)), t) {
			return
		}
	}
}

// EncodeStatement encodes all three terms of a statement.
func (d *Dictionary) EncodeStatement(s Statement) Triple {
	return Triple{S: d.Encode(s.S), P: d.Encode(s.P), O: d.Encode(s.O)}
}

// DecodeTriple resolves all three IDs of a triple. It reports ok=false if
// any component is unknown.
func (d *Dictionary) DecodeTriple(t Triple) (Statement, bool) {
	s, ok1 := d.Term(t.S)
	p, ok2 := d.Term(t.P)
	o, ok3 := d.Term(t.O)
	return Statement{S: s, P: p, O: o}, ok1 && ok2 && ok3
}

// Format renders a triple using the dictionary, falling back to raw IDs
// for unknown components. Intended for logs and error messages.
func (d *Dictionary) Format(t Triple) string {
	part := func(id ID) string {
		if term, ok := d.Term(id); ok {
			return term.String()
		}
		return fmt.Sprintf("?%d", uint64(id))
	}
	return part(t.S) + " " + part(t.P) + " " + part(t.O) + " ."
}
