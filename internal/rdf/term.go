// Package rdf provides the RDF data model used throughout the reasoner:
// terms (IRIs, blank nodes, literals), statements of terms, dictionary
// encoding of terms to dense integer IDs, and ID-level triples.
//
// The hot path of the reasoner (the triple store and the inference rules)
// works exclusively on dictionary-encoded Triple values; Term and Statement
// exist at the edges (parsing, serialisation, the public API).
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// TermIRI is an IRI reference, e.g. <http://example.org/a>.
	TermIRI TermKind = iota
	// TermBlank is a blank node, e.g. _:b0.
	TermBlank
	// TermLiteral is a literal with optional language tag or datatype.
	TermLiteral
)

// String returns a human-readable name for the kind.
func (k TermKind) String() string {
	switch k {
	case TermIRI:
		return "iri"
	case TermBlank:
		return "blank"
	case TermLiteral:
		return "literal"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a single RDF term. The zero value is the empty IRI, which is not
// a valid term; use the constructors.
type Term struct {
	// Kind discriminates the union below.
	Kind TermKind
	// Value holds the IRI (without angle brackets), the blank node label
	// (without the "_:" prefix) or the literal's lexical form.
	Value string
	// Lang is the language tag for language-tagged literals ("" otherwise).
	Lang string
	// Datatype is the datatype IRI for typed literals ("" otherwise).
	Datatype string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: TermIRI, Value: iri} }

// NewBlank returns a blank node term with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: TermBlank, Value: label} }

// NewLiteral returns a plain literal term.
func NewLiteral(lexical string) Term { return Term{Kind: TermLiteral, Value: lexical} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: TermLiteral, Value: lexical, Lang: lang}
}

// NewTypedLiteral returns a literal term with an explicit datatype IRI.
func NewTypedLiteral(lexical, datatype string) Term {
	return Term{Kind: TermLiteral, Value: lexical, Datatype: datatype}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == TermIRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == TermBlank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == TermLiteral }

// IsZero reports whether the term is the zero value (an empty IRI), which
// is not a valid RDF term.
func (t Term) IsZero() bool { return t == Term{} }

// String renders the term in canonical N-Triples syntax. The canonical
// string doubles as the dictionary key, so two terms are equal exactly
// when their String values are equal.
func (t Term) String() string {
	var b strings.Builder
	t.append(&b)
	return b.String()
}

func (t Term) append(b *strings.Builder) {
	switch t.Kind {
	case TermIRI:
		b.WriteByte('<')
		b.WriteString(t.Value)
		b.WriteByte('>')
	case TermBlank:
		b.WriteString("_:")
		b.WriteString(t.Value)
	case TermLiteral:
		b.WriteByte('"')
		escapeLiteral(b, t.Value)
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
	}
}

// escapeLiteral writes s with N-Triples string escaping applied.
func escapeLiteral(b *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
}

// Statement is a triple of terms: the parsed (non-encoded) representation
// of an RDF statement as read from, or written to, a document.
type Statement struct {
	S, P, O Term
}

// NewStatement builds a Statement from three terms.
func NewStatement(s, p, o Term) Statement { return Statement{S: s, P: p, O: o} }

// String renders the statement as a single N-Triples line (without newline).
func (s Statement) String() string {
	var b strings.Builder
	s.S.append(&b)
	b.WriteByte(' ')
	s.P.append(&b)
	b.WriteByte(' ')
	s.O.append(&b)
	b.WriteString(" .")
	return b.String()
}

// Valid reports whether the statement is structurally valid RDF: the
// subject is an IRI or blank node, the predicate is an IRI, and the object
// is any non-zero term.
func (s Statement) Valid() bool {
	if s.S.IsZero() || s.P.IsZero() || s.O.IsZero() {
		return false
	}
	if s.S.Kind == TermLiteral {
		return false
	}
	if s.P.Kind != TermIRI {
		return false
	}
	return true
}
