package rdf

import "fmt"

// ID is a dictionary-encoded term identifier. The two most significant
// bits encode the term kind so that rules can distinguish literals from
// resources without a dictionary lookup:
//
//	00 — IRI
//	01 — blank node
//	10 — literal
//
// ID 0 is reserved as the wildcard Any, used in store match patterns.
type ID uint64

const (
	// Any is the wildcard ID used in match patterns; it is never assigned
	// to a term.
	Any ID = 0

	kindShift        = 62
	kindMask  ID     = 3 << kindShift
	seqMask   ID     = (1 << kindShift) - 1
	kindIRI   uint64 = 0
	kindBlank uint64 = 1
	kindLit   uint64 = 2
)

// makeID composes an ID from a term kind and a sequence number.
func makeID(kind TermKind, seq uint64) ID {
	var k uint64
	switch kind {
	case TermIRI:
		k = kindIRI
	case TermBlank:
		k = kindBlank
	case TermLiteral:
		k = kindLit
	}
	return ID(k<<kindShift | seq)
}

// Kind returns the term kind encoded in the ID.
func (id ID) Kind() TermKind {
	switch uint64(id&kindMask) >> kindShift {
	case kindBlank:
		return TermBlank
	case kindLit:
		return TermLiteral
	default:
		return TermIRI
	}
}

// IsLiteral reports whether the ID denotes a literal term.
func (id ID) IsLiteral() bool { return id&kindMask == ID(kindLit)<<kindShift }

// IsAny reports whether the ID is the wildcard.
func (id ID) IsAny() bool { return id == Any }

// seq returns the sequence number stripped of kind bits.
func (id ID) seq() uint64 { return uint64(id & seqMask) }

// Triple is a dictionary-encoded RDF triple. This is the only
// representation the store and the inference rules operate on.
type Triple struct {
	S, P, O ID
}

// T is shorthand for constructing a Triple.
func T(s, p, o ID) Triple { return Triple{S: s, P: p, O: o} }

// String renders the raw IDs; use Dictionary.Format for readable output.
func (t Triple) String() string {
	return fmt.Sprintf("(%d %d %d)", uint64(t.S), uint64(t.P), uint64(t.O))
}

// Matches reports whether the triple matches a pattern in which Any acts
// as a wildcard for any component.
func (t Triple) Matches(pattern Triple) bool {
	return (pattern.S == Any || pattern.S == t.S) &&
		(pattern.P == Any || pattern.P == t.P) &&
		(pattern.O == Any || pattern.O == t.O)
}

// Valid reports whether the triple could be a well-formed RDF statement at
// the ID level: no wildcard components, no literal subject or predicate,
// and the predicate is an IRI.
func (t Triple) Valid() bool {
	if t.S == Any || t.P == Any || t.O == Any {
		return false
	}
	if t.S.IsLiteral() {
		return false
	}
	if t.P.Kind() != TermIRI {
		return false
	}
	return true
}
