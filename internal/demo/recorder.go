// Package demo implements the introspection layer behind the paper's §4
// demonstration: a recorder that logs the state of all of Slider's
// modules at each step of the inference, a player that can pause, seek
// and replay any part of a recorded inference, and a small web server
// exposing both over HTTP with an embedded UI.
package demo

import (
	"sync"

	"repro/internal/rdf"
	"repro/internal/reasoner"
)

// EventKind labels a recorded engine event.
type EventKind string

// Event kinds.
const (
	EventInput   EventKind = "input"   // explicit triple accepted
	EventRoute   EventKind = "route"   // triple placed in a rule buffer
	EventFlush   EventKind = "flush"   // buffer flushed into an instance
	EventExecute EventKind = "execute" // rule-module instance finished
)

// Step is one recorded engine event. The sequence of steps is what the
// demo's inference player scrolls through.
type Step struct {
	// Seq is the 1-based step number.
	Seq int `json:"seq"`
	// Kind is the event kind.
	Kind EventKind `json:"kind"`
	// Rule is the rule module involved (empty for input events).
	Rule string `json:"rule,omitempty"`
	// Reason is the flush reason for flush events.
	Reason string `json:"reason,omitempty"`
	// N is the number of triples involved (1 for input/route; batch size
	// for flush; delta size for execute).
	N int `json:"n"`
	// Derived and Fresh are set on execute events.
	Derived int `json:"derived,omitempty"`
	Fresh   int `json:"fresh,omitempty"`
}

// DefaultMaxSteps bounds recorder memory; past it, steps are counted but
// not retained.
const DefaultMaxSteps = 200_000

// Recorder is a reasoner.Observer that logs engine events as Steps. It
// is safe for concurrent use (the engine invokes callbacks from many
// goroutines).
type Recorder struct {
	mu      sync.Mutex
	steps   []Step
	dropped int
	max     int
}

// NewRecorder returns a Recorder retaining at most maxSteps steps
// (DefaultMaxSteps if maxSteps <= 0).
func NewRecorder(maxSteps int) *Recorder {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	return &Recorder{max: maxSteps}
}

var _ reasoner.Observer = (*Recorder)(nil)

func (r *Recorder) append(s Step) {
	r.mu.Lock()
	if len(r.steps) >= r.max {
		r.dropped++
	} else {
		s.Seq = len(r.steps) + 1
		r.steps = append(r.steps, s)
	}
	r.mu.Unlock()
}

// OnInput implements reasoner.Observer.
func (r *Recorder) OnInput(rdf.Triple) {
	r.append(Step{Kind: EventInput, N: 1})
}

// OnRoute implements reasoner.Observer.
func (r *Recorder) OnRoute(rule string, _ rdf.Triple) {
	r.append(Step{Kind: EventRoute, Rule: rule, N: 1})
}

// OnFlush implements reasoner.Observer.
func (r *Recorder) OnFlush(rule string, reason reasoner.FlushReason, n int) {
	r.append(Step{Kind: EventFlush, Rule: rule, Reason: reason.String(), N: n})
}

// OnExecute implements reasoner.Observer.
func (r *Recorder) OnExecute(rule string, deltaSize, derived, fresh int) {
	r.append(Step{Kind: EventExecute, Rule: rule, N: deltaSize, Derived: derived, Fresh: fresh})
}

// Steps returns a copy of the recorded steps.
func (r *Recorder) Steps() []Step {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Step(nil), r.steps...)
}

// Len returns the number of retained steps.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.steps)
}

// Dropped returns how many steps exceeded the retention limit.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset clears the recording.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.steps = nil
	r.dropped = 0
	r.mu.Unlock()
}
