package demo

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/rules"
	"repro/internal/store"
)

// Run is one recorded inference run.
type Run struct {
	ID         int     `json:"id"`
	Ontology   string  `json:"ontology"`
	Fragment   string  `json:"fragment"`
	BufferSize int     `json:"bufferSize"`
	TimeoutMS  int     `json:"timeoutMs"`
	Input      int     `json:"input"`
	Inferred   int64   `json:"inferred"`
	ElapsedMS  float64 `json:"elapsedMs"`
	Steps      int     `json:"steps"`
	Summary    Summary `json:"summary"`
	steps      []Step
}

// Server is the demonstration web server (§4): it lets a client choose an
// ontology and the reasoner parameters, runs the inference with a
// recorder attached, and serves the step log and replayed states for the
// inference player.
type Server struct {
	mu    sync.Mutex
	runs  map[int]*Run
	next  int
	scale bench.Scale
	mux   *http.ServeMux
}

// NewServer returns a demo server generating ontologies at the given
// scale.
func NewServer(scale bench.Scale) *Server {
	s := &Server{runs: map[int]*Run{}, next: 1, scale: scale}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/ontologies", s.handleOntologies)
	mux.HandleFunc("GET /api/graph", s.handleGraph)
	mux.HandleFunc("POST /api/run", s.handleRun)
	mux.HandleFunc("GET /api/runs", s.handleRuns)
	mux.HandleFunc("GET /api/run/{id}", s.handleRunInfo)
	mux.HandleFunc("GET /api/run/{id}/state", s.handleState)
	mux.HandleFunc("GET /api/run/{id}/steps", s.handleSteps)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.WriteHeader(code)
	writeJSON(w, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

// OntologyInfo describes one selectable ontology (the demo's
// "Informations" table).
type OntologyInfo struct {
	Name    string `json:"name"`
	Triples int    `json:"triples"`
}

func (s *Server) handleOntologies(w http.ResponseWriter, _ *http.Request) {
	var out []OntologyInfo
	for _, d := range bench.Datasets(s.scale) {
		out = append(out, OntologyInfo{Name: d.Name, Triples: len(d.Statements)})
	}
	writeJSON(w, out)
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	frag := r.URL.Query().Get("fragment")
	var ruleset []rules.Rule
	switch frag {
	case "", "rhodf":
		ruleset = rules.RhoDF()
	case "rdfs":
		ruleset = rules.RDFS()
	default:
		httpError(w, http.StatusBadRequest, "unknown fragment %q", frag)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	_, _ = w.Write([]byte(rules.BuildDependencyGraph(ruleset).DOT()))
}

// runRequest is the demo's Setup panel: ontology, fragment, buffer size
// and timeout.
type runRequest struct {
	Ontology   string `json:"ontology"`
	Fragment   string `json:"fragment"`
	BufferSize int    `json:"bufferSize"`
	TimeoutMS  int    `json:"timeoutMs"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	ds, err := bench.DatasetByName(req.Ontology, s.scale)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var ruleset []rules.Rule
	switch req.Fragment {
	case "", "rhodf":
		req.Fragment = "rhodf"
		ruleset = rules.RhoDF()
	case "rdfs":
		ruleset = rules.RDFS()
	default:
		httpError(w, http.StatusBadRequest, "unknown fragment %q", req.Fragment)
		return
	}
	if req.BufferSize <= 0 {
		req.BufferSize = reasoner.DefaultBufferSize
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = reasoner.DefaultTimeout
		req.TimeoutMS = int(timeout / time.Millisecond)
	}

	rec := NewRecorder(0)
	dict := rdf.NewDictionary()
	st := store.New()
	eng := reasoner.New(st, ruleset, reasoner.Config{
		BufferSize: req.BufferSize,
		Timeout:    timeout,
		Observer:   rec,
	})
	start := time.Now()
	for _, stmt := range ds.Statements {
		eng.Add(dict.EncodeStatement(stmt))
	}
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Minute)
	defer cancel()
	if err := eng.Close(ctx); err != nil {
		httpError(w, http.StatusInternalServerError, "inference: %v", err)
		return
	}
	elapsed := time.Since(start)
	stats := eng.Stats()

	steps := rec.Steps()
	run := &Run{
		Ontology:   ds.Name,
		Fragment:   req.Fragment,
		BufferSize: req.BufferSize,
		TimeoutMS:  req.TimeoutMS,
		Input:      len(ds.Statements),
		Inferred:   stats.Inferred,
		ElapsedMS:  float64(elapsed.Microseconds()) / 1000,
		Steps:      len(steps),
		Summary:    Summarize(steps),
		steps:      steps,
	}
	s.mu.Lock()
	run.ID = s.next
	s.next++
	s.runs[run.ID] = run
	s.mu.Unlock()
	writeJSON(w, run)
}

func (s *Server) run(r *http.Request) (*Run, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, fmt.Errorf("bad run id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	run, ok := s.runs[id]
	if !ok {
		return nil, fmt.Errorf("run %d not found", id)
	}
	return run, nil
}

// handleRuns lists all recorded runs (newest first) so a client can
// compare the effect of different parameter choices, as the demo's
// summary panel encourages.
func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runs[i].ID > runs[j].ID })
	writeJSON(w, runs)
}

func (s *Server) handleRunInfo(w http.ResponseWriter, r *http.Request) {
	run, err := s.run(r)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, run)
}

// handleState replays the run to ?step=k and returns the reconstructed
// engine state — the inference player's seek operation.
func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	run, err := s.run(r)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	k := len(run.steps)
	if v := r.URL.Query().Get("step"); v != "" {
		k, err = strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad step")
			return
		}
	}
	writeJSON(w, ReplayTo(run.steps, k))
}

func (s *Server) handleSteps(w http.ResponseWriter, r *http.Request) {
	run, err := s.run(r)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	from, n := 0, 1000
	if v := r.URL.Query().Get("from"); v != "" {
		from, _ = strconv.Atoi(v)
	}
	if v := r.URL.Query().Get("n"); v != "" {
		n, _ = strconv.Atoi(v)
	}
	if from < 0 {
		from = 0
	}
	if from > len(run.steps) {
		from = len(run.steps)
	}
	end := from + n
	if end > len(run.steps) {
		end = len(run.steps)
	}
	writeJSON(w, run.steps[from:end])
}
