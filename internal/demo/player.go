package demo

import "sort"

// ModuleState is one rule module's view at a point in the replay — the
// demo's per-buffer counters: how many times the buffer filled, how many
// times it was forced to flush by timeout, and how many triples the rule
// inferred (§4, panel 2).
type ModuleState struct {
	Rule string `json:"rule"`
	// Buffered is the number of triples currently waiting in the buffer
	// (routed minus flushed).
	Buffered int `json:"buffered"`
	// FullFlushes, TimeoutFlushes, ExplicitFlushes count flushes by
	// reason.
	FullFlushes     int `json:"fullFlushes"`
	TimeoutFlushes  int `json:"timeoutFlushes"`
	ExplicitFlushes int `json:"explicitFlushes"`
	// Executions counts completed rule-module instances.
	Executions int `json:"executions"`
	// Derived and Fresh count emitted and store-fresh inferred triples.
	Derived int `json:"derived"`
	Fresh   int `json:"fresh"`
}

// State is the engine state reconstructed at one step of the replay: what
// the demo's progress bars show. StoreExplicit and StoreInferred are the
// green and orange parts of the demo's two-coloured triple-store bar.
type State struct {
	// Step is the replay position (0..len(steps)).
	Step int `json:"step"`
	// StoreExplicit counts explicit triples in the store at this point.
	StoreExplicit int `json:"storeExplicit"`
	// StoreInferred counts inferred triples in the store at this point.
	StoreInferred int `json:"storeInferred"`
	// LastRules lists the most recently executed rules, newest first
	// (the demo shows the last five executions of the thread pool).
	LastRules []string `json:"lastRules"`
	// Modules holds per-rule state, sorted by rule name.
	Modules []ModuleState `json:"modules"`
}

// ReplayTo folds steps[0:k] into a State. k is clamped to [0, len(steps)].
// Replaying to successive k values is how the player steps, scrolls,
// rewinds and fast-forwards through an inference.
func ReplayTo(steps []Step, k int) State {
	if k < 0 {
		k = 0
	}
	if k > len(steps) {
		k = len(steps)
	}
	mods := map[string]*ModuleState{}
	get := func(rule string) *ModuleState {
		m, ok := mods[rule]
		if !ok {
			m = &ModuleState{Rule: rule}
			mods[rule] = m
		}
		return m
	}
	st := State{Step: k}
	var lastRules []string
	for _, s := range steps[:k] {
		switch s.Kind {
		case EventInput:
			st.StoreExplicit += s.N
		case EventRoute:
			get(s.Rule).Buffered += s.N
		case EventFlush:
			m := get(s.Rule)
			m.Buffered -= s.N
			switch s.Reason {
			case "full":
				m.FullFlushes++
			case "timeout":
				m.TimeoutFlushes++
			default:
				m.ExplicitFlushes++
			}
		case EventExecute:
			m := get(s.Rule)
			m.Executions++
			m.Derived += s.Derived
			m.Fresh += s.Fresh
			st.StoreInferred += s.Fresh
			lastRules = append(lastRules, s.Rule)
		}
	}
	// Newest first, capped at five like the demo's thread-pool panel.
	for i := len(lastRules) - 1; i >= 0 && len(st.LastRules) < 5; i-- {
		st.LastRules = append(st.LastRules, lastRules[i])
	}
	names := make([]string, 0, len(mods))
	for n := range mods {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		st.Modules = append(st.Modules, *mods[n])
	}
	return st
}

// Summary is the demo's final panel (§4, panel 3): the proportion of
// explicit vs inferred triples, the distribution of inferred triples by
// rule, and how many times each rule ran.
type Summary struct {
	// Input and Inferred are the final store composition.
	Input    int `json:"input"`
	Inferred int `json:"inferred"`
	// Executions is the total number of rule executions.
	Executions int `json:"executions"`
	// InferredByRule maps rule name to distinct triples it contributed.
	InferredByRule map[string]int `json:"inferredByRule"`
	// ExecutionsByRule maps rule name to how many times it ran.
	ExecutionsByRule map[string]int `json:"executionsByRule"`
	// Steps is the length of the recording.
	Steps int `json:"steps"`
}

// Summarize folds a full recording into the demo's summary panel.
func Summarize(steps []Step) Summary {
	final := ReplayTo(steps, len(steps))
	sum := Summary{
		Input:            final.StoreExplicit,
		Inferred:         final.StoreInferred,
		InferredByRule:   map[string]int{},
		ExecutionsByRule: map[string]int{},
		Steps:            len(steps),
	}
	for _, m := range final.Modules {
		if m.Fresh > 0 {
			sum.InferredByRule[m.Rule] = m.Fresh
		}
		if m.Executions > 0 {
			sum.ExecutionsByRule[m.Rule] = m.Executions
			sum.Executions += m.Executions
		}
	}
	return sum
}
