package demo

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/rules"
	"repro/internal/store"
)

const (
	a rdf.ID = rdf.FirstCustomID + iota
	b
	c
)

func sc(s, o rdf.ID) rdf.Triple { return rdf.T(s, rdf.IDSubClassOf, o) }

// record runs a tiny inference with a recorder attached.
func record(t *testing.T) *Recorder {
	t.Helper()
	rec := NewRecorder(0)
	st := store.New()
	e := reasoner.New(st, rules.RhoDF(), reasoner.Config{BufferSize: 1, Observer: rec})
	e.Add(sc(a, b))
	e.Add(sc(b, c))
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecorderCapturesLifecycle(t *testing.T) {
	rec := record(t)
	steps := rec.Steps()
	if len(steps) == 0 {
		t.Fatal("no steps recorded")
	}
	kinds := map[EventKind]int{}
	for i, s := range steps {
		if s.Seq != i+1 {
			t.Fatalf("step %d has Seq %d", i, s.Seq)
		}
		kinds[s.Kind]++
	}
	for _, k := range []EventKind{EventInput, EventRoute, EventFlush, EventExecute} {
		if kinds[k] == 0 {
			t.Errorf("no %s events (%v)", k, kinds)
		}
	}
	if rec.Len() != len(steps) || rec.Dropped() != 0 {
		t.Fatalf("Len/Dropped inconsistent: %d/%d", rec.Len(), rec.Dropped())
	}
}

func TestRecorderLimit(t *testing.T) {
	rec := NewRecorder(3)
	for i := 0; i < 10; i++ {
		rec.OnInput(rdf.Triple{})
	}
	if rec.Len() != 3 || rec.Dropped() != 7 {
		t.Fatalf("Len=%d Dropped=%d, want 3/7", rec.Len(), rec.Dropped())
	}
	rec.Reset()
	if rec.Len() != 0 || rec.Dropped() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestReplayProgression(t *testing.T) {
	rec := record(t)
	steps := rec.Steps()
	// State is monotonic in the store dimensions.
	prevExplicit, prevInferred := 0, 0
	for k := 0; k <= len(steps); k++ {
		st := ReplayTo(steps, k)
		if st.Step != k {
			t.Fatalf("ReplayTo(%d).Step = %d", k, st.Step)
		}
		if st.StoreExplicit < prevExplicit || st.StoreInferred < prevInferred {
			t.Fatalf("store regressed at step %d", k)
		}
		prevExplicit, prevInferred = st.StoreExplicit, st.StoreInferred
		for _, m := range st.Modules {
			if m.Buffered < 0 {
				t.Fatalf("negative buffered count at step %d: %+v", k, m)
			}
		}
	}
	final := ReplayTo(steps, len(steps))
	if final.StoreExplicit != 2 {
		t.Fatalf("final explicit = %d, want 2", final.StoreExplicit)
	}
	if final.StoreInferred != 1 { // (a sc c)
		t.Fatalf("final inferred = %d, want 1", final.StoreInferred)
	}
	// Clamping.
	if got := ReplayTo(steps, -5); got.Step != 0 {
		t.Fatal("negative step not clamped")
	}
	if got := ReplayTo(steps, 1<<20); got.Step != len(steps) {
		t.Fatal("overlarge step not clamped")
	}
}

func TestReplayLastRules(t *testing.T) {
	rec := record(t)
	st := ReplayTo(rec.Steps(), rec.Len())
	if len(st.LastRules) == 0 || len(st.LastRules) > 5 {
		t.Fatalf("LastRules = %v", st.LastRules)
	}
}

func TestSummarize(t *testing.T) {
	rec := record(t)
	sum := Summarize(rec.Steps())
	if sum.Input != 2 || sum.Inferred != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.InferredByRule["scm-sco"] != 1 {
		t.Fatalf("InferredByRule = %v", sum.InferredByRule)
	}
	if sum.Executions == 0 || sum.ExecutionsByRule["scm-sco"] == 0 {
		t.Fatalf("executions missing: %+v", sum)
	}
}

// newTestServer spins the demo server up over httptest.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewServer(bench.ScaleSmall))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestServerOntologies(t *testing.T) {
	srv := newTestServer(t)
	var infos []OntologyInfo
	getJSON(t, srv.URL+"/api/ontologies", &infos)
	if len(infos) < 10 {
		t.Fatalf("only %d ontologies listed", len(infos))
	}
	names := map[string]bool{}
	for _, i := range infos {
		names[i.Name] = true
		if i.Triples <= 0 {
			t.Fatalf("ontology %s has %d triples", i.Name, i.Triples)
		}
	}
	if !names["wordnet"] || !names["subClassOf100"] {
		t.Fatalf("missing expected ontologies: %v", names)
	}
}

func TestServerIndexPage(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{"Setup", "Run", "Summarize", "inference player"} {
		if !strings.Contains(body, want) {
			t.Errorf("index page missing %q", want)
		}
	}
}

func TestServerUnknownPathIs404(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/no-such-page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %s, want 404", resp.Status)
	}
	// Bad run id in the path is also a 404-class error.
	resp2, _ := http.Get(srv.URL + "/api/run/notanumber")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("bad id status = %s", resp2.Status)
	}
}

func TestServerGraphEndpoint(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/api/graph?fragment=rhodf")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), `"scm-sco" -> "cax-sco"`) {
		t.Fatalf("graph endpoint wrong:\n%s", buf.String())
	}
	resp2, _ := http.Get(srv.URL + "/api/graph?fragment=bogus")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus fragment: %s", resp2.Status)
	}
}

func postRun(t *testing.T, srv *httptest.Server, body string) *Run {
	t.Helper()
	resp, err := http.Post(srv.URL+"/api/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("POST /api/run: %s: %s", resp.Status, buf.String())
	}
	var run Run
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	return &run
}

func TestServerRunAndReplay(t *testing.T) {
	srv := newTestServer(t)
	run := postRun(t, srv, `{"ontology":"subClassOf20","fragment":"rhodf","bufferSize":4,"timeoutMs":5}`)
	if run.ID == 0 || run.Input != 39 {
		t.Fatalf("run = %+v", run)
	}
	if run.Inferred != 171 { // C(19,2), Table 1
		t.Fatalf("inferred = %d, want 171", run.Inferred)
	}
	if run.Steps == 0 || run.Summary.Executions == 0 {
		t.Fatalf("run not recorded: %+v", run)
	}

	// Seek to the middle.
	var st State
	getJSON(t, fmt.Sprintf("%s/api/run/%d/state?step=%d", srv.URL, run.ID, run.Steps/2), &st)
	if st.Step != run.Steps/2 {
		t.Fatalf("state step = %d", st.Step)
	}
	// Final state matches the run totals.
	var final State
	getJSON(t, fmt.Sprintf("%s/api/run/%d/state", srv.URL, run.ID), &final)
	if final.StoreInferred != int(run.Inferred) || final.StoreExplicit != run.Input {
		t.Fatalf("final state %+v does not match run %+v", final, run)
	}

	// Steps pagination.
	var steps []Step
	getJSON(t, fmt.Sprintf("%s/api/run/%d/steps?from=0&n=10", srv.URL, run.ID), &steps)
	if len(steps) != 10 {
		t.Fatalf("pagination returned %d steps", len(steps))
	}
	var tail []Step
	getJSON(t, fmt.Sprintf("%s/api/run/%d/steps?from=%d&n=10", srv.URL, run.ID, run.Steps-3), &tail)
	if len(tail) != 3 {
		t.Fatalf("tail pagination returned %d steps", len(tail))
	}

	// Run info endpoint.
	var info Run
	getJSON(t, fmt.Sprintf("%s/api/run/%d", srv.URL, run.ID), &info)
	if info.Ontology != "subClassOf20" {
		t.Fatalf("info = %+v", info)
	}
}

func TestServerRunValidation(t *testing.T) {
	srv := newTestServer(t)
	for _, body := range []string{
		`{"ontology":"nope"}`,
		`{"ontology":"subClassOf10","fragment":"owl-full"}`,
		`not json`,
	} {
		resp, err := http.Post(srv.URL+"/api/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %s, want 400", body, resp.Status)
		}
	}
	resp, _ := http.Get(srv.URL + "/api/run/999")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing run: %s, want 404", resp.Status)
	}
}

func TestServerRunsList(t *testing.T) {
	srv := newTestServer(t)
	var empty []Run
	getJSON(t, srv.URL+"/api/runs", &empty)
	if len(empty) != 0 {
		t.Fatalf("fresh server has %d runs", len(empty))
	}
	postRun(t, srv, `{"ontology":"subClassOf10","fragment":"rhodf"}`)
	postRun(t, srv, `{"ontology":"subClassOf10","fragment":"rdfs"}`)
	var runs []Run
	getJSON(t, srv.URL+"/api/runs", &runs)
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(runs))
	}
	if runs[0].ID <= runs[1].ID {
		t.Fatalf("runs not newest-first: %d, %d", runs[0].ID, runs[1].ID)
	}
}

func TestServerRDFSRun(t *testing.T) {
	srv := newTestServer(t)
	run := postRun(t, srv, `{"ontology":"subClassOf10","fragment":"rdfs"}`)
	if run.Fragment != "rdfs" {
		t.Fatalf("fragment = %s", run.Fragment)
	}
	if run.Inferred <= 36 { // must exceed the pure ρdf closure
		t.Fatalf("RDFS inferred = %d, want > 36", run.Inferred)
	}
}
