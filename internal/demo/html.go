package demo

// indexHTML is the embedded demonstration page: a minimal, dependency-free
// rendition of the paper's Figure 4 interface with the three panels —
// Setup (ontology, fragment, buffer size, timeout), Run (per-module
// progress and the inference player) and Summarize.
const indexHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>Slider — incremental reasoner demo</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 2rem; max-width: 70rem; }
  h1 { font-size: 1.4rem; }
  fieldset { margin-bottom: 1rem; border: 1px solid #bbb; border-radius: 6px; }
  label { margin-right: 1rem; }
  table { border-collapse: collapse; margin-top: .5rem; }
  td, th { border: 1px solid #ccc; padding: .2rem .6rem; font-size: .85rem; }
  .bar { display: inline-block; height: .8rem; background: #4a90d9; vertical-align: middle; }
  .bar.inferred { background: #e8930c; }
  #player { margin: .8rem 0; }
  #log { white-space: pre; font-family: monospace; font-size: .8rem; }
</style>
</head>
<body>
<h1>Slider — an efficient incremental reasoner (SIGMOD 2015 demo)</h1>

<fieldset>
  <legend>1 — Setup</legend>
  <label>Ontology <select id="ontology"></select></label>
  <label>Fragment
    <select id="fragment">
      <option value="rhodf">&rho;df</option>
      <option value="rdfs">RDFS</option>
    </select>
  </label>
  <label>Buffer size <input id="buffer" type="number" value="128" min="1" style="width:5rem"></label>
  <label>Timeout (ms) <input id="timeout" type="number" value="20" min="1" style="width:5rem"></label>
  <button id="runBtn">Run inference</button>
</fieldset>

<fieldset>
  <legend>2 — Run (inference player)</legend>
  <div id="player">
    <button id="back">&#9664;</button>
    <button id="play">&#9654;</button>
    <button id="fwd">&#9654;&#9654;</button>
    <input id="seek" type="range" min="0" max="0" value="0" style="width:30rem">
    <span id="pos"></span>
  </div>
  <div>Triple store:
    <span id="storebar"></span>
    <span id="storetext"></span>
  </div>
  <div>Last executed rules: <span id="lastrules"></span></div>
  <table id="modules"><thead>
    <tr><th>Rule</th><th>Buffered</th><th>Full flushes</th><th>Timeout flushes</th>
        <th>Executions</th><th>Inferred (fresh)</th></tr>
  </thead><tbody></tbody></table>
</fieldset>

<fieldset>
  <legend>3 — Summarize</legend>
  <div id="summary"></div>
</fieldset>

<script>
let run = null, pos = 0, playing = null;
async function j(url, opts) { const r = await fetch(url, opts); return r.json(); }

async function loadOntologies() {
  const os = await j('/api/ontologies');
  const sel = document.getElementById('ontology');
  os.forEach(o => {
    const opt = document.createElement('option');
    opt.value = o.name; opt.textContent = o.name + ' (' + o.triples + ' triples)';
    sel.appendChild(opt);
  });
}

async function startRun() {
  const body = JSON.stringify({
    ontology: document.getElementById('ontology').value,
    fragment: document.getElementById('fragment').value,
    bufferSize: +document.getElementById('buffer').value,
    timeoutMs: +document.getElementById('timeout').value,
  });
  run = await j('/api/run', {method: 'POST', headers: {'Content-Type': 'application/json'}, body});
  document.getElementById('seek').max = run.steps;
  pos = run.steps;
  document.getElementById('seek').value = pos;
  renderSummary();
  await renderState();
}

async function renderState() {
  if (!run) return;
  const st = await j('/api/run/' + run.id + '/state?step=' + pos);
  document.getElementById('pos').textContent = st.step + ' / ' + run.steps;
  const total = st.storeExplicit + st.storeInferred || 1;
  document.getElementById('storebar').innerHTML =
    '<span class="bar" style="width:' + (300*st.storeExplicit/total) + 'px"></span>' +
    '<span class="bar inferred" style="width:' + (300*st.storeInferred/total) + 'px"></span>';
  document.getElementById('storetext').textContent =
    ' ' + st.storeExplicit + ' explicit + ' + st.storeInferred + ' inferred';
  document.getElementById('lastrules').textContent = (st.lastRules || []).join(', ');
  const tb = document.querySelector('#modules tbody');
  tb.innerHTML = '';
  (st.modules || []).forEach(m => {
    const tr = document.createElement('tr');
    tr.innerHTML = '<td>' + m.rule + '</td><td>' + m.buffered + '</td><td>' + m.fullFlushes +
      '</td><td>' + m.timeoutFlushes + '</td><td>' + m.executions + '</td><td>' + m.fresh + '</td>';
    tb.appendChild(tr);
  });
}

function renderSummary() {
  const s = run.summary;
  const rules = Object.keys(s.inferredByRule || {}).map(r =>
    r + ': ' + s.inferredByRule[r]).join(', ') || 'none';
  document.getElementById('summary').innerHTML =
    '<p>' + run.ontology + ' / ' + run.fragment + ' — ' + run.input + ' input, ' +
    run.inferred + ' inferred in ' + run.elapsedMs.toFixed(1) + ' ms (' + run.steps +
    ' recorded steps, ' + s.executions + ' rule executions).</p>' +
    '<p>Inferred by rule: ' + rules + '</p>';
}

document.getElementById('runBtn').onclick = startRun;
document.getElementById('seek').oninput = e => { pos = +e.target.value; renderState(); };
document.getElementById('back').onclick = () => { pos = Math.max(0, pos - 1);
  document.getElementById('seek').value = pos; renderState(); };
document.getElementById('fwd').onclick = () => { pos = Math.min(run ? run.steps : 0, pos + 1);
  document.getElementById('seek').value = pos; renderState(); };
document.getElementById('play').onclick = () => {
  if (playing) { clearInterval(playing); playing = null; return; }
  playing = setInterval(() => {
    if (!run || pos >= run.steps) { clearInterval(playing); playing = null; return; }
    pos += Math.max(1, Math.floor(run.steps / 200));
    if (pos > run.steps) pos = run.steps;
    document.getElementById('seek').value = pos;
    renderState();
  }, 100);
};
loadOntologies();
</script>
</body>
</html>
`
