package maintenance

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

const (
	a rdf.ID = rdf.FirstCustomID + iota
	b
	c
	d
	e
	x
)

func sc(s, o rdf.ID) rdf.Triple { return rdf.T(s, rdf.IDSubClassOf, o) }
func ty(s, o rdf.ID) rdf.Triple { return rdf.T(s, rdf.IDType, o) }

// materialize builds a closed store plus explicit set from input.
func materialize(t *testing.T, ruleset []rules.Rule, input []rdf.Triple) (*store.Store, *store.Store) {
	t.Helper()
	st := store.New()
	if _, err := baseline.New(st, ruleset, baseline.SemiNaive).Materialize(context.Background(), input); err != nil {
		t.Fatal(err)
	}
	explicit := store.New()
	explicit.AddBatch(input)
	return st, explicit
}

// assertClosureOf checks st equals the from-scratch closure of input.
func assertClosureOf(t *testing.T, st *store.Store, ruleset []rules.Rule, input []rdf.Triple) {
	t.Helper()
	want, _, err := baseline.Closure(context.Background(), ruleset, input)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != want.Len() {
		t.Fatalf("store has %d triples, from-scratch closure has %d", st.Len(), want.Len())
	}
	want.ForEach(func(tr rdf.Triple) bool {
		if !st.Contains(tr) {
			t.Fatalf("store missing %v", tr)
		}
		return true
	})
}

func TestRetractLeafEdge(t *testing.T) {
	input := []rdf.Triple{sc(a, b), sc(b, c), sc(c, d)}
	st, explicit := materialize(t, rules.RhoDF(), input)
	stats, err := Retract(context.Background(), st, rules.RhoDF(), explicit, []rdf.Triple{sc(c, d)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retracted != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// (a sc d), (b sc d), (c sc d) gone; (a sc c) stays.
	for _, gone := range []rdf.Triple{sc(c, d), sc(a, d), sc(b, d)} {
		if st.Contains(gone) {
			t.Errorf("still contains %v", gone)
		}
	}
	if !st.Contains(sc(a, c)) {
		t.Error("(a sc c) should survive")
	}
	assertClosureOf(t, st, rules.RhoDF(), []rdf.Triple{sc(a, b), sc(b, c)})
}

func TestRetractWithAlternativeDerivation(t *testing.T) {
	// Two paths from a to c: via b and via e. Deleting the b-path must
	// keep (a sc c), which is rederivable via e.
	input := []rdf.Triple{sc(a, b), sc(b, c), sc(a, e), sc(e, c)}
	st, explicit := materialize(t, rules.RhoDF(), input)
	stats, err := Retract(context.Background(), st, rules.RhoDF(), explicit, []rdf.Triple{sc(a, b)})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Contains(sc(a, c)) {
		t.Fatal("(a sc c) lost despite alternative derivation")
	}
	if stats.Rederived == 0 {
		t.Fatalf("expected rederivation, stats = %+v", stats)
	}
	assertClosureOf(t, st, rules.RhoDF(), []rdf.Triple{sc(b, c), sc(a, e), sc(e, c)})
}

func TestRetractInstanceTyping(t *testing.T) {
	input := []rdf.Triple{sc(a, b), ty(x, a)}
	st, explicit := materialize(t, rules.RhoDF(), input)
	if _, err := Retract(context.Background(), st, rules.RhoDF(), explicit, []rdf.Triple{ty(x, a)}); err != nil {
		t.Fatal(err)
	}
	if st.Contains(ty(x, b)) || st.Contains(ty(x, a)) {
		t.Fatal("typing not fully retracted")
	}
	assertClosureOf(t, st, rules.RhoDF(), []rdf.Triple{sc(a, b)})
}

func TestRetractExplicitTripleAlsoDerivable(t *testing.T) {
	// (a sc c) is explicit AND derivable via b. Retracting it removes
	// the assertion, but rederivation restores the triple.
	input := []rdf.Triple{sc(a, b), sc(b, c), sc(a, c)}
	st, explicit := materialize(t, rules.RhoDF(), input)
	if _, err := Retract(context.Background(), st, rules.RhoDF(), explicit, []rdf.Triple{sc(a, c)}); err != nil {
		t.Fatal(err)
	}
	if !st.Contains(sc(a, c)) {
		t.Fatal("(a sc c) should be rederived from the chain")
	}
	if explicit.Contains(sc(a, c)) {
		t.Fatal("explicit set not updated")
	}
	assertClosureOf(t, st, rules.RhoDF(), []rdf.Triple{sc(a, b), sc(b, c)})
}

func TestRetractUnknownTripleIsNoop(t *testing.T) {
	input := []rdf.Triple{sc(a, b)}
	st, explicit := materialize(t, rules.RhoDF(), input)
	stats, err := Retract(context.Background(), st, rules.RhoDF(), explicit, []rdf.Triple{sc(c, d), sc(a, b)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retracted != 1 { // only the known one
		t.Fatalf("stats = %+v", stats)
	}
	// Retracting an inferred (non-explicit) triple is also a no-op.
	input2 := []rdf.Triple{sc(a, b), sc(b, c)}
	st2, explicit2 := materialize(t, rules.RhoDF(), input2)
	stats, err = Retract(context.Background(), st2, rules.RhoDF(), explicit2, []rdf.Triple{sc(a, c)})
	if err != nil || stats.Retracted != 0 {
		t.Fatalf("retracting inferred triple: %+v, %v", stats, err)
	}
	if !st2.Contains(sc(a, c)) {
		t.Fatal("inferred triple should remain")
	}
}

func TestRetractEverything(t *testing.T) {
	input := []rdf.Triple{sc(a, b), sc(b, c), ty(x, a)}
	st, explicit := materialize(t, rules.RhoDF(), input)
	if _, err := Retract(context.Background(), st, rules.RhoDF(), explicit, input); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Fatalf("store not empty after total retraction: %d triples %v", st.Len(), st.Snapshot())
	}
	if explicit.Len() != 0 {
		t.Fatal("explicit set not emptied")
	}
}

func TestRetractNilExplicit(t *testing.T) {
	if _, err := Retract(context.Background(), store.New(), rules.RhoDF(), nil, nil); err == nil {
		t.Fatal("nil explicit set accepted")
	}
}

func TestRetractContextCancellation(t *testing.T) {
	// Large chain so overdeletion has work to cancel.
	var input []rdf.Triple
	for i := 0; i < 300; i++ {
		input = append(input, sc(rdf.FirstCustomID+rdf.ID(i), rdf.FirstCustomID+rdf.ID(i+1)))
	}
	st, explicit := materialize(t, rules.RhoDF(), input)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Retract(ctx, st, rules.RhoDF(), explicit, input[:1]); err == nil {
		t.Fatal("cancelled context ignored")
	}
}

// Property: retract ≡ rebuild. For random small ontologies and random
// retraction subsets, DRed yields exactly the closure of the surviving
// explicit triples.
func TestRetractEqualsRebuildProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var input []rdf.Triple
		nc := rng.Intn(6) + 3
		id := func(i int) rdf.ID { return rdf.FirstCustomID + rdf.ID(i) }
		seen := map[rdf.Triple]bool{}
		for i := 0; i < rng.Intn(15)+5; i++ {
			var tr rdf.Triple
			if rng.Intn(3) == 0 {
				tr = ty(id(rng.Intn(nc)+100), id(rng.Intn(nc)))
			} else {
				tr = sc(id(rng.Intn(nc)), id(rng.Intn(nc)))
			}
			if !seen[tr] {
				seen[tr] = true
				input = append(input, tr)
			}
		}
		st, explicit := materialize(t, rules.RhoDF(), input)
		// Retract a random subset.
		var toDelete, survivors []rdf.Triple
		for _, tr := range input {
			if rng.Intn(3) == 0 {
				toDelete = append(toDelete, tr)
			} else {
				survivors = append(survivors, tr)
			}
		}
		if _, err := Retract(context.Background(), st, rules.RhoDF(), explicit, toDelete); err != nil {
			return false
		}
		want, _, err := baseline.Closure(context.Background(), rules.RhoDF(), survivors)
		if err != nil {
			return false
		}
		if st.Len() != want.Len() {
			t.Logf("seed %d: got %d triples, want %d (deleted %d of %d)",
				seed, st.Len(), want.Len(), len(toDelete), len(input))
			return false
		}
		ok := true
		want.ForEach(func(tr rdf.Triple) bool {
			if !st.Contains(tr) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRetractCycleSupport(t *testing.T) {
	// Circular support: (a sc b), (b sc a) make everything mutually
	// derivable; retracting one explicit edge must not leave orphaned
	// self-supporting triples.
	input := []rdf.Triple{sc(a, b), sc(b, a)}
	st, explicit := materialize(t, rules.RhoDF(), input)
	if !st.Contains(sc(a, a)) {
		t.Fatal("precondition: cycle closure missing")
	}
	if _, err := Retract(context.Background(), st, rules.RhoDF(), explicit, []rdf.Triple{sc(b, a)}); err != nil {
		t.Fatal(err)
	}
	assertClosureOf(t, st, rules.RhoDF(), []rdf.Triple{sc(a, b)})
	if st.Contains(sc(a, a)) || st.Contains(sc(b, b)) {
		t.Fatal("self-supporting cycle remnants survived retraction")
	}
}

func chainName(n int) string { return fmt.Sprintf("chain%d", n) }

func TestRetractFromLongChain(t *testing.T) {
	var input []rdf.Triple
	n := 60
	for i := 0; i < n; i++ {
		input = append(input, sc(rdf.FirstCustomID+rdf.ID(i), rdf.FirstCustomID+rdf.ID(i+1)))
	}
	st, explicit := materialize(t, rules.RhoDF(), input)
	// Cut the chain in the middle.
	mid := input[n/2]
	stats, err := Retract(context.Background(), st, rules.RhoDF(), explicit, []rdf.Triple{mid})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Overdeleted == 0 {
		t.Fatalf("expected overdeletion on chain cut: %+v", stats)
	}
	var survivors []rdf.Triple
	for _, tr := range input {
		if tr != mid {
			survivors = append(survivors, tr)
		}
	}
	assertClosureOf(t, st, rules.RhoDF(), survivors)
	_ = chainName(n)
}
