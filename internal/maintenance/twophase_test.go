package maintenance

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

// randomOntology builds a random input exercising every premise shape of
// the given rule vocabulary richness.
func randomOntology(rng *rand.Rand, owl bool) []rdf.Triple {
	id := func(i int) rdf.ID { return rdf.FirstCustomID + rdf.ID(i) }
	cls := func() rdf.ID { return id(rng.Intn(4)) }
	prop := func() rdf.ID { return id(10 + rng.Intn(3)) }
	inst := func() rdf.ID { return id(100 + rng.Intn(5)) }
	seen := map[rdf.Triple]bool{}
	var out []rdf.Triple
	add := func(t rdf.Triple) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	kinds := 6
	if owl {
		kinds = 12
	}
	n := rng.Intn(14) + 6
	for i := 0; i < n; i++ {
		switch rng.Intn(kinds) {
		case 0:
			add(rdf.T(cls(), rdf.IDSubClassOf, cls()))
		case 1:
			add(rdf.T(prop(), rdf.IDSubPropertyOf, prop()))
		case 2:
			add(rdf.T(inst(), rdf.IDType, cls()))
		case 3:
			add(rdf.T(prop(), rdf.IDDomain, cls()))
		case 4:
			add(rdf.T(prop(), rdf.IDRange, cls()))
		case 5:
			add(rdf.T(inst(), prop(), inst()))
		case 6:
			add(rdf.T(prop(), rdf.IDType, rdf.IDSymmetricProperty))
		case 7:
			add(rdf.T(prop(), rdf.IDType, rdf.IDTransitiveProperty))
		case 8:
			add(rdf.T(prop(), rdf.IDInverseOf, prop()))
		case 9:
			add(rdf.T(cls(), rdf.IDEquivalentClass, cls()))
		case 10:
			add(rdf.T(prop(), rdf.IDEquivalentProperty, prop()))
		case 11:
			add(rdf.T(inst(), rdf.IDSameAs, inst()))
		}
	}
	return out
}

// assertSameStore fails unless st holds exactly the closure of input.
func assertSameStore(t *testing.T, tag string, seed int64, st *store.Store, ruleset []rules.Rule, input []rdf.Triple) {
	t.Helper()
	want, _, err := baseline.Closure(context.Background(), ruleset, input)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != want.Len() {
		t.Fatalf("%s seed %d: store has %d triples, from-scratch closure has %d",
			tag, seed, st.Len(), want.Len())
	}
	want.ForEach(func(tr rdf.Triple) bool {
		if !st.Contains(tr) {
			t.Fatalf("%s seed %d: store missing %v", tag, seed, tr)
		}
		return true
	})
}

// TestSuspectLocalRetractEqualsRebuildAllFragments is the closure-
// equivalence property over the suspect-local path, for all three
// built-in rule sets: retracting a random subset of a random ontology
// leaves exactly the from-scratch closure of the survivors.
func TestSuspectLocalRetractEqualsRebuildAllFragments(t *testing.T) {
	cases := []struct {
		name    string
		ruleset []rules.Rule
		owl     bool
	}{
		{"rhodf", rules.RhoDF(), false},
		{"rdfs", rules.RDFS(), false},
		{"owl-horst", rules.OWLHorst(), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !rules.AllSupport(tc.ruleset) {
				t.Fatal("ruleset missing support faces; would silently test the full path")
			}
			for seed := int64(0); seed < 80; seed++ {
				rng := rand.New(rand.NewSource(seed))
				input := randomOntology(rng, tc.owl)
				st, explicit := materialize(t, tc.ruleset, input)
				var toDelete, survivors []rdf.Triple
				for _, tr := range input {
					if rng.Intn(3) == 0 {
						toDelete = append(toDelete, tr)
					} else {
						survivors = append(survivors, tr)
					}
				}
				stats, err := Retract(context.Background(), st, tc.ruleset, explicit, toDelete)
				if err != nil {
					t.Fatal(err)
				}
				if !stats.TwoPhase {
					t.Fatal("suspect-local path not taken")
				}
				assertSameStore(t, tc.name, seed, st, tc.ruleset, survivors)
			}
		})
	}
}

// TestTwoPhaseRetractWithMidPassMutation drives Prepare/Apply by hand
// with mutations landing between the phases — the exclusive window's
// validate step must fold them in: consequences of mid-pass triples that
// lean on dead suspects die too, mid-pass triples that newly support a
// suspect save it, and a mid-pass re-assert of a retracted triple turns
// it back into an axiom only if it is not itself being retracted.
func TestTwoPhaseRetractWithMidPassMutation(t *testing.T) {
	ruleset := rules.RhoDF()
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		input := randomOntology(rng, false)
		st, explicit := materialize(t, ruleset, input)

		var toDelete, survivors []rdf.Triple
		for _, tr := range input {
			if rng.Intn(3) == 0 {
				toDelete = append(toDelete, tr)
			} else {
				survivors = append(survivors, tr)
			}
		}

		// Phase A against a frozen view, exactly as the reasoner runs it.
		sv := st.Freeze()
		pass, err := Prepare(context.Background(), sv, st.Version(), explicit.Version(),
			ruleset, explicit, toDelete)
		if err != nil {
			sv.Release()
			t.Fatal(err)
		}

		// Mid-pass batch: fresh random triples, plus — with some luck —
		// re-asserts of triples being retracted and triples from the
		// original input (new support for suspects). The engine would
		// have closed the store over the batch before the exclusive
		// window's quiesce, so the test closes it too.
		mid := randomOntology(rng, false)
		if len(toDelete) > 0 && rng.Intn(2) == 0 {
			mid = append(mid, toDelete[rng.Intn(len(toDelete))])
		}
		if rng.Intn(2) == 0 {
			mid = append(mid, input[rng.Intn(len(input))])
		}
		st.AddBatch(mid)
		explicit.AddBatch(mid)
		if _, err := baseline.New(st, ruleset, baseline.SemiNaive).Close(context.Background()); err != nil {
			sv.Release()
			t.Fatal(err)
		}

		stats := pass.Apply(st, explicit)
		sv.Release()
		if !stats.TwoPhase {
			t.Fatal("suspect-local path not taken")
		}

		// Survivors: everything explicit that is not being retracted —
		// mid-pass asserts included, except those in toDelete (the
		// retraction is logically last).
		del := make(map[rdf.Triple]bool, len(toDelete))
		for _, tr := range toDelete {
			del[tr] = true
		}
		seen := make(map[rdf.Triple]bool)
		var want []rdf.Triple
		for _, tr := range append(append([]rdf.Triple{}, survivors...), mid...) {
			if !del[tr] && !seen[tr] {
				seen[tr] = true
				want = append(want, tr)
			}
		}
		assertSameStore(t, "mid-pass", seed, st, ruleset, want)
	}
}

// TestRetractFullMatchesSuspectLocal cross-checks the two paths against
// each other on identical inputs.
func TestRetractFullMatchesSuspectLocal(t *testing.T) {
	ruleset := rules.RDFS()
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		input := randomOntology(rng, false)
		var toDelete []rdf.Triple
		for _, tr := range input {
			if rng.Intn(3) == 0 {
				toDelete = append(toDelete, tr)
			}
		}
		stA, expA := materialize(t, ruleset, input)
		stB, expB := materialize(t, ruleset, input)
		sA, err := Retract(context.Background(), stA, ruleset, expA, toDelete)
		if err != nil {
			t.Fatal(err)
		}
		sB, err := RetractFull(context.Background(), stB, ruleset, expB, toDelete)
		if err != nil {
			t.Fatal(err)
		}
		if !sA.TwoPhase || sB.TwoPhase {
			t.Fatalf("paths mixed up: %+v / %+v", sA, sB)
		}
		if sA.Retracted != sB.Retracted {
			t.Fatalf("seed %d: retracted %d vs %d", seed, sA.Retracted, sB.Retracted)
		}
		if stA.Len() != stB.Len() {
			t.Fatalf("seed %d: suspect-local left %d triples, full left %d", seed, stA.Len(), stB.Len())
		}
		stB.ForEach(func(tr rdf.Triple) bool {
			if !stA.Contains(tr) {
				t.Fatalf("seed %d: suspect-local missing %v", seed, tr)
			}
			return true
		})
		if expA.Len() != expB.Len() {
			t.Fatalf("seed %d: explicit sets diverge: %d vs %d", seed, expA.Len(), expB.Len())
		}
	}
}

// TestRetractCancelLeavesStoreUntouched pins the new cancellation
// contract: an error return from the read-only phases means nothing
// changed — no half-retracted store, nothing to poison.
func TestRetractCancelLeavesStoreUntouched(t *testing.T) {
	var input []rdf.Triple
	for i := 0; i < 300; i++ {
		input = append(input, sc(rdf.FirstCustomID+rdf.ID(i), rdf.FirstCustomID+rdf.ID(i+1)))
	}
	st, explicit := materialize(t, rules.RhoDF(), input)
	before := st.Len()
	explicitBefore := explicit.Len()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Retract(ctx, st, rules.RhoDF(), explicit, input[:1]); err == nil {
		t.Fatal("cancelled context ignored")
	}
	if st.Len() != before || explicit.Len() != explicitBefore {
		t.Fatalf("cancelled retraction mutated state: store %d→%d, explicit %d→%d",
			before, st.Len(), explicitBefore, explicit.Len())
	}
	// The same pass, uncancelled, still works.
	if _, err := Retract(context.Background(), st, rules.RhoDF(), explicit, input[:1]); err != nil {
		t.Fatal(err)
	}
}
