//go:build slider_invariants

package maintenance

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// These tests only exist under the slider_invariants tag: they verify
// the assertions fire on violated invariants, i.e. that the invariant
// layer is not a silent no-op.

func mustPanicM(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", name)
		}
	}()
	f()
}

func TestMaintenanceInvariantsEnabled(t *testing.T) {
	if !invariantsEnabled {
		t.Fatal("slider_invariants build without invariantsEnabled=true")
	}
}

func TestFrozenStampDetectsMutation(t *testing.T) {
	st := store.New()
	tr := rdf.Triple{S: 1, P: 2, O: 3}
	st.Add(tr)
	stamp := stampFrozen(st, []rdf.Triple{tr})
	checkFrozenStamp(st, stamp) // unchanged: fine

	st.Remove(tr) // the "frozen" view mutated under the pass
	mustPanicM(t, "frozen view mutation", func() { checkFrozenStamp(st, stamp) })
}

func TestPassConsistency(t *testing.T) {
	tr := rdf.Triple{S: 1, P: 2, O: 3}
	p := &Pass{
		prepared: tripleSet{tr: struct{}{}},
		dead:     tripleSet{tr: struct{}{}},
	}
	assertPassConsistent(p) // dead ⊆ prepared: fine

	rogue := rdf.Triple{S: 9, P: 9, O: 9}
	p.dead[rogue] = struct{}{}
	mustPanicM(t, "dead not subset of prepared", func() { assertPassConsistent(p) })
}
