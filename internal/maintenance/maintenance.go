// Package maintenance implements incremental *deletion* for the
// materialised store using delete-and-rederive (DRed; Gupta, Mumick &
// Subrahmanian, SIGMOD 1993), adapted to Slider's rule interface.
//
// The paper's conclusion observes that most stream reasoners "limit the
// amount of data in the knowledge base by eliminating former triples";
// DRed is the standard way to do that elimination without re-running
// materialisation from scratch:
//
//  1. Overdelete — starting from the retracted explicit triples, compute
//     (semi-naively, against the still-intact store) every triple with a
//     derivation path through a retracted triple. Explicit triples that
//     are not being retracted are never suspected: they are axioms.
//  2. Remove the whole suspect set from the store.
//  3. Rederive — run semi-naive inference over the remaining store;
//     suspects with an alternative derivation grounded in the surviving
//     explicit triples reappear, everything else stays gone.
//
// Step 1 over-approximates, so after step 2 every remaining triple is
// grounded in the surviving explicit set; step 3 therefore restores the
// store to exactly the closure of the surviving explicit triples.
package maintenance

import (
	"context"
	"fmt"

	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

// Stats reports what a retraction did.
type Stats struct {
	// Retracted counts explicit triples actually removed (present and
	// explicit).
	Retracted int
	// Overdeleted counts derived triples removed as suspects in step 2
	// (not counting the retracted explicit triples themselves).
	Overdeleted int
	// Rederived counts suspects restored by step 3.
	Rederived int
	// Rounds counts fixpoint rounds across the overdelete and rederive
	// phases.
	Rounds int
}

// Retract removes the given explicit triples from st and updates the
// materialisation. explicit must hold the reasoner's current explicit
// (asserted, non-inferred) triples as a second triple store; Retract
// mutates it, removing the retracted ones. (A store rather than a plain
// set so durable reasoners can checkpoint a consistent frozen view of it
// while asserts keep landing.)
//
// The store must be quiescent (no concurrent inference) for the duration
// of the call.
func Retract(ctx context.Context, st *store.Store, ruleset []rules.Rule,
	explicit *store.Store, toDelete []rdf.Triple) (Stats, error) {

	var stats Stats
	if explicit == nil {
		return stats, fmt.Errorf("maintenance: nil explicit set")
	}

	// Which requested deletions are real explicit triples?
	var seed []rdf.Triple
	for _, t := range toDelete {
		if !explicit.Remove(t) {
			continue // unknown or already gone: no-op
		}
		seed = append(seed, t)
	}
	if len(seed) == 0 {
		return stats, nil
	}
	stats.Retracted = len(seed)

	// Step 1: overdelete. Suspects accumulate; joins run against the
	// still-intact store so multi-premise rules see all premises.
	suspects := make(map[rdf.Triple]struct{}, len(seed)*2)
	for _, t := range seed {
		suspects[t] = struct{}{}
	}
	delta := seed
	for len(delta) > 0 {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		stats.Rounds++
		var derived []rdf.Triple
		for _, r := range ruleset {
			r.Apply(st, delta, func(t rdf.Triple) { derived = append(derived, t) })
		}
		delta = delta[:0]
		for _, t := range derived {
			if explicit.Contains(t) {
				continue // axioms survive
			}
			if _, seen := suspects[t]; seen {
				continue
			}
			if !st.Contains(t) {
				continue // not part of the materialisation
			}
			suspects[t] = struct{}{}
			delta = append(delta, t)
		}
	}

	// Step 2: remove the suspect set.
	for t := range suspects {
		st.Remove(t)
	}
	stats.Overdeleted = len(suspects) - len(seed)

	// Step 3: rederive from the surviving store.
	rederiveDelta := st.Snapshot()
	for len(rederiveDelta) > 0 {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		stats.Rounds++
		var derived []rdf.Triple
		for _, r := range ruleset {
			r.Apply(st, rederiveDelta, func(t rdf.Triple) { derived = append(derived, t) })
		}
		fresh := st.AddAll(derived)
		for _, t := range fresh {
			if _, wasSuspect := suspects[t]; wasSuspect {
				stats.Rederived++
			}
		}
		rederiveDelta = fresh
	}
	return stats, nil
}
