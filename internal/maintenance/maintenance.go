// Package maintenance implements incremental *deletion* for the
// materialised store using delete-and-rederive (DRed; Gupta, Mumick &
// Subrahmanian, SIGMOD 1993), adapted to Slider's rule interface.
//
// The paper's conclusion observes that most stream reasoners "limit the
// amount of data in the knowledge base by eliminating former triples";
// DRed is the standard way to do that elimination without re-running
// materialisation from scratch:
//
//  1. Overdelete — starting from the retracted explicit triples, compute
//     (semi-naively, against the still-intact source) every triple with a
//     derivation path through a retracted triple. Explicit triples that
//     are not being retracted are never suspected: they are axioms.
//  2. Remove the whole suspect set from the store.
//  3. Rederive — suspects with an alternative derivation grounded in the
//     surviving explicit triples reappear, everything else stays gone.
//
// The classic formulation of step 3 re-runs semi-naive inference over the
// whole surviving store — O(store) work, and the last O(store) writer
// stall in the system when run under the ingest lock. This package
// instead makes retraction cost proportional to the *suspect set*
// (following the line of work on answering queries under updates, e.g.
// Berkholz et al., "Answering FO+MOD queries under updates"), in two
// phases that split cleanly across the locking regimes the caller can
// offer:
//
//   - Prepare runs against a *frozen copy-on-write view* of the
//     materialised store (the PR 3/4 machinery) while ingest continues:
//     it overdeletes from the requested triples, then, instead of
//     re-deriving the world, asks each suspect the targeted backward
//     question "does some rule derive you in one step from premises
//     outside the (still-dead) suspect set?" (rules.Supporter) and
//     propagates restorations forward seeded only by restored suspects.
//
//   - Pass.Apply runs in a short exclusive window over the quiescent
//     live store: it validates the prepared answer against whatever
//     landed mid-pass (if anything did, it re-runs the suspect-local
//     analysis on the live store, seeded by the prepared dead set plus
//     the actual retraction seeds — still O(affected), not O(store)),
//     then removes the final dead set and the retracted explicit
//     triples. Apply never blocks on I/O, takes no context, and cannot
//     fail: once entered, it runs to completion, so a caller that logged
//     the retraction beforehand never ends up half-applied.
//
// Step 1 over-approximates, so every triple outside the suspect set has a
// derivation avoiding every suspect; the support fixpoint restores
// exactly the suspects grounded (transitively) outside the final dead
// set. The result equals the closure of the surviving explicit triples —
// the property tests assert this against from-scratch recomputation.
//
// Rulesets containing rules without a backward face (rules.CanSupport)
// use PrepareFull instead: classic full-store rederivation, quiescent and
// exclusive, kept as the compatibility path and as the baseline the
// retraction benchmark measures the suspect-local path against.
package maintenance

import (
	"context"
	"fmt"

	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/store"
)

// Stats reports what a retraction did.
type Stats struct {
	// Retracted counts explicit triples actually removed (present and
	// explicit).
	Retracted int
	// Suspects counts the triples the overdelete phases marked as
	// potentially losing their last derivation (including the validate
	// extension's, and the retracted explicit triples themselves).
	Suspects int
	// Overdeleted counts derived triples actually removed from the store
	// (suspects that found no alternative support, not counting the
	// retracted explicit triples themselves).
	Overdeleted int
	// Rederived counts suspects that survived: an alternative derivation
	// grounded outside the dead set restored them.
	Rederived int
	// Rounds counts fixpoint rounds across the overdelete, support and
	// validate phases.
	Rounds int
	// Validated counts suspects added by the exclusive validate phase —
	// consequences of triples that landed between the freeze and the
	// exclusive window (0 when nothing landed and the fast path ran).
	Validated int
	// ExclusiveMicros is the wall-clock of the exclusive validate-and-
	// apply window in microseconds, filled in by the caller that holds
	// the locks.
	ExclusiveMicros int64
	// PrepareMicros is the wall-clock of the concurrent prepare phase
	// (freeze plus suspect analysis) in microseconds, filled in by the
	// caller; zero when the classic full-rederive path ran.
	PrepareMicros int64
	// TwoPhase reports whether the suspect-local path ran (false: classic
	// full-store rederivation).
	TwoPhase bool
}

// tripleSet is a set of triples.
type tripleSet map[rdf.Triple]struct{}

func (s tripleSet) has(t rdf.Triple) bool { _, ok := s[t]; return ok }

// masked is a Source with a dead set subtracted: the alive view the
// support checks and seeded forward propagation run against. The dead
// map is shared with the caller, which shrinks it as suspects are
// restored — unmasking them for subsequent probes.
type masked struct {
	src  rules.Source
	dead tripleSet
}

func (m *masked) Contains(t rdf.Triple) bool {
	return !m.dead.has(t) && m.src.Contains(t)
}

func (m *masked) ObjectsAppend(dst []rdf.ID, p, s rdf.ID) []rdf.ID {
	n := len(dst)
	dst = m.src.ObjectsAppend(dst, p, s)
	kept := dst[:n]
	for _, o := range dst[n:] {
		if !m.dead.has(rdf.Triple{S: s, P: p, O: o}) {
			kept = append(kept, o)
		}
	}
	return kept
}

func (m *masked) Objects(p, s rdf.ID) []rdf.ID {
	return m.ObjectsAppend(nil, p, s)
}

func (m *masked) SubjectsAppend(dst []rdf.ID, p, o rdf.ID) []rdf.ID {
	n := len(dst)
	dst = m.src.SubjectsAppend(dst, p, o)
	kept := dst[:n]
	for _, s := range dst[n:] {
		if !m.dead.has(rdf.Triple{S: s, P: p, O: o}) {
			kept = append(kept, s)
		}
	}
	return kept
}

func (m *masked) Subjects(p, o rdf.ID) []rdf.ID {
	return m.SubjectsAppend(nil, p, o)
}

func (m *masked) ForEachWithPredicate(p rdf.ID, f func(s, o rdf.ID) bool) {
	m.src.ForEachWithPredicate(p, func(s, o rdf.ID) bool {
		if m.dead.has(rdf.Triple{S: s, P: p, O: o}) {
			return true
		}
		return f(s, o)
	})
}

func (m *masked) ForEach(f func(rdf.Triple) bool) {
	m.src.ForEach(func(t rdf.Triple) bool {
		if m.dead.has(t) {
			return true
		}
		return f(t)
	})
}

func (m *masked) Predicates() []rdf.ID { return m.src.Predicates() }

var _ rules.Source = (*masked)(nil)

// Pass is a prepared, not-yet-applied retraction: the output of Prepare
// (or PrepareFull), consumed exactly once by Apply.
type Pass struct {
	ruleset  []rules.Rule
	toDelete []rdf.Triple
	seedSet  tripleSet // toDelete ∩ explicit as estimated at prepare time
	dead     tripleSet // suspects with no support found against the frozen view
	prepared tripleSet // every suspect phase A considered, restored or not
	rounds   int

	full bool // no support faces: Apply re-derives from the full store

	// Version stamps of the store and the explicit set at freeze time;
	// Apply skips validation when both still match (nothing landed
	// mid-pass).
	storeVersion, explicitVersion uint64
}

// overdelete computes the suspect closure over src: seeds plus every
// src-present triple with a derivation path through a seed, skipping
// axioms (per isAxiom). forced pre-seeds the suspect set with triples
// that must be treated as dying regardless of derivability (the prepared
// dead set, during validation). Joins run against the still-intact src so
// multi-premise rules see all premises. Read-only.
//
// stop is polled once per round and aborts the closure when it returns
// an error; nil means uninterruptible (the exclusive retraction window,
// where a deliberately context-free call graph guarantees a logged
// retraction is always fully applied).
func overdelete(stop func() error, src rules.Source, ruleset []rules.Rule,
	isAxiom func(rdf.Triple) bool, seeds []rdf.Triple, forced tripleSet) (tripleSet, int, error) {

	suspects := make(tripleSet, len(seeds)*2+len(forced))
	delta := make([]rdf.Triple, 0, len(seeds)+len(forced))
	for _, t := range seeds {
		if !suspects.has(t) {
			suspects[t] = struct{}{}
			delta = append(delta, t)
		}
	}
	for t := range forced {
		if !suspects.has(t) {
			suspects[t] = struct{}{}
			delta = append(delta, t)
		}
	}
	rounds := 0
	for len(delta) > 0 {
		if stop != nil {
			if err := stop(); err != nil {
				return nil, rounds, err
			}
		}
		rounds++
		var derived []rdf.Triple
		for _, r := range ruleset {
			r.Apply(src, delta, func(t rdf.Triple) { derived = append(derived, t) })
		}
		delta = delta[:0]
		for _, t := range derived {
			if suspects.has(t) {
				continue
			}
			if isAxiom(t) {
				continue // axioms survive
			}
			if !src.Contains(t) {
				continue // not part of the materialisation
			}
			suspects[t] = struct{}{}
			delta = append(delta, t)
		}
	}
	return suspects, rounds, nil
}

// restore shrinks dead to the suspects with no derivation grounded
// outside it: a backward support sweep over every suspect, then forward
// semi-naive propagation seeded only by the restored ones. alive is the
// masked source sharing the dead set. Returns the rounds spent. The
// check function lets the validate phase honour axiom-hood (a suspect
// re-asserted mid-pass survives unconditionally). stop is polled as in
// overdelete; nil means uninterruptible.
func restore(stop func() error, alive *masked, ruleset []rules.Rule,
	dead tripleSet, isAxiom func(rdf.Triple) bool) (int, error) {

	if len(dead) == 0 {
		return 0, nil
	}
	rounds := 1
	var delta []rdf.Triple
	for t := range dead {
		if stop != nil {
			if err := stop(); err != nil {
				return rounds, err
			}
		}
		if isAxiom(t) || rules.Supported(ruleset, alive, t) {
			delete(dead, t)
			delta = append(delta, t)
		}
	}
	for len(delta) > 0 && len(dead) > 0 {
		if stop != nil {
			if err := stop(); err != nil {
				return rounds, err
			}
		}
		rounds++
		var derived []rdf.Triple
		for _, r := range ruleset {
			r.Apply(alive, delta, func(t rdf.Triple) { derived = append(derived, t) })
		}
		delta = delta[:0]
		for _, t := range derived {
			if dead.has(t) {
				delete(dead, t)
				delta = append(delta, t)
			}
		}
	}
	return rounds, nil
}

// Prepare runs the read-only analysis of a suspect-local retraction
// against a frozen view of the materialised store: overdelete seeded by
// the requested triples, then the backward-support/forward-propagation
// fixpoint that decides which suspects keep an alternative derivation.
// Ingest may continue concurrently — Prepare mutates nothing, and
// cancelling it leaves the knowledge base untouched.
//
// frozen must be a consistent (quiescent-at-freeze) view of the closure;
// storeVersion and explicitVersion are the version stamps of the live
// store and the explicit set captured at the freeze. explicit is read
// live (racing asserts only add axioms; Apply re-validates). The ruleset
// must pass rules.AllSupport.
func Prepare(ctx context.Context, frozen rules.Source, storeVersion, explicitVersion uint64,
	ruleset []rules.Rule, explicit *store.Store, toDelete []rdf.Triple) (*Pass, error) {

	if explicit == nil {
		return nil, fmt.Errorf("maintenance: nil explicit set")
	}
	p := &Pass{
		ruleset:         ruleset,
		toDelete:        toDelete,
		seedSet:         make(tripleSet, len(toDelete)),
		storeVersion:    storeVersion,
		explicitVersion: explicitVersion,
	}
	var seeds []rdf.Triple
	for _, t := range toDelete {
		if !p.seedSet.has(t) && explicit.Contains(t) && frozen.Contains(t) {
			p.seedSet[t] = struct{}{}
			seeds = append(seeds, t)
		}
	}
	isAxiom := func(t rdf.Triple) bool {
		return !p.seedSet.has(t) && explicit.Contains(t)
	}
	var stamp frozenStamp
	if invariantsEnabled {
		stamp = stampFrozen(frozen, seeds)
	}
	suspects, rounds, err := overdelete(ctx.Err, frozen, ruleset, isAxiom, seeds, nil)
	if err != nil {
		return nil, err
	}
	p.rounds = rounds
	p.prepared = make(tripleSet, len(suspects))
	for t := range suspects {
		p.prepared[t] = struct{}{}
	}
	p.dead = suspects // restore shrinks it in place
	alive := &masked{src: frozen, dead: p.dead}
	// Axiom-hood was already honoured during overdelete; the sweep only
	// asks for alternative derivations.
	rounds, err = restore(ctx.Err, alive, ruleset, p.dead, func(rdf.Triple) bool { return false })
	p.rounds += rounds
	if err != nil {
		return nil, err
	}
	if invariantsEnabled {
		checkFrozenStamp(frozen, stamp)
		assertPassConsistent(p)
	}
	return p, nil
}

// PrepareFull is the classic-DRed preparation for rulesets without a
// backward support face: overdelete only, against the live (quiescent)
// store; Apply then removes every suspect and re-derives from the full
// surviving store. The caller must hold the store exclusive and
// quiescent from before PrepareFull through Apply. Cancelling PrepareFull
// leaves the knowledge base untouched.
func PrepareFull(ctx context.Context, st *store.Store, ruleset []rules.Rule,
	explicit *store.Store, toDelete []rdf.Triple) (*Pass, error) {

	if explicit == nil {
		return nil, fmt.Errorf("maintenance: nil explicit set")
	}
	p := &Pass{
		ruleset:  ruleset,
		toDelete: toDelete,
		seedSet:  make(tripleSet, len(toDelete)),
		full:     true,
	}
	var seeds []rdf.Triple
	for _, t := range toDelete {
		if !p.seedSet.has(t) && explicit.Contains(t) {
			p.seedSet[t] = struct{}{}
			seeds = append(seeds, t)
		}
	}
	isAxiom := func(t rdf.Triple) bool {
		return !p.seedSet.has(t) && explicit.Contains(t)
	}
	suspects, rounds, err := overdelete(ctx.Err, st, ruleset, isAxiom, seeds, nil)
	if err != nil {
		return nil, err
	}
	p.rounds = rounds
	p.prepared = suspects // full path: dead == prepared, nothing restored
	p.dead = suspects
	return p, nil
}

// Apply finishes the retraction against the quiescent live store: it
// validates the prepared dead set against anything that landed after the
// freeze, removes the final dead set from the store and the retracted
// triples from the explicit set. The caller must hold the store
// exclusive (no concurrent inference or ingest) for the duration.
//
// Apply is deliberately uninterruptible — its whole call graph is
// context-free (enforced by slidervet's exclusivewindow checker),
// performs no I/O and cannot fail — so a write-ahead-logged retraction
// is always fully applied once this is called and the logged state
// never diverges from the live one.
func (p *Pass) Apply(st *store.Store, explicit *store.Store) Stats {
	stats := Stats{TwoPhase: !p.full, Rounds: p.rounds, Suspects: len(p.prepared)}

	// The seeds as they stand now: toDelete triples that are explicit in
	// the exclusive window (mid-pass asserts may have added some,
	// including re-asserts of prepared suspects).
	seedSet := make(tripleSet, len(p.toDelete))
	var seeds []rdf.Triple
	for _, t := range p.toDelete {
		if !seedSet.has(t) && explicit.Contains(t) {
			seedSet[t] = struct{}{}
			seeds = append(seeds, t)
		}
	}

	dead := p.dead
	switch {
	case p.full:
		// Classic DRed: every suspect dies now, rederivation resurrects.
	case st.Version() == p.storeVersion && explicit.Version() == p.explicitVersion:
		// Fast path: nothing landed between the freeze and this window —
		// the frozen analysis is exact.
	default:
		// Triples landed mid-pass. Their consequences may lean on dead
		// suspects (they must die too), and they may newly support dead
		// suspects (those must survive). Re-run the suspect-local
		// analysis on the live store, seeded by the actual seeds and
		// forced by the prepared dead set — O(affected), not O(store).
		isAxiom := func(t rdf.Triple) bool {
			return !seedSet.has(t) && explicit.Contains(t)
		}
		suspects, rounds, _ := overdelete(nil, st, p.ruleset, isAxiom, seeds, dead)
		stats.Rounds += rounds
		// Genuinely new suspects only: the live re-overdelete also
		// rediscovers phase-A suspects (restored ones included), which
		// are already counted in Suspects.
		for t := range suspects {
			if !p.prepared.has(t) {
				stats.Validated++
			}
		}
		stats.Suspects += stats.Validated
		dead = suspects
		alive := &masked{src: st, dead: dead}
		rounds, _ = restore(nil, alive, p.ruleset, dead, isAxiom)
		stats.Rounds += rounds
	}

	// Point of no return: remove the retracted explicit triples and the
	// dead suspects.
	for _, t := range seeds {
		if explicit.Remove(t) {
			stats.Retracted++
		}
	}
	removed, removedSeeds := 0, 0
	for t := range dead {
		if st.Remove(t) {
			removed++
			if seedSet.has(t) {
				removedSeeds++
			}
		}
	}
	stats.Overdeleted = removed - removedSeeds

	if p.full {
		// Classic rederive: semi-naive from the whole surviving store.
		delta := st.Snapshot()
		for len(delta) > 0 {
			stats.Rounds++
			var derived []rdf.Triple
			for _, r := range p.ruleset {
				r.Apply(st, delta, func(t rdf.Triple) { derived = append(derived, t) })
			}
			fresh := st.AddAll(derived)
			for _, t := range fresh {
				if dead.has(t) {
					stats.Rederived++
				}
			}
			delta = fresh
		}
		return stats
	}
	stats.Rederived = stats.Suspects - len(dead)
	p.dead = nil // a Pass is single-use
	return stats
}

// Retract removes the given explicit triples from st and updates the
// materialisation, as a single quiescent-store call: the convenience
// wrapper over Prepare/Apply (suspect-local when every rule has a
// backward support face, classic full rederivation otherwise) used by
// write-ahead-log replay, tests, and callers without a concurrent-ingest
// phase to overlap with. explicit must hold the reasoner's current
// explicit (asserted, non-inferred) triples as a second triple store;
// Retract mutates it, removing the retracted ones.
//
// The store must be quiescent (no concurrent inference) for the duration
// of the call. Cancellation via ctx is honoured only during the
// read-only analysis: once the mutation phase starts it runs to
// completion, so an error return always means "nothing changed".
func Retract(ctx context.Context, st *store.Store, ruleset []rules.Rule,
	explicit *store.Store, toDelete []rdf.Triple) (Stats, error) {

	var (
		p   *Pass
		err error
	)
	if rules.AllSupport(ruleset) {
		p, err = Prepare(ctx, st, st.Version(), explicitVersion(explicit), ruleset, explicit, toDelete)
	} else {
		p, err = PrepareFull(ctx, st, ruleset, explicit, toDelete)
	}
	if err != nil {
		return Stats{}, err
	}
	return p.Apply(st, explicit), nil
}

// RetractFull is Retract forced onto the classic full-store rederivation
// path regardless of the ruleset's support faces — the pre-suspect-local
// behaviour, kept as the benchmark baseline.
func RetractFull(ctx context.Context, st *store.Store, ruleset []rules.Rule,
	explicit *store.Store, toDelete []rdf.Triple) (Stats, error) {

	p, err := PrepareFull(ctx, st, ruleset, explicit, toDelete)
	if err != nil {
		return Stats{}, err
	}
	return p.Apply(st, explicit), nil
}

// explicitVersion tolerates the nil explicit set Prepare rejects anyway.
func explicitVersion(explicit *store.Store) uint64 {
	if explicit == nil {
		return 0
	}
	return explicit.Version()
}
