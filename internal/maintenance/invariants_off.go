//go:build !slider_invariants

package maintenance

import (
	"repro/internal/rdf"
	"repro/internal/rules"
)

// invariantsEnabled is false in normal builds; the `if invariantsEnabled`
// guards make every call site dead code. See invariants_on.go.
const invariantsEnabled = false

type frozenStamp map[rdf.Triple]bool

func stampFrozen(frozen rules.Source, seeds []rdf.Triple) frozenStamp { return nil }
func checkFrozenStamp(frozen rules.Source, st frozenStamp)            {}
func assertPassConsistent(p *Pass)                                    {}
