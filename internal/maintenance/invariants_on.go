//go:build slider_invariants

package maintenance

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/rules"
)

// invariantsEnabled gates the runtime invariant assertions; see
// internal/store/invariants_on.go for the build-tag pattern. Run with:
//
//	go test -race -tags slider_invariants ./internal/store ./internal/maintenance
const invariantsEnabled = true

// frozenStamp records the frozen view's membership verdict for a set of
// triples. Prepare's whole analysis assumes the frozen view is a stable
// snapshot — concurrent ingest lands in the live store, never in the
// view — so the verdicts must be identical when re-asked after the
// overdelete/restore fixpoints.
type frozenStamp map[rdf.Triple]bool

// stampFrozen captures frozen's membership of every seed.
func stampFrozen(frozen rules.Source, seeds []rdf.Triple) frozenStamp {
	st := make(frozenStamp, len(seeds))
	for _, t := range seeds {
		st[t] = frozen.Contains(t)
	}
	return st
}

// checkFrozenStamp panics if any stamped verdict changed: the frozen
// view mutated under a running Prepare, which invalidates the pass.
func checkFrozenStamp(frozen rules.Source, st frozenStamp) {
	for t, was := range st {
		if now := frozen.Contains(t); now != was {
			panic(fmt.Sprintf("maintenance invariant: frozen view changed under Prepare: %v went %v -> %v", t, was, now))
		}
	}
}

// assertPassConsistent checks the Pass's set algebra after restore: the
// dead set only ever shrinks from the suspect closure, so dead must be
// a subset of prepared.
func assertPassConsistent(p *Pass) {
	for t := range p.dead {
		if !p.prepared.has(t) {
			panic(fmt.Sprintf("maintenance invariant: dead triple %v is not in the prepared suspect set", t))
		}
	}
}
