package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockClass names one mutex in the documented lock order: the named
// type owning it, the field path from that type (possibly through
// anonymous structs, e.g. "comp.mu") and its rank. A lock of rank a
// must never be acquired while a lock of rank b > a is held; locks the
// config does not name are ignored entirely. Instance identity is not
// tracked: two Stores' stripe locks are one class, and re-acquiring a
// held class is not reported.
type LockClass struct {
	Name    string // short name used in messages, e.g. "markMu"
	PkgPath string // package declaring the owner type
	Type    string // owner type name, e.g. "Reasoner"
	Field   string // field path from the owner, e.g. "mu" or "comp.mu"
	Rank    int    // ascending = outermost first
}

// LockOrder flags acquisitions of the configured mutex classes that
// violate their rank order — directly within a function, or through
// one level of call indirection (a call made while locks are held,
// into a function whose body acquires a lower-ranked class).
//
// The analysis is per function body, linear in source order: Lock and
// RLock add the class to the held set, Unlock and RUnlock remove it,
// deferred unlocks hold to the end of the function. Function literals
// are analyzed as separate functions (they may run under a different
// lock regime than their enclosing function).
type LockOrder struct {
	Classes []LockClass

	byKey map[string]*LockClass // "pkgpath.Type\x00field.path"
}

func (c *LockOrder) Name() string { return "lockorder" }

func classKey(typeKey, fieldPath string) string { return typeKey + "\x00" + fieldPath }

type lockEvent struct {
	pos   token.Pos
	kind  int // 0 acquire, 1 release, 2 call
	class *LockClass
	fn    funcRef // kind 2: callee
}

type funcRef struct {
	key  string // funcKey of the callee
	desc string // rendered name for messages
}

func (c *LockOrder) Check(prog *Program) []Diagnostic {
	c.byKey = make(map[string]*LockClass, len(c.Classes))
	for i := range c.Classes {
		cl := &c.Classes[i]
		c.byKey[classKey(cl.PkgPath+"."+cl.Type, cl.Field)] = cl
	}

	// Pass 1: per-function events plus each function's direct
	// acquisition summary (for the one-level indirection check).
	type funcBody struct {
		pkg    *Package
		events []lockEvent
	}
	bodies := map[string]*funcBody{}
	summaries := map[string][]*LockClass{}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				for i, ev := range c.collectBodies(prog, pkg, fd) {
					if len(ev) == 0 {
						continue
					}
					fb := &funcBody{pkg: pkg, events: ev}
					if i == 0 {
						// The named function itself: addressable as a
						// call target for the indirection check.
						key := funcKeyOfDecl(pkg, fd)
						bodies[key] = fb
						summaries[key] = summarize(ev)
					} else {
						// Function literals are analyzed under their own
						// (unaddressable) keys: they may run under a
						// different lock regime than their enclosing
						// function, and their acquisitions must not leak
						// into its summary.
						bodies[pkg.Path+"\x00lit\x00"+prog.Fset.Position(ev[0].pos).String()] = fb
					}
				}
			}
		}
	}

	var out []Diagnostic
	for _, fb := range bodies {
		out = append(out, c.simulate(prog, fb.pkg, fb.events, summaries)...)
	}
	return out
}

// collectBodies gathers the lock events of fd's body and of every
// function literal within it, each as a separate event list (the
// enclosing function's list first). Lists with no events are dropped.
func (c *LockOrder) collectBodies(prog *Program, pkg *Package, fd *ast.FuncDecl) [][]lockEvent {
	var lists [][]lockEvent
	var walk func(body ast.Node, deferred bool) []lockEvent
	walk = func(body ast.Node, _ bool) []lockEvent {
		var events []lockEvent
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if n.Body != nil && body != n.Body {
					if ev := walk(n.Body, false); len(ev) > 0 {
						lists = append(lists, ev)
					}
					return false
				}
			case *ast.DeferStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && lit.Body != nil {
					if ev := walk(lit.Body, false); len(ev) > 0 {
						lists = append(lists, ev)
					}
					return false
				}
				// A deferred unlock keeps the lock held to the end; a
				// deferred call still runs in this function. Record
				// acquire/call events but not releases.
				for _, ev := range c.callEvents(prog, pkg, n.Call) {
					if ev.kind != 1 {
						events = append(events, ev)
					}
				}
				return false
			case *ast.CallExpr:
				events = append(events, c.callEvents(prog, pkg, n)...)
			}
			return true
		})
		sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
		return events
	}
	enclosing := walk(fd.Body, false)
	return append([][]lockEvent{enclosing}, lists...)
}

// callEvents classifies one call expression: a Lock/RLock of a
// configured class, an Unlock/RUnlock of one, or a call into a
// function declared in the program.
func (c *LockOrder) callEvents(prog *Program, pkg *Package, call *ast.CallExpr) []lockEvent {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if cl := c.classify(pkg, sel.X); cl != nil {
				return []lockEvent{{pos: call.Pos(), kind: 0, class: cl}}
			}
		case "Unlock", "RUnlock":
			if cl := c.classify(pkg, sel.X); cl != nil {
				return []lockEvent{{pos: call.Pos(), kind: 1, class: cl}}
			}
		}
	}
	if fn := staticCallee(pkg.Info, call); fn != nil {
		if _, decl := prog.FuncDecl(fn); decl != nil {
			return []lockEvent{{
				pos:  call.Pos(),
				kind: 2,
				fn:   funcRef{key: funcKey(fn), desc: describeFunc(fn, pkg.Types)},
			}}
		}
	}
	return nil
}

// classify resolves a mutex expression (the X of X.Lock()) to its
// configured class: the field path is accumulated through anonymous
// structs until a named owner type is reached.
func (c *LockOrder) classify(pkg *Package, e ast.Expr) *LockClass {
	var fields []string
	cur := ast.Unparen(e)
	for {
		sel, ok := cur.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		fields = append([]string{sel.Sel.Name}, fields...)
		base := ast.Unparen(sel.X)
		tv, ok := pkg.Info.Types[base]
		if !ok {
			return nil
		}
		if key := typeKey(tv.Type); key != "" {
			return c.byKey[classKey(key, strings.Join(fields, "."))]
		}
		cur = base
	}
}

// summarize returns the distinct classes an event list acquires.
func summarize(events []lockEvent) []*LockClass {
	var out []*LockClass
	seen := map[*LockClass]bool{}
	for _, ev := range events {
		if ev.kind == 0 && !seen[ev.class] {
			seen[ev.class] = true
			out = append(out, ev.class)
		}
	}
	return out
}

// simulate runs the linear held-set simulation over one body's events.
func (c *LockOrder) simulate(prog *Program, pkg *Package, events []lockEvent, summaries map[string][]*LockClass) []Diagnostic {
	var out []Diagnostic
	held := map[*LockClass]int{}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			for h, n := range held {
				if n > 0 && h != ev.class && ev.class.Rank < h.Rank {
					out = append(out, diag(prog, c.Name(), ev.pos,
						"acquires %s while holding %s (documented order: %s before %s)",
						ev.class.Name, h.Name, ev.class.Name, h.Name))
				}
			}
			held[ev.class]++
		case 1:
			if held[ev.class] > 0 {
				held[ev.class]--
			}
		case 2:
			summary := summaries[ev.fn.key]
			if len(summary) == 0 {
				continue
			}
			for _, acq := range summary {
				for h, n := range held {
					if n > 0 && h != acq && acq.Rank < h.Rank {
						out = append(out, diag(prog, c.Name(), ev.pos,
							"call to %s acquires %s while holding %s (documented order: %s before %s)",
							ev.fn.desc, acq.Name, h.Name, acq.Name, h.Name))
					}
				}
			}
		}
	}
	return out
}

// funcKeyOfDecl computes the funcKey of a declared function.
func funcKeyOfDecl(pkg *Package, fd *ast.FuncDecl) string {
	if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		return funcKey(fn)
	}
	return ""
}
