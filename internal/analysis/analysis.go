// Package analysis implements slidervet, the repo-invariant analyzer
// suite: a small, zero-dependency static-analysis framework (stdlib
// go/ast + go/parser + go/types only) plus the five checkers that
// enforce Slider's cross-cutting conventions — lock ordering, the
// no-I/O exclusive retraction window, run immutability, hot-path
// discipline and metric naming. The conventions themselves are
// catalogued in INVARIANTS.md at the repository root.
//
// Each checker is an analysis-style pass: it receives the loaded,
// type-checked Program and returns position-carrying Diagnostics.
// Checkers are configured with the type and function names they key
// on, so the same pass runs both against the real tree (see
// DefaultCheckers) and against the seeded-violation fixtures under
// testdata.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// Diagnostic is one finding: a position, the checker that produced it
// and a human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Checker string
	Message string
}

// String renders the diagnostic as file:line: checker: message with
// the file path as recorded by the loader.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Checker, d.Message)
}

// Rel renders the diagnostic with the file path made relative to root
// (the module root, typically), for stable output across machines.
func (d Diagnostic) Rel(root string) string {
	name := d.Pos.Filename
	if r, err := filepath.Rel(root, name); err == nil {
		name = r
	}
	return fmt.Sprintf("%s:%d: %s: %s", name, d.Pos.Line, d.Checker, d.Message)
}

// Checker is one slidervet pass.
type Checker interface {
	Name() string
	Check(prog *Program) []Diagnostic
}

// Run executes every checker against prog and returns the combined
// diagnostics sorted by file, line and message.
func Run(prog *Program, checkers []Checker) []Diagnostic {
	var out []Diagnostic
	for _, c := range checkers {
		out = append(out, c.Check(prog)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return out
}

// diag builds a Diagnostic from a token.Pos.
func diag(prog *Program, checker string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     prog.Fset.Position(pos),
		Checker: checker,
		Message: fmt.Sprintf(format, args...),
	}
}

// deref strips pointers off t.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the named type of t (through one pointer), or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// typeKey identifies a named type as "pkgpath.TypeName" ("" when t is
// not named or has no package, e.g. error).
func typeKey(t types.Type) string {
	n := namedOf(t)
	if n == nil || n.Obj() == nil {
		return ""
	}
	pkg := ""
	if p := n.Obj().Pkg(); p != nil {
		pkg = p.Path()
	}
	return pkg + "." + n.Obj().Name()
}

// staticCallee resolves a call expression to the concrete *types.Func
// it invokes, or nil when the target is dynamic (a func value, an
// interface method, a conversion or a builtin).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// Method (or method value) call: dynamic when the receiver
			// is an interface.
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			return fn
		}
		// Package-qualified call (pkg.Func).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcKey identifies a function or method as "pkgpath.Func" or
// "pkgpath.(Type).Method" — receiver pointerness is deliberately
// ignored so configs don't have to spell it.
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return fmt.Sprintf("%s.(%s).%s", pkg, n.Obj().Name(), fn.Name())
		}
	}
	return pkg + "." + fn.Name()
}

// describeFunc renders a funcKey for messages: "(*Type).Method" or
// "Func", qualified with the package's base name when it differs from
// from's package.
func describeFunc(fn *types.Func, from *types.Package) string {
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			name = fmt.Sprintf("(*%s).%s", n.Obj().Name(), fn.Name())
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != from {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
