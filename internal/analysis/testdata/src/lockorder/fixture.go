// Package lockorder seeds lock-order violations for the lockorder
// checker's golden test. The configured order is outerMu (rank 10)
// before innerMu (rank 20).
package lockorder

import "sync"

type S struct {
	outer sync.Mutex
	inner sync.RWMutex
}

// good follows the documented order.
func (s *S) good() {
	s.outer.Lock()
	s.inner.Lock()
	s.inner.Unlock()
	s.outer.Unlock()
}

// bad acquires the outer lock while holding the inner one.
func (s *S) bad() {
	s.inner.Lock()
	s.outer.Lock()
	s.outer.Unlock()
	s.inner.Unlock()
}

// grabOuter acquires only the outer lock; calling it with the inner
// lock held is the one-level-indirection violation.
func (s *S) grabOuter() {
	s.outer.Lock()
	s.outer.Unlock()
}

// indirect violates the order through grabOuter. The deferred unlock
// keeps innerMu held to the end of the function.
func (s *S) indirect() {
	s.inner.RLock()
	defer s.inner.RUnlock()
	s.grabOuter()
}

// closure is clean: the literal runs under its own lock regime (it is
// invoked through a func value, which the checker does not resolve),
// and its own held set starts empty.
func (s *S) closure() {
	s.inner.Lock()
	f := func() {
		s.outer.Lock()
		s.outer.Unlock()
	}
	s.inner.Unlock()
	f()
}

// sequential is clean: the inner lock is released before the outer one
// is taken.
func (s *S) sequential() {
	s.inner.Lock()
	s.inner.Unlock()
	s.outer.Lock()
	s.outer.Unlock()
}
