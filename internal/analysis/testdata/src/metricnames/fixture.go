// Package metricnames seeds violations for the metricnames checker's
// golden test against a stand-in Registry mirroring internal/obs.
package metricnames

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter { return nil }
func (r *Registry) Gauge(name string) *Gauge     { return nil }
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	return nil
}

const goodName = "slider_ingest_total"

func register(r *Registry, dyn string) {
	r.Counter(goodName) // ok: constant, prefixed, counted
	r.Counter(dyn)
	r.Counter("ingest_total")
	r.Counter("slider_ingest")
	r.Gauge("slider_queue_total")
	r.Gauge("slider_Queue_depth")
	r.Histogram("slider_latency", nil)
	r.Histogram("slider_latency_seconds", nil) // ok
	r.Gauge("slider_depth_seconds")            // ok (gauges may carry units)
	r.Histogram("slider_depth_seconds", nil)   // kind collision with the gauge
}
