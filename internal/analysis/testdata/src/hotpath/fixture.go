// Package hotpath seeds violations for the hotpath checker's golden
// test: route and deliver are on the hot-path allowlist, cold is not.
package hotpath

import (
	"fmt"
	"time"
)

type Term int

// String is itself a cold presentation helper; its Sprintf is fine
// because String is not on the hot list.
func (t Term) String() string { return fmt.Sprintf("t%d", int(t)) }

type engine struct{}

func (e *engine) route(t Term) string {
	_ = time.Now()
	s := fmt.Sprintf("%v", int(t))
	_ = t.String()
	return s
}

// deliver violates through a function literal: the literal runs on the
// same path.
func (e *engine) deliver() {
	f := func() { _ = time.Now() }
	f()
}

// cold may do all of it: not on the hot list.
func (e *engine) cold(t Term) string {
	_ = time.Now()
	return t.String()
}

// startSpan mirrors a span-creation path (trace.Start and friends are
// allowlisted in the real tree): clock reads must route through the
// tracer's gated now() so a disabled tracer never touches the clock.
func (e *engine) startSpan() {
	_ = time.Now()
}
