// Package runimmutable seeds violations for the runimmutable checker's
// golden test: run fields may only be written inside buildRun, and
// partition.runs elements may never be written in place.
package runimmutable

type run struct {
	pairs int
	subs  []int
	objs  []int
}

type partition struct {
	runs []*run
}

// buildRun is the blessed constructor: its writes are fine.
func buildRun(n int) *run {
	r := &run{pairs: n}
	r.subs = append(r.subs, 1)
	r.objs = make([]int, n)
	r.objs[0] = 1
	return r
}

// patch mutates a published run and a run slice: every statement but
// the last is a violation.
func patch(r *run, p *partition) {
	r.subs = nil
	r.objs[0] = 7
	_ = append(r.subs, 9)
	p.runs[0] = r
	p.runs = nil // wholesale replacement is the sanctioned pattern
}

// reader only reads: clean.
func reader(r *run) int {
	return r.pairs + len(r.subs) + r.objs[0]
}
