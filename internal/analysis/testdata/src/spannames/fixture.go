// Package spannames seeds violations for the spannames checker's
// golden test against stand-ins mirroring internal/trace.
package spannames

type Span struct{}

func (s *Span) Child(name string) *Span { return nil }

func Start(ctx any, name string) (any, *Span) { return ctx, nil }

func StartRoot(name string) *Span { return nil }

const goodName = "ingest.batch"

func spans(ctx any, dyn string) {
	_, sp := Start(ctx, goodName) // ok: constant, dotted lowercase
	sp.Child("wal.fsync")         // ok
	sp.Child(dyn)
	sp.Child("")
	sp.Child("Ingest.Batch")
	sp.Child(".batch")
	sp.Child("ingest..batch")
	_ = StartRoot("compact.predicate") // ok
	_ = StartRoot("compact predicate")
}
