// Package exclusivewindow seeds violations for the exclusivewindow
// checker's golden test: Apply is the root of an exclusive window and
// everything reachable from it must be uninterruptible.
package exclusivewindow

import (
	"context"
	"os"
	"time"
)

type Pass struct{}

func (p *Pass) Apply() {
	helper(context.Background())
	time.Sleep(time.Millisecond)
	ch := make(chan int, 1)
	<-ch
	select {
	case <-ch:
	default:
	}
	go background()
	cold()
}

// helper is reachable from Apply: its context parameter and every
// context method call are violations.
func helper(ctx context.Context) {
	_ = ctx.Err()
	_ = os.Getpid()
}

// background is spawned with go, so it runs outside the window and its
// sleep is fine.
func background() {
	time.Sleep(time.Second)
}

// cold is reachable but does nothing forbidden.
func cold() {}
