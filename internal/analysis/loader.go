package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("repro/internal/store")
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded module (or a standalone fixture directory): every
// package parsed and type-checked against a shared FileSet, with the
// cross-package indices the checkers need.
type Program struct {
	Fset   *token.FileSet
	Pkgs   []*Package
	byPath map[string]*Package

	funcDecls map[*types.Func]*funcDecl
}

type funcDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// Package returns the loaded package with the given import path (nil
// when absent).
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// FuncDecl returns the declaration of fn and the package holding it,
// when fn was declared in a loaded package (nil, nil otherwise —
// stdlib functions and interface methods have no loaded body).
func (p *Program) FuncDecl(fn *types.Func) (*Package, *ast.FuncDecl) {
	if d, ok := p.funcDecls[fn]; ok {
		return d.pkg, d.decl
	}
	return nil, nil
}

func (p *Program) indexFuncs() {
	p.funcDecls = make(map[*types.Func]*funcDecl)
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.funcDecls[fn] = &funcDecl{pkg: pkg, decl: fd}
				}
			}
		}
	}
}

// moduleImporter resolves module-internal imports from the packages
// checked so far and everything else (the standard library) from
// source via the go/importer "source" compiler.
type moduleImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// LoadModule loads and type-checks every buildable package under root,
// which must contain a go.mod declaring the module path. Test files
// and testdata directories are skipped; build constraints are honoured
// with the default build context (so files tagged slider_invariants
// are excluded, exactly as in a normal build).
func LoadModule(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	type parsed struct {
		path, dir string
		files     []*ast.File
		imports   []string // module-internal imports only
	}
	var units []*parsed
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		u := &parsed{path: path, dir: dir, files: files}
		seen := map[string]bool{}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if (ip == modPath || strings.HasPrefix(ip, modPath+"/")) && !seen[ip] {
					seen[ip] = true
					u.imports = append(u.imports, ip)
				}
			}
		}
		units = append(units, u)
	}
	// Topological order over module-internal imports, so each package's
	// dependencies are checked before it.
	byPath := make(map[string]*parsed, len(units))
	for _, u := range units {
		byPath[u.path] = u
	}
	var order []*parsed
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(u *parsed) error
	visit = func(u *parsed) error {
		switch state[u.path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", u.path)
		case 2:
			return nil
		}
		state[u.path] = 1
		for _, ip := range u.imports {
			if dep, ok := byPath[ip]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[u.path] = 2
		order = append(order, u)
		return nil
	}
	for _, u := range units {
		if err := visit(u); err != nil {
			return nil, err
		}
	}

	imp := &moduleImporter{
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package, len(order)),
	}
	prog := &Program{Fset: fset, byPath: make(map[string]*Package, len(order))}
	for _, u := range order {
		pkg, err := checkPackage(fset, imp, u.path, u.files)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", u.path, err)
		}
		pkg.Dir = u.dir
		imp.pkgs[u.path] = pkg.Types
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[u.path] = pkg
	}
	prog.indexFuncs()
	return prog, nil
}

// LoadDir loads a single standalone package directory (a testdata
// fixture) as import path asPath. Imports resolve against the standard
// library only.
func LoadDir(dir, asPath string) (*Program, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	imp := &moduleImporter{
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
	pkg, err := checkPackage(fset, imp, asPath, files)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", asPath, err)
	}
	pkg.Dir = dir
	prog := &Program{Fset: fset, Pkgs: []*Package{pkg}, byPath: map[string]*Package{asPath: pkg}}
	prog.indexFuncs()
	return prog, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Files: files, Types: tpkg, Info: info}, nil
}

// parseDir parses the buildable non-test Go files of dir under the
// default build context.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := build.Default.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// packageDirs walks root collecting every directory that may hold a
// package: testdata trees, hidden and underscore directories are
// skipped.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}
