package analysis

// DefaultCheckers returns the six checkers configured for this
// repository's documented invariants (see INVARIANTS.md). modPath is
// the module path ("repro").
func DefaultCheckers(modPath string) []Checker {
	store := modPath + "/internal/store"
	wal := modPath + "/internal/wal"
	maint := modPath + "/internal/maintenance"
	reasoner := modPath + "/internal/reasoner"
	rdf := modPath + "/internal/rdf"
	obs := modPath + "/internal/obs"
	trace := modPath + "/internal/trace"

	lockorder := &LockOrder{Classes: []LockClass{
		// Facade order (slider.go): retractMu is taken before every
		// other lock a retraction uses; the durability mutex before
		// markMu; markMu before explicitMu.
		{Name: "retractMu", PkgPath: modPath, Type: "Reasoner", Field: "retractMu", Rank: 10},
		{Name: "durability.mu", PkgPath: modPath, Type: "durability", Field: "mu", Rank: 20},
		{Name: "markMu", PkgPath: modPath, Type: "Reasoner", Field: "markMu", Rank: 30},
		{Name: "explicitMu", PkgPath: modPath, Type: "Reasoner", Field: "explicitMu", Rank: 40},
		// The WAL's log mutex nests under the facade locks (Append is
		// called with markMu and the durability mutex held).
		{Name: "wal.Log.mu", PkgPath: wal, Type: "Log", Field: "mu", Rank: 50},
		// Store order: workMu serializes run-slice writers and is taken
		// before any stripe lock; freezeMu guards the view epoch list
		// and precedes the stripe sweep in View.Release; stripe before
		// partition; predMu and the compaction queue mutex are leaves.
		{Name: "workMu", PkgPath: store, Type: "Store", Field: "workMu", Rank: 60},
		{Name: "freezeMu", PkgPath: store, Type: "Store", Field: "freezeMu", Rank: 70},
		{Name: "stripe.mu", PkgPath: store, Type: "stripe", Field: "mu", Rank: 80},
		{Name: "partition.mu", PkgPath: store, Type: "partition", Field: "mu", Rank: 90},
		{Name: "predMu", PkgPath: store, Type: "Store", Field: "predMu", Rank: 100},
		{Name: "comp.mu", PkgPath: store, Type: "Store", Field: "comp.mu", Rank: 110},
	}}

	exclusive := &ExclusiveWindow{
		RootPkg:  maint,
		RootType: "Pass",
		RootFunc: "Apply",
	}

	runimmutable := &RunImmutable{
		PkgPath: store,
		RunType: "run",
		Fields: map[string]bool{
			"pairs": true, "subs": true, "subOff": true, "objs": true, "subIdx": true,
			"objsD": true, "objOff": true, "subsByObj": true, "objIdx": true,
		},
		Blessed: map[string]bool{
			"buildRun": true, "buildRunFromOverlay": true, "mergeRuns": true,
			"mergeDirection": true, "csrFromMap": true, "checkRun": true,
		},
	}
	runimmutable.RunsSlice.Type = "partition"
	runimmutable.RunsSlice.Field = "runs"

	hotpath := &HotPath{
		StringerKey: rdf + ".Term",
		Hot: []HotFunc{
			// Facade ingest.
			{Pkg: modPath, Recv: "Reasoner", Name: "AddTriple"},
			{Pkg: modPath, Recv: "Reasoner", Name: "AddTriples"},
			{Pkg: modPath, Recv: "Reasoner", Name: "addTriples"},
			{Pkg: modPath, Recv: "Reasoner", Name: "applyAssert"},
			// Engine routing, buffering and join execution.
			{Pkg: reasoner, Recv: "Engine", Name: "Add"},
			{Pkg: reasoner, Recv: "Engine", Name: "AddAll"},
			{Pkg: reasoner, Recv: "Engine", Name: "AddBatch"},
			{Pkg: reasoner, Recv: "Engine", Name: "route"},
			{Pkg: reasoner, Recv: "Engine", Name: "routeBatch"},
			{Pkg: reasoner, Recv: "Engine", Name: "deliver"},
			{Pkg: reasoner, Recv: "Engine", Name: "deliverBatch"},
			{Pkg: reasoner, Recv: "Engine", Name: "submit"},
			{Pkg: reasoner, Recv: "Engine", Name: "runInstance"},
			{Pkg: reasoner, Recv: "buffer", Name: "add"},
			{Pkg: reasoner, Recv: "buffer", Name: "addBatch"},
			// Store probe and insert paths the joins hammer.
			{Pkg: store, Recv: "Store", Name: "Add"},
			{Pkg: store, Recv: "Store", Name: "AddBatch"},
			{Pkg: store, Recv: "Store", Name: "AddAll"},
			{Pkg: store, Recv: "Store", Name: "addGroup"},
			{Pkg: store, Recv: "Store", Name: "Contains"},
			{Pkg: store, Recv: "Store", Name: "ContainsBatch"},
			{Pkg: store, Recv: "Store", Name: "ObjectsAppend"},
			{Pkg: store, Recv: "Store", Name: "SubjectsAppend"},
			{Pkg: store, Recv: "partition", Name: "add"},
			{Pkg: store, Recv: "partition", Name: "remove"},
			// WAL append.
			{Pkg: wal, Recv: "Log", Name: "Append"},
			{Pkg: wal, Recv: "Log", Name: "AppendCtx"},
			{Pkg: wal, Recv: "Log", Name: "append"},
			// Traced ingest wrappers ride the same path as their plain
			// counterparts.
			{Pkg: modPath, Recv: "Reasoner", Name: "AddBatchCtx"},
			{Pkg: reasoner, Recv: "Engine", Name: "AddBatchCtx"},
			// Span creation itself: a disabled tracer must never touch
			// the clock, so these route through the package's gated now().
			{Pkg: trace, Name: "Start"},
			{Pkg: trace, Name: "StartRoot"},
			{Pkg: trace, Recv: "Span", Name: "Child"},
			{Pkg: trace, Recv: "Span", Name: "End"},
			{Pkg: trace, Recv: "Tracer", Name: "newSpan"},
			{Pkg: trace, Recv: "Tracer", Name: "record"},
		},
	}

	metricnames := &MetricNames{
		RegistryKey: obs + ".Registry",
		Methods: map[string]string{
			"Counter":     "counter",
			"CounterFunc": "counter",
			"Gauge":       "gauge",
			"GaugeFunc":   "gauge",
			"Histogram":   "histogram",
		},
		Prefix:            "slider_",
		HistogramSuffixes: HistogramUnitSuffixes,
	}

	spannames := &SpanNames{
		Funcs: []SpanFunc{
			// StartRequest is deliberately absent: the serving layer's
			// request names derive from its route table ("http."+route).
			{Pkg: trace, Name: "Start", Arg: 1},
			{Pkg: trace, Name: "StartRoot", Arg: 0},
		},
		Methods: []SpanMethod{
			{RecvKey: trace + ".Span", Name: "Child", Arg: 0},
		},
	}

	return []Checker{lockorder, exclusive, runimmutable, hotpath, metricnames, spannames}
}
