package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current checker output")

// runFixture loads testdata/src/<name> as a standalone package, runs
// the checker and compares the rendered diagnostics (paths relative to
// the fixture directory, so goldens are machine-independent) against
// testdata/<name>.golden.
func runFixture(t *testing.T, name string, checker Checker) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	prog, err := LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	var lines []string
	for _, d := range Run(prog, []Checker{checker}) {
		lines = append(lines, d.Rel(dir))
	}
	got := strings.Join(lines, "\n")
	if got != "" {
		got += "\n"
	}
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestLockOrderFixture(t *testing.T) {
	runFixture(t, "lockorder", &LockOrder{Classes: []LockClass{
		{Name: "outerMu", PkgPath: "fixture/lockorder", Type: "S", Field: "outer", Rank: 10},
		{Name: "innerMu", PkgPath: "fixture/lockorder", Type: "S", Field: "inner", Rank: 20},
	}})
}

func TestExclusiveWindowFixture(t *testing.T) {
	runFixture(t, "exclusivewindow", &ExclusiveWindow{
		RootPkg:  "fixture/exclusivewindow",
		RootType: "Pass",
		RootFunc: "Apply",
	})
}

func TestRunImmutableFixture(t *testing.T) {
	c := &RunImmutable{
		PkgPath: "fixture/runimmutable",
		RunType: "run",
		Fields:  map[string]bool{"subs": true, "objs": true},
		Blessed: map[string]bool{"buildRun": true},
	}
	c.RunsSlice.Type = "partition"
	c.RunsSlice.Field = "runs"
	runFixture(t, "runimmutable", c)
}

func TestHotPathFixture(t *testing.T) {
	runFixture(t, "hotpath", &HotPath{
		StringerKey: "fixture/hotpath.Term",
		Hot: []HotFunc{
			{Pkg: "fixture/hotpath", Recv: "engine", Name: "route"},
			{Pkg: "fixture/hotpath", Recv: "engine", Name: "deliver"},
			{Pkg: "fixture/hotpath", Recv: "engine", Name: "startSpan"},
		},
	})
}

func TestSpanNamesFixture(t *testing.T) {
	runFixture(t, "spannames", &SpanNames{
		Funcs: []SpanFunc{
			{Pkg: "fixture/spannames", Name: "Start", Arg: 1},
			{Pkg: "fixture/spannames", Name: "StartRoot", Arg: 0},
		},
		Methods: []SpanMethod{
			{RecvKey: "fixture/spannames.Span", Name: "Child", Arg: 0},
		},
	})
}

func TestMetricNamesFixture(t *testing.T) {
	runFixture(t, "metricnames", &MetricNames{
		RegistryKey: "fixture/metricnames.Registry",
		Methods: map[string]string{
			"Counter": "counter", "Gauge": "gauge", "Histogram": "histogram",
		},
		Prefix:            "slider_",
		HistogramSuffixes: HistogramUnitSuffixes,
	})
}

// TestTreeIsClean is the meta-test: the real module must produce zero
// diagnostics under the default configuration — the same invocation CI
// runs via cmd/slidervet.
func TestTreeIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := LoadModule(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	modPath := prog.Pkgs[0].Path
	for _, p := range prog.Pkgs {
		if len(p.Path) < len(modPath) {
			modPath = p.Path
		}
	}
	for _, d := range Run(prog, DefaultCheckers(modPath)) {
		t.Errorf("unexpected diagnostic: %s", d.Rel(root))
	}
}

// TestLoadModuleShape sanity-checks the loader: the module root and the
// packages the checkers key on must all be present.
func TestLoadModuleShape(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := LoadModule(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, path := range []string{
		"repro",
		"repro/internal/store",
		"repro/internal/maintenance",
		"repro/internal/wal",
		"repro/internal/reasoner",
		"repro/internal/obs",
	} {
		if prog.Package(path) == nil {
			t.Errorf("package %s not loaded", path)
		}
	}
}
