package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// SpanFunc names one package-level span-starting function and the
// index of its name argument.
type SpanFunc struct {
	Pkg  string // package path, e.g. "repro/internal/trace"
	Name string // function name, e.g. "Start"
	Arg  int    // index of the span-name argument
}

// SpanMethod names one span-starting method by receiver typeKey.
type SpanMethod struct {
	RecvKey string // e.g. "repro/internal/trace.Span"
	Name    string // method name, e.g. "Child"
	Arg     int
}

// SpanNames validates every trace-span creation in the program: the
// span name must be a compile-time constant string (dynamic names
// defeat grep, the flight recorder's per-family thresholds and this
// check) in dotted lowercase — [a-z0-9_] segments joined by single
// dots, e.g. "ingest.batch" or "wal.fsync". The one sanctioned
// exception, the serving layer's route-derived request names, uses a
// dedicated constructor (trace.StartRequest) that is simply not in the
// checked set.
type SpanNames struct {
	Funcs   []SpanFunc
	Methods []SpanMethod
}

func (c *SpanNames) Name() string { return "spannames" }

func (c *SpanNames) Check(prog *Program) []Diagnostic {
	funcs := make(map[string]int, len(c.Funcs))
	for _, f := range c.Funcs {
		funcs[f.Pkg+"."+f.Name] = f.Arg
	}
	methods := make(map[string]int, len(c.Methods))
	for _, m := range c.Methods {
		methods[m.RecvKey+"."+m.Name] = m.Arg
	}
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var arg int
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.SelectorExpr:
					if s, ok := pkg.Info.Selections[fun]; ok {
						// Method call: match by receiver type.
						arg, ok = methods[typeKey(s.Recv())+"."+fun.Sel.Name]
						if !ok {
							return true
						}
					} else {
						fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
						if !ok || fn.Pkg() == nil {
							return true
						}
						arg, ok = funcs[fn.Pkg().Path()+"."+fn.Name()]
						if !ok {
							return true
						}
					}
				case *ast.Ident:
					// Same-package call: Start(...) from within trace.
					fn, ok := pkg.Info.Uses[fun].(*types.Func)
					if !ok || fn.Pkg() == nil {
						return true
					}
					arg, ok = funcs[fn.Pkg().Path()+"."+fn.Name()]
					if !ok {
						return true
					}
				default:
					return true
				}
				if arg >= len(call.Args) {
					return true
				}
				out = append(out, c.checkName(prog, pkg, call.Args[arg])...)
				return true
			})
		}
	}
	return out
}

func (c *SpanNames) checkName(prog *Program, pkg *Package, arg ast.Expr) []Diagnostic {
	tv, ok := pkg.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return []Diagnostic{diag(prog, c.Name(), arg.Pos(),
			"span name is not a compile-time constant string: dynamic names defeat grep, the flight recorder's per-family thresholds and this check")}
	}
	name := constant.StringVal(tv.Value)
	if name == "" {
		return []Diagnostic{diag(prog, c.Name(), arg.Pos(), "span name is empty")}
	}
	if !validSpanName(name) {
		return []Diagnostic{diag(prog, c.Name(), arg.Pos(),
			"span name %q is not dotted lowercase: [a-z0-9_] segments joined by single dots (e.g. \"ingest.batch\")", name)}
	}
	return nil
}

// validSpanName checks the dotted-lowercase grammar: non-empty
// [a-z0-9_] segments joined by single dots.
func validSpanName(name string) bool {
	for _, seg := range strings.Split(name, ".") {
		if seg == "" {
			return false
		}
		for _, r := range seg {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
				return false
			}
		}
	}
	return true
}
