package analysis

import "go/ast"

// RunImmutable enforces the LSM store's publish-then-never-mutate rule:
// once a run is built, its CSR slices and index maps are immutable —
// frozen views, lock-free readers and checkpoint streams all alias
// them. Writes to any configured field of the run type (plain
// assignment, index assignment, or append-into) are flagged outside
// the blessed constructor/merge functions, and in-place element
// assignment to the partition's run slice is flagged everywhere (run
// slices are replaced wholesale, never patched).
type RunImmutable struct {
	PkgPath   string          // package declaring the run type
	RunType   string          // e.g. "run"
	Fields    map[string]bool // protected field names
	Blessed   map[string]bool // function names allowed to build runs
	RunsSlice struct {        // optional: the type+field holding []*run
		Type, Field string
	}
}

func (c *RunImmutable) Name() string { return "runimmutable" }

func (c *RunImmutable) Check(prog *Program) []Diagnostic {
	pkg := prog.Package(c.PkgPath)
	if pkg == nil {
		return nil
	}
	runKey := c.PkgPath + "." + c.RunType
	var out []Diagnostic
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			blessed := c.Blessed[fd.Name.Name]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if d := c.checkLHS(prog, pkg, fd, lhs, runKey, blessed); d != nil {
							out = append(out, *d)
						}
					}
				case *ast.CallExpr:
					if blessed {
						return true
					}
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
						if field := c.runField(pkg, n.Args[0], runKey); field != "" {
							out = append(out, diag(prog, c.Name(), n.Pos(),
								"append into %s.%s outside blessed constructors (%s): runs are immutable once published",
								c.RunType, field, fd.Name.Name))
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// checkLHS flags a write through an assignment left-hand side.
func (c *RunImmutable) checkLHS(prog *Program, pkg *Package, fd *ast.FuncDecl, lhs ast.Expr, runKey string, blessed bool) *Diagnostic {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if blessed {
			return nil
		}
		if field := c.runField(pkg, lhs, runKey); field != "" {
			d := diag(prog, c.Name(), lhs.Pos(),
				"assignment to %s.%s outside blessed constructors (%s): runs are immutable once published",
				c.RunType, field, fd.Name.Name)
			return &d
		}
	case *ast.IndexExpr:
		inner := ast.Unparen(lhs.X)
		sel, ok := inner.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		if !blessed {
			if field := c.runField(pkg, sel, runKey); field != "" {
				d := diag(prog, c.Name(), lhs.Pos(),
					"element assignment to %s.%s outside blessed constructors (%s): runs are immutable once published",
					c.RunType, field, fd.Name.Name)
				return &d
			}
		}
		// p.runs[i] = ... is forbidden everywhere: the slice is
		// replaced wholesale so captured headers stay valid.
		if c.RunsSlice.Field != "" && sel.Sel.Name == c.RunsSlice.Field {
			if tv, ok := pkg.Info.Types[sel.X]; ok &&
				typeKey(tv.Type) == c.PkgPath+"."+c.RunsSlice.Type {
				d := diag(prog, c.Name(), lhs.Pos(),
					"in-place element assignment to %s.%s: run slices are replaced wholesale, never patched",
					c.RunsSlice.Type, c.RunsSlice.Field)
				return &d
			}
		}
	}
	return nil
}

// runField reports the protected field name when e is a selector of a
// protected field on the run type ("" otherwise).
func (c *RunImmutable) runField(pkg *Package, e ast.Expr, runKey string) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || !c.Fields[sel.Sel.Name] {
		return ""
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || typeKey(tv.Type) != runKey {
		return ""
	}
	return sel.Sel.Name
}
