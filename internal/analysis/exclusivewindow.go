package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ExclusiveWindow verifies that the call graph reachable from one root
// function — maintenance.Pass.Apply, the exclusive retraction window —
// stays uninterruptible: no calls into os or net, no time.Sleep, no
// channel receives or selects, and no context.Context anywhere (no
// parameter of that type, no call into package context). The window
// runs with every writer paused; anything that can block or be
// cancelled inside it turns a ~30µs pause into an outage.
//
// Reachability follows statically-resolved calls only: calls through
// interfaces and func values are not expanded (the rules.Rule bodies
// the window executes are covered by convention, not by this checker),
// and `go` statements are skipped — a spawned goroutine runs outside
// the window.
type ExclusiveWindow struct {
	RootPkg  string // package declaring the root, e.g. "repro/internal/maintenance"
	RootType string // receiver type name ("" for a plain function)
	RootFunc string
}

func (c *ExclusiveWindow) Name() string { return "exclusivewindow" }

func (c *ExclusiveWindow) Check(prog *Program) []Diagnostic {
	rootKey := c.RootPkg + "." + c.RootFunc
	if c.RootType != "" {
		rootKey = fmt.Sprintf("%s.(%s).%s", c.RootPkg, c.RootType, c.RootFunc)
	}
	var root *types.Func
	for fn := range prog.funcDecls {
		if funcKey(fn) == rootKey {
			root = fn
			break
		}
	}
	if root == nil {
		return []Diagnostic{{
			Checker: c.Name(),
			Message: fmt.Sprintf("root function %s not found in the loaded program", rootKey),
		}}
	}

	// BFS over statically-resolved calls, recording how each function
	// was reached so messages can show the path step.
	reached := map[*types.Func]*types.Func{root: nil} // fn -> caller
	queue := []*types.Func{root}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		pkg, decl := prog.FuncDecl(fn)
		if decl == nil {
			continue
		}
		for _, callee := range calleesOf(prog, pkg, decl) {
			if _, ok := reached[callee]; ok {
				continue
			}
			reached[callee] = fn
			queue = append(queue, callee)
		}
	}

	var out []Diagnostic
	for fn := range reached {
		pkg, decl := prog.FuncDecl(fn)
		if decl == nil {
			continue
		}
		where := describeFunc(fn, prog.Package(c.RootPkg).Types)
		suffix := ""
		if fn != root {
			suffix = fmt.Sprintf(" (in %s, reachable from %s)", where, c.RootFunc)
		}
		// A reachable function that takes a context is itself a
		// violation: the window must not be cancellable.
		if sig, ok := fn.Type().(*types.Signature); ok {
			for i := 0; i < sig.Params().Len(); i++ {
				if typeKey(sig.Params().At(i).Type()) == "context.Context" {
					out = append(out, diag(prog, c.Name(), decl.Name.Pos(),
						"%s takes a context.Context but is reachable from %s: the exclusive window must be uninterruptible",
						where, c.RootFunc))
				}
			}
		}
		out = append(out, c.checkBody(prog, pkg, decl, suffix)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos.Offset < out[j].Pos.Offset })
	return out
}

// calleesOf resolves the static call targets of decl's body that are
// declared in the program, skipping `go` statements.
func calleesOf(prog *Program, pkg *Package, decl *ast.FuncDecl) []*types.Func {
	var out []*types.Func
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if fn := staticCallee(pkg.Info, n); fn != nil {
				if _, d := prog.FuncDecl(fn); d != nil {
					out = append(out, fn)
				}
			}
		}
		return true
	})
	return out
}

// checkBody flags the forbidden constructs in one reachable body.
func (c *ExclusiveWindow) checkBody(prog *Program, pkg *Package, decl *ast.FuncDecl, suffix string) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // spawned work runs outside the window
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				out = append(out, diag(prog, c.Name(), n.Pos(),
					"channel receive inside the exclusive window%s", suffix))
			}
		case *ast.SelectStmt:
			out = append(out, diag(prog, c.Name(), n.Pos(),
				"select statement inside the exclusive window%s", suffix))
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					out = append(out, diag(prog, c.Name(), n.Pos(),
						"range over channel inside the exclusive window%s", suffix))
				}
			}
		case *ast.CallExpr:
			fn := calleeForbidden(pkg.Info, n)
			if fn == "" {
				break
			}
			out = append(out, diag(prog, c.Name(), n.Pos(),
				"call to %s inside the exclusive window%s", fn, suffix))
		}
		return true
	})
	return out
}

// calleeForbidden reports the rendered name of a forbidden callee
// ("" when the call is fine): anything in os, os/*, net, net/* or
// context, plus time.Sleep, plus methods on context.Context values.
func calleeForbidden(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// Method on a context value (ctx.Err, ctx.Done, ctx.Deadline...).
	if s, ok := info.Selections[sel]; ok {
		if typeKey(s.Recv()) == "context.Context" {
			return "Context." + sel.Sel.Name
		}
		return ""
	}
	// Package-qualified call.
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	switch {
	case path == "os" || strings.HasPrefix(path, "os/"),
		path == "net" || strings.HasPrefix(path, "net/"),
		path == "context":
		return path + "." + fn.Name()
	case path == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	}
	return ""
}
