package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HotFunc names one function on the hot-path allowlist.
type HotFunc struct {
	Pkg  string // package path
	Recv string // receiver type name ("" for plain functions)
	Name string
}

// HotPath enforces the ingest/join/WAL-append latency discipline in an
// explicit allowlist of hot functions: no bare time.Now() (timing must
// go through the gated obs.NowIfEnabled, which is free when metrics
// are off), no fmt.Sprintf (fmt.Errorf on cold error returns is fine),
// and no Term.String() (the dictionary decode + allocation belongs in
// cold presentation paths). Function literals inside a hot function
// are checked too — they run on the same path.
type HotPath struct {
	Hot []HotFunc
	// StringerKey is the typeKey of the type whose String() is banned,
	// e.g. "repro/internal/rdf.Term".
	StringerKey string
}

func (c *HotPath) Name() string { return "hotpath" }

func (c *HotPath) Check(prog *Program) []Diagnostic {
	hot := make(map[string]bool, len(c.Hot))
	for _, h := range c.Hot {
		key := h.Pkg + "." + h.Name
		if h.Recv != "" {
			key = fmt.Sprintf("%s.(%s).%s", h.Pkg, h.Recv, h.Name)
		}
		hot[key] = true
	}
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || !hot[funcKey(fn)] {
					continue
				}
				out = append(out, c.checkBody(prog, pkg, fd)...)
			}
		}
	}
	return out
}

func (c *HotPath) checkBody(prog *Program, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Method call: Term.String().
		if s, ok := pkg.Info.Selections[sel]; ok {
			if sel.Sel.Name == "String" && typeKey(s.Recv()) == c.StringerKey {
				out = append(out, diag(prog, c.Name(), call.Pos(),
					"Term.String() on hot path %s: decode/format work belongs in cold presentation paths", fd.Name.Name))
			}
			return true
		}
		// Package-qualified call.
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "time" && fn.Name() == "Now":
			out = append(out, diag(prog, c.Name(), call.Pos(),
				"bare time.Now() on hot path %s: use obs.NowIfEnabled so the clock read is free when metrics are off", fd.Name.Name))
		case fn.Pkg().Path() == "fmt" && fn.Name() == "Sprintf":
			out = append(out, diag(prog, c.Name(), call.Pos(),
				"fmt.Sprintf on hot path %s: formatting allocates; move it off the hot path", fd.Name.Name))
		}
		return true
	})
	return out
}
