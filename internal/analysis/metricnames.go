package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"
)

// MetricNames validates every obs metric registration in the program:
// the name must be a compile-time constant string (a literal or a
// resolvable const — dynamic names defeat grep and dashboards),
// prefixed "slider_", lowercase [a-z0-9_]; counters must end in
// "_total", histograms in a recognized unit suffix, and gauges must
// not claim "_total". Re-registering one name with a different
// instrument kind anywhere in the tree is flagged as a collision (at
// runtime it would panic on first use).
type MetricNames struct {
	RegistryKey string // typeKey of the registry, e.g. "repro/internal/obs.Registry"
	// Methods maps registration method names to their kind:
	// "counter", "gauge" or "histogram".
	Methods map[string]string
	Prefix  string // required name prefix, e.g. "slider_"
	// HistogramSuffixes are the unit suffixes a histogram may end in.
	HistogramSuffixes []string
}

func (c *MetricNames) Name() string { return "metricnames" }

type registration struct {
	kind string
	pos  token.Pos
	pkg  *Package
}

func (c *MetricNames) Check(prog *Program) []Diagnostic {
	var out []Diagnostic
	seen := map[string]registration{}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				kind, ok := c.Methods[sel.Sel.Name]
				if !ok || len(call.Args) == 0 {
					return true
				}
				s, ok := pkg.Info.Selections[sel]
				if !ok || typeKey(s.Recv()) != c.RegistryKey {
					return true
				}
				out = append(out, c.checkRegistration(prog, pkg, call, kind, seen)...)
				return true
			})
		}
	}
	return out
}

func (c *MetricNames) checkRegistration(prog *Program, pkg *Package, call *ast.CallExpr, kind string, seen map[string]registration) []Diagnostic {
	arg := call.Args[0]
	tv, ok := pkg.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return []Diagnostic{diag(prog, c.Name(), arg.Pos(),
			"metric name is not a compile-time constant string: dynamic names defeat grep, dashboards and this check")}
	}
	name := constant.StringVal(tv.Value)
	var out []Diagnostic
	if !strings.HasPrefix(name, c.Prefix) {
		out = append(out, diag(prog, c.Name(), arg.Pos(),
			"metric %q lacks the %q prefix", name, c.Prefix))
	} else if !validMetricRune(name) {
		out = append(out, diag(prog, c.Name(), arg.Pos(),
			"metric %q contains characters outside [a-z0-9_]", name))
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			out = append(out, diag(prog, c.Name(), arg.Pos(),
				"counter %q must end in _total", name))
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			out = append(out, diag(prog, c.Name(), arg.Pos(),
				"gauge %q must not end in _total (it is a state, not an accumulation)", name))
		}
	case "histogram":
		ok := false
		for _, suf := range c.HistogramSuffixes {
			if strings.HasSuffix(name, suf) {
				ok = true
				break
			}
		}
		if !ok {
			out = append(out, diag(prog, c.Name(), arg.Pos(),
				"histogram %q must end in a unit suffix (%s)", name, strings.Join(c.HistogramSuffixes, ", ")))
		}
	}
	if prev, ok := seen[name]; ok {
		if prev.kind != kind {
			out = append(out, diag(prog, c.Name(), arg.Pos(),
				"metric %q re-registered as a %s (first registered as a %s): kinds must not collide",
				name, kind, prev.kind))
		}
	} else {
		seen[name] = registration{kind: kind, pos: arg.Pos(), pkg: pkg}
	}
	return out
}

// validMetricRune checks the [a-z0-9_] grammar (the prefix check
// already anchored the first rune).
func validMetricRune(name string) bool {
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
			return false
		}
	}
	return true
}

// HistogramUnitSuffixes is the default unit vocabulary: durations and
// sizes, plus the repo's two dimensionless size histograms (batch
// triple counts and planner cost estimates).
var HistogramUnitSuffixes = []string{"_seconds", "_bytes", "_triples", "_cost"}
