package snapshot

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// TestSaveFromViewsDuringConcurrentGrowth snapshots a frozen store view
// plus a prefix-stable dictionary view while writers keep registering
// terms and adding triples, and checks the loaded snapshot equals the
// freeze-time state exactly — the core guarantee behind non-blocking
// checkpoints.
func TestSaveFromViewsDuringConcurrentGrowth(t *testing.T) {
	dict := rdf.NewDictionary()
	st := store.New()
	var frozen []rdf.Triple
	for i := 0; i < 500; i++ {
		s := dict.Encode(rdf.NewIRI(fmt.Sprintf("http://e/s%d", i)))
		p := dict.Encode(rdf.NewIRI(fmt.Sprintf("http://e/p%d", i%5)))
		o := dict.Encode(rdf.NewLiteral(fmt.Sprintf("v%d", i)))
		tr := rdf.T(s, p, o)
		if st.Add(tr) {
			frozen = append(frozen, tr)
		}
	}
	iris, blanks, literals := dict.KindCounts()
	dv := dict.ViewAt(iris, blanks, literals)
	sv := st.Freeze()
	defer sv.Release()

	// Writers race the snapshot write: fresh terms and triples must not
	// leak into it.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := dict.Encode(rdf.NewIRI(fmt.Sprintf("http://late/s%d", i)))
			p := dict.Encode(rdf.NewIRI(fmt.Sprintf("http://e/p%d", i%5)))
			o := dict.Encode(rdf.NewLiteral(fmt.Sprintf("late %d", i)))
			st.Add(rdf.T(s, p, o))
		}
	}()

	var buf bytes.Buffer
	if err := SaveFrom(&buf, dv, sv); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	gotDict, gotStore, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotDict.Len() != dv.Len() {
		t.Fatalf("loaded dictionary has %d terms, view had %d", gotDict.Len(), dv.Len())
	}
	if gotStore.Len() != len(frozen) {
		t.Fatalf("loaded store has %d triples, frozen state had %d", gotStore.Len(), len(frozen))
	}
	for _, tr := range frozen {
		if !gotStore.Contains(tr) {
			t.Fatalf("frozen triple %v missing from loaded snapshot", tr)
		}
	}
	// IDs must have survived exactly: every frozen term resolves in the
	// loaded dictionary to the same term.
	dv.ForEach(func(id rdf.ID, term rdf.Term) bool {
		got, ok := gotDict.Term(id)
		if !ok || got != term {
			t.Fatalf("ID %d resolves to %v in the loaded dictionary, want %v", uint64(id), got, term)
		}
		return true
	})
}
