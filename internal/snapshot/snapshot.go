// Package snapshot persists a reasoner's knowledge base — the dictionary
// and the (materialised) triple store — in a compact binary format, so a
// closed ontology can be reloaded instantly as background knowledge
// instead of being re-parsed and re-inferred.
//
// Format (little-endian, varint-coded):
//
//	magic "SLKB" | version u8
//	dictionary: count, then per term: kind u8, value, lang, datatype
//	            (strings as varint length + bytes; terms appear in
//	            sequence order per kind so IDs reload identically)
//	triples:    predicate-grouped: #groups, then per group the predicate
//	            ID, #pairs, and the (subject, object) ID pairs
//
// IDs are preserved exactly, so snapshots interoperate with code that
// stored IDs elsewhere.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/rdf"
	"repro/internal/store"
)

var magic = [4]byte{'S', 'L', 'K', 'B'}

// Version of the snapshot format.
const Version = 1

// ErrBadSnapshot reports a malformed or truncated snapshot.
var ErrBadSnapshot = errors.New("snapshot: malformed snapshot")

// TermSource is the dictionary side of a snapshot: anything that can
// enumerate (ID, Term) pairs in the kind-then-sequence order Load
// expects, and say up front how many there are — the count lets the
// writer stream terms straight to the output instead of buffering the
// whole dictionary (a GC-visible allocation spike at the worst moment
// for a checkpoint racing live writers). Len and ForEach must agree;
// for a live *rdf.Dictionary that means no concurrent registration
// (quiescence), for an *rdf.DictView it holds by construction.
type TermSource interface {
	Len() int
	ForEach(f func(rdf.ID, rdf.Term) bool)
}

// TripleSource is the store side of a snapshot: predicate-grouped
// iteration with stable per-predicate counts. Satisfied by *store.Store
// (quiescent) and *store.View (concurrent-safe frozen view).
type TripleSource interface {
	Predicates() []rdf.ID
	PredicateLen(p rdf.ID) int
	ForEachWithPredicate(p rdf.ID, f func(s, o rdf.ID) bool)
}

// Save writes the dictionary and store to w. The store must not change
// between the per-predicate count and iteration passes — use SaveFrom
// with store/dictionary views to snapshot while writers keep going.
func Save(w io.Writer, dict *rdf.Dictionary, st *store.Store) error {
	return SaveFrom(w, dict, st)
}

// SaveFrom writes a snapshot from arbitrary term and triple sources.
// Streaming from a store.View and an rdf.DictView captures a consistent
// knowledge base while the live structures continue to take writes.
func SaveFrom(w io.Writer, dict TermSource, st TripleSource) error {
	// A live dictionary can grow between the Len and ForEach passes; pin
	// it to a prefix-stable view so a concurrent registration cannot
	// fail the save with a count mismatch.
	if d, ok := dict.(*rdf.Dictionary); ok {
		dict = d.ViewAt(d.KindCounts())
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(Version); err != nil {
		return err
	}
	if err := saveDictionary(bw, dict); err != nil {
		return err
	}
	if err := saveTriples(bw, st); err != nil {
		return err
	}
	return bw.Flush()
}

func putUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func putString(w *bufio.Writer, s string) error {
	if err := putUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

// saveDictionary walks IDs in sequence order per kind so that re-encoding
// on load reproduces identical IDs. Terms stream straight to the writer.
func saveDictionary(w *bufio.Writer, dict TermSource) error {
	n := dict.Len()
	if err := putUvarint(w, uint64(n)); err != nil {
		return err
	}
	written := 0
	var werr error
	dict.ForEach(func(id rdf.ID, t rdf.Term) bool {
		if werr = w.WriteByte(byte(t.Kind)); werr != nil {
			return false
		}
		if werr = putUvarint(w, uint64(id)); werr != nil {
			return false
		}
		if werr = putString(w, t.Value); werr != nil {
			return false
		}
		if werr = putString(w, t.Lang); werr != nil {
			return false
		}
		if werr = putString(w, t.Datatype); werr != nil {
			return false
		}
		written++
		return true
	})
	if werr != nil {
		return werr
	}
	if written != n {
		return fmt.Errorf("snapshot: dictionary yielded %d terms, source declared %d", written, n)
	}
	return nil
}

func saveTriples(w *bufio.Writer, st TripleSource) error {
	preds := st.Predicates()
	if err := putUvarint(w, uint64(len(preds))); err != nil {
		return err
	}
	for _, p := range preds {
		if err := putUvarint(w, uint64(p)); err != nil {
			return err
		}
		if err := putUvarint(w, uint64(st.PredicateLen(p))); err != nil {
			return err
		}
		var werr error
		st.ForEachWithPredicate(p, func(s, o rdf.ID) bool {
			if werr = putUvarint(w, uint64(s)); werr != nil {
				return false
			}
			if werr = putUvarint(w, uint64(o)); werr != nil {
				return false
			}
			return true
		})
		if werr != nil {
			return werr
		}
	}
	return nil
}

// Load reads a snapshot from r, returning a freshly populated dictionary
// and store.
func Load(r io.Reader) (*rdf.Dictionary, *store.Store, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("%w: missing header", ErrBadSnapshot)
	}
	if [4]byte{hdr[0], hdr[1], hdr[2], hdr[3]} != magic {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if hdr[4] != Version {
		return nil, nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, hdr[4])
	}
	dict, err := loadDictionary(br)
	if err != nil {
		return nil, nil, err
	}
	st, err := loadTriples(br)
	if err != nil {
		return nil, nil, err
	}
	return dict, st, nil
}

func getString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("%w: truncated string", ErrBadSnapshot)
	}
	if n > 1<<24 {
		return "", fmt.Errorf("%w: string too long", ErrBadSnapshot)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("%w: truncated string body", ErrBadSnapshot)
	}
	return string(buf), nil
}

func loadDictionary(br *bufio.Reader) (*rdf.Dictionary, error) {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated dictionary", ErrBadSnapshot)
	}
	dict := rdf.NewDictionary()
	for i := uint64(0); i < count; i++ {
		kindByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated term", ErrBadSnapshot)
		}
		if kindByte > byte(rdf.TermLiteral) {
			return nil, fmt.Errorf("%w: bad term kind %d", ErrBadSnapshot, kindByte)
		}
		wantID, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated term id", ErrBadSnapshot)
		}
		value, err := getString(br)
		if err != nil {
			return nil, err
		}
		lang, err := getString(br)
		if err != nil {
			return nil, err
		}
		datatype, err := getString(br)
		if err != nil {
			return nil, err
		}
		term := rdf.Term{Kind: rdf.TermKind(kindByte), Value: value, Lang: lang, Datatype: datatype}
		got := dict.Encode(term)
		if got != rdf.ID(wantID) {
			return nil, fmt.Errorf("%w: term %q loaded with ID %d, snapshot says %d (out-of-order dictionary)",
				ErrBadSnapshot, term, got, wantID)
		}
	}
	return dict, nil
}

func loadTriples(br *bufio.Reader) (*store.Store, error) {
	groups, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated triple section", ErrBadSnapshot)
	}
	st := store.New()
	for g := uint64(0); g < groups; g++ {
		p, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated predicate", ErrBadSnapshot)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated group size", ErrBadSnapshot)
		}
		for i := uint64(0); i < n; i++ {
			s, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: truncated subject", ErrBadSnapshot)
			}
			o, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: truncated object", ErrBadSnapshot)
			}
			st.Add(rdf.T(rdf.ID(s), rdf.ID(p), rdf.ID(o)))
		}
	}
	return st, nil
}
