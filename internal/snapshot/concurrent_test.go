package snapshot

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// TestRoundTripAfterConcurrentBuild proves that the striped dictionary's
// ID assignment stays deterministic for snapshot purposes: a knowledge
// base built by parallel encoders/adders survives a save/load round trip
// with every ID preserved exactly — the Load path re-encodes terms in
// ForEach order, which must reproduce the IDs regardless of how racily
// they were first assigned.
func TestRoundTripAfterConcurrentBuild(t *testing.T) {
	dict := rdf.NewDictionary()
	st := store.New()
	const workers = 8
	const perWorker = 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]rdf.Triple, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				// Overlapping subject/predicate spaces across workers so
				// dictionary stripes race on first-encounter inserts.
				s := dict.Encode(rdf.NewIRI(fmt.Sprintf("http://e/s%d", i%100)))
				p := dict.Encode(rdf.NewIRI(fmt.Sprintf("http://e/p%d", i%7)))
				o := dict.Encode(rdf.NewLiteral(fmt.Sprintf("w%d value %d", w, i)))
				batch = append(batch, rdf.T(s, p, o))
			}
			st.AddBatch(batch)
		}(w)
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := Save(&buf, dict, st); err != nil {
		t.Fatal(err)
	}
	dict2, st2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load after concurrent build: %v (nondeterministic ID assignment?)", err)
	}
	if dict2.Len() != dict.Len() {
		t.Fatalf("dictionary size %d, want %d", dict2.Len(), dict.Len())
	}
	if st2.Len() != st.Len() {
		t.Fatalf("store size %d, want %d", st2.Len(), st.Len())
	}
	// IDs preserved exactly, in both directions.
	dict.ForEach(func(id rdf.ID, term rdf.Term) bool {
		if got, ok := dict2.Lookup(term); !ok || got != id {
			t.Fatalf("term %v has ID %d after reload, want %d", term, got, id)
		}
		return true
	})
	st.ForEach(func(tr rdf.Triple) bool {
		if !st2.Contains(tr) {
			t.Fatalf("loaded store missing %v", tr)
		}
		return true
	})
}
