package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
	"repro/internal/store"
)

// build populates a dictionary and store with a mixed knowledge base.
func build(n int, seed int64) (*rdf.Dictionary, *store.Store) {
	rng := rand.New(rand.NewSource(seed))
	dict := rdf.NewDictionary()
	st := store.New()
	for i := 0; i < n; i++ {
		s := dict.Encode(rdf.NewIRI(fmt.Sprintf("http://e/s%d", rng.Intn(n/2+1))))
		p := dict.Encode(rdf.NewIRI(fmt.Sprintf("http://e/p%d", rng.Intn(7))))
		var o rdf.ID
		switch rng.Intn(4) {
		case 0:
			o = dict.Encode(rdf.NewLiteral(fmt.Sprintf("value %d", i)))
		case 1:
			o = dict.Encode(rdf.NewLangLiteral(fmt.Sprintf("valeur %d", i), "fr"))
		case 2:
			o = dict.Encode(rdf.NewBlank(fmt.Sprintf("b%d", rng.Intn(20))))
		default:
			o = dict.Encode(rdf.NewIRI(fmt.Sprintf("http://e/o%d", rng.Intn(n/2+1))))
		}
		st.Add(rdf.T(s, p, o))
	}
	return dict, st
}

func TestRoundTrip(t *testing.T) {
	dict, st := build(500, 1)
	var buf bytes.Buffer
	if err := Save(&buf, dict, st); err != nil {
		t.Fatal(err)
	}
	dict2, st2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dict2.Len() != dict.Len() {
		t.Fatalf("dictionary size %d, want %d", dict2.Len(), dict.Len())
	}
	if st2.Len() != st.Len() {
		t.Fatalf("store size %d, want %d", st2.Len(), st.Len())
	}
	// Every triple present with identical IDs, and decodable to the same
	// statements.
	st.ForEach(func(tr rdf.Triple) bool {
		if !st2.Contains(tr) {
			t.Fatalf("loaded store missing %v", tr)
		}
		orig, ok1 := dict.DecodeTriple(tr)
		back, ok2 := dict2.DecodeTriple(tr)
		if !ok1 || !ok2 || orig != back {
			t.Fatalf("decode mismatch for %v: %v vs %v", tr, orig, back)
		}
		return true
	})
}

func TestRoundTripEmpty(t *testing.T) {
	dict := rdf.NewDictionary()
	st := store.New()
	var buf bytes.Buffer
	if err := Save(&buf, dict, st); err != nil {
		t.Fatal(err)
	}
	dict2, st2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 0 || dict2.Len() != dict.Len() {
		t.Fatalf("empty round trip: %d triples, %d terms", st2.Len(), dict2.Len())
	}
}

func TestIDsPreservedExactly(t *testing.T) {
	dict, st := build(200, 7)
	// Remember an arbitrary term's ID.
	id := dict.Encode(rdf.NewIRI("http://e/landmark"))
	st.Add(rdf.T(id, rdf.IDType, rdf.IDClass))
	var buf bytes.Buffer
	if err := Save(&buf, dict, st); err != nil {
		t.Fatal(err)
	}
	dict2, st2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	id2, ok := dict2.Lookup(rdf.NewIRI("http://e/landmark"))
	if !ok || id2 != id {
		t.Fatalf("landmark ID changed: %d -> %d", id, id2)
	}
	if !st2.Contains(rdf.T(id, rdf.IDType, rdf.IDClass)) {
		t.Fatal("triple with landmark ID missing")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("NOPE\x01"),
		[]byte("SLKB\x63"), // wrong version
		[]byte("SLKB\x01"), // truncated after header
	}
	for i, data := range cases {
		if _, _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("case %d: err = %v, want ErrBadSnapshot", i, err)
		}
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	dict, st := build(100, 3)
	var buf bytes.Buffer
	if err := Save(&buf, dict, st); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop the snapshot at various points; every prefix must error, not
	// panic or silently succeed.
	for _, cut := range []int{6, len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// Property: save/load round trip preserves the knowledge base for
// arbitrary seeds and sizes.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		dict, st := build(int(n)+10, seed)
		var buf bytes.Buffer
		if err := Save(&buf, dict, st); err != nil {
			return false
		}
		dict2, st2, err := Load(&buf)
		if err != nil {
			return false
		}
		if st2.Len() != st.Len() || dict2.Len() != dict.Len() {
			return false
		}
		ok := true
		st.ForEach(func(tr rdf.Triple) bool {
			if !st2.Contains(tr) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestSavePropagatesWriteErrors(t *testing.T) {
	dict, st := build(5000, 2)
	if err := Save(&failingWriter{n: 64}, dict, st); err == nil {
		t.Fatal("write error swallowed")
	}
}
