package store

import (
	"sort"
	"testing"

	"repro/internal/rdf"
)

func sortedIDs(ids []rdf.ID) []rdf.ID {
	out := append([]rdf.ID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func idsEqual(a, b []rdf.ID) bool {
	a, b = sortedIDs(a), sortedIDs(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestViewPatternProbes pins the freeze-time semantics of the view's
// pattern-indexed probes (ObjectsAppend/SubjectsAppend) — the methods
// that let rule joins and backward support checks run against a frozen
// view: post-freeze inserts are invisible, post-freeze removals still
// answer, and partitions born after the freeze are empty.
func TestViewPatternProbes(t *testing.T) {
	const (
		p1 = rdf.ID(1000)
		p2 = rdf.ID(1001)
		s1 = rdf.ID(1)
		s2 = rdf.ID(2)
		o1 = rdf.ID(11)
		o2 = rdf.ID(12)
		o3 = rdf.ID(13)
	)
	st := New()
	st.Add(rdf.T(s1, p1, o1))
	st.Add(rdf.T(s1, p1, o2))
	st.Add(rdf.T(s2, p1, o1))

	v := st.Freeze()
	defer v.Release()

	// Post-freeze churn: a removal, an insert on a frozen subject, and a
	// whole partition born after the freeze.
	st.Remove(rdf.T(s1, p1, o1))
	st.Add(rdf.T(s1, p1, o3))
	st.Add(rdf.T(s2, p2, o1))

	if got := v.ObjectsAppend(nil, p1, s1); !idsEqual(got, []rdf.ID{o1, o2}) {
		t.Fatalf("frozen objects of (s1,p1): %v, want [o1 o2]", got)
	}
	if got := st.Objects(p1, s1); !idsEqual(got, []rdf.ID{o2, o3}) {
		t.Fatalf("live objects of (s1,p1): %v, want [o2 o3]", got)
	}
	if got := v.SubjectsAppend(nil, p1, o1); !idsEqual(got, []rdf.ID{s1, s2}) {
		t.Fatalf("frozen subjects of (p1,o1): %v, want [s1 s2]", got)
	}
	if got := v.Subjects(p1, o3); len(got) != 0 {
		t.Fatalf("post-freeze insert visible through the view: %v", got)
	}
	if got := v.Objects(p2, s2); len(got) != 0 {
		t.Fatalf("post-freeze partition visible through the view: %v", got)
	}
	// Append semantics: dst is extended, not replaced.
	pre := []rdf.ID{rdf.ID(999)}
	if got := v.ObjectsAppend(pre, p1, s1); len(got) != 3 || got[0] != rdf.ID(999) {
		t.Fatalf("ObjectsAppend does not extend dst: %v", got)
	}
}

// TestViewProbesDrainedSubject checks a subject fully drained after the
// freeze still answers with its frozen pairs.
func TestViewProbesDrainedSubject(t *testing.T) {
	const (
		p  = rdf.ID(2000)
		s  = rdf.ID(5)
		o1 = rdf.ID(21)
		o2 = rdf.ID(22)
	)
	st := New()
	st.Add(rdf.T(s, p, o1))
	st.Add(rdf.T(s, p, o2))
	v := st.Freeze()
	defer v.Release()
	st.Remove(rdf.T(s, p, o1))
	st.Remove(rdf.T(s, p, o2))

	if got := v.ObjectsAppend(nil, p, s); !idsEqual(got, []rdf.ID{o1, o2}) {
		t.Fatalf("frozen objects of drained subject: %v, want [o1 o2]", got)
	}
	if got := v.SubjectsAppend(nil, p, o1); !idsEqual(got, []rdf.ID{s}) {
		t.Fatalf("frozen subjects of drained pair: %v, want [s]", got)
	}
	if got := st.Objects(p, s); len(got) != 0 {
		t.Fatalf("live store still answers for drained subject: %v", got)
	}
}

// TestViewProbesMatchIteration cross-checks the probes against the
// view's (already-proven) iteration on a churned store: for every
// predicate, the pairs reconstructed via ObjectsAppend over all frozen
// subjects must equal ForEachWithPredicate's output.
func TestViewProbesMatchIteration(t *testing.T) {
	st := New()
	var preds []rdf.ID
	for p := rdf.ID(0); p < 5; p++ {
		preds = append(preds, rdf.ID(3000)+p)
	}
	tr := func(i, j, k int) rdf.Triple {
		return rdf.T(rdf.ID(100+i), preds[j], rdf.ID(200+k))
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 5; j++ {
			st.Add(tr(i, j, (i+j)%6))
		}
	}
	v := st.Freeze()
	defer v.Release()
	// Churn half of everything.
	for i := 0; i < 8; i += 2 {
		for j := 0; j < 5; j++ {
			st.Remove(tr(i, j, (i+j)%6))
			st.Add(tr(i, j, 7))
		}
	}
	for _, p := range preds {
		want := map[[2]rdf.ID]bool{}
		v.ForEachWithPredicate(p, func(s, o rdf.ID) bool {
			want[[2]rdf.ID{s, o}] = true
			return true
		})
		got := map[[2]rdf.ID]bool{}
		subjects := map[rdf.ID]bool{}
		for pair := range want {
			subjects[pair[0]] = true
		}
		for s := range subjects {
			for _, o := range v.ObjectsAppend(nil, p, s) {
				got[[2]rdf.ID{s, o}] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("predicate %d: probes found %d pairs, iteration %d", p, len(got), len(want))
		}
		for pair := range want {
			if !got[pair] {
				t.Fatalf("predicate %d: probes missing %v", p, pair)
			}
			// And the symmetric index agrees.
			found := false
			for _, s := range v.SubjectsAppend(nil, p, pair[1]) {
				if s == pair[0] {
					found = true
				}
			}
			if !found {
				t.Fatalf("predicate %d: SubjectsAppend missing %v", p, pair)
			}
		}
	}
}
