package store

import (
	"time"

	"repro/internal/obs"
)

// Metrics is the store's optional compaction instrumentation: how long
// the three background maintenance operations hold the partition write
// lock. Counters (flushes, merges, purges, pairs merged) are not here —
// the store keeps those itself (Stats) and the facade bridges them to
// the registry, so /stats and /metrics read the same atomics.
type Metrics struct {
	// FlushSeconds times sealing one partition's overlay into a run.
	FlushSeconds *obs.Histogram
	// MergeSeconds times one size-tiered run merge (the off-lock union
	// plus the run-slice swap).
	MergeSeconds *obs.Histogram
	// PurgeSeconds times one tombstone purge (O(run pairs), under the
	// partition lock — the heaviest pause compaction can inflict).
	PurgeSeconds *obs.Histogram
}

// NewMetrics registers the store's duration instruments in reg under
// slider_compaction_seconds{op=...}.
func NewMetrics(reg *obs.Registry) *Metrics {
	const name = "slider_compaction_seconds"
	const help = "Store compaction operation durations by op (flush, merge, purge)."
	return &Metrics{
		FlushSeconds: reg.Histogram(name, help, nil, "op", "flush"),
		MergeSeconds: reg.Histogram(name, help, nil, "op", "merge"),
		PurgeSeconds: reg.Histogram(name, help, nil, "op", "purge"),
	}
}

// SetMetrics attaches (or replaces) the store's instrumentation. Safe
// to call at any time; nil detaches.
func (st *Store) SetMetrics(m *Metrics) { st.metrics.Store(m) }

// CompactionBacklog returns how many partitions are queued for
// background compaction — the live compaction-debt gauge.
func (st *Store) CompactionBacklog() int {
	st.comp.mu.Lock()
	defer st.comp.mu.Unlock()
	return len(st.comp.queue)
}

// CompactionErr returns the sticky error recorded if a background
// compaction pass ever panicked. The store keeps serving (the panic is
// contained to the worker goroutine), but compaction debt then grows
// unboundedly — the serving layer surfaces this as a degraded health
// state rather than waiting for slow death by overlay growth.
func (st *Store) CompactionErr() error {
	st.comp.mu.Lock()
	defer st.comp.mu.Unlock()
	return st.comp.err
}

// CompactionErrSince returns when CompactionErr's error was recorded
// (zero when healthy) — the Since a health endpoint reports for a
// compaction-degraded store.
func (st *Store) CompactionErrSince() time.Time {
	st.comp.mu.Lock()
	defer st.comp.mu.Unlock()
	return st.comp.errSince
}
