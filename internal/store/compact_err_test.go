package store

import (
	"strings"
	"testing"
	"time"

	"repro/internal/rdf"
)

// TestCompactionPanicIsSticky: a panic inside the background compactor
// must not take the process down. A *persistent* panic cause exhausts
// the capped restart budget (compactMaxRestarts respawns with backoff,
// ~310ms total); the worker then records a sticky CompactionErr,
// retires, and refuses further passes — while the store itself stays
// fully usable (compaction only reshapes physical layout). See
// TestCompactionPanicRestartRecovers for the transient-cause half.
func TestCompactionPanicIsSticky(t *testing.T) {
	SetCompactTestHook(func() { panic("injected failure") })
	defer SetCompactTestHook(nil)

	st := New()
	// flushMin+1 pairs on one predicate crosses the overlay threshold,
	// enqueues the partition and spawns the (hooked) worker.
	for i := 0; i < flushMin+1; i++ {
		st.Add(rdf.T(rdf.ID(i+10), 1, 2))
	}
	deadline := time.Now().Add(10 * time.Second)
	for st.CompactionErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("CompactionErr never set after injected panic")
		}
		time.Sleep(2 * time.Millisecond)
	}
	err := st.CompactionErr()
	if !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("CompactionErr = %v, want the injected panic value", err)
	}

	// Sticky and non-fatal: later writes on a fresh predicate re-cross
	// the threshold (spawning a worker that must now refuse to run) and
	// land correctly, and the error is not cleared.
	for i := 0; i < flushMin+1; i++ {
		st.Add(rdf.T(rdf.ID(i+1_000_000), 3, 2))
	}
	if got, want := st.Len(), 2*(flushMin+1); got != want {
		t.Fatalf("Len = %d after post-panic writes, want %d", got, want)
	}
	if st.CompactionErr() == nil {
		t.Fatal("CompactionErr cleared by later writes; must be sticky")
	}
}
