package store

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rdf"
)

// TestCompactionPanicRestartRecovers: a *transient* panic cause must not
// retire the compactor. The worker is respawned with backoff; once a
// pass completes cleanly the restart budget resets, CompactionErr stays
// nil, and the enqueued partition actually gets compacted.
func TestCompactionPanicRestartRecovers(t *testing.T) {
	var calls atomic.Int64
	SetCompactTestHook(func() {
		if calls.Add(1) <= 2 {
			panic("transient injected failure")
		}
	})
	defer SetCompactTestHook(nil)

	st := New()
	for i := 0; i < flushMin+1; i++ {
		st.Add(rdf.T(rdf.ID(i+10), 1, 2))
	}
	// Two panics cost 10ms+20ms of restart backoff; the third spawn runs
	// the pass for real and flushes the overlay.
	deadline := time.Now().Add(10 * time.Second)
	for st.Stats().Compaction.Flushes == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("compaction never completed after transient panics (hook calls: %d, err: %v)",
				calls.Load(), st.CompactionErr())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := st.CompactionErr(); err != nil {
		t.Fatalf("CompactionErr = %v after recovery, want nil", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("hook ran %d times, want 3 (two panics + one clean pass)", calls.Load())
	}
	// The budget reset with the clean pass: a fresh predicate's pass runs
	// immediately (no leftover backoff, no sticky error).
	for i := 0; i < flushMin+1; i++ {
		st.Add(rdf.T(rdf.ID(i+1_000_000), 3, 2))
	}
	deadline = time.Now().Add(10 * time.Second)
	for st.Stats().Compaction.Flushes < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second partition never compacted after budget reset")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := st.CompactionErr(); err != nil {
		t.Fatalf("CompactionErr = %v, want nil", err)
	}
}

// TestCompactionPanicStickyTimestamp: once the restart budget is spent
// the sticky error carries a since-timestamp for the health surface.
func TestCompactionPanicStickyTimestamp(t *testing.T) {
	SetCompactTestHook(func() { panic("injected failure") })
	defer SetCompactTestHook(nil)

	st := New()
	if !st.CompactionErrSince().IsZero() {
		t.Fatal("CompactionErrSince set before any error")
	}
	before := time.Now()
	for i := 0; i < flushMin+1; i++ {
		st.Add(rdf.T(rdf.ID(i+10), 1, 2))
	}
	deadline := time.Now().Add(10 * time.Second)
	for st.CompactionErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("CompactionErr never set")
		}
		time.Sleep(2 * time.Millisecond)
	}
	since := st.CompactionErrSince()
	if since.IsZero() || since.Before(before.Add(-time.Second)) || since.After(time.Now()) {
		t.Fatalf("CompactionErrSince = %v, want between test start and now", since)
	}
}
