//go:build !slider_invariants

package store

import "repro/internal/rdf"

// invariantsEnabled is false in normal builds: every assertion call
// site is guarded by `if invariantsEnabled`, so the compiler deletes
// both the branch and these empty bodies — the hot paths pay nothing.
// Build with -tags slider_invariants to turn the checks on (see
// invariants_on.go and INVARIANTS.md).
const invariantsEnabled = false

func (p *partition) assertAccounting()      {}
func (p *partition) assertLive(s, o rdf.ID) {}
func (p *partition) assertDead(s, o rdf.ID) {}
func checkRun(r *run)                       {}
