package store

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func tr(s, p, o uint64) rdf.Triple { return rdf.T(rdf.ID(s), rdf.ID(p), rdf.ID(o)) }

func TestAddAndContains(t *testing.T) {
	st := New()
	a := tr(1, 2, 3)
	if st.Contains(a) {
		t.Fatal("empty store contains a triple")
	}
	if !st.Add(a) {
		t.Fatal("first Add returned false")
	}
	if st.Add(a) {
		t.Fatal("duplicate Add returned true")
	}
	if !st.Contains(a) {
		t.Fatal("Contains false after Add")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
}

func TestAddAllReturnsOnlyFresh(t *testing.T) {
	st := New()
	st.Add(tr(1, 2, 3))
	fresh := st.AddAll([]rdf.Triple{tr(1, 2, 3), tr(4, 2, 5), tr(4, 2, 5), tr(6, 7, 8)})
	want := []rdf.Triple{tr(4, 2, 5), tr(6, 7, 8)}
	if len(fresh) != len(want) {
		t.Fatalf("fresh = %v, want %v", fresh, want)
	}
	for i := range want {
		if fresh[i] != want[i] {
			t.Fatalf("fresh = %v, want %v", fresh, want)
		}
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
}

func TestObjectsAndSubjects(t *testing.T) {
	st := New()
	st.Add(tr(1, 9, 10))
	st.Add(tr(1, 9, 11))
	st.Add(tr(2, 9, 10))
	st.Add(tr(1, 8, 12))

	objs := st.Objects(9, 1)
	sortIDs(objs)
	if len(objs) != 2 || objs[0] != 10 || objs[1] != 11 {
		t.Fatalf("Objects(9,1) = %v", objs)
	}
	subs := st.Subjects(9, 10)
	sortIDs(subs)
	if len(subs) != 2 || subs[0] != 1 || subs[1] != 2 {
		t.Fatalf("Subjects(9,10) = %v", subs)
	}
	if st.Objects(9, 99) != nil {
		t.Fatal("Objects of absent subject should be nil")
	}
	if st.Subjects(99, 10) != nil {
		t.Fatal("Subjects of absent predicate should be nil")
	}
}

func TestPredicateLenAndPredicates(t *testing.T) {
	st := New()
	st.Add(tr(1, 5, 2))
	st.Add(tr(1, 5, 3))
	st.Add(tr(1, 7, 2))
	if st.PredicateLen(5) != 2 {
		t.Fatalf("PredicateLen(5) = %d", st.PredicateLen(5))
	}
	if st.PredicateLen(6) != 0 {
		t.Fatalf("PredicateLen(6) = %d", st.PredicateLen(6))
	}
	preds := st.Predicates()
	if len(preds) != 2 || preds[0] != 5 || preds[1] != 7 {
		t.Fatalf("Predicates() = %v", preds)
	}
}

func TestForEachWithPredicateEarlyStop(t *testing.T) {
	st := New()
	for i := uint64(0); i < 10; i++ {
		st.Add(tr(i, 5, i+100))
	}
	count := 0
	st.ForEachWithPredicate(5, func(s, o rdf.ID) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d pairs, want 3", count)
	}
	// Absent predicate: callback never invoked.
	st.ForEachWithPredicate(42, func(s, o rdf.ID) bool {
		t.Fatal("callback invoked for absent predicate")
		return false
	})
}

func TestForEachVisitsEverything(t *testing.T) {
	st := New()
	want := map[rdf.Triple]bool{}
	for i := uint64(0); i < 20; i++ {
		x := tr(i%5, i%3+1, i)
		st.Add(x)
		want[x] = true
	}
	got := map[rdf.Triple]bool{}
	st.ForEach(func(t rdf.Triple) bool {
		got[t] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("ForEach missed %v", k)
		}
	}
}

func TestMatchPatternMatrix(t *testing.T) {
	st := New()
	data := []rdf.Triple{tr(1, 5, 2), tr(1, 5, 3), tr(2, 5, 2), tr(1, 7, 2), tr(3, 8, 4)}
	for _, d := range data {
		st.Add(d)
	}
	cases := []struct {
		pattern rdf.Triple
		wantN   int
	}{
		{tr(0, 0, 0), 5}, // * * *
		{tr(1, 0, 0), 3}, // s * *
		{tr(0, 5, 0), 3}, // * p *
		{tr(0, 0, 2), 3}, // * * o
		{tr(1, 5, 0), 2}, // s p *
		{tr(0, 5, 2), 2}, // * p o
		{tr(1, 0, 2), 2}, // s * o
		{tr(1, 5, 2), 1}, // s p o present
		{tr(9, 5, 2), 0}, // absent subject
		{tr(1, 9, 2), 0}, // absent predicate
		{tr(1, 5, 9), 0}, // absent object
	}
	for i, c := range cases {
		got := st.Match(c.pattern)
		if len(got) != c.wantN {
			t.Errorf("case %d: Match(%v) returned %d triples (%v), want %d",
				i, c.pattern, len(got), got, c.wantN)
		}
		for _, m := range got {
			if !m.Matches(c.pattern) {
				t.Errorf("case %d: result %v does not match pattern %v", i, m, c.pattern)
			}
			if !st.Contains(m) {
				t.Errorf("case %d: result %v not in store", i, m)
			}
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	st := New()
	st.Add(tr(1, 2, 3))
	snap := st.Snapshot()
	if len(snap) != 1 || snap[0] != tr(1, 2, 3) {
		t.Fatalf("Snapshot = %v", snap)
	}
	st.Add(tr(4, 5, 6))
	if len(snap) != 1 {
		t.Fatal("snapshot aliased live store")
	}
}

func TestClear(t *testing.T) {
	st := New()
	st.Add(tr(1, 2, 3))
	st.Clear()
	if st.Len() != 0 || st.Contains(tr(1, 2, 3)) {
		t.Fatal("Clear did not empty the store")
	}
	if !st.Add(tr(1, 2, 3)) {
		t.Fatal("Add after Clear should report fresh")
	}
}

func TestStats(t *testing.T) {
	st := New()
	st.Add(tr(1, 5, 2))
	st.Add(tr(1, 5, 3))
	st.Add(tr(1, 7, 2))
	s := st.Stats()
	if s.Triples != 3 || s.Predicates != 2 || s.MaxPartition != 2 {
		t.Fatalf("Stats = %+v", s)
	}
}

// Property: Len equals the number of distinct triples inserted; Contains
// holds exactly for inserted triples; Snapshot has no duplicates.
func TestStoreInvariantsProperty(t *testing.T) {
	gen := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := New()
		ref := make(map[rdf.Triple]bool)
		for i := 0; i < int(n)*4; i++ {
			x := tr(uint64(rng.Intn(12)), uint64(rng.Intn(4)+1), uint64(rng.Intn(12)))
			fresh := st.Add(x)
			if fresh == ref[x] {
				return false // freshness must equal prior absence
			}
			ref[x] = true
		}
		if st.Len() != len(ref) {
			return false
		}
		snap := st.Snapshot()
		if len(snap) != len(ref) {
			return false
		}
		seen := make(map[rdf.Triple]bool, len(snap))
		for _, x := range snap {
			if seen[x] || !ref[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAddersAndReaders(t *testing.T) {
	st := New()
	const writers = 4
	const readers = 4
	const perW = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				st.Add(tr(uint64(w*perW+i), uint64(i%7+1), uint64(i)))
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st.Len()
				st.Contains(tr(1, 1, 1))
				st.Objects(3, 5)
				st.ForEachWithPredicate(2, func(s, o rdf.ID) bool { return true })
			}
		}()
	}
	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() {
		for i := 0; i < writers; i++ {
		}
		close(done)
	}()
	wgWait := make(chan struct{})
	go func() { wg.Wait(); close(wgWait) }()
	// Writers will finish on their own; signal readers once Len stabilises.
	for st.Len() < writers*perW {
	}
	close(stop)
	<-wgWait
	<-done
	if st.Len() != writers*perW {
		t.Fatalf("Len = %d, want %d", st.Len(), writers*perW)
	}
}

func sortIDs(ids []rdf.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
