package store

import (
	"math/rand"
	"slices"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

// sortedSetEq reports whether got is ascending, duplicate-free and equal
// as a set to want (order-insensitive on want).
func sortedSetEq(got, want []rdf.ID) bool {
	if !slices.IsSorted(got) {
		return false
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			return false
		}
	}
	w := slices.Clone(want)
	slices.Sort(w)
	w = slices.Compact(w)
	return slices.Equal(got, w)
}

// snapshotSet collects a source's triples as a set.
func snapshotSet(forEach func(func(rdf.Triple) bool)) map[rdf.Triple]bool {
	out := map[rdf.Triple]bool{}
	forEach(func(t rdf.Triple) bool {
		out[t] = true
		return true
	})
	return out
}

// TestCompactionEquivalenceProperty drives a run-backed store and a
// map-only store (compactor disabled) through the same random
// interleaving of adds, batch adds, removes, explicit flushes, full
// compactions and view freeze/release cycles, and checks after every
// few steps that the two stores and a model map agree on Contains,
// Len, sorted extents and the full triple set. This is the core
// "compaction is physically transparent" property.
func TestCompactionEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		lsm := New()              // run-backed, compaction driven explicitly below
		lsm.SetAutoCompact(false) // deterministic: we call Compact/Flush ourselves
		flat := New()
		flat.SetAutoCompact(false) // stays map-only: the reference layout
		ref := map[rdf.Triple]bool{}
		var frozen *View
		var frozenSet map[rdf.Triple]bool
		defer func() {
			if frozen != nil {
				frozen.Release()
			}
		}()
		steps := int(n)*4 + 8
		for i := 0; i < steps; i++ {
			x := tr(uint64(rng.Intn(10)+1), uint64(rng.Intn(4)+1), uint64(rng.Intn(10)+1))
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				if lsm.Add(x) != flat.Add(x) {
					return false
				}
				ref[x] = true
			case 4, 5:
				batch := []rdf.Triple{x, rdf.T(x.S+1, x.P, x.O), rdf.T(x.S, x.P, x.O+1)}
				lsm.AddBatch(batch)
				flat.AddBatch(batch)
				for _, b := range batch {
					ref[b] = true
				}
			case 6:
				if lsm.Remove(x) != flat.Remove(x) {
					return false
				}
				delete(ref, x)
			case 7:
				lsm.FlushOverlays()
			case 8:
				lsm.Compact()
			case 9:
				if frozen == nil {
					frozen = lsm.Freeze()
					frozenSet = snapshotSet(frozen.ForEach)
				} else {
					// The frozen view must still show exactly its capture,
					// regardless of the mutations and compactions since.
					if !mapsEqual(frozenSet, snapshotSet(frozen.ForEach)) {
						return false
					}
					frozen.Release()
					frozen, frozenSet = nil, nil
				}
			}
			if i%4 != 0 {
				continue
			}
			if lsm.Len() != len(ref) || flat.Len() != len(ref) {
				return false
			}
			if !mapsEqual(ref, snapshotSet(lsm.ForEach)) {
				return false
			}
			for p := rdf.ID(1); p <= 4; p++ {
				for s := rdf.ID(1); s <= 11; s++ {
					a := lsm.ObjectsAppend(nil, p, s)
					b := flat.ObjectsAppend(nil, p, s)
					if !sortedSetEq(a, b) {
						return false
					}
					as := lsm.SubjectsAppend(nil, p, s)
					bs := flat.SubjectsAppend(nil, p, s)
					if !sortedSetEq(as, bs) {
						return false
					}
				}
			}
		}
		for x := range ref {
			if !lsm.Contains(x) || !flat.Contains(x) {
				return false
			}
		}
		return slices.Equal(lsm.Predicates(), flat.Predicates())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func mapsEqual(a, b map[rdf.Triple]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestSortedExtentsAcrossLayouts pins the sorted-output contract in the
// mixed state the equivalence property only samples: part of the extent
// compacted into runs, part tombstoned, part fresh in the overlay.
func TestSortedExtentsAcrossLayouts(t *testing.T) {
	st := New()
	st.SetAutoCompact(false)
	const p = rdf.ID(7)
	// Runs: evens 0..198. Overlay: odds 101..199. Tombstones: evens 0..98.
	for o := uint64(0); o < 200; o += 2 {
		st.Add(tr(1, uint64(p), o+1000))
	}
	st.Compact()
	for o := uint64(101); o < 200; o += 2 {
		st.Add(tr(1, uint64(p), o+1000))
	}
	for o := uint64(0); o < 100; o += 2 {
		st.Remove(tr(1, uint64(p), o+1000))
	}
	var want []rdf.ID
	for o := uint64(100); o < 200; o++ {
		if o%2 == 0 || o > 100 {
			want = append(want, rdf.ID(o+1000))
		}
	}
	got := st.ObjectsAppend(nil, p, 1)
	if !sortedSetEq(got, want) {
		t.Fatalf("mixed-layout extent wrong:\n got %v\nwant %v", got, want)
	}
	// The same picture through a frozen view.
	v := st.Freeze()
	defer v.Release()
	if got := v.ObjectsAppend(nil, p, 1); !sortedSetEq(got, want) {
		t.Fatalf("view extent wrong: %v", got)
	}
	// And reversed: every surviving object maps back to subject 1.
	for _, o := range want {
		if subs := st.SubjectsAppend(nil, p, o); !slices.Equal(subs, []rdf.ID{1}) {
			t.Fatalf("SubjectsAppend(%d) = %v, want [1]", o, subs)
		}
	}
}

// TestStatsAccounting checks the physical pair accounting: live pairs
// must equal RunPairs - Tombstones + OverlayPairs through flushes,
// merges and purges.
func TestStatsAccounting(t *testing.T) {
	st := New()
	st.SetAutoCompact(false)
	for i := uint64(0); i < 500; i++ {
		st.Add(tr(i%50, 1, i))
	}
	st.FlushOverlays()
	for i := uint64(500); i < 700; i++ {
		st.Add(tr(i%50, 1, i))
	}
	for i := uint64(0); i < 100; i++ {
		st.Remove(tr(i%50, 1, i))
	}
	check := func(stage string) {
		s := st.Stats()
		if live := s.RunPairs - s.Tombstones + s.OverlayPairs; live != st.Len() || live != s.Triples {
			t.Fatalf("%s: run=%d tomb=%d overlay=%d -> live %d, want %d",
				stage, s.RunPairs, s.Tombstones, s.OverlayPairs, live, st.Len())
		}
	}
	check("mixed")
	st.Compact()
	check("compacted")
	s := st.Stats()
	if s.Tombstones != 0 || s.OverlayPairs != 0 {
		t.Fatalf("compacted store still has tombstones/overlay: %+v", s)
	}
	if s.Compaction.Flushes == 0 || s.Compaction.Purges == 0 {
		t.Fatalf("compaction counters did not move: %+v", s.Compaction)
	}
}

// TestCompactionUnderIngestStress races the background compactor
// against concurrent batch ingest, removals and view freeze/iterate
// cycles — the -race CI smoke for the run/overlay machinery. Writers
// own disjoint subject spaces so the final state is exactly computable.
func TestCompactionUnderIngestStress(t *testing.T) {
	st := New() // background compaction on
	const (
		writers = 4
		rounds  = 6
		perIns  = 3000
	)
	batches := 40
	if testing.Short() {
		batches = 8
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w+1) * 1_000_000
			for b := 0; b < batches; b++ {
				batch := make([]rdf.Triple, 0, perIns/writers)
				for i := 0; i < perIns/writers; i++ {
					o := base + uint64(b*perIns+i)
					batch = append(batch, tr(base+uint64(i%97), uint64(w%3)+1, o))
				}
				st.AddBatch(batch)
				// Remove a slice of what this writer just added; no other
				// goroutine touches these keys.
				for i := 0; i < perIns/writers; i += 7 {
					st.Remove(batch[i])
				}
			}
		}(w)
	}
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for r := 0; r < rounds; r++ {
			v := st.Freeze()
			first := snapshotSet(v.ForEach)
			// A frozen view re-read while compaction and ingest churn
			// underneath must be byte-for-byte stable.
			second := snapshotSet(v.ForEach)
			if !mapsEqual(first, second) {
				t.Error("frozen view changed between iterations")
			}
			for x := range first {
				if !v.Contains(x) {
					t.Errorf("view iteration emitted %v but Contains denies it", x)
					break
				}
			}
			v.Release()
		}
	}()
	wg.Wait()
	readerWg.Wait()
	// Synchronous full compaction serializes behind any in-flight
	// background pass, so the accounting below sees a settled store.
	st.Compact()

	// Deterministic final state: every written triple except the i%7
	// removals, per writer.
	want := 0
	for w := 0; w < writers; w++ {
		for b := 0; b < batches; b++ {
			n := perIns / writers
			want += n - (n+6)/7
		}
	}
	if st.Len() != want {
		t.Fatalf("final Len = %d, want %d", st.Len(), want)
	}
	s := st.Stats()
	if live := s.RunPairs - s.Tombstones + s.OverlayPairs; live != want {
		t.Fatalf("physical accounting drifted: %+v -> %d, want %d", s, live, want)
	}
	// Sorted contract holds on the post-race store.
	for w := 0; w < writers; w++ {
		base := uint64(w+1) * 1_000_000
		objs := st.ObjectsAppend(nil, rdf.ID(uint64(w%3)+1), rdf.ID(base))
		if !slices.IsSorted(objs) {
			t.Fatalf("writer %d extent unsorted", w)
		}
	}
}
