package store

import (
	"fmt"
	"slices"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/trace"
)

// testHookCompact, when set, runs at the start of every background
// compaction pass. Tests use it to inject failures (panics) into the
// worker; always nil outside tests. Atomic because the test goroutine
// installs it while the compactor goroutine reads it.
var testHookCompact atomic.Pointer[func()]

// SetCompactTestHook installs f as the background-compaction test hook
// (nil clears it).
func SetCompactTestHook(f func()) {
	if f == nil {
		testHookCompact.Store(nil)
		return
	}
	testHookCompact.Store(&f)
}

// Compaction thresholds. A partition's overlay is flushed to a run once
// it holds flushMin pairs AND at least 1/4th of the partition's run
// pairs — the adaptive second condition keeps the run count roughly
// constant (each flush is a fixed fraction of the partition) instead of
// letting runs pile up linearly with partition size, and the 1/4 ratio
// keeps flushes big enough that merge traffic stays a small multiple of
// the ingest rate. flushMax overrides the ratio: a flush runs under the
// partition write lock, so letting the overlay scale with a huge
// partition would turn each flush into an O(partition) writer stall —
// the cap bounds any single flush (and hence the pause it can inflict)
// to a fixed size, and the size-tiered merge keeps the extra runs
// logarithmic. Tombstones are purged once they reach half the run
// pairs, amortising the O(run pairs) rebuild against the removals that
// created them.
const (
	flushMin = 8192
	flushMax = 1 << 16
	purgeMin = 256
)

// compactionDue reports whether the partition's overlay or tombstones
// have outgrown their thresholds. Callers hold the partition lock.
func (p *partition) compactionDue() bool {
	if p.onum >= flushMin && (p.onum >= flushMax || p.onum*4 >= p.rp) {
		return true
	}
	return p.tombN >= purgeMin && p.tombN*2 >= p.rp
}

// enqueueCompact hands a partition to the background compactor. The
// queued flag dedups enqueues; the worker goroutine is spawned lazily
// and exits when the queue drains, so idle stores own no goroutine.
// Safe to call while holding stripe/partition locks: it only touches
// the queue mutex, which is a leaf in the lock order.
func (st *Store) enqueueCompact(pred rdf.ID, p *partition) {
	if !st.autoCompact.Load() {
		return
	}
	if p.queued.Swap(true) {
		return
	}
	st.comp.mu.Lock()
	st.comp.queue = append(st.comp.queue, pred)
	spawn := !st.comp.running
	if spawn {
		st.comp.running = true
	}
	st.comp.mu.Unlock()
	if spawn {
		go st.compactLoop()
	}
}

// Compactor restart policy: a panicking pass gets compactMaxRestarts
// respawns with doubling delay before the error turns sticky. A clean
// pass resets the budget, so only *consecutive* panics retire the
// worker — a transient cause (a poisoned batch that then compacts, a
// fault-injection hook) heals on its own.
const (
	compactMaxRestarts = 5
	compactRestartBase = 10 * time.Millisecond
)

func (st *Store) compactLoop() {
	// Backstop: a panicking compaction pass must not take the process
	// down (the store itself stays correct — compaction only reshapes
	// physical layout). The worker is respawned after a backoff, up to
	// compactMaxRestarts consecutive panics; then the error is recorded
	// sticky and the worker retires — the serving layer reports it as a
	// degraded health state instead of letting overlay debt grow
	// silently.
	var cur rdf.ID
	var active bool
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		st.comp.mu.Lock()
		if active {
			// The in-flight partition was dequeued with queued still
			// true (compactPredicate re-arms it only mid-pass): put it
			// back at the front or no one will ever compact it again.
			st.comp.queue = append([]rdf.ID{cur}, st.comp.queue...)
		}
		st.comp.panics++
		if st.comp.panics > compactMaxRestarts {
			if st.comp.err == nil {
				st.comp.err = fmt.Errorf("store: background compaction panic (retired after %d restarts): %v",
					compactMaxRestarts, p)
				st.comp.errSince = time.Now()
			}
			st.comp.running = false
			st.comp.mu.Unlock()
			return
		}
		d := compactRestartBase << (st.comp.panics - 1)
		st.comp.mu.Unlock()
		// running stays true across the window so enqueues keep landing
		// in the queue instead of spawning a second worker.
		time.AfterFunc(d, func() { st.compactLoop() })
	}()
	for {
		st.comp.mu.Lock()
		if len(st.comp.queue) == 0 || st.comp.err != nil {
			st.comp.running = false
			st.comp.mu.Unlock()
			return
		}
		cur = st.comp.queue[0]
		st.comp.queue = st.comp.queue[1:]
		active = true
		st.comp.mu.Unlock()
		st.compactPredicate(cur)
		active = false
		st.comp.mu.Lock()
		st.comp.panics = 0
		st.comp.mu.Unlock()
	}
}

// compactPredicate flushes the partition's overlay, purges tombstones
// when they dominate, and size-tier merges the run tail. All run-slice
// writers (this, Compact, FlushOverlays) serialize on workMu, which is
// what lets the merge itself — the expensive part — run outside the
// partition lock: nothing else can change p.runs meanwhile, and
// concurrent adds/removes only touch the overlay and tombstones.
func (st *Store) compactPredicate(pred rdf.ID) {
	if h := testHookCompact.Load(); h != nil {
		(*h)()
	}
	st.workMu.Lock()
	defer st.workMu.Unlock()
	str := st.stripeFor(pred)
	str.mu.RLock()
	p := str.parts[pred]
	str.mu.RUnlock()
	if p == nil {
		return
	}
	// Compaction runs on a background goroutine with no request to
	// attribute it to, so each pass is its own trace root: the flight
	// recorder catches the slow ones (big merges) the same way it
	// catches slow ingest flights.
	sp := trace.StartRoot("compact.predicate")
	sp.SetInt("predicate", int64(pred))
	defer sp.End()
	// Re-arm before working: a mutation landing mid-compaction may
	// legitimately need to re-enqueue the partition.
	p.queued.Store(false)

	p.mu.Lock()
	fsp := sp.Child("compact.flush")
	st.flushLocked(p)
	fsp.End()
	if p.tombN >= purgeMin && p.tombN*2 >= p.rp {
		psp := sp.Child("compact.purge")
		st.purgeLocked(p)
		psp.End()
		p.mu.Unlock()
		return
	}
	// Size-tiered tail merge (binary-counter shape): absorb the newest
	// runs while each predecessor is at most twice the absorbed total,
	// leaving run sizes geometric. Run count stays O(log) and total
	// merge work amortises to O(n log n) over a partition's life.
	i := len(p.runs) - 1
	if i < 1 {
		p.mu.Unlock()
		return
	}
	total := p.runs[i].pairs
	for i > 0 && p.runs[i-1].pairs <= 2*total {
		total += p.runs[i-1].pairs
		i--
	}
	if len(p.runs)-i < 2 {
		p.mu.Unlock()
		return
	}
	suffix := make([]*run, len(p.runs)-i)
	copy(suffix, p.runs[i:])
	p.mu.Unlock()

	var t0 time.Time
	if m := st.metrics.Load(); m != nil {
		t0 = obs.NowIfEnabled()
	}
	msp := sp.Child("compact.merge")
	msp.SetInt("runs", int64(len(suffix)))
	merged := mergeRuns(suffix) // off-lock; workMu pins p.runs
	msp.SetInt("pairs", int64(merged.pairs))
	msp.End()

	p.mu.Lock()
	runs := make([]*run, 0, i+1)
	runs = append(runs, p.runs[:i]...)
	runs = append(runs, merged)
	p.runs = runs
	p.mu.Unlock()
	if m := st.metrics.Load(); m != nil {
		m.MergeSeconds.ObserveSince(t0)
	}
	st.cMerges.Add(1)
	st.cPairsMerged.Add(int64(merged.pairs))
}

// flushLocked seals the overlay into a new immutable run and resets the
// overlay maps. Logical content is unchanged, so it is transparent to
// active views and to concurrent readers. Callers hold the partition
// lock (write side) and workMu.
func (st *Store) flushLocked(p *partition) {
	if p.onum == 0 {
		// Still reset emptied sets to nil: the dirty list is appended
		// only on the nil→allocated transition, so an entry left with an
		// empty non-nil set would silently fall off the list.
		for _, s := range p.dirty {
			if e := p.so[s]; e != nil {
				e.objs = nil
			}
		}
		p.dirty = p.dirty[:0]
		return
	}
	var t0 time.Time
	if m := st.metrics.Load(); m != nil {
		t0 = obs.NowIfEnabled()
		defer func() { m.FlushSeconds.ObserveSince(t0) }()
	}
	// Filter the dirty list down to subjects that still hold overlay
	// pairs (removals may have emptied some — those sets reset to nil so
	// the subject re-enters the list on its next overlay add) and sort
	// it: this is the run's subject order. The flush touches only
	// overlay subjects, not the whole spine-sized so map.
	subs := p.dirty[:0]
	for _, s := range p.dirty {
		e := p.so[s]
		if e == nil {
			continue
		}
		if len(e.objs) == 0 {
			e.objs = nil
			continue
		}
		subs = append(subs, s)
	}
	slices.Sort(subs)
	r := buildRunFromOverlay(p.so, subs, p.os, p.onum)
	runs := make([]*run, 0, len(p.runs)+1)
	runs = append(runs, p.runs...)
	runs = append(runs, r)
	p.runs = runs
	p.rp += r.pairs
	// Entries stay — they are the spine membership index and hold each
	// subject's degree; only the moved overlay pairs are dropped.
	for _, s := range subs {
		p.so[s].objs = nil
	}
	p.dirty = p.dirty[:0]
	p.os = make(map[rdf.ID]idSet, 8)
	p.onum = 0
	st.cFlushes.Add(1)
}

// purgeLocked rebuilds the partition's runs with tombstoned pairs
// dropped, leaving a single run and no tombstones. O(run pairs) under
// the partition lock, so it only triggers once tombstones dominate.
// Logical content is unchanged, so active views stay correct. Callers
// hold the partition lock (write side) and workMu.
func (st *Store) purgeLocked(p *partition) {
	if p.tombN == 0 || len(p.runs) == 0 {
		return
	}
	var t0 time.Time
	if m := st.metrics.Load(); m != nil {
		t0 = obs.NowIfEnabled()
		defer func() { m.PurgeSeconds.ObserveSince(t0) }()
	}
	ps := make([]pair, 0, p.rp-p.tombN)
	for _, r := range p.runs {
		for i, s := range r.subs {
			ts := p.tomb[s]
			for _, o := range r.objs[r.subOff[i]:r.subOff[i+1]] {
				if _, dead := ts[o]; dead {
					continue
				}
				ps = append(ps, pair{s: s, o: o})
			}
		}
	}
	sortPairs(ps)
	p.tomb = nil
	p.tombN = 0
	if len(ps) == 0 {
		p.runs = nil
		p.rp = 0
	} else {
		r := buildRun(ps)
		p.runs = []*run{r}
		p.rp = r.pairs
	}
	st.cPurges.Add(1)
	st.cPairsMerged.Add(int64(len(ps)))
}

// SetAutoCompact enables or disables the background compactor (enabled
// by default). With it off the store never forms runs on its own — the
// pure map-overlay behaviour, used as the baseline in benchmarks and
// cross-checked against in property tests. Compact and FlushOverlays
// still work when invoked explicitly.
func (st *Store) SetAutoCompact(on bool) { st.autoCompact.Store(on) }

// Compact synchronously flushes every overlay, purges all tombstones
// and merges each partition down to a single run — the fully compacted
// state where probes are one span lookup and checkpoints stream runs
// verbatim.
func (st *Store) Compact() {
	st.workMu.Lock()
	defer st.workMu.Unlock()
	for i := range st.stripes {
		str := &st.stripes[i]
		str.mu.RLock()
		parts := make([]*partition, 0, len(str.parts))
		for _, p := range str.parts {
			parts = append(parts, p)
		}
		str.mu.RUnlock()
		for _, p := range parts {
			p.mu.Lock()
			st.flushLocked(p)
			if p.tombN > 0 {
				st.purgeLocked(p) // rebuilds to a single run
				p.mu.Unlock()
				continue
			}
			if len(p.runs) < 2 {
				p.mu.Unlock()
				continue
			}
			runs := make([]*run, len(p.runs))
			copy(runs, p.runs)
			p.mu.Unlock()
			var t0 time.Time
			if m := st.metrics.Load(); m != nil {
				t0 = obs.NowIfEnabled()
			}
			merged := mergeRuns(runs)
			p.mu.Lock()
			p.runs = []*run{merged}
			p.mu.Unlock()
			if m := st.metrics.Load(); m != nil {
				m.MergeSeconds.ObserveSince(t0)
			}
			st.cMerges.Add(1)
			st.cPairsMerged.Add(int64(merged.pairs))
		}
	}
}

// FlushOverlays seals every partition's overlay into a run without
// merging — a cheap O(total overlay) pass. Checkpoints call it right
// before marking: a partition whose overlay is empty and tombstones are
// clear streams its frozen contents run-by-run on the verbatim fast
// path, with no journal compensation and no per-pair checks.
func (st *Store) FlushOverlays() {
	st.workMu.Lock()
	defer st.workMu.Unlock()
	for i := range st.stripes {
		str := &st.stripes[i]
		str.mu.RLock()
		parts := make([]*partition, 0, len(str.parts))
		for _, p := range str.parts {
			parts = append(parts, p)
		}
		str.mu.RUnlock()
		for _, p := range parts {
			p.mu.Lock()
			st.flushLocked(p)
			p.mu.Unlock()
		}
	}
}
