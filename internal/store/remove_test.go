package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func TestRemoveBasics(t *testing.T) {
	st := New()
	st.Add(tr(1, 2, 3))
	st.Add(tr(1, 2, 4))
	if !st.Remove(tr(1, 2, 3)) {
		t.Fatal("Remove of present triple returned false")
	}
	if st.Remove(tr(1, 2, 3)) {
		t.Fatal("Remove of absent triple returned true")
	}
	if st.Contains(tr(1, 2, 3)) || !st.Contains(tr(1, 2, 4)) {
		t.Fatal("wrong triple removed")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
}

func TestRemoveMissingPaths(t *testing.T) {
	st := New()
	st.Add(tr(1, 2, 3))
	if st.Remove(tr(1, 9, 3)) { // absent predicate
		t.Fatal("removed with absent predicate")
	}
	if st.Remove(tr(9, 2, 3)) { // absent subject
		t.Fatal("removed with absent subject")
	}
	if st.Remove(tr(1, 2, 9)) { // absent object
		t.Fatal("removed with absent object")
	}
	if st.Len() != 1 {
		t.Fatal("store mutated by failed removes")
	}
}

func TestRemovePrunesIndexes(t *testing.T) {
	st := New()
	st.Add(tr(1, 2, 3))
	st.Remove(tr(1, 2, 3))
	if st.PredicateLen(2) != 0 {
		t.Fatal("partition not drained")
	}
	if len(st.Predicates()) != 0 {
		t.Fatal("empty partition not pruned")
	}
	// Both directions of the index must be clean.
	if st.Objects(2, 1) != nil || st.Subjects(2, 3) != nil {
		t.Fatal("index remnants after remove")
	}
	// Re-adding works normally after pruning.
	if !st.Add(tr(1, 2, 3)) {
		t.Fatal("re-add after prune not fresh")
	}
}

func TestRemoveAll(t *testing.T) {
	st := New()
	st.Add(tr(1, 2, 3))
	st.Add(tr(4, 5, 6))
	n := st.RemoveAll([]rdf.Triple{tr(1, 2, 3), tr(7, 8, 9), tr(4, 5, 6)})
	if n != 2 || st.Len() != 0 {
		t.Fatalf("RemoveAll = %d, Len = %d", n, st.Len())
	}
}

// Property: a random interleaving of adds and removes leaves the store
// exactly matching a reference map, with both index directions agreeing.
func TestAddRemoveInterleavingProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := New()
		ref := map[rdf.Triple]bool{}
		for i := 0; i < int(n)*6; i++ {
			x := tr(uint64(rng.Intn(8)), uint64(rng.Intn(3)+1), uint64(rng.Intn(8)))
			if rng.Intn(2) == 0 {
				if st.Add(x) != !ref[x] {
					return false
				}
				ref[x] = true
			} else {
				if st.Remove(x) != ref[x] {
					return false
				}
				delete(ref, x)
			}
		}
		if st.Len() != len(ref) {
			return false
		}
		for x := range ref {
			if !st.Contains(x) {
				return false
			}
			// Index consistency both ways.
			found := false
			for _, o := range st.Objects(x.P, x.S) {
				if o == x.O {
					found = true
				}
			}
			if !found {
				return false
			}
			found = false
			for _, s := range st.Subjects(x.P, x.O) {
				if s == x.S {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
