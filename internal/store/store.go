// Package store implements Slider's in-memory triple store.
//
// The store follows the vertical partitioning approach of Abadi et al.
// (PVLDB 2007) as adopted by the paper's §2.2: triples are indexed first
// by predicate, then by subject, then by object — and symmetrically by
// predicate, object, subject — which is the near-optimal layout for the
// access patterns of RDFS/OWL rule bodies (walk a predicate's extent, or
// probe by (predicate, subject) / (predicate, object)).
//
// Concurrency uses two levels of lock striping instead of one global
// RWMutex, so parallel rule-module instances and parallel input managers
// do not serialize on a single lock:
//
//   - the predicate→partition map is sharded across numStripes stripes
//     (selected by a hash of the predicate ID), each guarded by its own
//     RWMutex;
//   - each partition additionally carries its own RWMutex guarding the
//     hot so/os maps, so writers to different predicates within one
//     stripe still proceed in parallel.
//
// Locking protocol: a partition's maps are only ever touched while
// holding the owning stripe's lock (read side for normal operations) plus
// the partition lock. Remove takes the stripe's write lock so it can
// prune drained partitions without racing concurrent adders that hold a
// stale *partition. Iteration entry points (ForEach, ForEachWithPredicate)
// copy the visited pairs under the locks and invoke the callback outside
// them, so callbacks may freely read — or even mutate — the store.
//
// The hash-map structure makes Add idempotent and lets it report whether
// a triple was new — the mechanism behind Slider's "duplicates
// limitation".
package store

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rdf"
)

// stripeBits sets the number of lock stripes the predicate map is
// sharded across: numStripes = 2^stripeBits.
const (
	stripeBits = 6
	numStripes = 1 << stripeBits
)

// idSet is a set of term IDs.
type idSet map[rdf.ID]struct{}

// partition holds all triples sharing one predicate, indexed both
// subject→objects and object→subjects. Its maps are guarded by mu, and
// only accessed while also holding the owning stripe's lock (see the
// package comment for the protocol).
type partition struct {
	mu sync.RWMutex
	so map[rdf.ID]idSet // subject → set of objects
	os map[rdf.ID]idSet // object → set of subjects
	n  int
}

func newPartition() *partition {
	return &partition{so: make(map[rdf.ID]idSet), os: make(map[rdf.ID]idSet)}
}

// add inserts (s,o) and reports whether it was absent. Callers hold the
// partition lock.
func (p *partition) add(s, o rdf.ID) bool {
	objs, ok := p.so[s]
	if !ok {
		objs = make(idSet, 2)
		p.so[s] = objs
	}
	if _, dup := objs[o]; dup {
		return false
	}
	objs[o] = struct{}{}
	subs, ok := p.os[o]
	if !ok {
		subs = make(idSet, 2)
		p.os[o] = subs
	}
	subs[s] = struct{}{}
	p.n++
	return true
}

// contains reports whether (s,o) is present. Callers hold the partition
// lock (read side suffices).
func (p *partition) contains(s, o rdf.ID) bool {
	objs, ok := p.so[s]
	if !ok {
		return false
	}
	_, ok = objs[o]
	return ok
}

// pair is one (subject, object) of a partition, used for copy-then-call
// iteration.
type pair struct {
	s, o rdf.ID
}

// stripe is one shard of the predicate→partition map.
type stripe struct {
	mu    sync.RWMutex
	parts map[rdf.ID]*partition
}

// Store is a concurrent, duplicate-free, vertically partitioned triple
// store. The zero value is not usable; call New.
type Store struct {
	stripes [numStripes]stripe
	size    atomic.Int64
}

// New returns an empty store.
func New() *Store {
	st := &Store{}
	for i := range st.stripes {
		st.stripes[i].parts = make(map[rdf.ID]*partition, 8)
	}
	return st
}

// stripeFor selects the stripe owning predicate p. Predicate IDs are
// dense per kind (with the kind in the top bits), so a Fibonacci spread
// of the raw value distributes consecutive IDs across stripes.
func (st *Store) stripeFor(p rdf.ID) *stripe {
	h := uint64(p) * 0x9E3779B97F4A7C15
	return &st.stripes[h>>(64-stripeBits)]
}

// Add inserts a triple and reports whether it was new. Duplicate inserts
// are cheap no-ops.
func (st *Store) Add(t rdf.Triple) bool {
	s := st.stripeFor(t.P)
	s.mu.RLock()
	p, ok := s.parts[t.P]
	if ok {
		p.mu.Lock()
		fresh := p.add(t.S, t.O)
		// size is updated before the locks are released so it can never
		// lag behind a Clear that sums partition counts under the locks.
		if fresh {
			st.size.Add(1)
		}
		p.mu.Unlock()
		s.mu.RUnlock()
		return fresh
	}
	s.mu.RUnlock()
	s.mu.Lock()
	p, ok = s.parts[t.P]
	if !ok {
		p = newPartition()
		s.parts[t.P] = p
	}
	p.mu.Lock()
	fresh := p.add(t.S, t.O)
	if fresh {
		st.size.Add(1)
	}
	p.mu.Unlock()
	s.mu.Unlock()
	return fresh
}

// AddBatch inserts all triples and returns those that were new,
// preserving input order. Triples are grouped by predicate so each
// partition lock is taken once per distinct predicate instead of once
// per triple — the write-path fast lane for batch ingestion.
func (st *Store) AddBatch(ts []rdf.Triple) []rdf.Triple {
	switch len(ts) {
	case 0:
		return nil
	case 1:
		if st.Add(ts[0]) {
			return ts[:1:1]
		}
		return nil
	}
	fresh := make([]bool, len(ts))
	byPred := make(map[rdf.ID][]int, 8)
	for i, t := range ts {
		byPred[t.P] = append(byPred[t.P], i)
	}
	n := 0
	for p, idxs := range byPred {
		n += st.addGroup(p, ts, idxs, fresh)
	}
	if n == 0 {
		return nil
	}
	out := make([]rdf.Triple, 0, n)
	for i, t := range ts {
		if fresh[i] {
			out = append(out, t)
		}
	}
	return out
}

// addGroup inserts all triples at the given indices (sharing predicate p)
// under a single partition-lock acquisition, marking fresh insertions.
// It returns the number of fresh triples.
func (st *Store) addGroup(p rdf.ID, ts []rdf.Triple, idxs []int, fresh []bool) int {
	s := st.stripeFor(p)
	n := 0
	s.mu.RLock()
	part, ok := s.parts[p]
	if ok {
		part.mu.Lock()
		for _, i := range idxs {
			if part.add(ts[i].S, ts[i].O) {
				fresh[i] = true
				n++
			}
		}
		st.size.Add(int64(n))
		part.mu.Unlock()
		s.mu.RUnlock()
		return n
	}
	s.mu.RUnlock()
	s.mu.Lock()
	part, ok = s.parts[p]
	if !ok {
		part = newPartition()
		s.parts[p] = part
	}
	part.mu.Lock()
	for _, i := range idxs {
		if part.add(ts[i].S, ts[i].O) {
			fresh[i] = true
			n++
		}
	}
	st.size.Add(int64(n))
	part.mu.Unlock()
	s.mu.Unlock()
	return n
}

// AddAll inserts all triples and returns those that were new, preserving
// input order. It is AddBatch under the store's historical name.
func (st *Store) AddAll(ts []rdf.Triple) []rdf.Triple {
	return st.AddBatch(ts)
}

// Remove deletes a triple and reports whether it was present. Empty
// index entries are pruned so memory is reclaimed as partitions drain.
// Remove takes the stripe's write lock (excluding concurrent access to
// the stripe) so pruning an emptied partition cannot race an adder.
func (st *Store) Remove(t rdf.Triple) bool {
	s := st.stripeFor(t.P)
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.parts[t.P]
	if !ok {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	objs, ok := p.so[t.S]
	if !ok {
		return false
	}
	if _, ok = objs[t.O]; !ok {
		return false
	}
	delete(objs, t.O)
	if len(objs) == 0 {
		delete(p.so, t.S)
	}
	subs := p.os[t.O]
	delete(subs, t.S)
	if len(subs) == 0 {
		delete(p.os, t.O)
	}
	p.n--
	st.size.Add(-1)
	if p.n == 0 {
		delete(s.parts, t.P)
	}
	return true
}

// RemoveAll deletes all given triples, returning how many were present.
func (st *Store) RemoveAll(ts []rdf.Triple) int {
	n := 0
	for _, t := range ts {
		if st.Remove(t) {
			n++
		}
	}
	return n
}

// Contains reports whether the exact triple is present.
func (st *Store) Contains(t rdf.Triple) bool {
	s := st.stripeFor(t.P)
	s.mu.RLock()
	p, ok := s.parts[t.P]
	if !ok {
		s.mu.RUnlock()
		return false
	}
	p.mu.RLock()
	found := p.contains(t.S, t.O)
	p.mu.RUnlock()
	s.mu.RUnlock()
	return found
}

// ContainsBatch reports, for each input triple, whether it is present.
// Triples are grouped by predicate so each partition lock is taken once
// per distinct predicate.
func (st *Store) ContainsBatch(ts []rdf.Triple) []bool {
	if len(ts) == 0 {
		return nil
	}
	out := make([]bool, len(ts))
	byPred := make(map[rdf.ID][]int, 8)
	for i, t := range ts {
		byPred[t.P] = append(byPred[t.P], i)
	}
	for p, idxs := range byPred {
		s := st.stripeFor(p)
		s.mu.RLock()
		part, ok := s.parts[p]
		if ok {
			part.mu.RLock()
			for _, i := range idxs {
				out[i] = part.contains(ts[i].S, ts[i].O)
			}
			part.mu.RUnlock()
		}
		s.mu.RUnlock()
	}
	return out
}

// Len returns the number of distinct triples.
func (st *Store) Len() int {
	return int(st.size.Load())
}

// PredicateLen returns the number of triples with the given predicate.
func (st *Store) PredicateLen(p rdf.ID) int {
	s := st.stripeFor(p)
	s.mu.RLock()
	defer s.mu.RUnlock()
	part, ok := s.parts[p]
	if !ok {
		return 0
	}
	part.mu.RLock()
	defer part.mu.RUnlock()
	return part.n
}

// Predicates returns all predicates present, in ascending ID order.
func (st *Store) Predicates() []rdf.ID {
	var out []rdf.ID
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.RLock()
		for p := range s.parts {
			out = append(out, p)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Objects returns a copy of the objects o such that (s, p, o) is present.
func (st *Store) Objects(p, s rdf.ID) []rdf.ID {
	return st.ObjectsAppend(nil, p, s)
}

// ObjectsAppend appends the objects o such that (s, p, o) is present to
// dst and returns the extended slice. Reusing dst across calls lets hot
// rule joins avoid a fresh allocation per probe.
func (st *Store) ObjectsAppend(dst []rdf.ID, p, s rdf.ID) []rdf.ID {
	str := st.stripeFor(p)
	str.mu.RLock()
	part, ok := str.parts[p]
	if !ok {
		str.mu.RUnlock()
		return dst
	}
	part.mu.RLock()
	if objs, ok := part.so[s]; ok {
		if dst == nil {
			dst = make([]rdf.ID, 0, len(objs))
		}
		for o := range objs {
			dst = append(dst, o)
		}
	}
	part.mu.RUnlock()
	str.mu.RUnlock()
	return dst
}

// Subjects returns a copy of the subjects s such that (s, p, o) is present.
func (st *Store) Subjects(p, o rdf.ID) []rdf.ID {
	return st.SubjectsAppend(nil, p, o)
}

// SubjectsAppend appends the subjects s such that (s, p, o) is present to
// dst and returns the extended slice.
func (st *Store) SubjectsAppend(dst []rdf.ID, p, o rdf.ID) []rdf.ID {
	str := st.stripeFor(p)
	str.mu.RLock()
	part, ok := str.parts[p]
	if !ok {
		str.mu.RUnlock()
		return dst
	}
	part.mu.RLock()
	if subs, ok := part.os[o]; ok {
		if dst == nil {
			dst = make([]rdf.ID, 0, len(subs))
		}
		for s := range subs {
			dst = append(dst, s)
		}
	}
	part.mu.RUnlock()
	str.mu.RUnlock()
	return dst
}

// pairBufs recycles the scratch slices ForEachWithPredicate/ForEach copy
// partitions into, so the per-probe copy (the price of running callbacks
// outside the locks) does not also cost an allocation per call.
var pairBufs = sync.Pool{New: func() any { return new([]pair) }}

// pairsOf copies the (s, o) pairs of predicate p's partition into a
// pooled buffer. Callers must hand the buffer back via putPairs.
func (st *Store) pairsOf(p rdf.ID) *[]pair {
	s := st.stripeFor(p)
	s.mu.RLock()
	part, ok := s.parts[p]
	if !ok {
		s.mu.RUnlock()
		return nil
	}
	buf := pairBufs.Get().(*[]pair)
	part.mu.RLock()
	out := (*buf)[:0]
	for sub, objs := range part.so {
		for o := range objs {
			out = append(out, pair{s: sub, o: o})
		}
	}
	part.mu.RUnlock()
	s.mu.RUnlock()
	*buf = out
	return buf
}

func putPairs(buf *[]pair) {
	if buf != nil {
		pairBufs.Put(buf)
	}
}

// ForEachWithPredicate calls f for every (s, o) pair in the predicate's
// partition until f returns false. The pairs are copied out under the
// partition lock and f runs outside it, so f sees a consistent snapshot
// of the partition and may freely read or mutate the store (mutations are
// not reflected in the ongoing iteration).
func (st *Store) ForEachWithPredicate(p rdf.ID, f func(s, o rdf.ID) bool) {
	buf := st.pairsOf(p)
	if buf == nil {
		return
	}
	defer putPairs(buf)
	for _, pr := range *buf {
		if !f(pr.s, pr.o) {
			return
		}
	}
}

// ForEach calls f for every triple until f returns false. Like
// ForEachWithPredicate, triples are copied out stripe by stripe and f
// runs outside the locks; concurrent mutations may or may not be
// visited.
func (st *Store) ForEach(f func(rdf.Triple) bool) {
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.RLock()
		preds := make([]rdf.ID, 0, len(s.parts))
		for p := range s.parts {
			preds = append(preds, p)
		}
		s.mu.RUnlock()
		for _, p := range preds {
			buf := st.pairsOf(p)
			if buf == nil {
				continue
			}
			for _, pr := range *buf {
				if !f(rdf.Triple{S: pr.s, P: p, O: pr.o}) {
					putPairs(buf)
					return
				}
			}
			putPairs(buf)
		}
	}
}

// Match returns all triples matching the pattern, where rdf.Any acts as a
// wildcard in any position. The result is a copy.
func (st *Store) Match(pattern rdf.Triple) []rdf.Triple {
	var out []rdf.Triple
	collect := func(p rdf.ID, part *partition) {
		switch {
		case pattern.S != rdf.Any && pattern.O != rdf.Any:
			if part.contains(pattern.S, pattern.O) {
				out = append(out, rdf.Triple{S: pattern.S, P: p, O: pattern.O})
			}
		case pattern.S != rdf.Any:
			for o := range part.so[pattern.S] {
				out = append(out, rdf.Triple{S: pattern.S, P: p, O: o})
			}
		case pattern.O != rdf.Any:
			for s := range part.os[pattern.O] {
				out = append(out, rdf.Triple{S: s, P: p, O: pattern.O})
			}
		default:
			for s, objs := range part.so {
				for o := range objs {
					out = append(out, rdf.Triple{S: s, P: p, O: o})
				}
			}
		}
	}
	if pattern.P != rdf.Any {
		s := st.stripeFor(pattern.P)
		s.mu.RLock()
		if part, ok := s.parts[pattern.P]; ok {
			part.mu.RLock()
			collect(pattern.P, part)
			part.mu.RUnlock()
		}
		s.mu.RUnlock()
		return out
	}
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.RLock()
		for p, part := range s.parts {
			part.mu.RLock()
			collect(p, part)
			part.mu.RUnlock()
		}
		s.mu.RUnlock()
	}
	return out
}

// Snapshot returns a copy of every triple in the store.
func (st *Store) Snapshot() []rdf.Triple {
	out := make([]rdf.Triple, 0, st.size.Load())
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.RLock()
		for p, part := range s.parts {
			part.mu.RLock()
			for sub, objs := range part.so {
				for o := range objs {
					out = append(out, rdf.Triple{S: sub, P: p, O: o})
				}
			}
			part.mu.RUnlock()
		}
		s.mu.RUnlock()
	}
	return out
}

// Clear removes all triples.
func (st *Store) Clear() {
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.Lock()
		removed := 0
		for _, part := range s.parts {
			part.mu.RLock()
			removed += part.n
			part.mu.RUnlock()
		}
		s.parts = make(map[rdf.ID]*partition, 8)
		s.mu.Unlock()
		st.size.Add(int64(-removed))
	}
}

// Stats summarises the store's shape.
type Stats struct {
	Triples    int
	Predicates int
	// MaxPartition is the size of the largest predicate partition.
	MaxPartition int
}

// Stats returns current statistics.
func (st *Store) Stats() Stats {
	s := Stats{Triples: int(st.size.Load())}
	for i := range st.stripes {
		str := &st.stripes[i]
		str.mu.RLock()
		s.Predicates += len(str.parts)
		for _, part := range str.parts {
			part.mu.RLock()
			if part.n > s.MaxPartition {
				s.MaxPartition = part.n
			}
			part.mu.RUnlock()
		}
		str.mu.RUnlock()
	}
	return s
}
