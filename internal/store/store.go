// Package store implements Slider's in-memory triple store.
//
// The store follows the vertical partitioning approach of Abadi et al.
// (PVLDB 2007) as adopted by the paper's §2.2: triples are indexed first
// by predicate, then by subject, then by object — and symmetrically by
// predicate, object, subject — which is the near-optimal layout for the
// access patterns of RDFS/OWL rule bodies (walk a predicate's extent, or
// probe by (predicate, subject) / (predicate, object)).
//
// Within a partition the physical layout is LSM-shaped: a small mutable
// map overlay (so/os) absorbs writes at hash-map speed, while the bulk
// of the partition lives in immutable sorted runs (see runs.go) that a
// background compactor forms by flushing the overlay and size-tier
// merging (see compact.go). Removal of a run pair tombstones it; the
// compactor purges tombstones once they dominate. The split keeps
// maintenance work proportional to the delta, not the base: probes are
// an overlay map hit or a binary search of a run span, ObjectsAppend/
// SubjectsAppend return ascending sorted results (the contract the
// rule joins' galloping intersection and the query planner rely on),
// and a fully compacted partition streams its pairs verbatim — no
// journal compensation, no per-pair checks — to checkpoints.
//
// Concurrency uses two levels of lock striping instead of one global
// RWMutex, so parallel rule-module instances and parallel input managers
// do not serialize on a single lock:
//
//   - the predicate→partition map is sharded across numStripes stripes
//     (selected by a hash of the predicate ID), each guarded by its own
//     RWMutex;
//   - each partition additionally carries its own RWMutex guarding the
//     hot overlay maps, tombstones and run slice, so writers to
//     different predicates within one stripe still proceed in parallel.
//
// Locking protocol: a partition's state is only ever touched while
// holding the owning stripe's lock (read side for normal operations) plus
// the partition lock. Remove takes the stripe's write lock so it can
// prune drained partitions without racing concurrent adders that hold a
// stale *partition. Run slices are replaced wholesale under the
// partition lock and never mutated in place, so a reader that captured
// the slice under the lock may keep reading it lock-free; all run-slice
// writers additionally serialize on Store.workMu so merges run off the
// partition lock. Iteration entry points (ForEach, ForEachWithPredicate)
// copy the visited pairs under the locks and invoke the callback outside
// them, so callbacks may freely read — or even mutate — the store.
//
// The overlay/run/tombstone structure keeps Add idempotent and lets it
// report whether a triple was new — the mechanism behind Slider's
// "duplicates limitation".
//
// The cross-package lock order (workMu before freezeMu before stripe
// before partition locks, with predMu and the compaction-queue mutex as
// leaves) is catalogued in INVARIANTS.md and enforced by cmd/slidervet's
// lockorder checker.
package store

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rdf"
)

// stripeBits sets the number of lock stripes the predicate map is
// sharded across: numStripes = 2^stripeBits.
const (
	stripeBits = 6
	numStripes = 1 << stripeBits
)

// idSet is a set of term IDs.
type idSet map[rdf.ID]struct{}

// sEntry is one subject's slot in a partition's so map: its overlay
// objects plus its live degree across overlay and runs. deg is the
// spine's membership record (a subject is appended exactly when its
// entry is created) and makes drained-subject accounting exact across
// overlay flushes, which move pairs without changing degrees.
type sEntry struct {
	objs idSet
	deg  int32
}

// partition holds all triples sharing one predicate. Physically a pair
// lives in exactly one of the mutable overlay (so/os) or one immutable
// run; a run pair that has been removed is marked in tomb rather than
// rewritten. That disjointness invariant is what makes run merges plain
// unions and lets them run off the partition lock. All fields are
// guarded by mu and only accessed while also holding the owning
// stripe's lock (see the package comment for the protocol).
type partition struct {
	mu sync.RWMutex

	// so/os are the mutable delta overlay: subject → objects and
	// object → subjects for pairs not (live) in any run. onum counts
	// overlay pairs. so doubles as the spine membership index: a
	// subject's entry persists (with empty objs) while its pairs live
	// only in runs, and carries the subject's live degree, so the add
	// hot path pays a single subject-map probe. os holds overlay pairs
	// only and empty sets are deleted eagerly.
	so   map[rdf.ID]*sEntry
	os   map[rdf.ID]idSet
	onum int

	// dirty lists the subjects whose entry gained an overlay set since
	// the last flush (appended exactly on the nil→allocated transition,
	// so it is duplicate-free). It lets a flush visit only overlay
	// subjects instead of walking the whole spine-sized so map.
	dirty []rdf.ID

	// runs are the immutable sorted segments, oldest first. The slice
	// is replaced wholesale under mu (never mutated in place), so a
	// capture taken under the lock stays valid lock-free. rp counts the
	// physical pairs across runs, including tombstoned ones.
	runs []*run
	rp   int

	// tomb marks run pairs as removed (subject → dead objects); tombN
	// counts them. Live pair count is rp - tombN + onum == n.
	tomb  map[rdf.ID]idSet
	tombN int

	n int

	// subjects lists every distinct subject ever inserted, in insertion
	// order, with no duplicates. Views iterate it by index, which allows
	// bounded lock holds: a view visits a chunk of subjects at a time
	// instead of copying the whole — possibly store-sized — partition
	// under the lock. drained counts subjects whose live degree is
	// currently zero; when they dominate, View.Release compacts the
	// spine so a retract-heavy workload does not retain them forever.
	subjects []rdf.ID
	drained  int

	// born is the newest view epoch that had been issued when the
	// partition was created (0 when no view was active). Epochs are
	// monotonic, so a view of epoch e skips partitions with born >= e:
	// every pair in them postdates that view's freeze.
	born uint64
	// journals compensates each active View for mutations made after its
	// freeze: epoch → subject → object → whether the pair was present at
	// that view's freeze time. Maintained under mu by the mutating paths,
	// consulted under mu by the views; an epoch's entry is dropped when
	// its view releases. Journals record logical changes only — flushes,
	// merges and purges move pairs physically but never journal.
	journals map[uint64]*pjournal

	// queued dedups background-compactor enqueues for this partition.
	queued atomic.Bool
}

// pjournal is one view's compensation journal for one partition. added
// and removed count the false/true entries so the frozen size is O(1).
type pjournal struct {
	m              map[rdf.ID]map[rdf.ID]bool
	added, removed int
}

// sub returns the journaled objects of subject s; nil-safe so iteration
// code can treat "no journal" and "no entries for s" alike.
func (j *pjournal) sub(s rdf.ID) map[rdf.ID]bool {
	if j == nil {
		return nil
	}
	return j.m[s]
}

func newPartition(epoch uint64) *partition {
	return &partition{
		so:   make(map[rdf.ID]*sEntry),
		os:   make(map[rdf.ID]idSet),
		born: epoch,
	}
}

// journalFor returns the journal for epoch e, initialising it on first
// use. Callers hold mu.
func (p *partition) journalFor(e uint64) *pjournal {
	j, ok := p.journals[e]
	if !ok {
		if p.journals == nil {
			p.journals = make(map[uint64]*pjournal, 2)
		}
		j = &pjournal{m: make(map[rdf.ID]map[rdf.ID]bool, 8)}
		p.journals[e] = j
	}
	return j
}

// noteAdd records, for the view frozen at epoch e, that (s,o) was
// freshly inserted after the freeze. Callers hold mu and have checked
// p.born < e.
func (p *partition) noteAdd(e uint64, s, o rdf.ID) {
	j := p.journalFor(e)
	js := j.m[s]
	if present, ok := js[o]; ok {
		// present==true: the pair existed at freeze time, was removed,
		// and is now back — net zero, drop the entry. present==false is
		// impossible: such a pair is live, so its insert cannot be fresh.
		if present {
			delete(js, o)
			j.removed--
		}
		return
	}
	if js == nil {
		js = make(map[rdf.ID]bool, 2)
		j.m[s] = js
	}
	js[o] = false // absent at freeze time
	j.added++
}

// noteRemove records, for the view frozen at epoch e, that (s,o) was
// removed after the freeze. Callers hold mu and have checked p.born < e.
func (p *partition) noteRemove(e uint64, s, o rdf.ID) {
	j := p.journalFor(e)
	js := j.m[s]
	if present, ok := js[o]; ok {
		// present==false: added after the freeze, now gone again — net
		// zero. present==true is impossible: such a pair is already
		// absent, so there is nothing to remove.
		if !present {
			delete(js, o)
			j.added--
		}
		return
	}
	if js == nil {
		js = make(map[rdf.ID]bool, 2)
		j.m[s] = js
	}
	js[o] = true // present at freeze time
	j.removed++
}

// maybeCompact rebuilds the subject spine, dropping subjects whose live
// degree is zero, once they dominate the partition. Rebuilding is
// O(partition), so the threshold amortises it against the removals that
// created the drained entries. Callers hold mu (write side) and must
// ensure no View is active: the rebuild shifts spine indices a view's
// chunked walk may be holding.
func (p *partition) maybeCompact() {
	if p.drained == 0 || p.drained*2 < len(p.subjects) {
		return
	}
	kept := p.subjects[:0]
	for _, sub := range p.subjects {
		if e := p.so[sub]; e == nil || e.deg == 0 {
			delete(p.so, sub)
			continue
		}
		kept = append(kept, sub)
	}
	p.subjects = kept
	p.drained = 0
}

// frozenLen reports the partition's pair count at freeze time for the
// view of epoch e. Callers hold mu (read side suffices).
func (p *partition) frozenLen(e uint64) int {
	if p.born >= e {
		return 0
	}
	n := p.n
	if j := p.journals[e]; j != nil {
		n += j.removed - j.added
	}
	return n
}

// tombHas reports whether (s,o) is tombstoned. Callers hold mu.
func (p *partition) tombHas(s, o rdf.ID) bool {
	ts, ok := p.tomb[s]
	if !ok {
		return false
	}
	_, ok = ts[o]
	return ok
}

// runsContain reports whether any run physically holds (s,o), newest
// first — recently flushed pairs are the likeliest duplicate-insert
// targets. Callers hold mu.
func (p *partition) runsContain(s, o rdf.ID) bool {
	for i := len(p.runs) - 1; i >= 0; i-- {
		if p.runs[i].contains(s, o) {
			return true
		}
	}
	return false
}

// add inserts (s,o) and reports whether it was absent. Callers hold the
// partition lock (write side).
func (p *partition) add(s, o rdf.ID) bool {
	e := p.so[s]
	if e == nil {
		// First entry ever for this subject (drained entries stay in
		// the map, empty), so the spine append cannot duplicate.
		e = &sEntry{}
		p.so[s] = e
		p.subjects = append(p.subjects, s)
	} else if _, dup := e.objs[o]; dup {
		return false
	} else if e.deg == 0 {
		p.drained-- // a drained subject comes back to life
	}
	if p.tombN > 0 && p.tombHas(s, o) {
		// Resurrect a tombstoned run pair in place: dropping the
		// tombstone makes the run's copy live again, preserving the
		// one-physical-home invariant without touching the overlay.
		ts := p.tomb[s]
		delete(ts, o)
		if len(ts) == 0 {
			delete(p.tomb, s)
		}
		p.tombN--
	} else if int(e.deg) > len(e.objs) && p.runsContain(s, o) {
		// Already live in a run; undo the speculative bookkeeping. The
		// deg guard skips the per-run probes whenever the subject's live
		// pairs all sit in the overlay (deg == overlay size — the fresh-
		// ingest common case): a run copy that is not live here must be
		// tombstoned, and the branch above already handled that.
		if e.deg == 0 {
			p.drained++
		}
		return false
	} else {
		if e.objs == nil {
			e.objs = make(idSet, 2)
			p.dirty = append(p.dirty, s)
		}
		e.objs[o] = struct{}{}
		subs := p.os[o]
		if subs == nil {
			subs = make(idSet, 2)
			p.os[o] = subs
		}
		subs[s] = struct{}{}
		p.onum++
	}
	e.deg++
	p.n++
	if invariantsEnabled {
		p.assertAccounting()
		p.assertLive(s, o)
	}
	return true
}

// remove deletes (s,o) and reports whether it was present: overlay pairs
// are deleted outright, run pairs are tombstoned. Callers hold the
// partition lock (write side).
func (p *partition) remove(s, o rdf.ID) bool {
	e := p.so[s]
	if e == nil {
		return false // never a spine subject, so no live pairs at all
	}
	if _, ok := e.objs[o]; ok {
		delete(e.objs, o)
		subs := p.os[o]
		delete(subs, s)
		if len(subs) == 0 {
			delete(p.os, o)
		}
		p.onum--
		p.removed(e)
		if invariantsEnabled {
			p.assertAccounting()
			p.assertDead(s, o)
		}
		return true
	}
	// deg == overlay size means no live run pair for this subject (the
	// overlay branch above already missed), so nothing is left to remove.
	if int(e.deg) == len(e.objs) || p.tombHas(s, o) || !p.runsContain(s, o) {
		return false
	}
	ts := p.tomb[s]
	if ts == nil {
		if p.tomb == nil {
			p.tomb = make(map[rdf.ID]idSet, 4)
		}
		ts = make(idSet, 2)
		p.tomb[s] = ts
	}
	ts[o] = struct{}{}
	p.tombN++
	p.removed(e)
	if invariantsEnabled {
		p.assertAccounting()
		p.assertDead(s, o)
	}
	return true
}

// removed does the degree and count bookkeeping shared by both removal
// paths. Callers hold the partition lock (write side).
func (p *partition) removed(e *sEntry) {
	e.deg--
	if e.deg == 0 {
		p.drained++
	}
	p.n--
}

// contains reports whether (s,o) is live: an overlay map probe, then —
// unless tombstoned — a binary-search probe of the runs. Callers hold
// the partition lock (read side suffices).
func (p *partition) contains(s, o rdf.ID) bool {
	e := p.so[s]
	if e == nil {
		// Not a spine subject: any run copy it ever had would be
		// tombstoned (pruning requires a drained subject), hence dead.
		return false
	}
	if _, ok := e.objs[o]; ok {
		return true
	}
	// deg == overlay size: every live pair is in the overlay, which
	// just missed — no need to probe the runs.
	if int(e.deg) == len(e.objs) {
		return false
	}
	if p.tombN > 0 && p.tombHas(s, o) {
		return false
	}
	return p.runsContain(s, o)
}

// forEachLive calls f for every live (s,o) pair: run pairs minus
// tombstones, then the overlay. Callers hold the partition lock.
func (p *partition) forEachLive(f func(s, o rdf.ID)) {
	for _, r := range p.runs {
		for i, s := range r.subs {
			objs := r.objs[r.subOff[i]:r.subOff[i+1]]
			if p.tombN == 0 {
				for _, o := range objs {
					f(s, o)
				}
				continue
			}
			ts := p.tomb[s]
			for _, o := range objs {
				if _, dead := ts[o]; dead {
					continue
				}
				f(s, o)
			}
		}
	}
	for s, e := range p.so {
		for o := range e.objs {
			f(s, o)
		}
	}
}

// objectsAppend appends the live objects of s to dst in ascending order.
// Each run span is already sorted, so the common compacted case (one
// contributing run, empty overlay) is a straight copy with no sort; a
// final sort only runs when several sources — or the unsorted overlay —
// contributed. Callers hold the partition lock (read side suffices).
func (p *partition) objectsAppend(dst []rdf.ID, s rdf.ID) []rdf.ID {
	start := len(dst)
	srcs := 0
	needSort := false
	if e := p.so[s]; e != nil && len(e.objs) > 0 {
		for o := range e.objs {
			dst = append(dst, o)
		}
		srcs++
		needSort = true
	}
	if len(p.runs) > 0 {
		ts := p.tomb[s]
		for _, r := range p.runs {
			ro := r.objectsOf(s)
			if len(ro) == 0 {
				continue
			}
			if len(ts) == 0 {
				dst = append(dst, ro...)
				srcs++
				continue
			}
			before := len(dst)
			for _, o := range ro {
				if _, dead := ts[o]; dead {
					continue
				}
				dst = append(dst, o)
			}
			if len(dst) > before {
				srcs++
			}
		}
	}
	if needSort || srcs > 1 {
		slices.Sort(dst[start:])
	}
	return dst
}

// subjectsAppend appends the live subjects of o to dst in ascending
// order — the object-direction mirror of objectsAppend. Callers hold
// the partition lock (read side suffices).
func (p *partition) subjectsAppend(dst []rdf.ID, o rdf.ID) []rdf.ID {
	start := len(dst)
	srcs := 0
	needSort := false
	if subs := p.os[o]; len(subs) > 0 {
		for s := range subs {
			dst = append(dst, s)
		}
		srcs++
		needSort = true
	}
	for _, r := range p.runs {
		rs := r.subjectsOf(o)
		if len(rs) == 0 {
			continue
		}
		if p.tombN == 0 {
			dst = append(dst, rs...)
			srcs++
			continue
		}
		before := len(dst)
		for _, s := range rs {
			if p.tombHas(s, o) {
				continue
			}
			dst = append(dst, s)
		}
		if len(dst) > before {
			srcs++
		}
	}
	if needSort || srcs > 1 {
		slices.Sort(dst[start:])
	}
	return dst
}

// pair is one (subject, object) of a partition, used for copy-then-call
// iteration.
type pair struct {
	s, o rdf.ID
}

// stripe is one shard of the predicate→partition map.
type stripe struct {
	mu    sync.RWMutex
	parts map[rdf.ID]*partition
}

// Store is a concurrent, duplicate-free, vertically partitioned triple
// store. The zero value is not usable; call New.
type Store struct {
	stripes [numStripes]stripe
	size    atomic.Int64

	// version counts content mutations (monotonic; bumped at least once
	// per mutating call that changed anything). Readers use it as a
	// cheap "has the store moved since I looked" check — the serving
	// layer's shared-view cache keys its freshness on it.
	version atomic.Uint64

	// active is the sorted set of live View epochs (nil when none).
	// Mutators load it inside the partition lock and journal their
	// changes into every epoch that predates the partition, so each view
	// can reconstruct its freeze-time state. The slice is immutable once
	// published; Freeze/Release swap in fresh copies under freezeMu.
	active atomic.Pointer[[]uint64]
	// freezeMu serializes Freeze/Release; epochSeq (guarded by it) is
	// the last epoch handed out and is never reused.
	freezeMu sync.Mutex
	epochSeq uint64

	// predMu guards preds, the sorted registry of predicates with a
	// partition. Maintained incrementally at partition create/prune so
	// Predicates() is a copy, not a collect-and-sort per call.
	predMu sync.RWMutex
	preds  []rdf.ID

	// Background compaction state (see compact.go). autoCompact gates
	// the background worker; workMu serializes all run-slice writers;
	// the c* atomics are the compaction counters surfaced by Stats.
	autoCompact atomic.Bool
	comp        struct {
		mu       sync.Mutex
		queue    []rdf.ID
		running  bool
		panics   int       // consecutive worker panics; reset by a clean pass
		err      error     // sticky error once the restart budget is spent
		errSince time.Time // when err was recorded
	}
	workMu sync.Mutex

	cFlushes, cMerges, cPurges, cPairsMerged atomic.Int64

	// metrics optionally instruments compaction durations (SetMetrics);
	// loaded atomically so the background compactor can race a late
	// SetMetrics without a data race.
	metrics atomic.Pointer[Metrics]
}

// New returns an empty store with background compaction enabled.
func New() *Store {
	st := &Store{}
	for i := range st.stripes {
		st.stripes[i].parts = make(map[rdf.ID]*partition, 8)
	}
	st.autoCompact.Store(true)
	return st
}

// stripeFor selects the stripe owning predicate p. Predicate IDs are
// dense per kind (with the kind in the top bits), so a Fibonacci spread
// of the raw value distributes consecutive IDs across stripes.
func (st *Store) stripeFor(p rdf.ID) *stripe {
	h := uint64(p) * 0x9E3779B97F4A7C15
	return &st.stripes[h>>(64-stripeBits)]
}

// Version returns the store's mutation counter. It advances on every
// call that changed content; two equal readings with no mutation in
// flight mean the store's contents are unchanged between them.
func (st *Store) Version() uint64 { return st.version.Load() }

// newestEpoch returns the newest active view epoch (0 when none) — the
// born stamp for partitions created now.
func (st *Store) newestEpoch() uint64 {
	if eps := st.active.Load(); eps != nil && len(*eps) > 0 {
		return (*eps)[len(*eps)-1]
	}
	return 0
}

// registerPred adds p to the sorted predicate registry. Called at
// partition creation; predMu is a leaf lock, so calling under stripe
// locks is safe.
func (st *Store) registerPred(p rdf.ID) {
	st.predMu.Lock()
	if i, found := slices.BinarySearch(st.preds, p); !found {
		st.preds = slices.Insert(st.preds, i, p)
	}
	st.predMu.Unlock()
}

// unregisterPred removes p from the predicate registry. Called when a
// drained partition is pruned.
func (st *Store) unregisterPred(p rdf.ID) {
	st.predMu.Lock()
	if i, found := slices.BinarySearch(st.preds, p); found {
		st.preds = slices.Delete(st.preds, i, i+1)
	}
	st.predMu.Unlock()
}

// noteAddAll journals a fresh insertion into every active view the
// partition predates. Callers hold the partition lock and pass the
// epoch set loaded inside it.
func noteAddAll(eps *[]uint64, p *partition, s, o rdf.ID) {
	if eps == nil {
		return
	}
	for _, e := range *eps {
		if p.born < e {
			p.noteAdd(e, s, o)
		}
	}
}

// noteRemoveAll journals a removal into every active view the partition
// predates. Callers hold the partition lock.
func noteRemoveAll(eps *[]uint64, p *partition, s, o rdf.ID) {
	if eps == nil {
		return
	}
	for _, e := range *eps {
		if p.born < e {
			p.noteRemove(e, s, o)
		}
	}
}

// Add inserts a triple and reports whether it was new. Duplicate inserts
// are cheap no-ops.
func (st *Store) Add(t rdf.Triple) bool {
	s := st.stripeFor(t.P)
	s.mu.RLock()
	p, ok := s.parts[t.P]
	if ok {
		p.mu.Lock()
		fresh := p.add(t.S, t.O)
		// size is updated before the locks are released so it can never
		// lag behind a Clear that sums partition counts under the locks.
		if fresh {
			st.size.Add(1)
			st.version.Add(1)
			noteAddAll(st.active.Load(), p, t.S, t.O)
		}
		due := fresh && p.compactionDue()
		p.mu.Unlock()
		s.mu.RUnlock()
		if due {
			st.enqueueCompact(t.P, p)
		}
		return fresh
	}
	s.mu.RUnlock()
	s.mu.Lock()
	p, ok = s.parts[t.P]
	if !ok {
		p = newPartition(st.newestEpoch())
		s.parts[t.P] = p
		st.registerPred(t.P)
	}
	p.mu.Lock()
	fresh := p.add(t.S, t.O)
	if fresh {
		st.size.Add(1)
		st.version.Add(1)
		noteAddAll(st.active.Load(), p, t.S, t.O)
	}
	due := fresh && p.compactionDue()
	p.mu.Unlock()
	s.mu.Unlock()
	if due {
		st.enqueueCompact(t.P, p)
	}
	return fresh
}

// AddBatch inserts all triples and returns those that were new,
// preserving input order. Triples are grouped by predicate so each
// partition lock is taken once per distinct predicate instead of once
// per triple — the write-path fast lane for batch ingestion.
func (st *Store) AddBatch(ts []rdf.Triple) []rdf.Triple {
	switch len(ts) {
	case 0:
		return nil
	case 1:
		if st.Add(ts[0]) {
			return ts[:1:1]
		}
		return nil
	}
	fresh := make([]bool, len(ts))
	byPred := make(map[rdf.ID][]int, 8)
	for i, t := range ts {
		byPred[t.P] = append(byPred[t.P], i)
	}
	n := 0
	for p, idxs := range byPred {
		n += st.addGroup(p, ts, idxs, fresh)
	}
	if n == 0 {
		return nil
	}
	out := make([]rdf.Triple, 0, n)
	for i, t := range ts {
		if fresh[i] {
			out = append(out, t)
		}
	}
	return out
}

// addGroup inserts all triples at the given indices (sharing predicate p)
// under a single partition-lock acquisition, marking fresh insertions.
// It returns the number of fresh triples.
func (st *Store) addGroup(p rdf.ID, ts []rdf.Triple, idxs []int, fresh []bool) int {
	s := st.stripeFor(p)
	n := 0
	s.mu.RLock()
	part, ok := s.parts[p]
	if ok {
		part.mu.Lock()
		eps := st.active.Load()
		for _, i := range idxs {
			if part.add(ts[i].S, ts[i].O) {
				fresh[i] = true
				n++
				noteAddAll(eps, part, ts[i].S, ts[i].O)
			}
		}
		if n > 0 {
			st.size.Add(int64(n))
			st.version.Add(1)
		}
		due := n > 0 && part.compactionDue()
		part.mu.Unlock()
		s.mu.RUnlock()
		if due {
			st.enqueueCompact(p, part)
		}
		return n
	}
	s.mu.RUnlock()
	s.mu.Lock()
	part, ok = s.parts[p]
	if !ok {
		part = newPartition(st.newestEpoch())
		s.parts[p] = part
		st.registerPred(p)
	}
	part.mu.Lock()
	eps := st.active.Load()
	for _, i := range idxs {
		if part.add(ts[i].S, ts[i].O) {
			fresh[i] = true
			n++
			noteAddAll(eps, part, ts[i].S, ts[i].O)
		}
	}
	if n > 0 {
		st.size.Add(int64(n))
		st.version.Add(1)
	}
	due := n > 0 && part.compactionDue()
	part.mu.Unlock()
	s.mu.Unlock()
	if due {
		st.enqueueCompact(p, part)
	}
	return n
}

// AddAll inserts all triples and returns those that were new, preserving
// input order. It is AddBatch under the store's historical name.
func (st *Store) AddAll(ts []rdf.Triple) []rdf.Triple {
	return st.AddBatch(ts)
}

// Remove deletes a triple and reports whether it was present: overlay
// pairs are deleted, run pairs are tombstoned for the compactor to
// purge. A fully drained partition is pruned (deferred to View.Release
// while a view is active). Remove takes the stripe's write lock
// (excluding concurrent access to the stripe) so pruning an emptied
// partition cannot race an adder.
func (st *Store) Remove(t rdf.Triple) bool {
	s := st.stripeFor(t.P)
	s.mu.Lock()
	p, ok := s.parts[t.P]
	if !ok {
		s.mu.Unlock()
		return false
	}
	p.mu.Lock()
	if !p.remove(t.S, t.O) {
		p.mu.Unlock()
		s.mu.Unlock()
		return false
	}
	st.size.Add(-1)
	st.version.Add(1)
	eps := st.active.Load()
	noteRemoveAll(eps, p, t.S, t.O)
	// A drained partition is pruned — and drained subject entries are
	// compacted — unless a View is active: views may still need the
	// partition's journals, runs and spine (the last Release sweeps
	// instead).
	pruned := false
	if eps == nil {
		if p.n == 0 {
			delete(s.parts, t.P)
			st.unregisterPred(t.P)
			pruned = true
		} else {
			p.maybeCompact()
		}
	}
	due := !pruned && p.compactionDue()
	p.mu.Unlock()
	s.mu.Unlock()
	if due {
		st.enqueueCompact(t.P, p)
	}
	return true
}

// RemoveAll deletes all given triples, returning how many were present.
func (st *Store) RemoveAll(ts []rdf.Triple) int {
	n := 0
	for _, t := range ts {
		if st.Remove(t) {
			n++
		}
	}
	return n
}

// Contains reports whether the exact triple is present.
func (st *Store) Contains(t rdf.Triple) bool {
	s := st.stripeFor(t.P)
	s.mu.RLock()
	p, ok := s.parts[t.P]
	if !ok {
		s.mu.RUnlock()
		return false
	}
	p.mu.RLock()
	found := p.contains(t.S, t.O)
	p.mu.RUnlock()
	s.mu.RUnlock()
	return found
}

// ContainsBatch reports, for each input triple, whether it is present.
// Triples are grouped by predicate so each partition lock is taken once
// per distinct predicate.
func (st *Store) ContainsBatch(ts []rdf.Triple) []bool {
	if len(ts) == 0 {
		return nil
	}
	out := make([]bool, len(ts))
	byPred := make(map[rdf.ID][]int, 8)
	for i, t := range ts {
		byPred[t.P] = append(byPred[t.P], i)
	}
	for p, idxs := range byPred {
		s := st.stripeFor(p)
		s.mu.RLock()
		part, ok := s.parts[p]
		if ok {
			part.mu.RLock()
			for _, i := range idxs {
				out[i] = part.contains(ts[i].S, ts[i].O)
			}
			part.mu.RUnlock()
		}
		s.mu.RUnlock()
	}
	return out
}

// Len returns the number of distinct triples.
func (st *Store) Len() int {
	return int(st.size.Load())
}

// PredicateLen returns the number of triples with the given predicate.
func (st *Store) PredicateLen(p rdf.ID) int {
	s := st.stripeFor(p)
	s.mu.RLock()
	defer s.mu.RUnlock()
	part, ok := s.parts[p]
	if !ok {
		return 0
	}
	part.mu.RLock()
	defer part.mu.RUnlock()
	return part.n
}

// PredicateStats returns the live pair count and the distinct subject
// and object counts of predicate p's partition — the per-partition
// cardinalities the query planner's selectivity estimates divide by.
// The object count is an upper bound while the partition has both
// overlay and run pairs (an object present in both is counted twice)
// and while tombstones are pending; the planner only needs the order of
// magnitude, and the bound is exact once compacted.
func (st *Store) PredicateStats(p rdf.ID) (triples, subjects, objects int) {
	s := st.stripeFor(p)
	s.mu.RLock()
	defer s.mu.RUnlock()
	part, ok := s.parts[p]
	if !ok {
		return 0, 0, 0
	}
	part.mu.RLock()
	defer part.mu.RUnlock()
	triples = part.n
	subjects = len(part.subjects) - part.drained
	objects = len(part.os)
	for _, r := range part.runs {
		objects += len(r.objsD)
	}
	return triples, subjects, objects
}

// Predicates returns all predicates present, in ascending ID order. The
// registry is maintained sorted at partition create/prune, so this is a
// copy, not a per-call sort.
func (st *Store) Predicates() []rdf.ID {
	st.predMu.RLock()
	out := slices.Clone(st.preds)
	st.predMu.RUnlock()
	return out
}

// Objects returns a copy of the objects o such that (s, p, o) is
// present, in ascending ID order.
func (st *Store) Objects(p, s rdf.ID) []rdf.ID {
	return st.ObjectsAppend(nil, p, s)
}

// ObjectsAppend appends the objects o such that (s, p, o) is present to
// dst and returns the extended slice. The appended segment is in
// ascending ID order — rule joins and the query executor gallop over it.
// Reusing dst across calls lets hot rule joins avoid a fresh allocation
// per probe.
func (st *Store) ObjectsAppend(dst []rdf.ID, p, s rdf.ID) []rdf.ID {
	str := st.stripeFor(p)
	str.mu.RLock()
	part, ok := str.parts[p]
	if !ok {
		str.mu.RUnlock()
		return dst
	}
	part.mu.RLock()
	dst = part.objectsAppend(dst, s)
	part.mu.RUnlock()
	str.mu.RUnlock()
	return dst
}

// Subjects returns a copy of the subjects s such that (s, p, o) is
// present, in ascending ID order.
func (st *Store) Subjects(p, o rdf.ID) []rdf.ID {
	return st.SubjectsAppend(nil, p, o)
}

// SubjectsAppend appends the subjects s such that (s, p, o) is present to
// dst and returns the extended slice. The appended segment is in
// ascending ID order.
func (st *Store) SubjectsAppend(dst []rdf.ID, p, o rdf.ID) []rdf.ID {
	str := st.stripeFor(p)
	str.mu.RLock()
	part, ok := str.parts[p]
	if !ok {
		str.mu.RUnlock()
		return dst
	}
	part.mu.RLock()
	dst = part.subjectsAppend(dst, o)
	part.mu.RUnlock()
	str.mu.RUnlock()
	return dst
}

// pairBufs recycles the scratch slices ForEachWithPredicate/ForEach copy
// partitions into, so the per-probe copy (the price of running callbacks
// outside the locks) does not also cost an allocation per call.
var pairBufs = sync.Pool{New: func() any { return new([]pair) }}

// pairsOf copies the live (s, o) pairs of predicate p's partition into a
// pooled buffer. Callers must hand the buffer back via putPairs.
func (st *Store) pairsOf(p rdf.ID) *[]pair {
	s := st.stripeFor(p)
	s.mu.RLock()
	part, ok := s.parts[p]
	if !ok {
		s.mu.RUnlock()
		return nil
	}
	buf := pairBufs.Get().(*[]pair)
	part.mu.RLock()
	out := (*buf)[:0]
	part.forEachLive(func(sub, o rdf.ID) {
		out = append(out, pair{s: sub, o: o})
	})
	part.mu.RUnlock()
	s.mu.RUnlock()
	*buf = out
	return buf
}

func putPairs(buf *[]pair) {
	if buf != nil {
		pairBufs.Put(buf)
	}
}

// ForEachWithPredicate calls f for every (s, o) pair in the predicate's
// partition until f returns false. The pairs are copied out under the
// partition lock and f runs outside it, so f sees a consistent snapshot
// of the partition and may freely read or mutate the store (mutations are
// not reflected in the ongoing iteration).
func (st *Store) ForEachWithPredicate(p rdf.ID, f func(s, o rdf.ID) bool) {
	buf := st.pairsOf(p)
	if buf == nil {
		return
	}
	defer putPairs(buf)
	for _, pr := range *buf {
		if !f(pr.s, pr.o) {
			return
		}
	}
}

// ForEach calls f for every triple until f returns false. Like
// ForEachWithPredicate, triples are copied out stripe by stripe and f
// runs outside the locks; concurrent mutations may or may not be
// visited.
func (st *Store) ForEach(f func(rdf.Triple) bool) {
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.RLock()
		preds := make([]rdf.ID, 0, len(s.parts))
		for p := range s.parts {
			preds = append(preds, p)
		}
		s.mu.RUnlock()
		for _, p := range preds {
			buf := st.pairsOf(p)
			if buf == nil {
				continue
			}
			for _, pr := range *buf {
				if !f(rdf.Triple{S: pr.s, P: p, O: pr.o}) {
					putPairs(buf)
					return
				}
			}
			putPairs(buf)
		}
	}
}

// Match returns all triples matching the pattern, where rdf.Any acts as a
// wildcard in any position. The result is a copy.
func (st *Store) Match(pattern rdf.Triple) []rdf.Triple {
	var out []rdf.Triple
	collect := func(p rdf.ID, part *partition) {
		switch {
		case pattern.S != rdf.Any && pattern.O != rdf.Any:
			if part.contains(pattern.S, pattern.O) {
				out = append(out, rdf.Triple{S: pattern.S, P: p, O: pattern.O})
			}
		case pattern.S != rdf.Any:
			for _, o := range part.objectsAppend(nil, pattern.S) {
				out = append(out, rdf.Triple{S: pattern.S, P: p, O: o})
			}
		case pattern.O != rdf.Any:
			for _, s := range part.subjectsAppend(nil, pattern.O) {
				out = append(out, rdf.Triple{S: s, P: p, O: pattern.O})
			}
		default:
			part.forEachLive(func(s, o rdf.ID) {
				out = append(out, rdf.Triple{S: s, P: p, O: o})
			})
		}
	}
	if pattern.P != rdf.Any {
		s := st.stripeFor(pattern.P)
		s.mu.RLock()
		if part, ok := s.parts[pattern.P]; ok {
			part.mu.RLock()
			collect(pattern.P, part)
			part.mu.RUnlock()
		}
		s.mu.RUnlock()
		return out
	}
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.RLock()
		for p, part := range s.parts {
			part.mu.RLock()
			collect(p, part)
			part.mu.RUnlock()
		}
		s.mu.RUnlock()
	}
	return out
}

// Snapshot returns a copy of every triple in the store.
func (st *Store) Snapshot() []rdf.Triple {
	out := make([]rdf.Triple, 0, st.size.Load())
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.RLock()
		for p, part := range s.parts {
			part.mu.RLock()
			part.forEachLive(func(sub, o rdf.ID) {
				out = append(out, rdf.Triple{S: sub, P: p, O: o})
			})
			part.mu.RUnlock()
		}
		s.mu.RUnlock()
	}
	return out
}

// Clear removes all triples. It must not be called while a View is
// active: wholesale partition replacement cannot be journaled.
func (st *Store) Clear() {
	if st.active.Load() != nil {
		panic("store: Clear while a View is active")
	}
	st.version.Add(1)
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.Lock()
		removed := 0
		for _, part := range s.parts {
			part.mu.RLock()
			removed += part.n
			part.mu.RUnlock()
		}
		s.parts = make(map[rdf.ID]*partition, 8)
		s.mu.Unlock()
		st.size.Add(int64(-removed))
	}
	st.predMu.Lock()
	st.preds = nil
	st.predMu.Unlock()
}

// CompactionStats counts the background compactor's work since the
// store was created.
type CompactionStats struct {
	// Flushes is the number of overlay→run seals, Merges the number of
	// run merges, Purges the number of tombstone-purging rebuilds.
	Flushes, Merges, Purges int64
	// PairsMerged counts pairs rewritten by merges and purges — the
	// write-amplification meter.
	PairsMerged int64
}

// Stats summarises the store's shape.
type Stats struct {
	Triples    int
	Predicates int
	// MaxPartition is the size of the largest predicate partition.
	MaxPartition int

	// Runs is the total immutable-run count across all partitions;
	// RunPairs, OverlayPairs and Tombstones split the physical pair
	// population (live pairs = RunPairs - Tombstones + OverlayPairs).
	Runs         int
	RunPairs     int
	OverlayPairs int
	Tombstones   int

	Compaction CompactionStats
}

// Stats returns current statistics.
func (st *Store) Stats() Stats {
	s := Stats{Triples: int(st.size.Load())}
	for i := range st.stripes {
		str := &st.stripes[i]
		str.mu.RLock()
		s.Predicates += len(str.parts)
		for _, part := range str.parts {
			part.mu.RLock()
			if part.n > s.MaxPartition {
				s.MaxPartition = part.n
			}
			s.Runs += len(part.runs)
			s.RunPairs += part.rp
			s.OverlayPairs += part.onum
			s.Tombstones += part.tombN
			part.mu.RUnlock()
		}
		str.mu.RUnlock()
	}
	s.Compaction = CompactionStats{
		Flushes:     st.cFlushes.Load(),
		Merges:      st.cMerges.Load(),
		Purges:      st.cPurges.Load(),
		PairsMerged: st.cPairsMerged.Load(),
	}
	return s
}

// View is a consistent point-in-time view of the store, created by
// Freeze. While a view is active, mutators keep running at full speed:
// each partition records post-freeze changes in a small compensation
// journal (one entry per net-changed pair), and the view's iteration
// applies the journal to reconstruct the exact freeze-time contents.
// This is the mechanism behind non-blocking checkpoints: capture is
// O(1), streaming the view contends with writers only for the brief
// per-partition copy that plain iteration already takes — and a fully
// compacted partition (no overlay, no tombstones, no journal) streams
// its immutable runs verbatim, entirely outside the locks.
//
// A view is immutable: Predicates, PredicateLen and the iteration
// methods return the same answers no matter how the store has moved on.
// Compaction (flush/merge/purge) moves pairs physically but never
// changes logical content, so it is transparent to views. Call Release
// when done — it drops the view's journals and, when it was the last
// active view, prunes partitions that drained while frozen. Any number
// of views may be active concurrently (each checkpoint and each read
// session holds its own); every mutation journals one entry per active
// view it affects, so keep the active set small.
type View struct {
	st    *Store
	epoch uint64
	size  int64
}

// Freeze captures a view of the store's current contents. The caller
// must ensure no mutation is in flight during the call itself (mutations
// strictly before or after are fine, and may continue immediately after
// Freeze returns): a mutation racing the freeze lands on an unspecified
// side of the boundary.
func (st *Store) Freeze() *View {
	st.freezeMu.Lock()
	defer st.freezeMu.Unlock()
	st.epochSeq++
	e := st.epochSeq
	eps := make([]uint64, 0, 2)
	if old := st.active.Load(); old != nil {
		eps = append(eps, *old...)
	}
	eps = append(eps, e) // ascending: epochSeq is monotonic
	st.active.Store(&eps)
	return &View{st: st, epoch: e, size: st.size.Load()}
}

// Release ends the view: the store stops journaling for its epoch and
// the epoch's journals are dropped. The release of the last active view
// additionally compacts drained subjects and prunes partitions that
// drained while frozen. Release is idempotent.
func (v *View) Release() {
	st := v.st
	st.freezeMu.Lock()
	defer st.freezeMu.Unlock()
	old := st.active.Load()
	if old == nil {
		return
	}
	eps := make([]uint64, 0, len(*old))
	found := false
	for _, e := range *old {
		if e == v.epoch {
			found = true
			continue
		}
		eps = append(eps, e)
	}
	if !found {
		return
	}
	last := len(eps) == 0
	if last {
		st.active.Store(nil)
	} else {
		st.active.Store(&eps)
	}
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.Lock()
		for id, p := range s.parts {
			p.mu.Lock()
			delete(p.journals, v.epoch)
			empty := false
			if last {
				p.journals = nil
				p.maybeCompact()
				empty = p.n == 0
			}
			p.mu.Unlock()
			if empty {
				delete(s.parts, id)
				st.unregisterPred(id)
			}
		}
		s.mu.Unlock()
	}
}

// Len returns the number of triples in the view.
func (v *View) Len() int { return int(v.size) }

// Predicates returns the predicates present at freeze time, in
// ascending ID order.
func (v *View) Predicates() []rdf.ID {
	// The registry only grows while a view is active (partitions are
	// never pruned mid-view), so filtering it by frozen length yields
	// exactly the freeze-time predicates, already sorted.
	var out []rdf.ID
	for _, p := range v.st.Predicates() {
		if v.PredicateLen(p) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// PredicateLen returns the number of triples with the given predicate
// at freeze time.
func (v *View) PredicateLen(p rdf.ID) int {
	s := v.st.stripeFor(p)
	s.mu.RLock()
	defer s.mu.RUnlock()
	part, ok := s.parts[p]
	if !ok {
		return 0
	}
	part.mu.RLock()
	defer part.mu.RUnlock()
	return part.frozenLen(v.epoch)
}

// PredicateStats returns the freeze-time pair count of predicate p plus
// the partition's current distinct subject/object counts — the same
// planning-grade cardinalities Store.PredicateStats reports (views
// drift from them only by the post-freeze delta, which is negligible
// for join-order estimation).
func (v *View) PredicateStats(p rdf.ID) (triples, subjects, objects int) {
	s := v.st.stripeFor(p)
	s.mu.RLock()
	defer s.mu.RUnlock()
	part, ok := s.parts[p]
	if !ok {
		return 0, 0, 0
	}
	part.mu.RLock()
	defer part.mu.RUnlock()
	triples = part.frozenLen(v.epoch)
	subjects = len(part.subjects) - part.drained
	objects = len(part.os)
	for _, r := range part.runs {
		objects += len(r.objsD)
	}
	return triples, subjects, objects
}

// viewChunk is how many pairs a view accumulates per partition-lock
// acquisition. It bounds the pause a concurrent writer can observe
// behind view iteration: with vertical partitioning a single predicate
// (rdf:type, typically) can hold most of the store, so copying a whole
// partition under its lock — what live iteration does — would stall
// writers for O(store) at exactly the moment non-blocking checkpoints
// exist to protect. A subject's object set is evaluated atomically, so
// the true hold bound is O(viewChunk + degree of the chunk's last
// subject) — a pathological hub subject still costs its degree. Frozen
// evaluation probes every run per subject (a map lookup each), so the
// per-pair cost is a few times a plain map walk; 1024 keeps the hold
// around a millisecond even on a partition split across several runs.
const viewChunk = 1024

// appendFrozenObjs appends subject s's freeze-time pairs to out: live
// pairs (overlay and untombstoned run pairs) not journaled as
// post-freeze insertions, plus journaled post-freeze removals. The
// journal is keyed on logical pairs, so a pair's physical home —
// overlay before a flush, run after — never matters. Callers hold the
// partition lock.
func (p *partition) appendFrozenObjs(out []pair, s rdf.ID, js map[rdf.ID]bool) []pair {
	if e := p.so[s]; e != nil {
		for o := range e.objs {
			if present, journaled := js[o]; journaled && !present {
				continue // inserted after the freeze
			}
			out = append(out, pair{s: s, o: o})
		}
	}
	if len(p.runs) > 0 {
		ts := p.tomb[s]
		for _, r := range p.runs {
			for _, o := range r.objectsOf(s) {
				if _, dead := ts[o]; dead {
					continue // removed; the journal re-adds it if post-freeze
				}
				if present, journaled := js[o]; journaled && !present {
					continue // flushed post-freeze insertion
				}
				out = append(out, pair{s: s, o: o})
			}
		}
	}
	for o, present := range js {
		if present {
			out = append(out, pair{s: s, o: o}) // removed after the freeze
		}
	}
	return out
}

// ForEachWithPredicate calls f for every freeze-time (s, o) pair of the
// predicate until f returns false. f runs outside the store's locks.
//
// A partition that predates the view and has no journal for it, no
// overlay and no tombstones is frozen-equal to its immutable runs, so
// it streams them verbatim with no further locking: the runs slice is
// replaced wholesale, never mutated in place, and any later logical
// mutation postdates the freeze — it would create exactly the journal
// entry whose absence this path just observed — so it cannot belong to
// the frozen state. This is the checkpoint fast path FlushOverlays sets
// up.
//
// Otherwise iteration walks the partition's insertion-ordered subject
// list, re-acquiring the partition lock after every ~viewChunk pairs.
// That is safe mid-view: partitions are never pruned nor Cleared while
// a view is active, each subject appears in the list exactly once, and
// a subject's freeze-time pairs are a time-invariant property (physical
// moves by the compactor do not change them), so evaluating each
// subject once, whenever its chunk comes up, enumerates exactly the
// frozen state. Subjects appended after the freeze evaluate to nothing.
func (v *View) ForEachWithPredicate(p rdf.ID, f func(s, o rdf.ID) bool) {
	str := v.st.stripeFor(p)
	str.mu.RLock()
	part, ok := str.parts[p]
	str.mu.RUnlock()
	if !ok {
		return
	}
	buf := pairBufs.Get().(*[]pair)
	defer putPairs(buf)
	for i := 0; ; {
		part.mu.RLock()
		if part.born >= v.epoch {
			part.mu.RUnlock()
			return
		}
		j := part.journals[v.epoch] // nil when nothing changed since the freeze
		if i == 0 && j == nil && part.onum == 0 && part.tombN == 0 {
			runs := part.runs
			part.mu.RUnlock()
			for _, r := range runs {
				if !r.forEach(f) {
					return
				}
			}
			return
		}
		out := (*buf)[:0]
		for ; i < len(part.subjects) && len(out) < viewChunk; i++ {
			sub := part.subjects[i]
			out = part.appendFrozenObjs(out, sub, j.sub(sub))
		}
		done := i >= len(part.subjects)
		part.mu.RUnlock()
		*buf = out
		for _, pr := range out {
			if !f(pr.s, pr.o) {
				return
			}
		}
		if done {
			return
		}
	}
}

// ForEach calls f for every freeze-time triple until f returns false,
// grouped by predicate in ascending predicate order. f runs outside the
// store's locks.
func (v *View) ForEach(f func(rdf.Triple) bool) {
	for _, p := range v.Predicates() {
		stop := false
		v.ForEachWithPredicate(p, func(s, o rdf.ID) bool {
			if !f(rdf.Triple{S: s, P: p, O: o}) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// MatchEach streams every live triple matching the pattern (rdf.Any
// wildcards) to f until f returns false, copying matches out under the
// locks so f runs outside them. It is the streaming face of Match and
// the Store half of the query engine's Source interface.
func (st *Store) MatchEach(pattern rdf.Triple, f func(rdf.Triple) bool) {
	for _, t := range st.Match(pattern) {
		if !f(t) {
			return
		}
	}
}

// Contains reports whether the triple was present at freeze time.
func (v *View) Contains(t rdf.Triple) bool {
	s := v.st.stripeFor(t.P)
	s.mu.RLock()
	part, ok := s.parts[t.P]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	part.mu.RLock()
	defer part.mu.RUnlock()
	return v.frozenContains(part, t.S, t.O)
}

// frozenContains answers Contains for one partition. Callers hold the
// partition lock (read side suffices).
func (v *View) frozenContains(part *partition, s, o rdf.ID) bool {
	if part.born >= v.epoch {
		return false
	}
	if js := part.journals[v.epoch].sub(s); js != nil {
		if present, journaled := js[o]; journaled {
			// present records the freeze-time truth for pairs that
			// changed after the freeze.
			return present
		}
	}
	return part.contains(s, o)
}

// MatchEach streams every freeze-time triple matching the pattern
// (rdf.Any wildcards) to f until f returns false. Matches are collected
// under the partition lock — holds are bounded by the matched subject's
// degree (or object's extent) plus the journal — and f runs outside it,
// so queries against the view never block writers for longer than a
// plain probe would. It is the View half of the query engine's Source
// interface.
func (v *View) MatchEach(pattern rdf.Triple, f func(rdf.Triple) bool) {
	if pattern.P != rdf.Any {
		v.matchPredicate(pattern.P, pattern.S, pattern.O, f)
		return
	}
	for _, p := range v.Predicates() {
		stop := false
		v.matchPredicate(p, pattern.S, pattern.O, func(t rdf.Triple) bool {
			if !f(t) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// matchPredicate streams the freeze-time matches within one predicate's
// partition.
func (v *View) matchPredicate(p, s, o rdf.ID, f func(rdf.Triple) bool) {
	switch {
	case s == rdf.Any && o == rdf.Any:
		v.ForEachWithPredicate(p, func(s, o rdf.ID) bool {
			return f(rdf.Triple{S: s, P: p, O: o})
		})
	case s != rdf.Any && o != rdf.Any:
		if v.Contains(rdf.T(s, p, o)) {
			f(rdf.Triple{S: s, P: p, O: o})
		}
	case o == rdf.Any: // s ground: one subject's objects, O(degree) hold
		v.matchSubject(p, s, f)
	default:
		v.matchObject(p, o, f)
	}
}

// matchSubject streams the frozen objects of one subject — the
// ObjectsAppend reconstruction, with f run outside the locks. The lock
// hold is bounded by the subject's degree, as for a live probe.
func (v *View) matchSubject(p, s rdf.ID, f func(rdf.Triple) bool) {
	for _, o := range v.ObjectsAppend(nil, p, s) {
		if !f(rdf.Triple{S: s, P: p, O: o}) {
			return
		}
	}
}

// ObjectsAppend appends the freeze-time objects o with (s, p, o) present
// to dst and returns the extended slice, in ascending ID order — the
// same sorted contract as the live probe, so galloping joins work
// identically against views. The frozen set is live pairs not journaled
// as post-freeze insertions, plus journaled post-freeze removals. The
// lock hold is bounded by the subject's degree, exactly as for a live
// probe — these pattern-indexed view probes are what lets rule joins
// (and the backward support checks of suspect-local retraction) run
// against a frozen view at live-probe cost.
func (v *View) ObjectsAppend(dst []rdf.ID, p, s rdf.ID) []rdf.ID {
	str := v.st.stripeFor(p)
	str.mu.RLock()
	part, ok := str.parts[p]
	str.mu.RUnlock()
	if !ok {
		return dst
	}
	part.mu.RLock()
	defer part.mu.RUnlock()
	if part.born >= v.epoch {
		return dst
	}
	js := part.journals[v.epoch].sub(s)
	start := len(dst)
	srcs := 0
	needSort := false
	if e := part.so[s]; e != nil && len(e.objs) > 0 {
		before := len(dst)
		for o := range e.objs {
			if present, journaled := js[o]; journaled && !present {
				continue // inserted after the freeze
			}
			dst = append(dst, o)
		}
		if len(dst) > before {
			srcs++
			needSort = true
		}
	}
	if len(part.runs) > 0 {
		ts := part.tomb[s]
		for _, r := range part.runs {
			ro := r.objectsOf(s)
			if len(ro) == 0 {
				continue
			}
			before := len(dst)
			for _, o := range ro {
				if _, dead := ts[o]; dead {
					continue
				}
				if present, journaled := js[o]; journaled && !present {
					continue
				}
				dst = append(dst, o)
			}
			if len(dst) > before {
				srcs++
			}
		}
	}
	for o, present := range js {
		if present {
			dst = append(dst, o) // removed after the freeze
			needSort = true
		}
	}
	if needSort || srcs > 1 {
		slices.Sort(dst[start:])
	}
	return dst
}

// Objects returns a copy of the freeze-time objects o with (s, p, o)
// present, in ascending ID order.
func (v *View) Objects(p, s rdf.ID) []rdf.ID {
	return v.ObjectsAppend(nil, p, s)
}

// SubjectsAppend appends the freeze-time subjects s with (s, p, o)
// present to dst and returns the extended slice, in ascending ID order.
// The lock hold is bounded by the object's live extent plus the view's
// journal for the partition.
func (v *View) SubjectsAppend(dst []rdf.ID, p, o rdf.ID) []rdf.ID {
	str := v.st.stripeFor(p)
	str.mu.RLock()
	part, ok := str.parts[p]
	str.mu.RUnlock()
	if !ok {
		return dst
	}
	part.mu.RLock()
	defer part.mu.RUnlock()
	if part.born >= v.epoch {
		return dst
	}
	j := part.journals[v.epoch]
	start := len(dst)
	srcs := 0
	needSort := false
	if subs := part.os[o]; len(subs) > 0 {
		before := len(dst)
		for s := range subs {
			if present, journaled := j.sub(s)[o]; journaled && !present {
				continue // inserted after the freeze
			}
			dst = append(dst, s)
		}
		if len(dst) > before {
			srcs++
			needSort = true
		}
	}
	for _, r := range part.runs {
		rs := r.subjectsOf(o)
		if len(rs) == 0 {
			continue
		}
		before := len(dst)
		for _, s := range rs {
			if part.tombN > 0 && part.tombHas(s, o) {
				continue
			}
			if present, journaled := j.sub(s)[o]; journaled && !present {
				continue
			}
			dst = append(dst, s)
		}
		if len(dst) > before {
			srcs++
		}
	}
	if j != nil {
		// Journaled post-freeze removals with this object: present at
		// freeze time but no longer live.
		for s, js := range j.m {
			if js[o] {
				dst = append(dst, s)
				needSort = true
			}
		}
	}
	if needSort || srcs > 1 {
		slices.Sort(dst[start:])
	}
	return dst
}

// Subjects returns a copy of the freeze-time subjects s with (s, p, o)
// present, in ascending ID order.
func (v *View) Subjects(p, o rdf.ID) []rdf.ID {
	return v.SubjectsAppend(nil, p, o)
}

// matchObject streams the frozen subjects of one (predicate, object) —
// potentially most of the store for a hub object like a popular type —
// by walking the partition's insertion-ordered subject list in
// viewChunk-bounded slices and probing each subject's freeze-time
// membership in O(1). Writers never wait behind more than one chunk, and
// an early-terminating consumer (a query LIMIT) stops the walk after its
// first chunks instead of paying for the whole extent. The walk's
// resumability argument is ForEachWithPredicate's: each subject's
// freeze-time membership is time-invariant and the list only appends.
func (v *View) matchObject(p, o rdf.ID, f func(rdf.Triple) bool) {
	str := v.st.stripeFor(p)
	str.mu.RLock()
	part, ok := str.parts[p]
	str.mu.RUnlock()
	if !ok {
		return
	}
	buf := pairBufs.Get().(*[]pair)
	defer putPairs(buf)
	// Chunks grow geometrically from a small start: an early-terminating
	// consumer (a query LIMIT over a hub object) pays a few tiny holds on
	// a partition writers are fighting for, while a full-extent scan
	// amortises to viewChunk-sized rounds.
	chunk := 256
	for i := 0; ; {
		part.mu.RLock()
		if part.born >= v.epoch {
			part.mu.RUnlock()
			return
		}
		out := (*buf)[:0]
		// Bound the scan, not the matches: a selective object must not
		// turn one chunk into an unbounded hold.
		for scanned := 0; i < len(part.subjects) && scanned < chunk; scanned++ {
			sub := part.subjects[i]
			i++
			if v.frozenContains(part, sub, o) {
				out = append(out, pair{s: sub, o: o})
			}
		}
		done := i >= len(part.subjects)
		part.mu.RUnlock()
		*buf = out
		for _, pr := range out {
			if !f(rdf.Triple{S: pr.s, P: p, O: pr.o}) {
				return
			}
		}
		if done {
			return
		}
		if chunk < viewChunk {
			chunk *= 4
		}
	}
}
