// Package store implements Slider's in-memory triple store.
//
// The store follows the vertical partitioning approach of Abadi et al.
// (PVLDB 2007) as adopted by the paper's §2.2: triples are indexed first
// by predicate, then by subject, then by object — and symmetrically by
// predicate, object, subject — which is the near-optimal layout for the
// access patterns of RDFS/OWL rule bodies (walk a predicate's extent, or
// probe by (predicate, subject) / (predicate, object)).
//
// Concurrency mirrors the paper: a single sync.RWMutex guards the store,
// giving parallel rule-module instances shared read access while triple
// additions take the write lock. The hash-map structure makes Add
// idempotent and lets it report whether a triple was new — the mechanism
// behind Slider's "duplicates limitation".
package store

import (
	"sort"
	"sync"

	"repro/internal/rdf"
)

// idSet is a set of term IDs.
type idSet map[rdf.ID]struct{}

// partition holds all triples sharing one predicate, indexed both
// subject→objects and object→subjects.
type partition struct {
	so map[rdf.ID]idSet // subject → set of objects
	os map[rdf.ID]idSet // object → set of subjects
	n  int
}

func newPartition() *partition {
	return &partition{so: make(map[rdf.ID]idSet), os: make(map[rdf.ID]idSet)}
}

// add inserts (s,o) and reports whether it was absent.
func (p *partition) add(s, o rdf.ID) bool {
	objs, ok := p.so[s]
	if !ok {
		objs = make(idSet, 2)
		p.so[s] = objs
	}
	if _, dup := objs[o]; dup {
		return false
	}
	objs[o] = struct{}{}
	subs, ok := p.os[o]
	if !ok {
		subs = make(idSet, 2)
		p.os[o] = subs
	}
	subs[s] = struct{}{}
	p.n++
	return true
}

func (p *partition) contains(s, o rdf.ID) bool {
	objs, ok := p.so[s]
	if !ok {
		return false
	}
	_, ok = objs[o]
	return ok
}

// Store is a concurrent, duplicate-free, vertically partitioned triple
// store. The zero value is not usable; call New.
type Store struct {
	mu    sync.RWMutex
	parts map[rdf.ID]*partition
	size  int
}

// New returns an empty store.
func New() *Store {
	return &Store{parts: make(map[rdf.ID]*partition, 64)}
}

// Add inserts a triple and reports whether it was new. Duplicate inserts
// are cheap no-ops.
func (st *Store) Add(t rdf.Triple) bool {
	st.mu.Lock()
	p, ok := st.parts[t.P]
	if !ok {
		p = newPartition()
		st.parts[t.P] = p
	}
	fresh := p.add(t.S, t.O)
	if fresh {
		st.size++
	}
	st.mu.Unlock()
	return fresh
}

// AddAll inserts all triples and returns those that were new, preserving
// input order.
func (st *Store) AddAll(ts []rdf.Triple) []rdf.Triple {
	var fresh []rdf.Triple
	st.mu.Lock()
	for _, t := range ts {
		p, ok := st.parts[t.P]
		if !ok {
			p = newPartition()
			st.parts[t.P] = p
		}
		if p.add(t.S, t.O) {
			st.size++
			fresh = append(fresh, t)
		}
	}
	st.mu.Unlock()
	return fresh
}

// Remove deletes a triple and reports whether it was present. Empty
// index entries are pruned so memory is reclaimed as partitions drain.
func (st *Store) Remove(t rdf.Triple) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	p, ok := st.parts[t.P]
	if !ok {
		return false
	}
	objs, ok := p.so[t.S]
	if !ok {
		return false
	}
	if _, ok = objs[t.O]; !ok {
		return false
	}
	delete(objs, t.O)
	if len(objs) == 0 {
		delete(p.so, t.S)
	}
	subs := p.os[t.O]
	delete(subs, t.S)
	if len(subs) == 0 {
		delete(p.os, t.O)
	}
	p.n--
	st.size--
	if p.n == 0 {
		delete(st.parts, t.P)
	}
	return true
}

// RemoveAll deletes all given triples, returning how many were present.
func (st *Store) RemoveAll(ts []rdf.Triple) int {
	n := 0
	for _, t := range ts {
		if st.Remove(t) {
			n++
		}
	}
	return n
}

// Contains reports whether the exact triple is present.
func (st *Store) Contains(t rdf.Triple) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	p, ok := st.parts[t.P]
	if !ok {
		return false
	}
	return p.contains(t.S, t.O)
}

// Len returns the number of distinct triples.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.size
}

// PredicateLen returns the number of triples with the given predicate.
func (st *Store) PredicateLen(p rdf.ID) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	part, ok := st.parts[p]
	if !ok {
		return 0
	}
	return part.n
}

// Predicates returns all predicates present, in ascending ID order.
func (st *Store) Predicates() []rdf.ID {
	st.mu.RLock()
	out := make([]rdf.ID, 0, len(st.parts))
	for p := range st.parts {
		out = append(out, p)
	}
	st.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Objects returns a copy of the objects o such that (s, p, o) is present.
func (st *Store) Objects(p, s rdf.ID) []rdf.ID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	part, ok := st.parts[p]
	if !ok {
		return nil
	}
	objs, ok := part.so[s]
	if !ok {
		return nil
	}
	out := make([]rdf.ID, 0, len(objs))
	for o := range objs {
		out = append(out, o)
	}
	return out
}

// Subjects returns a copy of the subjects s such that (s, p, o) is present.
func (st *Store) Subjects(p, o rdf.ID) []rdf.ID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	part, ok := st.parts[p]
	if !ok {
		return nil
	}
	subs, ok := part.os[o]
	if !ok {
		return nil
	}
	out := make([]rdf.ID, 0, len(subs))
	for s := range subs {
		out = append(out, s)
	}
	return out
}

// ForEachWithPredicate calls f for every (s, o) pair in the predicate's
// partition, under the read lock, until f returns false. f must not
// mutate the store (that would deadlock).
func (st *Store) ForEachWithPredicate(p rdf.ID, f func(s, o rdf.ID) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	part, ok := st.parts[p]
	if !ok {
		return
	}
	for s, objs := range part.so {
		for o := range objs {
			if !f(s, o) {
				return
			}
		}
	}
}

// ForEach calls f for every triple, under the read lock, until f returns
// false. f must not mutate the store.
func (st *Store) ForEach(f func(rdf.Triple) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for p, part := range st.parts {
		for s, objs := range part.so {
			for o := range objs {
				if !f(rdf.Triple{S: s, P: p, O: o}) {
					return
				}
			}
		}
	}
}

// Match returns all triples matching the pattern, where rdf.Any acts as a
// wildcard in any position. The result is a copy.
func (st *Store) Match(pattern rdf.Triple) []rdf.Triple {
	var out []rdf.Triple
	collect := func(p rdf.ID, part *partition) {
		switch {
		case pattern.S != rdf.Any && pattern.O != rdf.Any:
			if part.contains(pattern.S, pattern.O) {
				out = append(out, rdf.Triple{S: pattern.S, P: p, O: pattern.O})
			}
		case pattern.S != rdf.Any:
			for o := range part.so[pattern.S] {
				out = append(out, rdf.Triple{S: pattern.S, P: p, O: o})
			}
		case pattern.O != rdf.Any:
			for s := range part.os[pattern.O] {
				out = append(out, rdf.Triple{S: s, P: p, O: pattern.O})
			}
		default:
			for s, objs := range part.so {
				for o := range objs {
					out = append(out, rdf.Triple{S: s, P: p, O: o})
				}
			}
		}
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if pattern.P != rdf.Any {
		if part, ok := st.parts[pattern.P]; ok {
			collect(pattern.P, part)
		}
		return out
	}
	for p, part := range st.parts {
		collect(p, part)
	}
	return out
}

// Snapshot returns a copy of every triple in the store.
func (st *Store) Snapshot() []rdf.Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]rdf.Triple, 0, st.size)
	for p, part := range st.parts {
		for s, objs := range part.so {
			for o := range objs {
				out = append(out, rdf.Triple{S: s, P: p, O: o})
			}
		}
	}
	return out
}

// Clear removes all triples.
func (st *Store) Clear() {
	st.mu.Lock()
	st.parts = make(map[rdf.ID]*partition, 64)
	st.size = 0
	st.mu.Unlock()
}

// Stats summarises the store's shape.
type Stats struct {
	Triples    int
	Predicates int
	// MaxPartition is the size of the largest predicate partition.
	MaxPartition int
}

// Stats returns current statistics.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := Stats{Triples: st.size, Predicates: len(st.parts)}
	for _, part := range st.parts {
		if part.n > s.MaxPartition {
			s.MaxPartition = part.n
		}
	}
	return s
}
