//go:build slider_invariants

package store

import (
	"testing"

	"repro/internal/rdf"
)

// These tests only exist under the slider_invariants tag: they verify
// the assertions fire on corrupted state, i.e. that the invariant layer
// is not a silent no-op.

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", name)
		}
	}()
	f()
}

func TestInvariantsEnabled(t *testing.T) {
	if !invariantsEnabled {
		t.Fatal("slider_invariants build without invariantsEnabled=true")
	}
}

func TestCheckRunDetectsCorruption(t *testing.T) {
	// Object 5 has two subjects so the object direction has a span of
	// length 2 (the object-direction corruption below needs one).
	ps := []pair{{s: 1, o: 5}, {s: 1, o: 7}, {s: 2, o: 5}, {s: 3, o: 2}}
	checkRun(buildRun(ps)) // sanity: a well-formed run passes

	corrupt := func(name string, mutate func(r *run)) {
		r := buildRun(ps)
		mutate(r)
		mustPanic(t, name, func() { checkRun(r) })
	}
	corrupt("descending keys", func(r *run) { r.subs[0], r.subs[1] = r.subs[1], r.subs[0] })
	corrupt("descending span", func(r *run) { r.objs[0], r.objs[1] = r.objs[1], r.objs[0] })
	corrupt("offset drift", func(r *run) { r.subOff[1] = r.subOff[1] + 1 })
	corrupt("pair count drift", func(r *run) { r.pairs++ })
	corrupt("index drift", func(r *run) { r.subIdx[1] = 1 })
	// By (object, subject) the pairs sort (3,2),(1,5),(2,5),(1,7):
	// indices 1 and 2 are object 5's span.
	corrupt("object direction", func(r *run) { r.subsByObj[1], r.subsByObj[2] = r.subsByObj[2], r.subsByObj[1] })
}

func TestAccountingDetectsDrift(t *testing.T) {
	p := newPartition(0)
	p.add(1, 2)
	p.add(1, 3)
	p.assertAccounting() // sanity

	p.n++ // simulate a lost update
	mustPanic(t, "accounting drift", func() { p.assertAccounting() })
}

func TestLivenessAssertions(t *testing.T) {
	p := newPartition(0)
	p.add(1, 2)
	p.assertLive(1, 2)
	mustPanic(t, "dead pair asserted live", func() { p.assertLive(1, 99) })

	p.remove(1, 2)
	p.assertDead(1, 2)
	p.add(1, 2)
	mustPanic(t, "live pair asserted dead", func() { p.assertDead(1, 2) })
}

func TestTombstoneResurrectExclusivity(t *testing.T) {
	// Flush an overlay pair into a run, tombstone it, then resurrect it:
	// the add/remove hooks assert the one-physical-home invariant at
	// every step, so reaching the end without a panic is the test.
	st := New()
	tr := rdf.Triple{S: 1, P: 2, O: 3}
	st.Add(tr)
	st.FlushOverlays()
	if !st.Remove(tr) {
		t.Fatal("remove after flush failed")
	}
	if st.Add(tr) != true {
		t.Fatal("resurrect failed")
	}
	if !st.Contains(tr) {
		t.Fatal("resurrected triple missing")
	}
}
