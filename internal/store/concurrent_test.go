package store

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/rdf"
)

func TestAddBatchSemantics(t *testing.T) {
	st := New()
	st.Add(tr(1, 2, 3))
	fresh := st.AddBatch([]rdf.Triple{
		tr(1, 2, 3),   // duplicate of stored
		tr(4, 2, 5),   // fresh
		tr(4, 2, 5),   // duplicate within batch
		tr(6, 7, 8),   // fresh, second predicate
		tr(9, 10, 11), // fresh, third predicate
	})
	want := []rdf.Triple{tr(4, 2, 5), tr(6, 7, 8), tr(9, 10, 11)}
	if len(fresh) != len(want) {
		t.Fatalf("fresh = %v, want %v", fresh, want)
	}
	for i := range want {
		if fresh[i] != want[i] {
			t.Fatalf("fresh[%d] = %v, want %v (input order must be preserved)", i, fresh[i], want[i])
		}
	}
	if st.Len() != 4 {
		t.Fatalf("Len = %d, want 4", st.Len())
	}
}

func TestAddBatchEmptyAndSingle(t *testing.T) {
	st := New()
	if fresh := st.AddBatch(nil); fresh != nil {
		t.Fatalf("AddBatch(nil) = %v, want nil", fresh)
	}
	if fresh := st.AddBatch([]rdf.Triple{tr(1, 2, 3)}); len(fresh) != 1 || fresh[0] != tr(1, 2, 3) {
		t.Fatalf("AddBatch(single) = %v", fresh)
	}
	if fresh := st.AddBatch([]rdf.Triple{tr(1, 2, 3)}); fresh != nil {
		t.Fatalf("AddBatch(duplicate single) = %v, want nil", fresh)
	}
}

func TestContainsBatch(t *testing.T) {
	st := New()
	st.AddBatch([]rdf.Triple{tr(1, 2, 3), tr(4, 5, 6)})
	got := st.ContainsBatch([]rdf.Triple{tr(1, 2, 3), tr(9, 9, 9), tr(4, 5, 6), tr(1, 2, 4)})
	want := []bool{true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ContainsBatch[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if st.ContainsBatch(nil) != nil {
		t.Fatal("ContainsBatch(nil) != nil")
	}
}

func TestAppendReaders(t *testing.T) {
	st := New()
	st.Add(tr(1, 9, 10))
	st.Add(tr(1, 9, 11))
	st.Add(tr(2, 9, 10))

	buf := make([]rdf.ID, 0, 8)
	buf = st.ObjectsAppend(buf, 9, 1)
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	if len(buf) != 2 || buf[0] != 10 || buf[1] != 11 {
		t.Fatalf("ObjectsAppend = %v, want [10 11]", buf)
	}
	// Reuse: appending into the same buffer extends it.
	buf = st.SubjectsAppend(buf, 9, 10)
	if len(buf) != 4 {
		t.Fatalf("SubjectsAppend reuse len = %d, want 4", len(buf))
	}
	subs := append([]rdf.ID(nil), buf[2:]...)
	sort.Slice(subs, func(i, j int) bool { return subs[i] < subs[j] })
	if subs[0] != 1 || subs[1] != 2 {
		t.Fatalf("SubjectsAppend = %v, want [1 2]", subs)
	}
	// Missing predicate/subject leaves dst untouched.
	if got := st.ObjectsAppend(nil, 99, 1); got != nil {
		t.Fatalf("ObjectsAppend missing predicate = %v, want nil", got)
	}
}

// TestConcurrentShardedStoreStress hammers the sharded store from many
// goroutines mixing Add, AddBatch, Remove, Contains, ContainsBatch,
// Match, Objects/Subjects and full iteration. Run with -race; the test
// asserts only invariants that hold under any interleaving.
func TestConcurrentShardedStoreStress(t *testing.T) {
	st := New()
	const (
		goroutines = 8
		rounds     = 300
		preds      = 17 // spread across stripes, with collisions
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				p := rdf.ID(rng.Intn(preds) + 1)
				s := rdf.ID(rng.Intn(50) + 1)
				o := rdf.ID(rng.Intn(50) + 1)
				switch rng.Intn(8) {
				case 0:
					st.Add(rdf.T(s, p, o))
				case 1:
					batch := make([]rdf.Triple, 0, 8)
					for j := 0; j < 8; j++ {
						batch = append(batch, rdf.T(rdf.ID(rng.Intn(50)+1), rdf.ID(rng.Intn(preds)+1), rdf.ID(rng.Intn(50)+1)))
					}
					st.AddBatch(batch)
				case 2:
					st.Remove(rdf.T(s, p, o))
				case 3:
					st.Contains(rdf.T(s, p, o))
					st.ContainsBatch([]rdf.Triple{rdf.T(s, p, o), rdf.T(o, p, s)})
				case 4:
					st.Match(rdf.T(rdf.Any, p, rdf.Any))
					st.Match(rdf.T(s, rdf.Any, rdf.Any))
				case 5:
					st.ObjectsAppend(nil, p, s)
					st.SubjectsAppend(nil, p, o)
					st.PredicateLen(p)
				case 6:
					// Iteration callbacks may re-enter the store — the
					// copy-then-call protocol makes this deadlock-free.
					st.ForEachWithPredicate(p, func(s2, o2 rdf.ID) bool {
						st.Contains(rdf.T(s2, p, o2))
						return true
					})
				case 7:
					st.Len()
					st.Stats()
					st.Predicates()
				}
			}
		}(int64(g))
	}
	wg.Wait()

	// Invariants after quiescence: size counter matches iteration, and
	// both index directions agree.
	n := 0
	st.ForEach(func(tr rdf.Triple) bool {
		n++
		if !st.Contains(tr) {
			t.Errorf("ForEach yielded %v but Contains is false", tr)
			return false
		}
		return true
	})
	if n != st.Len() {
		t.Fatalf("ForEach visited %d triples, Len() = %d", n, st.Len())
	}
	if got := len(st.Snapshot()); got != n {
		t.Fatalf("Snapshot has %d triples, ForEach visited %d", got, n)
	}
	for _, p := range st.Predicates() {
		so, os := 0, 0
		st.ForEachWithPredicate(p, func(s, o rdf.ID) bool { so++; return true })
		for _, tr := range st.Match(rdf.T(rdf.Any, p, rdf.Any)) {
			found := false
			for _, s := range st.Subjects(p, tr.O) {
				if s == tr.S {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("os index missing subject %d for %v", tr.S, tr)
			}
			os++
		}
		if so != os || so != st.PredicateLen(p) {
			t.Fatalf("predicate %d: so=%d os=%d PredicateLen=%d", p, so, os, st.PredicateLen(p))
		}
	}
}

// TestConcurrentAddBatchDisjoint checks that parallel batch ingestion of
// disjoint slices lands exactly once each, with no lost or phantom
// updates across stripe boundaries.
func TestConcurrentAddBatchDisjoint(t *testing.T) {
	st := New()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]rdf.Triple, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				// Unique triple per (worker, i); predicates deliberately
				// shared across workers to contend on partitions.
				batch = append(batch, rdf.T(rdf.ID(w*perWorker+i+1), rdf.ID(i%13+1), rdf.ID(w+1)))
			}
			if fresh := st.AddBatch(batch); len(fresh) != perWorker {
				t.Errorf("worker %d: fresh = %d, want %d", w, len(fresh), perWorker)
			}
		}(w)
	}
	wg.Wait()
	if st.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", st.Len(), workers*perWorker)
	}
}

// TestStripeDistribution is a sanity check that consecutive predicate IDs
// do not all land in one stripe (the Fibonacci spread works).
func TestStripeDistribution(t *testing.T) {
	st := New()
	seen := map[*stripe]int{}
	for p := 1; p <= 64; p++ {
		seen[st.stripeFor(rdf.ID(p))]++
	}
	if len(seen) < 16 {
		t.Fatalf("64 consecutive predicates landed in only %d stripes", len(seen))
	}
	for s, n := range seen {
		if n > 16 {
			t.Fatalf("stripe %p got %d of 64 predicates", s, n)
		}
	}
}

func BenchmarkAddBatchParallel(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			const batchLen = 256
			st := New()
			b.SetParallelism(workers)
			var ctr int64
			var mu sync.Mutex
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					mu.Lock()
					base := ctr
					ctr += batchLen
					mu.Unlock()
					batch := make([]rdf.Triple, batchLen)
					for i := range batch {
						n := base + int64(i)
						batch[i] = rdf.T(rdf.ID(n%100_000+1), rdf.ID(n%31+1), rdf.ID(n%10_000+1))
					}
					st.AddBatch(batch)
				}
			})
		})
	}
}
