package store

import (
	"cmp"
	"slices"

	"repro/internal/rdf"
)

// run is an immutable, sorted segment of one partition's pairs — the
// LSM-style counterpart to the partition's mutable map overlay. A run is
// never modified after buildRun returns; partitions replace their run
// slices wholesale under the partition lock, so a reader that captured
// the slice header may keep reading it without any lock.
//
// The layout is a compressed-sparse-row index in both directions:
// subject→objects for (p, s, ?) probes and object→subjects for
// (p, ?, o) probes. Each direction pays one O(1) map probe to find the
// span and then yields a contiguous ascending slice — the shape the
// galloping join intersection and the verbatim checkpoint stream want.
type run struct {
	pairs int

	// Subject direction: subs holds the distinct subjects in ascending
	// order; objs holds the objects grouped by subject (ascending within
	// each group); subOff[i] is the objs offset of subs[i]'s span, with
	// a final sentinel entry, so spans are subOff[i]:subOff[i+1]. subIdx
	// maps subject → subs index for O(1) probes.
	subs   []rdf.ID
	subOff []int32
	objs   []rdf.ID
	subIdx map[rdf.ID]int32

	// Object direction: the mirror image, sorted by (object, subject).
	objsD     []rdf.ID
	objOff    []int32
	subsByObj []rdf.ID
	objIdx    map[rdf.ID]int32
}

func comparePairs(a, b pair) int {
	if c := cmp.Compare(a.s, b.s); c != 0 {
		return c
	}
	return cmp.Compare(a.o, b.o)
}

func sortPairs(ps []pair) { slices.SortFunc(ps, comparePairs) }

// buildRun assembles a run from pairs sorted by (subject, object) with no
// duplicates. The object-direction index re-sorts a copy by (object,
// subject); total cost O(n log n) with small constants, always paid off
// the partition lock by the compactor.
func buildRun(ps []pair) *run {
	r := &run{pairs: len(ps)}
	r.objs = make([]rdf.ID, len(ps))
	for i, pr := range ps {
		if i == 0 || pr.s != ps[i-1].s {
			r.subs = append(r.subs, pr.s)
			r.subOff = append(r.subOff, int32(i))
		}
		r.objs[i] = pr.o
	}
	r.subOff = append(r.subOff, int32(len(ps)))
	r.subIdx = make(map[rdf.ID]int32, len(r.subs))
	for i, s := range r.subs {
		r.subIdx[s] = int32(i)
	}

	bo := make([]pair, len(ps))
	copy(bo, ps)
	slices.SortFunc(bo, func(a, b pair) int {
		if c := cmp.Compare(a.o, b.o); c != 0 {
			return c
		}
		return cmp.Compare(a.s, b.s)
	})
	r.subsByObj = make([]rdf.ID, len(bo))
	for i, pr := range bo {
		if i == 0 || pr.o != bo[i-1].o {
			r.objsD = append(r.objsD, pr.o)
			r.objOff = append(r.objOff, int32(i))
		}
		r.subsByObj[i] = pr.s
	}
	r.objOff = append(r.objOff, int32(len(bo)))
	r.objIdx = make(map[rdf.ID]int32, len(r.objsD))
	for i, o := range r.objsD {
		r.objIdx[o] = int32(i)
	}
	if invariantsEnabled {
		checkRun(r)
	}
	return r
}

// buildRunFromOverlay assembles a run straight from a partition's
// overlay maps: so and os already are the two CSR directions keyed the
// right way, so the cost is one key sort plus per-span sorts per
// direction — much cheaper than materialising and comparison-sorting n
// pairs twice, and this runs under the partition write lock.
func buildRunFromOverlay(so map[rdf.ID]*sEntry, subs []rdf.ID, os map[rdf.ID]idSet, n int) *run {
	r := &run{pairs: n}

	// Subject direction: subs is the caller's sorted list of overlay
	// subjects (the dirty list, filtered). Copied — the caller reuses
	// that buffer, and the run must stay immutable.
	r.subs = slices.Clone(subs)
	r.subOff = make([]int32, 0, len(subs)+1)
	r.objs = make([]rdf.ID, 0, n)
	r.subIdx = make(map[rdf.ID]int32, len(subs))
	for i, s := range subs {
		r.subIdx[s] = int32(i)
		r.subOff = append(r.subOff, int32(len(r.objs)))
		start := len(r.objs)
		for o := range so[s].objs {
			r.objs = append(r.objs, o)
		}
		slices.Sort(r.objs[start:])
	}
	r.subOff = append(r.subOff, int32(len(r.objs)))

	// Object direction: os holds overlay pairs only, so it maps over
	// directly.
	r.objsD, r.objOff, r.subsByObj, r.objIdx = csrFromMap(os, n)
	if invariantsEnabled {
		checkRun(r)
	}
	return r
}

// csrFromMap lays one overlay direction out as a sorted CSR index.
func csrFromMap(m map[rdf.ID]idSet, n int) (keys []rdf.ID, off []int32, vals []rdf.ID, idx map[rdf.ID]int32) {
	keys = make([]rdf.ID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	off = make([]int32, 0, len(keys)+1)
	vals = make([]rdf.ID, 0, n)
	idx = make(map[rdf.ID]int32, len(keys))
	for i, k := range keys {
		idx[k] = int32(i)
		off = append(off, int32(len(vals)))
		start := len(vals)
		for v := range m[k] {
			vals = append(vals, v)
		}
		slices.Sort(vals[start:])
	}
	off = append(off, int32(len(vals)))
	return keys, off, vals, idx
}

// objectsOf returns the run's objects of subject s, ascending (nil when
// the subject is absent). The slice aliases the run; callers must not
// mutate it.
func (r *run) objectsOf(s rdf.ID) []rdf.ID {
	i, ok := r.subIdx[s]
	if !ok {
		return nil
	}
	return r.objs[r.subOff[i]:r.subOff[i+1]]
}

// subjectsOf returns the run's subjects of object o, ascending (nil when
// the object is absent). The slice aliases the run; callers must not
// mutate it.
func (r *run) subjectsOf(o rdf.ID) []rdf.ID {
	i, ok := r.objIdx[o]
	if !ok {
		return nil
	}
	return r.subsByObj[r.objOff[i]:r.objOff[i+1]]
}

// contains reports pair membership: an O(1) subject probe plus a binary
// search of the subject's object span.
func (r *run) contains(s, o rdf.ID) bool {
	_, found := slices.BinarySearch(r.objectsOf(s), o)
	return found
}

// forEach streams every pair in (subject, object) order until f returns
// false, reporting whether it ran to completion.
func (r *run) forEach(f func(s, o rdf.ID) bool) bool {
	for i, s := range r.subs {
		for _, o := range r.objs[r.subOff[i]:r.subOff[i+1]] {
			if !f(s, o) {
				return false
			}
		}
	}
	return true
}

// mergeRuns unions runs into one. The inputs are pairwise disjoint (the
// partition invariant: a pair lives in at most one run or the overlay)
// and each is already sorted in both directions, so the union is two
// linear k-way span merges — no comparison sort, no pair
// materialisation. Tombstones are deliberately not applied here —
// merges must preserve pair membership exactly so they can run off the
// partition lock while concurrent adds resurrect and removes tombstone
// pairs.
func mergeRuns(rs []*run) *run {
	total := 0
	for _, r := range rs {
		total += r.pairs
	}
	out := &run{pairs: total}
	out.subs, out.subOff, out.objs, out.subIdx = mergeDirection(rs, total, false)
	out.objsD, out.objOff, out.subsByObj, out.objIdx = mergeDirection(rs, total, true)
	if invariantsEnabled {
		checkRun(out)
	}
	return out
}

// mergeDirection k-way merges one CSR direction of the runs: the keyed
// spans stream in ascending key order within every run, so the merged
// index is built by repeatedly taking the minimum head key and fusing
// the (value-disjoint, sorted) spans of the runs that share it.
func mergeDirection(rs []*run, total int, byObject bool) (keys []rdf.ID, off []int32, vals []rdf.ID, idx map[rdf.ID]int32) {
	type cursor struct {
		keys []rdf.ID
		off  []int32
		vals []rdf.ID
		i    int
	}
	cur := make([]cursor, 0, len(rs))
	maxKeys := 0
	for _, r := range rs {
		c := cursor{keys: r.subs, off: r.subOff, vals: r.objs}
		if byObject {
			c = cursor{keys: r.objsD, off: r.objOff, vals: r.subsByObj}
		}
		if len(c.keys) > 0 {
			maxKeys += len(c.keys)
			cur = append(cur, c)
		}
	}
	// maxKeys double-counts keys shared between runs — an upper bound,
	// paid once, so the append loops below never reallocate.
	keys = make([]rdf.ID, 0, maxKeys)
	off = make([]int32, 0, maxKeys+1)
	vals = make([]rdf.ID, 0, total)
	spans := make([][]rdf.ID, 0, len(cur))
	var scratch, scratch2 []rdf.ID // reused across ≥3-way key collisions
	for len(cur) > 0 {
		minK := cur[0].keys[cur[0].i]
		for _, c := range cur[1:] {
			if k := c.keys[c.i]; k < minK {
				minK = k
			}
		}
		keys = append(keys, minK)
		off = append(off, int32(len(vals)))
		spans = spans[:0]
		for ci := 0; ci < len(cur); ci++ {
			c := &cur[ci]
			if c.keys[c.i] != minK {
				continue
			}
			spans = append(spans, c.vals[c.off[c.i]:c.off[c.i+1]])
			c.i++
			if c.i == len(c.keys) {
				cur = append(cur[:ci], cur[ci+1:]...)
				ci--
			}
		}
		switch len(spans) {
		case 1:
			vals = append(vals, spans[0]...)
		case 2:
			vals = appendMergedSorted(vals, spans[0], spans[1])
		default:
			scratch = appendMergedSorted(scratch[:0], spans[0], spans[1])
			for _, sp := range spans[2:] {
				scratch2 = appendMergedSorted(scratch2[:0], scratch, sp)
				scratch, scratch2 = scratch2, scratch
			}
			vals = append(vals, scratch...)
		}
	}
	off = append(off, int32(len(vals)))
	idx = make(map[rdf.ID]int32, len(keys))
	for i, k := range keys {
		idx[k] = int32(i)
	}
	return keys, off, vals, idx
}

// appendMergedSorted appends the two-way merge of sorted, disjoint a and
// b to dst.
func appendMergedSorted(dst, a, b []rdf.ID) []rdf.ID {
	for len(a) > 0 && len(b) > 0 {
		if a[0] < b[0] {
			dst = append(dst, a[0])
			a = a[1:]
		} else {
			dst = append(dst, b[0])
			b = b[1:]
		}
	}
	dst = append(dst, a...)
	return append(dst, b...)
}
