package store

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/rdf"
)

// viewTriples collects a view's contents via ForEach.
func viewTriples(v *View) []rdf.Triple {
	var out []rdf.Triple
	v.ForEach(func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

func sortTriples(ts []rdf.Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.P != b.P {
			return a.P < b.P
		}
		if a.S != b.S {
			return a.S < b.S
		}
		return a.O < b.O
	})
}

func sameTriples(t *testing.T, got, want []rdf.Triple, msg string) {
	t.Helper()
	sortTriples(got)
	sortTriples(want)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d triples %v, want %d %v", msg, len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: triple %d = %v, want %v", msg, i, got[i], want[i])
		}
	}
}

func TestViewIsStableUnderMutation(t *testing.T) {
	st := New()
	frozen := []rdf.Triple{tr(1, 2, 3), tr(4, 2, 5), tr(6, 7, 8), tr(9, 10, 11)}
	for _, x := range frozen {
		st.Add(x)
	}
	v := st.Freeze()
	defer v.Release()

	if v.Len() != len(frozen) {
		t.Fatalf("view Len = %d, want %d", v.Len(), len(frozen))
	}
	sameTriples(t, viewTriples(v), frozen, "freshly frozen view")

	// Mutate every which way: new triple in an existing partition, a new
	// partition, removal of a frozen triple, removal of a post-freeze
	// triple, re-add of a removed frozen triple, drain a partition.
	st.Add(tr(12, 2, 13))    // new pair, existing partition
	st.Add(tr(14, 15, 16))   // new partition born after the freeze
	st.Remove(tr(1, 2, 3))   // frozen pair removed
	st.Add(tr(17, 2, 18))    // another post-freeze pair...
	st.Remove(tr(17, 2, 18)) // ...removed again (net zero)
	st.Remove(tr(6, 7, 8))   // drains predicate 7 entirely
	st.Add(tr(1, 2, 3))      // removed frozen pair comes back (net zero)
	st.Remove(tr(9, 10, 11)) // frozen pair removed, stays gone

	sameTriples(t, viewTriples(v), frozen, "view after heavy mutation")
	if v.Len() != len(frozen) {
		t.Fatalf("view Len after mutation = %d, want %d", v.Len(), len(frozen))
	}

	// Per-predicate accessors agree with the frozen state.
	if n := v.PredicateLen(2); n != 2 {
		t.Fatalf("PredicateLen(2) = %d, want 2", n)
	}
	if n := v.PredicateLen(7); n != 1 {
		t.Fatalf("PredicateLen(7) = %d, want 1 (drained after freeze)", n)
	}
	if n := v.PredicateLen(15); n != 0 {
		t.Fatalf("PredicateLen(15) = %d, want 0 (born after freeze)", n)
	}
	preds := v.Predicates()
	wantPreds := []rdf.ID{2, 7, 10}
	if len(preds) != len(wantPreds) {
		t.Fatalf("Predicates = %v, want %v", preds, wantPreds)
	}
	for i := range wantPreds {
		if preds[i] != wantPreds[i] {
			t.Fatalf("Predicates = %v, want %v", preds, wantPreds)
		}
	}

	// The live store meanwhile reflects the mutations.
	if st.Contains(tr(9, 10, 11)) {
		t.Fatal("removed triple still in live store")
	}
	if !st.Contains(tr(12, 2, 13)) {
		t.Fatal("post-freeze triple missing from live store")
	}
}

func TestViewReleaseRestoresNormalOperation(t *testing.T) {
	st := New()
	st.Add(tr(1, 2, 3))
	st.Add(tr(4, 5, 6))
	v := st.Freeze()
	st.Remove(tr(4, 5, 6)) // drains predicate 5; pruning deferred
	v.Release()
	v.Release() // idempotent

	// The drained partition was swept at Release.
	if got := st.Predicates(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Predicates after Release = %v, want [2]", got)
	}

	// A second freeze starts clean: the old journal must not leak in.
	st.Add(tr(7, 2, 8))
	v2 := st.Freeze()
	defer v2.Release()
	sameTriples(t, viewTriples(v2), []rdf.Triple{tr(1, 2, 3), tr(7, 2, 8)}, "second view")
}

func TestViewEmptyStore(t *testing.T) {
	st := New()
	v := st.Freeze()
	defer v.Release()
	if v.Len() != 0 || len(v.Predicates()) != 0 || len(viewTriples(v)) != 0 {
		t.Fatalf("view of empty store not empty: len=%d preds=%v", v.Len(), v.Predicates())
	}
	st.Add(tr(1, 2, 3))
	if len(viewTriples(v)) != 0 {
		t.Fatal("post-freeze add leaked into the view of an empty store")
	}
}

// TestViewConcurrentMutation hammers the store with concurrent adders
// and removers while a view is repeatedly drained, checking under -race
// that (a) iteration is safe and (b) the view's contents never change.
func TestViewConcurrentMutation(t *testing.T) {
	st := New()
	var frozen []rdf.Triple
	for i := 0; i < 2000; i++ {
		x := tr(uint64(i%97), uint64(i%5), uint64(i))
		if st.Add(x) {
			frozen = append(frozen, x)
		}
	}
	v := st.Freeze()
	defer v.Release()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				x := tr(uint64(rng.Intn(200)), uint64(rng.Intn(8)), uint64(rng.Intn(4000)))
				if rng.Intn(3) == 0 {
					st.Remove(x)
				} else {
					st.Add(x)
				}
			}
		}(int64(w))
	}
	for i := 0; i < 20; i++ {
		sameTriples(t, viewTriples(v), frozen, "view under concurrent mutation")
	}
	close(stop)
	wg.Wait()
	sameTriples(t, viewTriples(v), frozen, "view after mutators stopped")
}

// TestConcurrentViews pins the multi-view contract the serving layer
// relies on: several views frozen at different times coexist, each
// answering with its own freeze-time contents, and releasing one leaves
// the others intact.
func TestConcurrentViews(t *testing.T) {
	st := New()
	st.Add(tr(1, 2, 3))
	v1 := st.Freeze()
	st.Add(tr(4, 2, 5))
	v2 := st.Freeze()
	st.Remove(tr(1, 2, 3))
	st.Add(tr(6, 7, 8)) // new partition: invisible to both views
	v3 := st.Freeze()

	sameTriples(t, viewTriples(v1), []rdf.Triple{tr(1, 2, 3)}, "v1")
	sameTriples(t, viewTriples(v2), []rdf.Triple{tr(1, 2, 3), tr(4, 2, 5)}, "v2")
	sameTriples(t, viewTriples(v3), []rdf.Triple{tr(4, 2, 5), tr(6, 7, 8)}, "v3")

	// Releasing the middle view must not disturb the outer two.
	v2.Release()
	st.Add(tr(9, 2, 10))
	sameTriples(t, viewTriples(v1), []rdf.Triple{tr(1, 2, 3)}, "v1 after v2 release")
	sameTriples(t, viewTriples(v3), []rdf.Triple{tr(4, 2, 5), tr(6, 7, 8)}, "v3 after v2 release")
	if !v3.Contains(tr(4, 2, 5)) || v3.Contains(tr(1, 2, 3)) || v3.Contains(tr(9, 2, 10)) {
		t.Fatal("v3.Contains disagrees with freeze-time state")
	}
	v1.Release()
	v3.Release()

	// With every view gone the store returns to normal operation:
	// drained partitions prune and live data is intact.
	want := []rdf.Triple{tr(4, 2, 5), tr(6, 7, 8), tr(9, 2, 10)}
	sameTriples(t, st.Snapshot(), want, "live store after all releases")
	if st.active.Load() != nil {
		t.Fatal("active epoch set not cleared after final release")
	}
}

// TestViewMatchEach checks frozen pattern matching in every ground/wild
// combination against a mutated-away store state.
func TestViewMatchEach(t *testing.T) {
	st := New()
	frozen := []rdf.Triple{tr(1, 2, 3), tr(1, 2, 4), tr(5, 2, 3), tr(6, 7, 3)}
	for _, x := range frozen {
		st.Add(x)
	}
	v := st.Freeze()
	defer v.Release()
	st.Add(tr(1, 2, 9))    // post-freeze object of subject 1
	st.Remove(tr(5, 2, 3)) // frozen pair removed
	st.Add(tr(8, 2, 3))    // post-freeze subject of object 3
	st.Remove(tr(6, 7, 3)) // drains predicate 7

	collect := func(pat rdf.Triple) []rdf.Triple {
		var out []rdf.Triple
		v.MatchEach(pat, func(t rdf.Triple) bool { out = append(out, t); return true })
		return out
	}
	sameTriples(t, collect(rdf.T(rdf.Any, rdf.Any, rdf.Any)), frozen, "full wildcard")
	sameTriples(t, collect(rdf.T(1, 2, rdf.Any)), []rdf.Triple{tr(1, 2, 3), tr(1, 2, 4)}, "ground s")
	sameTriples(t, collect(rdf.T(rdf.Any, 2, 3)), []rdf.Triple{tr(1, 2, 3), tr(5, 2, 3)}, "ground o")
	sameTriples(t, collect(rdf.T(5, 2, 3)), []rdf.Triple{tr(5, 2, 3)}, "fully ground, removed after freeze")
	sameTriples(t, collect(rdf.T(rdf.Any, 7, rdf.Any)), []rdf.Triple{tr(6, 7, 3)}, "drained predicate")
	if got := collect(rdf.T(1, 2, 9)); got != nil {
		t.Fatalf("post-freeze pair matched: %v", got)
	}
	if got := collect(rdf.T(8, 2, rdf.Any)); got != nil {
		t.Fatalf("post-freeze subject matched: %v", got)
	}
}

// TestReleaseCompactsDrainedSubjects pins the retract-churn memory fix:
// subjects whose triples were all removed leave empty so entries (the
// subject list relies on so-membership), and Release compacts both once
// drained subjects dominate a partition.
func TestReleaseCompactsDrainedSubjects(t *testing.T) {
	st := New()
	for i := 0; i < 100; i++ {
		st.Add(tr(uint64(i), 7, 1))
	}
	// Drain most subjects while frozen: compaction is deferred to
	// Release (the view still needs the entries), then runs there.
	v := st.Freeze()
	for i := 0; i < 90; i++ {
		st.Remove(tr(uint64(i), 7, 1))
	}
	v.Release()
	s := st.stripeFor(7)
	s.mu.RLock()
	p := s.parts[7]
	s.mu.RUnlock()
	p.mu.RLock()
	subjects, soLen, drained := len(p.subjects), len(p.so), p.drained
	p.mu.RUnlock()
	if subjects != 10 || soLen != 10 || drained != 0 {
		t.Fatalf("after Release compaction: %d subjects, %d so entries, drained=%d; want 10, 10, 0", subjects, soLen, drained)
	}
	// The survivors are intact and a drained subject can come back.
	if !st.Contains(tr(95, 7, 1)) {
		t.Fatal("survivor lost in compaction")
	}
	if !st.Add(tr(5, 7, 2)) {
		t.Fatal("re-adding a compacted subject failed")
	}
	if got := st.PredicateLen(7); got != 11 {
		t.Fatalf("PredicateLen = %d, want 11", got)
	}
}

// TestRemoveCompactsWithoutViews pins the non-durable retraction
// workload: a store that is never frozen must still bound drained
// subject entries — Remove compacts once they dominate the partition.
func TestRemoveCompactsWithoutViews(t *testing.T) {
	st := New()
	for i := 0; i < 1000; i++ {
		st.Add(tr(uint64(i), 7, 1))
	}
	for i := 0; i < 990; i++ {
		st.Remove(tr(uint64(i), 7, 1))
	}
	s := st.stripeFor(7)
	s.mu.RLock()
	p := s.parts[7]
	s.mu.RUnlock()
	p.mu.RLock()
	subjects, soLen := len(p.subjects), len(p.so)
	p.mu.RUnlock()
	// The amortised threshold keeps drained entries under half the
	// list, so churn cannot retain more than ~2x the live subjects.
	if subjects > 25 || soLen > 25 {
		t.Fatalf("drained subjects not compacted: %d subjects, %d so entries for 10 live", subjects, soLen)
	}
	if st.PredicateLen(7) != 10 {
		t.Fatalf("PredicateLen = %d, want 10", st.PredicateLen(7))
	}
}
