//go:build slider_invariants

package store

import (
	"fmt"

	"repro/internal/rdf"
)

// invariantsEnabled gates the runtime invariant assertions. This file
// (the checking implementation) is compiled only under the
// slider_invariants build tag; invariants_off.go supplies the no-op
// twins for normal builds, where the constant false lets the compiler
// delete every call site. Run them with:
//
//	go test -race -tags slider_invariants ./internal/store ./internal/maintenance
const invariantsEnabled = true

// assertAccounting checks the partition's O(1) physical-pair identity:
// every live pair has exactly one physical home, so the live count n
// must equal physical run pairs minus tombstoned ones plus overlay
// pairs (rp - tombN + onum == n). Callers hold the partition lock.
func (p *partition) assertAccounting() {
	if p.rp-p.tombN+p.onum != p.n {
		panic(fmt.Sprintf("store invariant: pair accounting broken: rp=%d - tombN=%d + onum=%d != n=%d",
			p.rp, p.tombN, p.onum, p.n))
	}
	if p.tombN < 0 || p.onum < 0 || p.n < 0 || p.rp < 0 {
		panic(fmt.Sprintf("store invariant: negative count: rp=%d tombN=%d onum=%d n=%d",
			p.rp, p.tombN, p.onum, p.n))
	}
}

// assertLive checks the one-physical-home invariant for a pair that
// must be live: it is in the overlay XOR (in a run and not tombstoned).
// Callers hold the partition lock.
func (p *partition) assertLive(s, o rdf.ID) {
	overlay := false
	if e := p.so[s]; e != nil {
		_, overlay = e.objs[o]
	}
	inRuns := p.runsContain(s, o)
	tombed := p.tombHas(s, o)
	if overlay && inRuns && !tombed {
		panic(fmt.Sprintf("store invariant: pair (%d,%d) live in both overlay and a run", s, o))
	}
	if overlay && tombed {
		panic(fmt.Sprintf("store invariant: pair (%d,%d) in overlay yet tombstoned", s, o))
	}
	if !overlay && !(inRuns && !tombed) {
		panic(fmt.Sprintf("store invariant: pair (%d,%d) expected live but has no physical home (overlay=%v runs=%v tomb=%v)",
			s, o, overlay, inRuns, tombed))
	}
	if tombed && !inRuns {
		panic(fmt.Sprintf("store invariant: pair (%d,%d) tombstoned but in no run", s, o))
	}
}

// assertDead checks that a pair just removed (or never present) is
// dead: not in the overlay, and any run copy is tombstoned. Callers
// hold the partition lock.
func (p *partition) assertDead(s, o rdf.ID) {
	if e := p.so[s]; e != nil {
		if _, ok := e.objs[o]; ok {
			panic(fmt.Sprintf("store invariant: pair (%d,%d) expected dead but still in overlay", s, o))
		}
	}
	if p.runsContain(s, o) && !p.tombHas(s, o) {
		panic(fmt.Sprintf("store invariant: pair (%d,%d) expected dead but live in a run", s, o))
	}
	if p.tombHas(s, o) && !p.runsContain(s, o) {
		panic(fmt.Sprintf("store invariant: pair (%d,%d) tombstoned but in no run", s, o))
	}
}

// checkRun validates a freshly built or merged run's CSR shape in both
// directions: strictly ascending keys, monotone offsets bracketed by 0
// and the pair count, strictly ascending values within every span, and
// index maps consistent with the key slices. Runs are immutable after
// publication, so passing here once means the shape holds forever.
func checkRun(r *run) {
	checkDirection(r, "subject", r.subs, r.subOff, r.objs, r.subIdx)
	checkDirection(r, "object", r.objsD, r.objOff, r.subsByObj, r.objIdx)
}

func checkDirection(r *run, dir string, keys []rdf.ID, off []int32, vals []rdf.ID, idx map[rdf.ID]int32) {
	if len(vals) != r.pairs {
		panic(fmt.Sprintf("store invariant: run %s direction holds %d values, want pairs=%d", dir, len(vals), r.pairs))
	}
	if len(off) != len(keys)+1 {
		panic(fmt.Sprintf("store invariant: run %s direction has %d offsets for %d keys (want keys+1)", dir, len(off), len(keys)))
	}
	if len(keys) > 0 && (off[0] != 0 || int(off[len(off)-1]) != len(vals)) {
		panic(fmt.Sprintf("store invariant: run %s offsets not bracketed: off[0]=%d off[last]=%d len(vals)=%d",
			dir, off[0], off[len(off)-1], len(vals)))
	}
	if len(idx) != len(keys) {
		panic(fmt.Sprintf("store invariant: run %s index has %d entries for %d keys", dir, len(idx), len(keys)))
	}
	for i, k := range keys {
		if i > 0 && keys[i-1] >= k {
			panic(fmt.Sprintf("store invariant: run %s keys not strictly ascending at %d: %d >= %d", dir, i, keys[i-1], k))
		}
		if off[i] >= off[i+1] {
			panic(fmt.Sprintf("store invariant: run %s key %d has empty or inverted span [%d:%d]", dir, k, off[i], off[i+1]))
		}
		if j, ok := idx[k]; !ok || int(j) != i {
			panic(fmt.Sprintf("store invariant: run %s index maps key %d to %d, want %d", dir, k, j, i))
		}
		span := vals[off[i]:off[i+1]]
		for j := 1; j < len(span); j++ {
			if span[j-1] >= span[j] {
				panic(fmt.Sprintf("store invariant: run %s span of key %d not strictly ascending at %d: %d >= %d",
					dir, k, j, span[j-1], span[j]))
			}
		}
	}
}
