// Package ntriples implements a reader and writer for the N-Triples
// serialisation of RDF (https://www.w3.org/TR/n-triples/), covering IRI
// references, blank nodes, plain / language-tagged / datatyped literals,
// string and numeric escape sequences, comments and blank lines.
//
// The package is the document-facing substrate of the reasoner: Slider's
// input manager parses N-Triples documents into rdf.Statement values
// before dictionary-encoding them.
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf16"
	"unicode/utf8"

	"repro/internal/rdf"
)

// ParseError describes a syntax error, carrying the 1-based line number of
// the offending input line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s", e.Line, e.Msg)
}

// Reader reads rdf.Statement values from an N-Triples document.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{sc: sc}
}

// Read returns the next statement. It returns io.EOF after the last
// statement, and *ParseError on malformed input.
func (r *Reader) Read() (rdf.Statement, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		st, err := parseLine(line, r.line)
		if err != nil {
			return rdf.Statement{}, err
		}
		return st, nil
	}
	if err := r.sc.Err(); err != nil {
		return rdf.Statement{}, err
	}
	return rdf.Statement{}, io.EOF
}

// ReadAll consumes the remaining document and returns all statements.
func (r *Reader) ReadAll() ([]rdf.Statement, error) {
	var out []rdf.Statement
	for {
		st, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
}

// ParseString parses a complete N-Triples document held in a string.
func ParseString(doc string) ([]rdf.Statement, error) {
	return NewReader(strings.NewReader(doc)).ReadAll()
}

// parser walks a single line.
type parser struct {
	s    string
	pos  int
	line int
}

func parseLine(line string, lineNo int) (rdf.Statement, error) {
	p := &parser{s: line, line: lineNo}
	subj, err := p.term(false)
	if err != nil {
		return rdf.Statement{}, err
	}
	if subj.IsLiteral() {
		return rdf.Statement{}, p.errf("literal is not a valid subject")
	}
	p.skipWS()
	pred, err := p.term(false)
	if err != nil {
		return rdf.Statement{}, err
	}
	if !pred.IsIRI() {
		return rdf.Statement{}, p.errf("predicate must be an IRI")
	}
	p.skipWS()
	obj, err := p.term(true)
	if err != nil {
		return rdf.Statement{}, err
	}
	p.skipWS()
	if p.pos >= len(p.s) || p.s[p.pos] != '.' {
		return rdf.Statement{}, p.errf("expected '.' terminator")
	}
	p.pos++
	p.skipWS()
	if p.pos < len(p.s) && p.s[p.pos] != '#' {
		return rdf.Statement{}, p.errf("trailing content after '.'")
	}
	return rdf.Statement{S: subj, P: pred, O: obj}, nil
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipWS() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

// term parses one term. allowLiteral gates literal syntax (only objects
// may be literals).
func (p *parser) term(allowLiteral bool) (rdf.Term, error) {
	if p.pos >= len(p.s) {
		return rdf.Term{}, p.errf("unexpected end of line, expected term")
	}
	switch p.s[p.pos] {
	case '<':
		return p.iriRef()
	case '_':
		return p.blankNode()
	case '"':
		if !allowLiteral {
			return rdf.Term{}, p.errf("literal not allowed in this position")
		}
		return p.literal()
	default:
		return rdf.Term{}, p.errf("unexpected character %q at column %d", p.s[p.pos], p.pos+1)
	}
}

func (p *parser) iriRef() (rdf.Term, error) {
	p.pos++ // consume '<'
	var b strings.Builder
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		switch c {
		case '>':
			p.pos++
			iri := b.String()
			if iri == "" {
				return rdf.Term{}, p.errf("empty IRI")
			}
			return rdf.NewIRI(iri), nil
		case '\\':
			r, err := p.uescape()
			if err != nil {
				return rdf.Term{}, err
			}
			b.WriteRune(r)
		case ' ', '<', '"', '{', '}', '|', '^', '`':
			return rdf.Term{}, p.errf("character %q not allowed in IRI", c)
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return rdf.Term{}, p.errf("unterminated IRI")
}

func (p *parser) blankNode() (rdf.Term, error) {
	if p.pos+1 >= len(p.s) || p.s[p.pos+1] != ':' {
		return rdf.Term{}, p.errf("expected '_:' blank node prefix")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == ' ' || c == '\t' {
			break
		}
		if c == '.' && p.pos+1 >= len(p.s) {
			break // final dot
		}
		if !isBlankLabelChar(c) {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return rdf.Term{}, p.errf("empty blank node label")
	}
	return rdf.NewBlank(p.s[start:p.pos]), nil
}

func isBlankLabelChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.'
}

func (p *parser) literal() (rdf.Term, error) {
	p.pos++ // consume '"'
	var b strings.Builder
	for {
		if p.pos >= len(p.s) {
			return rdf.Term{}, p.errf("unterminated literal")
		}
		c := p.s[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			r, err := p.escape()
			if err != nil {
				return rdf.Term{}, err
			}
			b.WriteRune(r)
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	lex := b.String()
	// Optional language tag or datatype.
	if p.pos < len(p.s) && p.s[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.s) && isLangChar(p.s[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return rdf.Term{}, p.errf("empty language tag")
		}
		return rdf.NewLangLiteral(lex, p.s[start:p.pos]), nil
	}
	if strings.HasPrefix(p.s[p.pos:], "^^") {
		p.pos += 2
		if p.pos >= len(p.s) || p.s[p.pos] != '<' {
			return rdf.Term{}, p.errf("expected datatype IRI after ^^")
		}
		dt, err := p.iriRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewTypedLiteral(lex, dt.Value), nil
	}
	return rdf.NewLiteral(lex), nil
}

func isLangChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-'
}

// escape handles string escapes inside literals: \t \b \n \r \f \" \' \\
// plus \uXXXX and \UXXXXXXXX.
func (p *parser) escape() (rune, error) {
	if p.pos+1 >= len(p.s) {
		return 0, p.errf("dangling backslash")
	}
	c := p.s[p.pos+1]
	switch c {
	case 't':
		p.pos += 2
		return '\t', nil
	case 'b':
		p.pos += 2
		return '\b', nil
	case 'n':
		p.pos += 2
		return '\n', nil
	case 'r':
		p.pos += 2
		return '\r', nil
	case 'f':
		p.pos += 2
		return '\f', nil
	case '"':
		p.pos += 2
		return '"', nil
	case '\'':
		p.pos += 2
		return '\'', nil
	case '\\':
		p.pos += 2
		return '\\', nil
	case 'u', 'U':
		return p.uescape()
	default:
		return 0, p.errf("invalid escape \\%c", c)
	}
}

// uescape parses \uXXXX or \UXXXXXXXX at the current position (which must
// point at the backslash). Surrogate pairs in \u form are combined.
func (p *parser) uescape() (rune, error) {
	if p.pos+1 >= len(p.s) {
		return 0, p.errf("dangling backslash")
	}
	var width int
	switch p.s[p.pos+1] {
	case 'u':
		width = 4
	case 'U':
		width = 8
	default:
		return 0, p.errf("invalid escape \\%c in IRI", p.s[p.pos+1])
	}
	if p.pos+2+width > len(p.s) {
		return 0, p.errf("truncated unicode escape")
	}
	hex := p.s[p.pos+2 : p.pos+2+width]
	v, err := parseHex(hex)
	if err != nil {
		return 0, p.errf("bad unicode escape \\%c%s", p.s[p.pos+1], hex)
	}
	p.pos += 2 + width
	r := rune(v)
	// Combine UTF-16 surrogate pairs written as two \u escapes.
	if utf16.IsSurrogate(r) && p.pos+6 <= len(p.s) && p.s[p.pos] == '\\' && p.s[p.pos+1] == 'u' {
		v2, err2 := parseHex(p.s[p.pos+2 : p.pos+6])
		if err2 == nil {
			if combined := utf16.DecodeRune(r, rune(v2)); combined != utf8.RuneError {
				p.pos += 6
				return combined, nil
			}
		}
	}
	if !utf8.ValidRune(r) {
		return utf8.RuneError, nil
	}
	return r, nil
}

func parseHex(s string) (uint32, error) {
	var v uint32
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint32(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad hex digit %q", c)
		}
		v = v<<4 | d
	}
	return v, nil
}

// Writer serialises rdf.Statement values as N-Triples lines.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter returns a Writer emitting to w. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one statement. Invalid statements are rejected.
func (w *Writer) Write(st rdf.Statement) error {
	if w.err != nil {
		return w.err
	}
	if !st.Valid() {
		return fmt.Errorf("ntriples: invalid statement %v", st)
	}
	if _, err := w.w.WriteString(st.String()); err != nil {
		w.err = err
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns the number of statements written so far.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// WriteAll writes all statements to w in N-Triples form.
func WriteAll(w io.Writer, sts []rdf.Statement) error {
	nw := NewWriter(w)
	for _, st := range sts {
		if err := nw.Write(st); err != nil {
			return err
		}
	}
	return nw.Flush()
}
