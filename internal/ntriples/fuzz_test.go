package ntriples

import (
	"bytes"
	"testing"
)

// FuzzParse checks the parser never panics and that anything it accepts
// survives a write/re-parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"<http://e/s> <http://e/p> <http://e/o> .",
		`<http://e/s> <http://e/p> "lit"@en .`,
		`_:b <http://e/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		"# comment\n\n<http://e/s> <http://e/p> <http://e/o> .",
		`<http://e/s> <http://e/p> "é\n\t\"" .`,
		"<http://e/s <http://e/p> <http://e/o> .",
		`"lit" <p> <o> .`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		sts, err := ParseString(doc)
		if err != nil {
			return
		}
		// Accepted documents must round trip.
		var buf bytes.Buffer
		if werr := WriteAll(&buf, sts); werr != nil {
			t.Fatalf("accepted statements failed to serialise: %v", werr)
		}
		back, rerr := ParseString(buf.String())
		if rerr != nil {
			t.Fatalf("own output rejected: %v\n%s", rerr, buf.String())
		}
		if len(back) != len(sts) {
			t.Fatalf("round trip changed count: %d -> %d", len(sts), len(back))
		}
		for i := range sts {
			if back[i] != sts[i] {
				t.Fatalf("round trip changed statement %d: %v -> %v", i, sts[i], back[i])
			}
		}
	})
}
