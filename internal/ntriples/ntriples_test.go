package ntriples

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func one(t *testing.T, line string) rdf.Statement {
	t.Helper()
	sts, err := ParseString(line)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", line, err)
	}
	if len(sts) != 1 {
		t.Fatalf("ParseString(%q) returned %d statements, want 1", line, len(sts))
	}
	return sts[0]
}

func TestParseSimpleIRITriple(t *testing.T) {
	st := one(t, "<http://e/s> <http://e/p> <http://e/o> .")
	want := rdf.NewStatement(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o"))
	if st != want {
		t.Fatalf("got %v, want %v", st, want)
	}
}

func TestParseBlankNodes(t *testing.T) {
	st := one(t, "_:b0 <http://e/p> _:b1 .")
	if !st.S.IsBlank() || st.S.Value != "b0" {
		t.Fatalf("subject = %v", st.S)
	}
	if !st.O.IsBlank() || st.O.Value != "b1" {
		t.Fatalf("object = %v", st.O)
	}
}

func TestParseLiterals(t *testing.T) {
	cases := []struct {
		line string
		want rdf.Term
	}{
		{`<http://e/s> <http://e/p> "plain" .`, rdf.NewLiteral("plain")},
		{`<http://e/s> <http://e/p> "hello"@en .`, rdf.NewLangLiteral("hello", "en")},
		{`<http://e/s> <http://e/p> "hola"@es-MX .`, rdf.NewLangLiteral("hola", "es-MX")},
		{`<http://e/s> <http://e/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
			rdf.NewTypedLiteral("42", rdf.IRIXSDInteger)},
		{`<http://e/s> <http://e/p> "a\"b\\c\nd\te\rf" .`, rdf.NewLiteral("a\"b\\c\nd\te\rf")},
		{`<http://e/s> <http://e/p> "é" .`, rdf.NewLiteral("é")},
		{`<http://e/s> <http://e/p> "\U0001F600" .`, rdf.NewLiteral("\U0001F600")},
		{`<http://e/s> <http://e/p> "" .`, rdf.NewLiteral("")},
		{`<http://e/s> <http://e/p> "\b\f" .`, rdf.NewLiteral("\b\f")},
	}
	for _, c := range cases {
		if got := one(t, c.line).O; got != c.want {
			t.Errorf("object of %q = %+v, want %+v", c.line, got, c.want)
		}
	}
}

func TestParseSurrogatePairEscape(t *testing.T) {
	// U+1F600 written as a UTF-16 surrogate pair in two \u escapes.
	st := one(t, `<http://e/s> <http://e/p> "😀" .`)
	if st.O.Value != "\U0001F600" {
		t.Fatalf("surrogate pair decoded to %q", st.O.Value)
	}
}

func TestParseIRIWithUnicodeEscape(t *testing.T) {
	st := one(t, `<http://e/café> <http://e/p> <http://e/o> .`)
	if st.S.Value != "http://e/café" {
		t.Fatalf("IRI = %q", st.S.Value)
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	doc := `
# a comment
<http://e/s> <http://e/p> <http://e/o> . # trailing comment

# another
<http://e/s2> <http://e/p> "x" .
`
	sts, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 {
		t.Fatalf("got %d statements, want 2", len(sts))
	}
}

func TestParseWhitespaceVariants(t *testing.T) {
	lines := []string{
		"<http://e/s>\t<http://e/p>\t<http://e/o>\t.",
		"  <http://e/s>   <http://e/p>   <http://e/o>  .  ",
		"<http://e/s> <http://e/p> <http://e/o>.",
	}
	for _, l := range lines {
		one(t, l)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		line    string
		wantMsg string
	}{
		{`<http://e/s> <http://e/p> <http://e/o>`, "terminator"},
		{`"lit" <http://e/p> <http://e/o> .`, "literal"},
		{`<http://e/s> "p" <http://e/o> .`, "literal not allowed"},
		{`<http://e/s> _:b <http://e/o> .`, "predicate must be an IRI"},
		{`<http://e/s> <http://e/p> "unterminated .`, "unterminated literal"},
		{`<http://e/s <http://e/p> <http://e/o> .`, "not allowed in IRI"},
		{`<> <http://e/p> <http://e/o> .`, "empty IRI"},
		{`_: <http://e/p> <http://e/o> .`, "empty blank node label"},
		{`<http://e/s> <http://e/p> "x"@ .`, "empty language tag"},
		{`<http://e/s> <http://e/p> "x"^^y .`, "expected datatype IRI"},
		{`<http://e/s> <http://e/p> "\q" .`, "invalid escape"},
		{`<http://e/s> <http://e/p> "\uZZZZ" .`, "bad unicode escape"},
		{`<http://e/s> <http://e/p> <http://e/o> . extra`, "trailing content"},
		{`@ <http://e/p> <http://e/o> .`, "unexpected character"},
		{`<http://e/s> .`, "unexpected"},
	}
	for _, c := range cases {
		_, err := ParseString(c.line)
		if err == nil {
			t.Errorf("ParseString(%q): expected error", c.line)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("ParseString(%q): error %v is not *ParseError", c.line, err)
			continue
		}
		if !strings.Contains(err.Error(), c.wantMsg) {
			t.Errorf("ParseString(%q) error = %q, want substring %q", c.line, err, c.wantMsg)
		}
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	doc := "<http://e/s> <http://e/p> <http://e/o> .\n# comment\nbroken line\n"
	_, err := ParseString(doc)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Line != 3 {
		t.Fatalf("error line = %d, want 3", pe.Line)
	}
}

func TestReaderStreaming(t *testing.T) {
	doc := "<http://e/a> <http://e/p> <http://e/b> .\n<http://e/b> <http://e/p> <http://e/c> .\n"
	r := NewReader(strings.NewReader(doc))
	n := 0
	for {
		_, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("read %d statements, want 2", n)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("Read after EOF = %v, want io.EOF", err)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	sts := []rdf.Statement{
		rdf.NewStatement(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o")),
		rdf.NewStatement(rdf.NewBlank("b0"), rdf.NewIRI("http://e/p"), rdf.NewLiteral("v w x")),
		rdf.NewStatement(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewLangLiteral("hé\"llo", "fr")),
		rdf.NewStatement(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewTypedLiteral("3.14", "http://www.w3.org/2001/XMLSchema#decimal")),
		rdf.NewStatement(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewLiteral("line\nbreak\ttab\\slash")),
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, sts); err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(buf.String())
	if err != nil {
		t.Fatalf("reparsing own output: %v\noutput:\n%s", err, buf.String())
	}
	if len(back) != len(sts) {
		t.Fatalf("round trip count %d, want %d", len(back), len(sts))
	}
	for i := range sts {
		if back[i] != sts[i] {
			t.Errorf("statement %d changed: %v -> %v", i, sts[i], back[i])
		}
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	w := NewWriter(io.Discard)
	bad := rdf.NewStatement(rdf.NewLiteral("s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o"))
	if err := w.Write(bad); err == nil {
		t.Fatal("Write accepted a literal subject")
	}
}

func TestWriterCount(t *testing.T) {
	w := NewWriter(io.Discard)
	st := rdf.NewStatement(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o"))
	for i := 0; i < 3; i++ {
		if err := w.Write(st); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count() = %d, want 3", w.Count())
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after -= len(p)
	return len(p), nil
}

func TestWriterPropagatesIOErrors(t *testing.T) {
	w := NewWriter(&failWriter{after: 1})
	st := rdf.NewStatement(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o"))
	var sawErr bool
	for i := 0; i < 100000; i++ {
		if err := w.Write(st); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		if err := w.Flush(); err == nil {
			t.Fatal("expected an I/O error from Write or Flush")
		}
	}
}

// Property: any statement built from printable components survives a
// write-parse round trip.
func TestRoundTripProperty(t *testing.T) {
	gen := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		randIRI := func() rdf.Term {
			return rdf.NewIRI(fmt.Sprintf("http://example.org/res/%d", rng.Intn(1000)))
		}
		randTerm := func() rdf.Term {
			switch rng.Intn(4) {
			case 0:
				return randIRI()
			case 1:
				return rdf.NewBlank(fmt.Sprintf("b%d", rng.Intn(100)))
			case 2:
				// Literal with characters that need escaping.
				chars := []string{"a", " ", `"`, `\`, "\n", "\t", "é", "日"}
				var sb strings.Builder
				for i := 0; i < rng.Intn(8); i++ {
					sb.WriteString(chars[rng.Intn(len(chars))])
				}
				return rdf.NewLiteral(sb.String())
			default:
				return rdf.NewLangLiteral("word", "en")
			}
		}
		var sts []rdf.Statement
		for i := 0; i < 10; i++ {
			s := randTerm()
			for s.IsLiteral() {
				s = randTerm()
			}
			sts = append(sts, rdf.NewStatement(s, randIRI(), randTerm()))
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, sts); err != nil {
			return false
		}
		back, err := ParseString(buf.String())
		if err != nil || len(back) != len(sts) {
			return false
		}
		for i := range sts {
			if back[i] != sts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
