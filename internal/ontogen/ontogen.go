// Package ontogen generates the non-BSBM ontology families of the paper's
// evaluation (§3):
//
//   - SubClassChain: the subClassOf_n ontologies of Equation 1, the
//     duplicate-torture workload whose closure is O(n²) unique triples
//     while naive iterative schemes derive O(n³).
//   - Wikipedia: a synthetic stand-in for the paper's Wikipedia ontology —
//     a deep category DAG connected by rdfs:subClassOf plus articles
//     linked to categories through a plain property. Its distinguishing
//     feature in Table 1 is a very large ρdf closure (inferred ≈ 40% of
//     input, all from subClassOf transitivity).
//   - WordNet: a synthetic stand-in for the paper's WordNet ontology — a
//     hypernym forest using only plain properties and literals, so the
//     ρdf closure is empty (Table 1 reports 0 inferred) while the RDFS
//     closure is large (resource typing over a dense entity graph).
//
// The real Wikipedia/WordNet dumps are not redistributable inside this
// offline repository; the generators reproduce the structural properties
// the evaluation depends on (see DESIGN.md §2 for the substitution
// rationale). All generators are deterministic for a given seed.
package ontogen

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// Namespaces for generated ontologies.
const (
	ExampleNS   = "http://example.org/chain/"
	WikipediaNS = "http://example.org/wikipedia/"
	WordNetNS   = "http://example.org/wordnet/"
	TermsNS     = "http://example.org/terms/"
)

// SubClassChain generates the subClassOf_n ontology of the paper's
// Equation 1:
//
//	<1, type, Class>
//	<i, type, Class>, <i, subClassOf, i-1>   for i in 2..n
//
// yielding 2n-1 triples whose ρdf closure adds C(n-1, 2) subClassOf
// triples.
func SubClassChain(n int) []rdf.Statement {
	if n < 1 {
		return nil
	}
	class := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sC%d", ExampleNS, i)) }
	typeIRI := rdf.NewIRI(rdf.IRIType)
	classIRI := rdf.NewIRI(rdf.IRIClass)
	scIRI := rdf.NewIRI(rdf.IRISubClassOf)
	out := make([]rdf.Statement, 0, 2*n-1)
	out = append(out, rdf.NewStatement(class(1), typeIRI, classIRI))
	for i := 2; i <= n; i++ {
		out = append(out,
			rdf.NewStatement(class(i), typeIRI, classIRI),
			rdf.NewStatement(class(i), scIRI, class(i-1)),
		)
	}
	return out
}

// ChainClosureSize returns the number of subClassOf triples the ρdf
// closure of SubClassChain(n) adds: C(n-1, 2).
func ChainClosureSize(n int) int {
	m := n - 1
	return m * (m - 1) / 2
}

// Config sizes a generated ontology.
type Config struct {
	// Triples is the approximate number of statements to generate.
	Triples int
	// Seed drives the deterministic pseudo-random structure.
	Seed int64
}

// Wikipedia generates a category/article ontology. Roughly 20% of the
// triples are rdfs:subClassOf links forming a deep category DAG (depth
// grows with size), and the rest are article→category subject links and
// article labels. All inference under ρdf comes from scm-sco over the
// category DAG.
func Wikipedia(cfg Config) []rdf.Statement {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Triples
	if n < 10 {
		n = 10
	}
	typeIRI := rdf.NewIRI(rdf.IRIType)
	classIRI := rdf.NewIRI(rdf.IRIClass)
	scIRI := rdf.NewIRI(rdf.IRISubClassOf)
	labelIRI := rdf.NewIRI(rdf.IRILabel)
	subjectIRI := rdf.NewIRI(TermsNS + "subject")
	articleClass := rdf.NewIRI(WikipediaNS + "Article")

	cat := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%scategory/%d", WikipediaNS, i)) }
	art := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sarticle/%d", WikipediaNS, i)) }

	// Budget: each category costs ~2.4 triples (type + 1–2 sc parents +
	// occasional label), each article costs 3 (type + subject + label).
	// Categories take ~30% of the budget.
	nCat := n * 3 / 10 / 2
	if nCat < 5 {
		nCat = 5
	}
	out := make([]rdf.Statement, 0, n+8)
	out = append(out, rdf.NewStatement(articleClass, typeIRI, classIRI))

	// Category DAG: categories are generated in waves ("levels"); each
	// category picks a parent from the previous wave (occasionally a
	// second one). About six levels keeps the transitive closure near
	// the paper's observed ratio (inferred ≈ 40% of input) — deeper DAGs
	// blow the closure up quadratically.
	levelSize := nCat / 6
	if levelSize < 2 {
		levelSize = 2
	}
	var prevLevel []int
	var level []int
	for i := 0; i < nCat; i++ {
		out = append(out, rdf.NewStatement(cat(i), typeIRI, classIRI))
		if len(prevLevel) > 0 {
			parents := 1
			if rng.Intn(10) == 0 {
				parents = 2
			}
			for p := 0; p < parents; p++ {
				parent := prevLevel[rng.Intn(len(prevLevel))]
				out = append(out, rdf.NewStatement(cat(i), scIRI, cat(parent)))
			}
		}
		level = append(level, i)
		if len(level) >= levelSize {
			prevLevel, level = level, nil
		}
	}

	// Articles fill the remaining budget.
	for i := 0; len(out) < n; i++ {
		out = append(out, rdf.NewStatement(art(i), typeIRI, articleClass))
		if len(out) < n {
			out = append(out, rdf.NewStatement(art(i), subjectIRI, cat(rng.Intn(nCat))))
		}
		if len(out) < n {
			out = append(out, rdf.NewStatement(art(i), labelIRI,
				rdf.NewLangLiteral(fmt.Sprintf("Article %d", i), "en")))
		}
	}
	return out
}

// Sensor generates an SSN-style observation dataset with a
// domain/range-rich property schema. Unlike the paper's Table 1
// workloads (whose ρdf closures come almost entirely from subClassOf /
// subPropertyOf), this family drives inference through prp-dom and
// prp-rng: every observation assertion types both of its ends. Used by
// the ablation benchmarks to exercise the domain/range rule modules at
// scale.
func Sensor(cfg Config) []rdf.Statement {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Triples
	if n < 20 {
		n = 20
	}
	ns := "http://example.org/ssn/"
	typeIRI := rdf.NewIRI(rdf.IRIType)
	classIRI := rdf.NewIRI(rdf.IRIClass)
	domIRI := rdf.NewIRI(rdf.IRIDomain)
	rngIRI := rdf.NewIRI(rdf.IRIRange)
	spIRI := rdf.NewIRI(rdf.IRISubPropertyOf)

	sensorClass := rdf.NewIRI(ns + "Sensor")
	obsClass := rdf.NewIRI(ns + "Observation")
	propClass := rdf.NewIRI(ns + "ObservableProperty")
	featClass := rdf.NewIRI(ns + "FeatureOfInterest")

	madeBy := rdf.NewIRI(ns + "madeBySensor")
	observed := rdf.NewIRI(ns + "observedProperty")
	feature := rdf.NewIRI(ns + "hasFeatureOfInterest")
	result := rdf.NewIRI(ns + "hasSimpleResult")
	madeByTemp := rdf.NewIRI(ns + "madeByTemperatureSensor")

	out := []rdf.Statement{
		{S: sensorClass, P: typeIRI, O: classIRI},
		{S: obsClass, P: typeIRI, O: classIRI},
		{S: propClass, P: typeIRI, O: classIRI},
		{S: featClass, P: typeIRI, O: classIRI},
		{S: madeBy, P: domIRI, O: obsClass},
		{S: madeBy, P: rngIRI, O: sensorClass},
		{S: observed, P: domIRI, O: obsClass},
		{S: observed, P: rngIRI, O: propClass},
		{S: feature, P: domIRI, O: obsClass},
		{S: feature, P: rngIRI, O: featClass},
		{S: madeByTemp, P: spIRI, O: madeBy},
	}
	sensor := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%ssensor/%d", ns, i)) }
	obs := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sobservation/%d", ns, i)) }
	prop := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sproperty/%d", ns, i)) }
	feat := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sfeature/%d", ns, i)) }
	nSensors := n/100 + 2
	for i := 0; len(out) < n; i++ {
		o := obs(i)
		by := madeBy
		if rng.Intn(3) == 0 {
			by = madeByTemp // also exercises prp-spo1 feeding prp-dom/rng
		}
		out = append(out, rdf.Statement{S: o, P: by, O: sensor(rng.Intn(nSensors))})
		if len(out) < n {
			out = append(out, rdf.Statement{S: o, P: observed, O: prop(rng.Intn(20))})
		}
		if len(out) < n {
			out = append(out, rdf.Statement{S: o, P: feature, O: feat(rng.Intn(50))})
		}
		if len(out) < n {
			out = append(out, rdf.Statement{S: o, P: result,
				O: rdf.NewTypedLiteral(fmt.Sprintf("%d", rng.Intn(100)), rdf.IRIXSDInteger)})
		}
	}
	return out
}

// WordNet generates a hypernym forest over synsets. It deliberately
// contains no rdfs:subClassOf, rdfs:subPropertyOf, rdfs:domain or
// rdfs:range triples and no class hierarchy, so its ρdf closure is empty
// — matching the paper's Table 1 row (wordnet: 0 inferred under ρdf) —
// while rdfs4 resource typing yields a large RDFS closure.
func WordNet(cfg Config) []rdf.Statement {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Triples
	if n < 10 {
		n = 10
	}
	hypernym := rdf.NewIRI(WordNetNS + "hypernymOf")
	containsWord := rdf.NewIRI(WordNetNS + "containsWordSense")
	gloss := rdf.NewIRI(WordNetNS + "gloss")
	lexForm := rdf.NewIRI(WordNetNS + "lexicalForm")

	synset := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%ssynset/%d", WordNetNS, i)) }
	sense := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%swordsense/%d", WordNetNS, i)) }

	// Each synset costs ~4 triples: hypernym link, word sense link,
	// sense lexical form, gloss.
	nSyn := n / 4
	if nSyn < 2 {
		nSyn = 2
	}
	out := make([]rdf.Statement, 0, n+4)
	for i := 0; len(out) < n; i++ {
		s := i % nSyn
		if s > 0 && len(out) < n {
			// Hypernym points at an earlier synset: a forest, no cycles.
			out = append(out, rdf.NewStatement(synset(s), hypernym, synset(rng.Intn(s))))
		}
		if len(out) < n {
			out = append(out, rdf.NewStatement(synset(s), containsWord, sense(i)))
		}
		if len(out) < n {
			out = append(out, rdf.NewStatement(sense(i), lexForm,
				rdf.NewLiteral(fmt.Sprintf("word_%d", i))))
		}
		if len(out) < n {
			out = append(out, rdf.NewStatement(synset(s), gloss,
				rdf.NewLiteral(fmt.Sprintf("gloss of synset %d", s))))
		}
	}
	return out
}
