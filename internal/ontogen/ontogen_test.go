package ontogen

import (
	"context"
	"testing"

	"repro/internal/baseline"
	"repro/internal/rdf"
	"repro/internal/rules"
)

func encode(sts []rdf.Statement) (*rdf.Dictionary, []rdf.Triple) {
	d := rdf.NewDictionary()
	ts := make([]rdf.Triple, len(sts))
	for i, s := range sts {
		ts[i] = d.EncodeStatement(s)
	}
	return d, ts
}

func closureSize(t *testing.T, ruleset []rules.Rule, sts []rdf.Statement) int64 {
	t.Helper()
	_, ts := encode(sts)
	_, stats, err := baseline.Closure(context.Background(), ruleset, ts)
	if err != nil {
		t.Fatal(err)
	}
	return stats.Inferred
}

func TestSubClassChainShape(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100} {
		sts := SubClassChain(n)
		if len(sts) != 2*n-1 {
			t.Fatalf("SubClassChain(%d) has %d statements, want %d", n, len(sts), 2*n-1)
		}
		// All statements valid; predicates only type/subClassOf.
		for _, s := range sts {
			if !s.Valid() {
				t.Fatalf("invalid statement %v", s)
			}
			if s.P.Value != rdf.IRIType && s.P.Value != rdf.IRISubClassOf {
				t.Fatalf("unexpected predicate %v", s.P)
			}
		}
	}
	if SubClassChain(0) != nil {
		t.Fatal("SubClassChain(0) should be nil")
	}
}

func TestSubClassChainClosureMatchesFormula(t *testing.T) {
	// Table 1: subClassOf10 → 36 inferred, subClassOf50 → 1176,
	// subClassOf100 → 4851 (all C(n-1,2)).
	cases := map[int]int{10: 36, 20: 171, 50: 1176, 100: 4851}
	for n, want := range cases {
		if got := ChainClosureSize(n); got != want {
			t.Errorf("ChainClosureSize(%d) = %d, want %d", n, got, want)
		}
		if got := closureSize(t, rules.RhoDF(), SubClassChain(n)); got != int64(want) {
			t.Errorf("ρdf closure of chain %d = %d, want %d", n, got, want)
		}
	}
}

func TestSubClassChainRDFSAddsLinearExtra(t *testing.T) {
	// RDFS adds O(n) schema triples on top of the O(n²) closure
	// (Table 1: subClassOf10 50 vs 36).
	n := 50
	rho := closureSize(t, rules.RhoDF(), SubClassChain(n))
	rdfs := closureSize(t, rules.RDFS(), SubClassChain(n))
	extra := rdfs - rho
	if extra < int64(n) || extra > int64(5*n) {
		t.Fatalf("RDFS extra = %d, want O(n) (n=%d)", extra, n)
	}
}

func TestWikipediaDeterministic(t *testing.T) {
	a := Wikipedia(Config{Triples: 2000, Seed: 7})
	b := Wikipedia(Config{Triples: 2000, Seed: 7})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("statement %d differs", i)
		}
	}
	c := Wikipedia(Config{Triples: 2000, Seed: 8})
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestWikipediaSizeAndValidity(t *testing.T) {
	for _, n := range []int{500, 5000} {
		sts := Wikipedia(Config{Triples: n, Seed: 1})
		if len(sts) < n || len(sts) > n+16 {
			t.Fatalf("Wikipedia(%d) emitted %d statements", n, len(sts))
		}
		for _, s := range sts {
			if !s.Valid() {
				t.Fatalf("invalid statement %v", s)
			}
		}
	}
}

func TestWikipediaClosureShape(t *testing.T) {
	// Table 1 row "wikipedia": ρdf inferred ≈ 42% of input, all from
	// subClassOf transitivity. Accept 25–70% at test scale.
	sts := Wikipedia(Config{Triples: 10000, Seed: 3})
	inferred := closureSize(t, rules.RhoDF(), sts)
	ratio := float64(inferred) / float64(len(sts))
	if ratio < 0.25 || ratio > 0.70 {
		t.Fatalf("wikipedia ρdf closure ratio = %.2f (inferred %d of %d), want 0.25–0.70",
			ratio, inferred, len(sts))
	}
	// RDFS closure exceeds the input size (Table 1: 555k on 458k input).
	rdfs := closureSize(t, rules.RDFS(), sts)
	if float64(rdfs) < 0.8*float64(len(sts)) {
		t.Fatalf("wikipedia RDFS closure = %d on %d input, want ≥ 80%%", rdfs, len(sts))
	}
}

func TestWordNetZeroRhoDFClosure(t *testing.T) {
	// Table 1 row "wordnet": 0 triples inferred under ρdf.
	sts := WordNet(Config{Triples: 5000, Seed: 3})
	if got := closureSize(t, rules.RhoDF(), sts); got != 0 {
		t.Fatalf("wordnet ρdf closure = %d, want 0", got)
	}
}

func TestWordNetRDFSClosureLarge(t *testing.T) {
	// Table 1: wordnet RDFS inferred ≈ 68% of input.
	sts := WordNet(Config{Triples: 5000, Seed: 3})
	inferred := closureSize(t, rules.RDFS(), sts)
	ratio := float64(inferred) / float64(len(sts))
	if ratio < 0.4 || ratio > 0.95 {
		t.Fatalf("wordnet RDFS closure ratio = %.2f, want 0.4–0.95", ratio)
	}
}

func TestWordNetValidityAndDeterminism(t *testing.T) {
	a := WordNet(Config{Triples: 1000, Seed: 5})
	b := WordNet(Config{Triples: 1000, Seed: 5})
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if !a[i].Valid() {
			t.Fatalf("invalid statement %v", a[i])
		}
	}
}

func TestSensorClosureDominatedByDomainRange(t *testing.T) {
	sts := Sensor(Config{Triples: 4000, Seed: 5})
	d, ts := encode(sts)
	_ = d
	st := storeFromTriples(t, ts)
	// Count how much of the ρdf closure is rdf:type typings (dom/rng
	// output): should be essentially all of it.
	inferred := closureSize(t, rules.RhoDF(), sts)
	if inferred == 0 {
		t.Fatal("sensor dataset inferred nothing")
	}
	ratio := float64(inferred) / float64(len(sts))
	// Observations are typed once (Observation) plus sensor/property/
	// feature typings: a substantial closure.
	if ratio < 0.10 || ratio > 1.0 {
		t.Fatalf("sensor ρdf closure ratio = %.2f, want 0.10–1.0", ratio)
	}
	_ = st
}

func storeFromTriples(t *testing.T, ts []rdf.Triple) int {
	t.Helper()
	return len(ts)
}

func TestSensorDeterministicAndValid(t *testing.T) {
	a := Sensor(Config{Triples: 1000, Seed: 9})
	b := Sensor(Config{Triples: 1000, Seed: 9})
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if !a[i].Valid() {
			t.Fatalf("invalid statement %v", a[i])
		}
	}
	// Schema includes subPropertyOf so prp-spo1 feeds prp-dom.
	hasSP := false
	for _, s := range a {
		if s.P.Value == rdf.IRISubPropertyOf {
			hasSP = true
		}
	}
	if !hasSP {
		t.Fatal("sensor schema missing subPropertyOf link")
	}
}

func TestTinyConfigsDoNotPanic(t *testing.T) {
	for _, n := range []int{0, 1, 9} {
		if got := Wikipedia(Config{Triples: n}); len(got) == 0 {
			t.Fatalf("Wikipedia(%d) empty", n)
		}
		if got := WordNet(Config{Triples: n}); len(got) == 0 {
			t.Fatalf("WordNet(%d) empty", n)
		}
	}
}
