package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/store"
)

// IngestPoint is one cell of the ingest-scaling benchmark: the measured
// throughput of batch ingestion at a given number of concurrent feeder
// workers.
type IngestPoint struct {
	// Workers is the number of goroutines concurrently feeding batches.
	Workers int `json:"workers"`
	// Triples is the number of triples ingested.
	Triples int `json:"triples"`
	// StoreElapsedMS times raw store.AddBatch ingestion (no rules).
	StoreElapsedMS float64 `json:"store_elapsed_ms"`
	// StoreRate is store-only ingest throughput in triples/second.
	StoreRate float64 `json:"store_triples_per_sec"`
	// EngineElapsedMS times engine.AddBatch ingestion plus inference to
	// quiescence (ρdf ruleset).
	EngineElapsedMS float64 `json:"engine_elapsed_ms"`
	// EngineRate is engine ingest throughput in triples/second.
	EngineRate float64 `json:"engine_triples_per_sec"`
}

// IngestReport is the JSON document cmd/sliderbench -ingest emits; it
// gives future PRs a perf trajectory for the batch ingest path.
type IngestReport struct {
	Dataset    string        `json:"dataset"`
	Triples    int           `json:"triples"`
	BatchSize  int           `json:"batch_size"`
	Repeats    int           `json:"repeats"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Results    []IngestPoint `json:"results"`
}

// IngestScaling measures batch-ingest throughput at each worker count,
// both against the bare sharded store and against a full engine (ρdf
// rules, cfg's buffer size and timeout; cfg.Workers is overridden per
// cell). The dataset is dictionary-encoded once up front so the
// measurement isolates the ingest path itself. Each cell runs
// cfg.Repeats times and keeps the fastest.
func IngestScaling(ctx context.Context, ds Dataset, workerCounts []int, batchSize int, cfg SliderConfig) (IngestReport, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	if batchSize <= 0 {
		batchSize = 512
	}
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	dict := rdf.NewDictionary()
	triples := make([]rdf.Triple, len(ds.Statements))
	for i, s := range ds.Statements {
		triples[i] = dict.EncodeStatement(s)
	}
	batches := chunkTriples(triples, batchSize)
	// Untimed warm-up: the first run pays allocator and cache warm-up
	// that would otherwise bias against whichever worker count happens
	// to be measured first.
	if _, err := ingestStore(batches, workerCounts[0]); err != nil {
		return IngestReport{}, err
	}
	if _, err := ingestEngine(ctx, batches, workerCounts[0], cfg); err != nil {
		return IngestReport{}, err
	}
	rep := IngestReport{
		Dataset:    ds.Name,
		Triples:    len(triples),
		BatchSize:  batchSize,
		Repeats:    repeats,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, w := range workerCounts {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		p := IngestPoint{Workers: w, Triples: len(triples)}
		var storeBest, engineBest time.Duration
		for i := 0; i < repeats; i++ {
			se, err := ingestStore(batches, w)
			if err != nil {
				return rep, err
			}
			ee, err := ingestEngine(ctx, batches, w, cfg)
			if err != nil {
				return rep, err
			}
			if i == 0 || se < storeBest {
				storeBest = se
			}
			if i == 0 || ee < engineBest {
				engineBest = ee
			}
		}
		p.StoreElapsedMS = float64(storeBest.Microseconds()) / 1000
		p.EngineElapsedMS = float64(engineBest.Microseconds()) / 1000
		if storeBest > 0 {
			p.StoreRate = float64(len(triples)) / storeBest.Seconds()
		}
		if engineBest > 0 {
			p.EngineRate = float64(len(triples)) / engineBest.Seconds()
		}
		rep.Results = append(rep.Results, p)
	}
	return rep, nil
}

// chunkTriples splits ts into batchSize-sized slices (views, not copies).
func chunkTriples(ts []rdf.Triple, batchSize int) [][]rdf.Triple {
	var out [][]rdf.Triple
	for len(ts) > batchSize {
		out = append(out, ts[:batchSize])
		ts = ts[batchSize:]
	}
	if len(ts) > 0 {
		out = append(out, ts)
	}
	return out
}

// runWorkers fans the indices 0..n-1 out to w workers over a shared
// atomic cursor, returning the first sink error. Shared by every ingest
// benchmark so the work-distribution loop exists once.
func runWorkers(n, w int, sink func(int) error) error {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, w)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for {
				k := cursor.Add(1) - 1
				if k >= int64(n) {
					return
				}
				if err := sink(int(k)); err != nil {
					errs[slot] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ingestStore times w workers pushing the batches into a fresh sharded
// store via AddBatch. Workers claim batches off a shared atomic cursor.
func ingestStore(batches [][]rdf.Triple, w int) (time.Duration, error) {
	st := store.New()
	start := time.Now()
	if err := runWorkers(len(batches), w, func(n int) error {
		st.AddBatch(batches[n])
		return nil
	}); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	if st.Len() > total {
		return 0, fmt.Errorf("bench: store grew past input: %d > %d", st.Len(), total)
	}
	return elapsed, nil
}

// ingestEngine times w workers feeding the batches into a fresh Slider
// engine (ρdf rules) via AddBatch, inclusive of inference to quiescence.
// The engine's rule thread pool is sized to w as well, so the cell
// reflects end-to-end scaling of the ingest path.
func ingestEngine(ctx context.Context, batches [][]rdf.Triple, w int, cfg SliderConfig) (time.Duration, error) {
	eng := reasoner.New(store.New(), RhoDF.Rules(), reasoner.Config{
		BufferSize: cfg.BufferSize,
		Timeout:    cfg.Timeout,
		Workers:    w,
	})
	start := time.Now()
	if err := runWorkers(len(batches), w, func(n int) error {
		eng.AddBatch(batches[n])
		return nil
	}); err != nil {
		return 0, err
	}
	if err := eng.Close(ctx); err != nil {
		return 0, err
	}
	if err := eng.Err(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// WriteIngestJSON renders the report as indented JSON.
func WriteIngestJSON(w io.Writer, rep IngestReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteIngestTable renders the report as a human-readable table.
func WriteIngestTable(w io.Writer, rep IngestReport) {
	fmt.Fprintf(w, "Batch ingest scaling on %s (%d triples, batch=%d, best of %d)\n",
		rep.Dataset, rep.Triples, rep.BatchSize, rep.Repeats)
	fmt.Fprintf(w, "%-8s | %14s | %16s | %14s | %16s\n",
		"Workers", "Store (ms)", "Store triples/s", "Engine (ms)", "Engine triples/s")
	fmt.Fprintln(w, strings.Repeat("-", 80))
	for _, p := range rep.Results {
		fmt.Fprintf(w, "%-8d | %14.1f | %16.0f | %14.1f | %16.0f\n",
			p.Workers, p.StoreElapsedMS, p.StoreRate, p.EngineElapsedMS, p.EngineRate)
	}
}
