package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	slider "repro"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/store"
	"repro/internal/wal"
)

// WALPoint is one cell of the durability benchmark: in-memory vs
// write-ahead-logged ingest throughput at a given worker count, for both
// the bare store path and the full engine path.
type WALPoint struct {
	Workers int `json:"workers"`
	Triples int `json:"triples"`
	// Store path: raw sharded-store AddBatch, no rules.
	MemStoreMS   float64 `json:"mem_store_elapsed_ms"`
	MemStoreRate float64 `json:"mem_store_triples_per_sec"`
	WALStoreMS   float64 `json:"wal_store_elapsed_ms"`
	WALStoreRate float64 `json:"wal_store_triples_per_sec"`
	// Engine path: AddBatch plus ρdf inference to quiescence.
	MemEngineMS   float64 `json:"mem_engine_elapsed_ms"`
	MemEngineRate float64 `json:"mem_engine_triples_per_sec"`
	WALEngineMS   float64 `json:"wal_engine_elapsed_ms"`
	WALEngineRate float64 `json:"wal_engine_triples_per_sec"`
}

// WALRecovery reports cold-start times for the three recovery shapes.
type WALRecovery struct {
	Triples int `json:"triples"`
	// SnapshotOnlyMS: clean shutdown — checkpoint loaded, empty log.
	SnapshotOnlyMS float64 `json:"snapshot_only_ms"`
	// SnapshotTailMS: checkpoint at half the stream, the rest replayed
	// from the log with inference re-run for the tail only.
	SnapshotTailMS float64 `json:"snapshot_tail_ms"`
	// LogOnlyMS: no checkpoint at all, the full log replayed.
	LogOnlyMS float64 `json:"log_only_ms"`
}

// WALReport is the JSON document cmd/sliderbench -wal emits
// (BENCH_wal.json): the durability tax on ingest, and what checkpoints
// buy at recovery time.
type WALReport struct {
	Dataset    string      `json:"dataset"`
	Triples    int         `json:"triples"`
	BatchSize  int         `json:"batch_size"`
	Repeats    int         `json:"repeats"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Results    []WALPoint  `json:"results"`
	Recovery   WALRecovery `json:"recovery"`
}

// walBatches dictionary-encodes the dataset into per-batch WAL records,
// exactly as the durable facade logs them: each record carries the
// batch's triples plus the dictionary terms that batch introduced.
func walBatches(ds Dataset, batchSize int) []wal.Record {
	dict := rdf.NewDictionary()
	var recs []wal.Record
	for start := 0; start < len(ds.Statements); start += batchSize {
		end := min(start+batchSize, len(ds.Statements))
		iris, blanks, literals := dict.KindCounts()
		ts := make([]rdf.Triple, 0, end-start)
		for _, s := range ds.Statements[start:end] {
			ts = append(ts, dict.EncodeStatement(s))
		}
		var terms []wal.TermEntry
		dict.ForEachNew(iris, blanks, literals, func(id rdf.ID, t rdf.Term) bool {
			terms = append(terms, wal.TermEntry{ID: id, Term: t})
			return true
		})
		recs = append(recs, wal.Record{Op: wal.OpAssert, Terms: terms, Triples: ts})
	}
	return recs
}

// WALScaling measures the durability tax: ingest throughput with and
// without the write-ahead log in front of the store and the engine, at
// each worker count. Each cell runs cfg.Repeats times, keeping the
// fastest.
func WALScaling(ctx context.Context, ds Dataset, workerCounts []int, batchSize int, cfg SliderConfig) (WALReport, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	if batchSize <= 0 {
		batchSize = 512
	}
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	recs := walBatches(ds, batchSize)
	batches := make([][]rdf.Triple, len(recs))
	total := 0
	for i, r := range recs {
		batches[i] = r.Triples
		total += len(r.Triples)
	}
	rep := WALReport{
		Dataset:    ds.Name,
		Triples:    total,
		BatchSize:  batchSize,
		Repeats:    repeats,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	// Warm-up, as in IngestScaling.
	if _, err := ingestStore(batches, workerCounts[0]); err != nil {
		return rep, err
	}
	if _, err := ingestWALStore(recs, workerCounts[0]); err != nil {
		return rep, err
	}
	for _, w := range workerCounts {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		p := WALPoint{Workers: w, Triples: total}
		var memStore, walStore, memEngine, walEngine time.Duration
		for i := 0; i < repeats; i++ {
			ms, err := ingestStore(batches, w)
			if err != nil {
				return rep, err
			}
			ws, err := ingestWALStore(recs, w)
			if err != nil {
				return rep, err
			}
			me, err := ingestEngine(ctx, batches, w, cfg)
			if err != nil {
				return rep, err
			}
			we, err := ingestWALEngine(ctx, recs, w, cfg)
			if err != nil {
				return rep, err
			}
			if i == 0 || ms < memStore {
				memStore = ms
			}
			if i == 0 || ws < walStore {
				walStore = ws
			}
			if i == 0 || me < memEngine {
				memEngine = me
			}
			if i == 0 || we < walEngine {
				walEngine = we
			}
		}
		p.MemStoreMS, p.MemStoreRate = msAndRate(memStore, total)
		p.WALStoreMS, p.WALStoreRate = msAndRate(walStore, total)
		p.MemEngineMS, p.MemEngineRate = msAndRate(memEngine, total)
		p.WALEngineMS, p.WALEngineRate = msAndRate(walEngine, total)
		rep.Results = append(rep.Results, p)
	}
	rec, err := walRecovery(ctx, ds, batchSize, cfg)
	if err != nil {
		return rep, err
	}
	rep.Recovery = rec
	return rep, nil
}

func msAndRate(d time.Duration, triples int) (ms, rate float64) {
	ms = float64(d.Microseconds()) / 1000
	if d > 0 {
		rate = float64(triples) / d.Seconds()
	}
	return ms, rate
}

// ingestWALStore times w workers pushing pre-encoded records through a
// write-ahead log into a fresh sharded store: the logged analogue of
// ingestStore. The log lives in a fresh temp directory per run.
func ingestWALStore(recs []wal.Record, w int) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "sliderbench-wal-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return 0, err
	}
	defer l.Close()
	if _, err := l.Replay(func(wal.Record) error { return nil }); err != nil {
		return 0, err
	}
	st := store.New()
	start := time.Now()
	if err := runWorkers(len(recs), w, func(n int) error {
		if err := l.Append(recs[n]); err != nil {
			return err
		}
		st.AddBatch(recs[n].Triples)
		return nil
	}); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// ingestWALEngine times w workers pushing records through a write-ahead
// log into a fresh ρdf engine, inclusive of inference to quiescence: the
// logged analogue of ingestEngine.
func ingestWALEngine(ctx context.Context, recs []wal.Record, w int, cfg SliderConfig) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "sliderbench-wal-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return 0, err
	}
	defer l.Close()
	if _, err := l.Replay(func(wal.Record) error { return nil }); err != nil {
		return 0, err
	}
	eng := reasoner.New(store.New(), RhoDF.Rules(), reasoner.Config{
		BufferSize: cfg.BufferSize,
		Timeout:    cfg.Timeout,
		Workers:    w,
	})
	start := time.Now()
	if err := runWorkers(len(recs), w, func(n int) error {
		if err := l.Append(recs[n]); err != nil {
			return err
		}
		eng.AddBatch(recs[n].Triples)
		return nil
	}); err != nil {
		return 0, err
	}
	if err := eng.Close(ctx); err != nil {
		return 0, err
	}
	if err := eng.Err(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// walRecovery measures cold-start recovery through the durable facade
// for the three on-disk shapes a deployment can be in.
func walRecovery(ctx context.Context, ds Dataset, batchSize int, cfg SliderConfig) (WALRecovery, error) {
	var out WALRecovery

	build := func(dir string, checkpointAt float64, closeCheckpoint bool) error {
		opts := []slider.Option{
			slider.WithBufferSize(cfg.BufferSize),
			slider.WithTimeout(cfg.Timeout),
		}
		if !closeCheckpoint {
			opts = append(opts, slider.WithCheckpointEvery(-1))
		}
		r, err := slider.Open(dir, slider.RhoDF, opts...)
		if err != nil {
			return err
		}
		ckptAfter := int(checkpointAt * float64(len(ds.Statements)))
		for start := 0; start < len(ds.Statements); start += batchSize {
			end := min(start+batchSize, len(ds.Statements))
			if _, err := r.AddBatch(ds.Statements[start:end]); err != nil {
				r.Close(ctx)
				return err
			}
			if checkpointAt > 0 && start < ckptAfter && end >= ckptAfter {
				if err := r.Checkpoint(ctx); err != nil {
					r.Close(ctx)
					return err
				}
			}
		}
		if err := r.Wait(ctx); err != nil {
			r.Close(ctx)
			return err
		}
		out.Triples = r.Len()
		return r.Close(ctx)
	}

	reopen := func(dir string) (time.Duration, error) {
		start := time.Now()
		r, err := slider.Open(dir, slider.RhoDF)
		if err != nil {
			return 0, err
		}
		if err := r.Wait(ctx); err != nil {
			r.Close(ctx)
			return 0, err
		}
		elapsed := time.Since(start)
		return elapsed, r.Close(ctx)
	}

	shapes := []struct {
		out          *float64
		checkpointAt float64
		closeCkpt    bool
	}{
		{&out.SnapshotOnlyMS, 0, true},    // clean shutdown: checkpoint, empty tail
		{&out.SnapshotTailMS, 0.5, false}, // checkpoint at half, tail replayed
		{&out.LogOnlyMS, 0, false},        // full log replay
	}
	for _, s := range shapes {
		dir, err := os.MkdirTemp("", "sliderbench-walrec-*")
		if err != nil {
			return out, err
		}
		defer os.RemoveAll(dir)
		if err := build(dir, s.checkpointAt, s.closeCkpt); err != nil {
			return out, err
		}
		d, err := reopen(dir)
		if err != nil {
			return out, err
		}
		*s.out = float64(d.Microseconds()) / 1000
	}
	return out, nil
}

// WriteWALJSON renders the report as indented JSON.
func WriteWALJSON(w io.Writer, rep WALReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteWALTable renders the report as a human-readable table.
func WriteWALTable(w io.Writer, rep WALReport) {
	fmt.Fprintf(w, "Durable ingest on %s (%d triples, batch=%d, best of %d)\n",
		rep.Dataset, rep.Triples, rep.BatchSize, rep.Repeats)
	fmt.Fprintf(w, "%-8s | %16s | %16s | %16s | %16s\n",
		"Workers", "Store mem t/s", "Store WAL t/s", "Engine mem t/s", "Engine WAL t/s")
	fmt.Fprintln(w, strings.Repeat("-", 88))
	for _, p := range rep.Results {
		fmt.Fprintf(w, "%-8d | %16.0f | %16.0f | %16.0f | %16.0f\n",
			p.Workers, p.MemStoreRate, p.WALStoreRate, p.MemEngineRate, p.WALEngineRate)
	}
	fmt.Fprintf(w, "Cold recovery (%d triples): snapshot-only %.1fms, snapshot+tail %.1fms, log-only %.1fms\n",
		rep.Recovery.Triples, rep.Recovery.SnapshotOnlyMS, rep.Recovery.SnapshotTailMS, rep.Recovery.LogOnlyMS)
}
