package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/baseline"
)

func TestFragmentAccessors(t *testing.T) {
	if RhoDF.String() != "rhodf" || RDFS.String() != "RDFS" {
		t.Fatal("Fragment.String mismatch")
	}
	if len(RhoDF.Rules()) != 8 || len(RDFS.Rules()) != 14 {
		t.Fatalf("ruleset sizes: %d, %d", len(RhoDF.Rules()), len(RDFS.Rules()))
	}
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{
		"small": ScaleSmall, "medium": ScaleMedium, "paper": ScalePaper, "full": ScalePaper,
	} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Fatal("ParseScale accepted bogus scale")
	}
	if ScaleSmall.String() != "small" || ScaleMedium.String() != "medium" || ScalePaper.String() != "paper" {
		t.Fatal("Scale.String mismatch")
	}
}

func TestDatasetsSuiteComposition(t *testing.T) {
	ds := Datasets(ScaleSmall)
	names := map[string]int{}
	for _, d := range ds {
		names[d.Name] = len(d.Statements)
	}
	for _, want := range []string{"BSBM_100k", "BSBM_5M", "wikipedia", "wordnet", "subClassOf10", "subClassOf100"} {
		if names[want] == 0 {
			t.Errorf("suite missing %s (have %v)", want, names)
		}
	}
	// Small scale divides BSBM sizes by 100.
	if n := names["BSBM_100k"]; n < 900 || n > 1100 {
		t.Errorf("BSBM_100k at small scale = %d statements, want ≈ 1000", n)
	}
	// Chains keep their exact paper sizes.
	if names["subClassOf10"] != 19 {
		t.Errorf("subClassOf10 = %d statements, want 19", names["subClassOf10"])
	}
	// Paper scale includes the longer chains.
	found := false
	for _, d := range Datasets(ScalePaper) {
		if d.Name == "subClassOf500" {
			found = true
		}
	}
	if !found {
		t.Error("paper scale missing subClassOf500")
	}
}

func TestDatasetByName(t *testing.T) {
	d, err := DatasetByName("wordnet", ScaleSmall)
	if err != nil || d.Name != "wordnet" {
		t.Fatalf("DatasetByName: %v, %v", d.Name, err)
	}
	if _, err := DatasetByName("nope", ScaleSmall); err == nil {
		t.Fatal("DatasetByName accepted unknown name")
	}
}

func TestRunRowClosuresAgree(t *testing.T) {
	ctx := context.Background()
	ds, _ := DatasetByName("subClassOf50", ScaleSmall)
	row, err := RunRow(ctx, ds, RhoDF, SliderConfig{BufferSize: 8, Timeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if row.Inferred != 1176 { // C(49,2), as in Table 1
		t.Fatalf("subClassOf50 inferred %d, want 1176", row.Inferred)
	}
	if row.Input != 99 {
		t.Fatalf("input = %d, want 99", row.Input)
	}
	if row.Slider <= 0 || row.Batch <= 0 {
		t.Fatalf("non-positive timings: %+v", row)
	}
}

func TestRunSliderAndBatchAgreeOnBSBM(t *testing.T) {
	ctx := context.Background()
	ds, _ := DatasetByName("BSBM_100k", ScaleSmall)
	for _, frag := range []Fragment{RhoDF, RDFS} {
		s, err := RunSlider(ctx, ds, frag, SliderConfig{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunBatch(ctx, ds, frag, baseline.SemiNaive)
		if err != nil {
			t.Fatal(err)
		}
		if s.Inferred != b.Inferred {
			t.Fatalf("%s: slider inferred %d, batch %d", frag, s.Inferred, b.Inferred)
		}
		if s.Throughput <= 0 {
			t.Fatalf("throughput not computed: %+v", s)
		}
	}
}

func TestGainMetric(t *testing.T) {
	if g := gain(2*time.Second, time.Second); g != 100 {
		t.Fatalf("gain(2s,1s) = %v, want 100", g)
	}
	if g := gain(time.Second, 2*time.Second); g != -50 {
		t.Fatalf("gain(1s,2s) = %v, want -50", g)
	}
	if g := gain(time.Second, 0); g != 0 {
		t.Fatalf("gain with zero slider = %v, want 0", g)
	}
}

func TestWriteTable1Rendering(t *testing.T) {
	rows := []Row{
		{Dataset: "subClassOf10", Fragment: RhoDF, Input: 19, Inferred: 36,
			Batch: 3 * time.Millisecond, Slider: time.Millisecond, Gain: 200, Throughput: 19000},
		{Dataset: "subClassOf10", Fragment: RDFS, Input: 19, Inferred: 60,
			Batch: 2 * time.Millisecond, Slider: time.Millisecond, Gain: 100, Throughput: 19000},
	}
	var buf bytes.Buffer
	WriteTable1(&buf, rows, ScaleSmall)
	out := buf.String()
	for _, want := range []string{"subClassOf10", "rhodf", "RDFS", "Average gain", "71.47%", "Ontology"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3OmitsBSBM5M(t *testing.T) {
	rows := []Row{
		{Dataset: "BSBM_5M", Fragment: RhoDF, Batch: time.Second, Slider: time.Second},
		{Dataset: "wordnet", Fragment: RhoDF, Batch: 2 * time.Second, Slider: time.Second},
	}
	var buf bytes.Buffer
	Figure3(&buf, rows)
	out := buf.String()
	if strings.Contains(out, "BSBM_5M") {
		t.Error("Figure 3 must omit BSBM_5M")
	}
	if !strings.Contains(out, "wordnet") {
		t.Error("Figure 3 missing wordnet")
	}
}

func TestFigure2DOT(t *testing.T) {
	var buf bytes.Buffer
	Figure2(&buf)
	if !strings.Contains(buf.String(), `"scm-sco" -> "cax-sco"`) {
		t.Fatalf("Figure 2 DOT missing edge:\n%s", buf.String())
	}
}

func TestSweepGrid(t *testing.T) {
	ctx := context.Background()
	ds, _ := DatasetByName("subClassOf20", ScaleSmall)
	var buf bytes.Buffer
	points, err := Sweep(ctx, &buf, ds, []int{1, 64}, []time.Duration{time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // 2 fragments × 2 buffers × 1 timeout
		t.Fatalf("sweep produced %d points, want 4", len(points))
	}
	// Same closure regardless of parameters.
	for _, p := range points[1:] {
		if p.Fragment == points[0].Fragment && p.Inferred != points[0].Inferred {
			t.Fatalf("closure varies across sweep: %+v vs %+v", points[0], p)
		}
	}
	if !strings.Contains(buf.String(), "Parameter sweep") {
		t.Fatal("sweep output missing header")
	}
}

func TestWriteCSV(t *testing.T) {
	rows := []Row{
		{Dataset: "subClassOf10", Fragment: RhoDF, Input: 19, Inferred: 36,
			Batch: 3 * time.Millisecond, Slider: time.Millisecond, Gain: 200, Throughput: 19000},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "dataset,fragment") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "subClassOf10,rhodf,19,36,0.003000,0.001000,200.00,19000") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestRepeatsKeepFastestRun(t *testing.T) {
	ctx := context.Background()
	ds, _ := DatasetByName("subClassOf20", ScaleSmall)
	row, err := RunRow(ctx, ds, RhoDF, SliderConfig{Repeats: 3})
	if err != nil {
		t.Fatal(err)
	}
	if row.Inferred != 171 {
		t.Fatalf("inferred = %d", row.Inferred)
	}
}

func TestTable1SmokeOnTinySuite(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Run the real Table 1 path over a reduced suite: just the chains.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var buf bytes.Buffer
	ds, _ := DatasetByName("subClassOf20", ScaleSmall)
	for _, frag := range []Fragment{RhoDF, RDFS} {
		if _, err := RunRow(ctx, ds, frag, SliderConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	_ = buf
}
