package bench

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestRetractPauseSmoke is the CI tracking hook for the retraction
// benchmark: a miniature run of the code path cmd/sliderbench -retract
// uses, so every PR exercises full vs two-phase DRed under concurrent
// writers and the report plumbing. The full-size numbers (10k/100k/500k
// facts) live in BENCH_retract.json.
func TestRetractPauseSmoke(t *testing.T) {
	rep, err := RetractPause(context.Background(), []int{4000}, 4, 600*time.Millisecond, SliderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("want 1 cell, got %d", len(rep.Cells))
	}
	c := rep.Cells[0]
	if c.Triples < c.Facts {
		t.Fatalf("store smaller than its explicit facts: %d < %d", c.Triples, c.Facts)
	}
	if c.Full.Passes == 0 || c.TwoPhase.Passes == 0 {
		t.Fatalf("no retraction passes completed: %+v", c)
	}
	if c.TwoPhase.Suspects == 0 || c.TwoPhase.Rederived != 0 {
		t.Fatalf("unexpected suspect shape (want a fully-dying constant suspect set): %+v", c.TwoPhase)
	}
	// The suspect set is a constant handful; even on a tiny store the
	// exclusive window must not dwarf the full pass that contains it.
	if c.TwoPhase.ExclusiveMaxUS <= 0 {
		t.Fatalf("exclusive window not measured: %+v", c.TwoPhase)
	}
	var buf bytes.Buffer
	if err := WriteRetractJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty JSON report")
	}
	WriteRetractTable(&buf, rep)
}
