package bench

import (
	"bytes"
	"context"
	"testing"
)

// TestJoinBenchSmoke is the CI tracking hook for the join benchmark: a
// miniature run of the same code path cmd/sliderbench -join uses. Beyond
// exercising the report plumbing it asserts the cross-cell invariant the
// benchmark is built on — all four {order × layout} cells agree on the
// solution count for every query. The full-size numbers live in
// BENCH_join.json.
func TestJoinBenchSmoke(t *testing.T) {
	rep, err := JoinBench(context.Background(), []int{20_000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sizes) != 1 || len(rep.Sizes[0].Queries) != 6 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	size := rep.Sizes[0]
	if size.Loaded == 0 || size.Runs == 0 {
		t.Fatalf("dataset did not load/compact: %+v", size)
	}
	for _, c := range size.Queries {
		// Cell agreement is asserted inside JoinBench; here check every
		// query found work to do and every cell actually ran.
		if c.Rows == 0 {
			t.Fatalf("%s: no solutions — dataset shape broken: %+v", c.Name, c)
		}
		for _, ms := range []float64{c.NaiveMapMS, c.PlannedMapMS, c.NaiveRunsMS, c.PlannedRunsMS} {
			if ms < 0 {
				t.Fatalf("%s: negative latency: %+v", c.Name, c)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteJoinJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty JSON report")
	}
	WriteJoinTable(&buf, rep)
}
