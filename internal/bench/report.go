package bench

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/rules"
)

// Table1 runs the full evaluation matrix and renders the paper's Table 1:
// per-ontology input/inferred counts, batch (OWLIM-SE stand-in) and
// Slider times, per-row gains and per-fragment averages.
func Table1(ctx context.Context, w io.Writer, scale Scale, cfg SliderConfig) ([]Row, error) {
	datasets := Datasets(scale)
	var rows []Row
	for _, ds := range datasets {
		for _, frag := range []Fragment{RhoDF, RDFS} {
			row, err := RunRow(ctx, ds, frag, cfg)
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	WriteTable1(w, rows, scale)
	return rows, nil
}

// WriteTable1 renders rows in the layout of the paper's Table 1.
func WriteTable1(w io.Writer, rows []Row, scale Scale) {
	fmt.Fprintf(w, "Table 1: benchmark results, batch (OWLIM-SE stand-in) vs Slider (scale=%s)\n\n", scale)
	fmt.Fprintf(w, "%-14s | %9s | %-9s | %9s | %10s | %10s | %8s | %12s\n",
		"Ontology", "Input", "Fragment", "Inferred", "Batch", "Slider", "Gain", "Triples/s")
	fmt.Fprintln(w, strings.Repeat("-", 104))
	byDataset := map[string][]Row{}
	var order []string
	for _, r := range rows {
		if len(byDataset[r.Dataset]) == 0 {
			order = append(order, r.Dataset)
		}
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	for _, name := range order {
		for _, r := range byDataset[name] {
			fmt.Fprintf(w, "%-14s | %9d | %-9s | %9d | %10s | %10s | %7.2f%% | %12.0f\n",
				r.Dataset, r.Input, r.Fragment, r.Inferred,
				fmtDur(r.Batch), fmtDur(r.Slider), r.Gain, r.Throughput)
		}
	}
	fmt.Fprintln(w, strings.Repeat("-", 104))
	for _, frag := range []Fragment{RhoDF, RDFS} {
		avg, n := averageGain(rows, frag)
		fmt.Fprintf(w, "Average gain (%s, %d ontologies): %.2f%%\n", frag, n, avg)
	}
	all, n := averageGainAll(rows)
	fmt.Fprintf(w, "Average gain (overall, %d cells): %.2f%%  [paper: 71.47%%]\n", n, all)
	fmt.Fprintf(w, "Peak Slider throughput: %.0f triples/s  [paper: up to 36,000]\n", peakThroughput(rows))
}

// averageGain averages the gain over rows of one fragment, skipping rows
// where nothing was inferred (the paper leaves wordnet/ρdf blank).
func averageGain(rows []Row, frag Fragment) (float64, int) {
	var sum float64
	var n int
	for _, r := range rows {
		if r.Fragment != frag || r.Inferred == 0 {
			continue
		}
		sum += r.Gain
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

func averageGainAll(rows []Row) (float64, int) {
	var sum float64
	var n int
	for _, r := range rows {
		if r.Inferred == 0 {
			continue
		}
		sum += r.Gain
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

func peakThroughput(rows []Row) float64 {
	var peak float64
	for _, r := range rows {
		if r.Throughput > peak {
			peak = r.Throughput
		}
	}
	return peak
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// Figure3 renders the inference-time comparison of the paper's Figure 3:
// one series per (engine, fragment), over all ontologies except BSBM_5M
// ("omitted for the sake of clarity"). rows should come from Table1.
func Figure3(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "Figure 3: inference time comparison (lower is better); largest BSBM dataset omitted for clarity")
	for _, frag := range []Fragment{RhoDF, RDFS} {
		fmt.Fprintf(w, "\n[%s]\n", frag)
		fmt.Fprintf(w, "%-14s | %10s | %10s | %s\n", "Ontology", "Batch", "Slider", "bars (1 char = 5%% of max)")
		var max time.Duration
		for _, r := range rows {
			if r.Fragment == frag && r.Dataset != "BSBM_5M" && r.Batch > max {
				max = r.Batch
			}
		}
		for _, r := range rows {
			if r.Fragment != frag || r.Dataset == "BSBM_5M" {
				continue
			}
			fmt.Fprintf(w, "%-14s | %10s | %10s | B %s\n", r.Dataset,
				fmtDur(r.Batch), fmtDur(r.Slider), bar(r.Batch, max))
			fmt.Fprintf(w, "%-14s | %10s | %10s | S %s\n", "",
				"", "", bar(r.Slider, max))
		}
	}
}

func bar(d, max time.Duration) string {
	if max <= 0 {
		return ""
	}
	n := int(float64(d) / float64(max) * 20)
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// WriteCSV emits rows as CSV (header + one line per cell) for downstream
// plotting.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"dataset", "fragment", "input", "inferred",
		"batch_seconds", "slider_seconds", "gain_percent", "slider_triples_per_second",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Dataset,
			r.Fragment.String(),
			strconv.Itoa(r.Input),
			strconv.FormatInt(r.Inferred, 10),
			strconv.FormatFloat(r.Batch.Seconds(), 'f', 6, 64),
			strconv.FormatFloat(r.Slider.Seconds(), 'f', 6, 64),
			strconv.FormatFloat(r.Gain, 'f', 2, 64),
			strconv.FormatFloat(r.Throughput, 'f', 0, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Figure2 renders the ρdf rules dependency graph (paper Figure 2) as DOT.
func Figure2(w io.Writer) {
	g := rules.BuildDependencyGraph(rules.RhoDF())
	io.WriteString(w, g.DOT())
}

// SweepPoint is one cell of the demo's parameter space (§4: "24
// configurations … 264 different scenarios").
type SweepPoint struct {
	Dataset    string
	Fragment   Fragment
	BufferSize int
	Timeout    time.Duration
	Elapsed    time.Duration
	Inferred   int64
	Executions int64
}

// Sweep runs the Slider engine across the demo's parameter grid on one
// dataset and reports the effect of buffer size and timeout.
func Sweep(ctx context.Context, w io.Writer, ds Dataset, bufferSizes []int, timeouts []time.Duration) ([]SweepPoint, error) {
	if len(bufferSizes) == 0 {
		bufferSizes = []int{1, 10, 100, 1000}
	}
	if len(timeouts) == 0 {
		timeouts = []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	}
	var points []SweepPoint
	fmt.Fprintf(w, "Parameter sweep on %s (%d triples)\n", ds.Name, len(ds.Statements))
	fmt.Fprintf(w, "%-9s | %-7s | %-9s | %10s | %9s\n", "Fragment", "Buffer", "Timeout", "Elapsed", "Inferred")
	fmt.Fprintln(w, strings.Repeat("-", 56))
	for _, frag := range []Fragment{RhoDF, RDFS} {
		for _, bs := range bufferSizes {
			for _, to := range timeouts {
				m, err := RunSlider(ctx, ds, frag, SliderConfig{BufferSize: bs, Timeout: to})
				if err != nil {
					return points, err
				}
				p := SweepPoint{
					Dataset: ds.Name, Fragment: frag, BufferSize: bs, Timeout: to,
					Elapsed: m.Elapsed, Inferred: m.Inferred,
				}
				points = append(points, p)
				fmt.Fprintf(w, "%-9s | %7d | %-9s | %10s | %9d\n",
					frag, bs, to, fmtDur(m.Elapsed), m.Inferred)
			}
		}
	}
	return points, nil
}
