package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	slider "repro"
	"repro/internal/server"
)

// ServePoint is one cell of the serving benchmark: writer throughput and
// query latency with a given number of concurrent query clients hammering
// the HTTP API while writers ingest continuously.
type ServePoint struct {
	// QueryClients is the number of concurrent query loops (0 = the
	// writer-only baseline).
	QueryClients int `json:"query_clients"`
	// WriterRate is acknowledged ingest throughput in statements/second.
	WriterRate float64 `json:"writer_stmts_per_sec"`
	// WriterRegressPct is the writer-throughput regression vs the
	// no-query baseline, in percent (negative = faster than baseline).
	WriterRegressPct float64 `json:"writer_regress_pct"`
	// QPS is completed queries per second across all clients.
	QPS float64 `json:"qps"`
	// P50MS / P99MS are query latency percentiles in milliseconds,
	// extracted from the server's own request histogram
	// (slider_http_request_seconds{route="query"}): the full
	// server-side request — snapshot acquisition, join, streamed write
	// — exactly what a /metrics scrape of a production deployment
	// reports.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// Queries and Statements are the raw cell totals.
	Queries    int64 `json:"queries"`
	Statements int64 `json:"statements"`
}

// ServeReport is the JSON document cmd/sliderbench -serve emits
// (BENCH_serve.json): the serving layer's QPS/latency and its impact on
// writer throughput, tracked per PR.
type ServeReport struct {
	Writers            int          `json:"writers"`
	BatchSize          int          `json:"batch_size"`
	CellMS             float64      `json:"cell_ms"`
	Repeats            int          `json:"repeats"`
	ChainDepth         int          `json:"chain_depth"`
	BaselineWriterRate float64      `json:"baseline_writer_stmts_per_sec"`
	GoMaxProcs         int          `json:"gomaxprocs"`
	Results            []ServePoint `json:"results"`
}

// serveChainDepth is the subclass-chain depth seeded into each cell's
// reasoner: every ingested member is typed at the chain's bottom, so
// ingest exercises inference and queries have derived rows to return.
const serveChainDepth = 5

// ServeScaling measures the HTTP serving layer under concurrent ingest:
// one writer-only baseline cell, then one cell per query-client count.
// Each cell runs a fresh in-memory reasoner behind a real loopback HTTP
// server for cellDur: `writers` goroutines POST batchSize-statement
// N-Triples bodies to /v1/insert while N clients loop a LIMIT-bounded
// SELECT against /v1/query.
func ServeScaling(ctx context.Context, clientCounts []int, writers, batchSize int, cellDur time.Duration, cfg SliderConfig) (ServeReport, error) {
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 4, 16}
	}
	if writers <= 0 {
		writers = 4
	}
	if batchSize <= 0 {
		batchSize = 256
	}
	if cellDur <= 0 {
		cellDur = 3 * time.Second
	}
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 3
	}
	rep := ServeReport{
		Writers:    writers,
		BatchSize:  batchSize,
		CellMS:     float64(cellDur.Microseconds()) / 1000,
		Repeats:    repeats,
		ChainDepth: serveChainDepth,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	// Warm-up cell (untimed): pays first-connection and allocator costs.
	if _, err := serveCell(ctx, 1, writers, batchSize, cellDur/4, cfg); err != nil {
		return rep, err
	}
	// Each cell runs `repeats` times and reports the run with the best
	// writer rate, the repo's "fastest is reported" convention —
	// single-box noise would otherwise drown the writer-impact signal.
	bestCell := func(queryClients int) (ServePoint, error) {
		var best ServePoint
		for i := 0; i < repeats; i++ {
			if err := ctx.Err(); err != nil {
				return best, err
			}
			p, err := serveCell(ctx, queryClients, writers, batchSize, cellDur, cfg)
			if err != nil {
				return best, err
			}
			if i == 0 || p.WriterRate > best.WriterRate {
				best = p
			}
		}
		return best, nil
	}
	base, err := bestCell(0)
	if err != nil {
		return rep, err
	}
	rep.BaselineWriterRate = base.WriterRate
	rep.Results = append(rep.Results, base)
	for _, qc := range clientCounts {
		p, err := bestCell(qc)
		if err != nil {
			return rep, err
		}
		if base.WriterRate > 0 {
			p.WriterRegressPct = (base.WriterRate - p.WriterRate) / base.WriterRate * 100
		}
		rep.Results = append(rep.Results, p)
	}
	return rep, nil
}

// serveCell runs one benchmark cell and reports its point.
func serveCell(ctx context.Context, queryClients, writers, batchSize int, dur time.Duration, cfg SliderConfig) (ServePoint, error) {
	var opts []slider.Option
	if cfg.BufferSize > 0 {
		opts = append(opts, slider.WithBufferSize(cfg.BufferSize))
	}
	if cfg.Timeout > 0 {
		opts = append(opts, slider.WithTimeout(cfg.Timeout))
	}
	r := slider.New(slider.RhoDF, opts...)
	defer r.Close(context.Background())
	srv := server.New(r, server.Config{MaxInflight: writers + queryClients + 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        writers + queryClients + 8,
		MaxIdleConnsPerHost: writers + queryClients + 8,
	}}
	defer client.CloseIdleConnections()

	// Seed the subclass chain C0 ⊂ … ⊂ C<depth>.
	var schema strings.Builder
	for i := 0; i < serveChainDepth; i++ {
		fmt.Fprintf(&schema, "<http://b/C%d> <%s> <http://b/C%d> .\n", i, slider.SubClassOf, i+1)
	}
	if err := servePost(client, ts.URL+"/v1/insert", schema.String()); err != nil {
		return ServePoint{}, err
	}

	p := ServePoint{QueryClients: queryClients}
	var acked, queries atomic.Int64
	deadline := time.Now().Add(dur)
	cellCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, writers+queryClients)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			var body strings.Builder
			for seq := 0; cellCtx.Err() == nil; seq++ {
				body.Reset()
				for i := 0; i < batchSize; i++ {
					fmt.Fprintf(&body, "<http://b/m%d_%d_%d> <%s> <http://b/C0> .\n",
						slot, seq, i, slider.Type)
				}
				if err := servePost(client, ts.URL+"/v1/insert", body.String()); err != nil {
					if cellCtx.Err() == nil {
						errs[slot] = err
					}
					return
				}
				acked.Add(int64(batchSize))
			}
		}(w)
	}
	queryText := fmt.Sprintf("SELECT ?m WHERE { ?m a <http://b/C%d> . } LIMIT 50", serveChainDepth)
	for q := 0; q < queryClients; q++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for cellCtx.Err() == nil {
				if err := servePost(client, ts.URL+"/v1/query", queryText); err != nil {
					if cellCtx.Err() == nil {
						errs[writers+slot] = err
					}
					return
				}
				queries.Add(1)
			}
		}(q)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > dur {
		elapsed = dur // goroutines stop at the deadline; clamp tail skew
	}
	for _, err := range errs {
		if err != nil {
			return p, err
		}
	}
	p.Statements = acked.Load()
	p.Queries = queries.Load()
	if sec := elapsed.Seconds(); sec > 0 {
		p.WriterRate = float64(p.Statements) / sec
		p.QPS = float64(p.Queries) / sec
	}
	// The cell owns a fresh reasoner, so the server's query-route
	// histogram holds exactly this cell's requests — no deltas needed.
	if hist := r.Metrics().GetHistogram("slider_http_request_seconds", "route", "query"); hist != nil && hist.Count() > 0 {
		p50, _, p99 := hist.Snapshot().Quantiles()
		p.P50MS = p50 * 1000
		p.P99MS = p99 * 1000
	}
	return p, nil
}

// servePost posts a body and drains the response, failing on non-2xx.
func servePost(client *http.Client, url, body string) error {
	resp, err := client.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("bench: %s: status %d: %s", url, resp.StatusCode, b)
	}
	return nil
}

// WriteServeJSON renders the report as indented JSON.
func WriteServeJSON(w io.Writer, rep ServeReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteServeTable renders the report as a human-readable table.
func WriteServeTable(w io.Writer, rep ServeReport) {
	fmt.Fprintf(w, "Serving under concurrent ingest (%d writers × %d-stmt batches, %.0fms cells, chain depth %d)\n",
		rep.Writers, rep.BatchSize, rep.CellMS, rep.ChainDepth)
	fmt.Fprintf(w, "%-8s | %16s | %10s | %10s | %10s | %10s\n",
		"Clients", "Writer stmts/s", "Regress %", "QPS", "p50 (ms)", "p99 (ms)")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	for _, p := range rep.Results {
		fmt.Fprintf(w, "%-8d | %16.0f | %10.1f | %10.1f | %10.2f | %10.2f\n",
			p.QueryClients, p.WriterRate, p.WriterRegressPct, p.QPS, p.P50MS, p.P99MS)
	}
}
