package bench

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestServeScalingSmoke is the CI tracking hook for the serving
// benchmark: a miniature run of the same code path cmd/sliderbench
// -serve uses — real loopback HTTP, concurrent writers and query clients
// — so every PR exercises the serving layer under mixed load and the
// report plumbing. The full-size numbers live in BENCH_serve.json.
func TestServeScalingSmoke(t *testing.T) {
	rep, err := ServeScaling(context.Background(), []int{1, 2}, 2, 64, 250*time.Millisecond, SliderConfig{Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 { // baseline + 2 client counts
		t.Fatalf("got %d cells, want 3: %+v", len(rep.Results), rep)
	}
	base := rep.Results[0]
	if base.QueryClients != 0 || base.Statements == 0 || base.WriterRate <= 0 {
		t.Fatalf("baseline cell did not ingest: %+v", base)
	}
	for _, p := range rep.Results[1:] {
		if p.Queries == 0 || p.QPS <= 0 {
			t.Fatalf("query cell ran no queries: %+v", p)
		}
		if p.P50MS <= 0 || p.P99MS < p.P50MS {
			t.Fatalf("latency percentiles inconsistent: %+v", p)
		}
		if p.Statements == 0 {
			t.Fatalf("writers starved while querying: %+v", p)
		}
	}
	var buf bytes.Buffer
	if err := WriteServeJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty JSON report")
	}
	WriteServeTable(&buf, rep)
}
