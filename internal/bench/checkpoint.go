package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	slider "repro"
)

// CheckpointReport is the JSON document cmd/sliderbench -checkpoint
// emits (BENCH_checkpoint.json): what a checkpoint capture costs the
// writers. BlockingCaptureMS is the full duration of one capture of the
// built store — the pause every writer used to observe when the capture
// held the ingest lock end to end. The writer-pause fields measure the
// two-phase path: AddBatch latencies observed while a capture streams in
// the background.
type CheckpointReport struct {
	Facts      int   `json:"facts"`            // explicit facts ingested
	Triples    int   `json:"triples"`          // materialised store size at capture
	CkptBytes  int64 `json:"checkpoint_bytes"` // on-disk size of the capture
	GoMaxProcs int   `json:"gomaxprocs"`
	// BufferTimeoutMS is the rule-buffer timeout the run used: the mark
	// phase drains inference under the ingest lock, so the observable
	// pause floor tracks this knob (default here: 2ms, latency-tuned).
	BufferTimeoutMS float64 `json:"buffer_timeout_ms"`

	// Old-path equivalent: the capture duration. The pre-two-phase
	// implementation blocked every writer for all of it.
	BlockingCaptureMS float64 `json:"blocking_capture_ms"`

	// Writers are paced (the SLA-bound streaming-ingest shape the
	// two-phase checkpoint exists for) and measured twice over the same
	// wall-time: once with no capture running (the baseline — scheduler
	// and inference noise) and once while a capture of the full store
	// streams. The checkpoint's cost to writers is the delta.
	Baseline  PauseStats `json:"baseline"`
	Capture   PauseStats `json:"during_capture"`
	CaptureMS float64    `json:"capture_ms"` // duration of the measured capture
}

// PauseStats summarises writer-observed AddBatch latencies in one
// measurement window.
type PauseStats struct {
	Ops     int     `json:"ops"`     // AddBatch calls completed
	Triples int     `json:"triples"` // triples those calls ingested
	MaxMS   float64 `json:"max_ms"`
	P99MS   float64 `json:"p99_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

// checkpointStatements synthesises facts whose ρdf closure is a small
// constant factor of facts: a four-deep subclass chain plus typed
// subjects spread over it (closure ≈ 2.5 × facts).
func checkpointStatements(facts int) []slider.Statement {
	cls := func(i int) slider.Term {
		return slider.IRI(fmt.Sprintf("http://bench.example/c/C%d", i))
	}
	out := make([]slider.Statement, 0, facts+3)
	for i := 0; i < 3; i++ {
		out = append(out, slider.NewStatement(cls(i), slider.IRI(slider.SubClassOf), cls(i+1)))
	}
	for i := 0; i < facts; i++ {
		out = append(out, slider.NewStatement(
			slider.IRI(fmt.Sprintf("http://bench.example/s/x%d", i)),
			slider.IRI(slider.Type), cls(i%4)))
	}
	return out
}

// CheckpointPause builds a durable knowledge base of the given explicit
// fact count, measures one quiescent capture end to end (the old-path
// writer pause), then measures writer-observed AddBatch latencies while
// a second capture streams concurrently (the new-path writer pause).
func CheckpointPause(ctx context.Context, facts int, cfg SliderConfig) (CheckpointReport, error) {
	rep := CheckpointReport{Facts: facts, GoMaxProcs: runtime.GOMAXPROCS(0)}
	dir, err := os.MkdirTemp("", "sliderbench-ckpt-*")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(dir)

	// The writer pause during a capture is dominated by the mark phase's
	// quiescence drain, which rides out rule-buffer timeouts — so this
	// latency benchmark defaults to the latency-tuned buffer timeout a
	// pause-sensitive deployment would run (the paper's demo sweeps the
	// same knob). Override with -timeout.
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 2 * time.Millisecond
	}
	rep.BufferTimeoutMS = ms(timeout)
	r, err := slider.Open(dir, slider.RhoDF,
		slider.WithBufferSize(cfg.BufferSize),
		slider.WithTimeout(timeout),
		slider.WithCheckpointEvery(-1)) // captures under the bench's control only
	if err != nil {
		return rep, err
	}
	defer r.Close(ctx)

	sts := checkpointStatements(facts)
	const batch = 1024
	for start := 0; start < len(sts); start += batch {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if _, err := r.AddBatch(sts[start:min(start+batch, len(sts))]); err != nil {
			return rep, err
		}
	}
	if err := r.Wait(ctx); err != nil {
		return rep, err
	}
	rep.Triples = r.Len()

	// Old-path pause: one capture of the quiescent store, timed end to
	// end. The previous implementation held the ingest mutex for exactly
	// this long on every background checkpoint.
	start := time.Now()
	if err := r.Checkpoint(ctx); err != nil {
		return rep, err
	}
	rep.BlockingCaptureMS = ms(time.Since(start))

	// pacedWriters streams wbatch-triple batches from nw paced writers
	// (one batch per writer per pacing interval — the SLA-bound ingest
	// shape) until stopRunning flips, returning the observed latencies.
	// Pacing leaves CPU headroom, so latencies reflect stalls (locks,
	// I/O the writer must wait out) rather than core saturation.
	const (
		nw     = 2
		wbatch = 128
		pace   = 5 * time.Millisecond
	)
	pacedWriters := func(phase string, running *atomic.Bool) []time.Duration {
		var (
			latMu     sync.Mutex
			latencies []time.Duration
		)
		var wwg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wwg.Add(1)
			go func(w int) {
				defer wwg.Done()
				tick := time.NewTicker(pace)
				defer tick.Stop()
				for b := 0; running.Load(); b++ {
					live := make([]slider.Statement, wbatch)
					for i := range live {
						live[i] = slider.NewStatement(
							slider.IRI(fmt.Sprintf("http://bench.example/%s/w%d_%d_%d", phase, w, b, i)),
							slider.IRI(slider.Type),
							slider.IRI("http://bench.example/c/C3"))
					}
					// An op that STARTS inside the window is recorded even
					// if the window closes while it runs: a stall behind
					// the capture's tail (manifest commit, pruning) is
					// exactly what the max must not miss.
					startedIn := running.Load()
					t0 := time.Now()
					if _, err := r.AddBatch(live); err != nil {
						return
					}
					lat := time.Since(t0)
					if startedIn {
						latMu.Lock()
						latencies = append(latencies, lat)
						latMu.Unlock()
					}
					<-tick.C
				}
			}(w)
		}
		wwg.Wait()
		return latencies
	}

	// Baseline window: paced writers with no capture in flight, for as
	// long as the blocking capture took (same wall-time as the capture
	// window, roughly).
	var running atomic.Bool
	running.Store(true)
	baselineTimer := time.AfterFunc(time.Since(start), func() { running.Store(false) })
	rep.Baseline = pauseStats(pacedWriters("base", &running), wbatch)
	baselineTimer.Stop()

	// Capture windows: the same paced writers while a checkpoint of the
	// full store streams in the background. As with the suite's
	// throughput benchmarks, the phase runs cfg.Repeats times and the
	// best window is reported — single windows on a shared disk are at
	// the mercy of unrelated writeback bursts. A settle pause between
	// windows lets the kernel finish flushing the previous capture.
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	var captureDur time.Duration
	for c := 0; c < repeats; c++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		time.Sleep(750 * time.Millisecond)
		var ckptErr error
		running.Store(true)
		captureStart := time.Now()
		var dur time.Duration
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			ckptErr = r.Checkpoint(ctx)
			dur = time.Since(captureStart)
			running.Store(false)
		}()
		st := pauseStats(pacedWriters(fmt.Sprintf("live%d", c), &running), wbatch)
		wg.Wait()
		if ckptErr != nil {
			return rep, ckptErr
		}
		if c == 0 || st.MaxMS < rep.Capture.MaxMS {
			rep.Capture = st
			captureDur = dur
		}
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if len(e.Name()) > 11 && e.Name()[:11] == "checkpoint-" {
				if fi, err := e.Info(); err == nil {
					rep.CkptBytes += fi.Size()
				}
			}
		}
	}
	rep.CaptureMS = ms(captureDur)
	// Writer goroutines bail silently on AddBatch errors; on a durable
	// reasoner those poison the Reasoner, so surface them here rather
	// than report artificially healthy numbers from a failed run (the
	// deferred Close's error is unchecked for the same reason).
	if err := r.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// pauseStats reduces a latency sample to the report's summary fields.
func pauseStats(latencies []time.Duration, batch int) PauseStats {
	st := PauseStats{Ops: len(latencies), Triples: len(latencies) * batch}
	if len(latencies) == 0 {
		return st
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var total time.Duration
	for _, l := range latencies {
		total += l
	}
	st.MaxMS = ms(latencies[len(latencies)-1])
	st.P99MS = ms(latencies[len(latencies)*99/100])
	st.MeanMS = ms(total / time.Duration(len(latencies)))
	return st
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// WriteCheckpointJSON renders the report as indented JSON.
func WriteCheckpointJSON(w io.Writer, rep CheckpointReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteCheckpointTable renders the report as a human-readable summary.
func WriteCheckpointTable(w io.Writer, rep CheckpointReport) {
	fmt.Fprintf(w, "Checkpoint capture on a %d-triple store (%d explicit facts, %d bytes on disk)\n",
		rep.Triples, rep.Facts, rep.CkptBytes)
	fmt.Fprintf(w, "  old path (lock held for the capture): writers paused %8.1f ms\n", rep.BlockingCaptureMS)
	fmt.Fprintf(w, "  two-phase capture: %8.1f ms, writers streaming throughout\n", rep.CaptureMS)
	fmt.Fprintf(w, "  paced writer pause   baseline (no capture): max %8.3f ms, p99 %8.3f ms, mean %6.3f ms over %d ops\n",
		rep.Baseline.MaxMS, rep.Baseline.P99MS, rep.Baseline.MeanMS, rep.Baseline.Ops)
	fmt.Fprintf(w, "                       during capture:        max %8.3f ms, p99 %8.3f ms, mean %6.3f ms over %d ops\n",
		rep.Capture.MaxMS, rep.Capture.P99MS, rep.Capture.MeanMS, rep.Capture.Ops)
}
