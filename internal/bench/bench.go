// Package bench is the benchmark harness that regenerates the paper's
// evaluation (§3): Table 1, Figure 3 and the demo's parameter sweep. It
// runs the {ontology × fragment × engine} matrix over the same datasets
// the paper uses — BSBM-generated ontologies, subClassOf_n chains, and
// the Wikipedia/WordNet stand-ins — timing batch materialisation (the
// OWLIM-SE stand-in) against the incremental Slider engine.
//
// As in the paper, measured times include input processing (dictionary
// encoding of the parsed statements) plus inference, identically for both
// engines.
package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/bsbm"
	"repro/internal/ontogen"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/rules"
	"repro/internal/store"
)

// Fragment selects the ruleset, as the demo's Setup panel does.
type Fragment int

const (
	// RhoDF is the ρdf fragment (Figure 2).
	RhoDF Fragment = iota
	// RDFS is the RDFS fragment.
	RDFS
)

// String returns the fragment name as the paper prints it.
func (f Fragment) String() string {
	if f == RDFS {
		return "RDFS"
	}
	return "rhodf"
}

// Rules returns the fragment's ruleset.
func (f Fragment) Rules() []rules.Rule {
	if f == RDFS {
		return rules.RDFS()
	}
	return rules.RhoDF()
}

// Scale shrinks the paper's dataset sizes to fit the machine at hand.
// Relative shapes (who wins, where gains shrink) are preserved; see
// EXPERIMENTS.md for measured numbers per scale.
type Scale int

const (
	// ScaleSmall divides BSBM/Wikipedia/WordNet sizes by 100 and caps
	// chains at n=100. Suitable for laptops and CI.
	ScaleSmall Scale = iota
	// ScaleMedium divides sizes by 10 and caps chains at n=200.
	ScaleMedium
	// ScalePaper uses the paper's sizes (BSBM up to 5M triples).
	ScalePaper
)

// ParseScale converts a -scale flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "paper", "full":
		return ScalePaper, nil
	}
	return ScaleSmall, fmt.Errorf("bench: unknown scale %q (small|medium|paper)", s)
}

func (s Scale) String() string {
	switch s {
	case ScaleMedium:
		return "medium"
	case ScalePaper:
		return "paper"
	default:
		return "small"
	}
}

func (s Scale) divisor() int {
	switch s {
	case ScaleMedium:
		return 10
	case ScalePaper:
		return 1
	default:
		return 100
	}
}

// Dataset is one ontology of the evaluation.
type Dataset struct {
	// Name as printed in Table 1 (e.g. "BSBM_100k", "subClassOf50").
	Name string
	// Statements is the parsed ontology.
	Statements []rdf.Statement
}

// Datasets materialises the paper's 13-ontology suite at the given scale.
// BSBM names keep the paper's labels (the scaled sizes are what shrink).
func Datasets(scale Scale) []Dataset {
	div := scale.divisor()
	var out []Dataset
	bsbmSizes := []struct {
		label string
		size  int
	}{
		{"BSBM_100k", 100_000}, {"BSBM_200k", 200_000}, {"BSBM_500k", 500_000},
		{"BSBM_1M", 1_000_000}, {"BSBM_5M", 5_000_000},
	}
	for _, b := range bsbmSizes {
		out = append(out, Dataset{
			Name:       b.label,
			Statements: bsbm.Generate(bsbm.Config{Triples: b.size / div, Seed: 42}),
		})
	}
	out = append(out,
		Dataset{Name: "wikipedia", Statements: ontogen.Wikipedia(ontogen.Config{Triples: 458_369 / div, Seed: 42})},
		Dataset{Name: "wordnet", Statements: ontogen.WordNet(ontogen.Config{Triples: 473_589 / div, Seed: 42})},
	)
	chainSizes := []int{10, 20, 50, 100}
	if scale >= ScaleMedium {
		chainSizes = append(chainSizes, 200)
	}
	if scale == ScalePaper {
		chainSizes = append(chainSizes, 500)
	}
	for _, n := range chainSizes {
		out = append(out, Dataset{
			Name:       fmt.Sprintf("subClassOf%d", n),
			Statements: ontogen.SubClassChain(n),
		})
	}
	return out
}

// DatasetByName builds a single dataset, for the CLI and demo.
func DatasetByName(name string, scale Scale) (Dataset, error) {
	for _, d := range Datasets(scale) {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("bench: unknown dataset %q", name)
}

// Measurement is one engine run on one dataset with one fragment.
type Measurement struct {
	// Input is the number of explicit statements processed.
	Input int
	// Inferred is the number of distinct triples added by inference.
	Inferred int64
	// Elapsed covers dictionary encoding plus inference (both engines
	// are charged identically, as in the paper).
	Elapsed time.Duration
	// Throughput is Input / Elapsed in triples per second.
	Throughput float64
}

// SliderConfig tunes the Slider engine for harness runs.
type SliderConfig struct {
	BufferSize int
	Timeout    time.Duration
	Workers    int
	// Repeats re-runs each measurement and keeps the fastest time
	// (noise suppression on shared machines). 0 means 1.
	Repeats int
}

// RunSlider streams the dataset through a fresh Slider engine and waits
// for quiescence.
func RunSlider(ctx context.Context, ds Dataset, fragment Fragment, cfg SliderConfig) (Measurement, error) {
	dict := rdf.NewDictionary()
	st := store.New()
	eng := reasoner.New(st, fragment.Rules(), reasoner.Config{
		BufferSize: cfg.BufferSize,
		Timeout:    cfg.Timeout,
		Workers:    cfg.Workers,
	})
	start := time.Now()
	for _, s := range ds.Statements {
		eng.Add(dict.EncodeStatement(s))
	}
	if err := eng.Close(ctx); err != nil {
		return Measurement{}, err
	}
	elapsed := time.Since(start)
	if err := eng.Err(); err != nil {
		return Measurement{}, err
	}
	stats := eng.Stats()
	return newMeasurement(len(ds.Statements), stats.Inferred, elapsed), nil
}

// RunBatch materialises the dataset with the batch (OWLIM-SE stand-in)
// engine using the given strategy.
func RunBatch(ctx context.Context, ds Dataset, fragment Fragment, strategy baseline.Strategy) (Measurement, error) {
	dict := rdf.NewDictionary()
	st := store.New()
	eng := baseline.New(st, fragment.Rules(), strategy)
	start := time.Now()
	triples := make([]rdf.Triple, len(ds.Statements))
	for i, s := range ds.Statements {
		triples[i] = dict.EncodeStatement(s)
	}
	stats, err := eng.Materialize(ctx, triples)
	if err != nil {
		return Measurement{}, err
	}
	elapsed := time.Since(start)
	return newMeasurement(len(ds.Statements), stats.Inferred, elapsed), nil
}

func newMeasurement(input int, inferred int64, elapsed time.Duration) Measurement {
	m := Measurement{Input: input, Inferred: inferred, Elapsed: elapsed}
	if elapsed > 0 {
		m.Throughput = float64(input) / elapsed.Seconds()
	}
	return m
}

// Row is one Table 1 line for one fragment.
type Row struct {
	Dataset  string
	Fragment Fragment
	Input    int
	Inferred int64
	Batch    time.Duration
	Slider   time.Duration
	// Gain is the paper's speed-up metric: (batch - slider) / slider × 100.
	Gain float64
	// Throughput is Slider's triples/second over the run.
	Throughput float64
}

// gain computes the paper's percentage speed-up of Slider over the batch
// engine.
func gain(batch, slider time.Duration) float64 {
	if slider <= 0 {
		return 0
	}
	return (batch.Seconds() - slider.Seconds()) / slider.Seconds() * 100
}

// RunRow measures one dataset × fragment cell with both engines, running
// each cfg.Repeats times and keeping the fastest run per engine.
func RunRow(ctx context.Context, ds Dataset, fragment Fragment, cfg SliderConfig) (Row, error) {
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	var batch, slider Measurement
	for i := 0; i < repeats; i++ {
		b, err := RunBatch(ctx, ds, fragment, baseline.Naive)
		if err != nil {
			return Row{}, fmt.Errorf("batch %s/%s: %w", ds.Name, fragment, err)
		}
		s, err := RunSlider(ctx, ds, fragment, cfg)
		if err != nil {
			return Row{}, fmt.Errorf("slider %s/%s: %w", ds.Name, fragment, err)
		}
		if i == 0 || b.Elapsed < batch.Elapsed {
			batch = b
		}
		if i == 0 || s.Elapsed < slider.Elapsed {
			slider = s
		}
	}
	if batch.Inferred != slider.Inferred {
		return Row{}, fmt.Errorf("bench: closure mismatch on %s/%s: batch inferred %d, slider %d",
			ds.Name, fragment, batch.Inferred, slider.Inferred)
	}
	return Row{
		Dataset:    ds.Name,
		Fragment:   fragment,
		Input:      slider.Input,
		Inferred:   slider.Inferred,
		Batch:      batch.Elapsed,
		Slider:     slider.Elapsed,
		Gain:       gain(batch.Elapsed, slider.Elapsed),
		Throughput: slider.Throughput,
	}, nil
}
