package bench

import (
	"bytes"
	"context"
	"testing"
)

// TestCheckpointPauseSmoke is the CI tracking hook for the checkpoint
// benchmark: a miniature run of the same code path cmd/sliderbench
// -checkpoint uses, so every PR exercises capture-under-load and the
// report plumbing. The full-size numbers live in BENCH_checkpoint.json.
func TestCheckpointPauseSmoke(t *testing.T) {
	rep, err := CheckpointPause(context.Background(), 5000, SliderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triples < 5000 {
		t.Fatalf("store smaller than its explicit facts: %d < 5000", rep.Triples)
	}
	if rep.BlockingCaptureMS <= 0 || rep.CaptureMS <= 0 || rep.Capture.Ops == 0 {
		t.Fatalf("capture durations not measured: %+v", rep)
	}
	if rep.CkptBytes <= 0 {
		t.Fatalf("checkpoint size not measured: %+v", rep)
	}
	var buf bytes.Buffer
	if err := WriteCheckpointJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty JSON report")
	}
	WriteCheckpointTable(&buf, rep)
}
