package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	slider "repro"
)

// RetractReport is the JSON document cmd/sliderbench -retract emits
// (BENCH_retract.json): what a fixed-size retraction costs, and costs
// the writers, as the store grows. Every cell retracts the same number
// of explicit triples (with a bounded consequence set) from stores of
// increasing size, once on the classic full-rederive path
// (WithFullRetract — the pre-suspect-local behaviour, the "before") and
// once on the two-phase suspect-local path (the "after"), so the
// comparison is baked into the report. On the full path both the
// retraction latency and the concurrent-writer stall grow with the
// store; on the suspect-local path they track the suspect set.
type RetractReport struct {
	GoMaxProcs int `json:"gomaxprocs"`
	// BufferTimeoutMS is the rule-buffer timeout the run used: phase
	// boundaries drain inference, so observable pauses floor at it.
	BufferTimeoutMS float64 `json:"buffer_timeout_ms"`
	// RetractBatch is how many explicit triples each pass retracts; the
	// suspect set is a small constant factor of it, independent of the
	// store size.
	RetractBatch int           `json:"retract_batch"`
	Cells        []RetractCell `json:"cells"`
}

// RetractCell is one store size × {full, two-phase} comparison.
type RetractCell struct {
	Facts   int `json:"facts"`   // explicit facts ingested
	Triples int `json:"triples"` // materialised store size

	// Baseline is writer-observed AddBatch latency with no retraction
	// running — scheduler and inference noise over the same wall time.
	Baseline PauseStats `json:"baseline"`

	Full     RetractModeStats `json:"full"`      // before: full-store rederive under the ingest gate
	TwoPhase RetractModeStats `json:"two_phase"` // after: suspect-local over a frozen view
}

// RetractModeStats summarises one mode's measurement window: the
// retraction passes it completed and the AddBatch stalls paced writers
// observed while they ran.
type RetractModeStats struct {
	Passes int `json:"passes"`
	// Retract-call latency (retraction + the quiescence it rides on).
	RetractMeanMS float64 `json:"retract_mean_ms"`
	RetractMaxMS  float64 `json:"retract_max_ms"`
	// Exclusive window inside the pass, from RetractStats: how long
	// writers were actually excluded for validate-and-apply.
	ExclusiveMeanUS int64 `json:"exclusive_mean_us"`
	ExclusiveMaxUS  int64 `json:"exclusive_max_us"`
	// Suspect-set shape of the last pass (identical across passes).
	Suspects  int `json:"suspects"`
	Rederived int `json:"rederived"`
	// Writer-observed AddBatch latencies while retractions ran.
	Writer PauseStats `json:"writer"`
}

// retractClasses is the depth of the subclass chain the benchmark's
// schema uses: each retracted (x type C0) drags a chain-deep suspect
// set with it, fixed regardless of store size.
const retractClasses = 4

// retractStatements synthesises the cell's explicit facts: a subclass
// chain plus typed subjects. Retracting an (x type C0) assertion
// suspects exactly its derived chain types — a constant-size suspect
// set per retracted triple.
func retractStatements(facts int) []slider.Statement {
	cls := func(i int) slider.Term {
		return slider.IRI(fmt.Sprintf("http://bench.example/c/C%d", i))
	}
	out := make([]slider.Statement, 0, facts+retractClasses-1)
	for i := 0; i < retractClasses-1; i++ {
		out = append(out, slider.NewStatement(cls(i), slider.IRI(slider.SubClassOf), cls(i+1)))
	}
	for i := 0; i < facts; i++ {
		out = append(out, slider.NewStatement(
			slider.IRI(fmt.Sprintf("http://bench.example/s/x%d", i)),
			slider.IRI(slider.Type), cls(0)))
	}
	return out
}

// RetractPause runs the retraction benchmark over the given store
// sizes: per cell it builds the store twice (once per mode), runs
// back-to-back retract/re-assert passes of batch explicit triples for
// the window duration, and measures both the Retract latency and the
// AddBatch stalls of concurrently paced writers.
func RetractPause(ctx context.Context, factsList []int, batch int, window time.Duration, cfg SliderConfig) (RetractReport, error) {
	rep := RetractReport{
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		RetractBatch: batch,
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 2 * time.Millisecond // latency-tuned, as in the checkpoint bench
	}
	rep.BufferTimeoutMS = ms(timeout)
	for _, facts := range factsList {
		cell, err := retractCell(ctx, facts, batch, window, timeout, cfg)
		if err != nil {
			return rep, err
		}
		rep.Cells = append(rep.Cells, cell)
	}
	return rep, nil
}

// retractCell measures one store size, both modes.
func retractCell(ctx context.Context, facts, batch int, window, timeout time.Duration, cfg SliderConfig) (RetractCell, error) {
	cell := RetractCell{Facts: facts}
	sts := retractStatements(facts)

	build := func(opts ...slider.Option) (*slider.Reasoner, error) {
		opts = append(opts,
			slider.WithRetraction(),
			slider.WithBufferSize(cfg.BufferSize),
			slider.WithTimeout(timeout))
		r := slider.New(slider.RhoDF, opts...)
		const chunk = 1024
		for start := 0; start < len(sts); start += chunk {
			if err := ctx.Err(); err != nil {
				r.Close(context.Background())
				return nil, err
			}
			if _, err := r.AddBatch(sts[start:min(start+chunk, len(sts))]); err != nil {
				r.Close(context.Background())
				return nil, err
			}
		}
		if err := r.Wait(ctx); err != nil {
			r.Close(context.Background())
			return nil, err
		}
		return r, nil
	}

	// The to-be-retracted statements: the first batch instances' type
	// assertions. Each pass retracts them and re-asserts them, so the
	// store returns to its starting state between passes.
	victims := make([]slider.Statement, batch)
	for i := range victims {
		victims[i] = slider.NewStatement(
			slider.IRI(fmt.Sprintf("http://bench.example/s/x%d", i)),
			slider.IRI(slider.Type),
			slider.IRI("http://bench.example/c/C0"))
	}

	// pacedWriters mirrors the checkpoint benchmark's SLA-bound ingest
	// shape: nw writers, one wbatch-triple AddBatch per pacing tick,
	// recording every op that starts inside the window.
	const (
		nw     = 2
		wbatch = 128
		pace   = 5 * time.Millisecond
	)
	pacedWriters := func(r *slider.Reasoner, phase string, running *atomic.Bool) []time.Duration {
		var (
			latMu     sync.Mutex
			latencies []time.Duration
		)
		var wwg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wwg.Add(1)
			go func(w int) {
				defer wwg.Done()
				tick := time.NewTicker(pace)
				defer tick.Stop()
				for b := 0; running.Load(); b++ {
					live := make([]slider.Statement, wbatch)
					for i := range live {
						live[i] = slider.NewStatement(
							slider.IRI(fmt.Sprintf("http://bench.example/%s/w%d_%d_%d", phase, w, b, i)),
							slider.IRI(slider.Type),
							slider.IRI(fmt.Sprintf("http://bench.example/c/C%d", retractClasses-1)))
					}
					startedIn := running.Load()
					t0 := time.Now()
					if _, err := r.AddBatch(live); err != nil {
						return
					}
					lat := time.Since(t0)
					if startedIn {
						latMu.Lock()
						latencies = append(latencies, lat)
						latMu.Unlock()
					}
					<-tick.C
				}
			}(w)
		}
		wwg.Wait()
		return latencies
	}

	// measure runs retract/re-assert passes for the window duration with
	// paced writers alongside.
	measure := func(r *slider.Reasoner, phase string) (RetractModeStats, error) {
		var st RetractModeStats
		var running atomic.Bool
		running.Store(true)
		var (
			retractErr error
			total      time.Duration
			maxLat     time.Duration
			exTotal    int64
		)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer running.Store(false)
			deadline := time.Now().Add(window)
			for time.Now().Before(deadline) {
				t0 := time.Now()
				stats, err := r.Retract(ctx, victims...)
				if err != nil {
					retractErr = err
					return
				}
				lat := time.Since(t0)
				st.Passes++
				total += lat
				if lat > maxLat {
					maxLat = lat
				}
				exTotal += stats.ExclusiveMicros
				if stats.ExclusiveMicros > st.ExclusiveMaxUS {
					st.ExclusiveMaxUS = stats.ExclusiveMicros
				}
				st.Suspects = stats.Suspects
				st.Rederived = stats.Rederived
				if _, err := r.AddBatch(victims); err != nil {
					retractErr = err
					return
				}
				if err := ctx.Err(); err != nil {
					retractErr = err
					return
				}
			}
		}()
		st.Writer = pauseStats(pacedWriters(r, phase, &running), wbatch)
		wg.Wait()
		if retractErr != nil {
			return st, retractErr
		}
		if st.Passes > 0 {
			st.RetractMeanMS = ms(total / time.Duration(st.Passes))
			st.RetractMaxMS = ms(maxLat)
			st.ExclusiveMeanUS = exTotal / int64(st.Passes)
		}
		return st, nil
	}

	// Baseline and the two modes each get a fresh, identically built
	// reasoner, so no mode inherits the previous one's writer growth.
	r, err := build()
	if err != nil {
		return cell, err
	}
	cell.Triples = r.Len()
	var running atomic.Bool
	running.Store(true)
	time.AfterFunc(window, func() { running.Store(false) })
	cell.Baseline = pauseStats(pacedWriters(r, "base", &running), wbatch)
	r.Close(context.Background())

	rFull, err := build(slider.WithFullRetract())
	if err != nil {
		return cell, err
	}
	cell.Full, err = measure(rFull, "full")
	rFull.Close(context.Background())
	if err != nil {
		return cell, err
	}

	rTwo, err := build()
	if err != nil {
		return cell, err
	}
	cell.TwoPhase, err = measure(rTwo, "two")
	rTwo.Close(context.Background())
	return cell, err
}

// WriteRetractJSON renders the report as indented JSON.
func WriteRetractJSON(w io.Writer, rep RetractReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteRetractTable renders the report as a human-readable summary.
func WriteRetractTable(w io.Writer, rep RetractReport) {
	fmt.Fprintf(w, "Retraction of %d explicit triples per pass (suspect set ~%dx), writers paced alongside\n",
		rep.RetractBatch, retractClasses)
	fmt.Fprintf(w, "%10s %10s | %9s %12s %12s | %9s %12s %12s | %s\n",
		"facts", "triples",
		"full ms", "excl µs", "wr p99 ms",
		"2ph ms", "excl µs", "wr p99 ms", "stall reduction")
	for _, c := range rep.Cells {
		red := "n/a"
		if c.TwoPhase.Writer.P99MS > 0 {
			red = fmt.Sprintf("%.1fx", c.Full.Writer.P99MS/c.TwoPhase.Writer.P99MS)
		}
		fmt.Fprintf(w, "%10d %10d | %9.2f %12d %12.3f | %9.2f %12d %12.3f | %s\n",
			c.Facts, c.Triples,
			c.Full.RetractMeanMS, c.Full.ExclusiveMeanUS, c.Full.Writer.P99MS,
			c.TwoPhase.RetractMeanMS, c.TwoPhase.ExclusiveMeanUS, c.TwoPhase.Writer.P99MS, red)
	}
}
