package bench

import (
	"context"
	"strings"
	"testing"
)

// TestTortureSchedulePasses runs one short seeded schedule: the harness
// must inject its faults, observe degradations, and find zero contract
// violations on a healthy build.
func TestTortureSchedulePasses(t *testing.T) {
	rep, err := Torture(context.Background(), TortureConfig{
		Schedules: 1, Writers: 2, Batches: 4, BatchSize: 8, Faults: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Schedules) != 1 {
		t.Fatalf("ran %d schedules, want 1", len(rep.Schedules))
	}
	s := rep.Schedules[0]
	if len(s.Violations) != 0 {
		t.Fatalf("contract violations:\n  %s", strings.Join(s.Violations, "\n  "))
	}
	if s.FaultsInjected != 2 || s.Degradations == 0 {
		t.Fatalf("schedule injected %d faults, observed %d degradations; want 2 and >0",
			s.FaultsInjected, s.Degradations)
	}
	if s.AckedOps == 0 {
		t.Fatal("no ops acknowledged")
	}
	var buf strings.Builder
	WriteTortureTable(&buf, rep)
	if !strings.Contains(buf.String(), "PASS") {
		t.Fatalf("table did not report PASS:\n%s", buf.String())
	}
}
