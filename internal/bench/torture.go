package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	slider "repro"
	"repro/internal/vfs"
)

// TortureConfig parameterises the disk-fault torture harness
// (cmd/sliderbench -torture): seeded fault schedules run against a
// durable reasoner under concurrent ingest, retraction and checkpoint
// load, asserting the degradation contract end to end.
type TortureConfig struct {
	Schedules int   // seeded schedules to run
	Writers   int   // concurrent ingest goroutines per schedule
	Batches   int   // acknowledged batches each writer must land
	BatchSize int   // statements per batch
	Faults    int   // fault rounds injected per schedule
	Seed      int64 // base seed; schedule i runs with Seed+i
}

func (c *TortureConfig) fill() {
	if c.Schedules <= 0 {
		c.Schedules = 4
	}
	if c.Writers <= 0 {
		c.Writers = 4
	}
	if c.Batches <= 0 {
		c.Batches = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.Faults <= 0 {
		c.Faults = 4
	}
}

// TortureSchedule is one seeded schedule's outcome. A schedule passes
// when Violations is empty: every injected fault degraded and recovered
// per the state machine, reads kept serving while degraded, no
// acknowledged batch was lost across recovery or reopen, and recovery
// never re-fsynced a failed descriptor.
type TortureSchedule struct {
	Seed           int64    `json:"seed"`
	FaultsInjected int      `json:"faults_injected"`
	Degradations   int      `json:"degradations_observed"`
	RefusedWrites  int64    `json:"refused_writes"`
	DegradedReads  int64    `json:"degraded_reads_served"`
	AckedOps       int      `json:"acked_ops"`
	CheckpointErrs int64    `json:"checkpoint_errors"`
	ElapsedMS      float64  `json:"elapsed_ms"`
	Violations     []string `json:"violations,omitempty"`
}

// TortureReport is the JSON document cmd/sliderbench -torture emits
// (BENCH_torture.json).
type TortureReport struct {
	Writers    int               `json:"writers"`
	Batches    int               `json:"batches_per_writer"`
	BatchSize  int               `json:"batch_size"`
	Faults     int               `json:"fault_rounds"`
	Schedules  []TortureSchedule `json:"schedules"`
	Violations int               `json:"violations"`
}

// tortureOp is one acknowledged operation, recorded in global
// acknowledgement order so an in-memory reasoner can recompute the
// expected closure. Writers only ever touch their own subjects, so the
// interleaving across writers cannot change the closure.
type tortureOp struct {
	retract bool
	sts     []slider.Statement
}

// Torture runs the configured number of seeded fault schedules and
// reports per-schedule outcomes. It returns an error only on harness
// failures (tempdir, open); contract violations are data, reported in
// the schedules themselves so CI can print them all before failing.
func Torture(ctx context.Context, cfg TortureConfig) (*TortureReport, error) {
	cfg.fill()
	rep := &TortureReport{
		Writers: cfg.Writers, Batches: cfg.Batches,
		BatchSize: cfg.BatchSize, Faults: cfg.Faults,
	}
	for i := 0; i < cfg.Schedules; i++ {
		sched, err := runTortureSchedule(ctx, cfg.Seed+int64(i), cfg)
		if err != nil {
			return nil, err
		}
		rep.Schedules = append(rep.Schedules, sched)
		rep.Violations += len(sched.Violations)
	}
	return rep, nil
}

func tortureTerm(name string) slider.Term {
	return slider.IRI("http://torture.example/" + name)
}

// writerBatch builds writer w's b-th instance batch: unique subjects
// typed with the writer's own class, so retraction and closure math
// stay independent across writers.
func writerBatch(w, b, size int) []slider.Statement {
	sts := make([]slider.Statement, 0, size)
	for i := 0; i < size; i++ {
		sts = append(sts, slider.NewStatement(
			tortureTerm(fmt.Sprintf("s%d_%d_%d", w, b, i)),
			slider.IRI(slider.Type),
			tortureTerm(fmt.Sprintf("Class%d", w))))
	}
	return sts
}

func runTortureSchedule(ctx context.Context, seed int64, cfg TortureConfig) (TortureSchedule, error) {
	sched := TortureSchedule{Seed: seed}
	start := time.Now()
	deadline := start.Add(2 * time.Minute)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	rng := rand.New(rand.NewSource(seed))

	dir, err := os.MkdirTemp("", "slider-torture-*")
	if err != nil {
		return sched, err
	}
	defer os.RemoveAll(dir)

	ffs := vfs.NewFault(vfs.OS)
	r, err := slider.Open(dir, slider.RhoDF,
		slider.WithVFS(ffs), slider.WithFsync(), slider.WithViewMaxAge(-1),
		slider.WithLogger(slog.New(slog.DiscardHandler)))
	if err != nil {
		return sched, err
	}

	var (
		mu         sync.Mutex
		acked      []tortureOp
		violations []string
		refused    atomic.Int64
		degReads   atomic.Int64
		ckptErrs   atomic.Int64
	)
	violate := func(format string, args ...any) {
		mu.Lock()
		violations = append(violations, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	ack := func(op tortureOp) {
		mu.Lock()
		acked = append(acked, op)
		mu.Unlock()
	}

	// Writers: land the configured batches, retrying refusals — a
	// refusal is the contract working, a lost acknowledged batch is not.
	// Every third batch also retracts one statement acknowledged earlier.
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			apply := func(op tortureOp) bool {
				for {
					var err error
					if op.retract {
						_, err = r.Retract(context.Background(), op.sts...)
					} else {
						_, err = r.AddBatch(op.sts)
					}
					if err == nil {
						ack(op)
						return true
					}
					if !errors.Is(err, slider.ErrDegraded) {
						violate("writer %d: unexpected write error: %v", w, err)
						return false
					}
					refused.Add(1)
					if time.Now().After(deadline) {
						violate("writer %d: still refused at the schedule deadline", w)
						return false
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
			schema := tortureOp{sts: []slider.Statement{slider.NewStatement(
				tortureTerm(fmt.Sprintf("Class%d", w)), slider.IRI(slider.SubClassOf),
				tortureTerm(fmt.Sprintf("Super%d", w)))}}
			if !apply(schema) {
				return
			}
			for b := 0; b < cfg.Batches; b++ {
				sts := writerBatch(w, b, cfg.BatchSize)
				if !apply(tortureOp{sts: sts}) {
					return
				}
				if b%3 == 2 {
					if !apply(tortureOp{retract: true, sts: sts[:1]}) {
						return
					}
				}
			}
		}(w)
	}

	// Checkpointer: explicit checkpoints under load, so fault windows
	// also land on snapshot writes and manifest renames. Errors are
	// expected while a fault is armed; they must heal, not accumulate.
	stop := make(chan struct{})
	var bgWG sync.WaitGroup
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			if err := r.Checkpoint(context.Background()); err != nil {
				ckptErrs.Add(1)
			}
		}
	}()

	// Health watcher: the state machine has no legal path into failed
	// from injected transient faults; reads must keep serving while
	// degraded.
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			h := r.Health()
			if h.Status == slider.HealthFailed {
				violate("health reached failed: %s", h.Cause)
				return
			}
			if h.ReadOnly {
				if _, err := r.Select("SELECT ?s WHERE { ?s <" + slider.Type + "> <http://torture.example/Class0> . }"); err != nil {
					violate("query refused while degraded: %v", err)
				} else {
					degReads.Add(1)
				}
			}
		}
	}()

	// Fault rounds: arm a fault, wait for the degradation to surface,
	// clear it, wait for recovery. One-shot faults may be consumed by an
	// append (read-only degradation) or a checkpoint write (degraded but
	// writable) — both are legal surfacings.
	for f := 0; f < cfg.Faults && time.Now().Before(deadline); f++ {
		time.Sleep(time.Duration(5+rng.Intn(20)) * time.Millisecond)
		switch rng.Intn(3) {
		case 0:
			ffs.FailFsync(1, nil)
		case 1:
			ffs.SetWriteBudget(int64(rng.Intn(5)))
		case 2:
			ffs.TornWrite(1)
		}
		for r.Health().Status == slider.HealthOK {
			if time.Now().After(deadline) {
				violate("fault round %d: armed fault never degraded", f)
				break
			}
			time.Sleep(time.Millisecond)
		}
		if r.Health().Status != slider.HealthOK {
			sched.Degradations++
		}
		sched.FaultsInjected++
		ffs.Clear()
		for r.Health().Status != slider.HealthOK {
			if time.Now().After(deadline) {
				violate("fault round %d: never recovered to ok; health %+v", f, r.Health())
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	wg.Wait()
	close(stop)
	bgWG.Wait()
	if err := r.Wait(context.Background()); err != nil {
		violate("Wait after schedule: %v", err)
	}

	// The ground truth: an in-memory reasoner that never saw a fault,
	// fed exactly the acknowledged ops in acknowledgement order.
	mu.Lock()
	sched.AckedOps = len(acked)
	ops := append([]tortureOp(nil), acked...)
	mu.Unlock()
	mem := slider.New(slider.RhoDF, slider.WithRetraction(), slider.WithWorkers(2))
	for _, op := range ops {
		var err error
		if op.retract {
			_, err = mem.Retract(context.Background(), op.sts...)
		} else {
			_, err = mem.AddBatch(op.sts)
		}
		if err != nil {
			violate("replaying acked ops in memory: %v", err)
		}
	}
	if err := mem.Wait(context.Background()); err != nil {
		violate("in-memory Wait: %v", err)
	}
	want := closureStrings(mem)
	mem.Close(context.Background())

	if got := closureStrings(r); !equalStrings(got, want) {
		violate("live closure diverged from acknowledged ops: %d triples, want %d", len(got), len(want))
	}
	if err := r.Close(context.Background()); err != nil {
		violate("Close: %v", err)
	}
	if n := ffs.RefsyncViolations(); n != 0 {
		violate("recovery re-fsynced a failed descriptor %d times", n)
	}

	// No lost acknowledged batch: the closure survives a cold reopen.
	r2, err := slider.Open(dir, slider.RhoDF,
		slider.WithLogger(slog.New(slog.DiscardHandler)))
	if err != nil {
		violate("reopen: %v", err)
	} else {
		if err := r2.Wait(context.Background()); err != nil {
			violate("reopen Wait: %v", err)
		}
		if got := closureStrings(r2); !equalStrings(got, want) {
			violate("reopened closure diverged from acknowledged ops: %d triples, want %d", len(got), len(want))
		}
		r2.Close(context.Background())
	}

	sched.RefusedWrites = refused.Load()
	sched.DegradedReads = degReads.Load()
	sched.CheckpointErrs = ckptErrs.Load()
	sched.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	mu.Lock()
	sched.Violations = violations
	mu.Unlock()
	return sched, nil
}

func closureStrings(r *slider.Reasoner) []string {
	var out []string
	r.Statements(func(st slider.Statement) bool {
		out = append(out, st.String())
		return true
	})
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteTortureTable renders the report for a terminal.
func WriteTortureTable(w io.Writer, rep *TortureReport) {
	fmt.Fprintf(w, "Disk-fault torture: %d schedules, %d writers x %d batches x %d triples, %d fault rounds each\n",
		len(rep.Schedules), rep.Writers, rep.Batches, rep.BatchSize, rep.Faults)
	fmt.Fprintf(w, "%-8s | %7s | %9s | %8s | %9s | %9s | %9s | %10s\n",
		"Seed", "Faults", "Degraded", "Refused", "DegReads", "CkptErrs", "AckedOps", "Elapsed ms")
	fmt.Fprintln(w, strings.Repeat("-", 92))
	for _, s := range rep.Schedules {
		fmt.Fprintf(w, "%-8d | %7d | %9d | %8d | %9d | %9d | %9d | %10.1f\n",
			s.Seed, s.FaultsInjected, s.Degradations, s.RefusedWrites,
			s.DegradedReads, s.CheckpointErrs, s.AckedOps, s.ElapsedMS)
		for _, v := range s.Violations {
			fmt.Fprintf(w, "  VIOLATION: %s\n", v)
		}
	}
	if rep.Violations == 0 {
		fmt.Fprintln(w, "PASS: no contract violations")
	} else {
		fmt.Fprintf(w, "FAIL: %d contract violations\n", rep.Violations)
	}
}

// WriteTortureJSON emits the report as indented JSON.
func WriteTortureJSON(w io.Writer, rep *TortureReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
