package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// JoinReport is the JSON document cmd/sliderbench -join emits
// (BENCH_join.json): multi-pattern join latency across two axes the PR
// introduced — the cost-based join order plus galloping intersection
// ("planned") against left-to-right enumerate-and-probe ("naive"), and
// the compacted run-backed store layout ("runs") against the pure
// map-overlay layout ("map", the pre-run storage). The naive×map cell
// is the pre-optimisation baseline; planned×runs is the shipped path.
type JoinReport struct {
	GoMaxProcs int        `json:"gomaxprocs"`
	Repeat     int        `json:"repeat"` // runs per cell; fastest reported
	Sizes      []JoinSize `json:"sizes"`
}

// JoinSize is one dataset size: the chain layers and star extents scaled
// to ~Triples total, each query evaluated over all four cells.
type JoinSize struct {
	Triples int `json:"triples"` // requested dataset size
	Loaded  int `json:"loaded"`  // distinct triples actually stored
	// Runs/RunPairs describe the compacted store after Compact(): the
	// run-backed cells read from this shape.
	Runs     int        `json:"runs"`
	RunPairs int        `json:"run_pairs"`
	Queries  []JoinCell `json:"queries"`
}

// JoinCell is one query × the four {order × layout} measurement cells.
type JoinCell struct {
	Name     string `json:"name"`     // chain2..chain4, star2..star4
	Patterns int    `json:"patterns"` // BGP size
	Rows     int    `json:"rows"`     // solutions (identical across cells)

	NaiveMapMS    float64 `json:"naive_map_ms"`    // before: as-written order, map layout
	PlannedMapMS  float64 `json:"planned_map_ms"`  // planner+gallop alone
	NaiveRunsMS   float64 `json:"naive_runs_ms"`   // run layout alone
	PlannedRunsMS float64 `json:"planned_runs_ms"` // after: full optimised path

	// Speedup is NaiveMapMS / PlannedRunsMS — the headline before/after.
	Speedup float64 `json:"speedup"`
}

// joinIRI interns one benchmark term.
func joinIRI(d *rdf.Dictionary, format string, args ...any) rdf.ID {
	return d.EncodeIRI(fmt.Sprintf("http://bench.example/join/"+format, args...))
}

// joinDataset synthesises ~n triples in two halves engineered to reward
// the two optimisations separately:
//
//   - A layered chain A -p1-> B -p2-> C -p3-> D -p4-> E with extents
//     |p1| >> |p2| >> |p4| > |p3|. Written left to right, a chain query
//     enumerates the huge p1 extent first; the planner instead anchors at
//     the tiny p3 (or p2) extent and grows the join outward, so its cost
//     tracks the smallest extent rather than the first.
//   - A star of flat predicates q1..q4 with one shared object class each
//     (s qj Cj for every s with s ≡ 0 mod mj). A star query's patterns
//     share the single variable ?s, which is exactly the shape the
//     executor answers by galloping intersection of the sorted subject
//     extents instead of probing every candidate.
func joinDataset(d *rdf.Dictionary, n int) (ts []rdf.Triple, chainP, starP []rdf.ID, starObj []rdf.ID) {
	ts = make([]rdf.Triple, 0, n+4)
	half := n / 2

	// Chain half: c3 is the fixed selective anchor, c4 small, and the
	// bulk splits 4:1 over p1 and p2 so naive left-to-right starts at
	// the worst possible pattern.
	c3 := min(1000, half/8)
	c4 := min(10*c3, half/8)
	rest := half - c3 - c4
	c1, c2 := rest*4/5, rest/5
	counts := []int{c1, c2, c3, c4}
	chainP = make([]rdf.ID, 4)
	for i := range chainP {
		chainP[i] = joinIRI(d, "p%d", i+1)
	}
	layer := func(l, j int) rdf.ID { return joinIRI(d, "n%d_%d", l, j) }
	for l, c := range counts {
		for j := 0; j < c; j++ {
			ts = append(ts, rdf.T(layer(l, j), chainP[l], layer(l+1, j)))
		}
	}

	// Star half: subject s carries (s qj Cj) when s divides mj, so the
	// k-star answer is the subjects divisible by lcm(m1..mk) — a small
	// intersection of individually huge extents.
	mods := []int{2, 3, 5, 7}
	starP = make([]rdf.ID, 4)
	starObj = make([]rdf.ID, 4)
	for i := range starP {
		starP[i] = joinIRI(d, "q%d", i+1)
		starObj[i] = joinIRI(d, "C%d", i+1)
	}
	// Σ 1/mj ≈ 1.176 triples per subject.
	subjects := half * 1000 / 1176
	for s := 0; s < subjects; s++ {
		subj := joinIRI(d, "s%d", s)
		for i, m := range mods {
			if s%m == 0 {
				ts = append(ts, rdf.T(subj, starP[i], starObj[i]))
			}
		}
	}
	return ts, chainP, starP, starObj
}

// joinQueries builds the six benchmark queries over the dataset's IDs.
// Ground terms go through the dictionary's reverse map inside the
// executor, so patterns carry Terms.
func joinQueries(d *rdf.Dictionary, chainP, starP, starObj []rdf.ID) []struct {
	name string
	q    query.Query
} {
	term := func(id rdf.ID) query.Node {
		t, _ := d.Term(id)
		return query.T(t)
	}
	chain := func(k int) query.Query {
		var q query.Query
		for i := 0; i < k; i++ {
			q.Patterns = append(q.Patterns, query.Pattern{
				S: query.V(fmt.Sprintf("x%d", i)),
				P: term(chainP[i]),
				O: query.V(fmt.Sprintf("x%d", i+1)),
			})
		}
		// Project only the anchor variable: solution materialisation cost
		// stays flat so the cells compare join work, not row formatting.
		q.Select = []string{fmt.Sprintf("x%d", k)}
		return q
	}
	star := func(k int) query.Query {
		var q query.Query
		for i := 0; i < k; i++ {
			q.Patterns = append(q.Patterns, query.Pattern{
				S: query.V("s"), P: term(starP[i]), O: term(starObj[i]),
			})
		}
		q.Select = []string{"s"}
		return q
	}
	return []struct {
		name string
		q    query.Query
	}{
		{"chain2", chain(2)}, {"chain3", chain(3)}, {"chain4", chain(4)},
		{"star2", star(2)}, {"star3", star(3)}, {"star4", star(4)},
	}
}

// timeJoin evaluates q against src repeat times and returns the fastest
// wall time and the solution count.
func timeJoin(src query.Source, d *rdf.Dictionary, q query.Query, repeat int) (time.Duration, int, error) {
	best := time.Duration(0)
	rows := 0
	for i := 0; i < repeat; i++ {
		n := 0
		t0 := time.Now()
		err := query.ExecuteFunc(src, d, q, func(query.Binding) bool {
			n++
			return true
		})
		lat := time.Since(t0)
		if err != nil {
			return 0, 0, err
		}
		rows = n
		if i == 0 || lat < best {
			best = lat
		}
	}
	return best, rows, nil
}

// JoinBench measures multi-pattern join latency over the given dataset
// sizes. Per size it loads the same synthetic triples into two stores —
// one kept in the pure map-overlay layout (compactor off), one fully
// compacted into sorted runs — and evaluates chain and star BGPs of 2–4
// patterns in planned and naive (as-written, no galloping) order on
// each.
func JoinBench(ctx context.Context, sizes []int, repeat int) (JoinReport, error) {
	rep := JoinReport{GoMaxProcs: runtime.GOMAXPROCS(0), Repeat: repeat}
	for _, n := range sizes {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		dict := rdf.NewDictionary()
		ts, chainP, starP, starObj := joinDataset(dict, n)

		mapStore := store.New()
		mapStore.SetAutoCompact(false)
		mapStore.AddBatch(ts)
		runStore := store.New()
		runStore.AddBatch(ts)
		runStore.Compact()
		ss := runStore.Stats()

		size := JoinSize{Triples: n, Loaded: runStore.Len(), Runs: ss.Runs, RunPairs: ss.RunPairs}
		for _, jq := range joinQueries(dict, chainP, starP, starObj) {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			cell := JoinCell{Name: jq.name, Patterns: len(jq.q.Patterns)}
			naive := jq.q
			naive.NaiveOrder = true

			type run struct {
				src query.Source
				q   query.Query
				dst *float64
			}
			for _, r := range []run{
				{mapStore, naive, &cell.NaiveMapMS},
				{mapStore, jq.q, &cell.PlannedMapMS},
				{runStore, naive, &cell.NaiveRunsMS},
				{runStore, jq.q, &cell.PlannedRunsMS},
			} {
				lat, rows, err := timeJoin(r.src, dict, r.q, repeat)
				if err != nil {
					return rep, err
				}
				if cell.Rows != 0 && rows != cell.Rows {
					return rep, fmt.Errorf("join bench: %s: cell disagreement, %d rows vs %d", jq.name, rows, cell.Rows)
				}
				cell.Rows = rows
				*r.dst = ms(lat)
			}
			if cell.PlannedRunsMS > 0 {
				cell.Speedup = cell.NaiveMapMS / cell.PlannedRunsMS
			}
			size.Queries = append(size.Queries, cell)
		}
		rep.Sizes = append(rep.Sizes, size)
	}
	return rep, nil
}

// WriteJoinJSON renders the report as indented JSON.
func WriteJoinJSON(w io.Writer, rep JoinReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteJoinTable renders the report as a human-readable summary.
func WriteJoinTable(w io.Writer, rep JoinReport) {
	fmt.Fprintf(w, "Multi-pattern join latency: {naive, planned} order x {map, runs} layout (fastest of %d)\n", rep.Repeat)
	for _, s := range rep.Sizes {
		fmt.Fprintf(w, "%d triples (%d loaded, %d runs / %d pairs compacted)\n", s.Triples, s.Loaded, s.Runs, s.RunPairs)
		fmt.Fprintf(w, "  %8s %4s %9s | %12s %12s %12s %12s | %8s\n",
			"query", "pats", "rows", "naive map", "plan map", "naive runs", "plan runs", "speedup")
		for _, c := range s.Queries {
			fmt.Fprintf(w, "  %8s %4d %9d | %10.3fms %10.3fms %10.3fms %10.3fms | %7.1fx\n",
				c.Name, c.Patterns, c.Rows,
				c.NaiveMapMS, c.PlannedMapMS, c.NaiveRunsMS, c.PlannedRunsMS, c.Speedup)
		}
	}
}
