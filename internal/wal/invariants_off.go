//go:build !slider_invariants

package wal

// invariantsEnabled is false in normal builds; see invariants_on.go and
// INVARIANTS.md. The empty body below inlines to nothing.
const invariantsEnabled = false

func (l *Log) assertSyncable() {}
