//go:build !linux

package wal

import "repro/internal/vfs"

// flushRange is a no-op where sync_file_range is unavailable: the final
// fsync in writeCheckpointFile provides durability either way, at the
// cost of one larger flush.
func flushRange(vfs.File, int64, int64) {}

// settleWriteback is likewise a no-op; see flush_linux.go.
func settleWriteback(vfs.File, int64) {}
