// Package wal makes the knowledge base durable: it maintains a
// segmented, append-only write-ahead log of assert/retract batches —
// varint-framed, CRC32-checked records over dictionary-encoded triples
// plus the dictionary deltas that name them — together with periodic
// checkpoints in the internal/snapshot format.
//
// On-disk layout of a log directory:
//
//	MANIFEST.json               commit point: current checkpoint
//	                            generation and first live segment
//	segment-00000001.wal        framed records, oldest live segment
//	segment-00000002.wal        ... the highest-numbered segment is the
//	                            one being appended to
//	checkpoint-00000001.slkb    snapshot of the materialised store
//	                            (internal/snapshot format)
//	checkpoint-00000001.explicit the explicit (asserted) triple set at
//	                            the same instant, for restartable DRed
//
// A checkpoint covers every segment that was closed before it was
// taken; covered segments are deleted once the manifest commits the new
// generation. Recovery therefore loads the manifest's checkpoint and
// replays only the live segments. The final record of the last segment
// may be torn by a crash: replay truncates the segment back to the last
// record whose CRC verifies, so a crash mid-append loses at most the
// batch that was never acknowledged. All state transitions go through
// write-to-temp-then-rename, so a crash during checkpointing or pruning
// leaves only unreferenced files, which the next Open sweeps.
package wal

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Segment header: magic plus a format version byte.
var segmentMagic = [4]byte{'S', 'L', 'W', 'L'}

// Version of the on-disk log format.
const Version = 1

const (
	manifestName  = "MANIFEST.json"
	segmentPrefix = "segment-"
	segmentSuffix = ".wal"
	ckptPrefix    = "checkpoint-"
	ckptSnapshot  = ".slkb"
	ckptExplicit  = ".explicit"
)

// ErrCorrupt reports a log whose surviving prefix could not be
// reconciled (e.g. an unreadable manifest). Torn record tails are NOT
// errors — they are repaired silently.
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

// DefaultSegmentSize is the roll threshold for segment files.
const DefaultSegmentSize = 4 << 20

// Options tunes a Log.
type Options struct {
	// SegmentSize is the byte size past which the live segment is closed
	// and a new one started. 0 means DefaultSegmentSize.
	SegmentSize int64
	// Fsync syncs the segment file after every append. Off by default:
	// the process-crash guarantee (a completed Append survives) holds
	// without it, at the cost of the power-failure guarantee.
	Fsync bool
	// Metrics, when non-nil, instruments the append path (see
	// NewMetrics). Nil keeps the log free of clock reads.
	Metrics *Metrics
	// FS is the filesystem the log lives on. Nil means vfs.OS (the real
	// disk); the torture harness passes a vfs.FaultFS to script faults.
	FS vfs.FS
}

// manifest is the durable commit record of the log's state.
type manifest struct {
	Version      int `json:"version"`
	Checkpoint   int `json:"checkpoint"`    // generation; 0 = none
	FirstSegment int `json:"first_segment"` // lowest live segment index
	// Meta is an opaque client string (the facade records the reasoning
	// fragment here, so a KB is never reopened under different rules).
	Meta string `json:"meta,omitempty"`
}

// Log is a segmented write-ahead log rooted at one directory. All
// methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options
	fs   vfs.FS

	mu        sync.Mutex
	man       manifest
	cur       vfs.File // live segment, opened for append
	curIdx    int      // index of the live segment
	curSize   int64    // size of the live segment in bytes
	curFailed bool     // cur's fsync failed: the handle is poisoned until Recover reopens it
	liveSize  int64    // total bytes across live segments (incl. headers)
	dirty     bool     // records exist that no checkpoint covers
	ckptBytes int64    // on-disk size of the current checkpoint, 0 if none
	appendSeq uint64   // successful appends this session, for checkpoint marks
	replayed  bool
	closed    bool
	buf       []byte // scratch append buffer, reused across records
	unlock    func() // releases the directory lock
}

// Open opens (creating if necessary) the log directory, repairs any
// half-committed checkpoint or prune left by a crash, and positions the
// log for Replay followed by Append.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if opts.FS == nil {
		opts.FS = vfs.OS
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	unlock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, fs: opts.FS, unlock: unlock}
	if err := l.loadManifest(); err != nil {
		unlock()
		return nil, err
	}
	if err := l.sweep(); err != nil {
		unlock()
		return nil, err
	}
	if err := l.openSegments(); err != nil {
		unlock()
		return nil, err
	}
	l.ckptBytes = l.statCheckpoint(l.man.Checkpoint)
	return l, nil
}

// statCheckpoint sums the on-disk size of a checkpoint generation's
// files (0 for generation 0 or missing files).
func (l *Log) statCheckpoint(gen int) int64 {
	if gen == 0 {
		return 0
	}
	var total int64
	for _, name := range []string{checkpointSnapshotName(gen), checkpointExplicitName(gen)} {
		if fi, err := l.fs.Stat(filepath.Join(l.dir, name)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

// Meta returns the opaque client string recorded in the manifest ("" if
// none was ever set).
func (l *Log) Meta() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.man.Meta
}

// SetMeta durably records an opaque client string in the manifest.
func (l *Log) SetMeta(meta string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	m := l.man
	m.Meta = meta
	return l.writeManifest(m)
}

func (l *Log) loadManifest() error {
	b, err := l.fs.ReadFile(filepath.Join(l.dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		l.man = manifest{Version: Version, FirstSegment: 1}
		return l.writeManifest(l.man)
	}
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return fmt.Errorf("%w: unreadable manifest: %v", ErrCorrupt, err)
	}
	if m.Version != Version {
		return fmt.Errorf("%w: unsupported log version %d", ErrCorrupt, m.Version)
	}
	if m.FirstSegment < 1 || m.Checkpoint < 0 {
		return fmt.Errorf("%w: nonsense manifest %+v", ErrCorrupt, m)
	}
	l.man = m
	return nil
}

// writeManifest commits m via write-to-temp-then-rename.
func (l *Log) writeManifest(m manifest) error {
	if err := commitManifestFile(l.fs, l.dir, m); err != nil {
		return err
	}
	l.man = m
	return nil
}

// commitManifestFile durably writes m as dir's manifest: marshal, write
// and fsync a temp file, rename it into place, fsync the directory. The
// lock-free core shared by writeManifest and CommitCheckpoint — the
// commit protocol must exist exactly once.
func commitManifestFile(fs vfs.FS, dir string, m manifest) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := writeFileSync(fs, tmp, b); err != nil {
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	fs.SyncDir(dir)
	return nil
}

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(fs vfs.FS, path string, data []byte) error {
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sweep removes files the manifest does not reference: checkpoints of
// other generations, segments below FirstSegment, and stray temp files —
// the debris of a crash between renames and the manifest commit.
func (l *Log) sweep() error {
	entries, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		var doomed bool
		switch {
		case name == manifestName:
		case filepath.Ext(name) == ".tmp":
			doomed = true
		case isSegmentName(name):
			idx, ok := segmentIndex(name)
			doomed = !ok || idx < l.man.FirstSegment
		case isCheckpointName(name):
			gen, ok := checkpointGen(name)
			doomed = !ok || gen != l.man.Checkpoint
		}
		if doomed {
			if err := l.fs.Remove(filepath.Join(l.dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

func isSegmentName(name string) bool {
	return len(name) > len(segmentPrefix)+len(segmentSuffix) &&
		name[:len(segmentPrefix)] == segmentPrefix &&
		filepath.Ext(name) == segmentSuffix
}

func segmentIndex(name string) (int, bool) {
	var idx int
	_, err := fmt.Sscanf(name, segmentPrefix+"%08d"+segmentSuffix, &idx)
	return idx, err == nil && idx >= 1
}

func segmentName(idx int) string {
	return fmt.Sprintf("%s%08d%s", segmentPrefix, idx, segmentSuffix)
}

func isCheckpointName(name string) bool {
	return len(name) > len(ckptPrefix) && name[:len(ckptPrefix)] == ckptPrefix
}

func checkpointGen(name string) (int, bool) {
	ext := filepath.Ext(name)
	if ext != ckptSnapshot && ext != ckptExplicit {
		return 0, false
	}
	var gen int
	_, err := fmt.Sscanf(name, ckptPrefix+"%08d", &gen)
	return gen, err == nil && gen >= 1
}

func checkpointSnapshotName(gen int) string {
	return fmt.Sprintf("%s%08d%s", ckptPrefix, gen, ckptSnapshot)
}

func checkpointExplicitName(gen int) string {
	return fmt.Sprintf("%s%08d%s", ckptPrefix, gen, ckptExplicit)
}

// liveSegments lists the live segment indices in ascending order.
func (l *Log) liveSegments() ([]int, error) {
	entries, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var idxs []int
	for _, e := range entries {
		if !isSegmentName(e.Name()) {
			continue
		}
		if idx, ok := segmentIndex(e.Name()); ok && idx >= l.man.FirstSegment {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	return idxs, nil
}

// openSegments finds the live segment set and sizes, creating the first
// segment if none exists.
func (l *Log) openSegments() error {
	idxs, err := l.liveSegments()
	if err != nil {
		return err
	}
	if len(idxs) == 0 {
		return l.createSegment(l.man.FirstSegment)
	}
	l.liveSize = 0
	for _, idx := range idxs {
		fi, err := l.fs.Stat(filepath.Join(l.dir, segmentName(idx)))
		if err != nil {
			return err
		}
		l.liveSize += fi.Size()
	}
	last := idxs[len(idxs)-1]
	f, err := l.fs.OpenFile(filepath.Join(l.dir, segmentName(last)), os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	l.cur, l.curIdx, l.curSize = f, last, fi.Size()
	return nil
}

// createSegment makes segment idx the live one, writing its header.
func (l *Log) createSegment(idx int) error {
	f, err := l.fs.OpenFile(filepath.Join(l.dir, segmentName(idx)),
		os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	hdr := append(segmentMagic[:], Version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if l.opts.Fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	l.cur, l.curIdx, l.curSize, l.curFailed = f, idx, int64(len(hdr)), false
	l.liveSize += int64(len(hdr))
	return nil
}

// ReplayStats reports what Replay found and repaired.
type ReplayStats struct {
	// Records is the number of valid records replayed.
	Records int
	// TruncatedAt is the byte offset the torn segment was cut back to,
	// or -1 if no repair was needed.
	TruncatedAt int64
	// TornSegment is the index of the repaired segment (0 if none).
	TornSegment int
	// DroppedSegments counts segments discarded because they followed a
	// torn record in an earlier segment.
	DroppedSegments int
}

// Replay iterates every valid record in the live segments in append
// order, repairing the log as it goes: the first invalid frame and
// everything after it (the torn tail of a crashed process) is truncated
// away, so the log ends at the last acknowledged record and subsequent
// Appends continue from a consistent point. Replay must be called once,
// before the first Append; fn returning an error aborts the replay.
func (l *Log) Replay(fn func(Record) error) (ReplayStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	stats := ReplayStats{TruncatedAt: -1}
	if l.closed {
		return stats, ErrClosed
	}
	if l.replayed {
		return stats, fmt.Errorf("wal: Replay called twice")
	}
	l.replayed = true

	idxs, err := l.liveSegments()
	if err != nil {
		return stats, err
	}
	torn := 0 // first segment with an invalid frame, 0 if none
	for _, idx := range idxs {
		path := filepath.Join(l.dir, segmentName(idx))
		b, err := l.fs.ReadFile(path)
		if err != nil {
			return stats, err
		}
		off := len(segmentMagic) + 1
		if len(b) < off || [4]byte{b[0], b[1], b[2], b[3]} != segmentMagic || b[4] != Version {
			// Unreadable header: drop the whole segment.
			torn, off = idx, 0
		}
		if torn == 0 {
			for off < len(b) {
				rec, next, ok := scanRecord(b, off)
				if !ok {
					torn = idx
					break
				}
				if err := fn(rec); err != nil {
					return stats, err
				}
				stats.Records++
				off = next
			}
		}
		if torn == idx {
			// Cut the segment back to its last valid record.
			stats.TornSegment, stats.TruncatedAt = idx, int64(off)
			if err := l.truncateFrom(idx, int64(off), idxs, &stats); err != nil {
				return stats, err
			}
			break
		}
	}
	l.dirty = stats.Records > 0
	return stats, nil
}

// truncateFrom repairs a torn log: segment idx is truncated to size, and
// every later segment is deleted. The live segment handle is repositioned
// so appends continue at the repaired tail.
func (l *Log) truncateFrom(idx int, size int64, idxs []int, stats *ReplayStats) error {
	if l.cur != nil {
		l.cur.Close()
		l.cur = nil
	}
	for _, later := range idxs {
		if later <= idx {
			continue
		}
		if err := l.fs.Remove(filepath.Join(l.dir, segmentName(later))); err != nil {
			return err
		}
		stats.DroppedSegments++
	}
	l.liveSize = 0
	for _, i := range idxs {
		if i < idx {
			fi, err := l.fs.Stat(filepath.Join(l.dir, segmentName(i)))
			if err != nil {
				return err
			}
			l.liveSize += fi.Size()
		}
	}
	path := filepath.Join(l.dir, segmentName(idx))
	if size <= int64(len(segmentMagic)+1) {
		// Nothing valid survives, not even the header: rebuild it.
		if err := l.fs.Remove(path); err != nil {
			return err
		}
		return l.createSegment(idx)
	}
	if err := l.fs.Truncate(path, size); err != nil {
		return err
	}
	f, err := l.fs.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	l.cur, l.curIdx, l.curSize, l.curFailed = f, idx, size, false
	l.liveSize += size
	return nil
}

// Append durably adds one record to the log. When Append returns nil the
// record will survive a process crash (and a power failure, when
// Options.Fsync is set). The live segment rolls once it exceeds
// Options.SegmentSize.
func (l *Log) Append(rec Record) error { return l.append(rec, nil) }

// AppendCtx is Append carrying trace context: when ctx holds a span,
// the record's append (and its fsync, separately — the usual latency
// culprit) appear as child spans in the batch's flight trace.
func (l *Log) AppendCtx(ctx context.Context, rec Record) error {
	sp := trace.FromContext(ctx).Child("wal.append")
	err := l.append(rec, sp)
	if err != nil {
		sp.Error(err.Error())
	}
	sp.End()
	return err
}

// append is the shared body; sp may be nil.
func (l *Log) append(rec Record, sp *trace.Span) error {
	var t0 time.Time
	if l.opts.Metrics != nil {
		t0 = obs.NowIfEnabled()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := validateRecord(rec); err != nil {
		return err
	}
	var frame []byte
	frame, l.buf = frameRecord(l.buf, rec)
	if int64(len(frame)) > maxRecordLen {
		return fmt.Errorf("%w: record of %d bytes exceeds the %d-byte frame limit", ErrRejected, len(frame), maxRecordLen)
	}
	if l.cur == nil {
		return fmt.Errorf("wal: no live segment")
	}
	if l.curFailed {
		// A previous fsync on this handle failed. Its dirty pages are in
		// an unknown state and syncing it again proves nothing (the
		// kernel clears the error on report), so the handle is poisoned
		// until Recover reopens the segment by path.
		return fmt.Errorf("wal: live segment poisoned by failed fsync; Recover first")
	}
	preSize := l.curSize
	// backOut removes the frame again: when Append returns an error the
	// caller treats the batch as rejected, so a durably-written frame
	// must not survive to be replayed as acknowledged on the next Open.
	// Best-effort by handle or by path (the handle may be closed if a
	// segment roll failed halfway).
	backOut := func() {
		if l.cur == nil || l.cur.Truncate(preSize) != nil {
			l.fs.Truncate(filepath.Join(l.dir, segmentName(l.curIdx)), preSize)
		}
		l.curSize = preSize
	}
	// Seek explicitly: the handle may predate an external truncation.
	if _, err := l.cur.Seek(preSize, io.SeekStart); err != nil {
		return err
	}
	if n, err := l.cur.Write(frame); err != nil {
		if n > 0 {
			backOut()
		}
		return err
	}
	if l.opts.Fsync {
		var s0 time.Time
		if l.opts.Metrics != nil {
			s0 = obs.NowIfEnabled()
		}
		fsp := sp.Child("wal.fsync")
		l.assertSyncable()
		if err := l.cur.Sync(); err != nil {
			l.curFailed = true
			fsp.Error(err.Error())
			fsp.End()
			backOut()
			return err
		}
		fsp.End()
		if l.opts.Metrics != nil {
			l.opts.Metrics.FsyncSeconds.ObserveSince(s0)
		}
	}
	l.curSize += int64(len(frame))
	l.liveSize += int64(len(frame))
	l.dirty = true
	if l.curSize >= l.opts.SegmentSize {
		if err := l.roll(); err != nil {
			// Rolling is bookkeeping for the next record, but the caller
			// will treat this append as failed — back the record out so
			// recovery agrees with what the caller was told.
			l.liveSize -= int64(len(frame))
			backOut()
			return err
		}
	}
	l.appendSeq++
	sp.SetInt("bytes", int64(len(frame)))
	if m := l.opts.Metrics; m != nil {
		m.Appends.Inc()
		m.AppendBytes.Add(int64(len(frame)))
		m.AppendSeconds.ObserveSince(t0)
	}
	return nil
}

// roll closes the live segment and starts the next one. l.cur is nil on
// return unless a new segment was installed: even a failed Close
// releases the descriptor, and a dangling handle would make later
// truncate-by-handle repairs silently no-ops.
//
// The closed segment is fsynced only under Options.Fsync: without it the
// log promises process-crash survival only, which the page cache already
// provides — and rolls happen inside the append lock (including the
// checkpoint mark phase), where a multi-megabyte sync would stall every
// writer for disk-flush time.
func (l *Log) roll() error {
	// A roll can be reached from the checkpoint path while a fault has
	// already degraded the live segment (append faults leave a poisoned
	// handle; a half-failed roll leaves none at all). Refuse with the
	// append-path error rather than dereferencing or — worse —
	// re-fsyncing a handle whose sync already failed.
	if l.cur == nil {
		return fmt.Errorf("wal: no live segment after a failed roll; Recover first")
	}
	if l.curFailed {
		return fmt.Errorf("wal: live segment poisoned by failed fsync; Recover first")
	}
	if l.opts.Fsync {
		l.assertSyncable()
		if err := l.cur.Sync(); err != nil {
			l.curFailed = true
			return err
		}
	}
	err := l.cur.Close()
	l.cur = nil
	if err != nil {
		return err
	}
	if l.opts.Metrics != nil {
		l.opts.Metrics.SegmentRolls.Inc()
	}
	return l.createSegment(l.curIdx + 1)
}

// LiveBytes returns the total size of the live segments — the volume of
// log a recovery would have to replay, and the signal the facade uses to
// decide when to checkpoint.
func (l *Log) LiveBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.liveSize
}

// HasCheckpoint reports whether the manifest references a checkpoint.
func (l *Log) HasCheckpoint() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.man.Checkpoint != 0
}

// OpenCheckpoint opens the current checkpoint's snapshot and explicit-set
// files for reading. ok is false when no checkpoint exists.
func (l *Log) OpenCheckpoint() (snap, explicit io.ReadCloser, ok bool, err error) {
	l.mu.Lock()
	gen := l.man.Checkpoint
	l.mu.Unlock()
	if gen == 0 {
		return nil, nil, false, nil
	}
	s, err := l.fs.Open(filepath.Join(l.dir, checkpointSnapshotName(gen)))
	if err != nil {
		return nil, nil, false, err
	}
	e, err := l.fs.Open(filepath.Join(l.dir, checkpointExplicitName(gen)))
	if err != nil {
		s.Close()
		return nil, nil, false, err
	}
	return s, e, true, nil
}

// CheckpointMark identifies the log position a two-phase checkpoint
// covers: everything appended before BeginCheckpoint returned. It is
// the handle threaded through WriteCheckpointPayloads and
// CommitCheckpoint/AbortCheckpoint.
type CheckpointMark struct {
	gen       int    // generation the checkpoint installs as
	covered   int    // highest segment index the checkpoint covers
	appendSeq uint64 // append counter at mark time, for dirty accounting
}

// Gen returns the checkpoint generation the mark will install.
func (m CheckpointMark) Gen() int { return m.gen }

// BeginCheckpoint opens a two-phase checkpoint: it rolls the live
// segment — an O(1) close-and-create, the only part that excludes
// appends — and returns a mark covering every record appended so far.
// The caller then streams the payloads (WriteCheckpointPayloads) while
// appends continue into the fresh segment, and finally installs the
// manifest with CommitCheckpoint. Only one checkpoint may be in flight
// at a time; that is the caller's responsibility.
func (l *Log) BeginCheckpoint() (CheckpointMark, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return CheckpointMark{}, ErrClosed
	}
	// Roll so the covered set is exactly the segments before the new
	// live one, ending on a record boundary.
	covered := l.curIdx
	if err := l.roll(); err != nil {
		return CheckpointMark{}, err
	}
	return CheckpointMark{
		gen:       l.man.Checkpoint + 1,
		covered:   covered,
		appendSeq: l.appendSeq,
	}, nil
}

// WriteCheckpointPayloads streams the snapshot and explicit-set payloads
// for the mark to their generation-named files (write-to-temp, fsync,
// rename). It runs without the log's lock: the files are invisible to
// recovery until CommitCheckpoint installs the manifest, and concurrent
// appends proceed against the post-mark live segment. The payloads must
// reflect exactly the records the mark covers.
func (l *Log) WriteCheckpointPayloads(m CheckpointMark, writeSnapshot, writeExplicit func(io.Writer) error) error {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := writeCheckpointFile(l.fs, filepath.Join(l.dir, checkpointSnapshotName(m.gen)), writeSnapshot); err != nil {
		return err
	}
	if err := writeCheckpointFile(l.fs, filepath.Join(l.dir, checkpointExplicitName(m.gen)), writeExplicit); err != nil {
		return err
	}
	l.fs.SyncDir(l.dir)
	return nil
}

// CommitCheckpoint makes the mark's checkpoint the recovery point: it
// commits the manifest referencing the new generation, then prunes the
// covered segments and the previous generation's files. Records appended
// after the mark stay in the live segments and remain replayable — the
// checkpoint covers the log up to the mark, not up to the install.
func (l *Log) CommitCheckpoint(m CheckpointMark) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if m.gen != l.man.Checkpoint+1 {
		l.mu.Unlock()
		return fmt.Errorf("wal: stale checkpoint mark (generation %d, log at %d)", m.gen, l.man.Checkpoint)
	}
	oldGen := l.man.Checkpoint
	oldFirst := l.man.FirstSegment
	mm := l.man
	mm.Checkpoint, mm.FirstSegment = m.gen, m.covered+1
	l.mu.Unlock()

	// Write and fsync the manifest OUTSIDE the lock: the fsync forces a
	// filesystem-journal commit, which on ordered-data filesystems also
	// writes back the appends in flight — holding the lock across it
	// would stall every writer for exactly the disk time the two-phase
	// split exists to hide. Safe unlocked: checkpoints are serialized by
	// the caller and nothing else rewrites the manifest mid-session.
	if err := commitManifestFile(l.fs, l.dir, mm); err != nil {
		return err
	}

	var pruned int64
	for idx := oldFirst; idx <= m.covered; idx++ {
		if fi, err := l.fs.Stat(filepath.Join(l.dir, segmentName(idx))); err == nil {
			pruned += fi.Size()
		}
	}
	l.mu.Lock()
	l.man = mm
	l.liveSize -= pruned
	// Dirty exactly when records were appended after the mark: those live
	// in the post-mark segments the new checkpoint does not cover.
	l.dirty = l.appendSeq != m.appendSeq
	l.ckptBytes = l.statCheckpoint(m.gen)
	l.mu.Unlock()

	// The manifest is the commit point; pruning is cleanup that the next
	// Open would redo, so errors here are not fatal — and it too runs
	// outside the lock: unlinking megabytes of covered segments can
	// stall in the filesystem journal, and appends must not wait behind
	// that. The files are immutable and unreferenced by now, so nothing
	// races.
	for idx := oldFirst; idx <= m.covered; idx++ {
		l.fs.Remove(filepath.Join(l.dir, segmentName(idx)))
	}
	if oldGen != 0 {
		l.fs.Remove(filepath.Join(l.dir, checkpointSnapshotName(oldGen)))
		l.fs.Remove(filepath.Join(l.dir, checkpointExplicitName(oldGen)))
	}
	return nil
}

// AbortCheckpoint discards the payload files of a checkpoint that will
// not be committed (stream failure, shutdown). Best-effort: anything it
// misses is unreferenced by the manifest and swept by the next Open.
func (l *Log) AbortCheckpoint(m CheckpointMark) {
	l.mu.Lock()
	committed := l.man.Checkpoint
	l.mu.Unlock()
	if m.gen == committed {
		return
	}
	l.fs.Remove(filepath.Join(l.dir, checkpointSnapshotName(m.gen)))
	l.fs.Remove(filepath.Join(l.dir, checkpointExplicitName(m.gen)))
}

// WriteCheckpoint atomically installs a new checkpoint covering every
// record appended so far, composing the two-phase primitives
// back-to-back. The caller must guarantee the payloads reflect at least
// every record acknowledged before the call and that no appends land
// between the mark and the payload capture (in practice: the store is
// quiescent and appends are blocked).
func (l *Log) WriteCheckpoint(writeSnapshot, writeExplicit func(io.Writer) error) error {
	m, err := l.BeginCheckpoint()
	if err != nil {
		return err
	}
	if err := l.WriteCheckpointPayloads(m, writeSnapshot, writeExplicit); err != nil {
		l.AbortCheckpoint(m)
		return err
	}
	return l.CommitCheckpoint(m)
}

// CheckpointBytes returns the on-disk size of the current checkpoint (0
// if none) — the cost of writing the next one, roughly. The facade uses
// it to space automatic checkpoints proportionally to the store size
// instead of rewriting a huge store every fixed number of log bytes.
func (l *Log) CheckpointBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptBytes
}

// Dirty reports whether the log holds records no checkpoint covers — if
// false, the current checkpoint (or, for an empty log, nothing at all)
// already captures every acknowledged operation, and checkpointing again
// would rewrite identical state.
func (l *Log) Dirty() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dirty
}

// syncChunk bounds how much dirty checkpoint payload accumulates before
// writeback of it is kicked off in the background. One store-sized
// fsync at the end would force a single huge filesystem-journal commit,
// and concurrent small writes — the log appends the two-phase
// checkpoint exists to keep flowing — can stall behind it; streaming
// the writeback keeps the final commit, and therefore the worst writer
// stall, small.
const syncChunk = 256 << 10

// chunkSyncWriter starts asynchronous writeback every syncChunk bytes
// written (see flushRange).
type chunkSyncWriter struct {
	f          vfs.File
	off, since int64
}

func (w *chunkSyncWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.since += int64(n)
	if err == nil && w.since >= syncChunk {
		flushRange(w.f, w.off, w.since)
		w.off += w.since
		w.since = 0
	}
	return n, err
}

// writeCheckpointFile streams write's output to path.tmp, fsyncs (with
// writeback streamed along the way so the sync's journal commit stays
// small), and renames it into place.
func writeCheckpointFile(fs vfs.FS, path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := &chunkSyncWriter{f: f}
	if err := write(w); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	settleWriteback(f, w.off+w.since)
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.Rename(tmp, path)
}

// Recover re-arms a log whose live segment hit a write, fsync, or roll
// fault: it discards the poisoned handle (never re-fsyncing it — a
// failed fsync's dirty pages are in an unknown state and the kernel
// clears the error once reported), removes half-created segments a
// failed roll left above the live index (their O_EXCL creation would
// otherwise fail forever), truncates the live segment back to its
// acknowledged size, reopens it by path, and proves the directory
// writable again with a write+fsync+remove probe. Returns nil when the
// log is ready to append; an error means the fault persists.
func (l *Log) Recover() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.cur != nil {
		l.cur.Close() // never Sync here: the handle may carry a failed fsync
		l.cur = nil
		l.curFailed = false
	}
	idxs, err := l.liveSegments()
	if err != nil {
		return err
	}
	for _, idx := range idxs {
		if idx > l.curIdx {
			if err := l.fs.Remove(filepath.Join(l.dir, segmentName(idx))); err != nil {
				return err
			}
		}
	}
	path := filepath.Join(l.dir, segmentName(l.curIdx))
	if fi, err := l.fs.Stat(path); err != nil {
		return err
	} else if fi.Size() > l.curSize {
		// A torn or backed-out write left bytes past the acknowledged
		// tail; cut them off so they can never replay.
		if err := l.fs.Truncate(path, l.curSize); err != nil {
			return err
		}
	}
	f, err := l.fs.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// Probe durability end to end on a scratch file: a sweep removes
	// probe.tmp on the next Open if we crash between write and remove.
	probe := filepath.Join(l.dir, "probe.tmp")
	if err := writeFileSync(l.fs, probe, []byte("probe")); err != nil {
		f.Close()
		l.fs.Remove(probe)
		return err
	}
	if err := l.fs.Remove(probe); err != nil {
		f.Close()
		return err
	}
	l.cur = f
	return nil
}

// Close syncs and closes the live segment. The log must not be used
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.cur != nil {
		// A handle poisoned by a failed fsync is closed without syncing:
		// re-fsyncing it would report clean while proving nothing.
		if !l.curFailed {
			err = l.cur.Sync()
		}
		if cerr := l.cur.Close(); err == nil {
			err = cerr
		}
		l.cur = nil
	}
	if l.unlock != nil {
		l.unlock()
		l.unlock = nil
	}
	return err
}
