package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWAL feeds arbitrary bytes to the segment scanner as a segment
// file. Invariants under fuzzing:
//
//   - Open and Replay never panic, whatever the bytes are.
//   - Every replayed record re-encodes to exactly the bytes it was
//     decoded from, so the recovered records form a byte-prefix of the
//     file — i.e. corruption never invents or reorders records, and
//     every record before the corruption point is recovered.
//   - After repair the log accepts a fresh append and replays it.
func FuzzWAL(f *testing.F) {
	// Seed: a well-formed segment with a few records.
	valid := append(segmentMagic[:], Version)
	for i := 0; i < 3; i++ {
		valid = appendRecord(valid, testRecord(i))
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])       // torn tail
	f.Add([]byte{})                   // empty file
	f.Add([]byte("SLWL\x01"))         // header only
	f.Add([]byte("not a wal at all")) // bad magic
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/2] ^= 0xff // mid-file corruption
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o666); err != nil {
			t.Skip()
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on arbitrary segment bytes: %v", err)
		}
		reencoded := append(segmentMagic[:], Version)
		n := 0
		if _, err := l.Replay(func(r Record) error {
			reencoded = appendRecord(reencoded, r)
			n++
			return nil
		}); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		if n > 0 {
			if len(data) < len(reencoded) || !bytes.Equal(data[:len(reencoded)], reencoded) {
				t.Fatalf("recovered records are not a byte-prefix of the input (%d records)", n)
			}
		}
		if err := l.Append(testRecord(42)); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		n2 := 0
		if _, err := l2.Replay(func(Record) error { n2++; return nil }); err != nil {
			t.Fatalf("second replay: %v", err)
		}
		if n2 != n+1 {
			t.Fatalf("after repair+append replay saw %d records, want %d", n2, n+1)
		}
	})
}
