package wal

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/rdf"
)

func testRecord(i int) Record {
	dict := rdf.NewDictionary()
	id := dict.EncodeIRI("http://example.org/x")
	return Record{
		Op: OpAssert,
		Terms: []TermEntry{
			{ID: id, Term: rdf.NewIRI("http://example.org/x")},
		},
		Triples: []rdf.Triple{
			rdf.T(id, rdf.IDType, rdf.ID(uint64(i)+1)),
			rdf.T(rdf.ID(uint64(i)+2), rdf.IDSubClassOf, id),
		},
	}
}

func replayAll(t *testing.T, l *Log) ([]Record, ReplayStats) {
	t.Helper()
	var recs []Record
	stats, err := l.Replay(func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, stats := replayAll(t, l); stats.Records != 0 {
		t.Fatalf("fresh log replayed %d records", stats.Records)
	}
	var want []Record
	for i := 0; i < 10; i++ {
		rec := testRecord(i)
		if i%3 == 0 {
			rec.Op = OpRetract
			rec.Terms = nil
		}
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, stats := replayAll(t, l2)
	if stats.TruncatedAt != -1 || stats.DroppedSegments != 0 {
		t.Fatalf("clean log needed repair: %+v", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op ||
			!reflect.DeepEqual(got[i].Triples, want[i].Triples) ||
			len(got[i].Terms) != len(want[i].Terms) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
		for j := range want[i].Terms {
			if got[i].Terms[j].ID != want[i].Terms[j].ID ||
				got[i].Terms[j].Term != want[i].Terms[j].Term {
				t.Fatalf("record %d term %d mismatch", i, j)
			}
		}
	}
}

func TestSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	segs := 0
	for _, e := range entries {
		if isSegmentName(e.Name()) {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("expected multiple segments, found %d", segs)
	}
	l2, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, _ := replayAll(t, l2)
	if len(got) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(got))
	}
}

func TestCheckpointPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	for i := 0; i < 10; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := []byte("snapshot-payload")
	err = l.WriteCheckpoint(
		func(w io.Writer) error { _, err := w.Write(snap); return err },
		func(w io.Writer) error { return WriteExplicit(w, nil) },
	)
	if err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	// Two more records after the checkpoint: the tail.
	if err := l.Append(testRecord(100)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(101)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !l2.HasCheckpoint() {
		t.Fatal("checkpoint not found after reopen")
	}
	s, e, ok, err := l2.OpenCheckpoint()
	if err != nil || !ok {
		t.Fatalf("OpenCheckpoint: ok=%v err=%v", ok, err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(s)
	s.Close()
	if !bytes.Equal(buf.Bytes(), snap) {
		t.Fatalf("snapshot payload corrupted: %q", buf.Bytes())
	}
	ts, err := ReadExplicit(e)
	e.Close()
	if err != nil || len(ts) != 0 {
		t.Fatalf("ReadExplicit: %v %v", ts, err)
	}
	got, _ := replayAll(t, l2)
	if len(got) != 2 {
		t.Fatalf("tail replay has %d records, want 2 (checkpointed records must be pruned)", len(got))
	}
}

func TestExplicitRoundTrip(t *testing.T) {
	ts := []rdf.Triple{
		rdf.T(1, 2, 3),
		rdf.T(rdf.ID(1<<62|7), rdf.IDType, rdf.ID(2<<62|9)),
	}
	var buf bytes.Buffer
	if err := WriteExplicit(&buf, ts); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	got, err := ReadExplicit(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ts) {
		t.Fatalf("round trip: got %v want %v", got, ts)
	}
	// Flip one byte anywhere: must error, never panic.
	for i := range raw {
		mutated := append([]byte(nil), raw...)
		mutated[i] ^= 0x40
		if _, err := ReadExplicit(bytes.NewReader(mutated)); err == nil {
			// A flip in the length byte region could still checksum-fail;
			// any successful parse here means the CRC did not cover i.
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
}

// TestTornTailTruncation corrupts or truncates the live segment at every
// byte offset and checks that (a) replay never panics or errors, (b) all
// records before the damage survive, and (c) the log accepts appends
// afterwards and a further reopen sees a consistent file.
func TestTornTailTruncation(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	// Record the segment size after each append: boundaries[k] is the
	// file size once k records are acknowledged.
	seg := filepath.Join(master, segmentName(1))
	var boundaries []int64
	fi, _ := os.Stat(seg)
	boundaries = append(boundaries, fi.Size())
	const n = 8
	for i := 0; i < n; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, fi.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// acknowledged(cut) = number of records wholly before offset cut.
	acknowledged := func(cut int64) int {
		k := 0
		for k+1 < len(boundaries) && boundaries[k+1] <= cut {
			k++
		}
		return k
	}

	for cut := int64(0); cut <= int64(len(raw)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), raw[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		got, stats := replayAll(t, l)
		want := acknowledged(cut)
		if len(got) != want {
			t.Fatalf("cut=%d: recovered %d records, want %d (stats %+v)", cut, len(got), want, stats)
		}
		// The repaired log must accept appends and replay them next time.
		if err := l.Append(testRecord(99)); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		got2, stats2 := replayAll(t, l2)
		if stats2.TruncatedAt != -1 {
			t.Fatalf("cut=%d: second replay still repairing: %+v", cut, stats2)
		}
		if len(got2) != want+1 {
			t.Fatalf("cut=%d: after append, recovered %d records, want %d", cut, len(got2), want+1)
		}
		l2.Close()
	}
}

// TestMidLogCorruption flips bytes in the middle of a multi-segment log:
// every record strictly before the corrupted frame must survive, later
// segments are dropped, and replay must never panic.
func TestMidLogCorruption(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, Options{SegmentSize: 96})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	const n = 12
	for i := 0; i < n; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	idxs := []int{}
	entries, _ := os.ReadDir(master)
	for _, e := range entries {
		if idx, ok := segmentIndex(e.Name()); ok {
			idxs = append(idxs, idx)
		}
	}
	if len(idxs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(idxs))
	}

	// Corrupt one byte of the first segment, at a stride of offsets.
	raw, err := os.ReadFile(filepath.Join(master, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(raw); off += 3 {
		dir := t.TempDir()
		if err := os.CopyFS(dir, os.DirFS(master)); err != nil {
			t.Fatal(err)
		}
		mutated := append([]byte(nil), raw...)
		mutated[off] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), mutated, 0o666); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("off=%d: Open: %v", off, err)
		}
		got, stats := replayAll(t, l)
		if len(got) > n {
			t.Fatalf("off=%d: replayed %d > %d ingested", off, len(got), n)
		}
		// Whatever survived must be a prefix of what we wrote.
		for i, r := range got {
			want := testRecord(i)
			if !reflect.DeepEqual(r.Triples, want.Triples) {
				t.Fatalf("off=%d: record %d not a prefix record", off, i)
			}
		}
		if stats.TornSegment == 1 && stats.DroppedSegments == 0 && len(idxs) > 1 {
			t.Fatalf("off=%d: torn first segment but later segments kept", off)
		}
		l.Close()
	}
}

func TestDirectoryLockExcludesSecondOpen(t *testing.T) {
	if runtime.GOOS == "windows" || runtime.GOOS == "plan9" || runtime.GOOS == "js" {
		t.Skip("flock unsupported; lockDir is a no-op here")
	}
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a locked log directory succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	l2.Close()
}

func TestCheckpointBytesTracked(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	if l.CheckpointBytes() != 0 {
		t.Fatalf("fresh log reports checkpoint bytes %d", l.CheckpointBytes())
	}
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	err = l.WriteCheckpoint(
		func(w io.Writer) error { _, err := w.Write(make([]byte, 1000)); return err },
		func(w io.Writer) error { return WriteExplicit(w, nil) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.CheckpointBytes(); got < 1000 {
		t.Fatalf("CheckpointBytes = %d, want >= 1000", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.CheckpointBytes(); got < 1000 {
		t.Fatalf("CheckpointBytes after reopen = %d, want >= 1000", got)
	}
}
