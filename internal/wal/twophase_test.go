package wal

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestTwoPhaseCheckpointCoversMarkOnly exercises the mark/stream/commit
// split: records appended between BeginCheckpoint and CommitCheckpoint
// must stay replayable (the checkpoint covers the log up to the mark,
// not up to the install), and dirty accounting must reflect them.
func TestTwoPhaseCheckpointCoversMarkOnly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	for i := 0; i < 5; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := l.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Appends land while the payloads stream.
	if err := l.Append(testRecord(100)); err != nil {
		t.Fatal(err)
	}
	snap := []byte("view-at-mark")
	err = l.WriteCheckpointPayloads(m,
		func(w io.Writer) error { _, err := w.Write(snap); return err },
		func(w io.Writer) error { return WriteExplicit(w, nil) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(101)); err != nil {
		t.Fatal(err)
	}
	if err := l.CommitCheckpoint(m); err != nil {
		t.Fatal(err)
	}
	if !l.Dirty() {
		t.Fatal("post-mark appends exist but the log reports clean")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	s, e, ok, err := l2.OpenCheckpoint()
	if err != nil || !ok {
		t.Fatalf("OpenCheckpoint: ok=%v err=%v", ok, err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(s)
	s.Close()
	e.Close()
	if !bytes.Equal(buf.Bytes(), snap) {
		t.Fatalf("snapshot payload = %q, want %q", buf.Bytes(), snap)
	}
	got, _ := replayAll(t, l2)
	if len(got) != 2 {
		t.Fatalf("tail replay has %d records, want the 2 post-mark ones", len(got))
	}
}

// TestTwoPhaseCheckpointNoTailIsClean commits a checkpoint with no
// appends after the mark: the log must report clean (a read-only session
// afterwards must not re-checkpoint).
func TestTwoPhaseCheckpointNoTailIsClean(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	replayAll(t, l)
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	m, err := l.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	err = l.WriteCheckpointPayloads(m,
		func(w io.Writer) error { _, err := w.Write([]byte("x")); return err },
		func(w io.Writer) error { return WriteExplicit(w, nil) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CommitCheckpoint(m); err != nil {
		t.Fatal(err)
	}
	if l.Dirty() {
		t.Fatal("no post-mark appends but the log reports dirty")
	}
}

// TestAbortCheckpointRemovesPayloads aborts a streamed-but-uncommitted
// checkpoint and checks nothing of it survives, on disk or in the
// manifest.
func TestAbortCheckpointRemovesPayloads(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	replayAll(t, l)
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	m, err := l.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	err = l.WriteCheckpointPayloads(m,
		func(w io.Writer) error { _, err := w.Write([]byte("doomed")); return err },
		func(w io.Writer) error { return WriteExplicit(w, nil) },
	)
	if err != nil {
		t.Fatal(err)
	}
	l.AbortCheckpoint(m)
	if l.HasCheckpoint() {
		t.Fatal("aborted checkpoint is referenced by the manifest")
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointSnapshotName(m.Gen()))); !os.IsNotExist(err) {
		t.Fatalf("aborted snapshot payload still on disk: %v", err)
	}
	if !l.Dirty() {
		t.Fatal("abort must leave the log dirty: its records are still uncovered")
	}
	// The log keeps working: the next checkpoint reuses the generation.
	err = l.WriteCheckpoint(
		func(w io.Writer) error { _, err := w.Write([]byte("second try")); return err },
		func(w io.Writer) error { return WriteExplicit(w, nil) },
	)
	if err != nil {
		t.Fatalf("checkpoint after abort: %v", err)
	}
	if !l.HasCheckpoint() {
		t.Fatal("checkpoint after abort not installed")
	}
}

// TestCommitStaleMarkRefused refuses to commit a mark from a superseded
// generation.
func TestCommitStaleMarkRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	replayAll(t, l)
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	m1, err := l.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	// A full checkpoint commits in between (the facade never does this —
	// one in flight at a time — but the log must still defend itself).
	err = l.WriteCheckpoint(
		func(w io.Writer) error { _, err := w.Write([]byte("winner")); return err },
		func(w io.Writer) error { return WriteExplicit(w, nil) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CommitCheckpoint(m1); err == nil {
		t.Fatal("stale mark committed")
	}
}
