package wal

import "repro/internal/obs"

// Metrics is the log's optional instrumentation, registered into an
// obs.Registry by NewMetrics and handed in through Options. A nil
// Metrics keeps the log entirely uninstrumented (no clock reads on the
// append path).
type Metrics struct {
	// AppendSeconds times Append end to end: framing, the durable
	// write, the fsync when enabled, and any segment roll.
	AppendSeconds *obs.Histogram
	// FsyncSeconds times the per-append file sync (recorded only with
	// Options.Fsync set) — the power-failure-guarantee tax, and the
	// stall a saturated device shows up as first.
	FsyncSeconds *obs.Histogram
	// Appends and AppendBytes count durably acknowledged records and
	// their framed bytes.
	Appends     *obs.Counter
	AppendBytes *obs.Counter
	// SegmentRolls counts live-segment rollovers.
	SegmentRolls *obs.Counter
}

// NewMetrics registers the log's instruments in reg under the
// slider_wal_* names.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		AppendSeconds: reg.Histogram("slider_wal_append_seconds",
			"Write-ahead-log append latency (framing, durable write, fsync, segment roll).", nil),
		FsyncSeconds: reg.Histogram("slider_wal_fsync_seconds",
			"Per-append segment fsync latency (recorded only when fsync is enabled).", nil),
		Appends: reg.Counter("slider_wal_appends_total",
			"Durably acknowledged write-ahead-log records."),
		AppendBytes: reg.Counter("slider_wal_append_bytes_total",
			"Framed bytes appended to the write-ahead log."),
		SegmentRolls: reg.Counter("slider_wal_segment_rolls_total",
			"Write-ahead-log live-segment rollovers."),
	}
}
