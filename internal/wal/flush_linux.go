//go:build linux

package wal

import (
	"os"
	"syscall"

	"repro/internal/vfs"
)

// flushRange asks the kernel to start writing back [off, off+n) of f
// without waiting and without forcing a filesystem-journal commit. The
// checkpoint payload writer calls it per chunk so that by the time the
// final durability fsync runs, nearly everything is already on disk and
// the journal commit — which concurrent log appends can stall behind —
// is short. Purely an I/O-smoothing hint: durability still comes from
// the final fsync, so errors are ignored and a no-op fallback is fine.
// Only real files get the hint: a fault-injected vfs.File has no usable
// descriptor, and skipping the hint changes nothing but smoothness.
func flushRange(f vfs.File, off, n int64) {
	osf, ok := f.(*os.File)
	if !ok {
		return
	}
	// 0x2 is SYNC_FILE_RANGE_WRITE (not exported by package syscall):
	// initiate writeback of dirty pages in the range that are not
	// already in flight; do not wait for them.
	syscall.Syscall6(syscall.SYS_SYNC_FILE_RANGE, osf.Fd(), uintptr(off), uintptr(n), 0x2, 0, 0)
}

// settleWriteback writes back [0, n) of f and waits for it, in bounded
// chunks, without forcing a filesystem-journal commit. Called on the
// checkpoint goroutine before the final durability fsync: with the data
// already on disk, that fsync commits only metadata, so the journal
// commit — and the stall concurrent log appends can observe behind it —
// stays tiny. Best-effort like flushRange.
func settleWriteback(f vfs.File, n int64) {
	osf, ok := f.(*os.File)
	if !ok {
		return
	}
	const chunk = 4 << 20
	// 0x1|0x2|0x4: WAIT_BEFORE | WRITE | WAIT_AFTER.
	for off := int64(0); off < n; off += chunk {
		c := min(chunk, n-off)
		syscall.Syscall6(syscall.SYS_SYNC_FILE_RANGE, osf.Fd(), uintptr(off), uintptr(c), 0x1|0x2|0x4, 0, 0)
	}
}
