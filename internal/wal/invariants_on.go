//go:build slider_invariants

package wal

// invariantsEnabled mirrors the store/maintenance/trace convention: the
// checking implementations compile only under the slider_invariants
// build tag; invariants_off.go supplies no-op twins whose constant
// false lets the compiler delete every call site. Run with:
//
//	go test -race -tags slider_invariants ./internal/wal
const invariantsEnabled = true

// assertSyncable panics if the live segment handle is about to be
// fsynced after a previous fsync on it failed. The kernel clears a
// file's writeback error once it has been reported, so a second fsync
// on the same descriptor can return nil while the data never reached
// disk — recovery must reopen the segment by path instead (INVARIANTS:
// recovery never re-fsyncs a failed fd). Callers hold l.mu.
func (l *Log) assertSyncable() {
	if l.curFailed {
		panic("wal invariant: fsync attempted on a handle whose previous fsync failed; reopen by path instead")
	}
}
