//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/LOCK so two processes
// cannot append to (and checkpoint-prune under) the same log. The lock
// dies with the file descriptor, so a crashed process never leaves a
// stale lock behind.
func lockDir(dir string) (release func(), err error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %s is in use by another process: %w", dir, err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
