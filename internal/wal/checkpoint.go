package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"iter"
	"slices"

	"repro/internal/rdf"
)

// The checkpoint's explicit-set sidecar records which triples of the
// snapshotted (materialised) store were explicitly asserted, so
// delete-and-rederive keeps working across restarts. Format:
//
//	magic "SLEX" | version u8 | #triples uvarint |
//	per triple: s, p, o uvarints | crc32 of everything before it, u32 LE
var explicitMagic = [4]byte{'S', 'L', 'E', 'X'}

// WriteExplicitSeq writes n explicit triples from seq in the sidecar
// format, streaming in bounded chunks: the set can be large, and a
// checkpoint holds the ingest lock, so a contiguous whole-set buffer (or
// slice) would be a memory spike at the worst moment. seq must yield
// exactly n triples.
func WriteExplicitSeq(w io.Writer, n int, seq iter.Seq[rdf.Triple]) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	h := crc32.NewIEEE()
	body := io.MultiWriter(bw, h)
	buf := make([]byte, 0, 64)
	buf = append(buf, explicitMagic[:]...)
	buf = append(buf, Version)
	buf = appendUvarint(buf, uint64(n))
	if _, err := body.Write(buf); err != nil {
		return err
	}
	written := 0
	for t := range seq {
		buf = buf[:0]
		buf = appendUvarint(buf, uint64(t.S))
		buf = appendUvarint(buf, uint64(t.P))
		buf = appendUvarint(buf, uint64(t.O))
		if _, err := body.Write(buf); err != nil {
			return err
		}
		written++
	}
	if written != n {
		return fmt.Errorf("wal: explicit set yielded %d triples, caller declared %d", written, n)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], h.Sum32())
	if _, err := bw.Write(crc[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteExplicit is the slice form of WriteExplicitSeq.
func WriteExplicit(w io.Writer, ts []rdf.Triple) error {
	return WriteExplicitSeq(w, len(ts), slices.Values(ts))
}

// ReadExplicit reads an explicit-set sidecar written by WriteExplicit.
func ReadExplicit(r io.Reader) ([]rdf.Triple, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(b) < len(explicitMagic)+1+4 {
		return nil, fmt.Errorf("%w: truncated explicit set", ErrCorrupt)
	}
	body, crc := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("%w: explicit set checksum mismatch", ErrCorrupt)
	}
	if [4]byte{body[0], body[1], body[2], body[3]} != explicitMagic || body[4] != Version {
		return nil, fmt.Errorf("%w: bad explicit set header", ErrCorrupt)
	}
	c := &byteCursor{b: body, off: len(explicitMagic) + 1}
	n := c.uvarint()
	if c.failed || n > uint64(c.remaining())/3+1 {
		return nil, fmt.Errorf("%w: bad explicit set count", ErrCorrupt)
	}
	ts := make([]rdf.Triple, 0, n)
	for i := uint64(0); i < n; i++ {
		s := rdf.ID(c.uvarint())
		p := rdf.ID(c.uvarint())
		o := rdf.ID(c.uvarint())
		if !c.ok() {
			return nil, fmt.Errorf("%w: truncated explicit triple", ErrCorrupt)
		}
		if s == rdf.Any || p == rdf.Any || o == rdf.Any {
			return nil, fmt.Errorf("%w: explicit triple with wildcard component", ErrCorrupt)
		}
		ts = append(ts, rdf.T(s, p, o))
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in explicit set", ErrCorrupt)
	}
	return ts, nil
}
