package wal

import (
	"fmt"
	"io"
	"reflect"
	"testing"

	"repro/internal/vfs"
)

// countCleanFsyncs runs the fixed append workload with no faults armed
// and reports how many fsyncs it performs — the size of the fault
// matrix.
func countCleanFsyncs(t *testing.T, nRecords int, segSize int64) int64 {
	t.Helper()
	ffs := vfs.NewFault(vfs.OS)
	l, err := Open(t.TempDir(), Options{SegmentSize: segSize, Fsync: true, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	for i := 0; i < nRecords; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatalf("clean Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return ffs.Fsyncs()
}

// TestEveryFsyncFaultMatrix injects a one-shot fsync failure at every
// fsync position a fixed workload performs — append syncs, roll syncs,
// new-segment header syncs, the close sync — and asserts, for each
// position: Recover re-arms the log, the faulted batch retries
// successfully, recovery never re-fsyncs the failed descriptor, and a
// reopen replays exactly the acknowledged records. The analogue of the
// every-byte torn-tail matrix, for runtime fsync faults.
func TestEveryFsyncFaultMatrix(t *testing.T) {
	const nRecords = 12
	const segSize = 512 // small: the workload rolls several times
	total := countCleanFsyncs(t, nRecords, segSize)
	if total < int64(nRecords) {
		t.Fatalf("workload only fsyncs %d times, expected at least one per record", total)
	}
	for k := int64(1); k <= total; k++ {
		t.Run(fmt.Sprintf("fsync%02d", k), func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFault(vfs.OS)
			l, err := Open(dir, Options{SegmentSize: segSize, Fsync: true, FS: ffs})
			if err != nil {
				t.Fatal(err)
			}
			replayAll(t, l)
			ffs.FailFsync(int(k), nil)
			var acked []Record
			for i := 0; i < nRecords; i++ {
				rec := testRecord(i)
				if err := l.Append(rec); err != nil {
					// Transient fault: recover (reopen by path, never
					// re-fsync) and retry the same batch once.
					if rerr := l.Recover(); rerr != nil {
						t.Fatalf("Recover after fsync fault %d: %v", k, rerr)
					}
					if err := l.Append(rec); err != nil {
						t.Fatalf("retry after Recover: %v", err)
					}
				}
				acked = append(acked, rec)
			}
			// The fault may land on Close's final sync; the records are
			// already acknowledged (written to the file), so a Close error
			// is surfaced but loses nothing.
			_ = l.Close()
			if n := ffs.RefsyncViolations(); n != 0 {
				t.Fatalf("recovery re-fsynced a failed descriptor %d times", n)
			}

			l2, err := Open(dir, Options{SegmentSize: segSize, Fsync: true})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer l2.Close()
			got, _ := replayAll(t, l2)
			if len(got) != len(acked) {
				t.Fatalf("replayed %d records, acknowledged %d", len(got), len(acked))
			}
			for i := range acked {
				if !reflect.DeepEqual(got[i], acked[i]) {
					t.Fatalf("record %d: replayed %+v, acknowledged %+v", i, got[i], acked[i])
				}
			}
		})
	}
}

// junkPayload is a trivial checkpoint payload writer: the Log never
// interprets payload bytes, so the rename matrix does not need real
// snapshots.
func junkPayload(w io.Writer) error {
	_, err := w.Write([]byte("payload"))
	return err
}

// TestEveryRenameFaultMatrix injects a one-shot rename failure at every
// rename a fixed append-checkpoint-append workload performs (checkpoint
// snapshot install, explicit-set install, manifest commit) and asserts:
// a failed checkpoint is retryable after Recover, the manifest commit
// point keeps replay exactly consistent with what was acknowledged, and
// no acknowledged record is lost whichever rename died.
func TestEveryRenameFaultMatrix(t *testing.T) {
	const preRecords, postRecords = 5, 3
	// A committed checkpoint covers the pre-records; replay then yields
	// only the post-records. Every rename position in the checkpoint
	// (snapshot, explicit, manifest) must preserve that contract after a
	// recover-and-retry.
	const checkpointRenames = 3
	for k := 1; k <= checkpointRenames; k++ {
		t.Run(fmt.Sprintf("rename%d", k), func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFault(vfs.OS)
			l, err := Open(dir, Options{FS: ffs})
			if err != nil {
				t.Fatal(err)
			}
			replayAll(t, l)
			var acked []Record
			for i := 0; i < preRecords; i++ {
				rec := testRecord(i)
				if err := l.Append(rec); err != nil {
					t.Fatalf("Append %d: %v", i, err)
				}
				acked = append(acked, rec)
			}
			ffs.FailRename(k, nil)
			if err := l.WriteCheckpoint(junkPayload, junkPayload); err == nil {
				t.Fatalf("checkpoint with rename fault %d unexpectedly committed", k)
			}
			// The records are still acknowledged and must still replay if
			// we crashed here; instead, recover and retry the checkpoint.
			if err := l.Recover(); err != nil {
				t.Fatalf("Recover after rename fault: %v", err)
			}
			if err := l.WriteCheckpoint(junkPayload, junkPayload); err != nil {
				t.Fatalf("checkpoint retry: %v", err)
			}
			var post []Record
			for i := 0; i < postRecords; i++ {
				rec := testRecord(100 + i)
				if err := l.Append(rec); err != nil {
					t.Fatalf("post-checkpoint Append %d: %v", i, err)
				}
				post = append(post, rec)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if n := ffs.RefsyncViolations(); n != 0 {
				t.Fatalf("recovery re-fsynced a failed descriptor %d times", n)
			}

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer l2.Close()
			if !l2.HasCheckpoint() {
				t.Fatal("retried checkpoint did not survive reopen")
			}
			got, _ := replayAll(t, l2)
			if len(got) != len(post) {
				t.Fatalf("replayed %d records, want the %d post-checkpoint ones", len(got), len(post))
			}
			for i := range post {
				if !reflect.DeepEqual(got[i], post[i]) {
					t.Fatalf("record %d: replayed %+v, want %+v", i, got[i], post[i])
				}
			}
			_ = acked
		})
	}
}

// TestTornWriteRecovery tears an append's write in half (the torn
// half-frame a real ENOSPC or power loss produces), then recovers: the
// partial frame must be cut back out so it can never replay, and the
// retried batch lands cleanly.
func TestTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.OS)
	l, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	var acked []Record
	for i := 0; i < 3; i++ {
		rec := testRecord(i)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, rec)
	}
	ffs.TornWrite(1)
	rec := testRecord(3)
	if err := l.Append(rec); err == nil {
		t.Fatal("torn write did not surface")
	}
	if err := l.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := l.Append(rec); err != nil {
		t.Fatalf("retry: %v", err)
	}
	acked = append(acked, rec)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, stats := replayAll(t, l2)
	if stats.TruncatedAt != -1 {
		t.Fatalf("recovered log still needed repair on reopen: %+v", stats)
	}
	if len(got) != len(acked) {
		t.Fatalf("replayed %d records, acknowledged %d", len(got), len(acked))
	}
}

// TestEnospcRecovery exhausts a write budget mid-append (ENOSPC with the
// in-budget prefix landed), then lifts the budget and recovers.
func TestEnospcRecovery(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.OS)
	l, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, l)
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	ffs.SetWriteBudget(4) // the next frame tears four bytes in
	rec := testRecord(1)
	if err := l.Append(rec); err == nil {
		t.Fatal("ENOSPC did not surface")
	}
	// Space is still exhausted: Recover's probe must fail, not lie.
	if err := l.Recover(); err == nil {
		t.Fatal("Recover succeeded while the disk is still full")
	}
	ffs.Clear()
	if err := l.Recover(); err != nil {
		t.Fatalf("Recover after space freed: %v", err)
	}
	if err := l.Append(rec); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, _ := replayAll(t, l2)
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
}
