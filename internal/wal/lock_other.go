//go:build !unix

package wal

// lockDir is a no-op where flock is unavailable: single-process use is
// then the caller's responsibility.
func lockDir(dir string) (release func(), err error) {
	return func() {}, nil
}
