package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/rdf"
)

// ErrRejected marks an append refused because the record itself is
// invalid (bad op, wildcard, oversized string or frame). Rejections say
// nothing about the disk: the degradation machinery must pass them back
// to the caller rather than enter read-only mode over them.
var ErrRejected = errors.New("wal: record rejected")

// Op says what a log record does to the knowledge base.
type Op uint8

const (
	// OpAssert records a batch of explicit triples entering the store.
	OpAssert Op = 1
	// OpRetract records a batch of explicit triples being retracted
	// (delete-and-rederive runs over them on replay).
	OpRetract Op = 2
)

// TermEntry is one dictionary delta: a term and the ID the dictionary
// assigned it. Replay re-encodes the term and verifies the ID matches, so
// dictionary-encoded triples in later records resolve identically.
type TermEntry struct {
	ID   rdf.ID
	Term rdf.Term
}

// Record is one durable unit of the log: an assert or retract batch plus
// the dictionary entries that appeared since the previous record.
type Record struct {
	Op      Op
	Terms   []TermEntry
	Triples []rdf.Triple
}

// Decoding limits. A frame larger than maxRecordLen is treated as
// corruption rather than allocated.
const (
	maxRecordLen = 1 << 28
	maxStringLen = 1 << 24
)

// appendUvarint appends the varint encoding of v to b.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendString appends a length-prefixed string to b.
func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// validateRecord rejects records the decoder would refuse, so a
// successful Append is always recoverable: without this, an oversized
// (or wildcard-carrying) record would be written and acknowledged, then
// silently treated as a torn tail on the next Open — dropping it and
// every record after it.
func validateRecord(rec Record) error {
	if rec.Op != OpAssert && rec.Op != OpRetract {
		return fmt.Errorf("%w: bad record op %d", ErrRejected, rec.Op)
	}
	for _, te := range rec.Terms {
		if te.ID == rdf.Any {
			return fmt.Errorf("%w: term entry with wildcard ID", ErrRejected)
		}
		if len(te.Term.Value) > maxStringLen || len(te.Term.Lang) > maxStringLen ||
			len(te.Term.Datatype) > maxStringLen {
			return fmt.Errorf("%w: term string exceeds %d bytes", ErrRejected, maxStringLen)
		}
	}
	for _, t := range rec.Triples {
		if t.S == rdf.Any || t.P == rdf.Any || t.O == rdf.Any {
			return fmt.Errorf("%w: triple with wildcard component", ErrRejected)
		}
	}
	return nil
}

// Record frame layout:
//
//	payloadLen uvarint | payload | crc32(payload) u32 little-endian
//
// payload:
//
//	op u8
//	#terms uvarint, per term: id uvarint | value | lang | datatype
//	        (strings are uvarint length + bytes; the term kind is the
//	        one encoded in the ID's top bits)
//	#triples uvarint, per triple: s, p, o uvarints

// encodeRecordPayload appends the record payload (no framing) to b.
func encodeRecordPayload(b []byte, rec Record) []byte {
	b = append(b, byte(rec.Op))
	b = appendUvarint(b, uint64(len(rec.Terms)))
	for _, te := range rec.Terms {
		b = appendUvarint(b, uint64(te.ID))
		b = appendString(b, te.Term.Value)
		b = appendString(b, te.Term.Lang)
		b = appendString(b, te.Term.Datatype)
	}
	b = appendUvarint(b, uint64(len(rec.Triples)))
	for _, t := range rec.Triples {
		b = appendUvarint(b, uint64(t.S))
		b = appendUvarint(b, uint64(t.P))
		b = appendUvarint(b, uint64(t.O))
	}
	return b
}

// frameRecord encodes rec into a complete frame inside scratch (reused
// across calls, so the hot append path allocates only on growth). The
// returned slice aliases scratch's backing array: the payload is encoded
// after a reserved maximum-width length prefix, the minimal varint
// length is then right-aligned into the gap, and the CRC appended — no
// second buffer, no payload copy.
func frameRecord(scratch []byte, rec Record) (frame, grown []byte) {
	const prefix = binary.MaxVarintLen64
	if cap(scratch) < prefix {
		scratch = make([]byte, 0, 1024)
	}
	b := encodeRecordPayload(scratch[:prefix], rec)
	payloadLen := len(b) - prefix
	var lenBuf [prefix]byte
	n := binary.PutUvarint(lenBuf[:], uint64(payloadLen))
	start := prefix - n
	copy(b[start:], lenBuf[:n])
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(b[prefix:]))
	b = append(b, crc[:]...)
	return b[start:], b
}

// appendRecord appends the full framed encoding of rec to b (allocating
// convenience form, used by tests; the Log's hot path uses frameRecord).
func appendRecord(b []byte, rec Record) []byte {
	frame, _ := frameRecord(nil, rec)
	return append(b, frame...)
}

// byteCursor reads primitives out of a byte slice with bounds checking;
// after any failed read ok() is false and further reads return zero
// values. It never panics on malformed input.
type byteCursor struct {
	b      []byte
	off    int
	failed bool
}

func (c *byteCursor) ok() bool       { return !c.failed }
func (c *byteCursor) remaining() int { return len(c.b) - c.off }
func (c *byteCursor) fail()          { c.failed = true }

// uvarintLen returns the length of the minimal varint encoding of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (c *byteCursor) uvarint() uint64 {
	if c.failed {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	// Reject unterminated and non-minimal encodings: the writer only
	// emits minimal varints, so anything else is corruption, and strict
	// decoding keeps decode∘encode the identity on valid frames.
	if n <= 0 || n != uvarintLen(v) {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

func (c *byteCursor) byte() byte {
	if c.failed || c.off >= len(c.b) {
		c.fail()
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *byteCursor) string() string {
	n := c.uvarint()
	if c.failed || n > maxStringLen || n > uint64(c.remaining()) {
		c.fail()
		return ""
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s
}

// decodeRecord parses a record payload (the CRC has already been
// verified, but the payload is still untrusted: a corrupted frame can
// carry a valid CRC of corrupted bytes). It returns an error instead of
// panicking on any malformed input.
func decodeRecord(payload []byte) (Record, error) {
	c := &byteCursor{b: payload}
	var rec Record
	op := Op(c.byte())
	if op != OpAssert && op != OpRetract {
		return rec, fmt.Errorf("wal: bad record op %d", op)
	}
	rec.Op = op

	nTerms := c.uvarint()
	// Every term entry takes at least 4 bytes (id + three empty strings).
	if c.failed || nTerms > uint64(c.remaining())/4+1 {
		return rec, fmt.Errorf("wal: bad term count")
	}
	if nTerms > 0 {
		rec.Terms = make([]TermEntry, 0, nTerms)
	}
	for i := uint64(0); i < nTerms; i++ {
		id := rdf.ID(c.uvarint())
		value := c.string()
		lang := c.string()
		datatype := c.string()
		if !c.ok() {
			return rec, fmt.Errorf("wal: truncated term entry")
		}
		if id == rdf.Any {
			return rec, fmt.Errorf("wal: term entry with wildcard ID")
		}
		rec.Terms = append(rec.Terms, TermEntry{
			ID:   id,
			Term: rdf.Term{Kind: id.Kind(), Value: value, Lang: lang, Datatype: datatype},
		})
	}

	nTriples := c.uvarint()
	// Every triple takes at least 3 bytes.
	if c.failed || nTriples > uint64(c.remaining())/3+1 {
		return rec, fmt.Errorf("wal: bad triple count")
	}
	if nTriples > 0 {
		rec.Triples = make([]rdf.Triple, 0, nTriples)
	}
	for i := uint64(0); i < nTriples; i++ {
		s := rdf.ID(c.uvarint())
		p := rdf.ID(c.uvarint())
		o := rdf.ID(c.uvarint())
		if !c.ok() {
			return rec, fmt.Errorf("wal: truncated triple")
		}
		// The store treats ID 0 as a match-anything wildcard; a logged
		// triple can never contain it, so its presence is corruption
		// that slipped past the CRC.
		if s == rdf.Any || p == rdf.Any || o == rdf.Any {
			return rec, fmt.Errorf("wal: triple with wildcard component")
		}
		rec.Triples = append(rec.Triples, rdf.T(s, p, o))
	}
	if c.remaining() != 0 {
		return rec, fmt.Errorf("wal: %d trailing bytes in record", c.remaining())
	}
	return rec, nil
}

// scanRecord reads one framed record starting at b[off]. It returns the
// decoded record and the offset just past the frame, or ok=false if the
// frame is truncated, oversized, fails its CRC, or does not decode — the
// caller treats everything from off on as a torn tail.
func scanRecord(b []byte, off int) (rec Record, next int, ok bool) {
	v, n := binary.Uvarint(b[off:])
	if n <= 0 || n != uvarintLen(v) || v > maxRecordLen {
		return rec, off, false
	}
	start := off + n
	end := start + int(v)
	if end+4 > len(b) {
		return rec, off, false
	}
	payload := b[start:end]
	want := binary.LittleEndian.Uint32(b[end : end+4])
	if crc32.ChecksumIEEE(payload) != want {
		return rec, off, false
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return rec, off, false
	}
	return rec, end + 4, true
}
