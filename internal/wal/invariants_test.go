//go:build slider_invariants

package wal

import "testing"

// TestSyncableInvariantIsLive proves the tagged assertion is compiled
// in and firing: fsyncing a handle whose previous fsync failed must
// panic (recovery reopens by path instead).
func TestSyncableInvariantIsLive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("assertSyncable on a poisoned handle did not panic")
		}
	}()
	l := &Log{curFailed: true}
	l.assertSyncable()
}
