package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	if got := g.Load(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Load(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

// TestHistogramBucketEdges pins the bucket-assignment contract: a value
// exactly on a bound lands in that bound's bucket (le is inclusive, as
// in Prometheus), one ulp above lands in the next.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(0.5) // bucket 0 (le=1)
	h.Observe(1)   // bucket 0 (le=1): inclusive upper bound
	h.Observe(1.5) // bucket 1 (le=2)
	h.Observe(2)   // bucket 1
	h.Observe(4)   // bucket 2 (le=4)
	h.Observe(4.5) // overflow
	h.Observe(100) // overflow
	s := h.Snapshot()
	want := []int64{2, 2, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if got, want := s.Sum, 0.5+1+1.5+2+4+4.5+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 100 values uniformly in bucket (1,2]: quantiles interpolate inside it.
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 1 || p50 > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", p50)
	}
	// Exactly interpolated: rank 50 of 100 in a bucket spanning [1,2] → 1.5.
	if p50 := s.Quantile(0.5); math.Abs(p50-1.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 1.5", p50)
	}
	if p100 := s.Quantile(1); math.Abs(p100-2) > 1e-9 {
		t.Fatalf("p100 = %v, want 2", p100)
	}

	// Overflow values clamp to the top finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if p := h2.Snapshot().Quantile(0.99); p != 2 {
		t.Fatalf("overflow p99 = %v, want clamp to 2", p)
	}

	// Empty snapshot.
	if p := NewHistogram(nil).Snapshot().Quantile(0.5); !math.IsNaN(p) {
		t.Fatalf("empty p50 = %v, want NaN", p)
	}
}

func TestHistogramMergeAndSub(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 4})
	b := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		a.Observe(0.5)
	}
	for i := 0; i < 20; i++ {
		b.Observe(3)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Counts = append([]int64(nil), sa.Counts...)
	merged.Merge(sb)
	if merged.Count != 30 {
		t.Fatalf("merged count = %d, want 30", merged.Count)
	}
	if merged.Counts[0] != 10 || merged.Counts[2] != 20 {
		t.Fatalf("merged counts = %v", merged.Counts)
	}
	if got, want := merged.Sum, 10*0.5+20*3.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged sum = %v, want %v", got, want)
	}

	// Sub recovers exactly the interval's observations.
	before := a.Snapshot()
	a.Observe(1.5)
	a.Observe(1.5)
	delta := a.Snapshot().Sub(before)
	if delta.Count != 2 || delta.Counts[1] != 2 {
		t.Fatalf("delta = %+v, want 2 observations in bucket 1", delta)
	}
	if math.Abs(delta.Sum-3) > 1e-9 {
		t.Fatalf("delta sum = %v, want 3", delta.Sum)
	}
}

func TestObserveSince(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if s := h.Snapshot(); s.Sum < 0.001 || s.Sum > 1 {
		t.Fatalf("sum = %v, want ~1ms in seconds", s.Sum)
	}
	h.ObserveSince(time.Time{}) // zero time records nothing
	if h.Count() != 1 {
		t.Fatalf("zero-time ObserveSince recorded")
	}
}

func TestDisabled(t *testing.T) {
	var c Counter
	h := NewHistogram(nil)
	restore := Disabled()
	c.Inc()
	h.Observe(1)
	if t0 := NowIfEnabled(); !t0.IsZero() {
		t.Fatalf("NowIfEnabled = %v while disabled, want zero", t0)
	}
	restore()
	if c.Load() != 0 || h.Count() != 0 {
		t.Fatalf("recorded while disabled: counter %d, hist %d", c.Load(), h.Count())
	}
	c.Inc()
	h.Observe(1)
	if c.Load() != 1 || h.Count() != 1 {
		t.Fatalf("restore did not re-enable recording")
	}
	if NowIfEnabled().IsZero() {
		t.Fatalf("NowIfEnabled zero while enabled")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatalf("same name returned different counters")
	}
	l1 := r.Counter("y_total", "help", "route", "a")
	l2 := r.Counter("y_total", "help", "route", "b")
	if l1 == l2 {
		t.Fatalf("different labels returned the same counter")
	}
	if got := r.GetCounter("y_total", "route", "a"); got != l1 {
		t.Fatalf("GetCounter lookup failed")
	}
	if got := r.GetCounter("nope_total"); got != nil {
		t.Fatalf("GetCounter on unknown name = %v, want nil", got)
	}
	h := r.Histogram("z_seconds", "help", nil)
	if got := r.GetHistogram("z_seconds"); got != h {
		t.Fatalf("GetHistogram lookup failed")
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "a b", "a-b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid name %q accepted", bad)
				}
			}()
			r.Counter(bad, "help")
		}()
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "counts b", "kind", `x"y\z`).Add(3)
	r.Gauge("a_gauge", "a gauge").Set(1.5)
	r.GaugeFunc("f_gauge", "func gauge", func() float64 { return 7 })
	h := r.Histogram("h_seconds", "hist", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP a_gauge a gauge\n# TYPE a_gauge gauge\na_gauge 1.5\n",
		"# TYPE b_total counter\n" + `b_total{kind="x\"y\\z"} 3` + "\n",
		"f_gauge 7\n",
		"# TYPE h_seconds histogram\n",
		`h_seconds_bucket{le="1"} 1` + "\n",
		`h_seconds_bucket{le="2"} 2` + "\n",
		`h_seconds_bucket{le="+Inf"} 3` + "\n",
		"h_seconds_sum 11\n",
		"h_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families sorted by name.
	if strings.Index(out, "# HELP a_gauge") > strings.Index(out, "# HELP b_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}
