// Package obs is Slider's zero-dependency metrics subsystem: atomic
// counters and gauges, fixed-bucket latency histograms with lock-free
// recording on the hot path, and a named registry that renders
// everything in the Prometheus text exposition format (served by the
// HTTP layer at GET /metrics).
//
// Metrics are cheap enough to leave on in production — recording is one
// atomic load (the global enable flag) plus one or two atomic adds —
// and every instrument is registered under a stable name, so the
// serving layer's /stats endpoint and the /metrics exposition read the
// same counters and cannot drift.
//
// The package has no opinions about metric ownership: a Registry is an
// ordinary value, and the facade gives every Reasoner its own so
// concurrent knowledge bases in one process (tests, embedded use) do
// not share counters.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// disabled is the global recording switch. Off by default (metrics on);
// benchmarks flip it to measure the cost of instrumentation itself.
var disabled atomic.Bool

// Enabled reports whether metric recording is globally on.
func Enabled() bool { return !disabled.Load() }

// SetEnabled turns metric recording globally on or off. With recording
// off every Add/Set/Observe returns immediately after one atomic load —
// the "uninstrumented" baseline benchmarks compare against. Exposition
// still works; the instruments simply stop moving.
func SetEnabled(on bool) { disabled.Store(!on) }

// Disabled turns recording off and returns a function restoring the
// previous state — the benchmark idiom:
//
//	restore := obs.Disabled()
//	defer restore()
func Disabled() (restore func()) {
	prev := Enabled()
	SetEnabled(false)
	return func() { SetEnabled(prev) }
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0; negative deltas are
// ignored so a counter can never move backwards).
func (c *Counter) Add(n int64) {
	if disabled.Load() || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

func (c *Counter) write(w *strings.Builder, name, labels string) {
	sample(w, name, labels, float64(c.v.Load()))
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set sets the gauge.
func (g *Gauge) Set(v float64) {
	if disabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w *strings.Builder, name, labels string) {
	sample(w, name, labels, g.Load())
}

// funcMetric is a counter or gauge whose value is computed at scrape
// time — the bridge for subsystems that already keep their own atomic
// counters (the engine, the store) so /metrics reads the very same
// numbers without double bookkeeping.
type funcMetric struct {
	fn func() float64
}

func (f *funcMetric) write(w *strings.Builder, name, labels string) {
	sample(w, name, labels, f.fn())
}

// metric is anything a registry can expose.
type metric interface {
	write(w *strings.Builder, name, labels string)
}

// family is every instrument sharing one metric name (label variants).
type family struct {
	name string
	help string
	typ  string // "counter" | "gauge" | "histogram"

	mu      sync.Mutex
	order   []string // label strings in registration order
	metrics map[string]metric
}

// Registry is a named set of metrics. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use, and the
// instrument constructors are get-or-create: registering the same name
// and label set twice returns the same instrument, which is what lets
// several subsystems share a counter without coordination.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry, for code without a natural
// owner. The facade gives each Reasoner its own registry instead.
var Default = NewRegistry()

// lookup returns the family, creating it with the given type on first
// registration and panicking when a name is re-registered under a
// different type or with different help text — that is a programming
// error, not a runtime condition.
func (r *Registry) lookup(name, help, typ string) *family {
	mustValidName(name)
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, help: help, typ: typ, metrics: make(map[string]metric)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// get returns the family's instrument for the label set, creating it
// with mk on first use.
func (f *family) get(labels string, mk func() metric) metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.metrics[labels]
	if m == nil {
		m = mk()
		f.metrics[labels] = m
		f.order = append(f.order, labels)
	}
	return m
}

// Counter registers (or retrieves) a counter. Labels are alternating
// key/value pairs: Counter("slider_http_requests_total", help,
// "route", "query", "code", "200").
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	m := r.lookup(name, help, "counter").get(labelString(labels), func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a plain counter", name))
	}
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be monotonic and safe for concurrent use. Re-registering
// the same name and labels replaces the function (the newest owner
// wins), so a rebuilt subsystem can re-point the bridge at itself.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.registerFunc(name, help, "counter", fn, labels)
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	m := r.lookup(name, help, "gauge").get(labelString(labels), func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a plain gauge", name))
	}
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. Re-registering replaces the function, as for CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.registerFunc(name, help, "gauge", fn, labels)
}

func (r *Registry) registerFunc(name, help, typ string, fn func() float64, labels []string) {
	f := r.lookup(name, help, typ)
	ls := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.metrics[ls].(*funcMetric); ok {
		m.fn = fn
		return
	}
	if f.metrics[ls] != nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a non-func %s", name, typ))
	}
	f.metrics[ls] = &funcMetric{fn: fn}
	f.order = append(f.order, ls)
}

// Histogram registers (or retrieves) a histogram with the given bucket
// upper bounds (nil means DurationBuckets). Re-registering with
// different bounds panics: the instrument is shared, and silently
// differing bucket layouts would corrupt merges.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	m := r.lookup(name, help, "histogram").get(labelString(labels), func() metric { return newHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a histogram", name))
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with %d bounds, has %d", name, len(bounds), len(h.bounds)))
	}
	for i := range bounds {
		if h.bounds[i] != bounds[i] {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
	}
	return h
}

// GetHistogram returns a registered histogram without creating one —
// the read-side lookup benchmarks and tests use to reach an instrument
// some other layer registered.
func (r *Registry) GetHistogram(name string, labels ...string) *Histogram {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	h, _ := f.metrics[labelString(labels)].(*Histogram)
	return h
}

// GetCounter returns a registered plain counter, or nil.
func (r *Registry) GetCounter(name string, labels ...string) *Counter {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	c, _ := f.metrics[labelString(labels)].(*Counter)
	return c
}

// labelString renders alternating key/value pairs as the canonical
// `key="value",key2="value2"` fragment (no braces; empty for none).
// Keys are validated; values are escaped. Pair order is preserved —
// callers must pass a stable order for get-or-create to hit.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		mustValidLabel(labels[i])
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		escapeLabelValue(&b, labels[i+1])
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
}

func mustValidName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

func mustValidLabel(name string) {
	if !validName(name) || strings.ContainsRune(name, ':') {
		panic(fmt.Sprintf("obs: invalid label name %q", name))
	}
}

// validName implements the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// NowIfEnabled returns time.Now() when recording is on and the zero
// Time otherwise, so hot paths can skip the clock read entirely when
// instrumentation is disabled; pair with Histogram.ObserveSince, which
// ignores the zero Time.
func NowIfEnabled() time.Time {
	if disabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// sample writes one exposition line: name{labels} value.
func sample(w *strings.Builder, name, labels string, v float64) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	writeFloat(w, v)
	w.WriteByte('\n')
}

// writeFloat renders a float the Prometheus text format accepts.
func writeFloat(w *strings.Builder, v float64) {
	switch {
	case math.IsInf(v, 1):
		w.WriteString("+Inf")
	case math.IsInf(v, -1):
		w.WriteString("-Inf")
	case math.IsNaN(v):
		w.WriteString("NaN")
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		fmt.Fprintf(w, "%d", int64(v))
	default:
		fmt.Fprintf(w, "%g", v)
	}
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each with
// its # HELP and # TYPE header and one sample line per label set (plus
// the _bucket/_sum/_count series for histograms).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		f.mu.Lock()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, ls := range f.order {
			f.metrics[ls].write(&b, f.name, ls)
		}
		f.mu.Unlock()
	}
	_, err := w.Write([]byte(b.String()))
	return err
}
