package obs

import (
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// ExponentialBuckets returns n upper bounds starting at start and
// growing by factor — the standard latency/size bucket layout.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Default bucket layouts. Durations are recorded in seconds; the
// duration buckets span 1µs to ~33s in powers of two, which keeps
// bucket-edge quantile error under a factor of two everywhere the
// engine's latencies live. Size buckets span 1 to ~1M in powers of two
// (batch sizes, row counts); cost buckets span 1 to ~1e12 in powers of
// four (planner row estimates).
var (
	DurationBuckets = ExponentialBuckets(1e-6, 2, 26)
	SizeBuckets     = ExponentialBuckets(1, 2, 21)
	CostBuckets     = ExponentialBuckets(1, 4, 21)
)

// Histogram is a fixed-bucket histogram: counts per bucket, a running
// sum, and a total count, all updated lock-free. Recording is one
// binary search over the (immutable) bounds plus three atomic adds, so
// it is safe on hot paths; snapshots are mergeable and support quantile
// extraction.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf bucket implied
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// NewHistogram builds an unregistered histogram — for call sites that
// want the instrument without exposition (benchmark harnesses, tests).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	return newHistogram(bounds)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if disabled.Load() {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v float64) {
	// Binary search for the first bound >= v; index len(bounds) is +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0. A zero t0 (from
// NowIfEnabled with recording off) records nothing.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if t0.IsZero() || disabled.Load() {
		return
	}
	h.observe(time.Since(t0).Seconds())
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns how many values have been recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistSnapshot is a point-in-time copy of a histogram, suitable for
// merging, differencing and quantile extraction. Counts are per-bucket
// (not cumulative); Counts[len(Bounds)] is the overflow (+Inf) bucket.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's current state. Concurrent recording
// may skew Count against the bucket totals by the handful of updates in
// flight; the snapshot normalises Count to the bucket sum so quantile
// extraction is always self-consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds, // immutable, shared
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// Merge adds another snapshot into s. The two must share bucket bounds.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(s.Counts) != len(o.Counts) {
		panic("obs: merging histograms with different bucket layouts")
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Sub subtracts an earlier snapshot, yielding the delta histogram for
// the interval between the two — how a scrape-to-scrape or
// cell-to-cell p99 is extracted from a cumulative instrument.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	if len(s.Counts) != len(prev.Counts) {
		panic("obs: differencing histograms with different bucket layouts")
	}
	d := HistSnapshot{Bounds: s.Bounds, Counts: make([]int64, len(s.Counts))}
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i] - prev.Counts[i]
		d.Count += d.Counts[i]
	}
	d.Sum = s.Sum - prev.Sum
	return d
}

// Quantile returns the q-th quantile (0 <= q <= 1) estimated by linear
// interpolation inside the bucket the target rank falls in — the same
// estimate Prometheus's histogram_quantile computes. Values in the
// overflow bucket clamp to the highest finite bound. Returns NaN when
// the snapshot is empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i == len(s.Bounds) {
				// Overflow bucket: no upper bound to interpolate toward.
				return s.Bounds[len(s.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			frac := (rank - float64(cum-c)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average of the recorded values (NaN when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// write renders the histogram's exposition series: cumulative
// _bucket{le=...} lines, then _sum and _count.
func (h *Histogram) write(w *strings.Builder, name, labels string) {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		w.WriteString(name)
		w.WriteString("_bucket{")
		if labels != "" {
			w.WriteString(labels)
			w.WriteByte(',')
		}
		w.WriteString(`le="`)
		if i == len(h.bounds) {
			w.WriteString("+Inf")
		} else {
			writeFloat(w, h.bounds[i])
		}
		w.WriteString(`"} `)
		writeFloat(w, float64(cum))
		w.WriteByte('\n')
	}
	sample(w, name+"_sum", labels, math.Float64frombits(h.sum.Load()))
	sample(w, name+"_count", labels, float64(cum))
}

// Quantiles is a convenience for reports: p50/p90/p99 in one call.
func (s HistSnapshot) Quantiles() (p50, p90, p99 float64) {
	return s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99)
}
