package obs

import (
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentRecordingStress hammers one registry from many writers
// — counters, gauges, histogram observations and label get-or-create —
// while a reader keeps scraping, then checks nothing was lost. Run
// under -race this is the package's publication-safety proof.
func TestConcurrentRecordingStress(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("stress_total", "t")
	h := r.Histogram("stress_seconds", "t", []float64{0.001, 0.01, 0.1, 1})
	g := r.Gauge("stress_gauge", "t")

	workers := runtime.GOMAXPROCS(0) * 4
	if workers < 8 {
		workers = 8
	}
	const perWorker = 5000
	var wg, writersDone sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent scraper: exposition must be safe against recording.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := r.WriteText(&sb); err != nil {
				t.Error(err)
				return
			}
			_ = h.Snapshot()
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		writersDone.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersDone.Done()
			lab := []string{"worker", string(rune('a' + w%8))}
			lc := r.Counter("stress_labeled_total", "t", lab...)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				lc.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%1000) / 1000)
			}
		}(w)
	}
	writersDone.Wait()
	close(stop)
	wg.Wait()
	total := int64(workers) * perWorker
	if got := c.Load(); got != total {
		t.Fatalf("counter = %d, want %d", got, total)
	}
	s := h.Snapshot()
	if s.Count != total {
		t.Fatalf("histogram count = %d, want %d", s.Count, total)
	}
	sumBuckets := int64(0)
	for _, n := range s.Counts {
		sumBuckets += n
	}
	if sumBuckets != total {
		t.Fatalf("bucket sum = %d, want %d", sumBuckets, total)
	}
	var labeled int64
	for w := 0; w < 8; w++ {
		lc := r.GetCounter("stress_labeled_total", "worker", string(rune('a'+w)))
		if lc != nil {
			labeled += lc.Load()
		}
	}
	if labeled != total {
		t.Fatalf("labeled counters sum = %d, want %d", labeled, total)
	}
}
