package turtle

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Writer serialises statements as Turtle with prefix compression and
// subject grouping (predicate lists). Statements are buffered so they can
// be grouped; call Flush to emit the document.
type Writer struct {
	w        *bufio.Writer
	prefixes map[string]string // namespace → prefix name
	order    []string          // namespaces in registration order
	sts      []rdf.Statement
	err      error
}

// NewWriter returns a Turtle writer with the standard prefixes (rdf,
// rdfs, owl, xsd) pre-registered.
func NewWriter(w io.Writer) *Writer {
	tw := &Writer{w: bufio.NewWriter(w), prefixes: map[string]string{}}
	tw.Prefix("rdf", rdf.RDFNS)
	tw.Prefix("rdfs", rdf.RDFSNS)
	tw.Prefix("owl", rdf.OWLNS)
	tw.Prefix("xsd", rdf.XSDNS)
	return tw
}

// Prefix registers a namespace under a prefix name. Only prefixes whose
// namespaces are actually used appear in the output.
func (tw *Writer) Prefix(name, ns string) {
	if _, dup := tw.prefixes[ns]; !dup {
		tw.prefixes[ns] = name
		tw.order = append(tw.order, ns)
	}
}

// Write buffers one statement.
func (tw *Writer) Write(st rdf.Statement) error {
	if tw.err != nil {
		return tw.err
	}
	if !st.Valid() {
		tw.err = fmt.Errorf("turtle: invalid statement %v", st)
		return tw.err
	}
	tw.sts = append(tw.sts, st)
	return nil
}

// Flush emits the buffered statements as a Turtle document: used prefix
// directives first, then statements grouped by subject with `;`
// predicate lists, subjects and predicates in deterministic order.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	used := map[string]bool{}
	for _, st := range tw.sts {
		for _, t := range []rdf.Term{st.S, st.P, st.O} {
			if ns, _, ok := tw.split(t); ok {
				used[ns] = true
			}
			if t.IsLiteral() && t.Datatype != "" {
				if ns, _, ok := tw.split(rdf.NewIRI(t.Datatype)); ok {
					used[ns] = true
				}
			}
		}
	}
	for _, ns := range tw.order {
		if used[ns] {
			fmt.Fprintf(tw.w, "@prefix %s: <%s> .\n", tw.prefixes[ns], ns)
		}
	}
	if len(used) > 0 && len(tw.sts) > 0 {
		tw.w.WriteByte('\n')
	}

	// Group by subject, preserving first-appearance subject order.
	groups := map[string][]rdf.Statement{}
	var subjects []string
	keys := map[string]rdf.Term{}
	for _, st := range tw.sts {
		k := st.S.String()
		if _, ok := groups[k]; !ok {
			subjects = append(subjects, k)
			keys[k] = st.S
		}
		groups[k] = append(groups[k], st)
	}
	for _, subj := range subjects {
		sts := groups[subj]
		// Deterministic predicate/object order within the group.
		sort.SliceStable(sts, func(i, j int) bool {
			if sts[i].P.Value != sts[j].P.Value {
				return sts[i].P.Value < sts[j].P.Value
			}
			return sts[i].O.String() < sts[j].O.String()
		})
		tw.w.WriteString(tw.term(keys[subj]))
		for i, st := range sts {
			if i > 0 {
				if st.P == sts[i-1].P {
					tw.w.WriteString(" ,\n        ")
					tw.w.WriteString(tw.term(st.O))
					continue
				}
				tw.w.WriteString(" ;\n   ")
			} else {
				tw.w.WriteByte(' ')
			}
			tw.w.WriteString(tw.predicate(st.P))
			tw.w.WriteByte(' ')
			tw.w.WriteString(tw.term(st.O))
		}
		tw.w.WriteString(" .\n")
	}
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// split finds a registered namespace covering the term's IRI with a
// Turtle-safe local part.
func (tw *Writer) split(t rdf.Term) (ns, local string, ok bool) {
	if !t.IsIRI() {
		return "", "", false
	}
	for regNS := range tw.prefixes {
		if strings.HasPrefix(t.Value, regNS) {
			l := t.Value[len(regNS):]
			if l != "" && isSafeLocal(l) {
				return regNS, l, true
			}
		}
	}
	return "", "", false
}

func isSafeLocal(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-') {
			return false
		}
	}
	return true
}

func (tw *Writer) predicate(t rdf.Term) string {
	if t.Value == rdf.IRIType {
		return "a"
	}
	return tw.term(t)
}

func (tw *Writer) term(t rdf.Term) string {
	if ns, local, ok := tw.split(t); ok {
		return tw.prefixes[ns] + ":" + local
	}
	// Literal datatypes also benefit from prefixing.
	if t.IsLiteral() && t.Datatype != "" {
		if ns, local, ok := tw.split(rdf.NewIRI(t.Datatype)); ok {
			lit := rdf.NewLiteral(t.Value).String()
			return lit + "^^" + tw.prefixes[ns] + ":" + local
		}
	}
	return t.String()
}

// WriteAll serialises all statements to w as Turtle.
func WriteAll(w io.Writer, sts []rdf.Statement) error {
	tw := NewWriter(w)
	for _, st := range sts {
		if err := tw.Write(st); err != nil {
			return err
		}
	}
	return tw.Flush()
}
