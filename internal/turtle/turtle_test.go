package turtle

import (
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func parse(t *testing.T, doc string) []rdf.Statement {
	t.Helper()
	sts, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", doc, err)
	}
	return sts
}

func TestBasicTriple(t *testing.T) {
	sts := parse(t, `<http://e/s> <http://e/p> <http://e/o> .`)
	if len(sts) != 1 {
		t.Fatalf("got %d statements", len(sts))
	}
	want := rdf.NewStatement(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o"))
	if sts[0] != want {
		t.Fatalf("got %v, want %v", sts[0], want)
	}
}

func TestPrefixDirectives(t *testing.T) {
	doc := `
@prefix ex: <http://e/> .
@prefix : <http://default/> .
PREFIX sp: <http://sparql/>
ex:s ex:p :o .
sp:a sp:b sp:c .
`
	sts := parse(t, doc)
	if len(sts) != 2 {
		t.Fatalf("got %d statements", len(sts))
	}
	if sts[0].S.Value != "http://e/s" || sts[0].O.Value != "http://default/o" {
		t.Fatalf("prefix expansion wrong: %v", sts[0])
	}
	if sts[1].P.Value != "http://sparql/b" {
		t.Fatalf("SPARQL prefix wrong: %v", sts[1])
	}
}

func TestBaseDirective(t *testing.T) {
	doc := `
@base <http://example.org/> .
<rel> <p> <other> .
BASE <http://two.org/>
<x> <y> <z> .
`
	sts := parse(t, doc)
	if sts[0].S.Value != "http://example.org/rel" {
		t.Fatalf("base not applied: %v", sts[0].S)
	}
	if sts[1].S.Value != "http://two.org/x" {
		t.Fatalf("second base not applied: %v", sts[1].S)
	}
	// Absolute IRIs are untouched.
	sts = parse(t, "@base <http://b/> .\n<http://abs/s> <http://abs/p> <http://abs/o> .")
	if sts[0].S.Value != "http://abs/s" {
		t.Fatalf("absolute IRI rewritten: %v", sts[0].S)
	}
}

func TestAKeywordAndLists(t *testing.T) {
	doc := `
@prefix ex: <http://e/> .
ex:felix a ex:Cat ;
         ex:likes ex:fish , ex:milk ;
         ex:name "Felix" .
`
	sts := parse(t, doc)
	if len(sts) != 4 {
		t.Fatalf("got %d statements: %v", len(sts), sts)
	}
	if sts[0].P.Value != rdf.IRIType {
		t.Fatalf("'a' not expanded: %v", sts[0].P)
	}
	for _, st := range sts {
		if st.S.Value != "http://e/felix" {
			t.Fatalf("subject sharing broken: %v", st)
		}
	}
	if sts[1].O.Value != "http://e/fish" || sts[2].O.Value != "http://e/milk" {
		t.Fatalf("object list broken: %v %v", sts[1], sts[2])
	}
}

func TestTrailingSemicolon(t *testing.T) {
	sts := parse(t, `@prefix ex: <http://e/> .
ex:s ex:p ex:o ; .`)
	if len(sts) != 1 {
		t.Fatalf("got %d statements", len(sts))
	}
}

func TestLiterals(t *testing.T) {
	doc := `
@prefix ex: <http://e/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:s ex:plain "hello" .
ex:s ex:lang "bonjour"@fr .
ex:s ex:typed "42"^^xsd:integer .
ex:s ex:typed2 "42"^^<http://www.w3.org/2001/XMLSchema#long> .
ex:s ex:esc "tab\there \"quoted\"" .
ex:s ex:empty "" .
ex:s ex:long """line one
line two with "quotes" inside""" .
ex:s ex:int 42 .
ex:s ex:neg -7 .
ex:s ex:dec 3.14 .
ex:s ex:dbl 1.5e10 .
ex:s ex:bool true .
ex:s ex:uni "é" .
`
	sts := parse(t, doc)
	objs := map[string]rdf.Term{}
	for _, st := range sts {
		objs[strings.TrimPrefix(st.P.Value, "http://e/")] = st.O
	}
	checks := map[string]rdf.Term{
		"plain":  rdf.NewLiteral("hello"),
		"lang":   rdf.NewLangLiteral("bonjour", "fr"),
		"typed":  rdf.NewTypedLiteral("42", rdf.IRIXSDInteger),
		"typed2": rdf.NewTypedLiteral("42", rdf.XSDNS+"long"),
		"esc":    rdf.NewLiteral("tab\there \"quoted\""),
		"empty":  rdf.NewLiteral(""),
		"long":   rdf.NewLiteral("line one\nline two with \"quotes\" inside"),
		"int":    rdf.NewTypedLiteral("42", rdf.IRIXSDInteger),
		"neg":    rdf.NewTypedLiteral("-7", rdf.IRIXSDInteger),
		"dec":    rdf.NewTypedLiteral("3.14", rdf.XSDNS+"decimal"),
		"dbl":    rdf.NewTypedLiteral("1.5e10", rdf.XSDNS+"double"),
		"bool":   rdf.NewTypedLiteral("true", rdf.XSDNS+"boolean"),
		"uni":    rdf.NewLiteral("é"),
	}
	for k, want := range checks {
		if got, ok := objs[k]; !ok || got != want {
			t.Errorf("%s: got %+v, want %+v", k, got, want)
		}
	}
}

func TestBlankNodes(t *testing.T) {
	doc := `
@prefix ex: <http://e/> .
_:b1 ex:p _:b2 .
ex:s ex:address [ ex:city "Lyon" ; ex:zip "69000" ] .
ex:t ex:empty [] .
`
	sts := parse(t, doc)
	if len(sts) != 5 {
		t.Fatalf("got %d statements: %v", len(sts), sts)
	}
	if !sts[0].S.IsBlank() || sts[0].S.Value != "b1" || sts[0].O.Value != "b2" {
		t.Fatalf("labelled blanks: %v", sts[0])
	}
	// Property list: inner statements first, then the reference.
	if sts[1].P.Value != "http://e/city" || sts[2].P.Value != "http://e/zip" {
		t.Fatalf("property list inner statements: %v %v", sts[1], sts[2])
	}
	if sts[3].O != sts[1].S || !sts[3].O.IsBlank() {
		t.Fatalf("property list node mismatch: %v vs %v", sts[3].O, sts[1].S)
	}
	if !sts[4].O.IsBlank() {
		t.Fatalf("anonymous []: %v", sts[4])
	}
	if sts[4].O == sts[3].O {
		t.Fatal("distinct [] must generate distinct blank nodes")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	doc := "# header\n@prefix ex: <http://e/> . # trailing\nex:s ex:p ex:o . # done\n"
	if got := parse(t, doc); len(got) != 1 {
		t.Fatalf("got %d statements", len(got))
	}
}

func TestStreamingReader(t *testing.T) {
	r := NewReader(strings.NewReader("@prefix ex: <http://e/> .\nex:a ex:p ex:b .\nex:b ex:p ex:c ."))
	n := 0
	for {
		_, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("read %d statements", n)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		`<http://e/s> <http://e/p> <http://e/o>`,         // missing dot
		`ex:s ex:p ex:o .`,                               // unknown prefix
		`@prefix ex: <http://e/> . ex:s ex:p ( ex:a ) .`, // collection
		`@unknown <x> .`,
		`<http://e/s> <http://e/p> "unterminated .`,
		`<http://e/s> <http://e/p> "bad\q" .`,
		`<http://e/s> <http://e/p> "x"@ .`,
		`<http://e/s> <http://e/p> 12..5 .`,
		`<http://e/s> <http://e/p> "x"^^ .`,
		`<http://e/s <http://e/p> <http://e/o> .`,
	}
	for _, doc := range cases {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("accepted %q", doc)
		} else {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("error for %q is %T, want *ParseError", doc, err)
			}
		}
	}
}

func TestErrorLineNumbers(t *testing.T) {
	doc := "@prefix ex: <http://e/> .\nex:s ex:p ex:o .\nbroken zzz\n"
	_, err := ParseString(doc)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if pe.Line != 3 {
		t.Fatalf("line = %d, want 3", pe.Line)
	}
}

func TestRealisticDocument(t *testing.T) {
	doc := `
@prefix rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl:  <http://www.w3.org/2002/07/owl#> .
@prefix ex:   <http://example.org/zoo#> .

ex:Animal a rdfs:Class .
ex:Cat a rdfs:Class ;
    rdfs:subClassOf ex:Animal ;
    rdfs:label "Cat"@en , "Chat"@fr .

ex:eats a rdf:Property ;
    rdfs:domain ex:Animal .

ex:felix a ex:Cat ;
    ex:eats [ a ex:Meal ; rdfs:label "fish dinner" ] ;
    ex:age 7 .
`
	sts := parse(t, doc)
	if len(sts) != 12 {
		t.Fatalf("got %d statements:\n%v", len(sts), sts)
	}
	// Every statement must be valid RDF.
	for _, st := range sts {
		if !st.Valid() {
			t.Fatalf("invalid statement %v", st)
		}
	}
}

func TestDotInsideLocalName(t *testing.T) {
	sts := parse(t, "@prefix ex: <http://e/> .\nex:a.b ex:p ex:c .")
	if sts[0].S.Value != "http://e/a.b" {
		t.Fatalf("dotted local name: %v", sts[0].S)
	}
}
