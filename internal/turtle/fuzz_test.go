package turtle

import "testing"

// FuzzParse checks the Turtle parser never panics or loops, and that
// every statement it accepts is structurally valid RDF.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"@prefix ex: <http://e/> .\nex:s ex:p ex:o .",
		"PREFIX ex: <http://e/>\nex:s a ex:C .",
		"@base <http://e/> .\n<s> <p> <o> .",
		"ex:s ex:p [ ex:q ex:o ; ex:r \"lit\" ] .",
		`<http://e/s> <http://e/p> """long
string""" .`,
		"<http://e/s> <http://e/p> 3.14 .",
		"<http://e/s> <http://e/p> true .",
		"@prefix : <http://e/> .\n:s :p :o1 , :o2 ; :q :o3 .",
		"# just a comment",
		"@prefix ex <broken",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		sts, err := ParseString(doc)
		if err != nil {
			return
		}
		for _, st := range sts {
			if !st.Valid() {
				t.Fatalf("parser accepted invalid statement %v from %q", st, doc)
			}
		}
	})
}
