package turtle

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func TestWriterGroupsAndPrefixes(t *testing.T) {
	sts := []rdf.Statement{
		rdf.NewStatement(rdf.NewIRI("http://e/felix"), rdf.NewIRI(rdf.IRIType), rdf.NewIRI("http://e/Cat")),
		rdf.NewStatement(rdf.NewIRI("http://e/felix"), rdf.NewIRI(rdf.IRILabel), rdf.NewLiteral("Felix")),
		rdf.NewStatement(rdf.NewIRI("http://e/Cat"), rdf.NewIRI(rdf.IRISubClassOf), rdf.NewIRI("http://e/Animal")),
	}
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	tw.Prefix("ex", "http://e/")
	for _, st := range sts {
		if err := tw.Write(st); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"@prefix ex: <http://e/> .",
		"@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .",
		"ex:felix a ex:Cat ;",
		"rdfs:label \"Felix\"",
		"ex:Cat rdfs:subClassOf ex:Animal .",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Unused prefixes (owl, xsd) must not be emitted.
	if strings.Contains(out, "@prefix owl") {
		t.Errorf("unused prefix emitted:\n%s", out)
	}
	// Subject appears exactly once (grouped).
	if strings.Count(out, "ex:felix") != 1 {
		t.Errorf("subject not grouped:\n%s", out)
	}
}

func TestWriterObjectLists(t *testing.T) {
	sts := []rdf.Statement{
		rdf.NewStatement(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o1")),
		rdf.NewStatement(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o2")),
	}
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	tw.Prefix("ex", "http://e/")
	for _, st := range sts {
		tw.Write(st)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ",") {
		t.Fatalf("expected an object list:\n%s", buf.String())
	}
}

func TestWriterFallsBackToFullIRIs(t *testing.T) {
	// IRI with characters unsafe for a local name: full form.
	sts := []rdf.Statement{
		rdf.NewStatement(rdf.NewIRI("http://other.org/a/b#c"), rdf.NewIRI("http://other.org/p"), rdf.NewLiteral("x")),
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, sts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<http://other.org/a/b#c>") {
		t.Fatalf("full IRI missing:\n%s", buf.String())
	}
}

func TestWriterTypedLiteralPrefixing(t *testing.T) {
	sts := []rdf.Statement{
		rdf.NewStatement(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"),
			rdf.NewTypedLiteral("42", rdf.IRIXSDInteger)),
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, sts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"42"^^xsd:integer`) {
		t.Fatalf("typed literal not prefixed:\n%s", buf.String())
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	tw := NewWriter(&bytes.Buffer{})
	if err := tw.Write(rdf.NewStatement(rdf.NewLiteral("bad"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o"))); err == nil {
		t.Fatal("invalid statement accepted")
	}
	// Writer is poisoned after an error.
	if err := tw.Write(rdf.NewStatement(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o"))); err == nil {
		t.Fatal("write after error accepted")
	}
}

// Property: writer output re-parses to the same statement multiset.
func TestWriterRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sts []rdf.Statement
		iri := func() rdf.Term {
			// Mix of prefixable and unprefixable IRIs.
			if rng.Intn(2) == 0 {
				return rdf.NewIRI("http://e/" + string(rune('a'+rng.Intn(26))))
			}
			return rdf.NewIRI("http://other.org/path/x#" + string(rune('a'+rng.Intn(26))))
		}
		obj := func() rdf.Term {
			switch rng.Intn(4) {
			case 0:
				return rdf.NewLiteral("plain \"text\"\nline")
			case 1:
				return rdf.NewLangLiteral("hello", "en")
			case 2:
				return rdf.NewTypedLiteral("3", rdf.IRIXSDInteger)
			default:
				return iri()
			}
		}
		seen := map[string]bool{}
		for i := 0; i < rng.Intn(15)+1; i++ {
			st := rdf.NewStatement(iri(), iri(), obj())
			if !seen[st.String()] {
				seen[st.String()] = true
				sts = append(sts, st)
			}
		}
		var buf bytes.Buffer
		tw := NewWriter(&buf)
		tw.Prefix("ex", "http://e/")
		for _, st := range sts {
			if err := tw.Write(st); err != nil {
				return false
			}
		}
		if err := tw.Flush(); err != nil {
			return false
		}
		back, err := ParseString(buf.String())
		if err != nil {
			t.Logf("seed %d: reparse error %v on:\n%s", seed, err, buf.String())
			return false
		}
		if len(back) != len(sts) {
			t.Logf("seed %d: %d statements back, want %d:\n%s", seed, len(back), len(sts), buf.String())
			return false
		}
		got := map[string]bool{}
		for _, st := range back {
			got[st.String()] = true
		}
		for k := range seen {
			if !got[k] {
				t.Logf("seed %d: missing %s", seed, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
